// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the full experiment per iteration and reports the
// headline quantities as custom metrics (so `go test -bench` output reads
// like the paper's results), alongside conventional time/op for the
// simulation cost itself.
package deepnote

import (
	"testing"
	"time"

	"deepnote/internal/attack"
	"deepnote/internal/experiment"
	"deepnote/internal/fio"
	"deepnote/internal/kvdb"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// BenchmarkFigure2aSeqWrite regenerates Figure 2(a): sequential-write
// throughput versus attack frequency for all three scenarios.
func BenchmarkFigure2aSeqWrite(b *testing.B) {
	opts := experiment.Figure2Options{
		Start: 200 * units.Hz, End: 8000 * units.Hz, Step: 200 * units.Hz,
		JobRuntime: 300 * time.Millisecond,
	}
	var res experiment.Figure2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.Figure2(fio.SeqWrite, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range res.Series {
		if band, ok := res.VulnerableBand(s.Scenario); ok {
			b.ReportMetric(band.Low.Hertz(), "s"+string('0'+byte(s.Scenario))+"_band_low_Hz")
			b.ReportMetric(band.High.Hertz(), "s"+string('0'+byte(s.Scenario))+"_band_high_Hz")
		}
	}
}

// BenchmarkFigure2bSeqRead regenerates Figure 2(b): sequential-read
// throughput versus attack frequency.
func BenchmarkFigure2bSeqRead(b *testing.B) {
	opts := experiment.Figure2Options{
		Start: 200 * units.Hz, End: 8000 * units.Hz, Step: 200 * units.Hz,
		JobRuntime: 300 * time.Millisecond,
	}
	var res experiment.Figure2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.Figure2(fio.SeqRead, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range res.Series {
		if band, ok := res.VulnerableBand(s.Scenario); ok {
			b.ReportMetric(band.High.Hertz(), "s"+string('0'+byte(s.Scenario))+"_read_band_high_Hz")
		}
	}
}

// BenchmarkTable1RangeFIO regenerates Table 1: FIO throughput and latency
// at each speaker distance (650 Hz, Scenario 2).
func BenchmarkTable1RangeFIO(b *testing.B) {
	var res experiment.Table1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.Table1(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(res.Rows) == 7 {
		b.ReportMetric(res.Rows[0].ReadMBps, "noattack_read_MBps")
		b.ReportMetric(res.Rows[0].WriteMBps, "noattack_write_MBps")
		b.ReportMetric(res.Rows[3].ReadMBps, "10cm_read_MBps")
		b.ReportMetric(res.Rows[3].WriteMBps, "10cm_write_MBps")
		b.ReportMetric(res.Rows[6].WriteMBps, "25cm_write_MBps")
	}
}

// BenchmarkTable2RangeRocksDB regenerates Table 2: RocksDB
// readwhilewriting throughput and I/O rate versus distance.
func BenchmarkTable2RangeRocksDB(b *testing.B) {
	opts := experiment.Table2Options{Runtime: 3 * time.Second, Fill: 2000}
	var res experiment.Table2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.Table2(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(res.Rows) == 7 {
		b.ReportMetric(res.Rows[0].MBps, "noattack_MBps")
		b.ReportMetric(res.Rows[0].OpsPerSec, "noattack_ops_per_s")
		b.ReportMetric(res.Rows[1].MBps, "1cm_MBps")
		b.ReportMetric(res.Rows[4].MBps, "15cm_MBps")
	}
}

// BenchmarkTable3Crashes regenerates Table 3: time-to-crash of Ext4, the
// Ubuntu server model, and RocksDB under the prolonged attack.
func BenchmarkTable3Crashes(b *testing.B) {
	var res experiment.Table3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.Table3(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, o := range res.Outcomes {
		if o.Crashed {
			b.ReportMetric(o.TimeToCrash.Seconds(), string(o.Target)+"_crash_s")
		}
	}
	b.ReportMetric(res.MeanTimeToCrash().Seconds(), "mean_crash_s")
}

// BenchmarkHeadlineThroughputLoss verifies the abstract's headline: up to
// 100% throughput loss in the 300 Hz–1.3 kHz band.
func BenchmarkHeadlineThroughputLoss(b *testing.B) {
	var loss float64
	for i := 0; i < b.N; i++ {
		rig, err := NewRig(Scenario2, 1*Centimeter, 1)
		if err != nil {
			b.Fatal(err)
		}
		base, err := RunFIO(rig, SeqWrite, time.Second)
		if err != nil {
			b.Fatal(err)
		}
		rig.ApplyTone(Tone(650 * Hz))
		hit, err := RunFIO(rig, SeqWrite, time.Second)
		if err != nil {
			b.Fatal(err)
		}
		loss = 1 - hit.ThroughputMBps()/base.ThroughputMBps()
	}
	b.ReportMetric(loss*100, "throughput_loss_pct")
}

// BenchmarkDefenseSuite is the ablation bench for §5's proposed defenses:
// residual peak off-track ratio per defense.
func BenchmarkDefenseSuite(b *testing.B) {
	tb, err := NewTestbed(Scenario2, 1*Centimeter)
	if err != nil {
		b.Fatal(err)
	}
	var evs []DefenseEvaluation
	for i := 0; i < b.N; i++ {
		evs = EvaluateDefenses(tb)
	}
	for i, ev := range evs {
		b.ReportMetric(ev.PeakRatioAfter, "defense"+string('0'+byte(i))+"_peak_ratio")
	}
}

// BenchmarkSweepProcedure measures the attacker's full two-phase sweep.
func BenchmarkSweepProcedure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Sweep(Scenario3, SeqWrite)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Bands) == 0 {
			b.Fatal("sweep found nothing")
		}
	}
}

// --- parallel engine: serial vs fanned-out grids ------------------------
//
// The sweep and fleet grids are embarrassingly parallel; these benches pin
// the wall-clock cost of the same experiment at 1 worker, 4 workers, and
// one worker per CPU. Results are bit-identical across the variants (see
// the determinism tests); only the time/op should move.

func benchmarkSweepWorkers(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		res, err := attack.Sweeper{Scenario: Scenario3, Workers: workers}.Run(SeqWrite)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Bands) == 0 {
			b.Fatal("sweep found nothing")
		}
	}
}

// BenchmarkSweepSerial is the §4.1 full two-phase sweep on one worker.
func BenchmarkSweepSerial(b *testing.B) { benchmarkSweepWorkers(b, 1) }

// BenchmarkSweepParallel4 is the same sweep fanned over 4 workers.
func BenchmarkSweepParallel4(b *testing.B) { benchmarkSweepWorkers(b, 4) }

// BenchmarkSweepParallelMaxCPU is the same sweep at one worker per CPU.
func BenchmarkSweepParallelMaxCPU(b *testing.B) { benchmarkSweepWorkers(b, 0) }

func benchmarkFleetWorkers(b *testing.B, workers int) {
	spec := experiment.FleetSpec{
		Containers: 256, DrivesPerContainer: 24, Speakers: 64, Workers: workers,
	}
	var res experiment.FleetResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.FleetAvailability(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Availability*100, "availability_pct")
}

// BenchmarkFleetSerial evaluates a 256-container facility on one worker.
func BenchmarkFleetSerial(b *testing.B) { benchmarkFleetWorkers(b, 1) }

// BenchmarkFleetParallelMaxCPU is the same facility at one worker per CPU.
func BenchmarkFleetParallelMaxCPU(b *testing.B) { benchmarkFleetWorkers(b, 0) }

// --- micro-benchmarks on the substrates ---------------------------------

// BenchmarkDriveSequentialWrite measures the simulated drive's op cost in
// host time (virtual time is the modeled quantity).
func BenchmarkDriveSequentialWrite(b *testing.B) {
	rig, err := NewRig(Scenario2, 1*Centimeter, 1)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rig.Disk.WriteAt(buf, int64(i%100000)*4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDriveUnderAttack measures the op cost with the vibration model
// engaged (retry sampling active).
func BenchmarkDriveUnderAttack(b *testing.B) {
	rig, err := NewRig(Scenario2, 15*Centimeter, 1)
	if err != nil {
		b.Fatal(err)
	}
	rig.ApplyTone(Tone(650 * Hz))
	buf := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = rig.Disk.WriteAt(buf, int64(i%100000)*4096)
	}
}

// BenchmarkKVDBPut measures the LSM write path end to end.
func BenchmarkKVDBPut(b *testing.B) {
	rig, err := NewRig(Scenario2, 1*Centimeter, 1)
	if err != nil {
		b.Fatal(err)
	}
	_, db, _, err := NewStack(rig, 1)
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put([]byte(time.Unix(int64(i), 0).String()), val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKVDBGet measures the LSM read path on a warm store.
func BenchmarkKVDBGet(b *testing.B) {
	rig, err := NewRig(Scenario2, 1*Centimeter, 1)
	if err != nil {
		b.Fatal(err)
	}
	_, db, _, err := NewStack(rig, 1)
	if err != nil {
		b.Fatal(err)
	}
	bench := kvdb.NewBench(db, rig.Clock)
	if _, err := bench.Run(kvdb.BenchSpec{Workload: kvdb.WorkloadFillRandom, Num: 5000}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = db.Get([]byte("0000000000000042"))
	}
}

// BenchmarkSection5Ranges regenerates the §5 effective-range matrix.
func BenchmarkSection5Ranges(b *testing.B) {
	var rows []experiment.RangeScenario
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.Section5Ranges(650 * units.Hz)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Tier.Name == "pool speaker (AQ339-class)" && r.Water == "freshwater tank" {
			b.ReportMetric(r.MaxRange.Centimeters(), "pool_range_cm")
		}
	}
}

// BenchmarkControlledOutage regenerates the §3 objective-1 timeline.
func BenchmarkControlledOutage(b *testing.B) {
	var res experiment.OutageResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.ControlledOutage{}.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.BeforeMBps, "before_MBps")
	b.ReportMetric(res.DuringMBps, "during_MBps")
	b.ReportMetric(res.AfterMBps, "after_MBps")
}

// BenchmarkRemoteSweep measures the latency-only reconnaissance procedure.
func BenchmarkRemoteSweep(b *testing.B) {
	var res attack.RemoteSweepResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = attack.RemoteSweeper{
			Plan: sig.SweepPlan{Start: 100, End: 4000, CoarseStep: 200, FineStep: 50, DwellSec: 1},
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(res.InferredBands) > 0 {
		b.ReportMetric(res.InferredBands[0].Low.Hertz(), "inferred_low_Hz")
		b.ReportMetric(res.InferredBands[0].High.Hertz(), "inferred_high_Hz")
	}
}

// BenchmarkProlongedAttackExt4 measures the full 80-virtual-second crash
// experiment's host cost.
func BenchmarkProlongedAttackExt4(b *testing.B) {
	var ttc time.Duration
	for i := 0; i < b.N; i++ {
		o, err := attack.ProlongedAttack{}.Run(attack.TargetExt4)
		if err != nil {
			b.Fatal(err)
		}
		if !o.Crashed {
			b.Fatal("no crash")
		}
		ttc = o.TimeToCrash
	}
	b.ReportMetric(ttc.Seconds(), "crash_s")
}
