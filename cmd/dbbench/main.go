// Command dbbench is a db_bench-style CLI for the simulated key-value
// store running on the simulated filesystem and victim drive.
//
// Usage:
//
//	dbbench [-workload fillseq|fillrandom|readrandom|readwhilewriting]
//	        [-num N] [-runtime SECONDS] [-scenario 1|2|3]
//	        [-freq HZ] [-distance CM] [-valuesize BYTES]
//
// A frequency of 0 disables the attack.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"deepnote/internal/core"
	"deepnote/internal/jfs"
	"deepnote/internal/kvdb"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

func main() {
	workload := flag.String("workload", "readwhilewriting", "fillseq, fillrandom, readrandom, or readwhilewriting")
	num := flag.Int("num", 10000, "operation count for fill/read workloads")
	runtime := flag.Float64("runtime", 5, "window for readwhilewriting (virtual seconds)")
	scenario := flag.Int("scenario", 2, "testbed scenario (1-3)")
	freq := flag.Float64("freq", 0, "attack tone frequency in Hz (0 = no attack)")
	distance := flag.Float64("distance", 1, "speaker distance in cm")
	valueSize := flag.Int("valuesize", 100, "value size in bytes")
	fill := flag.Int("fill", 5000, "pre-population for readwhilewriting")
	seed := flag.Int64("seed", 1, "simulation seed")
	image := flag.String("image", "", "optional disk image: loaded if present (skips mkfs), saved after the run")
	flag.Parse()

	var s core.Scenario
	switch *scenario {
	case 1:
		s = core.Scenario1
	case 2:
		s = core.Scenario2
	case 3:
		s = core.Scenario3
	default:
		fmt.Fprintln(os.Stderr, "dbbench: scenario must be 1, 2, or 3")
		os.Exit(2)
	}

	rig, err := core.NewRig(s, units.Distance(*distance)*units.Centimeter, *seed)
	if err != nil {
		fatal(err)
	}
	loaded := false
	if *image != "" {
		if f, err := os.Open(*image); err == nil {
			if err := rig.Disk.LoadImage(f); err != nil {
				fatal(err)
			}
			f.Close()
			loaded = true
		}
	}
	if !loaded {
		if err := jfs.Mkfs(rig.Disk, jfs.MkfsOptions{Blocks: 1 << 17}); err != nil {
			fatal(err)
		}
	}
	fs, err := jfs.Mount(rig.Disk, rig.Clock, jfs.Config{})
	if err != nil {
		fatal(err)
	}
	db, err := kvdb.Open(fs, rig.Clock, kvdb.Options{Seed: *seed})
	if err != nil {
		fatal(err)
	}
	bench := kvdb.NewBench(db, rig.Clock)

	if *workload == kvdb.WorkloadReadWhileWriting && *fill > 0 {
		if _, err := bench.Run(kvdb.BenchSpec{Workload: kvdb.WorkloadFillRandom, Num: *fill, ValueSize: *valueSize}); err != nil {
			fatal(err)
		}
	}
	if *freq > 0 {
		tone := sig.NewTone(units.Frequency(*freq))
		rig.ApplyTone(tone)
		fmt.Printf("attack: %v from %s in %v\n", tone.Freq, rig.Testbed.Chain.Path.Distance, s)
	}

	spec := kvdb.BenchSpec{
		Workload:  *workload,
		Num:       *num,
		Runtime:   time.Duration(*runtime * float64(time.Second)),
		ValueSize: *valueSize,
		Seed:      *seed,
	}
	res, err := bench.Run(spec)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s: ops=%d errors=%d elapsed=%.1fs (virtual)\n",
		*workload, res.Ops, res.Errors, res.Elapsed.Seconds())
	fmt.Printf("  throughput: %.1f MB/s, %.0f ops/s\n", res.ThroughputMBps(), res.OpsPerSec())
	l0, l1 := db.Levels()
	st := db.Stats()
	fmt.Printf("  engine: L0=%d L1=%d flushes=%d compactions=%d wal_errors=%d\n",
		l0, l1, st.MemtableFlushes, st.Compactions, st.WALErrors)
	if res.Crashed {
		fmt.Printf("  CRASHED: %v\n", res.CrashErr)
	}
	if *image != "" && !res.Crashed {
		if err := db.Close(); err != nil {
			fatal(err)
		}
		if err := fs.Unmount(); err != nil {
			fatal(err)
		}
		f, err := os.Create(*image)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := rig.Disk.SaveImage(f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "image saved to %s\n", *image)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dbbench: %v\n", err)
	os.Exit(1)
}
