package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"deepnote/internal/attack"
	"deepnote/internal/cluster"
	"deepnote/internal/core"
	"deepnote/internal/detect"
	"deepnote/internal/experiment"
	"deepnote/internal/fio"
	"deepnote/internal/fleet"
	"deepnote/internal/hdd"
	"deepnote/internal/metrics"
	"deepnote/internal/sig"
	"deepnote/internal/units"

	goruntime "runtime"
)

// benchEntry is one timed experiment.
type benchEntry struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// benchSnapshot is the JSON document `deepnote bench` writes. CI uploads
// it as an artifact so host-time regressions are visible across PRs.
type benchSnapshot struct {
	Schema    string       `json:"schema"`
	GoVersion string       `json:"go_version"`
	NumCPU    int          `json:"num_cpu"`
	Quick     bool         `json:"quick"`
	Entries   []benchEntry `json:"entries"`
	// MetricsOverheadFrac is (instrumented - bare) / bare host time for
	// the sweep pair; the observability layer promises < 5%.
	MetricsOverheadFrac float64 `json:"metrics_overhead_frac"`
	// ClusterOpsPerSec is the serving engine's shard-op throughput on the
	// standard healthy cell (best of three runs) — the number the
	// continuous-benchmarking gate tracks across PRs.
	ClusterOpsPerSec float64 `json:"cluster_ops_per_sec"`
	// ClusterOpsPerSecPrior carries the -baseline file's throughput
	// forward, so a committed snapshot records before/after in one place.
	ClusterOpsPerSecPrior float64 `json:"cluster_ops_per_sec_prior,omitempty"`
	// DefenseOpsPerSec is the serving engine's shard-op throughput with
	// the closed-loop defense active (steered GETs, replica reads, evac
	// writes) on the staged past-the-cliff cell — gated like
	// ClusterOpsPerSec once a baseline records it.
	DefenseOpsPerSec      float64 `json:"defense_ops_per_sec"`
	DefenseOpsPerSecPrior float64 `json:"defense_ops_per_sec_prior,omitempty"`
	// FleetOpsPerSec is the geo-distributed gateway engine's shard-op
	// throughput on a healthy three-site fleet (cross-site placement, WAN
	// delays, breaker bookkeeping on every fold) — gated like the others
	// once a baseline records it.
	FleetOpsPerSec      float64 `json:"fleet_ops_per_sec"`
	FleetOpsPerSecPrior float64 `json:"fleet_ops_per_sec_prior,omitempty"`
	// ClassifyOpsPerSec is the spectral fingerprinter's window-classification
	// throughput (Goertzel bank + classifier over pre-rendered telemetry,
	// benign and hostile mixed) — gated like the others once a baseline
	// records it.
	ClassifyOpsPerSec      float64 `json:"classify_ops_per_sec"`
	ClassifyOpsPerSecPrior float64 `json:"classify_ops_per_sec_prior,omitempty"`
	// ExfilGoodputBitsPerSec is the covert channel's best net goodput on a
	// fixed short-range sweep. Unlike the host-time throughputs above it is
	// a deterministic simulation quantity, so the gate catches modem or
	// receiver changes that silently shrink the channel — gated like the
	// others once a baseline records it.
	ExfilGoodputBitsPerSec      float64 `json:"exfil_goodput_bits_per_sec"`
	ExfilGoodputBitsPerSecPrior float64 `json:"exfil_goodput_bits_per_sec_prior,omitempty"`
}

// cmdBench times the key experiments in host seconds and writes the
// snapshot as JSON, including an instrumented-vs-bare sweep pair that
// quantifies the metrics layer's overhead and the serving engine's
// shard-op throughput. With -baseline it becomes the continuous-
// benchmarking gate: the run fails (after writing the snapshot, so CI
// can still upload it) when throughput regresses more than -maxregress
// below the committed baseline.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "BENCH_pr10.json", "output JSON path")
	quick := fs.Bool("quick", false, "shrink workloads (CI mode)")
	baseline := fs.String("baseline", "", "committed snapshot to gate cluster_ops_per_sec against (empty = no gate)")
	maxRegress := fs.Float64("maxregress", 0.10, "max fractional ops/sec regression allowed vs -baseline")
	fs.Parse(args)

	plan := sig.SweepPlan{Start: 100 * units.Hz, End: 2000 * units.Hz,
		CoarseStep: 200 * units.Hz, FineStep: 50 * units.Hz, DwellSec: 1}
	sweepRuntime := 500 * time.Millisecond
	fig2Step := 400 * units.Frequency(units.Hz)
	table2Runtime := 2 * time.Second
	if *quick {
		plan.End = 1000 * units.Hz
		sweepRuntime = 200 * time.Millisecond
		fig2Step = 1000 * units.Frequency(units.Hz)
		table2Runtime = time.Second
	}

	snap := benchSnapshot{
		Schema:    "deepnote-bench/v1",
		GoVersion: goruntime.Version(),
		NumCPU:    goruntime.NumCPU(),
		Quick:     *quick,
	}
	timeIt := func(name string, run func() error) error {
		start := time.Now()
		if err := run(); err != nil {
			return fmt.Errorf("bench %s: %w", name, err)
		}
		sec := time.Since(start).Seconds()
		snap.Entries = append(snap.Entries, benchEntry{Name: name, Seconds: sec})
		fmt.Printf("%-24s %8.3fs\n", name, sec)
		return nil
	}

	sweep := func(reg *metrics.Registry) func() error {
		return func() error {
			_, err := attack.Sweeper{Scenario: core.Scenario2, Plan: plan,
				JobRuntime: sweepRuntime, Metrics: reg}.Run(fio.SeqWrite)
			return err
		}
	}
	// Untimed warmup so the bare/instrumented pair compares steady-state
	// runs, not first-run allocator and cache effects.
	if err := sweep(nil)(); err != nil {
		return fmt.Errorf("bench warmup: %w", err)
	}
	if err := timeIt("sweep_bare", sweep(nil)); err != nil {
		return err
	}
	if err := timeIt("sweep_metrics", sweep(metrics.NewRegistry())); err != nil {
		return err
	}
	if err := timeIt("figure2", func() error {
		_, err := experiment.Figure2(fio.SeqWrite, experiment.Figure2Options{
			Step: fig2Step, JobRuntime: 200 * time.Millisecond})
		return err
	}); err != nil {
		return err
	}
	if err := timeIt("table2", func() error {
		_, err := experiment.Table2(experiment.Table2Options{Runtime: table2Runtime})
		return err
	}); err != nil {
		return err
	}
	if err := timeIt("crash_ext4", func() error {
		_, err := attack.ProlongedAttack{}.Run(attack.TargetExt4)
		return err
	}); err != nil {
		return err
	}
	clusterSpec := experiment.ClusterSpec{Requests: 240, Rate: 500}
	if *quick {
		clusterSpec = experiment.ClusterSpec{MaxSpeakers: 3, Objects: 16,
			ObjectSize: 8 << 10, Requests: 120, Rate: 500}
	}
	if err := timeIt("cluster_serve", func() error {
		rows, err := experiment.ClusterSweep(clusterSpec)
		if err != nil {
			return err
		}
		for _, r := range rows {
			if r.Serve.CorruptReads != 0 {
				return fmt.Errorf("cluster bench: %d corrupt reads at speakers=%d",
					r.Serve.CorruptReads, r.Speakers)
			}
		}
		return nil
	}); err != nil {
		return err
	}

	engineRequests := 200_000
	if *quick {
		engineRequests = 50_000
	}
	if err := timeIt("cluster_engine", func() error {
		ops, err := benchClusterEngine(engineRequests)
		snap.ClusterOpsPerSec = ops
		return err
	}); err != nil {
		return err
	}
	fmt.Printf("cluster engine: %.0f shard-ops/s\n", snap.ClusterOpsPerSec)

	defenseRequests := 50_000
	if *quick {
		defenseRequests = 10_000
	}
	if err := timeIt("defense_loop", func() error {
		ops, err := benchDefenseLoop(defenseRequests)
		snap.DefenseOpsPerSec = ops
		return err
	}); err != nil {
		return err
	}
	fmt.Printf("defense loop: %.0f shard-ops/s\n", snap.DefenseOpsPerSec)

	fleetSpec := experiment.GeoFleetSpec{}
	if *quick {
		fleetSpec = experiment.GeoFleetSpec{Requests: 400, Objects: 24}
	}
	if err := timeIt("fleet_serve", func() error {
		res, err := experiment.GeoFleetRun(fleetSpec)
		if err != nil {
			return err
		}
		if res.Aware.CorruptReads != 0 || res.Naive.CorruptReads != 0 {
			return fmt.Errorf("fleet bench: corrupt reads aware=%d naive=%d",
				res.Aware.CorruptReads, res.Naive.CorruptReads)
		}
		return nil
	}); err != nil {
		return err
	}

	fleetRequests := 50_000
	if *quick {
		fleetRequests = 10_000
	}
	if err := timeIt("fleet_engine", func() error {
		ops, err := benchFleetEngine(fleetRequests)
		snap.FleetOpsPerSec = ops
		return err
	}); err != nil {
		return err
	}
	fmt.Printf("fleet engine: %.0f shard-ops/s\n", snap.FleetOpsPerSec)

	classifyWindows := 4000
	if *quick {
		classifyWindows = 1000
	}
	if err := timeIt("fingerprint_classify", func() error {
		ops, err := benchFingerprintClassify(classifyWindows)
		snap.ClassifyOpsPerSec = ops
		return err
	}); err != nil {
		return err
	}
	fmt.Printf("fingerprint classifier: %.0f windows/s\n", snap.ClassifyOpsPerSec)

	if err := timeIt("exfil_channel", func() error {
		goodput, err := benchExfilChannel()
		snap.ExfilGoodputBitsPerSec = goodput
		return err
	}); err != nil {
		return err
	}
	fmt.Printf("exfil channel: %.2f goodput b/s\n", snap.ExfilGoodputBitsPerSec)

	bare, instr := snap.Entries[0].Seconds, snap.Entries[1].Seconds
	if bare > 0 {
		snap.MetricsOverheadFrac = (instr - bare) / bare
	}
	fmt.Printf("metrics overhead: %+.2f%%\n", snap.MetricsOverheadFrac*100)

	var gateErr error
	if *baseline != "" {
		prior, err := readBenchJSON(*baseline)
		if err != nil {
			return fmt.Errorf("bench baseline: %w", err)
		}
		snap.ClusterOpsPerSecPrior = prior.ClusterOpsPerSec
		if floor := prior.ClusterOpsPerSec * (1 - *maxRegress); snap.ClusterOpsPerSec < floor {
			gateErr = fmt.Errorf("bench gate: cluster engine %.0f shard-ops/s is below %.0f (baseline %.0f - %.0f%%)",
				snap.ClusterOpsPerSec, floor, prior.ClusterOpsPerSec, *maxRegress*100)
		} else {
			fmt.Printf("bench gate: %.0f shard-ops/s vs baseline %.0f: ok\n",
				snap.ClusterOpsPerSec, prior.ClusterOpsPerSec)
		}
		// The defense-loop gate arms itself the first time a baseline
		// records the number, so gating against an older snapshot that
		// predates the defense engine stays green.
		snap.DefenseOpsPerSecPrior = prior.DefenseOpsPerSec
		if prior.DefenseOpsPerSec > 0 {
			if floor := prior.DefenseOpsPerSec * (1 - *maxRegress); snap.DefenseOpsPerSec < floor {
				gateErr = fmt.Errorf("bench gate: defense loop %.0f shard-ops/s is below %.0f (baseline %.0f - %.0f%%)",
					snap.DefenseOpsPerSec, floor, prior.DefenseOpsPerSec, *maxRegress*100)
			} else {
				fmt.Printf("bench gate: defense loop %.0f shard-ops/s vs baseline %.0f: ok\n",
					snap.DefenseOpsPerSec, prior.DefenseOpsPerSec)
			}
		}
		// Same self-arming pattern for the fleet gateway engine.
		snap.FleetOpsPerSecPrior = prior.FleetOpsPerSec
		if prior.FleetOpsPerSec > 0 {
			if floor := prior.FleetOpsPerSec * (1 - *maxRegress); snap.FleetOpsPerSec < floor {
				gateErr = fmt.Errorf("bench gate: fleet engine %.0f shard-ops/s is below %.0f (baseline %.0f - %.0f%%)",
					snap.FleetOpsPerSec, floor, prior.FleetOpsPerSec, *maxRegress*100)
			} else {
				fmt.Printf("bench gate: fleet engine %.0f shard-ops/s vs baseline %.0f: ok\n",
					snap.FleetOpsPerSec, prior.FleetOpsPerSec)
			}
		}
		// And for the fingerprint classifier.
		snap.ClassifyOpsPerSecPrior = prior.ClassifyOpsPerSec
		if prior.ClassifyOpsPerSec > 0 {
			if floor := prior.ClassifyOpsPerSec * (1 - *maxRegress); snap.ClassifyOpsPerSec < floor {
				gateErr = fmt.Errorf("bench gate: fingerprint classifier %.0f windows/s is below %.0f (baseline %.0f - %.0f%%)",
					snap.ClassifyOpsPerSec, floor, prior.ClassifyOpsPerSec, *maxRegress*100)
			} else {
				fmt.Printf("bench gate: fingerprint classifier %.0f windows/s vs baseline %.0f: ok\n",
					snap.ClassifyOpsPerSec, prior.ClassifyOpsPerSec)
			}
		}
		// And for the covert channel's goodput. The value is deterministic
		// (simulation, not host time), so any dip at all is a real modem or
		// receiver regression — the gate is exact, no tolerance band.
		snap.ExfilGoodputBitsPerSecPrior = prior.ExfilGoodputBitsPerSec
		if prior.ExfilGoodputBitsPerSec > 0 {
			if snap.ExfilGoodputBitsPerSec < prior.ExfilGoodputBitsPerSec {
				gateErr = fmt.Errorf("bench gate: exfil channel %.2f goodput b/s is below the baseline %.2f",
					snap.ExfilGoodputBitsPerSec, prior.ExfilGoodputBitsPerSec)
			} else {
				fmt.Printf("bench gate: exfil channel %.2f goodput b/s vs baseline %.2f: ok\n",
					snap.ExfilGoodputBitsPerSec, prior.ExfilGoodputBitsPerSec)
			}
		}
	}
	if err := writeBenchJSON(*out, snap); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return gateErr
}

// benchClusterEngine measures the serving engine's shard-op throughput
// on a healthy standard cell (4-of-6 over six containers, one speaker
// keyed on): best host-time rate of three serves, so a single scheduler
// hiccup doesn't gate a PR.
func benchClusterEngine(requests int) (float64, error) {
	lay := cluster.LineLayout(6, 2*units.Meter).WithSpeakersAt(sig.NewTone(650*units.Hz), 0)
	c, err := cluster.New(cluster.Config{
		Layout: lay, DataShards: 4, ParityShards: 2, Objects: 64, ObjectSize: 16 << 10,
	})
	if err != nil {
		return 0, err
	}
	if err := c.Preload(); err != nil {
		return 0, err
	}
	c.SetSchedule([]cluster.ScheduleStep{{At: 0, Active: []bool{true}}})
	best := 0.0
	for i := 0; i < 3; i++ {
		start := time.Now()
		res, err := c.Serve(cluster.TrafficSpec{Requests: requests, Rate: 1e6})
		if err != nil {
			return 0, err
		}
		if res.CorruptReads != 0 {
			return 0, fmt.Errorf("cluster engine bench: %d corrupt reads", res.CorruptReads)
		}
		if ops := float64(res.ShardReads+res.ShardWrites) / time.Since(start).Seconds(); ops > best {
			best = ops
		}
	}
	return best, nil
}

// benchDefenseLoop measures the serving engine with the closed-loop
// defense active on the staged past-the-cliff cell: three speakers key
// on one at a time, each fix steers GETs through per-phase source orders
// and triggers the evac writes, so the number covers the full defended
// hot path (order resolution, replica reads, checksum verification).
// Best host-time rate of three serves.
func benchDefenseLoop(requests int) (float64, error) {
	tone := sig.NewTone(650 * units.Hz)
	lay := cluster.LineLayout(6, 2*units.Meter).WithSpeakersAt(tone, 0, 1, 2)
	c, err := cluster.New(cluster.Config{
		Layout: lay, DataShards: 4, ParityShards: 2, Objects: 64, ObjectSize: 16 << 10,
	})
	if err != nil {
		return 0, err
	}
	if err := c.Preload(); err != nil {
		return 0, err
	}
	window := time.Duration(float64(requests) / 1e6 * float64(time.Second))
	steps := []cluster.ScheduleStep{
		{At: window / 4, Active: []bool{true, false, false}},
		{At: window / 2, Active: []bool{true, true, false}},
		{At: 3 * window / 4, Active: []bool{true, true, true}},
	}
	c.SetSchedule(steps)
	var fixes []cluster.SourceFix
	for i, st := range steps {
		fixes = append(fixes, cluster.SourceFix{
			At: st.At, Pos: lay.Speakers[i].Pos, Err: 20 * units.Centimeter, Tone: tone,
		})
	}
	// The bench compresses the whole escalation into milliseconds of
	// virtual time, so the controller lag must be explicit and tiny or
	// every phase would activate after the last arrival.
	if err := c.SetDefense(cluster.DefenseSpec{Fixes: fixes, React: cluster.Ptr(time.Nanosecond)}); err != nil {
		return 0, err
	}
	best := 0.0
	for i := 0; i < 3; i++ {
		start := time.Now()
		res, err := c.Serve(cluster.TrafficSpec{Requests: requests, Rate: 1e6})
		if err != nil {
			return 0, err
		}
		if res.CorruptReads != 0 {
			return 0, fmt.Errorf("defense loop bench: %d corrupt reads", res.CorruptReads)
		}
		if res.SteeredGets == 0 {
			return 0, fmt.Errorf("defense loop bench: no steered GETs — the defended path was not exercised")
		}
		if ops := float64(res.ShardReads+res.ShardWrites) / time.Since(start).Seconds(); ops > best {
			best = ops
		}
	}
	return best, nil
}

// benchFleetEngine measures the geo-distributed gateway engine's
// shard-op throughput on a healthy three-site fleet with attack-aware
// placement: every stripe spans the WAN, so the number covers the
// cross-site hot path — hash-drawn link delays, breaker bookkeeping on
// every folded outcome, and in-place payload verification. The deadline
// is effectively unbounded because the open-loop rate floods the drives
// far past real time; the bench measures engine throughput, not SLOs.
// Best host-time rate of three serves.
func benchFleetEngine(requests int) (float64, error) {
	sites := []fleet.SiteSpec{
		{Name: "a", Layout: cluster.LineLayout(8, 2*units.Meter)},
		{Name: "b", Layout: cluster.LineLayout(8, 2*units.Meter)},
		{Name: "c", Layout: cluster.LineLayout(8, 2*units.Meter)},
	}
	f, err := fleet.New(fleet.Config{
		Sites: sites, Objects: 64, ObjectSize: 8 << 10,
		Resilience: fleet.Resilience{Deadline: time.Hour},
	})
	if err != nil {
		return 0, err
	}
	if err := f.Preload(); err != nil {
		return 0, err
	}
	best := 0.0
	for i := 0; i < 3; i++ {
		start := time.Now()
		res, err := f.Serve(fleet.TrafficSpec{Requests: requests, Rate: 1e6})
		if err != nil {
			return 0, err
		}
		if res.CorruptReads != 0 {
			return 0, fmt.Errorf("fleet engine bench: %d corrupt reads", res.CorruptReads)
		}
		if res.CrossSiteOps == 0 {
			return 0, fmt.Errorf("fleet engine bench: no cross-site ops — the WAN path was not exercised")
		}
		if ops := float64(res.ShardReads+res.ShardWrites) / time.Since(start).Seconds(); ops > best {
			best = ops
		}
	}
	return best, nil
}

// benchFingerprintClassify measures the spectral classifier's window
// throughput: telemetry windows are pre-rendered (half benign facility-pump
// ambience, half with the 650 Hz tone mixed in, so both the comb-masking
// and hostile paths run) and fed through the Goertzel bank + classifier in
// a tight loop. Best host-time rate of three passes.
func benchFingerprintClassify(windows int) (float64, error) {
	fp, err := detect.NewFingerprinter(detect.FingerprintConfig{})
	if err != nil {
		return 0, err
	}
	synth := detect.NewSynth(fp.SampleRate(), fp.WindowSamples(), detect.DefaultSensorSigma, 1)
	amb := sig.NewAmbient(sig.AmbientPump, 1)
	hostile := hdd.Vibration{Freq: 650 * units.Hz, Amplitude: 0.05}
	const distinct = 64
	rendered := make([][]float64, distinct)
	// First half benign, second half hostile — contiguous blocks so the
	// classifier's persistence run actually confirms detections.
	for i := range rendered {
		vib := hdd.Vibration{}
		if i >= distinct/2 {
			vib = hostile
		}
		rendered[i] = append([]float64(nil), synth.Window(vib, amb)...)
	}
	best := 0.0
	for pass := 0; pass < 3; pass++ {
		start := time.Now()
		for i := 0; i < windows; i++ {
			fp.Feed(rendered[i%distinct])
		}
		elapsed := time.Since(start).Seconds()
		if fp.HostileWindows() == 0 {
			return 0, fmt.Errorf("fingerprint bench: hostile path never taken")
		}
		if ops := float64(windows) / elapsed; ops > best {
			best = ops
		}
	}
	return best, nil
}

// benchExfilChannel runs the covert channel's fixed short-range sweep and
// returns the best net goodput. The spec is identical in quick and full
// modes on purpose: the headline is deterministic, so the committed
// baseline and the CI -quick run must measure the same channel.
func benchExfilChannel() (float64, error) {
	res, err := experiment.ExfilRun(experiment.ExfilSpec{
		Distances:    []units.Distance{5 * units.Meter},
		Depths:       []units.Distance{0},
		SymbolRates:  []float64{32, 64},
		Frames:       2,
		DetectFrames: 1,
	})
	if err != nil {
		return 0, err
	}
	if res.RecoveredAmbients < 3 {
		return 0, fmt.Errorf("exfil bench: bit-exact recovery over only %d ambients at 5 m", res.RecoveredAmbients)
	}
	return res.BestGoodputBps, nil
}

func writeBenchJSON(path string, snap benchSnapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readBenchJSON(path string) (benchSnapshot, error) {
	var snap benchSnapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return snap, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}
