package main

import (
	"flag"
	"fmt"

	"deepnote/internal/cluster"
	"deepnote/internal/experiment"
	"deepnote/internal/units"
)

// cmdCluster runs the facility-scale campaign: an erasure-coded
// underwater datacenter serving open-loop client traffic while an
// attacker ladder silences failure domains one point-blank speaker at a
// time. Stdout is byte-identical for any -workers value and with
// metrics on or off.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	containers := fs.Int("containers", 6, "container count (failure domains)")
	drives := fs.Int("drives", 1, "drives per container")
	data := fs.Int("data", 4, "data shards per stripe (k)")
	parity := fs.Int("parity", 2, "parity shards per stripe (m)")
	objects := fs.Int("objects", 24, "objects in the keyspace")
	objSize := fs.Int("objsize", 16<<10, "object size in bytes")
	spacing := fs.Float64("spacing", 2, "container spacing in meters")
	freq := fs.Float64("freq", 650, "attack tone in Hz")
	speakers := fs.Int("speakers", 0, "top of the speaker ladder (0 = one per container)")
	cell := fs.Int("cell", -1, "run only this ladder cell (speaker count; -1 = full ladder)")
	requests := fs.Int("requests", 240, "client requests per cell")
	rate := fs.Float64("rate", 250, "client arrival rate (requests/second)")
	readFrac := fs.Float64("readfrac", 0.9, "GET fraction of the workload (0 = write-only)")
	cellWorkers := fs.Int("cell-workers", 1, "drive fan-out inside each cell (never changes results)")
	attackStart := fs.Float64("attack-start", 0.25, "attack-on point as a fraction of the request window")
	attackStop := fs.Float64("attack-stop", 0.75, "attack-off point as a fraction of the window (>= 1: never off)")
	attackStagger := fs.Float64("attack-stagger", 0, "stagger key-ons by this fraction of the window (0 = all at once)")
	defenseOn := fs.Bool("defense", false, "close the loop: hydrophone fixes steer the store in every cell")
	hydrophones := fs.Int("hydrophones", 6, "hydrophone ring elements (with -defense)")
	standoff := fs.Float64("standoff", 3, "hydrophone ring standoff in meters (with -defense)")
	seed := fs.Int64("seed", 1, "base seed")
	workers := fs.Int("workers", 0, "parallel workers (0 = one per CPU)")
	o := addObsFlags(fs)
	fs.Parse(args)

	spec := experiment.ClusterSpec{
		Containers:         *containers,
		DrivesPerContainer: *drives,
		DataShards:         *data,
		ParityShards:       *parity,
		Objects:            *objects,
		ObjectSize:         *objSize,
		Spacing:            units.Distance(*spacing) * units.Meter,
		Freq:               units.Frequency(*freq),
		MaxSpeakers:        *speakers,
		Requests:           *requests,
		Rate:               *rate,
		ReadFraction:       cluster.Ptr(*readFrac),
		AttackStartFrac:    *attackStart,
		AttackStopFrac:     *attackStop,
		StaggerFrac:        *attackStagger,
		Defense:            *defenseOn,
		Hydrophones:        *hydrophones,
		Standoff:           cluster.Ptr(units.Distance(*standoff) * units.Meter),
		Seed:               *seed,
		Workers:            *workers,
		CellWorkers:        *cellWorkers,
		Metrics:            o.registry(),
	}
	if *cell >= 0 {
		spec.Cells = []int{*cell}
	}
	rows, err := experiment.ClusterSweep(spec)
	if err != nil {
		return err
	}
	fmt.Printf("cluster: %d containers x %d drives, %d-of-%d stripes, %d x %d B objects\n",
		*containers, *drives, *data, *data+*parity,
		*objects, *objSize)
	fmt.Printf("traffic: %d requests at %.0f req/s (%.0f%% GET), attack window [%.2f, %.2f] of run\n",
		*requests, *rate, *readFrac*100, *attackStart, *attackStop)
	fmt.Print(experiment.ClusterReport(rows).String())
	fmt.Println("reading the ladder: with one shard per failure domain, GET availability")
	fmt.Printf("holds at 100%% (served from parity, degraded) until more than m=%d containers\n", *parity)
	fmt.Println("are silenced at once; durability margin and tail latency erode first.")
	return o.finish("cluster", args, *seed, *workers)
}
