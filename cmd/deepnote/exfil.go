package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"deepnote/internal/experiment"
	"deepnote/internal/units"
)

// cmdExfil runs the covert-channel experiment: the attack in reverse. An
// insider's drive modulates seek acoustics to carry data; the offense leg
// maps net goodput over distance, depth, and the benign ambient corpus,
// and sweeps signaling rate for both schemes; the defense leg runs the
// same waveforms under the PR 9 fingerprinting pipeline and reports how
// many payload bytes leak before the alarm. Stdout is byte-identical for
// any -workers value and with metrics on or off.
func cmdExfil(args []string) error {
	fs := flag.NewFlagSet("exfil", flag.ExitOnError)
	distances := fs.String("distances", "5,20,80", "comma-separated transmitter-to-hydrophone ranges in m")
	depths := fs.String("depths", "0,6", "comma-separated facility surface depths in m (0 = deep water)")
	rates := fs.String("rates", "16,32,64", "comma-separated signaling rates in baud")
	frames := fs.Int("frames", 3, "frames transmitted per offense cell")
	detectFrames := fs.Int("detect-frames", 8, "frames transmitted per defense cell")
	seed := fs.Int64("seed", 1, "base seed")
	workers := fs.Int("workers", 0, "parallel workers (0 = one per CPU)")
	o := addObsFlags(fs)
	fs.Parse(args)

	distList, err := parseFloatList("-distances", *distances)
	if err != nil {
		return err
	}
	depthList, err := parseFloatList("-depths", *depths)
	if err != nil {
		return err
	}
	rateList, err := parseFloatList("-rates", *rates)
	if err != nil {
		return err
	}
	res, err := experiment.ExfilRun(experiment.ExfilSpec{
		Distances:    metersOf(distList),
		Depths:       metersOf(depthList),
		SymbolRates:  rateList,
		Frames:       *frames,
		DetectFrames: *detectFrames,
		Seed:         *seed,
		Workers:      *workers,
		Metrics:      o.registry(),
	})
	if err != nil {
		return err
	}
	fmt.Printf("exfil: %d capacity cells, %d rate cells, %d defense cells\n",
		len(res.Capacity), len(res.Rates), len(res.Detect))
	fmt.Print(experiment.ExfilCapacityReport(res).String())
	fmt.Println()
	fmt.Print(experiment.ExfilRateReport(res).String())
	fmt.Println()
	fmt.Print(experiment.ExfilDetectReport(res).String())
	fmt.Printf("bit-exact recovery at %d distances over %d ambient backgrounds; best goodput %.2f b/s\n",
		res.RecoveredDistances, res.RecoveredAmbients, res.BestGoodputBps)
	return o.finish("exfil", args, *seed, *workers)
}

func parseFloatList(name, s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad %s entry %q: %v", name, part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s must list at least one value", name)
	}
	return out, nil
}

func metersOf(vals []float64) []units.Distance {
	out := make([]units.Distance, len(vals))
	for i, v := range vals {
		out[i] = units.Distance(v * float64(units.Meter))
	}
	return out
}
