package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"deepnote/internal/experiment"
	"deepnote/internal/units"
)

// cmdFingerprint runs the spectral-fingerprinting experiment: the benign
// ambient corpus (ship traffic, rain, snapping shrimp, facility pumps,
// thermal creak) measures the classifier's false-positive rate, and the
// hostile tone is injected over every background at controlled SNRs to
// measure detection latency and confidence. Stdout is byte-identical for
// any -workers value and with metrics on or off.
func cmdFingerprint(args []string) error {
	fs := flag.NewFlagSet("fingerprint", flag.ExitOnError)
	freq := fs.Float64("freq", 650, "hostile tone in Hz")
	snrs := fs.String("snrs", "0,6,12", "comma-separated hostile SNRs in dB over the telemetry floor")
	seeds := fs.Int("seeds", 3, "seeded variants of each benign scenario")
	duration := fs.Float64("duration", 12, "run length per cell in virtual seconds")
	seed := fs.Int64("seed", 1, "base seed")
	workers := fs.Int("workers", 0, "parallel workers (0 = one per CPU)")
	o := addObsFlags(fs)
	fs.Parse(args)

	snrList, err := parseSNRs(*snrs)
	if err != nil {
		return err
	}
	res, err := experiment.FingerprintRun(experiment.FingerprintSpec{
		Freq:        units.Frequency(*freq),
		SNRs:        snrList,
		BenignSeeds: *seeds,
		Duration:    time.Duration(*duration * float64(time.Second)),
		Seed:        *seed,
		Workers:     *workers,
		Metrics:     o.registry(),
	})
	if err != nil {
		return err
	}
	fmt.Printf("fingerprint: %d benign cells (%d scenarios x %d seeds), %d hostile cells at %.0f Hz\n",
		len(res.Benign), len(res.Benign) / *seeds, *seeds, len(res.Hostile), *freq)
	fmt.Print(experiment.FingerprintBenignReport(res).String())
	fmt.Printf("corpus false-positive rate: %d/%d windows = %.4f (max benign confidence %.2f)\n",
		res.FalsePositives, res.BenignWindows, res.FPRate, res.BenignMaxConfidence)
	fmt.Println()
	fmt.Print(experiment.FingerprintDetectionReport(res).String())
	fmt.Printf("defense gate at min confidence 0.5: benign verdict armed=%v, hostile verdict armed=%v\n",
		res.GateBenignArmed, res.GateHostileArmed)
	return o.finish("fingerprint", args, *seed, *workers)
}

func parseSNRs(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -snrs entry %q: %v", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-snrs must list at least one value")
	}
	return out, nil
}
