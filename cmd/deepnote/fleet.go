package main

import (
	"flag"
	"fmt"
	"time"

	"deepnote/internal/cluster"
	"deepnote/internal/experiment"
	"deepnote/internal/units"
)

// cmdFleet runs the geo-distributed campaign: a multi-facility fleet
// serves one global workload under both placement policies while an
// acoustic blast silences part of one site and the WAN degrades under
// injected faults (a link flap plus a brownout over the attack window).
// Stdout is byte-identical for any -workers value and with metrics on
// or off.
func cmdFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	sites := fs.Int("sites", 4, "facility count")
	containers := fs.Int("containers", 8, "containers per facility")
	data := fs.Int("data", 4, "data shards per stripe (k)")
	parity := fs.Int("parity", 4, "parity shards per stripe (m)")
	objects := fs.Int("objects", 48, "objects in the keyspace")
	objSize := fs.Int("objsize", 8<<10, "object size in bytes")
	spacing := fs.Float64("spacing", 2, "container spacing in meters")
	freq := fs.Float64("freq", 650, "attack tone in Hz")
	blast := fs.Int("blast", 5, "attacked contiguous containers at site 0")
	attackStart := fs.Float64("attack-start", 0.5, "attack-on offset in seconds")
	attackStop := fs.Float64("attack-stop", 2, "attack-off offset in seconds")
	deadline := fs.Float64("deadline", 2, "per-request deadline budget in seconds")
	requests := fs.Int("requests", 800, "global client requests")
	rate := fs.Float64("rate", 300, "global arrival rate (requests/second)")
	readFrac := fs.Float64("readfrac", 0.9, "GET fraction of the workload (0 = write-only)")
	seed := fs.Int64("seed", 1, "infrastructure seed (drives, WAN jitter)")
	workers := fs.Int("workers", 0, "parallel workers (0 = one per CPU)")
	cellWorkers := fs.Int("cell-workers", 1, "node fan-out inside each fleet (never changes results)")
	o := addObsFlags(fs)
	fs.Parse(args)

	res, err := experiment.GeoFleetRun(experiment.GeoFleetSpec{
		Sites:             *sites,
		ContainersPerSite: *containers,
		DataShards:        *data,
		ParityShards:      *parity,
		Objects:           *objects,
		ObjectSize:        *objSize,
		Spacing:           units.Distance(*spacing) * units.Meter,
		Freq:              units.Frequency(*freq),
		Blast:             *blast,
		AttackStart:       time.Duration(*attackStart * float64(time.Second)),
		AttackStop:        time.Duration(*attackStop * float64(time.Second)),
		Deadline:          time.Duration(*deadline * float64(time.Second)),
		Requests:          *requests,
		Rate:              *rate,
		ReadFraction:      cluster.Ptr(*readFrac),
		Seed:              *seed,
		Workers:           *workers,
		CellWorkers:       *cellWorkers,
		Metrics:           o.registry(),
	})
	if err != nil {
		return err
	}
	spec := res.Spec
	fmt.Printf("fleet: %d sites x %d containers, %d-of-%d stripes, %d x %d B objects\n",
		spec.Sites, spec.ContainersPerSite, spec.DataShards,
		spec.DataShards+spec.ParityShards, spec.Objects, spec.ObjectSize)
	fmt.Printf("attack: %d-container blast at site 0 over [%.1fs, %.1fs) with a link flap and a brownout\n",
		spec.Blast, spec.AttackStart.Seconds(), spec.AttackStop.Seconds())
	fmt.Printf("traffic: %d requests at %.0f req/s (%.0f%% GET), deadline %.1fs\n",
		spec.Requests, spec.Rate, *spec.ReadFraction*100, spec.Deadline.Seconds())
	fmt.Print(experiment.GeoFleetReport(res).String())
	fmt.Println("reading the table: naive placement keeps every stripe inside its home")
	fmt.Println("site, so one facility blast erases more shards than parity can absorb;")
	fmt.Println("attack-aware placement caps each site's share of a stripe at the parity")
	fmt.Println("budget and strides it across blast radii, so failover reads keep serving")
	fmt.Println("through the same attack — at the cost of routine cross-site traffic.")
	return o.finish("fleet", args, *seed, *workers)
}
