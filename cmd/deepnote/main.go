// Command deepnote regenerates the paper's tables and figures and runs the
// attack procedures from the command line.
//
// Usage:
//
//	deepnote figure2 [-pattern write|read] [-step HZ] [-workers N] [-csv]
//	deepnote table1 [-csv]
//	deepnote table2 [-runtime SECONDS] [-csv]
//	deepnote table3
//	deepnote sweep  [-scenario 1|2|3] [-pattern write|read] [-workers N]
//	deepnote facility [-containers N] [-drives N] [-spacing M] [-workers N]
//	deepnote fleet  [-sites N] [-containers N] [-data K] [-parity M] [-blast N] [-workers N]
//	deepnote cluster [-containers N] [-data K] [-parity M] [-speakers N] [-defense] [-workers N]
//	deepnote sonar  [-hydrophones N] [-standoff M] [-speakers N] [-workers N]
//	deepnote fingerprint [-freq HZ] [-snrs DB,DB,...] [-seeds N] [-workers N]
//	deepnote range  [-scenario 1|2|3] [-freq HZ]
//	deepnote crash  [-target ext4|ubuntu|rocksdb]
//	deepnote defense [-scenario 1|2|3] [-distance CM]
//	deepnote stealthgrid [-duration SECONDS] [-workers N]
//	deepnote selfcheck [-scenario 1|2|3] [-workers N] [-tol FRAC] [-report PATH]
//	deepnote all
//
// Grid-shaped commands (figure2, sweep, facility, fleet, cluster,
// ablation, stealthgrid) fan
// their independent simulation cells over a worker pool; -workers N bounds
// the parallelism (0, the default, means one worker per CPU). Results are
// bit-identical for any worker count.
//
// The experiment commands (figure2, table1-3, sweep, range, crash, outage,
// selfcheck) also accept -metrics PATH and -manifest PATH: the run is instrumented
// with per-layer counters (hdd, blockdev, fio, jfs, kvdb, osmodel, attack,
// parallel, experiment), the snapshot/manifest is written as JSON, and a
// per-layer summary table goes to stderr. Instrumentation never touches
// the simulation clock or RNG, so stdout stays byte-identical with
// metrics on or off.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"deepnote/internal/attack"
	"deepnote/internal/campaign"
	"deepnote/internal/core"
	"deepnote/internal/defense"
	"deepnote/internal/experiment"
	"deepnote/internal/fio"
	"deepnote/internal/metrics"
	"deepnote/internal/report"
	"deepnote/internal/thermal"
	"deepnote/internal/units"
	"deepnote/internal/water"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "figure2":
		err = cmdFigure2(args)
	case "table1":
		err = cmdTable1(args)
	case "table2":
		err = cmdTable2(args)
	case "table3":
		err = cmdTable3(args)
	case "sweep":
		err = cmdSweep(args)
	case "range":
		err = cmdRange(args)
	case "crash":
		err = cmdCrash(args)
	case "defense":
		err = cmdDefense(args)
	case "deploy":
		err = cmdDeploy(args)
	case "section5":
		err = cmdSection5(args)
	case "natick":
		err = cmdNatick(args)
	case "outage":
		err = cmdOutage(args)
	case "remotesweep":
		err = cmdRemoteSweep(args)
	case "stealth":
		err = cmdStealth(args)
	case "stealthgrid":
		err = cmdStealthGrid(args)
	case "ablation":
		err = cmdAblation(args)
	case "redundancy":
		err = cmdRedundancy(args)
	case "resilience":
		err = cmdResilience(args)
	case "ultrasonic":
		err = cmdUltrasonic(args)
	case "facility":
		err = cmdFacility(args)
	case "fleet":
		err = cmdFleet(args)
	case "cluster":
		err = cmdCluster(args)
	case "sonar":
		err = cmdSonar(args)
	case "fingerprint":
		err = cmdFingerprint(args)
	case "exfil":
		err = cmdExfil(args)
	case "adaptive":
		err = cmdAdaptive(args)
	case "integrity":
		err = cmdIntegrity(args)
	case "selfcheck":
		err = cmdSelfCheck(args)
	case "bench":
		err = cmdBench(args)
	case "all":
		err = cmdAll(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "deepnote: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "deepnote %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `deepnote — underwater acoustic HDD attack simulator (HotStorage '23 reproduction)

commands:
  figure2   throughput vs attack frequency, all scenarios (Figure 2)
  table1    FIO throughput/latency vs distance (Table 1)
  table2    RocksDB readwhilewriting vs distance (Table 2)
  table3    software time-to-crash (Table 3)
  sweep     attacker's two-phase frequency sweep
  range     range test at a chosen frequency
  crash     prolonged attack against one software stack
  defense   evaluate the defense suite
  deploy    defense suite with thermal consequences (acoustic + cooling)
  section5  open-water effective-range analysis (attacker tiers x waters)
  natick    enclosure hardening analysis (incl. steel pressure vessel)
  outage    controlled-outage timeline (attack on, attack off)
  remotesweep  latency-only reconnaissance against a storage service
  stealth   duty-cycled attack vs the victim's anomaly detector
  stealthgrid  duty-cycle (on x off) grid: the damage/stealth trade-off matrix
  ablation  headline metrics with model mechanisms removed
  redundancy  RAID placement under attack (co-located vs split)
  resilience  prolonged attack vs hardening ladder (bare / watchdog / hardened)
  ultrasonic  shock-sensor vector reachability through the enclosure
  facility  facility availability vs attacker speaker count
  fleet     geo-distributed fleet under facility attack: attack-aware vs naive placement
  cluster   erasure-coded datacenter serving traffic under a speaker ladder
  sonar     closed-loop defense: hydrophone localization steering the store
  fingerprint  spectral attack fingerprinting vs the benign ambient corpus
  exfil     covert acoustic exfiltration: capacity map, rate sweep, fingerprint defense
  adaptive  closed-loop attacker: find the best tone within a probe budget
  integrity silent adjacent-track corruption under a marginal attack
  selfcheck differential check: analytic oracle vs Monte-Carlo simulation
  bench     host-time benchmark snapshot of the key experiments (JSON)
  all       regenerate every paper artifact

observability (figure2, table1-3, sweep, range, crash, outage, resilience, selfcheck, stealthgrid, cluster):
  -metrics PATH   write a per-layer metrics snapshot JSON
  -manifest PATH  write a run manifest JSON (spec, seed, git, metrics)`)
}

// obs carries the -metrics/-manifest observability flags shared by the
// instrumented experiment commands.
type obs struct {
	metricsPath  *string
	manifestPath *string
	reg          *metrics.Registry
}

func addObsFlags(fs *flag.FlagSet) *obs {
	o := &obs{}
	o.metricsPath = fs.String("metrics", "", "write a per-layer metrics snapshot JSON to this path")
	o.manifestPath = fs.String("manifest", "", "write a run manifest JSON to this path")
	return o
}

// registry returns the registry to thread through the run — non-nil only
// when an output path was requested, so unobserved runs skip all
// instrumentation.
func (o *obs) registry() *metrics.Registry {
	if *o.metricsPath == "" && *o.manifestPath == "" {
		return nil
	}
	if o.reg == nil {
		o.reg = metrics.NewRegistry()
	}
	return o.reg
}

// finish writes the requested artifacts and prints the per-layer summary
// to stderr. Stdout is untouched, so command output stays byte-identical
// with metrics on or off.
func (o *obs) finish(command string, args []string, seed int64, workers int) error {
	reg := o.registry()
	if reg == nil {
		return nil
	}
	snap := reg.Snapshot()
	if *o.metricsPath != "" {
		if err := metrics.WriteSnapshot(*o.metricsPath, snap); err != nil {
			return err
		}
	}
	if *o.manifestPath != "" {
		m := metrics.NewManifest(command, args, seed, workers, snap)
		if err := metrics.WriteManifest(*o.manifestPath, m); err != nil {
			return err
		}
	}
	fmt.Fprint(os.Stderr, snap.LayerTable().String())
	return nil
}

func parseScenario(n int) (core.Scenario, error) {
	switch n {
	case 1:
		return core.Scenario1, nil
	case 2:
		return core.Scenario2, nil
	case 3:
		return core.Scenario3, nil
	default:
		return 0, fmt.Errorf("scenario must be 1, 2, or 3 (got %d)", n)
	}
}

func parsePattern(s string) (fio.Pattern, error) {
	switch s {
	case "write":
		return fio.SeqWrite, nil
	case "read":
		return fio.SeqRead, nil
	default:
		return 0, fmt.Errorf("pattern must be write or read (got %q)", s)
	}
}

func cmdFigure2(args []string) error {
	fs := flag.NewFlagSet("figure2", flag.ExitOnError)
	pattern := fs.String("pattern", "write", "write or read")
	stepHz := fs.Float64("step", 200, "frequency step in Hz")
	workers := fs.Int("workers", 0, "parallel workers (0 = one per CPU)")
	csv := fs.Bool("csv", false, "emit CSV instead of an ASCII chart")
	o := addObsFlags(fs)
	fs.Parse(args)
	p, err := parsePattern(*pattern)
	if err != nil {
		return err
	}
	res, err := experiment.Figure2(p, experiment.Figure2Options{
		Step: units.Frequency(*stepHz), JobRuntime: 300 * time.Millisecond,
		Workers: *workers, Metrics: o.registry(),
	})
	if err != nil {
		return err
	}
	chart := res.Chart()
	if *csv {
		fmt.Print(chart.CSV())
		return o.finish("figure2", args, 1, *workers)
	}
	fmt.Print(chart.String())
	for _, sc := range []core.Scenario{core.Scenario1, core.Scenario2, core.Scenario3} {
		if band, ok := res.VulnerableBand(sc); ok {
			fmt.Printf("%v: ≥50%% loss band %v\n", sc, band)
		}
	}
	return o.finish("figure2", args, 1, *workers)
}

func cmdTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	csv := fs.Bool("csv", false, "emit CSV")
	o := addObsFlags(fs)
	fs.Parse(args)
	res, err := experiment.Table1Observed(1, o.registry())
	if err != nil {
		return err
	}
	printTable(res.Report(), *csv)
	return o.finish("table1", args, 1, 1)
}

func cmdTable2(args []string) error {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	window := fs.Float64("runtime", 5, "measurement window per distance (virtual seconds)")
	csv := fs.Bool("csv", false, "emit CSV")
	o := addObsFlags(fs)
	fs.Parse(args)
	res, err := experiment.Table2(experiment.Table2Options{
		Runtime: time.Duration(*window * float64(time.Second)),
		Metrics: o.registry(),
	})
	if err != nil {
		return err
	}
	printTable(res.Report(), *csv)
	return o.finish("table2", args, 1, 1)
}

func cmdTable3(args []string) error {
	fs := flag.NewFlagSet("table3", flag.ExitOnError)
	o := addObsFlags(fs)
	fs.Parse(args)
	res, err := experiment.Table3Observed(1, o.registry())
	if err != nil {
		return err
	}
	fmt.Print(res.Report().String())
	fmt.Printf("mean time to crash: %.1f seconds (paper: 80.8)\n", res.MeanTimeToCrash().Seconds())
	return o.finish("table3", args, 1, 1)
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	scenario := fs.Int("scenario", 2, "testbed scenario (1-3)")
	pattern := fs.String("pattern", "write", "write or read")
	workers := fs.Int("workers", 0, "parallel workers (0 = one per CPU)")
	o := addObsFlags(fs)
	fs.Parse(args)
	s, err := parseScenario(*scenario)
	if err != nil {
		return err
	}
	p, err := parsePattern(*pattern)
	if err != nil {
		return err
	}
	res, err := attack.Sweeper{Scenario: s, Workers: *workers, Metrics: o.registry()}.Run(p)
	if err != nil {
		return err
	}
	fmt.Printf("sweep of %v (%v): %d points measured\n", s, p, len(res.Points))
	for _, b := range res.Bands {
		fmt.Printf("  vulnerable band: %v\n", b)
	}
	return o.finish("sweep", args, 1, *workers)
}

func cmdRange(args []string) error {
	fs := flag.NewFlagSet("range", flag.ExitOnError)
	scenario := fs.Int("scenario", 2, "testbed scenario (1-3)")
	freq := fs.Float64("freq", 650, "attack frequency in Hz")
	o := addObsFlags(fs)
	fs.Parse(args)
	s, err := parseScenario(*scenario)
	if err != nil {
		return err
	}
	rows, err := attack.RangeTest{Scenario: s, Freq: units.Frequency(*freq), Metrics: o.registry()}.Run()
	if err != nil {
		return err
	}
	tb := report.NewTable(
		fmt.Sprintf("Range test at %.0f Hz, %v", *freq, s),
		"Distance", "Read MB/s", "Write MB/s", "Read ms", "Write ms")
	for _, row := range rows {
		label := "No Attack"
		if row.Distance > 0 {
			label = fmt.Sprintf("%.0f cm", row.Distance.Centimeters())
		}
		tb.AddRow(label,
			report.FormatMBps(row.ReadMBps), report.FormatMBps(row.WriteMBps),
			report.FormatLatencyMs(row.ReadLatMs), report.FormatLatencyMs(row.WriteLatMs))
	}
	fmt.Print(tb.String())
	if d, ok := attack.MaxEffectiveDistance(rows, 0.05); ok {
		fmt.Printf("maximum effective distance (≥5%% write loss): %v\n", d)
	}
	return o.finish("range", args, 1, 1)
}

func cmdCrash(args []string) error {
	fs := flag.NewFlagSet("crash", flag.ExitOnError)
	target := fs.String("target", "ext4", "ext4, ubuntu, or rocksdb")
	o := addObsFlags(fs)
	fs.Parse(args)
	out, err := attack.ProlongedAttack{Metrics: o.registry()}.Run(attack.CrashTarget(*target))
	if err != nil {
		return err
	}
	if !out.Crashed {
		fmt.Printf("%s survived the attack window\n", out.Target)
		return o.finish("crash", args, 1, 1)
	}
	fmt.Printf("%s crashed after %.1f seconds\n", out.Target, out.TimeToCrash.Seconds())
	fmt.Printf("error output: %s\n", out.ErrorOutput)
	return o.finish("crash", args, 1, 1)
}

func cmdDefense(args []string) error {
	fs := flag.NewFlagSet("defense", flag.ExitOnError)
	scenario := fs.Int("scenario", 2, "testbed scenario (1-3)")
	distance := fs.Float64("distance", 1, "speaker distance in cm")
	fs.Parse(args)
	s, err := parseScenario(*scenario)
	if err != nil {
		return err
	}
	tb, err := core.NewTestbed(s, units.Distance(*distance)*units.Centimeter)
	if err != nil {
		return err
	}
	evs := defense.EvaluateAll(tb)
	out := report.NewTable(
		fmt.Sprintf("Defense evaluation, %v at %.0f cm", s, *distance),
		"Defense", "Peak ratio before", "after", "Protected", "Residual band", "Thermal cost")
	for _, ev := range evs {
		out.AddRow(ev.Defense,
			fmt.Sprintf("%.2f", ev.PeakRatioBefore),
			fmt.Sprintf("%.2f", ev.PeakRatioAfter),
			fmt.Sprintf("%v", ev.Protected),
			fmt.Sprintf("%.0f Hz", float64(ev.ResidualBandHz)),
			fmt.Sprintf("+%.1f°C", ev.ThermalPenaltyC))
	}
	fmt.Print(out.String())
	return nil
}

func cmdDeploy(args []string) error {
	fs := flag.NewFlagSet("deploy", flag.ExitOnError)
	scenario := fs.Int("scenario", 2, "testbed scenario (1-3)")
	distance := fs.Float64("distance", 20, "speaker distance in cm")
	waterTemp := fs.Float64("watertemp", 12, "sea temperature in °C")
	load := fs.Float64("load", 22.7, "sustained drive load in MB/s")
	fs.Parse(args)
	s, err := parseScenario(*scenario)
	if err != nil {
		return err
	}
	tb, err := core.NewTestbed(s, units.Distance(*distance)*units.Centimeter)
	if err != nil {
		return err
	}
	sea := water.Seawater(36)
	sea.TempC = *waterTemp
	tm := thermal.Default(sea)
	out := report.NewTable(
		fmt.Sprintf("Deployment verdicts, %v at %.0f cm, sea %.0f°C, load %.1f MB/s",
			s, *distance, *waterTemp, *load),
		"Defense", "Protected", "Thermal", "Throttle", "Deployable")
	for _, v := range defense.EvaluateDeploymentAll(tb, tm, *load) {
		out.AddRow(v.Defense,
			fmt.Sprintf("%v", v.Protected),
			v.ThermalState.String(),
			fmt.Sprintf("%.2f", v.ThrottleFactor),
			fmt.Sprintf("%v", v.Deployable))
	}
	fmt.Print(out.String())
	return nil
}

func cmdSection5(args []string) error {
	fs := flag.NewFlagSet("section5", flag.ExitOnError)
	freq := fs.Float64("freq", 650, "attack frequency in Hz")
	fs.Parse(args)
	rows, err := experiment.Section5Ranges(units.Frequency(*freq))
	if err != nil {
		return err
	}
	fmt.Print(experiment.Section5Report(rows).String())
	fmt.Println()
	fmt.Print(experiment.Section5SoundSpeedReport(experiment.Section5SoundSpeed()).String())
	return nil
}

func cmdNatick(args []string) error {
	fs := flag.NewFlagSet("natick", flag.ExitOnError)
	fs.Parse(args)
	rows, err := experiment.NatickAnalysis()
	if err != nil {
		return err
	}
	fmt.Print(experiment.NatickReport(rows).String())
	return nil
}

func cmdOutage(args []string) error {
	fs := flag.NewFlagSet("outage", flag.ExitOnError)
	freq := fs.Float64("freq", 650, "attack frequency in Hz")
	during := fs.Float64("during", 10, "attack window in virtual seconds")
	o := addObsFlags(fs)
	fs.Parse(args)
	res, err := experiment.ControlledOutage{
		Freq:    units.Frequency(*freq),
		During:  time.Duration(*during * float64(time.Second)),
		Metrics: o.registry(),
	}.Run()
	if err != nil {
		return err
	}
	fmt.Print(res.Chart().String())
	fmt.Printf("phase means: before %.1f MB/s, during %.1f MB/s, after %.1f MB/s\n",
		res.BeforeMBps, res.DuringMBps, res.AfterMBps)
	return o.finish("outage", args, 1, 1)
}

func cmdRemoteSweep(args []string) error {
	fs := flag.NewFlagSet("remotesweep", flag.ExitOnError)
	scenario := fs.Int("scenario", 2, "testbed scenario (1-3)")
	fs.Parse(args)
	s, err := parseScenario(*scenario)
	if err != nil {
		return err
	}
	res, err := attack.RemoteSweeper{Scenario: s}.Run()
	if err != nil {
		return err
	}
	fmt.Printf("remote reconnaissance against %v (latency-only observations)\n", s)
	fmt.Printf("healthy baseline: %.2f ms median PUT\n", res.Baseline.Seconds()*1000)
	for _, b := range res.InferredBands {
		fmt.Printf("inferred vulnerable band: %v\n", b)
	}
	flagged := 0
	for _, p := range res.Probes {
		if p.Suspicious(res.Baseline) {
			flagged++
		}
	}
	fmt.Printf("%d/%d probed frequencies flagged\n", flagged, len(res.Probes))
	return nil
}

func cmdStealth(args []string) error {
	fs := flag.NewFlagSet("stealth", flag.ExitOnError)
	on := fs.Float64("on", 0.5, "attack burst length in seconds")
	off := fs.Float64("off", 10, "quiet gap in seconds (0 = continuous)")
	duration := fs.Float64("duration", 60, "campaign length in virtual seconds")
	fs.Parse(args)
	res, err := campaign.Stealth{
		Duty: campaign.DutyCycle{
			On:  time.Duration(*on * float64(time.Second)),
			Off: time.Duration(*off * float64(time.Second)),
		},
		Duration: time.Duration(*duration * float64(time.Second)),
	}.Run()
	if err != nil {
		return err
	}
	fmt.Printf("duty cycle: %.0f%% on-air (%gs on / %gs off)\n",
		res.Spec.Duty.Fraction()*100, *on, *off)
	fmt.Printf("victim throughput: %.1f -> %.1f MB/s (%.0f%% loss)\n",
		res.BaselineMBps, res.CampaignMBps, res.LossFraction*100)
	fmt.Printf("victim detector: %d alarms, max suspicion %.2f\n", res.Alarms, res.MaxSuspicion)
	return nil
}

func cmdStealthGrid(args []string) error {
	fs := flag.NewFlagSet("stealthgrid", flag.ExitOnError)
	duration := fs.Float64("duration", 60, "campaign length per cell in virtual seconds")
	seed := fs.Int64("seed", 1, "base seed")
	workers := fs.Int("workers", 0, "parallel workers (0 = one per CPU)")
	o := addObsFlags(fs)
	fs.Parse(args)
	rows, err := campaign.Grid{
		Base: campaign.Stealth{
			Duration: time.Duration(*duration * float64(time.Second)),
			Seed:     *seed,
		},
		Workers: *workers,
		Metrics: o.registry(),
	}.Run()
	if err != nil {
		return err
	}
	fmt.Print(campaign.GridReport(rows).String())
	return o.finish("stealthgrid", args, *seed, *workers)
}

func cmdAblation(args []string) error {
	fs := flag.NewFlagSet("ablation", flag.ExitOnError)
	workers := fs.Int("workers", 0, "parallel workers (0 = one per CPU)")
	fs.Parse(args)
	rows, err := experiment.AblationWorkers(1, *workers)
	if err != nil {
		return err
	}
	fmt.Print(experiment.AblationReport(rows).String())
	return nil
}

func cmdRedundancy(args []string) error {
	fs := flag.NewFlagSet("redundancy", flag.ExitOnError)
	fs.Parse(args)
	rows, err := experiment.Redundancy(1)
	if err != nil {
		return err
	}
	fmt.Print(experiment.RedundancyReport(rows).String())
	return nil
}

func cmdResilience(args []string) error {
	fs := flag.NewFlagSet("resilience", flag.ExitOnError)
	attackSec := fs.Float64("attack", 100, "attack window in virtual seconds")
	cooldown := fs.Float64("cooldown", 60, "post-attack recovery window in virtual seconds")
	workers := fs.Int("workers", 0, "parallel workers (0 = one per CPU)")
	o := addObsFlags(fs)
	fs.Parse(args)
	rows, err := experiment.Resilience{
		Attack:   time.Duration(*attackSec * float64(time.Second)),
		Cooldown: time.Duration(*cooldown * float64(time.Second)),
		Workers:  *workers,
		Metrics:  o.registry(),
	}.Run()
	if err != nil {
		return err
	}
	fmt.Print(experiment.ResilienceReport(rows).String())
	fmt.Println("the bare stack reproduces the paper's crash and stays down; the watchdog")
	fmt.Println("stack recovers once the tone stops (journal replay, fsck, WAL recovery);")
	fmt.Println("the hardened stack additionally masks the injected pre-attack fault burst.")
	return o.finish("resilience", args, 1, *workers)
}

func cmdUltrasonic(args []string) error {
	fs := flag.NewFlagSet("ultrasonic", flag.ExitOnError)
	scenario := fs.Int("scenario", 2, "testbed scenario (1-3)")
	fs.Parse(args)
	s, err := parseScenario(*scenario)
	if err != nil {
		return err
	}
	rows, err := experiment.Ultrasonic(s)
	if err != nil {
		return err
	}
	fmt.Print(experiment.UltrasonicReport(s, rows).String())
	fmt.Println("conclusion: the enclosure wall attenuates ultrasonic content below the")
	fmt.Println("shock-sensor threshold — the in-air head-parking vector does not survive")
	fmt.Println("the underwater path, consistent with the paper's sweep observations.")
	return nil
}

func cmdFacility(args []string) error {
	fs := flag.NewFlagSet("facility", flag.ExitOnError)
	containers := fs.Int("containers", 4, "container count")
	drives := fs.Int("drives", 5, "drives per container")
	spacing := fs.Float64("spacing", 2, "container spacing in meters")
	workers := fs.Int("workers", 0, "parallel workers (0 = one per CPU)")
	fs.Parse(args)
	rows, err := experiment.FleetSweep(experiment.FleetSpec{
		Containers:         *containers,
		DrivesPerContainer: *drives,
		ContainerSpacing:   units.Distance(*spacing) * units.Meter,
		Workers:            *workers,
	})
	if err != nil {
		return err
	}
	fmt.Print(experiment.FleetReport(rows).String())
	return nil
}

func cmdAdaptive(args []string) error {
	fs := flag.NewFlagSet("adaptive", flag.ExitOnError)
	scenario := fs.Int("scenario", 2, "testbed scenario (1-3)")
	budget := fs.Int("budget", 25, "probe budget")
	fs.Parse(args)
	s, err := parseScenario(*scenario)
	if err != nil {
		return err
	}
	res, err := attack.Adaptive{Scenario: s, Budget: *budget}.Run()
	if err != nil {
		return err
	}
	fmt.Printf("baseline: %.1f MB/s\n", res.Baseline)
	fmt.Printf("best tone: %v (%.0f%% throughput loss) after %d probes\n",
		res.Best.Freq, res.Best.Degradation*100, len(res.Probes))
	return nil
}

func cmdIntegrity(args []string) error {
	fs := flag.NewFlagSet("integrity", flag.ExitOnError)
	distance := fs.Float64("distance", 18, "speaker distance in cm (the marginal zone)")
	prob := fs.Float64("prob", 0.05, "per-marginal-write squeeze probability")
	fs.Parse(args)
	res, err := experiment.Integrity{
		Distance:       units.Distance(*distance) * units.Centimeter,
		CorruptionProb: *prob,
	}.Run()
	if err != nil {
		return err
	}
	fmt.Print(res.Report().String())
	fmt.Println("note: the attack phase completed with few or no visible failures —")
	fmt.Println("availability monitoring alone would not notice this attack.")
	return nil
}

func cmdAll(args []string) error {
	fmt.Println("=== Figure 2(a): sequential write ===")
	if err := cmdFigure2([]string{"-pattern", "write"}); err != nil {
		return err
	}
	fmt.Println("\n=== Figure 2(b): sequential read ===")
	if err := cmdFigure2([]string{"-pattern", "read"}); err != nil {
		return err
	}
	fmt.Println("\n=== Table 1 ===")
	if err := cmdTable1(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Table 2 ===")
	if err := cmdTable2(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Table 3 ===")
	if err := cmdTable3(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Defense suite ===")
	if err := cmdDefense(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Section 5: effective range ===")
	if err := cmdSection5(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Enclosure hardening (Natick-class) ===")
	return cmdNatick(nil)
}

func printTable(t *report.Table, csv bool) {
	if csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Print(t.String())
}
