package main

import (
	"flag"
	"fmt"

	"deepnote/internal/experiment"
	"deepnote/internal/oracle"
)

// cmdSelfCheck runs the oracle-vs-simulation differential harness over the
// §4.1 grid and renders the per-cell divergence table. It exits non-zero
// when any cell diverges beyond tolerance, so CI can gate on it.
func cmdSelfCheck(args []string) error {
	fs := flag.NewFlagSet("selfcheck", flag.ExitOnError)
	scenario := fs.Int("scenario", 2, "testbed scenario 1, 2, or 3")
	workers := fs.Int("workers", 0, "parallel workers (0 = one per CPU)")
	tol := fs.Float64("tol", 0, "max per-cell divergence (0 = harness default)")
	runtime := fs.Duration("runtime", 0, "per-cell simulation window in virtual time (0 = harness default)")
	repeats := fs.Int("repeats", 0, "seeded simulations averaged per cell (0 = harness default)")
	seed := fs.Int64("seed", 1, "run seed")
	reportPath := fs.String("report", "", "write the divergence report JSON to this path")
	mutant := fs.String("mutant", "", "seed a known predictor bug: flat-hold-window, whole-request-window, or full-base-on-failure")
	o := addObsFlags(fs)
	fs.Parse(args)
	sc, err := parseScenario(*scenario)
	if err != nil {
		return err
	}
	mut, err := parseMutation(*mutant)
	if err != nil {
		return err
	}
	rep, err := experiment.SelfCheck(experiment.SelfCheckOptions{
		Scenario:   sc,
		Workers:    *workers,
		Tolerance:  *tol,
		JobRuntime: *runtime,
		Repeats:    *repeats,
		Seed:       *seed,
		Mutation:   mut,
		Metrics:    o.registry(),
	})
	if err != nil {
		return err
	}
	fmt.Print(rep.Table().String())
	fmt.Printf("cells %d, failures %d, max divergence %.1f%% (tolerance %.0f%%)\n",
		len(rep.Cells), rep.Failures, rep.MaxDivergence*100, rep.Tolerance*100)
	if *reportPath != "" {
		if err := oracle.WriteReport(*reportPath, rep); err != nil {
			return err
		}
	}
	if err := o.finish("selfcheck", args, *seed, *workers); err != nil {
		return err
	}
	if !rep.Passed() {
		return fmt.Errorf("%d of %d cells diverged beyond %.0f%% tolerance",
			rep.Failures, len(rep.Cells), rep.Tolerance*100)
	}
	return nil
}

func parseMutation(s string) (oracle.Mutation, error) {
	switch s {
	case "":
		return oracle.MutNone, nil
	case "flat-hold-window":
		return oracle.MutFlatHoldWindow, nil
	case "whole-request-window":
		return oracle.MutWholeRequestWindow, nil
	case "full-base-on-failure":
		return oracle.MutFullBaseOnFailure, nil
	default:
		return oracle.MutNone, fmt.Errorf("unknown mutant %q", s)
	}
}
