package main

import (
	"flag"
	"fmt"
	"time"

	"deepnote/internal/cluster"
	"deepnote/internal/experiment"
	"deepnote/internal/units"
)

// cmdSonar runs the closed-loop defense campaign: a hydrophone ring
// listens to a staged attacker escalation, multilaterates each key-on,
// and the fixes steer the erasure-coded store — reported against the
// identical run with the defense off, plus a localization range sweep.
// Stdout is byte-identical for any -workers value and with metrics on
// or off.
func cmdSonar(args []string) error {
	fs := flag.NewFlagSet("sonar", flag.ExitOnError)
	containers := fs.Int("containers", 6, "container count (failure domains)")
	drives := fs.Int("drives", 1, "drives per container")
	data := fs.Int("data", 4, "data shards per stripe (k)")
	parity := fs.Int("parity", 2, "parity shards per stripe (m)")
	objects := fs.Int("objects", 24, "objects in the keyspace")
	objSize := fs.Int("objsize", 16<<10, "object size in bytes")
	spacing := fs.Float64("spacing", 2, "container spacing in meters")
	freq := fs.Float64("freq", 650, "attack tone in Hz")
	speakers := fs.Int("speakers", 0, "attacker speakers (0 = parity+1, one past the cliff)")
	hydrophones := fs.Int("hydrophones", 6, "hydrophone ring elements")
	standoff := fs.Float64("standoff", 3, "hydrophone ring standoff beyond the farthest container, meters")
	requests := fs.Int("requests", 600, "client requests per serving run")
	rate := fs.Float64("rate", 500, "client arrival rate (requests/second)")
	readFrac := fs.Float64("readfrac", 0.9, "GET fraction of the workload (0 = write-only)")
	attackStart := fs.Float64("attack-start", 0.25, "first key-on as a fraction of the request window")
	attackStagger := fs.Float64("attack-stagger", 0.2, "gap between key-ons as a fraction of the window")
	margin := fs.Float64("margin", 0.5, "at-risk threshold as a fraction of servo-lock amplitude")
	react := fs.Float64("react", 0.05, "controller lag from fix to policy switch, seconds")
	seed := fs.Int64("seed", 1, "base seed")
	workers := fs.Int("workers", 0, "drive fan-out inside each serving run (never changes results; 0 = one per CPU)")
	o := addObsFlags(fs)
	fs.Parse(args)

	res, err := experiment.SonarRun(experiment.SonarSpec{
		Containers:         *containers,
		DrivesPerContainer: *drives,
		DataShards:         *data,
		ParityShards:       *parity,
		Objects:            *objects,
		ObjectSize:         *objSize,
		Spacing:            units.Distance(*spacing) * units.Meter,
		Freq:               units.Frequency(*freq),
		Speakers:           *speakers,
		Hydrophones:        *hydrophones,
		Standoff:           cluster.Ptr(units.Distance(*standoff) * units.Meter),
		Requests:           *requests,
		Rate:               *rate,
		ReadFraction:       cluster.Ptr(*readFrac),
		AttackStartFrac:    *attackStart,
		StaggerFrac:        cluster.Ptr(*attackStagger),
		Margin:             cluster.Ptr(*margin),
		React:              cluster.Ptr(time.Duration(*react * float64(time.Second))),
		Seed:               *seed,
		Workers:            *workers,
		Metrics:            o.registry(),
	})
	if err != nil {
		return err
	}
	fmt.Printf("sonar: %d hydrophones at %.0f m standoff over %d containers, %d-of-%d stripes\n",
		*hydrophones, *standoff, *containers, *data, *data+*parity)
	fmt.Printf("attack: staged escalation, %.0f Hz key-ons every %.2f of a %.2f s window\n",
		*freq, *attackStagger, res.Window.Seconds())
	fmt.Print(experiment.SonarDetectionReport(res).String())
	fmt.Println()
	fmt.Print(experiment.SonarRangeReport(res).String())
	fmt.Println()
	fmt.Print(experiment.SonarDefenseReport(res).String())
	fmt.Printf("defense plan: %d re-placement writes, %d shards with no safe target\n",
		res.EvacsPlanned, res.EvacsSkipped)
	fmt.Printf("GET availability: %.1f%% undefended vs %.1f%% with the closed loop\n",
		res.Off.GetAvailability()*100, res.On.GetAvailability()*100)
	return o.finish("sonar", args, *seed, *workers)
}
