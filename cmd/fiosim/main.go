// Command fiosim is a Flexible-I/O-Tester-style CLI for the simulated
// victim drive: run a workload against a chosen testbed scenario while an
// optional attack tone plays.
//
// Usage:
//
//	fiosim [-pattern read|write|randread|randwrite] [-bs BYTES]
//	       [-runtime SECONDS] [-scenario 1|2|3] [-freq HZ] [-distance CM]
//
// A frequency of 0 disables the attack.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"deepnote/internal/core"
	"deepnote/internal/fio"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

func main() {
	pattern := flag.String("pattern", "write", "read, write, randread, or randwrite")
	bs := flag.Int("bs", 4096, "block size in bytes")
	runtime := flag.Float64("runtime", 5, "job runtime in virtual seconds")
	scenario := flag.Int("scenario", 2, "testbed scenario (1-3)")
	freq := flag.Float64("freq", 0, "attack tone frequency in Hz (0 = no attack)")
	distance := flag.Float64("distance", 1, "speaker distance in cm")
	seed := flag.Int64("seed", 1, "simulation seed")
	image := flag.String("image", "", "optional disk image: loaded if present, saved after the run")
	flag.Parse()

	var p fio.Pattern
	switch *pattern {
	case "read":
		p = fio.SeqRead
	case "write":
		p = fio.SeqWrite
	case "randread":
		p = fio.RandRead
	case "randwrite":
		p = fio.RandWrite
	default:
		fmt.Fprintf(os.Stderr, "fiosim: unknown pattern %q\n", *pattern)
		os.Exit(2)
	}
	var s core.Scenario
	switch *scenario {
	case 1:
		s = core.Scenario1
	case 2:
		s = core.Scenario2
	case 3:
		s = core.Scenario3
	default:
		fmt.Fprintln(os.Stderr, "fiosim: scenario must be 1, 2, or 3")
		os.Exit(2)
	}

	rig, err := core.NewRig(s, units.Distance(*distance)*units.Centimeter, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fiosim: %v\n", err)
		os.Exit(1)
	}
	if *image != "" {
		if f, err := os.Open(*image); err == nil {
			if err := rig.Disk.LoadImage(f); err != nil {
				fmt.Fprintf(os.Stderr, "fiosim: loading image: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
		defer func() {
			f, err := os.Create(*image)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fiosim: saving image: %v\n", err)
				return
			}
			defer f.Close()
			if err := rig.Disk.SaveImage(f); err != nil {
				fmt.Fprintf(os.Stderr, "fiosim: saving image: %v\n", err)
			}
		}()
	}
	if *freq > 0 {
		tone := sig.NewTone(units.Frequency(*freq))
		rig.ApplyTone(tone)
		fmt.Printf("attack: %v tone, incident %v at %v, %v\n",
			tone.Freq, rig.Testbed.IncidentSPL(tone), rig.Testbed.Chain.Path.Distance, s)
	}

	job := fio.Job{
		Name:      *pattern,
		Pattern:   p,
		BlockSize: *bs,
		Span:      1 << 30,
		Runtime:   time.Duration(*runtime * float64(time.Second)),
		Seed:      *seed,
	}
	res, err := fio.NewRunner(rig.Disk, rig.Clock).Run(job)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fiosim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%s: bs=%d span=1GiB runtime=%.1fs (virtual)\n", job.Name, job.BlockSize, job.Runtime.Seconds())
	if res.NoResponse {
		fmt.Println("  NO RESPONSE: the device completed zero requests")
		fmt.Printf("  errors=%d\n", res.Errors)
		return
	}
	fmt.Printf("  throughput: %.1f MB/s (%.0f IOPS)\n", res.ThroughputMBps(), res.IOPS())
	fmt.Printf("  latency: mean=%.2fms p50=%.2fms p99=%.2fms max=%.2fms\n",
		ms(res.Latencies.Mean), ms(res.Latencies.P50), ms(res.Latencies.P99), ms(res.Latencies.Max))
	fmt.Printf("  ops=%d errors=%d bytes=%d\n", res.Ops, res.Errors, res.Bytes)
}

func ms(d time.Duration) float64 { return d.Seconds() * 1000 }
