// Command jfstool manipulates jfs filesystem images: create them, copy
// data in and out, list, remove, verify — like a tiny mkfs/debugfs/fsck
// suite for the simulated filesystem. Images persist as sparse files on
// the host, so state survives across runs of dbbench, fiosim, and this
// tool.
//
// Usage:
//
//	jfstool -image fs.img mkfs [-blocks N]
//	jfstool -image fs.img ls
//	jfstool -image fs.img put <name> < data
//	jfstool -image fs.img cat <name>
//	jfstool -image fs.img rm <name>
//	jfstool -image fs.img fsck
//	jfstool -image fs.img stat
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"deepnote/internal/blockdev"
	"deepnote/internal/hdd"
	"deepnote/internal/jfs"
	"deepnote/internal/simclock"
)

func main() {
	image := flag.String("image", "", "path to the filesystem image")
	blocks := flag.Uint64("blocks", 1<<17, "filesystem size in 4 KiB blocks (mkfs)")
	flag.Parse()
	if *image == "" || flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)

	clock := simclock.NewVirtual()
	drive, err := hdd.NewDrive(hdd.Barracuda500(), clock, 1)
	if err != nil {
		fatal(err)
	}
	disk := blockdev.NewDisk(drive)

	if cmd == "mkfs" {
		if err := jfs.Mkfs(disk, jfs.MkfsOptions{Blocks: *blocks}); err != nil {
			fatal(err)
		}
		if err := saveImage(disk, *image); err != nil {
			fatal(err)
		}
		fmt.Printf("created %s: %d blocks (%d MiB)\n", *image, *blocks, *blocks*jfs.BlockSize>>20)
		return
	}

	if err := loadImage(disk, *image); err != nil {
		fatal(err)
	}
	fs, err := jfs.Mount(disk, clock, jfs.Config{})
	if err != nil {
		fatal(err)
	}

	dirty := false
	switch cmd {
	case "ls":
		for _, name := range fs.List() {
			f, err := fs.Open(name)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%10d  %s\n", f.Size(), name)
		}
	case "put":
		if flag.NArg() < 2 {
			fatal(fmt.Errorf("put needs a file name"))
		}
		name := flag.Arg(1)
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		f, err := fs.Open(name)
		if err != nil {
			f, err = fs.Create(name)
		}
		if err != nil {
			fatal(err)
		}
		if err := f.Truncate(0); err != nil {
			fatal(err)
		}
		if _, err := f.WriteAt(data, 0); err != nil {
			fatal(err)
		}
		dirty = true
		fmt.Fprintf(os.Stderr, "wrote %d bytes to %s\n", len(data), name)
	case "cat":
		if flag.NArg() < 2 {
			fatal(fmt.Errorf("cat needs a file name"))
		}
		f, err := fs.Open(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		buf := make([]byte, f.Size())
		if f.Size() > 0 {
			if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
				fatal(err)
			}
		}
		os.Stdout.Write(buf)
	case "rm":
		if flag.NArg() < 2 {
			fatal(fmt.Errorf("rm needs a file name"))
		}
		if err := fs.Remove(flag.Arg(1)); err != nil {
			fatal(err)
		}
		dirty = true
	case "fsck":
		rep := fs.Fsck()
		fmt.Printf("files: %d, used blocks: %d, free blocks: %d\n",
			rep.Files, rep.UsedBlocks, rep.FreeBlocks)
		if rep.Clean {
			fmt.Println("clean")
		} else {
			for _, p := range rep.Problems {
				fmt.Println("PROBLEM:", p)
			}
			os.Exit(1)
		}
	case "stat":
		sb := fs.Superblock()
		fmt.Printf("blocks: %d  journal: %d blocks  inodes: %d  mounts: %d  state: %d\n",
			sb.TotalBlocks, sb.JournalBlocks, sb.InodeCount, sb.MountCount, sb.State)
	default:
		fatal(fmt.Errorf("unknown command %q", cmd))
	}

	if err := fs.Unmount(); err != nil {
		fatal(err)
	}
	if dirty || cmd == "ls" || cmd == "cat" || cmd == "fsck" || cmd == "stat" {
		// Unmount updates the superblock even for reads; persist so the
		// image stays consistent.
		if err := saveImage(disk, *image); err != nil {
			fatal(err)
		}
	}
}

func saveImage(disk *blockdev.Disk, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return disk.SaveImage(f)
}

func loadImage(disk *blockdev.Disk, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return disk.LoadImage(f)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "jfstool: %v\n", err)
	os.Exit(1)
}
