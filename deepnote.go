// Package deepnote is a simulation framework reproducing "Deep Note: Can
// Acoustic Interference Damage the Availability of Hard Disk Storage in
// Underwater Data Centers?" (HotStorage '23).
//
// The package is the public facade over the full stack:
//
//   - underwater acoustics (speaker, amplifier, spreading and absorption),
//   - submerged enclosures (plastic/aluminum containers, storage tower),
//   - a mechanical victim HDD model (servo sensitivity, off-track faults),
//   - software substrates (FIO-workalike, ext4/JBD-like filesystem,
//     RocksDB-like LSM store, Ubuntu-like server model),
//   - attack procedures (frequency sweep, range test, prolonged attack),
//   - experiment runners regenerating the paper's Figure 2 and Tables 1–3,
//   - and defense evaluation.
//
// Quick start:
//
//	rig, _ := deepnote.NewRig(deepnote.Scenario2, 1*deepnote.Centimeter, 1)
//	rig.ApplyTone(deepnote.Tone(650 * deepnote.Hz))
//	res, _ := deepnote.RunFIO(rig, deepnote.SeqWrite, 2*time.Second)
//	fmt.Printf("under attack: %.1f MB/s\n", res.ThroughputMBps())
package deepnote

import (
	"time"

	"deepnote/internal/attack"
	"deepnote/internal/core"
	"deepnote/internal/defense"
	"deepnote/internal/experiment"
	"deepnote/internal/fio"
	"deepnote/internal/jfs"
	"deepnote/internal/kvdb"
	"deepnote/internal/osmodel"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// Re-exported core types. Aliases keep the public API one import wide
// while the implementation stays modular.
type (
	// Scenario selects one of the paper's testbed configurations.
	Scenario = core.Scenario
	// Testbed is the physical configuration (chain, enclosure, drive).
	Testbed = core.Testbed
	// Rig is a live testbed with clock, drive, and block device.
	Rig = core.Rig

	// Frequency is hertz; Distance is meters (use the unit constants).
	Frequency = units.Frequency
	// Distance is a length in meters.
	Distance = units.Distance
	// SPL is a sound pressure level against an explicit reference.
	SPL = units.SPL

	// Pattern is a FIO access pattern.
	Pattern = fio.Pattern
	// FIOResult is a workload measurement.
	FIOResult = fio.Result

	// SweepResult is a frequency-sweep outcome.
	SweepResult = attack.SweepResult
	// RangeRow is one distance of a range test.
	RangeRow = attack.RangeRow
	// CrashTarget selects a software stack to crash.
	CrashTarget = attack.CrashTarget
	// CrashOutcome is a prolonged-attack result.
	CrashOutcome = attack.CrashOutcome

	// Defense is an evaluable countermeasure.
	Defense = defense.Defense
	// DefenseEvaluation reports a defense's residual vulnerability.
	DefenseEvaluation = defense.Evaluation
)

// Scenario, pattern, target, and unit constants.
const (
	Scenario1 = core.Scenario1
	Scenario2 = core.Scenario2
	Scenario3 = core.Scenario3

	SeqRead   = fio.SeqRead
	SeqWrite  = fio.SeqWrite
	RandRead  = fio.RandRead
	RandWrite = fio.RandWrite

	TargetExt4    = attack.TargetExt4
	TargetUbuntu  = attack.TargetUbuntu
	TargetRocksDB = attack.TargetRocksDB

	Hz         = units.Hz
	KHz        = units.KHz
	Meter      = units.Meter
	Centimeter = units.Centimeter
)

// NewTestbed builds the paper's testbed for a scenario with the speaker at
// the given distance from the container wall.
func NewTestbed(s Scenario, speakerDistance Distance) (*Testbed, error) {
	return core.NewTestbed(s, speakerDistance)
}

// NewRig instantiates a testbed with a fresh virtual clock and drive.
func NewRig(s Scenario, speakerDistance Distance, seed int64) (*Rig, error) {
	return core.NewRig(s, speakerDistance, seed)
}

// Tone returns a full-scale attack tone at frequency f.
func Tone(f Frequency) sig.Tone { return sig.NewTone(f) }

// RunFIO runs a paper-style FIO job (sequential/random, 4 KB) on the rig
// for the given virtual runtime.
func RunFIO(rig *Rig, p Pattern, runtime time.Duration) (FIOResult, error) {
	return fio.NewRunner(rig.Disk, rig.Clock).Run(fio.PaperJob(p, runtime))
}

// Sweep runs the paper's two-phase frequency sweep (coarse pass, then
// 50 Hz refinement) for the pattern against a scenario at 1 cm.
func Sweep(s Scenario, p Pattern) (SweepResult, error) {
	return attack.Sweeper{Scenario: s}.Run(p)
}

// RangeTest measures attack effect over the paper's distances at 650 Hz.
func RangeTest(s Scenario) ([]RangeRow, error) {
	return attack.RangeTest{Scenario: s}.Run()
}

// CrashTest runs the prolonged attack (650 Hz, 140 dB, 1 cm, Scenario 2)
// against a software stack until it crashes.
func CrashTest(target CrashTarget) (CrashOutcome, error) {
	return attack.ProlongedAttack{}.Run(target)
}

// EvaluateDefenses runs the standard defense suite against a testbed.
func EvaluateDefenses(tb *Testbed) []DefenseEvaluation {
	return defense.EvaluateAll(tb)
}

// Experiment re-exports: each regenerates a paper artifact or analysis.
var (
	// Figure2 regenerates a panel of Figure 2.
	Figure2 = experiment.Figure2
	// Table1 regenerates the FIO range table.
	Table1 = experiment.Table1
	// Table2 regenerates the RocksDB range table.
	Table2 = experiment.Table2
	// Table3 regenerates the crash table.
	Table3 = experiment.Table3
	// Section5Ranges computes the open-water effective-range matrix.
	Section5Ranges = experiment.Section5Ranges
	// NatickAnalysis compares enclosure classes against attacker tiers.
	NatickAnalysis = experiment.NatickAnalysis
)

// RemoteSweep runs the §3 reconnaissance against a scenario: the attacker
// infers the vulnerable band from service latencies alone.
func RemoteSweep(s Scenario) (attack.RemoteSweepResult, error) {
	return attack.RemoteSweeper{Scenario: s}.Run()
}

// AdaptiveAttack runs the closed-loop attacker: hill-climb to the most
// damaging tone within a probe budget instead of sweeping the whole band.
func AdaptiveAttack(s Scenario, budget int) (attack.AdaptiveResult, error) {
	return attack.Adaptive{Scenario: s, Budget: budget}.Run()
}

// RunOutage executes a controlled outage (§3's first attacker objective):
// attack keyed for exactly `during`, with healthy margins either side.
func RunOutage(s Scenario, f Frequency, during time.Duration) (experiment.OutageResult, error) {
	return experiment.ControlledOutage{Scenario: s, Freq: f, During: during}.Run()
}

// NewStack provisions a formatted filesystem, a key-value store, and a
// server model on a rig — the full victim software stack of §4.4. The
// caller owns ticking the server and using the store.
func NewStack(rig *Rig, seed int64) (*jfs.FS, *kvdb.DB, *osmodel.Server, error) {
	if err := jfs.Mkfs(rig.Disk, jfs.MkfsOptions{Blocks: 1 << 17}); err != nil {
		return nil, nil, nil, err
	}
	fs, err := jfs.Mount(rig.Disk, rig.Clock, jfs.Config{})
	if err != nil {
		return nil, nil, nil, err
	}
	db, err := kvdb.Open(fs, rig.Clock, kvdb.Options{Seed: seed})
	if err != nil {
		return nil, nil, nil, err
	}
	srv, err := osmodel.Boot(fs, rig.Clock, osmodel.Config{Seed: seed})
	if err != nil {
		return nil, nil, nil, err
	}
	return fs, db, srv, nil
}
