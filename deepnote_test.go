package deepnote

import (
	"testing"
	"time"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	rig, err := NewRig(Scenario2, 1*Centimeter, 1)
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := RunFIO(rig, SeqWrite, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if quiet.ThroughputMBps() < 20 {
		t.Fatalf("quiet throughput %.1f, want ≈22.7", quiet.ThroughputMBps())
	}
	rig.ApplyTone(Tone(650 * Hz))
	attacked, err := RunFIO(rig, SeqWrite, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !attacked.NoResponse {
		t.Fatalf("650 Hz at 1 cm should zero the drive, got %.1f MB/s", attacked.ThroughputMBps())
	}
	rig.Silence()
	recovered, err := RunFIO(rig, SeqWrite, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.ThroughputMBps() < 20 {
		t.Fatalf("drive should recover after attack: %.1f MB/s", recovered.ThroughputMBps())
	}
}

func TestFacadeCrashTest(t *testing.T) {
	o, err := CrashTest(TargetExt4)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Crashed {
		t.Fatal("ext4 should crash")
	}
	if s := o.TimeToCrash.Seconds(); s < 70 || s > 95 {
		t.Fatalf("time to crash %.1f s, want ≈80", s)
	}
}

func TestFacadeStack(t *testing.T) {
	rig, err := NewRig(Scenario2, 1*Centimeter, 1)
	if err != nil {
		t.Fatal(err)
	}
	fs, db, srv, err := NewStack(rig, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := srv.RunCommand("ls"); err != nil {
		t.Fatal(err)
	}
	if aborted, _ := fs.Aborted(); aborted {
		t.Fatal("fresh stack aborted")
	}
}

func TestFacadeDefenses(t *testing.T) {
	tb, err := NewTestbed(Scenario2, 1*Centimeter)
	if err != nil {
		t.Fatal(err)
	}
	evs := EvaluateDefenses(tb)
	if len(evs) < 4 {
		t.Fatalf("expected at least 4 defenses, got %d", len(evs))
	}
	for _, ev := range evs {
		if ev.PeakRatioAfter >= ev.PeakRatioBefore {
			t.Errorf("%s did not help", ev.Defense)
		}
	}
}

func TestFacadeRangeTest(t *testing.T) {
	rows, err := RangeTest(Scenario2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !rows[1].WriteNoResponse {
		t.Fatal("1 cm should be no-response")
	}
}
