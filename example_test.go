package deepnote_test

import (
	"fmt"
	"time"

	"deepnote"
)

// Example demonstrates the core attack flow: measure a healthy drive,
// key the paper's 650 Hz / 140 dB tone from 1 cm, and watch throughput
// die.
func Example() {
	rig, err := deepnote.NewRig(deepnote.Scenario2, 1*deepnote.Centimeter, 42)
	if err != nil {
		panic(err)
	}
	healthy, _ := deepnote.RunFIO(rig, deepnote.SeqWrite, time.Second)
	fmt.Printf("healthy: %.1f MB/s\n", healthy.ThroughputMBps())

	rig.ApplyTone(deepnote.Tone(650 * deepnote.Hz))
	attacked, _ := deepnote.RunFIO(rig, deepnote.SeqWrite, time.Second)
	fmt.Printf("under attack: no response = %v\n", attacked.NoResponse)
	// Output:
	// healthy: 22.7 MB/s
	// under attack: no response = true
}

// ExampleCrashTest reproduces one row of the paper's Table 3: the
// journaling filesystem dies with the JBD error −5 signature after ≈80
// simulated seconds of sustained attack.
func ExampleCrashTest() {
	outcome, err := deepnote.CrashTest(deepnote.TargetExt4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("crashed: %v (within the paper's ≈80 s horizon: %v)\n",
		outcome.Crashed, outcome.TimeToCrash.Seconds() > 70 && outcome.TimeToCrash.Seconds() < 95)
	// Output:
	// crashed: true (within the paper's ≈80 s horizon: true)
}

// ExampleNewTestbed shows the physical-chain diagnostics: the incident
// sound level at the enclosure and the drive's resulting off-track ratio.
func ExampleNewTestbed() {
	tb, err := deepnote.NewTestbed(deepnote.Scenario3, 1*deepnote.Centimeter)
	if err != nil {
		panic(err)
	}
	fmt.Printf("incident level: %v\n", tb.IncidentSPL(deepnote.Tone(650*deepnote.Hz)))
	fmt.Printf("writes fault at 650 Hz: %v\n", tb.OffTrackRatio(650*deepnote.Hz) >= 1)
	fmt.Printf("writes fault at 8 kHz: %v\n", tb.OffTrackRatio(8000*deepnote.Hz) >= 1)
	// Output:
	// incident level: 140dB re 1µPa
	// writes fault at 650 Hz: true
	// writes fault at 8 kHz: false
}

// ExampleEvaluateDefenses evaluates the §5 countermeasure suite against a
// worst-case attacker.
func ExampleEvaluateDefenses() {
	tb, err := deepnote.NewTestbed(deepnote.Scenario2, 1*deepnote.Centimeter)
	if err != nil {
		panic(err)
	}
	for _, ev := range deepnote.EvaluateDefenses(tb) {
		fmt.Printf("%s: improved=%v\n", ev.Defense, ev.PeakRatioAfter < ev.PeakRatioBefore)
	}
	// Output:
	// absorbent lining (10 mm foam): improved=true
	// damped mount (isolator fc=150Hz): improved=true
	// stiffened enclosure (2.0x wall): improved=true
	// servo feed-forward (+12 dB rejection): improved=true
}
