// Datacenterrack: the paper's motivating scenario scaled up — a full
// storage tower of five drives in a submerged container, each running the
// victim software stack (journaling filesystem + key-value store + server
// model). One underwater speaker takes the whole rack's storage offline
// and, held long enough, crashes every server in it.
//
// Act two zooms out to facility scale: six containers on the seafloor
// behind a 4-of-6 erasure-coded object store. The same speakers now have
// to silence whole failure domains, and availability only falls once the
// attacker exceeds the parity budget.
package main

import (
	"fmt"
	"log"
	"time"

	"deepnote"
	"deepnote/internal/cluster"
	"deepnote/internal/core"
	"deepnote/internal/enclosure"
	"deepnote/internal/kvdb"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// node is one drive slot's full stack.
type node struct {
	slot int
	rig  *core.Rig
	db   *kvdb.DB
}

func main() {
	tower := enclosure.SupermicroCSEM35TQB()
	fmt.Printf("Underwater rack: %s inside a plastic container, %d drives\n\n",
		tower.Name, tower.Slots)

	// Build one rig per slot: same container, different tower positions.
	var nodes []*node
	for slot := 0; slot < tower.Slots; slot++ {
		tb, err := core.NewTestbed(core.Scenario2, 1*units.Centimeter)
		if err != nil {
			log.Fatal(err)
		}
		tb.Assembly.Mount = enclosure.TowerMount(tower, slot)
		rig, err := core.NewRigFromTestbed(tb, int64(100+slot))
		if err != nil {
			log.Fatal(err)
		}
		_, db, _, err := deepnote.NewStack(rig, int64(slot+1))
		if err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, &node{slot: slot, rig: rig, db: db})
	}

	// Healthy baseline: every node serves a write-heavy workload.
	fmt.Println("baseline (no attack):")
	for _, n := range nodes {
		mbps := runWorkload(n, 2*time.Second)
		fmt.Printf("  slot %d: %.1f MB/s key-value throughput\n", n.slot, mbps)
	}

	// One speaker, one tone, every drive in the tower.
	tone := sig.NewTone(650 * units.Hz)
	fmt.Printf("\n>>> attacker keys a %v tone at 1 cm from the container\n\n", tone.Freq)
	fmt.Println("under attack:")
	for _, n := range nodes {
		n.rig.ApplyTone(tone)
		mbps := runWorkload(n, 2*time.Second)
		amp := n.rig.Drive.Vibration().Amplitude
		fmt.Printf("  slot %d: %.2f MB/s (head off-track %.0f%% of track pitch)\n",
			n.slot, mbps, amp*100)
	}

	// Prolonged attack: count how long until each node's store crashes.
	fmt.Println("\nprolonged attack (WAL persistence failure expected ≈80 s):")
	for _, n := range nodes {
		start := n.rig.Clock.Now()
		for i := 0; ; i++ {
			if err := n.db.Put(key(i), []byte("payload")); err != nil {
				if crashed, _ := n.db.Crashed(); crashed {
					break
				}
			}
			if n.rig.Clock.Now().Sub(start) > 200*time.Second {
				break
			}
		}
		if crashed, _ := n.db.Crashed(); crashed {
			fmt.Printf("  slot %d: database crashed after %.1f s\n",
				n.slot, n.db.CrashedAt().Sub(start).Seconds())
		} else {
			fmt.Printf("  slot %d: survived the window\n", n.slot)
		}
	}
	fmt.Println("\nOne commodity underwater speaker disabled the entire rack: no drive")
	fmt.Println("in the tower was out of the vulnerable band.")

	// Act two: the facility answers with redundancy. Six containers at
	// 2 m pitch store every object as a 4-of-6 stripe, one shard per
	// failure domain, so the attacker must silence whole containers.
	fmt.Println("\n=== facility scale: 4-of-6 erasure-coded cluster, 6 containers ===")
	for _, speakers := range []int{2, 3} {
		res := serveUnderAttack(speakers)
		fmt.Printf("  %d speakers (point-blank, sustained): GET availability %.0f%%, "+
			"%d degraded reads, P99 %.1f ms\n",
			speakers, res.GetAvailability()*100, res.DegradedReads,
			float64(res.P99)/1e6)
	}
	fmt.Println("\nUp to the parity budget (n−k = 2 containers) every read is served,")
	fmt.Println("degraded, from the surviving shards; one more speaker and the same")
	fmt.Println("attack takes the whole store's availability to zero.")
}

// serveUnderAttack builds the six-container cluster with point-blank
// speakers at the first `speakers` containers, keys them on for the whole
// run, and serves a short read-heavy workload.
func serveUnderAttack(speakers int) cluster.ServeResult {
	targets := make([]int, speakers)
	for i := range targets {
		targets[i] = i
	}
	lay := cluster.LineLayout(6, 2*units.Meter).
		WithSpeakersAt(sig.NewTone(650*units.Hz), targets...)
	c, err := cluster.New(cluster.Config{
		Layout:       lay,
		DataShards:   4,
		ParityShards: 2,
		Objects:      16,
		ObjectSize:   8 << 10,
		Seed:         cluster.Ptr(int64(42)),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Preload(); err != nil {
		log.Fatal(err)
	}
	on := make([]bool, speakers)
	for i := range on {
		on[i] = true
	}
	c.SetSchedule([]cluster.ScheduleStep{{At: 0, Active: on}})
	res, err := c.Serve(cluster.TrafficSpec{Requests: 80, Rate: 250})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

func runWorkload(n *node, window time.Duration) float64 {
	bench := kvdb.NewBench(n.db, n.rig.Clock)
	res, err := bench.Run(kvdb.BenchSpec{
		Workload: kvdb.WorkloadReadWhileWriting,
		Runtime:  window,
		Seed:     int64(n.slot + 7),
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.ThroughputMBps()
}
