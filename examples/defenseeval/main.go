// Defenseeval: evaluate the countermeasures the paper's §5 proposes —
// absorbent linings, damped mounts, stiffened enclosures, and servo
// feed-forward — against the worst-case attack (full power at 1 cm), and
// weigh residual vulnerability against thermal cost, the trade-off the
// paper warns about (acoustic insulation also insulates heat).
package main

import (
	"fmt"
	"log"

	"deepnote"
	"deepnote/internal/defense"
	"deepnote/internal/units"
)

func main() {
	tb, err := deepnote.NewTestbed(deepnote.Scenario2, 1*deepnote.Centimeter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Defense evaluation: Scenario 2, full-power attacker at 1 cm")
	fmt.Println()
	fmt.Printf("%-38s %-8s %-8s %-10s %-14s %s\n",
		"defense", "before", "after", "protected", "residual band", "thermal")

	for _, ev := range deepnote.EvaluateDefenses(tb) {
		fmt.Printf("%-38s %-8.2f %-8.2f %-10v %-14s +%.1f°C\n",
			ev.Defense, ev.PeakRatioBefore, ev.PeakRatioAfter, ev.Protected,
			fmt.Sprintf("%.0f Hz", float64(ev.ResidualBandHz)), ev.ThermalPenaltyC)
	}

	// Sweep lining thickness: how much foam buys protection, and at what
	// cooling cost?
	fmt.Println("\nAbsorbent lining thickness sweep:")
	for _, mm := range []float64{5, 10, 20, 30, 40} {
		ev := defense.Evaluate(tb, defense.NewAbsorbentLining(mm))
		status := "still vulnerable"
		if ev.Protected {
			status = "protected"
		}
		fmt.Printf("  %4.0f mm: peak ratio %5.2f, %-16s thermal +%.1f°C\n",
			mm, ev.PeakRatioAfter, status, ev.ThermalPenaltyC)
	}

	// Defense in depth: feed-forward firmware + modest lining.
	fmt.Println("\nDefense in depth (servo feed-forward, then lining):")
	ff := defense.NewServoFeedforward(12)
	defended := ff.Apply(tb)
	for _, mm := range []float64{0, 5, 10} {
		probe := defended
		label := "feed-forward only"
		if mm > 0 {
			probe = defense.NewAbsorbentLining(mm).Apply(defended)
			label = fmt.Sprintf("feed-forward + %.0f mm lining", mm)
		}
		peak := 0.0
		for f := units.Frequency(100); f <= 4000; f += 25 {
			if r := probe.OffTrackRatio(f); r > peak {
				peak = r
			}
		}
		fmt.Printf("  %-28s peak ratio %.2f\n", label, peak)
	}
	fmt.Println("\nFindings: firmware feed-forward is the only thermally free defense;")
	fmt.Println("mechanical defenses trade residual band width against cooling headroom,")
	fmt.Println("exactly the tension the paper flags for submerged enclosures.")
}
