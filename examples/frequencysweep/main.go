// Frequencysweep: run the attacker's reconnaissance procedure from the
// paper's §3/§4.1 — a coarse sweep from 100 Hz to 16.9 kHz, refined in
// 50 Hz steps around vulnerable frequencies — against each of the three
// testbed scenarios, and report the discovered vulnerable bands.
package main

import (
	"fmt"
	"log"

	"deepnote"
)

func main() {
	fmt.Println("Attacker reconnaissance: two-phase frequency sweep, full-scale tone at 1 cm")
	fmt.Println()
	for _, scenario := range []deepnote.Scenario{
		deepnote.Scenario1, deepnote.Scenario2, deepnote.Scenario3,
	} {
		for _, pattern := range []deepnote.Pattern{deepnote.SeqWrite, deepnote.SeqRead} {
			res, err := deepnote.Sweep(scenario, pattern)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%v, %v workload:\n", scenario, pattern)
			fmt.Printf("  %d frequencies measured, %d vulnerable\n",
				len(res.Points), len(res.Vulnerable))
			for _, band := range res.Bands {
				fmt.Printf("  vulnerable band: %v (width %v)\n", band, band.Width())
			}
			// Show the worst point the attacker found.
			worst := res.Points[0]
			for _, p := range res.Points {
				if p.Degradation() > worst.Degradation() {
					worst = p
				}
			}
			fmt.Printf("  best attack tone: %v (%.0f%% throughput loss)\n\n",
				worst.Freq, worst.Degradation()*100)
		}
	}
	fmt.Println("Observation (matches the paper's §4.1): every scenario is vulnerable")
	fmt.Println("between ≈300 Hz and ≈1.7 kHz; writes die over a wider band than reads;")
	fmt.Println("the aluminum container's band tops out lower than the plastic one's.")
}
