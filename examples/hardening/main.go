// Hardening: the deployment guide the paper's findings imply, as a
// runnable walkthrough. Starting from the paper's vulnerable testbed, each
// step applies one hardening measure and re-evaluates the attacker's
// options, ending with a configuration a subsea operator could defend:
// steel vessel, defense stack, cross-container redundancy, and telemetry
// monitoring.
package main

import (
	"fmt"
	"log"

	"deepnote/internal/acoustics"
	"deepnote/internal/core"
	"deepnote/internal/defense"
	"deepnote/internal/enclosure"
	"deepnote/internal/experiment"
	"deepnote/internal/units"
	"deepnote/internal/water"
)

func main() {
	sea := water.Seawater(36)

	evaluate := func(label string, tb *core.Testbed) {
		crit, ok := tb.CriticalIncidentSPL(650)
		if !ok {
			fmt.Printf("%-44s invulnerable at 650 Hz\n", label)
			return
		}
		var lines []string
		for _, tier := range acoustics.AttackerTiers() {
			d, reachable := acoustics.MaxAttackRange(tier.Level, tier.RefDist, crit, 650, sea, experiment.SearchCap)
			entry := tier.Name + ": "
			switch {
			case !reachable:
				entry += "cannot attack"
			case d >= experiment.SearchCap:
				entry += ">= 10km"
			default:
				entry += d.String()
			}
			lines = append(lines, entry)
		}
		fmt.Printf("%-44s needs %3.0f dB re 1µPa\n", label, crit.DB)
		for _, l := range lines {
			fmt.Printf("%-44s   %s\n", "", l)
		}
	}

	fmt.Println("Step 0: the paper's testbed (plastic container, storage tower)")
	tb, err := core.NewTestbed(core.Scenario2, 1*units.Centimeter)
	if err != nil {
		log.Fatal(err)
	}
	evaluate("  baseline:", tb)

	fmt.Println("\nStep 1: production enclosure (steel pressure vessel)")
	hardened := *tb
	hardened.Assembly.Container = enclosure.NatickVessel()
	evaluate("  steel vessel:", &hardened)

	fmt.Println("\nStep 2: defense stack inside the vessel")
	stack := defense.Suite{
		defense.NewServoFeedforward(12),
		defense.NewDampedMount(150),
	}
	defended := stack.Apply(&hardened)
	evaluate("  steel + "+stack.Name()+":", defended)
	fmt.Printf("  thermal cost: +%.1f°C (water at %.0f°C leaves ample headroom)\n",
		stack.ThermalPenaltyC(), sea.TempC)

	fmt.Println("\nStep 3: place redundancy across acoustic failure domains")
	rows, err := experiment.Redundancy(1)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		verdict := "DIES"
		if r.Survived {
			verdict = "SURVIVES"
		}
		fmt.Printf("  %-7s %-36s %s\n", r.Level, r.Placement, verdict)
	}

	fmt.Println("\nStep 4: monitor for what cannot be prevented")
	fmt.Println("  - latency/error anomaly detection (internal/detect) alarms inside")
	fmt.Println("    seconds, far before the ~80 s crash horizon of Table 3")
	fmt.Println("  - SMART servo-retry counters fingerprint acoustic stress")
	fmt.Println("  - CRC-verifying storage (WAL-style) catches silent integrity rot")

	fmt.Println("\nResult: the pool-speaker attacker from the paper is eliminated, a")
	fmt.Println("commercial transducer must get within meters of the vessel, and even a")
	fmt.Println("sonar-class attacker only degrades one acoustic failure domain at a time.")
}
