// Quickstart: build the paper's testbed, measure the healthy drive, start
// a 650 Hz / 140 dB attack from 1 cm, watch throughput die, stop the
// attack, watch it recover. Everything runs in virtual time and finishes
// in milliseconds of real time.
package main

import (
	"fmt"
	"log"
	"time"

	"deepnote"
)

func main() {
	// Scenario 2: the drive sits in a Supermicro-style storage tower
	// inside a plastic container submerged in a freshwater tank.
	rig, err := deepnote.NewRig(deepnote.Scenario2, 1*deepnote.Centimeter, 42)
	if err != nil {
		log.Fatal(err)
	}

	measure := func(label string) {
		read, err := deepnote.RunFIO(rig, deepnote.SeqRead, 2*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		write, err := deepnote.RunFIO(rig, deepnote.SeqWrite, 2*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		r, w := "no response", "no response"
		if !read.NoResponse {
			r = fmt.Sprintf("%.1f MB/s", read.ThroughputMBps())
		}
		if !write.NoResponse {
			w = fmt.Sprintf("%.1f MB/s", write.ThroughputMBps())
		}
		fmt.Printf("%-28s read %-12s write %s\n", label, r, w)
	}

	fmt.Println("Deep Note quickstart — victim: 500 GB Barracuda in Scenario 2")
	fmt.Println()
	measure("baseline (no attack):")

	tone := deepnote.Tone(650 * deepnote.Hz)
	rig.ApplyTone(tone)
	fmt.Printf("\n>>> attacking: %v underwater tone, incident %v at 1 cm\n\n",
		tone.Freq, rig.Testbed.IncidentSPL(tone))
	measure("under attack:")

	rig.Silence()
	fmt.Println("\n>>> attack stopped")
	fmt.Println()
	measure("after attack:")
}
