// Remoterecon: the paper's §3 threat model end to end. The attacker never
// sees the drive — they rent time on an online object store backed by the
// submerged rack, sweep tones from their underwater speaker, and watch
// nothing but request latencies. Timeouts and latency spikes map out the
// victim's vulnerable band; the attacker then keys the best tone and takes
// the service down at will.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"deepnote/internal/attack"
	"deepnote/internal/core"
	"deepnote/internal/netstore"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

func main() {
	fmt.Println("Phase 1: reconnaissance — latency-only frequency sweep")
	fmt.Println()
	sweep, err := attack.RemoteSweeper{
		Scenario: core.Scenario2,
		Plan: sig.SweepPlan{
			Start: 100, End: 8000, CoarseStep: 200, FineStep: 50, DwellSec: 1,
		},
	}.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  healthy median PUT: %.2f ms\n", sweep.Baseline.Seconds()*1000)
	fmt.Println("  frequencies whose probes timed out or blew past 3x baseline:")
	for _, band := range sweep.InferredBands {
		fmt.Printf("    inferred vulnerable band: %v\n", band)
	}

	if len(sweep.InferredBands) == 0 {
		log.Fatal("reconnaissance failed")
	}
	band := sweep.InferredBands[0]
	best := band.Low + (band.High-band.Low)/2
	fmt.Printf("\nPhase 2: exploitation — keying %v against the live service\n\n", best)

	rig, err := core.NewRig(core.Scenario2, 1*units.Centimeter, 99)
	if err != nil {
		log.Fatal(err)
	}
	srv := netstore.NewServer(rig.Disk, rig.Clock, netstore.Config{Timeout: 2 * time.Second})
	if err := srv.Preload(); err != nil {
		log.Fatal(err)
	}

	serve := func(label string, n int) {
		okCount, timeouts, fails := 0, 0, 0
		var latSum time.Duration
		for i := 0; i < n; i++ {
			resp := srv.Handle(netstore.Put, i%100)
			switch {
			case resp.Err == nil:
				okCount++
				latSum += resp.Latency
			case errors.Is(resp.Err, netstore.ErrTimeout):
				timeouts++
			default:
				fails++
			}
		}
		mean := "-"
		if okCount > 0 {
			mean = fmt.Sprintf("%.2f ms", (latSum/time.Duration(okCount)).Seconds()*1000)
		}
		fmt.Printf("  %-16s %3d ok  %3d timeouts  %3d errors   mean latency %s\n",
			label, okCount, timeouts, fails, mean)
	}

	serve("before attack:", 50)
	rig.ApplyTone(sig.NewTone(best))
	serve("under attack:", 20)
	rig.Silence()
	serve("after attack:", 50)

	fmt.Println("\nThe attacker needed no access to the data center — only an online")
	fmt.Println("service backed by it and a speaker in the water. This is the paper's")
	fmt.Println("threat model (§3) realized end to end.")
}
