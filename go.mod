module deepnote

go 1.23
