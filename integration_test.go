package deepnote

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/core"
	"deepnote/internal/jfs"
	"deepnote/internal/kvdb"
	"deepnote/internal/raid"
	"deepnote/internal/sig"
	"deepnote/internal/simclock"
	"deepnote/internal/units"
)

// TestFullStackCrossContainerMirrorSurvivesAttack is the capstone
// integration: a key-value store on a journaling filesystem on a RAID-1
// array whose mirrors live in two different submerged containers. The
// attacker takes one container point blank; the deployment survives with
// zero data loss — the defense the paper's findings argue a subsea
// operator actually needs.
func TestFullStackCrossContainerMirrorSurvivesAttack(t *testing.T) {
	clock := simclock.NewVirtual()

	// Mirror A: the attacked container (speaker at 1 cm). Mirror B: a
	// second container 5 m away.
	tbA, err := core.NewTestbed(core.Scenario2, 1*units.Centimeter)
	if err != nil {
		t.Fatal(err)
	}
	rigA, err := core.NewRigWithClock(tbA, clock, 1)
	if err != nil {
		t.Fatal(err)
	}
	tbB, err := core.NewTestbed(core.Scenario2, 5*units.Meter)
	if err != nil {
		t.Fatal(err)
	}
	rigB, err := core.NewRigWithClock(tbB, clock, 2)
	if err != nil {
		t.Fatal(err)
	}

	arr, err := raid.New(raid.RAID1, []blockdev.Device{rigA.Disk, rigB.Disk})
	if err != nil {
		t.Fatal(err)
	}
	if err := jfs.Mkfs(arr, jfs.MkfsOptions{Blocks: 1 << 16}); err != nil {
		t.Fatal(err)
	}
	fs, err := jfs.Mount(arr, clock, jfs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := kvdb.Open(fs, clock, kvdb.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Healthy phase.
	for i := 0; i < 500; i++ {
		if err := db.Put(key(i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatalf("healthy put %d: %v", i, err)
		}
	}
	if err := db.SyncWAL(); err != nil {
		t.Fatal(err)
	}

	// Attack phase: the tone hits both containers through their own
	// paths — devastating at 1 cm, irrelevant at 5 m.
	tone := sig.NewTone(650 * units.Hz)
	rigA.ApplyTone(tone)
	rigB.ApplyTone(tone)

	for i := 500; i < 1000; i++ {
		if err := db.Put(key(i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatalf("put %d during attack: %v", i, err)
		}
	}
	if err := db.SyncWAL(); err != nil {
		t.Fatalf("sync during attack: %v", err)
	}
	if crashed, cerr := db.Crashed(); crashed {
		t.Fatalf("store crashed despite the surviving mirror: %v", cerr)
	}
	if failed := arr.FailedMembers(); len(failed) != 1 || failed[0] != 0 {
		t.Fatalf("failed members = %v, want exactly the attacked mirror", failed)
	}

	// Every key — from before and during the attack — reads back.
	for i := 0; i < 1000; i++ {
		v, err := db.Get(key(i))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if string(v) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("key %d corrupted: %q", i, v)
		}
	}

	// The filesystem on the degraded array stays consistent.
	if rep := fs.Fsck(); !rep.Clean {
		t.Fatalf("fsck on degraded array: %v", rep.Problems)
	}
}

// TestFullStackSingleContainerDiesEndToEnd is the control: the same stack
// with both mirrors in the attacked container collapses exactly as the
// paper's Table 3 predicts.
func TestFullStackSingleContainerDiesEndToEnd(t *testing.T) {
	clock := simclock.NewVirtual()
	var disks []blockdev.Device
	var rigs []*core.Rig
	for i := 0; i < 2; i++ {
		tb, err := core.NewTestbed(core.Scenario2, 1*units.Centimeter)
		if err != nil {
			t.Fatal(err)
		}
		rig, err := core.NewRigWithClock(tb, clock, int64(10+i))
		if err != nil {
			t.Fatal(err)
		}
		rigs = append(rigs, rig)
		disks = append(disks, rig.Disk)
	}
	arr, err := raid.New(raid.RAID1, disks)
	if err != nil {
		t.Fatal(err)
	}
	if err := jfs.Mkfs(arr, jfs.MkfsOptions{Blocks: 1 << 16}); err != nil {
		t.Fatal(err)
	}
	fs, err := jfs.Mount(arr, clock, jfs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := kvdb.Open(fs, clock, kvdb.Options{WALStallLimit: 30 * time.Second, WALFlushBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put(key(0), []byte("seed")); err != nil {
		t.Fatal(err)
	}
	tone := sig.NewTone(650 * units.Hz)
	for _, rig := range rigs {
		rig.ApplyTone(tone)
	}
	var crashErr error
	for i := 1; i < 100; i++ {
		if err := db.Put(key(i), []byte("x")); err != nil {
			if crashed, cerr := db.Crashed(); crashed {
				crashErr = cerr
				break
			}
		}
	}
	if crashErr == nil {
		t.Fatal("co-located mirror stack should crash under sustained attack")
	}
	if !errors.Is(crashErr, kvdb.ErrCrashed) {
		t.Fatalf("crash error: %v", crashErr)
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
