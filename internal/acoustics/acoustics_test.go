package acoustics

import (
	"math"
	"testing"
	"testing/quick"

	"deepnote/internal/sig"
	"deepnote/internal/units"
	"deepnote/internal/water"
)

func TestAQ339FullScaleAt1cmIs140dB(t *testing.T) {
	// The paper transmits 140 dB SPL signals; our chain is normalized so a
	// full-scale 650 Hz tone measures 140 dB re 1 µPa at 1 cm.
	c := PaperChain(1 * units.Centimeter)
	got := c.IncidentSPL(sig.NewTone(650 * units.Hz))
	if math.Abs(got.DB-140) > 0.01 {
		t.Fatalf("incident SPL at 1cm = %v, want 140 dB", got.DB)
	}
}

func TestSphericalSpreading1to25cm(t *testing.T) {
	// 1 cm → 25 cm is 20·log10(25) ≈ 28 dB of spreading loss; absorption in
	// a freshwater tank is negligible.
	tone := sig.NewTone(650 * units.Hz)
	near := PaperChain(1 * units.Centimeter).IncidentSPL(tone)
	far := PaperChain(25 * units.Centimeter).IncidentSPL(tone)
	drop := near.DB - far.DB
	if math.Abs(drop-27.96) > 0.05 {
		t.Fatalf("1→25cm drop = %v dB, want ≈27.96", drop)
	}
}

func TestIncidentSPLMonotoneInDistance(t *testing.T) {
	tone := sig.NewTone(650 * units.Hz)
	prev := math.Inf(1)
	for _, cm := range []float64{1, 5, 10, 15, 20, 25, 100} {
		got := PaperChain(units.Distance(cm) * units.Centimeter).IncidentSPL(tone).DB
		if got >= prev {
			t.Fatalf("SPL not decreasing at %vcm: %v >= %v", cm, got, prev)
		}
		prev = got
	}
}

func TestIncidentSPLDistanceProperty(t *testing.T) {
	tone := sig.NewTone(650 * units.Hz)
	prop := func(aRaw, bRaw uint8) bool {
		a := units.Distance(float64(aRaw)+1) * units.Centimeter
		b := units.Distance(float64(bRaw)+1) * units.Centimeter
		if a > b {
			a, b = b, a
		}
		sa := PaperChain(a).IncidentSPL(tone).DB
		sb := PaperChain(b).IncidentSPL(tone).DB
		return sa >= sb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeakerResponseFlatInBand(t *testing.T) {
	s := AQ339()
	for _, f := range []units.Frequency{100, 300, 650, 1300, 8000, 16900} {
		if got := float64(s.ResponseDB(f)); got != 0 {
			t.Errorf("response at %v = %v dB, want 0 (flat in band)", f, got)
		}
	}
}

func TestSpeakerRollOffOutOfBand(t *testing.T) {
	s := AQ339()
	if got := float64(s.ResponseDB(40 * units.Hz)); got > -11 || got < -13 {
		t.Fatalf("response at 40 Hz = %v dB, want ≈ -12 (one octave below corner)", got)
	}
	if got := float64(s.ResponseDB(34000 * units.Hz)); got > -11 || got < -13.5 {
		t.Fatalf("response at 34 kHz = %v dB, want ≈ -12", got)
	}
	if got := float64(s.ResponseDB(0)); !math.IsInf(got, -1) {
		t.Fatalf("response at 0 Hz = %v, want -Inf", got)
	}
}

func TestSourceLevelSaturatesAtMax(t *testing.T) {
	s := AQ339()
	lvl := s.SourceLevel(sig.Tone{Freq: 650, Amplitude: 5})
	if lvl.DB > s.MaxSPL.DB+1e-9 {
		t.Fatalf("source level %v exceeds max %v", lvl.DB, s.MaxSPL.DB)
	}
}

func TestSourceLevelScalesWithDrive(t *testing.T) {
	s := AQ339()
	full := s.SourceLevel(sig.Tone{Freq: 650, Amplitude: 1})
	half := s.SourceLevel(sig.Tone{Freq: 650, Amplitude: 0.5})
	if math.Abs((full.DB-half.DB)-6.02) > 0.01 {
		t.Fatalf("full-half = %v dB, want ≈6.02", full.DB-half.DB)
	}
	silent := s.SourceLevel(sig.Tone{Freq: 650, Amplitude: 0})
	if !math.IsInf(silent.DB, -1) {
		t.Fatalf("silent source level = %v, want -Inf", silent.DB)
	}
}

func TestAmplifierGainAndClip(t *testing.T) {
	amp := Amplifier{Name: "test", GainDB: 6.0206}
	out := amp.Drive(sig.Tone{Freq: 650, Amplitude: 0.25})
	if math.Abs(out.Amplitude-0.5) > 1e-4 {
		t.Fatalf("6 dB gain on 0.25 = %v, want 0.5", out.Amplitude)
	}
	clipped := amp.Drive(sig.Tone{Freq: 650, Amplitude: 0.9})
	if clipped.Amplitude != 1 {
		t.Fatalf("expected clip to 1, got %v", clipped.Amplitude)
	}
}

func TestPathTransmissionLossInsideReferenceClamped(t *testing.T) {
	p := Path{Medium: water.FreshwaterTank(), Distance: 5 * units.Millimeter}
	tl := float64(p.TransmissionLoss(650*units.Hz, 1*units.Centimeter))
	if tl < 0 {
		t.Fatalf("transmission loss inside reference = %v, want clamped ≥ 0", tl)
	}
}

func TestPathAbsorptionMattersAtLongRange(t *testing.T) {
	// At kilometers in seawater at high frequency, absorption adds real dB
	// beyond spreading.
	m := water.Seawater(36)
	pNear := Path{Medium: m, Distance: 1000 * units.Meter}
	pSpreadOnly := 20 * math.Log10(1000/0.01)
	tl := float64(pNear.TransmissionLoss(16900*units.Hz, 1*units.Centimeter))
	if tl <= pSpreadOnly {
		t.Fatalf("long-range TL %v should exceed pure spreading %v", tl, pSpreadOnly)
	}
}

func TestChainValidate(t *testing.T) {
	c := PaperChain(1 * units.Centimeter)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := c
	bad.Path.Distance = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero distance")
	}
	badSpk := c
	badSpk.Speaker.RefDist = 0
	if err := badSpk.Validate(); err == nil {
		t.Fatal("expected error for zero speaker reference distance")
	}
	badSpk2 := c
	badSpk2.Speaker.HighCorner = badSpk2.Speaker.LowCorner
	if err := badSpk2.Validate(); err == nil {
		t.Fatal("expected error for inverted corners")
	}
}

func TestWithDistance(t *testing.T) {
	c := PaperChain(1 * units.Centimeter)
	c2 := c.WithDistance(25 * units.Centimeter)
	if c2.Path.Distance != 25*units.Centimeter {
		t.Fatalf("WithDistance = %v", c2.Path.Distance)
	}
	if c.Path.Distance != 1*units.Centimeter {
		t.Fatal("WithDistance mutated the receiver")
	}
}

func TestIncidentPressureAt140dB(t *testing.T) {
	// 140 dB re 1µPa = 10 Pa RMS.
	c := PaperChain(1 * units.Centimeter)
	p := c.IncidentPressure(sig.NewTone(650 * units.Hz))
	if math.Abs(p.Pascals()-10) > 0.01 {
		t.Fatalf("incident pressure = %v Pa, want 10", p.Pascals())
	}
}

func TestSurfaceReflectionDisabledByDefault(t *testing.T) {
	p := Path{Medium: water.FreshwaterTank(), Distance: 10 * units.Centimeter}
	if got := p.surfaceFactor(650); got != 1 {
		t.Fatalf("default surface factor = %v, want 1", got)
	}
}

func TestSurfaceReflectionInterference(t *testing.T) {
	// With a shallow source/target, the Lloyd's mirror effect modulates
	// the delivered level with distance: some ranges constructive (up to
	// +6 dB), some destructive. The factor must stay in [0, 2] and vary.
	m := water.Seawater(20)
	min, max := math.Inf(1), math.Inf(-1)
	for cm := 50.0; cm <= 5000; cm += 25 {
		p := Path{Medium: m, Distance: units.Distance(cm) * units.Centimeter, SurfaceDepth: 2 * units.Meter}
		f := p.surfaceFactor(650)
		if f < 0 || f > 2.000001 {
			t.Fatalf("surface factor %v out of range at %v cm", f, cm)
		}
		min = math.Min(min, f)
		max = math.Max(max, f)
	}
	if max-min < 0.5 {
		t.Fatalf("interference pattern too flat: [%v, %v]", min, max)
	}
}

func TestSurfaceReflectionAffectsTransmissionLoss(t *testing.T) {
	m := water.Seawater(20)
	base := Path{Medium: m, Distance: 100 * units.Meter}
	shallow := base
	shallow.SurfaceDepth = 1 * units.Meter
	tlBase := float64(base.TransmissionLoss(650, 1*units.Meter))
	tlShallow := float64(shallow.TransmissionLoss(650, 1*units.Meter))
	if tlBase == tlShallow {
		t.Fatal("surface reflection had no effect on transmission loss")
	}
}
