package acoustics

import (
	"fmt"
	"math"

	"deepnote/internal/sig"
	"deepnote/internal/units"
	"deepnote/internal/water"
)

// Path is a propagation path from the speaker face to a target surface
// through a water medium. Loss is spherical spreading referenced to the
// speaker's reference distance plus frequency-dependent medium absorption:
//
//	TL(f, d) = 20·log10(d / refDist) + α(f)·d
//
// Spherical spreading dominates at tank scale (28 dB from 1 cm to 25 cm),
// which is exactly the roll-off the paper's range test exhibits; absorption
// only matters at open-water distances.
type Path struct {
	// Medium is the water the sound crosses.
	Medium water.Medium
	// Distance is the speaker-to-target distance.
	Distance units.Distance
	// SurfaceDepth, when positive, enables the Lloyd's-mirror surface
	// reflection: the water surface is a near-perfect pressure-release
	// reflector, and the image source interferes with the direct path.
	// It is the depth of both source and target below the surface.
	// Zero (the default) models the deep/absorbing-boundary case the
	// tank calibration uses.
	SurfaceDepth units.Distance
}

// surfaceFactor returns the linear pressure gain (0..2) from the surface
// image source: |1 − e^{jkΔ}| where Δ is the path difference between the
// direct ray and the surface bounce (the reflection flips phase).
func (p Path) surfaceFactor(f units.Frequency) float64 {
	if p.SurfaceDepth <= 0 {
		return 1
	}
	d := float64(p.Distance)
	h := float64(p.SurfaceDepth)
	reflected := math.Sqrt(d*d + 4*h*h)
	delta := reflected - d
	k := f.AngularVelocity() / p.Medium.SoundSpeed()
	// Amplitude of the reflected ray scales by the direct/reflected
	// distance ratio (spreading).
	a := d / reflected
	re := 1 - a*math.Cos(k*delta)
	im := a * math.Sin(k*delta)
	return math.Hypot(re, im)
}

// Validate reports whether the path is physical.
func (p Path) Validate() error {
	if p.Distance <= 0 {
		return fmt.Errorf("acoustics: path distance must be positive, got %v", p.Distance)
	}
	return p.Medium.Validate()
}

// TransmissionLoss returns the positive loss in dB along the path for a
// source referenced at refDist.
func (p Path) TransmissionLoss(f units.Frequency, refDist units.Distance) units.Decibel {
	if p.Distance <= 0 || refDist <= 0 {
		return 0
	}
	spreading := 20 * math.Log10(float64(p.Distance)/float64(refDist))
	if spreading < 0 {
		// Inside the reference distance the near field saturates; clamp
		// rather than extrapolating gain.
		spreading = 0
	}
	absorption := float64(p.Medium.AbsorptionLoss(f, p.Distance))
	surface := 0.0
	if sf := p.surfaceFactor(f); sf > 0 {
		surface = -20 * math.Log10(sf)
	} else {
		surface = 120 // a perfect null: bounded rather than infinite
	}
	return units.Decibel(spreading + absorption + surface)
}

// Chain is the assembled attack source: amplifier, speaker, and path.
// Its product is the incident SPL (and pressure) at the victim surface for
// a given drive tone.
type Chain struct {
	Amp     Amplifier
	Speaker Speaker
	Path    Path
}

// PaperChain assembles the paper's testbed chain (BG-2120 + AQ339 in a
// freshwater tank) at the given speaker-to-container distance.
func PaperChain(d units.Distance) Chain {
	return Chain{
		Amp:     BG2120(),
		Speaker: AQ339(),
		Path:    Path{Medium: water.FreshwaterTank(), Distance: d},
	}
}

// Validate reports whether every element of the chain is consistent.
func (c Chain) Validate() error {
	if err := c.Speaker.Validate(); err != nil {
		return err
	}
	return c.Path.Validate()
}

// IncidentSPL returns the SPL arriving at the target surface for the tone.
func (c Chain) IncidentSPL(t sig.Tone) units.SPL {
	driven := c.Amp.Drive(t)
	src := c.Speaker.SourceLevel(driven)
	loss := c.Path.TransmissionLoss(driven.Freq, c.Speaker.RefDist)
	return src.Add(-loss)
}

// IncidentPressure returns the RMS pressure arriving at the target surface.
func (c Chain) IncidentPressure(t sig.Tone) units.Pressure {
	return c.IncidentSPL(t).Pressure()
}

// WithDistance returns a copy of the chain at a different distance,
// preserving medium, speaker, and amplifier. Attack procedures use this to
// sweep range.
func (c Chain) WithDistance(d units.Distance) Chain {
	c.Path.Distance = d
	return c
}
