package acoustics

import (
	"math"

	"deepnote/internal/units"
	"deepnote/internal/water"
)

// deliveredSPL returns the SPL arriving at distance d from a source of
// level src (referenced at refDist) at frequency f in medium m.
func deliveredSPL(src units.SPL, refDist units.Distance, f units.Frequency, m water.Medium, d units.Distance) float64 {
	spread := 20 * math.Log10(float64(d)/float64(refDist))
	if spread < 0 {
		spread = 0
	}
	return src.DB - spread - float64(m.AbsorptionLoss(f, d))
}

// MaxAttackRange returns the largest distance at which a source of the
// given level still delivers at least `required` SPL at frequency f in
// medium m, searched up to maxDist. ok is false when even the reference
// distance falls short. This quantifies the paper's §5 "Effective Range"
// discussion: spreading dominates at tank scale, absorption at sea scale,
// and louder (military-grade) sources buy distance.
func MaxAttackRange(src units.SPL, refDist units.Distance, required units.SPL, f units.Frequency, m water.Medium, maxDist units.Distance) (units.Distance, bool) {
	req := required.Rereference(src.Ref).DB
	if deliveredSPL(src, refDist, f, m, refDist) < req {
		return 0, false
	}
	if deliveredSPL(src, refDist, f, m, maxDist) >= req {
		return maxDist, true
	}
	lo, hi := refDist, maxDist
	for i := 0; i < 100 && (hi-lo) > lo*1e-6; i++ {
		mid := (lo + hi) / 2
		if deliveredSPL(src, refDist, f, m, mid) >= req {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true
}

// RequiredSourceLevel returns the source level (at refDist) needed to
// deliver `required` SPL at distance d and frequency f in medium m — how
// an attacker sizes their amplifier for a standoff attack, per §4.2's
// closing observation.
func RequiredSourceLevel(required units.SPL, refDist units.Distance, f units.Frequency, m water.Medium, d units.Distance) units.SPL {
	spread := 20 * math.Log10(float64(d)/float64(refDist))
	if spread < 0 {
		spread = 0
	}
	absorb := float64(m.AbsorptionLoss(f, d))
	return units.SPL{DB: required.Rereference(units.RefPressureWater).DB + spread + absorb, Ref: units.RefPressureWater}
}

// SourceClass describes an attacker capability tier for range studies.
type SourceClass struct {
	// Name labels the tier.
	Name string
	// Level is the source level at RefDist.
	Level units.SPL
	// RefDist is the level's reference distance.
	RefDist units.Distance
}

// Commercial attacker tiers, following the paper's discussion: the AQ339
// pool speaker used in the testbed, a high-power commercial transducer,
// and sonar-class military equipment (§4 cites 220 dB SPL for sonars).
func AttackerTiers() []SourceClass {
	return []SourceClass{
		{Name: "pool speaker (AQ339-class)", Level: units.WaterSPL(140), RefDist: 1 * units.Centimeter},
		{Name: "commercial transducer", Level: units.WaterSPL(180), RefDist: 1 * units.Meter},
		{Name: "military sonar-class", Level: units.WaterSPL(220), RefDist: 1 * units.Meter},
	}
}
