// Package acoustics models the attack signal chain from the attacker's
// amplifier to the incident pressure at the victim enclosure: an underwater
// speaker with a frequency response and a maximum source level, an amplifier
// with gain and clipping, and a propagation path applying spherical
// spreading and medium absorption.
//
// The paper's chain is: laptop (GNU Radio sine) → TOA BG-2120 amplifier →
// Clark Synthesis AQ339 Diluvio underwater speaker → water → container.
package acoustics

import (
	"fmt"
	"math"

	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// Speaker is an underwater acoustic source. Source levels are expressed as
// the SPL measured at the reference distance RefDist from the transducer
// face when driven at full scale; real product datasheets use 1 m, but for
// the paper's near-field tank work a centimeter-scale reference keeps the
// numbers directly comparable to the experiments (140 dB SPL at 1 cm).
type Speaker struct {
	// Name identifies the speaker model.
	Name string
	// MaxSPL is the maximum source level the speaker can produce at
	// RefDist within its flat band.
	MaxSPL units.SPL
	// RefDist is the distance at which MaxSPL is specified.
	RefDist units.Distance
	// LowCorner and HighCorner bound the usable band. Response rolls off
	// at 12 dB/octave outside the corners, approximating a transducer's
	// band edges.
	LowCorner, HighCorner units.Frequency
}

// AQ339 returns a model of the Clark Synthesis AQ339 Diluvio underwater
// speaker used in the paper, normalized so that a full-scale 650 Hz drive
// produces the paper's 140 dB SPL (re 1 µPa) at 1 cm from the face.
func AQ339() Speaker {
	return Speaker{
		Name:       "Clark Synthesis AQ339 Diluvio",
		MaxSPL:     units.WaterSPL(140),
		RefDist:    1 * units.Centimeter,
		LowCorner:  80 * units.Hz,
		HighCorner: 17000 * units.Hz,
	}
}

// ResponseDB returns the speaker's relative frequency response in dB
// (0 dB within the flat band, rolling off 12 dB/octave beyond the corners).
func (s Speaker) ResponseDB(f units.Frequency) units.Decibel {
	if f <= 0 {
		return units.Decibel(math.Inf(-1))
	}
	switch {
	case f < s.LowCorner:
		octaves := math.Log2(float64(s.LowCorner) / float64(f))
		return units.Decibel(-12 * octaves)
	case f > s.HighCorner:
		octaves := math.Log2(float64(f) / float64(s.HighCorner))
		return units.Decibel(-12 * octaves)
	default:
		return 0
	}
}

// SourceLevel returns the SPL at RefDist for the given tone, accounting for
// the drive level and the speaker's frequency response, saturating at the
// speaker's maximum.
func (s Speaker) SourceLevel(t sig.Tone) units.SPL {
	t = t.Normalize()
	if t.Amplitude == 0 || t.Freq <= 0 {
		return units.SPL{DB: math.Inf(-1), Ref: s.MaxSPL.Ref}
	}
	lvl := s.MaxSPL.Add(t.DriveDB()).Add(s.ResponseDB(t.Freq))
	if lvl.DB > s.MaxSPL.DB {
		lvl.DB = s.MaxSPL.DB
	}
	return lvl
}

// Validate reports whether the speaker parameters are consistent.
func (s Speaker) Validate() error {
	if s.RefDist <= 0 {
		return fmt.Errorf("acoustics: speaker %q reference distance must be positive", s.Name)
	}
	if s.LowCorner <= 0 || s.HighCorner <= s.LowCorner {
		return fmt.Errorf("acoustics: speaker %q corners invalid [%v, %v]", s.Name, s.LowCorner, s.HighCorner)
	}
	return nil
}

// Amplifier models the attacker's power amplifier: a gain applied to the
// input signal with hard clipping at full scale. The paper drives the
// speaker through a TOA BG-2120 120 W mixer/amplifier.
type Amplifier struct {
	// Name identifies the amplifier.
	Name string
	// GainDB is the voltage gain applied to the input amplitude.
	GainDB units.Decibel
}

// BG2120 returns a model of the TOA BG-2120 amplifier at a neutral setting.
func BG2120() Amplifier { return Amplifier{Name: "TOA BG-2120", GainDB: 0} }

// Drive applies the amplifier to a tone, clipping the output amplitude to
// full scale. (Clipping to a sine's fundamental is a fine approximation at
// the fidelity of this model; harmonics are ignored.)
func (a Amplifier) Drive(t sig.Tone) sig.Tone {
	t = t.Normalize()
	t.Amplitude *= a.GainDB.Linear()
	return t.Normalize()
}
