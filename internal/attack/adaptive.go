package attack

import (
	"math/rand"
	"time"

	"deepnote/internal/core"
	"deepnote/internal/fio"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// Adaptive is a closed-loop attacker: instead of sweeping the whole band
// (the paper's §4.1 procedure needs ~100+ dwell periods), it hill-climbs
// on observed damage with random restarts, converging on an effective
// tone in a fraction of the probes. This matters operationally — a short
// reconnaissance is harder to notice and works against enclosures whose
// resonances differ from any studied reference.
type Adaptive struct {
	Scenario core.Scenario
	Distance units.Distance
	// Budget caps the number of probes (default 25).
	Budget int
	// Band bounds the search (defaults 100 Hz – 8 kHz).
	Low, High units.Frequency
	// JobRuntime is the per-probe observation window (default 300 ms).
	JobRuntime time.Duration
	Seed       int64
}

func (a Adaptive) withDefaults() Adaptive {
	if a.Scenario == 0 {
		a.Scenario = core.Scenario2
	}
	if a.Distance == 0 {
		a.Distance = 1 * units.Centimeter
	}
	if a.Budget <= 0 {
		a.Budget = 25
	}
	if a.Low == 0 {
		a.Low = 100 * units.Hz
	}
	if a.High == 0 {
		a.High = 8000 * units.Hz
	}
	if a.JobRuntime == 0 {
		a.JobRuntime = 300 * time.Millisecond
	}
	if a.Seed == 0 {
		a.Seed = 1
	}
	return a
}

// AdaptiveProbe is one observation.
type AdaptiveProbe struct {
	Freq        units.Frequency
	Degradation float64
}

// AdaptiveResult is the search outcome.
type AdaptiveResult struct {
	// Best is the most damaging tone found.
	Best AdaptiveProbe
	// Probes is the full search trace, in order.
	Probes []AdaptiveProbe
	// Baseline is the healthy throughput used for scoring.
	Baseline float64
}

// Run performs the search: random exploration seeded across the band,
// then halving-step hill climbs around the best point.
func (a Adaptive) Run() (AdaptiveResult, error) {
	a = a.withDefaults()
	rng := rand.New(rand.NewSource(a.Seed))

	measure := func(tone sig.Tone) (float64, error) {
		rig, err := core.NewRig(a.Scenario, a.Distance, a.Seed)
		if err != nil {
			return 0, err
		}
		if tone.Amplitude > 0 {
			rig.ApplyTone(tone)
		}
		res, err := fio.NewRunner(rig.Disk, rig.Clock).Run(fio.PaperJob(fio.SeqWrite, a.JobRuntime))
		if err != nil {
			return 0, err
		}
		return res.ThroughputMBps(), nil
	}

	baseline, err := measure(sig.Tone{})
	if err != nil {
		return AdaptiveResult{}, err
	}
	res := AdaptiveResult{Baseline: baseline}

	probe := func(f units.Frequency) (AdaptiveProbe, error) {
		mbps, err := measure(sig.NewTone(f))
		if err != nil {
			return AdaptiveProbe{}, err
		}
		p := AdaptiveProbe{Freq: f, Degradation: 1 - mbps/baseline}
		if p.Degradation < 0 {
			p.Degradation = 0
		}
		res.Probes = append(res.Probes, p)
		if p.Degradation > res.Best.Degradation {
			res.Best = p
		}
		return p, nil
	}

	// Exploration: a third of the budget on stratified random samples.
	explore := a.Budget / 3
	if explore < 3 {
		explore = 3
	}
	span := float64(a.High - a.Low)
	for i := 0; i < explore && len(res.Probes) < a.Budget; i++ {
		stratum := span * float64(i) / float64(explore)
		f := a.Low + units.Frequency(stratum+rng.Float64()*span/float64(explore))
		if _, err := probe(f); err != nil {
			return res, err
		}
	}

	// Exploitation: halving-step hill climb from the best point.
	step := units.Frequency(span / float64(explore) / 2)
	for len(res.Probes) < a.Budget && step >= 10 {
		improved := false
		for _, cand := range []units.Frequency{res.Best.Freq - step, res.Best.Freq + step} {
			if cand < a.Low || cand > a.High || len(res.Probes) >= a.Budget {
				continue
			}
			before := res.Best.Degradation
			if _, err := probe(cand); err != nil {
				return res, err
			}
			if res.Best.Degradation > before {
				improved = true
			}
		}
		if !improved {
			step /= 2
		}
	}
	return res, nil
}
