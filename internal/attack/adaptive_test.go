package attack

import (
	"testing"

	"deepnote/internal/core"
)

func TestAdaptiveFindsDevastatingToneWithinBudget(t *testing.T) {
	for _, s := range []core.Scenario{core.Scenario2, core.Scenario3} {
		res, err := Adaptive{Scenario: s, Budget: 25}.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Probes) > 25 {
			t.Fatalf("%v: budget exceeded: %d probes", s, len(res.Probes))
		}
		if res.Best.Degradation < 0.9 {
			t.Fatalf("%v: best degradation %.2f at %v, want ≥0.9",
				s, res.Best.Degradation, res.Best.Freq)
		}
		if res.Best.Freq < 250 || res.Best.Freq > 2000 {
			t.Fatalf("%v: best tone %v outside the physical band", s, res.Best.Freq)
		}
	}
}

func TestAdaptiveCheaperThanFullSweep(t *testing.T) {
	res, err := Adaptive{Budget: 25}.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's full coarse sweep alone covers (16900-100)/200 ≈ 85
	// dwell points; the adaptive attacker should use far fewer.
	if len(res.Probes) >= 40 {
		t.Fatalf("adaptive used %d probes", len(res.Probes))
	}
}

func TestAdaptiveAgainstStandoffTargetFindsNothing(t *testing.T) {
	// At 25 cm only mild write degradation exists anywhere in the band;
	// the attacker's best find must reflect that honestly.
	res, err := Adaptive{Distance: 25 * 0.01, Budget: 20}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Degradation > 0.5 {
		t.Fatalf("standoff attacker claims %.2f degradation", res.Best.Degradation)
	}
}

func TestAdaptiveDeterministic(t *testing.T) {
	a, err := Adaptive{Budget: 15, Seed: 7}.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Adaptive{Budget: 15, Seed: 7}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Best != b.Best || len(a.Probes) != len(b.Probes) {
		t.Fatal("adaptive search not reproducible")
	}
}
