// Package attack implements the attacker's procedures from the paper's §3:
// the frequency sweep that locates a victim's vulnerable band, the range
// test that measures how far the attack reaches, and the prolonged attack
// that crashes software. Each procedure drives a full testbed rig — real
// workloads against the simulated drive — exactly as the paper drives FIO
// and db_bench against the physical one.
package attack

import (
	"context"
	"fmt"
	"time"

	"deepnote/internal/core"
	"deepnote/internal/fio"
	"deepnote/internal/metrics"
	"deepnote/internal/parallel"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// SweepPoint is one measured frequency during a sweep.
type SweepPoint struct {
	Freq units.Frequency
	// ThroughputMBps is the victim's measured throughput at this tone.
	ThroughputMBps float64
	// Baseline is the no-attack throughput for the same workload.
	Baseline float64
}

// Degradation returns the fractional throughput loss at this point
// (0 = unaffected, 1 = total loss).
func (p SweepPoint) Degradation() float64 {
	if p.Baseline <= 0 {
		return 0
	}
	d := 1 - p.ThroughputMBps/p.Baseline
	if d < 0 {
		d = 0
	}
	return d
}

// SweepResult is the outcome of a frequency sweep.
type SweepResult struct {
	Scenario core.Scenario
	Pattern  fio.Pattern
	Points   []SweepPoint
	// Vulnerable are the frequencies whose degradation exceeded the
	// sweep's threshold.
	Vulnerable []units.Frequency
	// Bands coalesces Vulnerable into contiguous intervals.
	Bands []sig.Band
}

// Sweeper runs frequency sweeps against a scenario.
type Sweeper struct {
	// Scenario and Distance fix the testbed geometry.
	Scenario core.Scenario
	Distance units.Distance
	// Plan is the sweep schedule (defaults to the paper's sweep).
	Plan sig.SweepPlan
	// DegradationThreshold marks a frequency vulnerable (default 0.5).
	DegradationThreshold float64
	// JobRuntime is the per-frequency measurement window (default 1 s
	// of virtual time).
	JobRuntime time.Duration
	// Seed makes runs reproducible.
	Seed int64
	// Workers bounds how many sweep points are measured concurrently;
	// ≤ 0 means one worker per CPU. Every point runs on its own rig with
	// the same seed as the serial path, so results are identical for any
	// worker count.
	Workers int
	// Metrics, when set, receives per-layer counters from every rig the
	// sweep builds (hdd, blockdev, fio) plus the sweep's own outcome
	// counters. Aggregation is commutative, so the snapshot is identical
	// at any worker count; a nil registry leaves the run uninstrumented.
	Metrics *metrics.Registry
}

func (s Sweeper) withDefaults() Sweeper {
	if s.Plan.CoarseStep == 0 {
		s.Plan = sig.PaperSweep()
	}
	if s.DegradationThreshold == 0 {
		s.DegradationThreshold = 0.5
	}
	if s.JobRuntime == 0 {
		s.JobRuntime = time.Second
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Distance == 0 {
		s.Distance = 1 * units.Centimeter
	}
	return s
}

// measure runs one fio job at the given tone on a fresh rig and returns
// MB/s. A fresh rig per point keeps points independent, like remounting
// the drive between paper trials.
func (s Sweeper) measure(pattern fio.Pattern, tone sig.Tone) (float64, error) {
	rig, err := core.NewRig(s.Scenario, s.Distance, s.Seed)
	if err != nil {
		return 0, err
	}
	if tone.Amplitude > 0 {
		rig.ApplyTone(tone)
	}
	res, err := fio.NewRunner(rig.Disk, rig.Clock).WithMetrics(s.Metrics).Run(fio.PaperJob(pattern, s.JobRuntime))
	if err != nil {
		return 0, err
	}
	if s.Metrics != nil {
		rig.Drive.PublishMetrics(s.Metrics)
		rig.Disk.PublishMetrics(s.Metrics)
		s.Metrics.Add("attack.sweep_measurements", 1)
	}
	return res.ThroughputMBps(), nil
}

// Run performs the two-phase sweep of §4.1: a coarse pass over the plan,
// then 50 Hz refinement around every vulnerable coarse frequency. Both
// passes fan their points out over the Workers pool; each point gets a
// fresh rig, so results match a serial run point for point.
func (s Sweeper) Run(pattern fio.Pattern) (SweepResult, error) {
	s = s.withDefaults()
	if err := s.Plan.Validate(); err != nil {
		return SweepResult{}, err
	}
	baseline, err := s.measure(pattern, sig.Tone{})
	if err != nil {
		return SweepResult{}, err
	}
	if baseline <= 0 {
		return SweepResult{}, fmt.Errorf("attack: baseline throughput is zero")
	}

	s.Metrics.MaxGauge("attack.baseline_mbps", baseline)

	res := SweepResult{Scenario: s.Scenario, Pattern: pattern}
	measurePass := func(freqs []units.Frequency) ([]SweepPoint, error) {
		return parallel.RunObserved(context.Background(), freqs, s.Workers, s.Metrics,
			func(_ context.Context, _ int, f units.Frequency) (SweepPoint, error) {
				mbps, err := s.measure(pattern, sig.NewTone(f))
				if err != nil {
					return SweepPoint{}, err
				}
				return SweepPoint{Freq: f, ThroughputMBps: mbps, Baseline: baseline}, nil
			})
	}

	coarsePoints, err := measurePass(s.Plan.CoarseFrequencies())
	if err != nil {
		return SweepResult{}, err
	}
	var coarseVulnerable []units.Frequency
	for _, p := range coarsePoints {
		res.Points = append(res.Points, p)
		if p.Degradation() >= s.DegradationThreshold {
			coarseVulnerable = append(coarseVulnerable, p.Freq)
			res.Vulnerable = append(res.Vulnerable, p.Freq)
		}
	}

	// Refinement pass: skip frequencies the coarse pass already measured
	// (keyed on the quantized grid, so ULP twins don't sneak back in).
	seen := make(map[int64]bool)
	for _, p := range res.Points {
		seen[sig.FrequencyKey(p.Freq)] = true
	}
	var fine []units.Frequency
	for _, f := range s.Plan.RefineAroundAll(coarseVulnerable) {
		if k := sig.FrequencyKey(f); !seen[k] {
			seen[k] = true
			fine = append(fine, f)
		}
	}
	finePoints, err := measurePass(fine)
	if err != nil {
		return SweepResult{}, err
	}
	for _, p := range finePoints {
		res.Points = append(res.Points, p)
		if p.Degradation() >= s.DegradationThreshold {
			res.Vulnerable = append(res.Vulnerable, p.Freq)
		}
	}
	res.Bands = sig.CoalesceBands(res.Vulnerable, s.Plan.CoarseStep+s.Plan.FineStep)
	s.Metrics.Add("attack.sweeps", 1)
	s.Metrics.Add("attack.sweep_points", int64(len(res.Points)))
	s.Metrics.Add("attack.vulnerable_points", int64(len(res.Vulnerable)))
	s.Metrics.Add("attack.bands", int64(len(res.Bands)))
	return res, nil
}

// RangeRow is one distance measurement of the paper's Table 1.
type RangeRow struct {
	// Distance is the speaker-to-container distance; zero means no
	// attack (the baseline row).
	Distance units.Distance
	// ReadMBps and WriteMBps are FIO sequential throughputs.
	ReadMBps, WriteMBps float64
	// ReadLatMs and WriteLatMs are mean latencies in ms; negative means
	// no response (the paper prints "-").
	ReadLatMs, WriteLatMs float64
	// ReadNoResponse / WriteNoResponse flag zero-completion runs.
	ReadNoResponse, WriteNoResponse bool
}

// RangeTest measures attack effect over distance at a fixed frequency
// (§4.2 uses 650 Hz in Scenario 2).
type RangeTest struct {
	Scenario   core.Scenario
	Freq       units.Frequency
	Distances  []units.Distance
	JobRuntime time.Duration
	Seed       int64
	// Metrics, when set, receives the per-rig layer counters and the
	// range test's own outcome counters (nil = uninstrumented).
	Metrics *metrics.Registry
}

func (r RangeTest) withDefaults() RangeTest {
	if r.Freq == 0 {
		r.Freq = 650 * units.Hz
	}
	if len(r.Distances) == 0 {
		r.Distances = []units.Distance{
			1 * units.Centimeter, 5 * units.Centimeter, 10 * units.Centimeter,
			15 * units.Centimeter, 20 * units.Centimeter, 25 * units.Centimeter,
		}
	}
	if r.JobRuntime == 0 {
		r.JobRuntime = 2 * time.Second
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Scenario == 0 {
		r.Scenario = core.Scenario2
	}
	return r
}

// Run produces the baseline row followed by one row per distance.
func (r RangeTest) Run() ([]RangeRow, error) {
	r = r.withDefaults()
	rows := make([]RangeRow, 0, len(r.Distances)+1)

	measure := func(d units.Distance) (RangeRow, error) {
		row := RangeRow{Distance: d}
		for _, pat := range []fio.Pattern{fio.SeqRead, fio.SeqWrite} {
			rig, err := core.NewRig(r.Scenario, 1*units.Centimeter, r.Seed)
			if err != nil {
				return row, err
			}
			if d > 0 {
				rig.MoveSpeaker(d, sig.NewTone(r.Freq))
			}
			res, err := fio.NewRunner(rig.Disk, rig.Clock).WithMetrics(r.Metrics).Run(fio.PaperJob(pat, r.JobRuntime))
			if err != nil {
				return row, err
			}
			if r.Metrics != nil {
				rig.Drive.PublishMetrics(r.Metrics)
				rig.Disk.PublishMetrics(r.Metrics)
			}
			lat := res.Latencies.Mean.Seconds() * 1000
			if res.NoResponse {
				lat = -1
			}
			if pat == fio.SeqRead {
				row.ReadMBps, row.ReadLatMs, row.ReadNoResponse = res.ThroughputMBps(), lat, res.NoResponse
			} else {
				row.WriteMBps, row.WriteLatMs, row.WriteNoResponse = res.ThroughputMBps(), lat, res.NoResponse
			}
		}
		return row, nil
	}

	baseline, err := measure(0)
	if err != nil {
		return nil, err
	}
	rows = append(rows, baseline)
	for _, d := range r.Distances {
		row, err := measure(d)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if row.ReadNoResponse || row.WriteNoResponse {
			r.Metrics.Add("attack.range_no_response_rows", 1)
		}
	}
	r.Metrics.Add("attack.range_tests", 1)
	r.Metrics.Add("attack.range_rows", int64(len(rows)))
	return rows, nil
}

// MaxEffectiveDistance returns the largest tested distance at which write
// throughput lost at least lossFrac of the baseline (the paper finds 25 cm
// with a measurable loss, "the maximum effective distance").
func MaxEffectiveDistance(rows []RangeRow, lossFrac float64) (units.Distance, bool) {
	if len(rows) == 0 || rows[0].Distance != 0 {
		return 0, false
	}
	base := rows[0].WriteMBps
	var best units.Distance
	found := false
	for _, row := range rows[1:] {
		if base > 0 && 1-row.WriteMBps/base >= lossFrac && row.Distance > best {
			best = row.Distance
			found = true
		}
	}
	return best, found
}
