package attack

import (
	"strings"
	"testing"
	"time"

	"deepnote/internal/core"
	"deepnote/internal/fio"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// fastPlan keeps sweep tests quick while preserving the two-phase shape.
func fastPlan() sig.SweepPlan {
	return sig.SweepPlan{
		Start:      100 * units.Hz,
		End:        4000 * units.Hz,
		CoarseStep: 400 * units.Hz,
		FineStep:   100 * units.Hz,
		DwellSec:   1,
	}
}

func TestSweepFindsVulnerableBand(t *testing.T) {
	s := Sweeper{
		Scenario:   core.Scenario2,
		Plan:       fastPlan(),
		JobRuntime: 300 * time.Millisecond,
	}
	res, err := s.Run(fio.SeqWrite)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bands) == 0 {
		t.Fatal("sweep found no vulnerable bands")
	}
	band := res.Bands[0]
	if !band.Contains(650 * units.Hz) {
		t.Fatalf("650 Hz not in detected band %v", band)
	}
	if band.Low < 200*units.Hz || band.Low > 500*units.Hz {
		t.Errorf("band low edge %v, want ≈300 Hz", band.Low)
	}
	// The refinement pass must have added fine-step points.
	fine := 0
	for _, p := range res.Points {
		if int64(p.Freq)%int64(s.Plan.CoarseStep) != int64(s.Plan.Start)%int64(s.Plan.CoarseStep) {
			fine++
		}
	}
	if fine == 0 {
		t.Error("no refinement points recorded")
	}
}

func TestSweepReadBandInsideWriteBand(t *testing.T) {
	s := Sweeper{Scenario: core.Scenario3, Plan: fastPlan(), JobRuntime: 300 * time.Millisecond}
	write, err := s.Run(fio.SeqWrite)
	if err != nil {
		t.Fatal(err)
	}
	read, err := s.Run(fio.SeqRead)
	if err != nil {
		t.Fatal(err)
	}
	if len(write.Bands) == 0 || len(read.Bands) == 0 {
		t.Fatal("bands missing")
	}
	// Reads tolerate more: the read band must not extend beyond the
	// write band on either side (allowing one fine step of slack).
	slack := s.Plan.FineStep
	if read.Bands[0].Low+slack < write.Bands[0].Low {
		t.Errorf("read band low %v extends below write band low %v", read.Bands[0].Low, write.Bands[0].Low)
	}
	last := len(read.Bands) - 1
	lastW := len(write.Bands) - 1
	if read.Bands[last].High > write.Bands[lastW].High+slack {
		t.Errorf("read band high %v extends above write band high %v", read.Bands[last].High, write.Bands[lastW].High)
	}
}

func TestSweepValidatesPlan(t *testing.T) {
	s := Sweeper{Scenario: core.Scenario2, Plan: sig.SweepPlan{Start: 10, End: 5, CoarseStep: 1, FineStep: 1, DwellSec: 1}}
	if _, err := s.Run(fio.SeqWrite); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

func TestSweepPointDegradation(t *testing.T) {
	p := SweepPoint{ThroughputMBps: 5, Baseline: 20}
	if got := p.Degradation(); got != 0.75 {
		t.Fatalf("degradation = %v", got)
	}
	if (SweepPoint{ThroughputMBps: 25, Baseline: 20}).Degradation() != 0 {
		t.Fatal("negative degradation should clamp to 0")
	}
	if (SweepPoint{Baseline: 0}).Degradation() != 0 {
		t.Fatal("zero baseline should yield 0")
	}
}

func TestRangeTestReproducesTable1Shape(t *testing.T) {
	rows, err := RangeTest{JobRuntime: time.Second}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 (baseline + 6 distances)", len(rows))
	}
	base := rows[0]
	if base.Distance != 0 || base.ReadMBps < 16 || base.WriteMBps < 20 {
		t.Fatalf("baseline row wrong: %+v", base)
	}
	at1 := rows[1]
	if !at1.ReadNoResponse || !at1.WriteNoResponse {
		t.Fatalf("1 cm should be no-response: %+v", at1)
	}
	if at1.ReadLatMs >= 0 || at1.WriteLatMs >= 0 {
		t.Fatal("no-response rows must carry negative latency markers")
	}
	at25 := rows[6]
	if at25.WriteMBps < base.WriteMBps*0.9 {
		t.Fatalf("25 cm write %v should be near baseline %v", at25.WriteMBps, base.WriteMBps)
	}
	// Write throughput is monotone non-decreasing with distance.
	for i := 2; i < len(rows); i++ {
		if rows[i].WriteMBps+0.5 < rows[i-1].WriteMBps {
			t.Fatalf("write throughput not recovering with distance: %+v then %+v", rows[i-1], rows[i])
		}
	}
}

func TestMaxEffectiveDistance(t *testing.T) {
	rows, err := RangeTest{JobRuntime: time.Second}.Run()
	if err != nil {
		t.Fatal(err)
	}
	d, found := MaxEffectiveDistance(rows, 0.05)
	if !found {
		t.Fatal("no effective distance found")
	}
	// The paper's maximum effective distance is 25 cm; our model keeps a
	// measurable loss out to at least 15 cm.
	if d < 15*units.Centimeter {
		t.Fatalf("max effective distance %v, want ≥ 15 cm", d)
	}
	if _, found := MaxEffectiveDistance(nil, 0.1); found {
		t.Fatal("empty rows should not find a distance")
	}
}

func TestProlongedAttackCrashesAllTargets(t *testing.T) {
	// Table 3: all three stacks crash with ≈80 s times; the error
	// signatures match the paper's observations.
	p := ProlongedAttack{}
	outcomes, err := p.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 3 {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	signatures := map[CrashTarget]string{
		TargetExt4:    "error -5",
		TargetUbuntu:  "kernel panic",
		TargetRocksDB: "sync_without_flush",
	}
	for _, o := range outcomes {
		if !o.Crashed {
			t.Errorf("%s did not crash", o.Target)
			continue
		}
		ttc := o.TimeToCrash.Seconds()
		if ttc < 70 || ttc > 95 {
			t.Errorf("%s time to crash = %.1fs, want ≈80s", o.Target, ttc)
		}
		if want := signatures[o.Target]; !strings.Contains(o.ErrorOutput, want) {
			t.Errorf("%s error %q missing signature %q", o.Target, o.ErrorOutput, want)
		}
	}
}

func TestProlongedAttackUnknownTarget(t *testing.T) {
	if _, err := (ProlongedAttack{}).Run("notepad"); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestNoCrashWithoutAttackEnergy(t *testing.T) {
	// At 25 cm and a safe frequency the stack must survive the window.
	p := ProlongedAttack{Freq: 8000 * units.Hz, Distance: 25 * units.Centimeter, Timeout: 30 * time.Second}
	o, err := p.Run(TargetExt4)
	if err != nil {
		t.Fatal(err)
	}
	if o.Crashed {
		t.Fatalf("ext4 crashed under harmless tone: %+v", o)
	}
}
