package attack

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"deepnote/internal/core"
	"deepnote/internal/fio"
	"deepnote/internal/metrics"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// testPlan is a small sweep that still finds the vulnerable band, keeping
// the determinism matrix below fast.
func testPlan() sig.SweepPlan {
	return sig.SweepPlan{
		Start: 300 * units.Hz, End: 1500 * units.Hz,
		CoarseStep: 300 * units.Hz, FineStep: 100 * units.Hz, DwellSec: 1,
	}
}

func runSweep(t *testing.T, workers int, reg *metrics.Registry) SweepResult {
	t.Helper()
	res, err := Sweeper{
		Scenario:   core.Scenario2,
		Plan:       testPlan(),
		JobRuntime: 300 * time.Millisecond,
		Workers:    workers,
		Metrics:    reg,
	}.Run(fio.SeqWrite)
	if err != nil {
		t.Fatalf("sweep (workers=%d): %v", workers, err)
	}
	return res
}

// TestSweepResultsIdenticalWithMetricsOnOff is the determinism acceptance
// gate: instrumentation must never perturb the simulation.
func TestSweepResultsIdenticalWithMetricsOnOff(t *testing.T) {
	bare := runSweep(t, 2, nil)
	observed := runSweep(t, 2, metrics.NewRegistry())
	if !reflect.DeepEqual(bare, observed) {
		t.Fatalf("results differ with metrics on:\nbare:     %+v\nobserved: %+v", bare, observed)
	}
}

// TestSweepSnapshotIdenticalAcrossWorkerCounts checks that the metric
// aggregation is commutative: the final snapshot is byte-identical no
// matter how the grid was scheduled.
func TestSweepSnapshotIdenticalAcrossWorkerCounts(t *testing.T) {
	var refResult SweepResult
	var refJSON []byte
	for i, workers := range []int{1, 2, 8} {
		reg := metrics.NewRegistry()
		res := runSweep(t, workers, reg)
		data, err := json.Marshal(reg.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			refResult, refJSON = res, data
			continue
		}
		if !reflect.DeepEqual(res, refResult) {
			t.Fatalf("sweep result differs at workers=%d", workers)
		}
		if string(data) != string(refJSON) {
			t.Fatalf("snapshot differs at workers=%d:\nref: %s\ngot: %s", workers, refJSON, data)
		}
	}
}

// TestSweepPopulatesFiveLayers is the coverage acceptance gate: a plain
// sweep must produce non-zero counters from at least five distinct layers.
func TestSweepPopulatesFiveLayers(t *testing.T) {
	reg := metrics.NewRegistry()
	runSweep(t, 0, reg)
	snap := reg.Snapshot()
	layers := snap.Layers()
	if len(layers) < 5 {
		t.Fatalf("want ≥5 layers with non-zero counters, got %v", layers)
	}
	for _, want := range []string{"hdd", "blockdev", "fio", "attack", "parallel"} {
		found := false
		for _, l := range layers {
			if l == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("layer %q missing from %v", want, layers)
		}
	}
	// The sweep's own accounting must agree with itself: one measurement
	// per point plus the baseline.
	points := snap.Counters["attack.sweep_points"]
	if got := snap.Counters["attack.sweep_measurements"]; got != points+1 {
		t.Fatalf("measurements = %d, want points+baseline = %d", got, points+1)
	}
	if snap.Counters["fio.runs"] != points+1 {
		t.Fatalf("fio.runs = %d, want %d", snap.Counters["fio.runs"], points+1)
	}
}

// TestProlongedAttackPublishesStackLayers checks the deep-stack run lights
// up the filesystem, database, and OS layers too.
func TestProlongedAttackPublishesStackLayers(t *testing.T) {
	reg := metrics.NewRegistry()
	p := ProlongedAttack{Timeout: 30 * time.Second, Metrics: reg}
	for _, target := range []CrashTarget{TargetExt4, TargetUbuntu, TargetRocksDB} {
		if _, err := p.Run(target); err != nil {
			t.Fatalf("%s: %v", target, err)
		}
	}
	snap := reg.Snapshot()
	for _, want := range []string{"hdd", "blockdev", "jfs", "kvdb", "osmodel", "attack"} {
		found := false
		for _, l := range snap.Layers() {
			if l == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("layer %q missing from %v", want, snap.Layers())
		}
	}
	if got := snap.Counters["attack.crash_runs"]; got != 3 {
		t.Fatalf("crash_runs = %d, want 3", got)
	}
}
