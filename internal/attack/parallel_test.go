package attack

import (
	"reflect"
	"testing"
	"time"

	"deepnote/internal/core"
	"deepnote/internal/fio"
	"deepnote/internal/sig"
)

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	// The §4.1 two-phase sweep fans both passes over the worker pool; the
	// result — points, order, vulnerable set, bands — must be identical
	// for any parallelism.
	run := func(workers int) SweepResult {
		res, err := Sweeper{
			Scenario:   core.Scenario2,
			Plan:       sig.SweepPlan{Start: 100, End: 2100, CoarseStep: 200, FineStep: 50, DwellSec: 1},
			JobRuntime: 100 * time.Millisecond,
			Workers:    workers,
		}.Run(fio.SeqWrite)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	if len(ref.Points) == 0 || len(ref.Vulnerable) == 0 {
		t.Fatalf("degenerate reference sweep: %d points, %d vulnerable",
			len(ref.Points), len(ref.Vulnerable))
	}
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: sweep diverges from serial run", workers)
		}
	}
}
