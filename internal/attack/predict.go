// Analytic sweep planning: before spending simulated (or real) attack
// time, the attacker can ask the closed-form oracle which frequencies
// should collapse the victim's throughput. A predicted sweep costs
// microseconds per frequency instead of a full fio run, so it serves both
// as reconnaissance planning and as a cross-check of measured sweeps.

package attack

import (
	"context"
	"fmt"

	"deepnote/internal/core"
	"deepnote/internal/fio"
	"deepnote/internal/hdd"
	"deepnote/internal/metrics"
	"deepnote/internal/oracle"
	"deepnote/internal/parallel"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// PredictedPoint is one analytically evaluated sweep frequency.
type PredictedPoint struct {
	Freq units.Frequency
	// ThroughputMBps is the oracle's steady-state throughput prediction.
	ThroughputMBps float64
	// Baseline is the oracle's quiet prediction for the same workload.
	Baseline float64
}

// Degradation returns the predicted fractional throughput loss.
func (p PredictedPoint) Degradation() float64 {
	if p.Baseline <= 0 {
		return 0
	}
	d := 1 - p.ThroughputMBps/p.Baseline
	if d < 0 {
		d = 0
	}
	return d
}

// PredictedSweep is the analytic counterpart of a SweepResult.
type PredictedSweep struct {
	Scenario   core.Scenario
	Pattern    fio.Pattern
	Points     []PredictedPoint
	Vulnerable []units.Frequency
	Bands      []sig.Band
}

// Predictor evaluates sweep plans analytically against a scenario.
type Predictor struct {
	// Scenario and Distance fix the testbed geometry, as for Sweeper.
	Scenario core.Scenario
	Distance units.Distance
	// Plan is the sweep schedule (defaults to the paper's sweep; only the
	// coarse pass is evaluated — analytic points are cheap enough to skip
	// the two-phase refinement).
	Plan sig.SweepPlan
	// DegradationThreshold marks a frequency vulnerable (default 0.5).
	DegradationThreshold float64
	// BlockSize is the workload's request size (default the paper job's
	// 4 KiB).
	BlockSize int64
	// Workers bounds concurrent evaluations; ≤ 0 means one per CPU.
	Workers int
	// Metrics, when set, receives "attack.predicted_*" outcome counters.
	Metrics *metrics.Registry
}

func (p Predictor) withDefaults() Predictor {
	if p.Plan.CoarseStep == 0 {
		p.Plan = sig.PaperSweep()
	}
	if p.DegradationThreshold == 0 {
		p.DegradationThreshold = 0.5
	}
	if p.Distance == 0 {
		p.Distance = 1 * units.Centimeter
	}
	if p.BlockSize == 0 {
		p.BlockSize = 4096
	}
	return p
}

// Run evaluates the plan's coarse frequencies through the acoustic chain
// and the oracle and coalesces the predicted vulnerable band.
func (p Predictor) Run(pattern fio.Pattern) (PredictedSweep, error) {
	p = p.withDefaults()
	tb, err := core.NewTestbed(p.Scenario, p.Distance)
	if err != nil {
		return PredictedSweep{}, err
	}
	op := hdd.OpRead
	if pattern == fio.SeqWrite || pattern == fio.RandWrite {
		op = hdd.OpWrite
	}
	quiet, err := oracle.Predict(oracle.Input{
		Model: tb.DriveModel, Vib: hdd.Quiet(), Op: op, BlockSize: p.BlockSize,
	})
	if err != nil {
		return PredictedSweep{}, err
	}

	freqs := p.Plan.CoarseFrequencies()
	points, err := parallel.RunObserved(context.Background(), freqs, p.Workers, p.Metrics,
		func(_ context.Context, _ int, f units.Frequency) (PredictedPoint, error) {
			vib := tb.VibrationFor(sig.NewTone(f))
			pred, err := oracle.Predict(oracle.Input{
				Model: tb.DriveModel, Vib: vib, Op: op, BlockSize: p.BlockSize,
			})
			if err != nil {
				return PredictedPoint{}, fmt.Errorf("attack: predict %v: %w", f, err)
			}
			return PredictedPoint{Freq: f, ThroughputMBps: pred.ThroughputMBps, Baseline: quiet.ThroughputMBps}, nil
		})
	if err != nil {
		return PredictedSweep{}, err
	}

	res := PredictedSweep{Scenario: p.Scenario, Pattern: pattern, Points: points}
	for _, pt := range points {
		if pt.Degradation() >= p.DegradationThreshold {
			res.Vulnerable = append(res.Vulnerable, pt.Freq)
		}
	}
	res.Bands = sig.CoalesceBands(res.Vulnerable, p.Plan.CoarseStep)
	p.Metrics.Add("attack.predicted_points", int64(len(points)))
	p.Metrics.Add("attack.predicted_vulnerable", int64(len(res.Vulnerable)))
	return res, nil
}
