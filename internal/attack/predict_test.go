package attack

import (
	"testing"
	"time"

	"deepnote/internal/core"
	"deepnote/internal/fio"
	"deepnote/internal/metrics"
	"deepnote/internal/units"
)

// TestPredictedSweepFindsPaperBand checks the analytic sweep against the
// paper's headline result: a write workload in Scenario 2 collapses around
// 650 Hz.
func TestPredictedSweepFindsPaperBand(t *testing.T) {
	p := Predictor{Scenario: core.Scenario2, Plan: fastPlan()}
	res, err := p.Run(fio.SeqWrite)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bands) == 0 {
		t.Fatal("analytic sweep predicted no vulnerable bands")
	}
	if !res.Bands[0].Contains(650 * units.Hz) {
		t.Fatalf("650 Hz not in predicted band %v", res.Bands[0])
	}
}

// TestPredictedSweepAgreesWithMeasured cross-checks the two sweep engines:
// the analytic and the simulated coarse pass must agree on which
// frequencies are vulnerable up to band-edge slack.
func TestPredictedSweepAgreesWithMeasured(t *testing.T) {
	plan := fastPlan()
	pred, err := Predictor{Scenario: core.Scenario2, Plan: plan}.Run(fio.SeqWrite)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := Sweeper{Scenario: core.Scenario2, Plan: plan, JobRuntime: 300 * time.Millisecond}.Run(fio.SeqWrite)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred.Bands) == 0 || len(meas.Bands) == 0 {
		t.Fatalf("missing bands: predicted %v, measured %v", pred.Bands, meas.Bands)
	}
	slack := 2 * plan.CoarseStep
	pb, mb := pred.Bands[0], meas.Bands[0]
	if pb.Low > mb.Low+slack || pb.Low+slack < mb.Low {
		t.Errorf("band low edges disagree: predicted %v, measured %v", pb.Low, mb.Low)
	}
	if pb.High > mb.High+slack || pb.High+slack < mb.High {
		t.Errorf("band high edges disagree: predicted %v, measured %v", pb.High, mb.High)
	}
}

// TestPredictorPublishesMetrics checks the observability counters.
func TestPredictorPublishesMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	p := Predictor{Scenario: core.Scenario2, Plan: fastPlan(), Metrics: reg}
	if _, err := p.Run(fio.SeqRead); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["attack.predicted_points"] == 0 {
		t.Fatalf("predictor published no point counters: %v", snap.Counters)
	}
}
