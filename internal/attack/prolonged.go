package attack

import (
	"fmt"
	"time"

	"deepnote/internal/core"
	"deepnote/internal/jfs"
	"deepnote/internal/kvdb"
	"deepnote/internal/metrics"
	"deepnote/internal/osmodel"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// CrashTarget selects the software stack attacked in §4.4.
type CrashTarget string

// The paper's three crash victims.
const (
	TargetExt4    CrashTarget = "ext4"
	TargetUbuntu  CrashTarget = "ubuntu"
	TargetRocksDB CrashTarget = "rocksdb"
)

// CrashOutcome is one row of Table 3.
type CrashOutcome struct {
	Target CrashTarget
	// Crashed reports whether the stack died within the timeout.
	Crashed bool
	// TimeToCrash is virtual time from attack start to crash.
	TimeToCrash time.Duration
	// ErrorOutput is the crash signature the stack reported.
	ErrorOutput string
}

// ProlongedAttack holds a tone on a target stack until it crashes,
// using the paper's best parameters by default (650 Hz, 140 dB, 1 cm,
// Scenario 2).
type ProlongedAttack struct {
	Scenario core.Scenario
	Freq     units.Frequency
	Distance units.Distance
	// Timeout bounds the experiment in virtual time (default 150 s).
	Timeout time.Duration
	Seed    int64
	// Metrics, when set, receives the layer counters of every stack the
	// attack builds (hdd, blockdev, jfs, kvdb, osmodel) plus crash-outcome
	// counters under "attack." (nil = uninstrumented).
	Metrics *metrics.Registry
}

func (p ProlongedAttack) withDefaults() ProlongedAttack {
	if p.Scenario == 0 {
		p.Scenario = core.Scenario2
	}
	if p.Freq == 0 {
		p.Freq = 650 * units.Hz
	}
	if p.Distance == 0 {
		p.Distance = 1 * units.Centimeter
	}
	if p.Timeout == 0 {
		p.Timeout = 150 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Run executes the prolonged attack against the chosen target.
func (p ProlongedAttack) Run(target CrashTarget) (CrashOutcome, error) {
	p = p.withDefaults()
	switch target {
	case TargetExt4:
		return p.runExt4()
	case TargetUbuntu:
		return p.runUbuntu()
	case TargetRocksDB:
		return p.runRocksDB()
	default:
		return CrashOutcome{}, fmt.Errorf("attack: unknown crash target %q", target)
	}
}

// publishOutcome records a finished run's layer counters and crash
// outcome (no-op on a nil registry).
func (p ProlongedAttack) publishOutcome(rig *core.Rig, out CrashOutcome) {
	if p.Metrics == nil {
		return
	}
	rig.Drive.PublishMetrics(p.Metrics)
	rig.Disk.PublishMetrics(p.Metrics)
	p.Metrics.Add("attack.crash_runs", 1)
	if out.Crashed {
		p.Metrics.Add("attack.crashes", 1)
		p.Metrics.MaxGauge("attack.time_to_crash_s_max", out.TimeToCrash.Seconds())
	}
}

// RunAll executes all three targets, like the paper's Table 3.
func (p ProlongedAttack) RunAll() ([]CrashOutcome, error) {
	out := make([]CrashOutcome, 0, 3)
	for _, t := range []CrashTarget{TargetExt4, TargetUbuntu, TargetRocksDB} {
		o, err := p.Run(t)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// setupFS builds a rig with a mounted filesystem, still quiet.
func (p ProlongedAttack) setupFS() (*core.Rig, *jfs.FS, error) {
	rig, err := core.NewRig(p.Scenario, p.Distance, p.Seed)
	if err != nil {
		return nil, nil, err
	}
	if err := jfs.Mkfs(rig.Disk, jfs.MkfsOptions{Blocks: 1 << 17}); err != nil {
		return nil, nil, err
	}
	fs, err := jfs.Mount(rig.Disk, rig.Clock, jfs.Config{})
	if err != nil {
		return nil, nil, err
	}
	return rig, fs, nil
}

func (p ProlongedAttack) runExt4() (CrashOutcome, error) {
	rig, fs, err := p.setupFS()
	if err != nil {
		return CrashOutcome{}, err
	}
	f, err := fs.Create("workload.dat")
	if err != nil {
		return CrashOutcome{}, err
	}
	// Seed dirty metadata, then start the attack.
	if _, err := f.WriteAt(make([]byte, 4096), 0); err != nil {
		return CrashOutcome{}, err
	}
	start := rig.Clock.Now()
	rig.ApplyTone(sig.NewTone(p.Freq))

	out := CrashOutcome{Target: TargetExt4}
	var off int64 = 4096
	for rig.Clock.Now().Sub(start) < p.Timeout {
		// A continuously writing application, like the paper's workload.
		_, _ = f.WriteAt(make([]byte, 4096), off%(1<<20))
		off += 4096
		rig.Clock.Advance(100 * time.Millisecond)
		fs.Tick()
		if aborted, abortErr := fs.Aborted(); aborted {
			out.Crashed = true
			out.TimeToCrash = fs.CrashedAt().Sub(start)
			out.ErrorOutput = abortErr.Error()
			break
		}
	}
	fs.PublishMetrics(p.Metrics)
	p.publishOutcome(rig, out)
	return out, nil
}

func (p ProlongedAttack) runUbuntu() (CrashOutcome, error) {
	rig, fs, err := p.setupFS()
	if err != nil {
		return CrashOutcome{}, err
	}
	srv, err := osmodel.Boot(fs, rig.Clock, osmodel.Config{Seed: p.Seed})
	if err != nil {
		return CrashOutcome{}, err
	}
	start := rig.Clock.Now()
	rig.ApplyTone(sig.NewTone(p.Freq))

	out := CrashOutcome{Target: TargetUbuntu}
	for rig.Clock.Now().Sub(start) < p.Timeout {
		rig.Clock.Advance(250 * time.Millisecond)
		srv.Step()
		if crashed, crashErr := srv.Crashed(); crashed {
			out.Crashed = true
			out.TimeToCrash = srv.CrashedAt().Sub(start)
			out.ErrorOutput = crashErr.Error()
			break
		}
	}
	fs.PublishMetrics(p.Metrics)
	srv.PublishMetrics(p.Metrics)
	p.publishOutcome(rig, out)
	return out, nil
}

func (p ProlongedAttack) runRocksDB() (CrashOutcome, error) {
	rig, fs, err := p.setupFS()
	if err != nil {
		return CrashOutcome{}, err
	}
	db, err := kvdb.Open(fs, rig.Clock, kvdb.Options{Seed: p.Seed})
	if err != nil {
		return CrashOutcome{}, err
	}
	bench := kvdb.NewBench(db, rig.Clock)
	// Warm the store, then attack under a readwhilewriting load.
	if _, err := bench.Run(kvdb.BenchSpec{Workload: kvdb.WorkloadFillRandom, Num: 2000}); err != nil {
		return CrashOutcome{}, err
	}
	start := rig.Clock.Now()
	rig.ApplyTone(sig.NewTone(p.Freq))

	res, err := bench.Run(kvdb.BenchSpec{Workload: kvdb.WorkloadReadWhileWriting, Runtime: p.Timeout})
	if err != nil {
		return CrashOutcome{}, err
	}
	out := CrashOutcome{Target: TargetRocksDB}
	if res.Crashed {
		out.Crashed = true
		out.TimeToCrash = db.CrashedAt().Sub(start)
		out.ErrorOutput = res.CrashErr.Error()
	}
	fs.PublishMetrics(p.Metrics)
	db.PublishMetrics(p.Metrics)
	p.publishOutcome(rig, out)
	return out, nil
}
