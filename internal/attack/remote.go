package attack

import (
	"errors"
	"sort"
	"time"

	"deepnote/internal/core"
	"deepnote/internal/netstore"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// RemoteProbe is one frequency's externally observable measurement: the
// attacker sees request latencies and failure counts, nothing else.
type RemoteProbe struct {
	Freq units.Frequency
	// MedianLatency is the median PUT round trip observed.
	MedianLatency time.Duration
	// Timeouts and Errors count failed probes.
	Timeouts, Errors int
	// Probes is the number of requests issued.
	Probes int
}

// Suspicious reports whether the probe indicates a vulnerable frequency
// given the healthy-baseline latency.
func (p RemoteProbe) Suspicious(baseline time.Duration) bool {
	if p.Timeouts+p.Errors > 0 {
		return true
	}
	return p.MedianLatency > 3*baseline
}

// RemoteSweepResult is the attacker's inferred picture of the victim.
type RemoteSweepResult struct {
	Baseline time.Duration
	Probes   []RemoteProbe
	// InferredVulnerable are frequencies flagged from latency alone.
	InferredVulnerable []units.Frequency
	// InferredBands coalesces them.
	InferredBands []sig.Band
}

// RemoteSweeper performs the paper's §3 reconnaissance: sweep tones while
// watching only the latencies of an online application backed by the
// target. No drive-internal signals are consulted.
type RemoteSweeper struct {
	// Scenario and Distance fix the victim geometry.
	Scenario core.Scenario
	Distance units.Distance
	// Plan is the frequency schedule (defaults to a coarse paper sweep).
	Plan sig.SweepPlan
	// ProbesPerFreq is the number of PUT probes per tone (default 6).
	ProbesPerFreq int
	// Seed fixes the run.
	Seed int64
}

func (r RemoteSweeper) withDefaults() RemoteSweeper {
	if r.Scenario == 0 {
		r.Scenario = core.Scenario2
	}
	if r.Distance == 0 {
		r.Distance = 1 * units.Centimeter
	}
	if r.Plan.CoarseStep == 0 {
		r.Plan = sig.PaperSweep()
	}
	if r.ProbesPerFreq <= 0 {
		r.ProbesPerFreq = 6
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	return r
}

// Run executes the remote sweep. The victim service is created fresh with
// a preloaded object store; the attacker then walks the coarse plan,
// issuing PUT probes at every tone and timing the answers.
func (r RemoteSweeper) Run() (RemoteSweepResult, error) {
	r = r.withDefaults()
	if err := r.Plan.Validate(); err != nil {
		return RemoteSweepResult{}, err
	}
	rig, err := core.NewRig(r.Scenario, r.Distance, r.Seed)
	if err != nil {
		return RemoteSweepResult{}, err
	}
	srv := netstore.NewServer(rig.Disk, rig.Clock, netstore.Config{
		Seed: r.Seed,
		// A short server budget keeps each dead-frequency probe cheap.
		Timeout: 2 * time.Second,
	})
	if err := srv.Preload(); err != nil {
		return RemoteSweepResult{}, err
	}

	probe := func(f units.Frequency, object int) RemoteProbe {
		p := RemoteProbe{Freq: f, Probes: r.ProbesPerFreq}
		var lats []time.Duration
		for i := 0; i < r.ProbesPerFreq; i++ {
			resp := srv.Handle(netstore.Put, (object+i)%srv.Config().Objects)
			lats = append(lats, resp.Latency)
			switch {
			case errors.Is(resp.Err, netstore.ErrTimeout):
				p.Timeouts++
			case resp.Err != nil:
				p.Errors++
			}
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p.MedianLatency = lats[len(lats)/2]
		return p
	}

	// Healthy baseline with the speaker silent.
	rig.Silence()
	base := probe(0, 0)
	res := RemoteSweepResult{Baseline: base.MedianLatency}

	obj := 100
	probeAt := func(f units.Frequency) RemoteProbe {
		rig.ApplyTone(sig.NewTone(f))
		p := probe(f, obj)
		obj += r.ProbesPerFreq
		res.Probes = append(res.Probes, p)
		// Let the victim drain between tones, like a careful attacker
		// pausing to avoid conflating adjacent probes.
		rig.Silence()
		rig.Clock.Advance(200 * time.Millisecond)
		return p
	}

	var coarseVulnerable []units.Frequency
	for _, f := range r.Plan.CoarseFrequencies() {
		if probeAt(f).Suspicious(res.Baseline) {
			coarseVulnerable = append(coarseVulnerable, f)
			res.InferredVulnerable = append(res.InferredVulnerable, f)
		}
	}
	// Refinement pass around vulnerable coarse hits, mirroring the
	// paper's 50 Hz narrowing — still from latency observations only.
	seen := make(map[units.Frequency]bool)
	for _, p := range res.Probes {
		seen[p.Freq] = true
	}
	for _, f := range r.Plan.RefineAroundAll(coarseVulnerable) {
		if seen[f] {
			continue
		}
		seen[f] = true
		if probeAt(f).Suspicious(res.Baseline) {
			res.InferredVulnerable = append(res.InferredVulnerable, f)
		}
	}
	res.InferredBands = sig.CoalesceBands(res.InferredVulnerable, r.Plan.CoarseStep+r.Plan.FineStep)
	return res, nil
}
