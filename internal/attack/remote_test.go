package attack

import (
	"testing"
	"time"

	"deepnote/internal/core"
	"deepnote/internal/fio"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

func TestRemoteSweepInfersVulnerableBand(t *testing.T) {
	// The attacker, watching only request latencies and failures, must
	// find roughly the same band a drive-side sweep finds.
	r := RemoteSweeper{
		Scenario: core.Scenario2,
		Plan: sig.SweepPlan{
			Start: 100, End: 4000, CoarseStep: 300, FineStep: 100, DwellSec: 1,
		},
		ProbesPerFreq: 4,
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline <= 0 {
		t.Fatal("no baseline measured")
	}
	if len(res.InferredBands) == 0 {
		t.Fatal("remote sweep inferred nothing")
	}
	band := res.InferredBands[0]
	if !band.Contains(700) {
		t.Fatalf("inferred band %v misses the core of the true band", band)
	}
	if band.Low < 100 || band.Low > 700 {
		t.Errorf("inferred low edge %v, want ≈300-400 Hz", band.Low)
	}
	if band.High < 1000 || band.High > 2500 {
		t.Errorf("inferred high edge %v, want ≈1.3-1.9 kHz", band.High)
	}
}

func TestRemoteSweepQuietFrequenciesLookNormal(t *testing.T) {
	r := RemoteSweeper{
		Scenario: core.Scenario3,
		Plan: sig.SweepPlan{
			Start: 3000, End: 8000, CoarseStep: 1000, FineStep: 500, DwellSec: 1,
		},
		ProbesPerFreq: 4,
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InferredVulnerable) != 0 {
		t.Fatalf("frequencies above the band flagged: %v", res.InferredVulnerable)
	}
	for _, p := range res.Probes {
		if p.Timeouts > 0 {
			t.Fatalf("timeouts at %v outside the band", p.Freq)
		}
	}
}

func TestRemoteProbeSuspicious(t *testing.T) {
	base := 3 * time.Millisecond
	if (RemoteProbe{MedianLatency: 4 * time.Millisecond}).Suspicious(base) {
		t.Fatal("mild latency flagged")
	}
	if !(RemoteProbe{MedianLatency: 20 * time.Millisecond}).Suspicious(base) {
		t.Fatal("10x latency not flagged")
	}
	if !(RemoteProbe{MedianLatency: base, Timeouts: 1}).Suspicious(base) {
		t.Fatal("timeout not flagged")
	}
}

func TestRemoteSweepValidatesPlan(t *testing.T) {
	r := RemoteSweeper{Plan: sig.SweepPlan{Start: 10, End: 5, CoarseStep: 1, FineStep: 1, DwellSec: 1}}
	if _, err := r.Run(); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

func TestRemoteSweepAgreesWithDirectSweep(t *testing.T) {
	plan := sig.SweepPlan{Start: 200, End: 3000, CoarseStep: 400, FineStep: 200, DwellSec: 1}
	remote, err := RemoteSweeper{Scenario: core.Scenario2, Plan: plan, ProbesPerFreq: 4}.Run()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Sweeper{Scenario: core.Scenario2, Plan: plan, JobRuntime: 300 * time.Millisecond}.Run(fio.SeqWrite)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.InferredBands) == 0 || len(direct.Bands) == 0 {
		t.Fatal("bands missing")
	}
	rb, db := remote.InferredBands[0], direct.Bands[0]
	if !rb.Overlaps(db) {
		t.Fatalf("remote band %v does not overlap direct band %v", rb, db)
	}
	// The remote estimate should not be wildly wider (more than one
	// coarse step per edge).
	slack := units.Frequency(plan.CoarseStep) * 2
	if rb.Low+slack < db.Low || rb.High > db.High+slack {
		t.Fatalf("remote band %v strays too far from direct band %v", rb, db)
	}
}
