// Package blockdev provides the block-device abstraction between the
// mechanical drive model and the software substrates (filesystem, KV store,
// workload generators). It stores real bytes (so filesystems and databases
// round-trip their data), charges virtual time through the drive model, and
// surfaces drive faults as EIO-style errors exactly where Linux would:
// buffer I/O errors on the failed request.
package blockdev

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"deepnote/internal/hdd"
	"deepnote/internal/metrics"
)

// Errors surfaced by the device.
var (
	// ErrIO is the EIO analogue: the device could not complete the
	// request. The paper's crash signatures (JBD error -5, buffer I/O
	// errors) stem from this error reaching the software stack.
	ErrIO = errors.New("blockdev: I/O error (errno -5)")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("blockdev: device closed")
)

// EIOErrno is the errno value Linux reports for EIO; Ext4's JBD layer logs
// journal aborts with this code, which the paper observes ("error code -5").
const EIOErrno = -5

// Device is the interface the software substrates program against.
type Device interface {
	// ReadAt reads len(p) bytes at off, charging virtual time.
	ReadAt(p []byte, off int64) (int, error)
	// WriteAt writes len(p) bytes at off, charging virtual time.
	WriteAt(p []byte, off int64) (int, error)
	// Flush forces device caches to media.
	Flush() error
	// Size returns the device capacity in bytes.
	Size() int64
}

// Stats aggregates request-level accounting.
type Stats struct {
	ReadOps, WriteOps     int64
	ReadBytes, WriteBytes int64
	ReadErrs, WriteErrs   int64
	FlushOps, FlushErrs   int64
	// SilentCorruptions counts adjacent-track squeezes realized in the
	// backing store (integrity attack surface; zero unless enabled).
	SilentCorruptions int64
	// TotalReadLatency and TotalWriteLatency sum per-request service
	// times, including retries inside the drive.
	TotalReadLatency, TotalWriteLatency time.Duration
}

// AvgReadLatency returns the mean read service time, or 0 with no reads.
func (s Stats) AvgReadLatency() time.Duration {
	if s.ReadOps == 0 {
		return 0
	}
	return s.TotalReadLatency / time.Duration(s.ReadOps)
}

// AvgWriteLatency returns the mean write service time, or 0 with no writes.
func (s Stats) AvgWriteLatency() time.Duration {
	if s.WriteOps == 0 {
		return 0
	}
	return s.TotalWriteLatency / time.Duration(s.WriteOps)
}

// Disk is a Device backed by the mechanical drive model plus an in-memory
// byte store. Byte storage is sparse: only written extents allocate.
type Disk struct {
	mu     sync.Mutex
	drive  *hdd.Drive
	data   map[int64][]byte // chunk base offset -> chunk
	closed bool
	stats  Stats
	// MaxRequest bounds a single media access; larger requests split.
	maxRequest int64
}

const chunkSize = 1 << 16 // 64 KiB backing-store chunks

// NewDisk wraps a drive in a Device.
func NewDisk(drive *hdd.Drive) *Disk {
	return &Disk{
		drive:      drive,
		data:       make(map[int64][]byte),
		maxRequest: 1 << 20,
	}
}

// Drive exposes the underlying mechanical model (for attack injection).
func (d *Disk) Drive() *hdd.Drive { return d.drive }

// Size returns the device capacity.
func (d *Disk) Size() int64 { return d.drive.Capacity() }

// Stats returns a copy of the request counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// PublishMetrics pushes the device's counters into a registry under the
// "blockdev." prefix (no-op on a nil registry).
func (d *Disk) PublishMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s := d.Stats()
	reg.Add("blockdev.read_ops", s.ReadOps)
	reg.Add("blockdev.write_ops", s.WriteOps)
	reg.Add("blockdev.read_bytes", s.ReadBytes)
	reg.Add("blockdev.write_bytes", s.WriteBytes)
	reg.Add("blockdev.read_errors", s.ReadErrs)
	reg.Add("blockdev.write_errors", s.WriteErrs)
	reg.Add("blockdev.flush_ops", s.FlushOps)
	reg.Add("blockdev.flush_errors", s.FlushErrs)
	reg.Add("blockdev.silent_corruptions", s.SilentCorruptions)
	reg.Add("blockdev.read_latency_ns_total", int64(s.TotalReadLatency))
	reg.Add("blockdev.write_latency_ns_total", int64(s.TotalWriteLatency))
}

// Close marks the device unusable.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}

// ReadAt implements Device.
func (d *Disk) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	if err := d.checkRange(off, int64(len(p))); err != nil {
		return 0, err
	}
	n := 0
	for n < len(p) {
		chunk := min64(int64(len(p)-n), d.maxRequest)
		res := d.drive.Access(hdd.OpRead, off+int64(n), chunk)
		d.stats.TotalReadLatency += res.Latency
		if res.Err != nil {
			d.stats.ReadErrs++
			return n, fmt.Errorf("%w: read %d@%d: %v", ErrIO, chunk, off+int64(n), res.Err)
		}
		d.copyOut(p[n:n+int(chunk)], off+int64(n))
		d.stats.ReadOps++
		d.stats.ReadBytes += chunk
		n += int(chunk)
	}
	return n, nil
}

// WriteAt implements Device.
func (d *Disk) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	if err := d.checkRange(off, int64(len(p))); err != nil {
		return 0, err
	}
	n := 0
	for n < len(p) {
		chunk := min64(int64(len(p)-n), d.maxRequest)
		res := d.drive.Access(hdd.OpWrite, off+int64(n), chunk)
		d.stats.TotalWriteLatency += res.Latency
		d.applyCorruptions(res.AdjacentCorruptions)
		if res.Err != nil {
			d.stats.WriteErrs++
			return n, fmt.Errorf("%w: write %d@%d: %v", ErrIO, chunk, off+int64(n), res.Err)
		}
		d.copyIn(p[n:n+int(chunk)], off+int64(n))
		d.stats.WriteOps++
		d.stats.WriteBytes += chunk
		n += int(chunk)
	}
	return n, nil
}

// applyCorruptions realizes the drive's silent adjacent-track squeezes in
// the backing store: the victim region's bytes are overwritten with a
// corruption pattern. Nothing is reported to the caller — that is the
// point of a silent integrity failure.
func (d *Disk) applyCorruptions(offsets []int64) {
	for _, off := range offsets {
		if off < 0 || off+4096 > d.Size() {
			continue
		}
		garbage := make([]byte, 4096)
		for i := range garbage {
			garbage[i] = byte(0xDE ^ (i * 7) ^ int(off>>12))
		}
		d.copyIn(garbage, off)
		d.stats.SilentCorruptions++
	}
}

// Flush implements Device. The disk's write cache drains with one short
// media access at the last written position; under attack this fails like
// any other write.
func (d *Disk) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	d.stats.FlushOps++
	res := d.drive.Access(hdd.OpWrite, 0, 512)
	d.stats.TotalWriteLatency += res.Latency
	if res.Err != nil {
		d.stats.FlushErrs++
		return fmt.Errorf("%w: flush: %v", ErrIO, res.Err)
	}
	return nil
}

func (d *Disk) checkRange(off, n int64) error {
	if off < 0 || n < 0 || off+n > d.Size() {
		return fmt.Errorf("blockdev: request [%d, %d) outside device of %d bytes", off, off+n, d.Size())
	}
	return nil
}

func (d *Disk) copyOut(p []byte, off int64) {
	for len(p) > 0 {
		base := off - off%chunkSize
		in := off - base
		avail := chunkSize - in
		n := min64(int64(len(p)), avail)
		if c, ok := d.data[base]; ok {
			copy(p[:n], c[in:in+n])
		} else {
			zero(p[:n])
		}
		p = p[n:]
		off += n
	}
}

func (d *Disk) copyIn(p []byte, off int64) {
	for len(p) > 0 {
		base := off - off%chunkSize
		in := off - base
		avail := chunkSize - in
		n := min64(int64(len(p)), avail)
		c, ok := d.data[base]
		if !ok {
			c = make([]byte, chunkSize)
			d.data[base] = c
		}
		copy(c[in:in+n], p[:n])
		p = p[n:]
		off += n
	}
}

func zero(p []byte) {
	for i := range p {
		p[i] = 0
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
