package blockdev

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"deepnote/internal/hdd"
	"deepnote/internal/simclock"
)

func newDisk(t *testing.T) (*Disk, *simclock.Virtual) {
	t.Helper()
	clock := simclock.NewVirtual()
	drive, err := hdd.NewDrive(hdd.Barracuda500(), clock, 3)
	if err != nil {
		t.Fatal(err)
	}
	return NewDisk(drive), clock
}

func TestReadBackWritten(t *testing.T) {
	d, _ := newDisk(t)
	data := []byte("deep note underwater acoustic attack")
	if _, err := d.WriteAt(data, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %q != %q", got, data)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	d, _ := newDisk(t)
	got := make([]byte, 64)
	for i := range got {
		got[i] = 0xFF
	}
	if _, err := d.ReadAt(got, 1e6); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %x, want 0", i, b)
		}
	}
}

func TestWriteSpanningChunks(t *testing.T) {
	d, _ := newDisk(t)
	data := bytes.Repeat([]byte{0xAB}, 200000) // spans several 64 KiB chunks
	off := int64(chunkSize - 777)
	if _, err := d.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-chunk round trip mismatch")
	}
}

func TestRoundTripProperty(t *testing.T) {
	d, _ := newDisk(t)
	prop := func(data []byte, offRaw uint32) bool {
		if len(data) == 0 {
			return true
		}
		off := int64(offRaw)
		if _, err := d.WriteAt(data, off); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if _, err := d.ReadAt(got, off); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeChecks(t *testing.T) {
	d, _ := newDisk(t)
	buf := make([]byte, 16)
	if _, err := d.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := d.WriteAt(buf, d.Size()-8); err == nil {
		t.Fatal("overflow write accepted")
	}
}

func TestClose(t *testing.T) {
	d, _ := newDisk(t)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadAt(make([]byte, 8), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if _, err := d.WriteAt(make([]byte, 8), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	if err := d.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("flush after close: %v", err)
	}
}

func TestIOErrorUnderHeavyVibration(t *testing.T) {
	d, _ := newDisk(t)
	d.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
	_, err := d.WriteAt(make([]byte, 4096), 0)
	if !errors.Is(err, ErrIO) {
		t.Fatalf("expected ErrIO, got %v", err)
	}
	if d.Stats().WriteErrs != 1 {
		t.Fatalf("write errors = %d, want 1", d.Stats().WriteErrs)
	}
}

func TestFlushUnderAttackFails(t *testing.T) {
	d, _ := newDisk(t)
	d.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
	if err := d.Flush(); !errors.Is(err, ErrIO) {
		t.Fatalf("expected ErrIO from flush, got %v", err)
	}
	s := d.Stats()
	if s.FlushOps != 1 || s.FlushErrs != 1 {
		t.Fatalf("flush stats = %+v", s)
	}
}

func TestStatsAccumulate(t *testing.T) {
	d, _ := newDisk(t)
	d.WriteAt(make([]byte, 4096), 0)
	d.ReadAt(make([]byte, 8192), 0)
	d.Flush()
	s := d.Stats()
	if s.WriteOps != 1 || s.WriteBytes != 4096 {
		t.Fatalf("write stats: %+v", s)
	}
	if s.ReadOps != 1 || s.ReadBytes != 8192 {
		t.Fatalf("read stats: %+v", s)
	}
	if s.AvgReadLatency() <= 0 || s.AvgWriteLatency() <= 0 {
		t.Fatalf("latency stats: %+v", s)
	}
}

func TestAvgLatencyZeroWithoutOps(t *testing.T) {
	var s Stats
	if s.AvgReadLatency() != 0 || s.AvgWriteLatency() != 0 {
		t.Fatal("zero-op averages must be 0")
	}
}

func TestTimeAdvancesWithIO(t *testing.T) {
	d, clock := newDisk(t)
	t0 := clock.Now()
	d.WriteAt(make([]byte, 4096), 0)
	if !clock.Now().After(t0) {
		t.Fatal("I/O did not consume virtual time")
	}
}

func TestEIOErrnoConstant(t *testing.T) {
	if EIOErrno != -5 {
		t.Fatal("EIO errno must be -5 to match the paper's JBD signature")
	}
}
