package blockdev

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Image persistence: a sparse dump of a Disk's written chunks, so CLI
// tools can carry a filesystem or database across process runs. The
// format is versioned and length-prefixed:
//
//	u64 magic | u32 version | u64 deviceSize | u32 chunkSize | u32 count
//	count × ( u64 baseOffset | chunk bytes )
const (
	imageMagic   = 0x444E4F5445494D47 // "DNOTEIMG"
	imageVersion = 1
)

// ErrBadImage reports an unreadable or mismatched image.
var ErrBadImage = errors.New("blockdev: bad image")

// SaveImage writes the disk's current contents sparsely. Only chunks that
// were ever written are emitted; a freshly formatted 500 GB drive dumps in
// kilobytes. Virtual time is not charged: imaging models an out-of-band
// operation (e.g. copying a VM disk), not victim I/O.
func (d *Disk) SaveImage(w io.Writer) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	header := make([]byte, 8+4+8+4+4)
	le.PutUint64(header[0:], imageMagic)
	le.PutUint32(header[8:], imageVersion)
	le.PutUint64(header[12:], uint64(d.Size()))
	le.PutUint32(header[20:], chunkSize)
	le.PutUint32(header[24:], uint32(len(d.data)))
	if _, err := bw.Write(header); err != nil {
		return err
	}
	bases := make([]int64, 0, len(d.data))
	for base := range d.data {
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	var off [8]byte
	for _, base := range bases {
		le.PutUint64(off[:], uint64(base))
		if _, err := bw.Write(off[:]); err != nil {
			return err
		}
		if _, err := bw.Write(d.data[base]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadImage replaces the disk's contents with an image previously written
// by SaveImage. The image's device size must not exceed this disk's.
func (d *Disk) LoadImage(r io.Reader) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	br := bufio.NewReader(r)
	header := make([]byte, 8+4+8+4+4)
	if _, err := io.ReadFull(br, header); err != nil {
		return fmt.Errorf("%w: header: %v", ErrBadImage, err)
	}
	le := binary.LittleEndian
	if le.Uint64(header[0:]) != imageMagic {
		return fmt.Errorf("%w: magic mismatch", ErrBadImage)
	}
	if v := le.Uint32(header[8:]); v != imageVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadImage, v)
	}
	if size := le.Uint64(header[12:]); size > uint64(d.Size()) {
		return fmt.Errorf("%w: image of %d bytes exceeds device of %d", ErrBadImage, size, d.Size())
	}
	if cs := le.Uint32(header[20:]); cs != chunkSize {
		return fmt.Errorf("%w: chunk size %d, want %d", ErrBadImage, cs, chunkSize)
	}
	count := int(le.Uint32(header[24:]))
	data := make(map[int64][]byte, count)
	var off [8]byte
	for i := 0; i < count; i++ {
		if _, err := io.ReadFull(br, off[:]); err != nil {
			return fmt.Errorf("%w: chunk %d offset: %v", ErrBadImage, i, err)
		}
		base := int64(le.Uint64(off[:]))
		if base < 0 || base%chunkSize != 0 || base >= d.Size() {
			return fmt.Errorf("%w: chunk %d at invalid offset %d", ErrBadImage, i, base)
		}
		chunk := make([]byte, chunkSize)
		if _, err := io.ReadFull(br, chunk); err != nil {
			return fmt.Errorf("%w: chunk %d body: %v", ErrBadImage, i, err)
		}
		data[base] = chunk
	}
	d.data = data
	return nil
}
