package blockdev

import (
	"bytes"
	"errors"
	"testing"
)

func TestImageRoundTrip(t *testing.T) {
	d, _ := newDisk(t)
	payloads := map[int64][]byte{
		0:       []byte("superblock-ish"),
		1 << 20: bytes.Repeat([]byte{0xAA}, 100000),
		5 << 24: []byte("far away extent"),
	}
	for off, p := range payloads {
		if _, err := d.WriteAt(p, off); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := d.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	// Sparse: far below full device size.
	if buf.Len() > 1<<22 {
		t.Fatalf("image size %d, want sparse", buf.Len())
	}
	d2, _ := newDisk(t)
	if err := d2.LoadImage(&buf); err != nil {
		t.Fatal(err)
	}
	for off, want := range payloads {
		got := make([]byte, len(want))
		if _, err := d2.ReadAt(got, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("content at %d diverged", off)
		}
	}
	// Unwritten regions stay zero.
	zero := make([]byte, 64)
	d2.ReadAt(zero, 1<<30)
	for _, b := range zero {
		if b != 0 {
			t.Fatal("ghost data in unwritten region")
		}
	}
}

func TestImageEmptyDisk(t *testing.T) {
	d, _ := newDisk(t)
	var buf bytes.Buffer
	if err := d.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	d2, _ := newDisk(t)
	if err := d2.LoadImage(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestImageRejectsGarbage(t *testing.T) {
	d, _ := newDisk(t)
	if err := d.LoadImage(bytes.NewReader([]byte("not an image"))); !errors.Is(err, ErrBadImage) {
		t.Fatalf("garbage accepted: %v", err)
	}
	// Truncated valid header.
	var buf bytes.Buffer
	if err := d.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	d.WriteAt([]byte("x"), 0)
	var full bytes.Buffer
	if err := d.SaveImage(&full); err != nil {
		t.Fatal(err)
	}
	truncated := full.Bytes()[:full.Len()-10]
	if err := d.LoadImage(bytes.NewReader(truncated)); !errors.Is(err, ErrBadImage) {
		t.Fatalf("truncated image accepted: %v", err)
	}
}

func TestImageLoadReplacesContents(t *testing.T) {
	d, _ := newDisk(t)
	d.WriteAt([]byte("original"), 0)
	var buf bytes.Buffer
	d.SaveImage(&buf)
	d.WriteAt([]byte("MUTATED!"), 0)
	if err := d.LoadImage(&buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	d.ReadAt(got, 0)
	if string(got) != "original" {
		t.Fatalf("load did not restore: %q", got)
	}
}
