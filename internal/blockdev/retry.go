package blockdev

import (
	"fmt"
	"time"

	"deepnote/internal/metrics"
	"deepnote/internal/simclock"
)

// ErrBudgetExhausted is returned when a request and its retries exceed the
// per-request deadline budget. It wraps ErrIO so upper layers classify it
// like the underlying failure it masks.
var ErrBudgetExhausted = fmt.Errorf("%w: retry budget exhausted", ErrIO)

// RetryPolicy bounds the resilient I/O path at the device boundary: how many
// times a failed request is retried, how backoff grows between attempts, and
// how much total virtual time one request may consume. The zero value is
// usable via withDefaults; DefaultRetryPolicy documents the tuned defaults.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failure.
	MaxRetries int
	// BaseBackoff is the sleep before the first retry; it doubles each
	// retry up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// Budget is the per-request deadline: once a request has consumed
	// this much virtual time across attempts and backoffs, the retrier
	// stops and returns ErrBudgetExhausted wrapping the last error.
	Budget time.Duration
}

// DefaultRetryPolicy is the tuned policy for the hardened victim stack:
// enough attempts to ride out a transient burst, bounded so a dead device
// fails a request in about two virtual seconds instead of hanging forever.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxRetries:  4,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  time.Second,
		Budget:      2 * time.Second,
	}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxRetries == 0 {
		p.MaxRetries = d.MaxRetries
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	if p.Budget == 0 {
		p.Budget = d.Budget
	}
	return p
}

// RetryStats counts the retrier's outcomes.
type RetryStats struct {
	// Requests counts requests entering the retrier.
	Requests int64
	// Retries counts re-attempts issued (not counting first attempts).
	Retries int64
	// Recovered counts requests that failed at least once and then
	// succeeded within budget.
	Recovered int64
	// Exhausted counts requests abandoned on MaxRetries or budget.
	Exhausted int64
	// BackoffTime sums virtual time spent sleeping between attempts.
	BackoffTime time.Duration
}

// Retrier is a Device wrapper adding retry-with-exponential-backoff under a
// per-request deadline budget, with all waiting charged to the virtual
// clock. It converts transient device errors (acoustic bursts, injected
// hiccups) into latency instead of failures, which is exactly the trade the
// paper's victim stack lacked.
type Retrier struct {
	inner  Device
	clock  simclock.Clock
	policy RetryPolicy
	stats  RetryStats
}

// NewRetrier wraps inner with the given policy (zero fields take defaults).
func NewRetrier(inner Device, clock simclock.Clock, policy RetryPolicy) *Retrier {
	return &Retrier{inner: inner, clock: clock, policy: policy.withDefaults()}
}

// Stats returns a copy of the counters.
func (r *Retrier) Stats() RetryStats { return r.stats }

// Size returns the inner device capacity.
func (r *Retrier) Size() int64 { return r.inner.Size() }

// do runs op under the retry policy. op returns the attempt's error.
func (r *Retrier) do(op func() error) error {
	r.stats.Requests++
	start := r.clock.Now()
	backoff := r.policy.BaseBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil {
			if attempt > 0 {
				r.stats.Recovered++
			}
			return nil
		}
		lastErr = err
		if attempt >= r.policy.MaxRetries {
			r.stats.Exhausted++
			return fmt.Errorf("%w after %d attempts: %v", ErrBudgetExhausted, attempt+1, lastErr)
		}
		elapsed := r.clock.Now().Sub(start)
		if elapsed >= r.policy.Budget {
			r.stats.Exhausted++
			return fmt.Errorf("%w after %v: %v", ErrBudgetExhausted, elapsed, lastErr)
		}
		if remaining := r.policy.Budget - elapsed; backoff > remaining {
			// The doubled backoff would overshoot the deadline. Clamp it
			// so the request spends its whole budget and gets one final
			// attempt at the deadline edge instead of abandoning the
			// remainder unspent.
			backoff = remaining
		}
		r.clock.Sleep(backoff)
		r.stats.BackoffTime += backoff
		r.stats.Retries++
		if backoff *= 2; backoff > r.policy.MaxBackoff {
			backoff = r.policy.MaxBackoff
		}
	}
}

// ReadAt implements Device.
func (r *Retrier) ReadAt(p []byte, off int64) (int, error) {
	var n int
	err := r.do(func() error {
		var err error
		n, err = r.inner.ReadAt(p, off)
		return err
	})
	return n, err
}

// WriteAt implements Device.
func (r *Retrier) WriteAt(p []byte, off int64) (int, error) {
	var n int
	err := r.do(func() error {
		var err error
		n, err = r.inner.WriteAt(p, off)
		return err
	})
	return n, err
}

// Flush implements Device.
func (r *Retrier) Flush() error {
	return r.do(r.inner.Flush)
}

// PublishMetrics pushes the retrier's counters into a registry under the
// "blockdev.retry." prefix (no-op on a nil registry).
func (r *Retrier) PublishMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s := r.stats
	reg.Add("blockdev.retry.requests", s.Requests)
	reg.Add("blockdev.retry.retries", s.Retries)
	reg.Add("blockdev.retry.recovered", s.Recovered)
	reg.Add("blockdev.retry.exhausted", s.Exhausted)
	reg.Add("blockdev.retry.backoff_ns_total", int64(s.BackoffTime))
}

var _ Device = (*Retrier)(nil)
