package blockdev_test

import (
	"errors"
	"testing"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/faultinj"
	"deepnote/internal/hdd"
	"deepnote/internal/metrics"
	"deepnote/internal/simclock"
)

// flaky fails the first failures attempts of each op, then succeeds.
type flaky struct {
	failures int
	attempts int
	clock    *simclock.Virtual
}

func (f *flaky) step() error {
	f.attempts++
	f.clock.Advance(time.Millisecond)
	if f.attempts <= f.failures {
		return blockdev.ErrIO
	}
	return nil
}

func (f *flaky) ReadAt(p []byte, off int64) (int, error)  { return len(p), f.step() }
func (f *flaky) WriteAt(p []byte, off int64) (int, error) { return len(p), f.step() }
func (f *flaky) Flush() error                             { return f.step() }
func (f *flaky) Size() int64                              { return 1 << 30 }

func TestRetrierRecoversFromTransientErrors(t *testing.T) {
	clock := simclock.NewVirtual()
	dev := &flaky{failures: 3, clock: clock}
	r := blockdev.NewRetrier(dev, clock, blockdev.RetryPolicy{})
	if _, err := r.ReadAt(make([]byte, 512), 0); err != nil {
		t.Fatalf("retrier gave up: %v", err)
	}
	if dev.attempts != 4 {
		t.Fatalf("attempts = %d, want 4", dev.attempts)
	}
	s := r.Stats()
	if s.Recovered != 1 || s.Retries != 3 || s.Exhausted != 0 {
		t.Fatalf("stats = %+v", s)
	}
	// Exponential backoff: 10 + 20 + 40 ms slept.
	if s.BackoffTime != 70*time.Millisecond {
		t.Fatalf("backoff = %v", s.BackoffTime)
	}
}

func TestRetrierGivesUpAtMaxRetries(t *testing.T) {
	clock := simclock.NewVirtual()
	dev := &flaky{failures: 100, clock: clock}
	r := blockdev.NewRetrier(dev, clock, blockdev.RetryPolicy{MaxRetries: 2})
	_, err := r.WriteAt(make([]byte, 512), 0)
	if !errors.Is(err, blockdev.ErrBudgetExhausted) || !errors.Is(err, blockdev.ErrIO) {
		t.Fatalf("err = %v", err)
	}
	if dev.attempts != 3 {
		t.Fatalf("attempts = %d, want 3", dev.attempts)
	}
	if r.Stats().Exhausted != 1 {
		t.Fatalf("stats = %+v", r.Stats())
	}
}

func TestRetrierHonorsDeadlineBudget(t *testing.T) {
	clock := simclock.NewVirtual()
	dev := &flaky{failures: 100, clock: clock}
	r := blockdev.NewRetrier(dev, clock, blockdev.RetryPolicy{
		MaxRetries:  50,
		BaseBackoff: 400 * time.Millisecond,
		MaxBackoff:  400 * time.Millisecond,
		Budget:      time.Second,
	})
	start := clock.Now()
	err := r.Flush()
	if !errors.Is(err, blockdev.ErrBudgetExhausted) {
		t.Fatalf("err = %v", err)
	}
	// 400ms backoffs against a 1s budget: attempts at 0, ~401, ~802 ms,
	// then the final backoff is clamped to the remaining budget so the
	// fourth attempt lands exactly at the 1s deadline edge.
	if dev.attempts != 4 {
		t.Fatalf("attempts = %d, want 4", dev.attempts)
	}
	// Sleeping never exceeds the budget; only attempt latency may spill.
	if s := r.Stats(); s.BackoffTime > time.Second {
		t.Fatalf("backoff overran budget: %v", s.BackoffTime)
	}
	if spent := clock.Now().Sub(start); spent > time.Second+4*time.Millisecond {
		t.Fatalf("spent %v, want <= budget + attempt latency", spent)
	}
}

func TestRetrierClampsFinalBackoffToDeadline(t *testing.T) {
	// Boundary regression: a retry whose doubled backoff would exceed the
	// remaining budget must be clamped to a final attempt at the deadline
	// edge, not silently skipped. The device recovers exactly on that
	// clamped fourth attempt — the old code abandoned the request first.
	clock := simclock.NewVirtual()
	dev := &flaky{failures: 3, clock: clock}
	r := blockdev.NewRetrier(dev, clock, blockdev.RetryPolicy{
		MaxRetries:  50,
		BaseBackoff: 400 * time.Millisecond,
		MaxBackoff:  400 * time.Millisecond,
		Budget:      time.Second,
	})
	if _, err := r.ReadAt(make([]byte, 512), 0); err != nil {
		t.Fatalf("clamped final attempt was skipped: %v", err)
	}
	if dev.attempts != 4 {
		t.Fatalf("attempts = %d, want 4", dev.attempts)
	}
	s := r.Stats()
	if s.Recovered != 1 || s.Exhausted != 0 {
		t.Fatalf("stats = %+v", s)
	}
	// Backoffs: 400 + 400 + (1000 - 803) clamped = 997 ms.
	if s.BackoffTime != 997*time.Millisecond {
		t.Fatalf("backoff = %v, want 997ms (final sleep clamped)", s.BackoffTime)
	}
}

func TestRetrierMasksInjectedBurst(t *testing.T) {
	// End-to-end composition: drive -> faultinj burst -> retrier. The
	// injected transient window fails the first attempts; backoff walks
	// the request past the window's end and the retry succeeds.
	clock := simclock.NewVirtual()
	drive, err := hdd.NewDrive(hdd.Barracuda500(), clock, 11)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinj.Wrap(blockdev.NewDisk(drive), clock, 5, faultinj.Fault{
		Kind: faultinj.TransientError, Duration: 25 * time.Millisecond,
	})
	r := blockdev.NewRetrier(inj, clock, blockdev.RetryPolicy{})
	if _, err := r.WriteAt(make([]byte, 4096), 0); err != nil {
		t.Fatalf("retrier failed to mask burst: %v", err)
	}
	if r.Stats().Recovered != 1 {
		t.Fatalf("stats = %+v", r.Stats())
	}
	if inj.Stats().InjectedWriteErrs == 0 {
		t.Fatal("burst never fired")
	}
}

func TestRetrierPublishMetrics(t *testing.T) {
	clock := simclock.NewVirtual()
	dev := &flaky{failures: 1, clock: clock}
	r := blockdev.NewRetrier(dev, clock, blockdev.RetryPolicy{})
	if _, err := r.ReadAt(make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	r.PublishMetrics(reg)
	snap := reg.Snapshot()
	for _, key := range []string{
		"blockdev.retry.requests", "blockdev.retry.retries", "blockdev.retry.recovered",
	} {
		if snap.Counters[key] != 1 {
			t.Fatalf("%s = %d in %+v", key, snap.Counters[key], snap.Counters)
		}
	}
	r.PublishMetrics(nil) // must not panic
}
