// Package campaign orchestrates multi-phase attacks against a monitored
// victim — the cat-and-mouse the paper's §3 objectives imply. Objective 1
// (controlled delay induction) becomes most dangerous when it stays under
// the operator's detection threshold: a duty-cycled attacker keys short
// tone bursts separated by quiet gaps, trading devastation for stealth.
package campaign

import (
	"fmt"
	"time"

	"deepnote/internal/core"
	"deepnote/internal/detect"
	"deepnote/internal/metrics"
	"deepnote/internal/sig"
	"deepnote/internal/trace"
	"deepnote/internal/units"
)

// DutyCycle describes the attack's on/off keying. A zero Off means
// continuous attack.
type DutyCycle struct {
	On, Off time.Duration
}

// Fraction returns the on-air fraction.
func (d DutyCycle) Fraction() float64 {
	total := d.On + d.Off
	if total <= 0 {
		return 0
	}
	return float64(d.On) / float64(total)
}

// Stealth is a duty-cycled attack against a victim running a monitored
// write workload.
type Stealth struct {
	Scenario core.Scenario
	Freq     units.Frequency
	Distance units.Distance
	Duty     DutyCycle
	// Duration is the total campaign length.
	Duration time.Duration
	// Detector tunes the victim's monitoring.
	Detector detect.Config
	Seed     int64
	// Metrics receives campaign and per-layer counters when non-nil.
	// Publishing happens after the run completes, so instrumentation
	// never perturbs the simulation.
	Metrics *metrics.Registry
}

func (s Stealth) withDefaults() Stealth {
	if s.Scenario == 0 {
		s.Scenario = core.Scenario2
	}
	if s.Freq == 0 {
		s.Freq = 650 * units.Hz
	}
	if s.Distance == 0 {
		s.Distance = 1 * units.Centimeter
	}
	if s.Duty.On == 0 {
		s.Duty.On = 2 * time.Second
	}
	if s.Duration == 0 {
		s.Duration = 60 * time.Second
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Result summarizes the campaign from both sides.
type Result struct {
	Spec Stealth
	// BaselineMBps and CampaignMBps are victim write throughput before
	// and during the campaign.
	BaselineMBps, CampaignMBps float64
	// LossFraction is the victim's relative throughput loss.
	LossFraction float64
	// Alarms is how many times the victim's detector fired.
	Alarms int
	// MaxSuspicion is the detector's worst window score during the
	// campaign.
	MaxSuspicion float64
	// Timeline is the victim throughput per second.
	Timeline []trace.Point
}

// Run executes the campaign: the victim writes continuously through a
// detection monitor; the attacker keys the tone per the duty cycle.
func (s Stealth) Run() (Result, error) {
	s = s.withDefaults()
	rig, err := core.NewRig(s.Scenario, s.Distance, s.Seed)
	if err != nil {
		return Result{}, err
	}
	mon, err := detect.NewMonitor(rig.Disk, rig.Clock, s.Detector)
	if err != nil {
		return Result{}, err
	}
	meter := trace.NewMeter(rig.Clock, time.Second)
	origin := rig.Clock.Now()
	buf := make([]byte, 4096)
	var off int64

	writeOnce := func() {
		if _, err := mon.WriteAt(buf, off%(1<<24)); err == nil {
			meter.Add(4096)
		}
		off += 4096
	}
	writeFor := func(d time.Duration) {
		deadline := rig.Clock.Now().Add(d)
		for rig.Clock.Now().Before(deadline) {
			writeOnce()
		}
	}

	// Baseline phase: train the detector, measure healthy throughput.
	baselineWindow := 5 * time.Second
	writeFor(baselineWindow)
	spec := s
	spec.Metrics = nil // the registry is plumbing, not a campaign parameter
	res := Result{Spec: spec, BaselineMBps: meter.MeanMBps(0, baselineWindow)}
	if res.BaselineMBps <= 0 {
		return res, fmt.Errorf("campaign: baseline produced no throughput")
	}

	// Campaign phase.
	start := rig.Clock.Now()
	maxSuspicion := 0.0
	bursts := 0
	tone := sig.NewTone(s.Freq)
	for rig.Clock.Now().Sub(start) < s.Duration {
		rig.ApplyTone(tone)
		bursts++
		onDeadline := rig.Clock.Now().Add(s.Duty.On)
		for rig.Clock.Now().Before(onDeadline) {
			writeOnce()
			if sus := mon.Suspicion(); sus > maxSuspicion {
				maxSuspicion = sus
			}
		}
		rig.Silence()
		if s.Duty.Off > 0 {
			offDeadline := rig.Clock.Now().Add(s.Duty.Off)
			for rig.Clock.Now().Before(offDeadline) {
				writeOnce()
				if sus := mon.Suspicion(); sus > maxSuspicion {
					maxSuspicion = sus
				}
			}
		}
	}
	rig.Silence()

	campaignEnd := rig.Clock.Now().Sub(origin)
	res.CampaignMBps = meter.MeanMBps(baselineWindow, campaignEnd)
	res.LossFraction = 1 - res.CampaignMBps/res.BaselineMBps
	if res.LossFraction < 0 {
		res.LossFraction = 0
	}
	res.Alarms = mon.Detector().Alarms
	res.MaxSuspicion = maxSuspicion
	res.Timeline = meter.Buckets()
	s.publishMetrics(rig, res, bursts)
	return res, nil
}

// publishMetrics folds the finished campaign into the registry: the
// attacker-side accounting plus the victim rig's drive and disk layers.
// Everything published is a pure function of the (already deterministic)
// result, so snapshots merge identically at any worker count.
func (s Stealth) publishMetrics(rig *core.Rig, res Result, bursts int) {
	reg := s.Metrics
	reg.Add("campaign.runs", 1)
	reg.Add("campaign.bursts", int64(bursts))
	reg.Add("campaign.alarms", int64(res.Alarms))
	reg.MaxGauge("campaign.max_suspicion", res.MaxSuspicion)
	reg.MaxGauge("campaign.max_loss_fraction", res.LossFraction)
	rig.Drive.PublishMetrics(reg)
	rig.Disk.PublishMetrics(reg)
}
