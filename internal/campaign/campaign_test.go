package campaign

import (
	"testing"
	"time"
)

func TestContinuousAttackIsLoudAndDetected(t *testing.T) {
	res, err := Stealth{
		Duty:     DutyCycle{On: 2 * time.Second, Off: 0},
		Duration: 30 * time.Second,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.LossFraction < 0.95 {
		t.Fatalf("continuous attack loss = %.2f, want ≈1", res.LossFraction)
	}
	if res.Alarms == 0 {
		t.Fatal("continuous attack must trip the detector")
	}
	if res.MaxSuspicion < 0.5 {
		t.Fatalf("max suspicion = %.2f", res.MaxSuspicion)
	}
}

func TestDutyCycledAttackTradesDamageForStealth(t *testing.T) {
	loud, err := Stealth{
		Duty:     DutyCycle{On: 2 * time.Second, Off: 0},
		Duration: 30 * time.Second,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := Stealth{
		Duty:     DutyCycle{On: 500 * time.Millisecond, Off: 10 * time.Second},
		Duration: 30 * time.Second,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The stealth variant must do less damage...
	if quiet.LossFraction >= loud.LossFraction {
		t.Fatalf("duty-cycled loss %.2f should be below continuous %.2f",
			quiet.LossFraction, loud.LossFraction)
	}
	// ...but still a meaningful delay injection...
	if quiet.LossFraction < 0.02 {
		t.Fatalf("duty-cycled attack did nothing: loss %.3f", quiet.LossFraction)
	}
	// ...while staying quieter on the victim's detector.
	if quiet.MaxSuspicion >= loud.MaxSuspicion {
		t.Fatalf("stealth suspicion %.2f should be below continuous %.2f",
			quiet.MaxSuspicion, loud.MaxSuspicion)
	}
	if quiet.Alarms > loud.Alarms {
		t.Fatalf("stealth alarms %d exceed continuous %d", quiet.Alarms, loud.Alarms)
	}
}

func TestDutyCycleFraction(t *testing.T) {
	d := DutyCycle{On: time.Second, Off: 3 * time.Second}
	if d.Fraction() != 0.25 {
		t.Fatalf("fraction = %v", d.Fraction())
	}
	if (DutyCycle{}).Fraction() != 0 {
		t.Fatal("zero duty cycle fraction")
	}
}

func TestCampaignTimelineCoversRun(t *testing.T) {
	res, err := Stealth{
		Duty:     DutyCycle{On: time.Second, Off: 2 * time.Second},
		Duration: 12 * time.Second,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) < 15 { // 5s baseline + ≥12s campaign
		t.Fatalf("timeline buckets = %d", len(res.Timeline))
	}
	if res.BaselineMBps < 20 {
		t.Fatalf("baseline = %.1f", res.BaselineMBps)
	}
}
