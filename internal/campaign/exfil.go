// The exfiltration-defense campaign runs the covert channel against the
// defender's own telemetry instrumentation: the insider's modulated seek
// waveform (internal/exfil) lands on the drive-tray sensor alongside the
// ambient soundscape and sensor noise, and the spectral fingerprinter +
// fused verdict watch the stream. The quantity that matters is not "was
// it detected" but "how many bytes left the facility first" — detection
// latency times channel goodput. It is the harness behind the defense
// table of `deepnote exfil`.
package campaign

import (
	"fmt"
	"math/rand"
	"time"

	"deepnote/internal/detect"
	"deepnote/internal/exfil"
	"deepnote/internal/metrics"
	"deepnote/internal/parallel"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// ExfilDetectSpec configures one covert-transmission run under telemetry
// surveillance. Zero values take campaign defaults, matching the other
// specs in this package; the embedded exfil configs keep their own
// pointer-field convention.
type ExfilDetectSpec struct {
	// Modem and Tx configure the covert channel's modulation and the
	// transmitting drive.
	Modem exfil.ModemConfig
	Tx    exfil.TxConfig
	// Ambient is the benign soundscape on the tray sensor throughout.
	Ambient sig.Ambient
	// Frames is how many back-to-back frames the insider sends. 0 = 16.
	Frames int
	// Lead is the benign lead-in before the first symbol — the
	// false-positive control window. 0 = 4 s.
	Lead time.Duration
	// Fingerprint tunes the spectral classifier watching the stream.
	Fingerprint detect.FingerprintConfig
	Seed        int64
	// Metrics receives campaign counters when non-nil.
	Metrics *metrics.Registry
}

func (s ExfilDetectSpec) withDefaults() ExfilDetectSpec {
	if s.Frames == 0 {
		s.Frames = 16
	}
	if s.Lead == 0 {
		s.Lead = 4 * time.Second
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// ExfilDetectResult summarizes one surveilled transmission.
type ExfilDetectResult struct {
	Spec ExfilDetectSpec
	// Windows / HostileWindows count analysis windows overall and those
	// the classifier called hostile.
	Windows, HostileWindows int
	// FusedAlarms counts rising edges of the fused verdict.
	FusedAlarms int
	// Detected is true when a hostile verdict fired at or after the
	// first symbol; DetectLatency is the lag from transmission start,
	// DetectedFreq the verdict's peak bin, Confidence its confidence.
	Detected      bool
	DetectLatency time.Duration
	DetectedFreq  units.Frequency
	Confidence    float64
	// FalsePositives counts hostile verdicts during the benign lead-in.
	FalsePositives int
	// FramesSent / BytesSent describe the whole transmission;
	// FrameAirtime is one frame's duration on the channel.
	FramesSent   int
	BytesSent    int
	FrameAirtime time.Duration
	// GoodputBps is the channel's payload goodput in bits/s while
	// transmitting (payload bits over frame airtime).
	GoodputBps float64
	// BytesLeaked is how many payload bytes completed their frame before
	// the detection verdict — the whole transmission when undetected.
	// The defender's real figure of merit.
	BytesLeaked int
}

// Run transmits Frames covert frames through the tray-telemetry path
// under the fingerprinter's watch. Deterministic per seed: the payload,
// sensor noise, and ambient draws all derive from seed lanes, so results
// are byte-identical at any worker count.
func (s ExfilDetectSpec) Run() (ExfilDetectResult, error) {
	s = s.withDefaults()
	mod, err := exfil.NewModulator(s.Modem, s.Tx)
	if err != nil {
		return ExfilDetectResult{}, err
	}
	fp, err := detect.NewFingerprinter(s.Fingerprint)
	if err != nil {
		return ExfilDetectResult{}, err
	}
	if fp.SampleRate() != mod.Modem().SampleRate() {
		return ExfilDetectResult{}, fmt.Errorf("%w: fingerprint sample rate %g Hz does not match the modem's %g Hz",
			exfil.ErrConfig, fp.SampleRate(), mod.Modem().SampleRate())
	}
	md := mod.Modem()
	airtime := time.Duration(md.FrameAirtime() * float64(time.Second))
	origin := time.Unix(0, 0).UTC()
	fp.SetOrigin(origin)
	fused := &detect.Fused{Spectral: fp}

	spec := s
	spec.Metrics = nil // plumbing, not a campaign parameter
	res := ExfilDetectResult{Spec: spec, FrameAirtime: airtime}

	// The exfiltrated blob: deterministic pseudorandom payload bytes, the
	// statistically hardest case for the classifier (no bit bias to park
	// energy on one tone).
	payloadRng := rand.New(rand.NewSource(parallel.SeedFor(s.Seed, 2)))
	var bits []byte
	for f := 0; f < s.Frames; f++ {
		payload := make([]byte, md.MaxPayload())
		payloadRng.Read(payload)
		fb, err := md.EncodeFrame(payload)
		if err != nil {
			return ExfilDetectResult{}, err
		}
		bits = append(bits, fb...)
		res.BytesSent += len(payload)
	}
	res.FramesSent = s.Frames
	res.GoodputBps = 8 * float64(md.MaxPayload()) / md.FrameAirtime()

	// Render the full sensor stream: benign lead-in, then the modulated
	// seek waveform, with the ambient scenario and sensor noise on top.
	leadSamples := int(s.Lead.Seconds() * md.SampleRate())
	wave := make([]float64, leadSamples)
	wave = mod.AppendTelemetry(bits, wave)
	win := fp.WindowSamples()
	if tail := len(wave) % win; tail != 0 {
		wave = append(wave, make([]float64, win-tail)...)
	}
	noiseSeed := parallel.SeedFor(s.Seed, 1)
	for w := 0; w*win < len(wave); w++ {
		frame := wave[w*win : (w+1)*win]
		s.Ambient.RenderInto(w, md.SampleRate(), frame)
		rng := rand.New(rand.NewSource(parallel.SeedFor(noiseSeed, w)))
		for i := range frame {
			frame[i] += detect.DefaultSensorSigma * rng.NormFloat64()
		}
		fp.Feed(frame)
		fused.Verdict(origin.Add(time.Duration(float64((w+1)*win) / md.SampleRate() * float64(time.Second))))
	}

	res.Windows = fp.Windows()
	res.HostileWindows = fp.HostileWindows()
	res.FusedAlarms = fused.Alarms
	res.Confidence = fp.MaxConfidence()

	txStart := origin.Add(time.Duration(float64(leadSamples) / md.SampleRate() * float64(time.Second)))
	for _, det := range fp.Detections() {
		if det.At.Before(txStart) {
			res.FalsePositives++
			continue
		}
		if !res.Detected {
			res.Detected = true
			res.DetectLatency = det.At.Sub(txStart)
			res.DetectedFreq = det.PeakFreq
			res.Confidence = det.Confidence
		}
	}
	res.BytesLeaked = res.BytesSent
	if res.Detected {
		frames := int(res.DetectLatency / airtime)
		if frames > s.Frames {
			frames = s.Frames
		}
		res.BytesLeaked = frames * md.MaxPayload()
	}
	s.publishExfilMetrics(res)
	return res, nil
}

// publishExfilMetrics folds the finished run into the registry — pure
// functions of the deterministic result, so snapshots merge identically
// at any worker count.
func (s ExfilDetectSpec) publishExfilMetrics(res ExfilDetectResult) {
	reg := s.Metrics
	reg.Add("exfil_detect.runs", 1)
	reg.Add("exfil_detect.windows", int64(res.Windows))
	reg.Add("exfil_detect.hostile_windows", int64(res.HostileWindows))
	reg.Add("exfil_detect.false_positives", int64(res.FalsePositives))
	reg.Add("exfil_detect.bytes_sent", int64(res.BytesSent))
	reg.Add("exfil_detect.bytes_leaked", int64(res.BytesLeaked))
	if res.Detected {
		reg.Add("exfil_detect.detections", 1)
	}
	reg.MaxGauge("exfil_detect.max_confidence", res.Confidence)
}
