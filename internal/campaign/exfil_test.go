package campaign

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"deepnote/internal/exfil"
	"deepnote/internal/metrics"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// TestExfilDetectFSKCaughtEverywhere pins the defense leg's headline: the
// FSK waveform keeps a strong 780 Hz carrier on the tray sensor, and the
// spectral fingerprinter catches it before the first frame completes —
// zero payload bytes leak — under every ambient scenario, with a clean
// benign lead-in.
func TestExfilDetectFSKCaughtEverywhere(t *testing.T) {
	for _, kind := range sig.AmbientKinds() {
		s := ExfilDetectSpec{
			Ambient: sig.NewAmbient(kind, 3),
			Frames:  4,
			Seed:    5,
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.FalsePositives != 0 {
			t.Errorf("%v: %d false positives during the benign lead-in", kind, res.FalsePositives)
		}
		if !res.Detected {
			t.Errorf("%v: FSK transmission not detected", kind)
			continue
		}
		if res.DetectLatency >= res.FrameAirtime {
			t.Errorf("%v: detection latency %v not within one frame airtime %v", kind, res.DetectLatency, res.FrameAirtime)
		}
		if res.BytesLeaked != 0 {
			t.Errorf("%v: %d bytes leaked before detection, want 0", kind, res.BytesLeaked)
		}
	}
}

// TestExfilDetectOOKStealthTradeoff pins the channel's stealth asymmetry:
// OOK is half silence on the weak third-harmonic carrier, so the
// fingerprinter needs far longer — whole frames leak first — and under
// rain's heavy broadband the transmission escapes entirely.
func TestExfilDetectOOKStealthTradeoff(t *testing.T) {
	ook := exfil.ModemConfig{Scheme: exfil.SchemeOOK}

	creak, err := ExfilDetectSpec{Modem: ook, Ambient: sig.NewAmbient(sig.AmbientCreak, 3), Frames: 8, Seed: 5}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !creak.Detected {
		t.Fatal("OOK over thermal-creak not detected at all")
	}
	if creak.DetectLatency < creak.FrameAirtime {
		t.Errorf("OOK latency %v under creak beat one frame airtime %v — no stealth advantage measured",
			creak.DetectLatency, creak.FrameAirtime)
	}
	if creak.BytesLeaked == 0 {
		t.Error("OOK leaked no bytes before detection; the latency×goodput accounting is broken")
	}
	if creak.BytesLeaked >= creak.BytesSent {
		t.Errorf("OOK leaked the whole %d-byte transmission despite detection at %v", creak.BytesSent, creak.DetectLatency)
	}

	rain, err := ExfilDetectSpec{Modem: ook, Ambient: sig.NewAmbient(sig.AmbientRain, 3), Frames: 4, Seed: 5}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rain.Detected {
		t.Errorf("OOK under rain detected at %v — the stealth finding no longer holds", rain.DetectLatency)
	}
	if rain.BytesLeaked != rain.BytesSent {
		t.Errorf("undetected run leaked %d of %d bytes", rain.BytesLeaked, rain.BytesSent)
	}
}

// TestExfilDetectDeterministic replays a spec and demands identical
// results — the property the exfil-determinism CI job leans on.
func TestExfilDetectDeterministic(t *testing.T) {
	s := ExfilDetectSpec{Ambient: sig.NewAmbient(sig.AmbientShrimp, 9), Frames: 2, Seed: 11}
	r1, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("replay diverged:\n%+v\nvs\n%+v", r1, r2)
	}
}

// TestExfilDetectRejectsMismatchedRates pins the guard between the two
// clock domains: the fingerprinter must sample the stream at the modem's
// rate or the window timeline is meaningless.
func TestExfilDetectRejectsMismatchedRates(t *testing.T) {
	s := ExfilDetectSpec{
		Modem:  exfil.ModemConfig{SampleRate: exfil.Ptr(2048.0), Tone0: exfil.Ptr(500 * units.Hz), Tone1: exfil.Ptr(600 * units.Hz)},
		Frames: 1,
	}
	if _, err := s.Run(); !errors.Is(err, exfil.ErrConfig) {
		t.Fatalf("mismatched sample rates accepted: %v", err)
	}
}

// TestExfilDetectMetrics checks the campaign publishes its counters.
func TestExfilDetectMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	s := ExfilDetectSpec{Ambient: sig.NewAmbient(sig.AmbientPump, 3), Frames: 2, Seed: 5, Lead: 2 * time.Second, Metrics: reg}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["exfil_detect.runs"]; got != 1 {
		t.Errorf("exfil_detect.runs = %d, want 1", got)
	}
	if got := snap.Counters["exfil_detect.bytes_sent"]; got != int64(res.BytesSent) {
		t.Errorf("exfil_detect.bytes_sent = %d, want %d", got, res.BytesSent)
	}
	if got := snap.Counters["exfil_detect.bytes_leaked"]; got != int64(res.BytesLeaked) {
		t.Errorf("exfil_detect.bytes_leaked = %d, want %d", got, res.BytesLeaked)
	}
}
