// The fingerprint campaign closes the detection loop end-to-end: a victim
// rig runs a monitored write workload in a chosen ambient soundscape while
// the drive-tray telemetry stream feeds the spectral fingerprinter, and —
// optionally — a hostile tone keys on partway through. It is the
// integration harness behind `deepnote fingerprint`: benign scenarios must
// produce zero alarms, and the §4.1 tone must be fingerprinted within a
// bounded number of analysis windows of key-on.
package campaign

import (
	"time"

	"deepnote/internal/core"
	"deepnote/internal/detect"
	"deepnote/internal/hdd"
	"deepnote/internal/metrics"
	"deepnote/internal/parallel"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// Ptr returns a pointer to v — shorthand for the optional spec fields.
func Ptr[T any](v T) *T { return &v }

// FingerprintSpec configures one monitored run.
type FingerprintSpec struct {
	Scenario core.Scenario
	// Freq is the hostile tone frequency (default 650 Hz, the §4.1 worst
	// case).
	Freq units.Frequency
	// Distance is the speaker standoff when the full acoustic chain
	// drives the attack (ToneAmp nil).
	Distance units.Distance
	// Ambient is the benign soundscape the tray sensor hears throughout.
	Ambient sig.Ambient
	// ToneAmp selects how the attack excites the drive. Nil = drive the
	// full §4.3 chain (full-scale tone through water, container wall, and
	// mount at Distance). Ptr(0) = no attack at all — a pure benign run —
	// and is honored. Ptr(a > 0) = set the drive's off-track amplitude
	// directly, which is how the SNR-controlled experiment cells place a
	// tone exactly N dB over the telemetry floor.
	ToneAmp *float64
	// Duration is the total run length. Default 30 s.
	Duration time.Duration
	// AttackStart is when the tone keys on. Zero = Duration/4, leaving a
	// benign lead-in that doubles as the false-positive control window.
	AttackStart time.Duration
	// Detector tunes the latency/error monitor; Fingerprint tunes the
	// spectral classifier.
	Detector    detect.Config
	Fingerprint detect.FingerprintConfig
	Seed        int64
	// Metrics receives campaign counters when non-nil (published after
	// the run completes).
	Metrics *metrics.Registry
}

func (s FingerprintSpec) withDefaults() FingerprintSpec {
	if s.Scenario == 0 {
		s.Scenario = core.Scenario2
	}
	if s.Freq == 0 {
		s.Freq = 650 * units.Hz
	}
	if s.Distance == 0 {
		s.Distance = 1 * units.Centimeter
	}
	if s.Duration == 0 {
		s.Duration = 30 * time.Second
	}
	if s.AttackStart == 0 {
		s.AttackStart = s.Duration / 4
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// attacking reports whether the spec actually keys a tone.
func (s FingerprintSpec) attacking() bool {
	return s.ToneAmp == nil || *s.ToneAmp > 0
}

// FingerprintResult summarizes one monitored run.
type FingerprintResult struct {
	Spec FingerprintSpec
	// Windows is how many analysis windows completed; HostileWindows how
	// many the spectral classifier called hostile.
	Windows, HostileWindows int
	// SpectralAlarms / TelemetryAlarms / FusedAlarms count rising edges
	// of each layer's verdict.
	SpectralAlarms, TelemetryAlarms, FusedAlarms int
	// Detected is true when a hostile spectral verdict fired at or after
	// AttackStart; DetectLatency is the lag from key-on to that verdict,
	// DetectedFreq its peak bin, Confidence its per-detection confidence.
	Detected      bool
	DetectLatency time.Duration
	DetectedFreq  units.Frequency
	Confidence    float64
	// MaxConfidence / MaxSuspicion are the worst spectral confidence and
	// telemetry suspicion seen anywhere in the run.
	MaxConfidence, MaxSuspicion float64
	// FalsePositives counts hostile spectral verdicts during benign time
	// (before AttackStart, or anywhere in a no-attack run); BenignWindows
	// is the denominator, and FPRate their ratio.
	FalsePositives, BenignWindows int
	FPRate                        float64
	// SMARTHealthy is the drive's SMART state at run end.
	SMARTHealthy bool
}

// Run executes the campaign: the victim writes continuously through the
// latency monitor, the tray telemetry stream is synthesized and classified
// window by window in lockstep with the workload clock, and the fused
// verdict is rendered once per window. Everything runs on the rig's
// virtual clock from seeded sources, so results are byte-identical at any
// worker count.
func (s FingerprintSpec) Run() (FingerprintResult, error) {
	s = s.withDefaults()
	rig, err := core.NewRig(s.Scenario, s.Distance, s.Seed)
	if err != nil {
		return FingerprintResult{}, err
	}
	mon, err := detect.NewMonitor(rig.Disk, rig.Clock, s.Detector)
	if err != nil {
		return FingerprintResult{}, err
	}
	fp, err := detect.NewFingerprinter(s.Fingerprint)
	if err != nil {
		return FingerprintResult{}, err
	}
	origin := rig.Clock.Now()
	fp.SetOrigin(origin)
	// The telemetry sensor gets its own seed lane so workload and sensor
	// noise stay independent.
	synth := detect.NewSynth(fp.SampleRate(), fp.WindowSamples(),
		detect.DefaultSensorSigma, parallel.SeedFor(s.Seed, 1))
	fused := &detect.Fused{Telemetry: mon.Detector(), Spectral: fp}

	spec := s
	spec.Metrics = nil // plumbing, not a campaign parameter
	res := FingerprintResult{Spec: spec}

	winDur := fp.WindowDuration()
	attackAt := origin.Add(s.AttackStart)
	attacking := false
	emitted := 0
	// emit renders and classifies one telemetry window ending at the
	// current window boundary. The drive's vibration state at emission
	// time stands in for the whole window — a fair approximation at
	// 125 ms windows against multi-second attack phases.
	emit := func() {
		fp.Feed(synth.Window(rig.Drive.Vibration(), s.Ambient))
		fused.SMARTSuspect = !rig.Drive.SMARTHealthy()
		fused.Verdict(rig.Clock.Now())
		if sus := mon.Suspicion(); sus > res.MaxSuspicion {
			res.MaxSuspicion = sus
		}
		emitted++
	}

	buf := make([]byte, 4096)
	var off int64
	for rig.Clock.Now().Sub(origin) < s.Duration {
		if !attacking && !rig.Clock.Now().Before(attackAt) && s.attacking() {
			if s.ToneAmp == nil {
				rig.ApplyTone(sig.NewTone(s.Freq))
			} else {
				rig.Drive.SetVibration(hdd.Vibration{Freq: s.Freq, Amplitude: *s.ToneAmp})
			}
			attacking = true
		}
		mon.WriteAt(buf, off%(1<<24))
		off += 4096
		// Emit every window boundary the op crossed (a slow failing op
		// can span several).
		for !origin.Add(time.Duration(emitted+1) * winDur).After(rig.Clock.Now()) {
			emit()
		}
	}
	rig.Silence()

	res.Windows = fp.Windows()
	res.HostileWindows = fp.HostileWindows()
	res.SpectralAlarms = fp.Alarms
	res.TelemetryAlarms = mon.Detector().Alarms
	res.FusedAlarms = fused.Alarms
	res.MaxConfidence = fp.MaxConfidence()
	res.SMARTHealthy = rig.Drive.SMARTHealthy()

	benignUntil := attackAt
	if !s.attacking() {
		benignUntil = origin.Add(s.Duration)
		res.BenignWindows = res.Windows
	} else {
		res.BenignWindows = int(s.AttackStart / winDur)
	}
	for _, det := range fp.Detections() {
		if det.At.Before(benignUntil) {
			res.FalsePositives++
			continue
		}
		if !res.Detected {
			res.Detected = true
			res.DetectLatency = det.At.Sub(attackAt)
			res.DetectedFreq = det.PeakFreq
			res.Confidence = det.Confidence
		}
	}
	if res.BenignWindows > 0 {
		res.FPRate = float64(res.FalsePositives) / float64(res.BenignWindows)
	}
	s.publishFingerprintMetrics(rig, res)
	return res, nil
}

// publishFingerprintMetrics folds the finished run into the registry —
// pure functions of the deterministic result, so snapshots merge
// identically at any worker count.
func (s FingerprintSpec) publishFingerprintMetrics(rig *core.Rig, res FingerprintResult) {
	reg := s.Metrics
	reg.Add("fingerprint.runs", 1)
	reg.Add("fingerprint.windows", int64(res.Windows))
	reg.Add("fingerprint.hostile_windows", int64(res.HostileWindows))
	reg.Add("fingerprint.false_positives", int64(res.FalsePositives))
	reg.Add("fingerprint.fused_alarms", int64(res.FusedAlarms))
	if res.Detected {
		reg.Add("fingerprint.detections", 1)
	}
	reg.MaxGauge("fingerprint.max_confidence", res.MaxConfidence)
	reg.MaxGauge("fingerprint.max_suspicion", res.MaxSuspicion)
	rig.Drive.PublishMetrics(reg)
	rig.Disk.PublishMetrics(reg)
}
