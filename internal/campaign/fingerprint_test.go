package campaign

import (
	"math"
	"reflect"
	"testing"
	"time"

	"deepnote/internal/sig"
)

// The campaign-level false-positive pin: a monitored victim listening to
// each benign ambient scenario for the full run, with no attack keyed,
// must end with zero alarms on every detection layer.
func TestFingerprintCampaignBenignRunRaisesNoAlarms(t *testing.T) {
	for _, kind := range sig.AmbientKinds() {
		res, err := FingerprintSpec{
			Ambient:  sig.NewAmbient(kind, 3),
			ToneAmp:  Ptr(0.0),
			Duration: 12 * time.Second,
			Seed:     3,
		}.Run()
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Detected || res.FalsePositives != 0 || res.FPRate != 0 {
			t.Fatalf("%v: benign run produced detections: %+v", kind, res)
		}
		if res.SpectralAlarms != 0 || res.TelemetryAlarms != 0 || res.FusedAlarms != 0 {
			t.Fatalf("%v: benign run raised alarms: spectral=%d telemetry=%d fused=%d",
				kind, res.SpectralAlarms, res.TelemetryAlarms, res.FusedAlarms)
		}
		if res.BenignWindows != res.Windows || res.Windows < 80 {
			t.Fatalf("%v: windows=%d benign=%d", kind, res.Windows, res.BenignWindows)
		}
		if !res.SMARTHealthy {
			t.Fatalf("%v: benign run degraded SMART", kind)
		}
	}
}

// The §4.3 attack chain end-to-end: full-scale 650 Hz at 1 cm keys on a
// quarter into the run; the fingerprinter must identify the tone within a
// bounded latency, the latency monitor must corroborate, and the benign
// lead-in must stay clean.
func TestFingerprintCampaignDetectsAttack(t *testing.T) {
	res, err := FingerprintSpec{Duration: 20 * time.Second, Seed: 2}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatalf("attack not fingerprinted: %+v", res)
	}
	if math.Abs(res.DetectedFreq.Hertz()-650) > 20 {
		t.Fatalf("fingerprinted %v, want ≈ 650 Hz", res.DetectedFreq)
	}
	if res.Confidence < 0.5 {
		t.Fatalf("detection confidence %.2f < 0.5", res.Confidence)
	}
	if res.DetectLatency > 3*time.Second {
		t.Fatalf("detection took %v after key-on", res.DetectLatency)
	}
	if res.FalsePositives != 0 {
		t.Fatalf("%d false positives in the benign lead-in", res.FalsePositives)
	}
	if res.TelemetryAlarms == 0 || res.FusedAlarms == 0 {
		t.Fatalf("corroborating layers silent: telemetry=%d fused=%d",
			res.TelemetryAlarms, res.FusedAlarms)
	}
	if res.MaxSuspicion < 0.5 {
		t.Fatalf("latency suspicion peaked at %.2f under a servo-lock attack", res.MaxSuspicion)
	}
}

// Identical specs must produce byte-identical results — the campaign is
// the unit the experiment layer parallelizes over.
func TestFingerprintCampaignDeterministic(t *testing.T) {
	spec := FingerprintSpec{
		Ambient:  sig.NewAmbient(sig.AmbientShipTraffic, 4),
		Duration: 10 * time.Second,
		Seed:     4,
	}
	a, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reruns diverged:\n a: %+v\n b: %+v", a, b)
	}
}
