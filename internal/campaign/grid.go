package campaign

import (
	"context"
	"fmt"
	"time"

	"deepnote/internal/metrics"
	"deepnote/internal/parallel"
	"deepnote/internal/report"
)

// Grid sweeps the duty-cycle plane: every (On, Off) pair from the two
// axes is a full Stealth campaign, and the resulting matrix shows the
// attacker's damage/stealth trade-off at a glance. Cells are independent
// campaigns on independent rigs, so the grid fans out over the Workers
// pool; each cell's seed is derived with parallel.SeedFor from the base
// spec's seed and the cell index, making the whole grid reproducible
// bit-for-bit at any parallelism.
type Grid struct {
	// Base supplies everything except the duty cycle; its Seed is the
	// base seed each cell's seed is derived from.
	Base Stealth
	// OnValues and OffValues are the grid axes (burst length × quiet
	// gap). Zero-length axes get paper-flavoured defaults.
	OnValues, OffValues []time.Duration
	// Workers bounds how many cells run concurrently; ≤ 0 means one
	// worker per CPU.
	Workers int
	// Metrics receives engine, campaign, and per-layer counters when
	// non-nil; per-cell publishes merge commutatively, so the snapshot is
	// identical for any Workers value.
	Metrics *metrics.Registry
}

func (g Grid) withDefaults() Grid {
	if len(g.OnValues) == 0 {
		g.OnValues = []time.Duration{500 * time.Millisecond, 1 * time.Second, 2 * time.Second}
	}
	if len(g.OffValues) == 0 {
		g.OffValues = []time.Duration{0, 2 * time.Second, 10 * time.Second}
	}
	if g.Base.Seed == 0 {
		g.Base.Seed = 1
	}
	return g
}

// Run executes every cell of the grid and returns results in row-major
// order (OnValues outer, OffValues inner), identical for any Workers.
func (g Grid) Run() ([]Result, error) {
	g = g.withDefaults()
	type cell struct {
		duty DutyCycle
	}
	var cells []cell
	for _, on := range g.OnValues {
		for _, off := range g.OffValues {
			cells = append(cells, cell{duty: DutyCycle{On: on, Off: off}})
		}
	}
	return parallel.RunObserved(context.Background(), cells, g.Workers, g.Metrics,
		func(_ context.Context, i int, c cell) (Result, error) {
			s := g.Base
			s.Duty = c.duty
			s.Seed = parallel.SeedFor(g.Base.Seed, i)
			s.Metrics = g.Metrics
			res, err := s.Run()
			if err == nil {
				g.Metrics.Add("campaign.grid_cells", 1)
			}
			return res, err
		})
}

// GridReport renders the duty-cycle matrix.
func GridReport(rows []Result) *report.Table {
	tb := report.NewTable(
		"Duty-cycle grid: damage vs stealth",
		"On", "Off", "On-air", "Loss", "Alarms", "Max suspicion")
	for _, r := range rows {
		tb.AddRow(
			r.Spec.Duty.On.String(),
			r.Spec.Duty.Off.String(),
			fmt.Sprintf("%.0f%%", r.Spec.Duty.Fraction()*100),
			fmt.Sprintf("%.0f%%", r.LossFraction*100),
			fmt.Sprintf("%d", r.Alarms),
			fmt.Sprintf("%.2f", r.MaxSuspicion))
	}
	return tb
}
