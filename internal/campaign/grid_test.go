package campaign

import (
	"reflect"
	"testing"
	"time"
)

// testGrid is small enough to run many times in the determinism test but
// still covers the damage/stealth extremes (continuous vs 1:10 duty).
func testGrid(workers int) Grid {
	return Grid{
		Base:      Stealth{Duration: 12 * time.Second},
		OnValues:  []time.Duration{500 * time.Millisecond, 2 * time.Second},
		OffValues: []time.Duration{0, 5 * time.Second},
		Workers:   workers,
	}
}

func TestGridDeterministicAcrossWorkerCounts(t *testing.T) {
	ref, err := testGrid(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != 4 {
		t.Fatalf("cells = %d, want 4", len(ref))
	}
	for _, workers := range []int{2, 8} {
		got, err := testGrid(workers).Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: grid results diverge from serial run", workers)
		}
	}
}

func TestGridOrderingAndTradeoff(t *testing.T) {
	rows, err := testGrid(0).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Row-major order: OnValues outer, OffValues inner.
	wantDuty := [][2]time.Duration{
		{500 * time.Millisecond, 0},
		{500 * time.Millisecond, 5 * time.Second},
		{2 * time.Second, 0},
		{2 * time.Second, 5 * time.Second},
	}
	for i, r := range rows {
		if r.Spec.Duty.On != wantDuty[i][0] || r.Spec.Duty.Off != wantDuty[i][1] {
			t.Fatalf("cell %d duty = %+v, want %v", i, r.Spec.Duty, wantDuty[i])
		}
	}
	// The continuous 2 s-burst cell must out-damage the 1:10 stealth cell.
	if rows[2].LossFraction <= rows[3].LossFraction {
		t.Fatalf("continuous loss %.2f should exceed duty-cycled %.2f",
			rows[2].LossFraction, rows[3].LossFraction)
	}
	rep := GridReport(rows).String()
	if len(rep) == 0 {
		t.Fatal("empty grid report")
	}
}
