package campaign

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"deepnote/internal/metrics"
)

// metricsGrid is a small duty-cycle grid: 2×2 cells over a short campaign,
// fast enough for the workers × metrics determinism matrix below.
func metricsGrid(workers int, reg *metrics.Registry) Grid {
	return Grid{
		Base:      Stealth{Duration: 6 * time.Second},
		OnValues:  []time.Duration{500 * time.Millisecond, 2 * time.Second},
		OffValues: []time.Duration{0, 2 * time.Second},
		Workers:   workers,
		Metrics:   reg,
	}
}

// TestGridResultsIdenticalWithMetricsOnOff is the PR 2 acceptance
// convention: instrumentation must never perturb the simulation.
func TestGridResultsIdenticalWithMetricsOnOff(t *testing.T) {
	bare, err := metricsGrid(2, nil).Run()
	if err != nil {
		t.Fatal(err)
	}
	observed, err := metricsGrid(2, metrics.NewRegistry()).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, observed) {
		t.Fatal("metrics changed grid results")
	}
}

// TestGridSnapshotIdenticalAcrossWorkerCounts checks commutative
// aggregation: the snapshot is byte-identical no matter how the grid's
// cells were scheduled onto workers.
func TestGridSnapshotIdenticalAcrossWorkerCounts(t *testing.T) {
	var refRows []Result
	var refJSON []byte
	for i, workers := range []int{1, 2, 8} {
		reg := metrics.NewRegistry()
		rows, err := metricsGrid(workers, reg).Run()
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(reg.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			refRows, refJSON = rows, data
			continue
		}
		if !reflect.DeepEqual(rows, refRows) {
			t.Fatalf("grid rows differ at workers=%d", workers)
		}
		if string(data) != string(refJSON) {
			t.Fatalf("snapshot differs at workers=%d:\nref: %s\ngot: %s", workers, refJSON, data)
		}
	}
}

// TestGridPublishesCampaignAndStackLayers checks coverage: the grid's own
// accounting plus the victim rig's drive and disk layers all land in the
// registry, and the campaign counters agree with the returned rows.
func TestGridPublishesCampaignAndStackLayers(t *testing.T) {
	reg := metrics.NewRegistry()
	rows, err := metricsGrid(0, reg).Run()
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, want := range []string{"campaign", "hdd", "blockdev", "parallel"} {
		found := false
		for _, l := range snap.Layers() {
			if l == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("layer %q missing from %v", want, snap.Layers())
		}
	}
	if got := snap.Counters["campaign.grid_cells"]; got != int64(len(rows)) {
		t.Fatalf("campaign.grid_cells = %d, want %d", got, len(rows))
	}
	if got := snap.Counters["campaign.runs"]; got != int64(len(rows)) {
		t.Fatalf("campaign.runs = %d, want %d", got, len(rows))
	}
	var alarms, bursts int64
	for _, r := range rows {
		alarms += int64(r.Alarms)
	}
	if got := snap.Counters["campaign.alarms"]; got != alarms {
		t.Fatalf("campaign.alarms = %d, rows sum to %d", got, alarms)
	}
	if bursts = snap.Counters["campaign.bursts"]; bursts <= 0 {
		t.Fatalf("campaign.bursts = %d, want > 0", bursts)
	}
	var maxSus float64
	for _, r := range rows {
		if r.MaxSuspicion > maxSus {
			maxSus = r.MaxSuspicion
		}
	}
	if got := snap.Gauges["campaign.max_suspicion"]; got != maxSus {
		t.Fatalf("campaign.max_suspicion gauge = %v, rows max %v", got, maxSus)
	}
}
