package cluster

import (
	"testing"

	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// BenchmarkServe measures the traffic engine's shard-op throughput on a
// healthy 4-of-6 cluster: the number the continuous-benchmarking gate
// tracks across PRs. Reported as ns/op per *client request*; shard ops
// per request average ReadFraction·k + (1−ReadFraction)·n.
func BenchmarkServe(b *testing.B) {
	cfg := testConfig(0)
	cfg.Objects = 64
	cfg.ObjectSize = 16 << 10
	cfg.Layout = cfg.Layout.WithSpeakersAt(sig.NewTone(650*units.Hz), 0)
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Preload(); err != nil {
		b.Fatal(err)
	}
	c.SetSchedule([]ScheduleStep{{At: 0, Active: []bool{true}}})
	spec := testTraffic()
	spec.Requests = b.N
	spec.Rate = 1e6
	b.ResetTimer()
	res, err := c.Serve(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.ShardReads+res.ShardWrites), "shardops")
}
