package cluster

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"deepnote/internal/metrics"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// testConfig is a 4-of-6 cluster across six containers 2 m apart, one
// drive each, sized to run fast.
func testConfig(workers int) Config {
	return Config{
		Layout:       LineLayout(6, 2*units.Meter),
		DataShards:   4,
		ParityShards: 2,
		Objects:      24,
		ObjectSize:   8 << 10,
		Seed:         Ptr(int64(99)),
		Workers:      workers,
	}
}

func testTraffic() TrafficSpec {
	return TrafficSpec{Requests: 120, Rate: 2000, ReadFraction: Ptr(0.8)}
}

// serveWithSilenced builds the cluster, aims one point-blank speaker at
// each of the first `silenced` containers, keys them on for the whole
// run, and serves the standard workload.
func serveWithSilenced(t *testing.T, silenced, workers int) ServeResult {
	t.Helper()
	cfg := testConfig(workers)
	targets := make([]int, silenced)
	for i := range targets {
		targets[i] = i
	}
	cfg.Layout = cfg.Layout.WithSpeakersAt(sig.NewTone(650*units.Hz), targets...)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Preload(); err != nil {
		t.Fatal(err)
	}
	active := make([]bool, silenced)
	for i := range active {
		active[i] = true
	}
	c.SetSchedule([]ScheduleStep{{At: 0, Active: active}})
	res, err := c.Serve(testTraffic())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestClusterSurvivesUpToParityDomains is the acceptance criterion: a
// k-of-n cluster serves 100% of reads (degraded) with up to n−k = 2
// containers fully silenced, and loses availability only beyond that.
func TestClusterSurvivesUpToParityDomains(t *testing.T) {
	for silenced := 0; silenced <= 3; silenced++ {
		res := serveWithSilenced(t, silenced, 0)
		if res.CorruptReads != 0 {
			t.Fatalf("silenced=%d: %d corrupt reads", silenced, res.CorruptReads)
		}
		switch {
		case silenced <= 2:
			if got := res.GetAvailability(); got != 1 {
				t.Fatalf("silenced=%d: GET availability %.4f, want 1.0 (degraded reads must cover n−k domains)",
					silenced, got)
			}
			if got := res.PutAvailability(); got != 1 {
				t.Fatalf("silenced=%d: PUT availability %.4f, want 1.0", silenced, got)
			}
			if silenced == 0 && res.DegradedReads != 0 {
				t.Fatalf("healthy cluster reported %d degraded reads", res.DegradedReads)
			}
			if silenced > 0 && res.DegradedReads == 0 {
				t.Fatalf("silenced=%d: expected degraded reads, got none", silenced)
			}
			if silenced > 0 && (res.MinPutShards < 4 || res.MinPutShards >= 6) {
				t.Fatalf("silenced=%d: MinPutShards=%d, want in [4,6) (acked but below full redundancy)",
					silenced, res.MinPutShards)
			}
		default: // beyond the parity budget: stripes span all 6 containers
			if got := res.GetAvailability(); got != 0 {
				t.Fatalf("silenced=%d: GET availability %.4f, want 0 (loss must exceed parity budget)",
					silenced, got)
			}
			if got := res.PutAvailability(); got != 0 {
				t.Fatalf("silenced=%d: PUT availability %.4f, want 0", silenced, got)
			}
		}
	}
}

// TestClusterTailLatencyRisesWhenDegraded: serving from parity is slower
// — the attack is visible in the tail before availability breaks.
func TestClusterTailLatencyRisesWhenDegraded(t *testing.T) {
	healthy := serveWithSilenced(t, 0, 0)
	degraded := serveWithSilenced(t, 2, 0)
	if degraded.P99 <= healthy.P99 {
		t.Fatalf("degraded P99 %v not above healthy P99 %v", degraded.P99, healthy.P99)
	}
	if healthy.GoodputMBps <= 0 {
		t.Fatalf("healthy goodput %.3f MB/s, want > 0", healthy.GoodputMBps)
	}
}

// TestClusterReadRepairRuns: degraded reads trigger background repair
// writes for the shards they observed as lost.
func TestClusterReadRepairRuns(t *testing.T) {
	res := serveWithSilenced(t, 1, 0)
	if res.RepairWrites == 0 {
		t.Fatal("degraded run scheduled no read-repair writes")
	}
	if res.RepairWrites < res.RepairFailures {
		t.Fatalf("repair accounting inconsistent: %d writes < %d failures", res.RepairWrites, res.RepairFailures)
	}
}

// TestClusterServeDeterministicAcrossWorkers: byte-identical results and
// metrics snapshots at -workers 1/2/8, the PR 2 convention.
func TestClusterServeDeterministicAcrossWorkers(t *testing.T) {
	var base ServeResult
	var baseSnap []byte
	for i, workers := range []int{1, 2, 8} {
		cfg := testConfig(workers)
		cfg.Layout = cfg.Layout.WithSpeakersAt(sig.NewTone(650*units.Hz), 0, 1)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Preload(); err != nil {
			t.Fatal(err)
		}
		c.SetSchedule([]ScheduleStep{{At: 0, Active: []bool{true, true}}})
		res, err := c.Serve(testTraffic())
		if err != nil {
			t.Fatal(err)
		}
		reg := metrics.NewRegistry()
		c.PublishMetrics(reg)
		snap, err := json.Marshal(reg.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base, baseSnap = res, snap
			continue
		}
		if !reflect.DeepEqual(res, base) {
			t.Fatalf("workers=%d: ServeResult diverged:\n%+v\nvs workers=1:\n%+v", workers, res, base)
		}
		if !bytes.Equal(snap, baseSnap) {
			t.Fatalf("workers=%d: metrics snapshot diverged from workers=1", workers)
		}
	}
}

// TestClusterResultsIdenticalWithMetricsOnOff: publishing is pure
// observation.
func TestClusterResultsIdenticalWithMetricsOnOff(t *testing.T) {
	run := func(publish bool) ServeResult {
		cfg := testConfig(0)
		cfg.Layout = cfg.Layout.WithSpeakersAt(sig.NewTone(650*units.Hz), 0)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Preload(); err != nil {
			t.Fatal(err)
		}
		c.SetSchedule([]ScheduleStep{{At: 0, Active: []bool{true}}})
		res, err := c.Serve(testTraffic())
		if err != nil {
			t.Fatal(err)
		}
		if publish {
			c.PublishMetrics(metrics.NewRegistry())
		}
		return res
	}
	if bare, observed := run(false), run(true); !reflect.DeepEqual(bare, observed) {
		t.Fatalf("metrics publication changed results:\n%+v\nvs\n%+v", bare, observed)
	}
}

// TestClusterLayerCoverage: one serve populates every layer of the
// stack in the registry.
func TestClusterLayerCoverage(t *testing.T) {
	cfg := testConfig(0)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Preload(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Serve(testTraffic()); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	c.PublishMetrics(reg)
	snap := reg.Snapshot()
	for _, layer := range []string{"cluster", "hdd", "blockdev", "netstore"} {
		found := false
		for _, l := range snap.Layers() {
			if l == layer {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("layer %q missing from snapshot (have %v)", layer, snap.Layers())
		}
	}
}

// TestClusterRejectsTooFewContainers: stripes must span distinct failure
// domains.
func TestClusterRejectsTooFewContainers(t *testing.T) {
	cfg := testConfig(0)
	cfg.Layout = LineLayout(5, 2*units.Meter) // n = 6 > 5 containers
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted fewer containers than shards")
	}
}
