package cluster

import (
	"fmt"
	"sort"
	"time"

	"deepnote/internal/sched"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// SourceFix is one localized acoustic source as the surveillance layer
// (internal/sonar) reported it: when the fix became available, where the
// source is believed to be, how uncertain that belief is, and what tone
// it emits. The cluster consumes plain fixes rather than sonar types so
// the dependency points one way (sonar imports cluster for the layout).
type SourceFix struct {
	// At is the offset from serving start at which the fix became
	// available to the controller.
	At time.Duration
	// Pos is the estimated source position.
	Pos Vec3
	// Err is the scalar position uncertainty (one sigma); the predicted
	// blast radius conservatively assumes the source is Err closer to
	// each container than the estimate says.
	Err units.Distance
	// Tone is the emitted tone the fix was made on.
	Tone sig.Tone
	// Confidence is the detection layer's belief that the fix describes
	// a genuinely hostile source, in [0, 1] — typically the fused
	// fingerprint verdict's confidence. Zero means "unscored" and passes
	// any gate only when MinConfidence is unset or zero.
	Confidence float64
}

// DefenseSpec configures the closed-loop acoustic defense: localization
// fixes in, predicted blast radius out, GETs steered to shards outside
// the radius, and at-risk shards preemptively re-placed onto safe drives.
type DefenseSpec struct {
	// Fixes are the localization events, in any order.
	Fixes []SourceFix
	// Margin scales the at-risk threshold: a drive is inside the blast
	// radius when its predicted off-track amplitude reaches
	// Margin × ServoLockFrac. Nil means the default 0.5 — react well
	// before the drive actually loses servo lock; Ptr(0.0) is maximum
	// paranoia (every container with any predicted excitation is at
	// risk), which is a meaningful setting and therefore honored.
	Margin *float64
	// React is the controller lag between a fix arriving and the policy
	// switching: re-planning, rerouting tables, kicking off the
	// re-placement writes. Nil means the default 50 ms; Ptr(0) is an
	// idealized instant controller and is honored.
	React *time.Duration
	// MinConfidence gates escalation on the detection layer's verdict:
	// fixes whose Confidence falls below it are dropped before the plan
	// compiles, so a benign-noise misfire cannot trigger evacuations.
	// Nil means 0 (every fix escalates — the pre-fingerprint behavior);
	// must be in [0, 1].
	MinConfidence *float64
}

func (s DefenseSpec) withDefaults() DefenseSpec {
	if s.Margin == nil {
		s.Margin = Ptr(0.5)
	}
	if s.React == nil {
		s.React = Ptr(50 * time.Millisecond)
	}
	if s.MinConfidence == nil {
		s.MinConfidence = Ptr(0.0)
	}
	return s
}

// srcRef names one source for a shard read: the shard index in the low
// 16 bits, and either the home drive (alt = 0) or a replica on container
// alt−1 in the high bits.
type srcRef uint32

func homeRef(shard int) srcRef    { return srcRef(uint16(shard)) }
func altRef(shard, ct int) srcRef { return srcRef(uint16(shard)) | srcRef(ct+1)<<16 }
func (r srcRef) shard() int       { return int(uint16(r)) }
func (r srcRef) altContainer() (int, bool) {
	ct := int(r >> 16)
	return ct - 1, ct != 0
}

// evacOp is one planned preemptive shard re-placement: write the shard's
// bytes to a safe drive (as local object shard.object+Objects) the moment
// the owning phase activates.
type evacOp struct {
	at     int64 // activation offset (ns from origin)
	object int32
	shard  uint16
	drive  int32 // target drive index
	ok     bool  // outcome of the last Serve's write
}

// defensePhase is the policy in force from at until the next phase: which
// containers are inside the predicted blast radius, and the GET source
// order for every placement class.
type defensePhase struct {
	at     int64
	atRisk []bool // per container
	// orders[class] is the length-n GET source order: healthy sources
	// first (home drives outside the radius, then replicas of evacuated
	// at-risk shards), at-risk leftovers last. class encodes everything
	// placement depends on: (object mod C) and the drive slot.
	orders [][]srcRef
}

// defenseState is the compiled defense plan. It is computed once in
// SetDefense from the fixes and the layout — never from traffic — so the
// serving engine stays deterministic at any worker count.
type defenseState struct {
	spec    DefenseSpec
	phases  []defensePhase
	evacs   []evacOp
	skipped int // shard re-placements with no safe target container
}

// phaseFor returns the index of the phase in force at offset ns, or −1
// before the first activation.
func (d *defenseState) phaseFor(ns int64) int {
	p := sort.Search(len(d.phases), func(i int) bool { return d.phases[i].at > ns }) - 1
	return p
}

// class collapses an object to its placement class: objects with the same
// (o mod C, slot) see identical container geometry, so defense orders and
// evacuation targets are computed once per class and shared.
func (c *Cluster) class(o int) int {
	C := len(c.cfg.Layout.Containers)
	return (o%C)*c.cfg.DrivesPerContainer + (o/C)%c.cfg.DrivesPerContainer
}

// defenseOrder returns the GET source order for a request, or nil when
// the request predates the first defense phase (or defense is off) and
// the engine should use the identity order.
func (c *Cluster) defenseOrder(r *reqState) []srcRef {
	if c.defense == nil || r.phase == 0 {
		return nil
	}
	return c.defense.phases[r.phase-1].orders[c.class(int(r.object))]
}

// resolveSource maps one source reference for a request to the drive to
// queue on, the shard it yields, and the event flag (evReplica when the
// source is a defense replica rather than the shard's home).
func (c *Cluster) resolveSource(r *reqState, ref srcRef) (drive, shard int, flags uint8) {
	j := ref.shard()
	if ct, ok := ref.altContainer(); ok {
		slot := (int(r.object) / len(c.cfg.Layout.Containers)) % c.cfg.DrivesPerContainer
		return ct*c.cfg.DrivesPerContainer + slot, j, evReplica
	}
	return c.shardDrive(int(r.object), j), j, 0
}

// SetDefense compiles the closed-loop defense plan from localization
// fixes. Each fix activates a phase React after it arrives: the predicted
// blast radius is evaluated against every drive through the same cached
// transfer-function machinery the attack simulation uses (conservatively
// moving the source Err closer), at-risk containers accumulate across
// phases (a region once predicted hot stays hot — the attacker does not
// un-ring the bell), GET source orders are rebuilt per phase, and one
// re-placement write is planned for every shard whose home — or whose
// earlier replica — fell inside the radius. Passing an empty fix list
// disables the defense.
//
// The plan depends only on the layout, the fixes, and the erasure
// geometry; Serve replays it deterministically at any worker count.
func (c *Cluster) SetDefense(spec DefenseSpec) error {
	if len(spec.Fixes) == 0 {
		c.defense = nil
		return nil
	}
	spec = spec.withDefaults()
	if mc := *spec.MinConfidence; mc < 0 || mc > 1 {
		return fmt.Errorf("cluster: MinConfidence %g must be in [0, 1]", mc)
	}
	fixes := make([]SourceFix, 0, len(spec.Fixes))
	for _, fx := range spec.Fixes {
		if fx.Confidence >= *spec.MinConfidence {
			fixes = append(fixes, fx)
		}
	}
	if len(fixes) == 0 {
		// Every fix fell below the confidence gate: nothing escalates.
		c.defense = nil
		return nil
	}
	sort.SliceStable(fixes, func(i, j int) bool { return fixes[i].At < fixes[j].At })
	spec.Fixes = fixes

	// Predicted blast amplitude per (fix, drive), cached once like the
	// per-(speaker, drive) attack transfer functions.
	var tf sched.TransferCache
	tf.Ensure(len(fixes), len(c.drives), func(f, di int) float64 {
		d := c.drives[di]
		_, amp := c.cfg.Layout.PredictedAmp(fixes[f].Pos, fixes[f].Err, fixes[f].Tone, d.container, d.asm, c.model)
		return amp
	})
	threshold := *spec.Margin * c.model.ServoLockFrac

	C := len(c.cfg.Layout.Containers)
	dpc := c.cfg.DrivesPerContainer
	n := c.coder.TotalShards()
	classes := C * dpc

	ds := &defenseState{spec: spec}

	// Coalesce fixes into phases (simultaneous activations merge), with
	// the at-risk container set accumulating.
	hot := make([]bool, C)
	for f := 0; f < len(fixes); {
		at := int64(fixes[f].At + *spec.React)
		for f < len(fixes) && int64(fixes[f].At+*spec.React) == at {
			for di := range c.drives {
				if tf.Gain(f, di) >= threshold {
					hot[c.drives[di].container] = true
				}
			}
			f++
		}
		ds.phases = append(ds.phases, defensePhase{at: at, atRisk: append([]bool(nil), hot...)})
	}
	if len(ds.phases) > 255 {
		return fmt.Errorf("cluster: defense plan has %d phases, max 255", len(ds.phases))
	}

	// Per-class planning: track each shard's current replica container
	// across phases, plan re-placements, and build the source orders.
	replicaCt := make([][]int, classes)
	for cl := range replicaCt {
		replicaCt[cl] = make([]int, n)
		for j := range replicaCt[cl] {
			replicaCt[cl][j] = -1
		}
	}
	type classEvac struct{ shard, targetCt int }
	classEvacs := make([][][]classEvac, len(ds.phases)) // [phase][class]
	for p := range ds.phases {
		ph := &ds.phases[p]
		ph.orders = make([][]srcRef, classes)
		classEvacs[p] = make([][]classEvac, classes)
		for cl := 0; cl < classes; cl++ {
			ctBase := cl / dpc
			rep := replicaCt[cl]
			// Plan re-placements: shards whose home is hot and whose
			// replica is missing or has itself gone hot.
			for j := 0; j < n; j++ {
				if !ph.atRisk[(ctBase+j)%C] {
					continue
				}
				if rc := rep[j]; rc >= 0 && !ph.atRisk[rc] {
					continue
				}
				target := pickEvacTarget(ctBase, rep, ph.atRisk, C, n)
				if target < 0 {
					rep[j] = -1
					classEvacs[p][cl] = append(classEvacs[p][cl], classEvac{shard: j, targetCt: -1})
					continue
				}
				rep[j] = target
				classEvacs[p][cl] = append(classEvacs[p][cl], classEvac{shard: j, targetCt: target})
			}
			// Source order: healthy sources in shard order, then the
			// at-risk leftovers. Every shard appears exactly once.
			order := make([]srcRef, 0, n)
			for j := 0; j < n; j++ {
				switch {
				case !ph.atRisk[(ctBase+j)%C]:
					order = append(order, homeRef(j))
				case rep[j] >= 0 && !ph.atRisk[rep[j]]:
					order = append(order, altRef(j, rep[j]))
				}
			}
			for j := 0; j < n; j++ {
				if ph.atRisk[(ctBase+j)%C] && !(rep[j] >= 0 && !ph.atRisk[rep[j]]) {
					order = append(order, homeRef(j))
				}
			}
			ph.orders[cl] = order
		}
	}

	// Expand class-level re-placements to concrete per-object writes, in
	// deterministic (phase, object, shard) order.
	for p := range ds.phases {
		for o := 0; o < c.cfg.Objects; o++ {
			cl := c.class(o)
			slot := (o / C) % dpc
			for _, ce := range classEvacs[p][cl] {
				if ce.targetCt < 0 {
					ds.skipped++
					continue
				}
				ds.evacs = append(ds.evacs, evacOp{
					at:     ds.phases[p].at,
					object: int32(o),
					shard:  uint16(ce.shard),
					drive:  int32(ce.targetCt*dpc + slot),
				})
			}
		}
	}

	c.defense = ds
	return nil
}

// Defended reports whether a defense plan is active.
func (c *Cluster) Defended() bool { return c.defense != nil }

// DefenseFixes returns the fixes the active plan compiled from — after
// the confidence gate, sorted by arrival. Nil when defense is off.
func (c *Cluster) DefenseFixes() []SourceFix {
	if c.defense == nil {
		return nil
	}
	return c.defense.spec.Fixes
}

// DefenseEvacsPlanned returns how many re-placement writes the plan
// schedules (and how many shards had no safe target).
func (c *Cluster) DefenseEvacsPlanned() (planned, skipped int) {
	if c.defense == nil {
		return 0, 0
	}
	return len(c.defense.evacs), c.defense.skipped
}

// pickEvacTarget chooses the container to host a replica for one shard of
// placement class ctBase: the first container, scanning upward from just
// past the stripe's home span, that is outside the blast radius and not
// already holding a replica of this object — preferring containers that
// hold no shard of the object at all (replicas keep full failure-domain
// separation when spare containers exist, and only co-locate with another
// shard when the stripe already spans every container). Returns −1 when
// every candidate is inside the radius.
func pickEvacTarget(ctBase int, replicaCt []int, atRisk []bool, C, n int) int {
	taken := func(ct int) bool {
		for _, rc := range replicaCt {
			if rc == ct {
				return true
			}
		}
		return false
	}
	for pass := 0; pass < 2; pass++ {
		for d := 0; d < C; d++ {
			ct := (ctBase + n + d) % C
			if atRisk[ct] || taken(ct) {
				continue
			}
			if pass == 0 && ((ct-ctBase)%C+C)%C < n {
				continue // hosts a shard of this object; prefer spares
			}
			return ct
		}
	}
	return -1
}
