package cluster

import (
	"reflect"
	"testing"
	"time"

	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// defenseScenario builds the PR 5 one-speaker-past-the-cliff scenario
// with staged escalation: 4+2 over six containers, speakers pressed
// against containers 0, 1, 2 keying on one at a time. Three silenced
// failure domains exceed the parity budget, so defense-off reads start
// hard-failing after the third key-on.
func defenseScenario(t *testing.T, workers int, defended bool) (*Cluster, ServeResult) {
	t.Helper()
	tone := sig.NewTone(650 * units.Hz)
	lay := LineLayout(6, 2*units.Meter).WithSpeakersAt(tone, 0, 1, 2)
	c, err := New(Config{
		Layout:     lay,
		DataShards: 4, ParityShards: 2,
		Objects: 24, ObjectSize: 16 << 10,
		Seed:    Ptr(int64(7)),
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Preload(); err != nil {
		t.Fatal(err)
	}
	// Staged escalation over a 1.2 s client window (600 req @ 500/s):
	// key-ons at 0.3, 0.6, 0.9 s.
	steps := []ScheduleStep{
		{At: 300 * time.Millisecond, Active: []bool{true, false, false}},
		{At: 600 * time.Millisecond, Active: []bool{true, true, false}},
		{At: 900 * time.Millisecond, Active: []bool{true, true, true}},
	}
	c.SetSchedule(steps)
	if defended {
		// Hand-built fixes standing in for the sonar layer: each key-on
		// localized to the true speaker position with a 20 cm error
		// radius, available 120 ms after the onset (propagation + one
		// processing window).
		var fixes []SourceFix
		for i, st := range steps {
			fixes = append(fixes, SourceFix{
				At:   st.At + 120*time.Millisecond,
				Pos:  lay.Speakers[i].Pos,
				Err:  20 * units.Centimeter,
				Tone: tone,
			})
		}
		if err := c.SetDefense(DefenseSpec{Fixes: fixes}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Serve(TrafficSpec{Requests: 600, Rate: 500, Seed: Ptr(int64(11))})
	if err != nil {
		t.Fatal(err)
	}
	return c, res
}

// TestDefenseImprovesAvailabilityPastCliff is the acceptance scenario:
// under staged escalation one speaker past the parity budget, the closed
// loop must measurably improve GET availability over defense-off, with
// zero corrupt serves either way.
func TestDefenseImprovesAvailabilityPastCliff(t *testing.T) {
	_, off := defenseScenario(t, 0, false)
	con, on := defenseScenario(t, 0, true)

	if off.CorruptReads != 0 || on.CorruptReads != 0 {
		t.Fatalf("corrupt reads: off=%d on=%d, want 0", off.CorruptReads, on.CorruptReads)
	}
	if off.GetFailures == 0 {
		t.Fatalf("defense-off saw no GET failures — the scenario never went past the cliff")
	}
	offAvail, onAvail := off.GetAvailability(), on.GetAvailability()
	if onAvail <= offAvail {
		t.Fatalf("defense did not improve GET availability: off %.4f, on %.4f", offAvail, onAvail)
	}
	if onAvail-offAvail < 0.05 {
		t.Fatalf("defense improvement not measurable: off %.4f, on %.4f", offAvail, onAvail)
	}
	if !con.Defended() {
		t.Fatalf("Defended() false after SetDefense")
	}
	if on.EvacWrites == 0 || on.ReplicaReads == 0 || on.SteeredGets == 0 {
		t.Fatalf("defense machinery idle: evacs=%d replicaReads=%d steered=%d",
			on.EvacWrites, on.ReplicaReads, on.SteeredGets)
	}
	if planned, _ := con.DefenseEvacsPlanned(); planned != on.EvacWrites {
		t.Fatalf("EvacWrites %d != planned %d", on.EvacWrites, planned)
	}
	// Defense-off must report none of the defense counters.
	if off.SteeredGets+off.ReplicaReads+off.ReplicaReadErrors+off.EvacWrites+off.EvacFailures+off.EvacSkipped != 0 {
		t.Fatalf("defense-off run reported defense activity: %+v", off)
	}
}

// TestDefenseDeterministicAcrossWorkers runs the defended scenario at
// several worker counts and requires byte-identical results.
func TestDefenseDeterministicAcrossWorkers(t *testing.T) {
	_, base := defenseScenario(t, 1, true)
	for _, w := range []int{2, 8} {
		if _, res := defenseScenario(t, w, true); !reflect.DeepEqual(base, res) {
			t.Fatalf("workers=%d diverged from workers=1:\n 1: %+v\n %d: %+v", w, base, w, res)
		}
	}
}

// TestDefenseEmptyFixesDisables checks SetDefense([]) returns the
// cluster to the exact defense-off behavior.
func TestDefenseEmptyFixesDisables(t *testing.T) {
	_, off := defenseScenario(t, 0, false)

	tone := sig.NewTone(650 * units.Hz)
	lay := LineLayout(6, 2*units.Meter).WithSpeakersAt(tone, 0, 1, 2)
	c, err := New(Config{
		Layout:     lay,
		DataShards: 4, ParityShards: 2,
		Objects: 24, ObjectSize: 16 << 10,
		Seed: Ptr(int64(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Preload(); err != nil {
		t.Fatal(err)
	}
	c.SetSchedule([]ScheduleStep{
		{At: 300 * time.Millisecond, Active: []bool{true, false, false}},
		{At: 600 * time.Millisecond, Active: []bool{true, true, false}},
		{At: 900 * time.Millisecond, Active: []bool{true, true, true}},
	})
	if err := c.SetDefense(DefenseSpec{Fixes: []SourceFix{{At: time.Second}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetDefense(DefenseSpec{}); err != nil {
		t.Fatal(err)
	}
	if c.Defended() {
		t.Fatalf("Defended() true after SetDefense with no fixes")
	}
	res, err := c.Serve(TrafficSpec{Requests: 600, Rate: 500, Seed: Ptr(int64(11))})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(off, res) {
		t.Fatalf("disabled defense diverged from never-enabled:\n off: %+v\n res: %+v", off, res)
	}
}

// TestDefenseReEvacuatesWhenReplicaTargetGoesHotTwice drives the planner
// through two successive losses of the same shard's replica: the blast
// radius first swallows the shard's home, then the chosen evac target,
// then the re-chosen target, and each escalation must produce a fresh
// re-placement onto a container that is safe in that phase — with the
// final source order pointing at the last replica, not a stale one.
func TestDefenseReEvacuatesWhenReplicaTargetGoesHotTwice(t *testing.T) {
	tone := sig.NewTone(650 * units.Hz)
	// Eight containers, 4+2 stripes: objects of class 0 stripe across
	// containers 0-5, leaving 6 and 7 as spares. The attacker walks the
	// spares: speakers pressed against containers 0, 6, 7 key on in
	// stages, so shard 0's home goes hot, then its replica on the first
	// spare, then the replica's replica on the second.
	lay := LineLayout(8, 2*units.Meter).WithSpeakersAt(tone, 0, 6, 7)
	c, err := New(Config{
		Layout:     lay,
		DataShards: 4, ParityShards: 2,
		Objects: 16, ObjectSize: 16 << 10,
		Seed: Ptr(int64(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	var fixes []SourceFix
	for i, at := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond} {
		fixes = append(fixes, SourceFix{
			At: at, Pos: lay.Speakers[i].Pos, Err: 20 * units.Centimeter, Tone: tone,
		})
	}
	if err := c.SetDefense(DefenseSpec{Fixes: fixes, React: Ptr(time.Duration(0))}); err != nil {
		t.Fatal(err)
	}
	ds := c.defense
	if ds == nil || len(ds.phases) != 3 {
		t.Fatalf("want 3 phases, got %+v", ds)
	}
	// Object 0 is class 0 (home of shard 0 = container 0). Its shard-0
	// re-placements, in phase order.
	var targets []int
	for _, ev := range ds.evacs {
		if ev.object == 0 && ev.shard == 0 {
			ct := c.drives[ev.drive].container
			p := ds.phaseFor(ev.at)
			if ds.phases[p].atRisk[ct] {
				t.Fatalf("re-placement %d of shard 0 targets container %d inside the phase-%d radius", len(targets), ct, p)
			}
			targets = append(targets, ct)
		}
	}
	if len(targets) != 3 {
		t.Fatalf("shard 0 re-placed %d times (targets %v), want 3 (initial + twice re-evacuated)", len(targets), targets)
	}
	if targets[0] != 6 || targets[1] != 7 {
		t.Fatalf("replica walk %v, want spares 6 then 7 first", targets)
	}
	if targets[2] == 0 || targets[2] == 6 || targets[2] == 7 {
		t.Fatalf("final replica landed back inside the radius: %v", targets)
	}
	// The final phase's GET order must reference the final replica for
	// shard 0, before any at-risk leftovers.
	order := ds.phases[2].orders[c.class(0)]
	found := false
	for _, ref := range order {
		if ref.shard() != 0 {
			continue
		}
		ct, alt := ref.altContainer()
		if !alt || ct != targets[2] {
			t.Fatalf("final order references shard 0 via container %d (alt=%v), want replica on %d", ct, alt, targets[2])
		}
		found = true
		break
	}
	if !found {
		t.Fatalf("shard 0 missing from final source order %v", order)
	}
}

// TestDefenseSpecZeroFieldsHonored pins the pointer-field zero-vs-unset
// contract: an explicit zero React (instant controller) must activate
// the phase exactly at the fix time instead of being silently replaced
// by the 50 ms default, and an explicit zero Margin (maximum paranoia)
// must mark every excited container at risk.
func TestDefenseSpecZeroFieldsHonored(t *testing.T) {
	tone := sig.NewTone(650 * units.Hz)
	lay := LineLayout(6, 2*units.Meter).WithSpeakersAt(tone, 0)
	build := func() *Cluster {
		c, err := New(Config{
			Layout:     lay,
			DataShards: 4, ParityShards: 2,
			Objects: 24, ObjectSize: 16 << 10,
			Seed: Ptr(int64(7)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	fix := SourceFix{
		At:  300 * time.Millisecond,
		Pos: lay.Speakers[0].Pos,
		Err: 20 * units.Centimeter, Tone: tone,
	}

	c := build()
	if err := c.SetDefense(DefenseSpec{Fixes: []SourceFix{fix}}); err != nil {
		t.Fatal(err)
	}
	wantDefault := int64(fix.At + 50*time.Millisecond)
	if got := c.defense.phases[0].at; got != wantDefault {
		t.Fatalf("nil React: phase at %d ns, want fix + 50ms default = %d", got, wantDefault)
	}
	defaultHot := 0
	for _, hot := range c.defense.phases[0].atRisk {
		if hot {
			defaultHot++
		}
	}

	c = build()
	if err := c.SetDefense(DefenseSpec{Fixes: []SourceFix{fix}, React: Ptr(time.Duration(0))}); err != nil {
		t.Fatal(err)
	}
	if got := c.defense.phases[0].at; got != int64(fix.At) {
		t.Fatalf("explicit zero React replaced by default: phase at %d ns, want %d", got, int64(fix.At))
	}

	c = build()
	if err := c.SetDefense(DefenseSpec{Fixes: []SourceFix{fix}, Margin: Ptr(0.0)}); err != nil {
		t.Fatal(err)
	}
	zeroHot := 0
	for _, hot := range c.defense.phases[0].atRisk {
		if hot {
			zeroHot++
		}
	}
	if zeroHot != len(lay.Containers) {
		t.Fatalf("explicit zero Margin: %d/%d containers at risk, want all", zeroHot, len(lay.Containers))
	}
	if defaultHot >= zeroHot {
		t.Fatalf("default Margin marks %d containers hot, zero Margin %d — defaulting is not distinguishing them", defaultHot, zeroHot)
	}
}

// TestDefenseEvacTargetsAvoidBlastRadius checks the compiled plan never
// re-places a shard onto a container inside the predicted radius at the
// phase the write happens.
func TestDefenseEvacTargetsAvoidBlastRadius(t *testing.T) {
	con, _ := defenseScenario(t, 0, true)
	ds := con.defense
	if ds == nil {
		t.Fatal("no defense plan")
	}
	if len(ds.phases) != 3 {
		t.Fatalf("got %d phases, want 3 (one per staged fix)", len(ds.phases))
	}
	for _, ev := range ds.evacs {
		p := ds.phaseFor(ev.at)
		if p < 0 {
			t.Fatalf("evac at %d ns predates every phase", ev.at)
		}
		ct := con.drives[ev.drive].container
		if ds.phases[p].atRisk[ct] {
			t.Fatalf("evac of object %d shard %d targets container %d inside the phase-%d blast radius",
				ev.object, ev.shard, ct, p)
		}
	}
	// Escalation must accumulate: each phase's radius contains the last.
	for p := 1; p < len(ds.phases); p++ {
		for ct, hot := range ds.phases[p-1].atRisk {
			if hot && !ds.phases[p].atRisk[ct] {
				t.Fatalf("container %d left the blast radius between phases %d and %d", ct, p-1, p)
			}
		}
	}
}

// TestDefenseConfidenceGate: fixes below MinConfidence must not escalate
// the defense — a benign-noise misfire from the detection layer cannot
// trigger evacuations — while high-confidence fixes still compile into a
// plan. This is the fingerprint-verdict gate on SetDefense.
func TestDefenseConfidenceGate(t *testing.T) {
	tone := sig.NewTone(650 * units.Hz)
	lay := LineLayout(6, 2*units.Meter).WithSpeakersAt(tone, 0)
	c, err := New(Config{
		Layout:     lay,
		DataShards: 4, ParityShards: 2,
		Objects: 24, ObjectSize: 16 << 10,
		Seed: Ptr(int64(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Preload(); err != nil {
		t.Fatal(err)
	}
	low := SourceFix{At: 100 * time.Millisecond, Pos: lay.Speakers[0].Pos,
		Err: 20 * units.Centimeter, Tone: tone, Confidence: 0.2}
	high := low
	high.At, high.Confidence = 200*time.Millisecond, 0.9

	// All fixes below the gate: the defense never arms.
	if err := c.SetDefense(DefenseSpec{Fixes: []SourceFix{low}, MinConfidence: Ptr(0.5)}); err != nil {
		t.Fatal(err)
	}
	if c.Defended() || c.DefenseFixes() != nil {
		t.Fatal("low-confidence fix escalated the defense")
	}
	// Mixed: only the high-confidence fix survives the gate.
	if err := c.SetDefense(DefenseSpec{Fixes: []SourceFix{low, high}, MinConfidence: Ptr(0.5)}); err != nil {
		t.Fatal(err)
	}
	if !c.Defended() {
		t.Fatal("high-confidence fix did not arm the defense")
	}
	if got := c.DefenseFixes(); len(got) != 1 || got[0].Confidence != 0.9 {
		t.Fatalf("DefenseFixes() = %+v, want only the 0.9-confidence fix", got)
	}
	// Nil gate keeps the pre-fingerprint behavior: unscored fixes pass.
	if err := c.SetDefense(DefenseSpec{Fixes: []SourceFix{{At: time.Second, Pos: lay.Speakers[0].Pos,
		Err: 20 * units.Centimeter, Tone: tone}}}); err != nil {
		t.Fatal(err)
	}
	if !c.Defended() || len(c.DefenseFixes()) != 1 {
		t.Fatal("unscored fix rejected with no gate configured")
	}
	// Out-of-range gates are rejected, not clamped.
	for _, mc := range []float64{-0.1, 1.5} {
		if err := c.SetDefense(DefenseSpec{Fixes: []SourceFix{high}, MinConfidence: Ptr(mc)}); err == nil {
			t.Fatalf("MinConfidence %g accepted", mc)
		}
	}
}
