package cluster

import (
	"reflect"
	"testing"
	"time"

	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// defenseScenario builds the PR 5 one-speaker-past-the-cliff scenario
// with staged escalation: 4+2 over six containers, speakers pressed
// against containers 0, 1, 2 keying on one at a time. Three silenced
// failure domains exceed the parity budget, so defense-off reads start
// hard-failing after the third key-on.
func defenseScenario(t *testing.T, workers int, defended bool) (*Cluster, ServeResult) {
	t.Helper()
	tone := sig.NewTone(650 * units.Hz)
	lay := LineLayout(6, 2*units.Meter).WithSpeakersAt(tone, 0, 1, 2)
	c, err := New(Config{
		Layout:     lay,
		DataShards: 4, ParityShards: 2,
		Objects: 24, ObjectSize: 16 << 10,
		Seed:    Ptr(int64(7)),
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Preload(); err != nil {
		t.Fatal(err)
	}
	// Staged escalation over a 1.2 s client window (600 req @ 500/s):
	// key-ons at 0.3, 0.6, 0.9 s.
	steps := []ScheduleStep{
		{At: 300 * time.Millisecond, Active: []bool{true, false, false}},
		{At: 600 * time.Millisecond, Active: []bool{true, true, false}},
		{At: 900 * time.Millisecond, Active: []bool{true, true, true}},
	}
	c.SetSchedule(steps)
	if defended {
		// Hand-built fixes standing in for the sonar layer: each key-on
		// localized to the true speaker position with a 20 cm error
		// radius, available 120 ms after the onset (propagation + one
		// processing window).
		var fixes []SourceFix
		for i, st := range steps {
			fixes = append(fixes, SourceFix{
				At:   st.At + 120*time.Millisecond,
				Pos:  lay.Speakers[i].Pos,
				Err:  20 * units.Centimeter,
				Tone: tone,
			})
		}
		if err := c.SetDefense(DefenseSpec{Fixes: fixes}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Serve(TrafficSpec{Requests: 600, Rate: 500, Seed: Ptr(int64(11))})
	if err != nil {
		t.Fatal(err)
	}
	return c, res
}

// TestDefenseImprovesAvailabilityPastCliff is the acceptance scenario:
// under staged escalation one speaker past the parity budget, the closed
// loop must measurably improve GET availability over defense-off, with
// zero corrupt serves either way.
func TestDefenseImprovesAvailabilityPastCliff(t *testing.T) {
	_, off := defenseScenario(t, 0, false)
	con, on := defenseScenario(t, 0, true)

	if off.CorruptReads != 0 || on.CorruptReads != 0 {
		t.Fatalf("corrupt reads: off=%d on=%d, want 0", off.CorruptReads, on.CorruptReads)
	}
	if off.GetFailures == 0 {
		t.Fatalf("defense-off saw no GET failures — the scenario never went past the cliff")
	}
	offAvail, onAvail := off.GetAvailability(), on.GetAvailability()
	if onAvail <= offAvail {
		t.Fatalf("defense did not improve GET availability: off %.4f, on %.4f", offAvail, onAvail)
	}
	if onAvail-offAvail < 0.05 {
		t.Fatalf("defense improvement not measurable: off %.4f, on %.4f", offAvail, onAvail)
	}
	if !con.Defended() {
		t.Fatalf("Defended() false after SetDefense")
	}
	if on.EvacWrites == 0 || on.ReplicaReads == 0 || on.SteeredGets == 0 {
		t.Fatalf("defense machinery idle: evacs=%d replicaReads=%d steered=%d",
			on.EvacWrites, on.ReplicaReads, on.SteeredGets)
	}
	if planned, _ := con.DefenseEvacsPlanned(); planned != on.EvacWrites {
		t.Fatalf("EvacWrites %d != planned %d", on.EvacWrites, planned)
	}
	// Defense-off must report none of the defense counters.
	if off.SteeredGets+off.ReplicaReads+off.ReplicaReadErrors+off.EvacWrites+off.EvacFailures+off.EvacSkipped != 0 {
		t.Fatalf("defense-off run reported defense activity: %+v", off)
	}
}

// TestDefenseDeterministicAcrossWorkers runs the defended scenario at
// several worker counts and requires byte-identical results.
func TestDefenseDeterministicAcrossWorkers(t *testing.T) {
	_, base := defenseScenario(t, 1, true)
	for _, w := range []int{2, 8} {
		if _, res := defenseScenario(t, w, true); !reflect.DeepEqual(base, res) {
			t.Fatalf("workers=%d diverged from workers=1:\n 1: %+v\n %d: %+v", w, base, w, res)
		}
	}
}

// TestDefenseEmptyFixesDisables checks SetDefense([]) returns the
// cluster to the exact defense-off behavior.
func TestDefenseEmptyFixesDisables(t *testing.T) {
	_, off := defenseScenario(t, 0, false)

	tone := sig.NewTone(650 * units.Hz)
	lay := LineLayout(6, 2*units.Meter).WithSpeakersAt(tone, 0, 1, 2)
	c, err := New(Config{
		Layout:     lay,
		DataShards: 4, ParityShards: 2,
		Objects: 24, ObjectSize: 16 << 10,
		Seed: Ptr(int64(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Preload(); err != nil {
		t.Fatal(err)
	}
	c.SetSchedule([]ScheduleStep{
		{At: 300 * time.Millisecond, Active: []bool{true, false, false}},
		{At: 600 * time.Millisecond, Active: []bool{true, true, false}},
		{At: 900 * time.Millisecond, Active: []bool{true, true, true}},
	})
	if err := c.SetDefense(DefenseSpec{Fixes: []SourceFix{{At: time.Second}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetDefense(DefenseSpec{}); err != nil {
		t.Fatal(err)
	}
	if c.Defended() {
		t.Fatalf("Defended() true after SetDefense with no fixes")
	}
	res, err := c.Serve(TrafficSpec{Requests: 600, Rate: 500, Seed: Ptr(int64(11))})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(off, res) {
		t.Fatalf("disabled defense diverged from never-enabled:\n off: %+v\n res: %+v", off, res)
	}
}

// TestDefenseEvacTargetsAvoidBlastRadius checks the compiled plan never
// re-places a shard onto a container inside the predicted radius at the
// phase the write happens.
func TestDefenseEvacTargetsAvoidBlastRadius(t *testing.T) {
	con, _ := defenseScenario(t, 0, true)
	ds := con.defense
	if ds == nil {
		t.Fatal("no defense plan")
	}
	if len(ds.phases) != 3 {
		t.Fatalf("got %d phases, want 3 (one per staged fix)", len(ds.phases))
	}
	for _, ev := range ds.evacs {
		p := ds.phaseFor(ev.at)
		if p < 0 {
			t.Fatalf("evac at %d ns predates every phase", ev.at)
		}
		ct := con.drives[ev.drive].container
		if ds.phases[p].atRisk[ct] {
			t.Fatalf("evac of object %d shard %d targets container %d inside the phase-%d blast radius",
				ev.object, ev.shard, ct, p)
		}
	}
	// Escalation must accumulate: each phase's radius contains the last.
	for p := 1; p < len(ds.phases); p++ {
		for ct, hot := range ds.phases[p-1].atRisk {
			if hot && !ds.phases[p].atRisk[ct] {
				t.Fatalf("container %d left the blast radius between phases %d and %d", ct, p-1, p)
			}
		}
	}
}
