// Package cluster simulates a full underwater datacenter: containers and
// attacker speakers placed in 3-D space, every speaker→drive pair routed
// through the water/acoustics/enclosure chain, and a sharded
// erasure-coded object store layered over per-drive blockdev/netstore
// stacks that serves open-loop client traffic on the virtual clock. It is
// the facility-scale victim the paper's introduction frames: an adversary
// does not silence one Barracuda in a tank, they try to silence a
// redundant cluster.
package cluster

import (
	"errors"
	"fmt"

	"deepnote/internal/gf"
)

// Erasure coding errors.
var (
	// ErrShardCount reports an invalid k/m split.
	ErrShardCount = errors.New("cluster: invalid shard counts")
	// ErrTooFewShards means fewer than k shards survive, so the stripe is
	// unrecoverable.
	ErrTooFewShards = errors.New("cluster: too few shards to reconstruct")
	// ErrShardSize reports inconsistent shard sizes.
	ErrShardSize = errors.New("cluster: inconsistent shard sizes")
)

// Coder is a systematic k-of-n Reed–Solomon coder built from a Cauchy
// matrix over GF(256). The encoding matrix is [I_k ; C] with
// C[i][j] = 1/(x_i ⊕ y_j) for distinct x_i = k+i and y_j = j; every
// square submatrix of a Cauchy matrix is nonsingular, so any k of the n
// shards reconstruct the stripe (the MDS property).
type Coder struct {
	data, parity int
	// cauchy is the m×k parity block of the encoding matrix.
	cauchy [][]byte
}

// NewCoder builds a coder with k data and m parity shards.
func NewCoder(dataShards, parityShards int) (*Coder, error) {
	k, m := dataShards, parityShards
	if k < 1 || m < 1 || k+m > 256 {
		return nil, fmt.Errorf("%w: data=%d parity=%d", ErrShardCount, k, m)
	}
	c := &Coder{data: k, parity: m, cauchy: make([][]byte, m)}
	for i := 0; i < m; i++ {
		c.cauchy[i] = make([]byte, k)
		for j := 0; j < k; j++ {
			c.cauchy[i][j] = gf.Inv(byte(k+i) ^ byte(j))
		}
	}
	return c, nil
}

// DataShards returns k.
func (c *Coder) DataShards() int { return c.data }

// ParityShards returns m.
func (c *Coder) ParityShards() int { return c.parity }

// TotalShards returns n = k+m.
func (c *Coder) TotalShards() int { return c.data + c.parity }

// ShardSize returns the per-shard size for an object of the given size:
// ceil(objectSize/k), so the stripe covers the object with zero padding
// in the last data shard.
func (c *Coder) ShardSize(objectSize int) int {
	return (objectSize + c.data - 1) / c.data
}

// encodingRow returns row r (0 ≤ r < n) of the [I_k ; C] matrix.
func (c *Coder) encodingRow(r int) []byte {
	row := make([]byte, c.data)
	if r < c.data {
		row[r] = 1
		return row
	}
	copy(row, c.cauchy[r-c.data])
	return row
}

// Encode splits data into k data shards (zero-padded) and computes m
// parity shards. The returned slice has n entries of equal length.
func (c *Coder) Encode(data []byte) [][]byte {
	size := c.ShardSize(len(data))
	if size == 0 {
		size = 1
	}
	shards := make([][]byte, c.TotalShards())
	for j := 0; j < c.data; j++ {
		shards[j] = make([]byte, size)
		lo := j * size
		if lo < len(data) {
			copy(shards[j], data[lo:])
		}
	}
	for i := 0; i < c.parity; i++ {
		p := make([]byte, size)
		for j := 0; j < c.data; j++ {
			coef := c.cauchy[i][j]
			if coef == 0 {
				continue
			}
			sj := shards[j]
			for b := range p {
				p[b] ^= gf.Mul(coef, sj[b])
			}
		}
		shards[c.data+i] = p
	}
	return shards
}

// Reconstruct fills in missing (nil) shards in place from any k present
// ones. shards must have n entries; present entries must share one size.
func (c *Coder) Reconstruct(shards [][]byte) error {
	n := c.TotalShards()
	if len(shards) != n {
		return fmt.Errorf("%w: got %d shards, want %d", ErrShardCount, len(shards), n)
	}
	size := -1
	var have []int
	for idx, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("%w: shard %d is %d bytes, want %d", ErrShardSize, idx, len(s), size)
		}
		if len(have) < c.data {
			have = append(have, idx)
		}
	}
	if len(have) < c.data {
		return fmt.Errorf("%w: %d of %d present, need %d", ErrTooFewShards, len(have), n, c.data)
	}
	// Fast path: all data shards survive; only parity needs recomputing.
	dataIntact := true
	for j := 0; j < c.data; j++ {
		if shards[j] == nil {
			dataIntact = false
			break
		}
	}
	if !dataIntact {
		// Solve M·d = s for the data shards d, where row r of M is the
		// encoding row of the r-th surviving shard.
		m := make([][]byte, c.data)
		for r, idx := range have {
			m[r] = c.encodingRow(idx)
		}
		inv, err := invertMatrix(m)
		if err != nil {
			return err
		}
		recovered := make([][]byte, c.data)
		for j := 0; j < c.data; j++ {
			if shards[j] != nil {
				continue
			}
			d := make([]byte, size)
			for r, idx := range have {
				coef := inv[j][r]
				if coef == 0 {
					continue
				}
				src := shards[idx]
				for b := range d {
					d[b] ^= gf.Mul(coef, src[b])
				}
			}
			recovered[j] = d
		}
		for j, d := range recovered {
			if d != nil {
				shards[j] = d
			}
		}
	}
	// Re-derive any missing parity from the (now complete) data shards.
	for i := 0; i < c.parity; i++ {
		if shards[c.data+i] != nil {
			continue
		}
		p := make([]byte, size)
		for j := 0; j < c.data; j++ {
			coef := c.cauchy[i][j]
			if coef == 0 {
				continue
			}
			sj := shards[j]
			for b := range p {
				p[b] ^= gf.Mul(coef, sj[b])
			}
		}
		shards[c.data+i] = p
	}
	return nil
}

// Join concatenates the k data shards and trims to size bytes. All data
// shards must be present (call Reconstruct first if not).
func (c *Coder) Join(shards [][]byte, size int) ([]byte, error) {
	if len(shards) < c.data {
		return nil, fmt.Errorf("%w: got %d shards, want at least %d", ErrShardCount, len(shards), c.data)
	}
	out := make([]byte, 0, size)
	for j := 0; j < c.data && len(out) < size; j++ {
		if shards[j] == nil {
			return nil, fmt.Errorf("%w: data shard %d missing", ErrTooFewShards, j)
		}
		out = append(out, shards[j]...)
	}
	if len(out) < size {
		return nil, fmt.Errorf("%w: %d bytes from data shards, want %d", ErrShardSize, len(out), size)
	}
	return out[:size], nil
}

// invertMatrix Gauss–Jordan inverts a square matrix over GF(256). The
// input is consumed.
func invertMatrix(m [][]byte) ([][]byte, error) {
	n := len(m)
	inv := make([][]byte, n)
	for i := range inv {
		inv[i] = make([]byte, n)
		inv[i][i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if m[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("cluster: singular decode matrix at column %d", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		if d := m[col][col]; d != 1 {
			di := gf.Inv(d)
			for j := 0; j < n; j++ {
				m[col][j] = gf.Mul(m[col][j], di)
				inv[col][j] = gf.Mul(inv[col][j], di)
			}
		}
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col]
			for j := 0; j < n; j++ {
				m[r][j] ^= gf.Mul(f, m[col][j])
				inv[r][j] ^= gf.Mul(f, inv[col][j])
			}
		}
	}
	return inv, nil
}
