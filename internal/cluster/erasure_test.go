package cluster

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomPayload fills a deterministic pseudo-random object.
func randomPayload(rng *rand.Rand, size int) []byte {
	b := make([]byte, size)
	rng.Read(b)
	return b
}

// subsets enumerates all ways to keep exactly `keep` of n shards.
func subsets(n, keep int) [][]bool {
	var out [][]bool
	var rec func(start int, picked []int)
	rec = func(start int, picked []int) {
		if len(picked) == keep {
			mask := make([]bool, n)
			for _, i := range picked {
				mask[i] = true
			}
			out = append(out, mask)
			return
		}
		for i := start; i <= n-(keep-len(picked)); i++ {
			rec(i+1, append(picked, i))
		}
	}
	rec(0, nil)
	return out
}

// TestErasureRoundTripAllSubsets proves the MDS property exhaustively for
// small codes: any k of the n shards reconstruct the exact object, for
// every k-subset.
func TestErasureRoundTripAllSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, km := range [][2]int{{1, 1}, {2, 1}, {2, 2}, {3, 2}, {4, 2}, {4, 3}, {5, 4}} {
		k, m := km[0], km[1]
		coder, err := NewCoder(k, m)
		if err != nil {
			t.Fatal(err)
		}
		size := 100 + rng.Intn(200)
		data := randomPayload(rng, size)
		shards := coder.Encode(data)
		if len(shards) != k+m {
			t.Fatalf("(%d,%d): got %d shards", k, m, len(shards))
		}
		for _, mask := range subsets(k+m, k) {
			partial := make([][]byte, k+m)
			for i, keep := range mask {
				if keep {
					partial[i] = append([]byte(nil), shards[i]...)
				}
			}
			if err := coder.Reconstruct(partial); err != nil {
				t.Fatalf("(%d,%d) mask %v: reconstruct: %v", k, m, mask, err)
			}
			for i := range partial {
				if !bytes.Equal(partial[i], shards[i]) {
					t.Fatalf("(%d,%d) mask %v: shard %d diverged", k, m, mask, i)
				}
			}
			got, err := coder.Join(partial, size)
			if err != nil {
				t.Fatalf("(%d,%d) mask %v: join: %v", k, m, mask, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("(%d,%d) mask %v: round trip diverged", k, m, mask)
			}
		}
	}
}

// TestErasureRoundTripProperty is the randomized property: arbitrary
// payloads and arbitrary survivable loss patterns round-trip.
func TestErasureRoundTripProperty(t *testing.T) {
	coder, err := NewCoder(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	prop := func(seed int64, sizeRaw uint16) bool {
		local := rand.New(rand.NewSource(seed))
		size := 1 + int(sizeRaw)%4096
		data := randomPayload(local, size)
		shards := coder.Encode(data)
		// Drop up to m=2 shards at random.
		for drops := local.Intn(3); drops > 0; drops-- {
			shards[local.Intn(len(shards))] = nil
		}
		if err := coder.Reconstruct(shards); err != nil {
			return false
		}
		got, err := coder.Join(shards, size)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestErasureTooFewShards asserts the coder refuses unrecoverable
// stripes instead of fabricating data.
func TestErasureTooFewShards(t *testing.T) {
	coder, err := NewCoder(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	shards := coder.Encode(make([]byte, 64))
	shards[0], shards[1], shards[4] = nil, nil, nil // 3 lost > m=2
	if err := coder.Reconstruct(shards); err == nil {
		t.Fatal("reconstruct succeeded with fewer than k shards")
	}
}

// TestErasureParityActuallyChecks asserts parity shards depend on the
// data (a degenerate all-zero parity would "round trip" vacuously).
func TestErasureParityActuallyChecks(t *testing.T) {
	coder, err := NewCoder(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := coder.Encode([]byte{1, 2, 3, 4, 5, 6})
	b := coder.Encode([]byte{1, 2, 3, 4, 5, 7})
	if bytes.Equal(a[3], b[3]) && bytes.Equal(a[4], b[4]) {
		t.Fatal("parity did not change when data changed")
	}
}

// FuzzErasure mirrors the jfs/kvdb fuzz style: the input picks the code
// geometry, the payload, and a loss pattern; the invariant is that any
// loss within the parity budget round-trips exactly and any loss beyond
// it is refused.
func FuzzErasure(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint8(0b000011), []byte("hello, underwater world"))
	f.Add(uint8(2), uint8(1), uint8(0b001), []byte{0xff, 0x00, 0x7f})
	f.Add(uint8(5), uint8(3), uint8(0b10101010), bytes.Repeat([]byte{9, 1, 1}, 50))
	f.Fuzz(func(t *testing.T, kRaw, mRaw, lossRaw uint8, data []byte) {
		k := 1 + int(kRaw)%6
		m := 1 + int(mRaw)%4
		coder, err := NewCoder(k, m)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			data = []byte{0}
		}
		shards := coder.Encode(data)
		lost := 0
		for i := range shards {
			if lossRaw&(1<<uint(i%8)) != 0 {
				shards[i] = nil
				lost++
			}
		}
		err = coder.Reconstruct(shards)
		if lost > m {
			if err == nil {
				t.Fatalf("k=%d m=%d lost=%d: reconstruct accepted unrecoverable stripe", k, m, lost)
			}
			return
		}
		if err != nil {
			t.Fatalf("k=%d m=%d lost=%d: reconstruct: %v", k, m, lost, err)
		}
		got, err := coder.Join(shards, len(data))
		if err != nil {
			t.Fatalf("join: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("k=%d m=%d lost=%d: round trip diverged", k, m, lost)
		}
		// Parity must re-derive consistently: re-encode and compare.
		fresh := coder.Encode(data)
		for i := range fresh {
			if !bytes.Equal(fresh[i], shards[i]) {
				t.Fatalf("k=%d m=%d: shard %d inconsistent after reconstruct", k, m, i)
			}
		}
	})
}

// TestErasurePreRefactorVectors pins Encode output against vectors captured
// before the GF(256) arithmetic was extracted into internal/gf. The coder's
// bytes on the wire are a storage format: any drift here corrupts every
// stripe already placed by earlier simulations, so the extraction must be
// byte-identical, not merely algebraically equivalent.
func TestErasurePreRefactorVectors(t *testing.T) {
	// First 23 bytes drawn as byte(rng.Intn(256)) from rand.NewSource(42).
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 23)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	const wantData = "b14b843edf61a58870d3f96fe7dc8c6d0479af10aa16c4"
	if got := hex.EncodeToString(data); got != wantData {
		t.Fatalf("seed data drifted: %s, want %s", got, wantData)
	}
	cases := []struct {
		k, m   int
		shards []string
	}{
		{4, 2, []string{
			"b14b843edf61", "a58870d3f96f", "e7dc8c6d0479",
			"af10aa16c400", "d34df0a0e1d9", "d63cc4fe148d",
		}},
		{5, 3, []string{
			"b14b843edf", "61a58870d3", "f96fe7dc8c", "6d0479af10",
			"aa16c40000", "f45d760550", "eb04f5fa9c", "c2649f2cfe",
		}},
		{2, 1, []string{
			"b14b843edf61a58870d3f96f", "e7dc8c6d0479af10aa16c400",
			"8b14cdcf1662b9bf5e1e45b9",
		}},
	}
	for _, tc := range cases {
		coder, err := NewCoder(tc.k, tc.m)
		if err != nil {
			t.Fatalf("NewCoder(%d, %d): %v", tc.k, tc.m, err)
		}
		shards := coder.Encode(data)
		if len(shards) != len(tc.shards) {
			t.Fatalf("k=%d m=%d: %d shards, want %d", tc.k, tc.m, len(shards), len(tc.shards))
		}
		for i, want := range tc.shards {
			if got := hex.EncodeToString(shards[i]); got != want {
				t.Errorf("k=%d m=%d shard %d = %s, want %s", tc.k, tc.m, i, got, want)
			}
		}
		// Reconstruction from the parity-heaviest survivable subset must
		// reproduce the pinned data shards exactly.
		holed := make([][]byte, len(shards))
		copy(holed, shards)
		for j := 0; j < tc.m; j++ {
			holed[j] = nil
		}
		if err := coder.Reconstruct(holed); err != nil {
			t.Fatalf("k=%d m=%d Reconstruct: %v", tc.k, tc.m, err)
		}
		for i, want := range tc.shards {
			if got := hex.EncodeToString(holed[i]); got != want {
				t.Errorf("k=%d m=%d reconstructed shard %d = %s, want %s", tc.k, tc.m, i, got, want)
			}
		}
	}
}
