package cluster

import (
	"fmt"
	"math"

	"deepnote/internal/acoustics"
	"deepnote/internal/core"
	"deepnote/internal/enclosure"
	"deepnote/internal/hdd"
	"deepnote/internal/sig"
	"deepnote/internal/units"
	"deepnote/internal/water"
)

// Vec3 is a position in meters. The water surface (when modeled) is the
// plane above everything; SurfaceDepth on the Layout sets how far below
// it the deployment sits.
type Vec3 struct{ X, Y, Z float64 }

// Sub returns v − o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v.X - o.X, v.Y - o.Y, v.Z - o.Z} }

// Norm returns the Euclidean length in meters.
func (v Vec3) Norm() float64 { return math.Sqrt(v.X*v.X + v.Y*v.Y + v.Z*v.Z) }

// Between returns the distance between two points.
func Between(a, b Vec3) units.Distance { return units.Distance(a.Sub(b).Norm()) }

// ContainerSite is one submerged container (a failure domain) at a fixed
// position. Its Scenario selects the structural path (container material
// and mounting) for every drive inside it.
type ContainerSite struct {
	Name     string
	Pos      Vec3
	Scenario core.Scenario
}

// SpeakerSite is one attacker speaker (amplifier + underwater projector)
// at a fixed position, emitting its tone when keyed on.
type SpeakerSite struct {
	Name string
	Pos  Vec3
	Tone sig.Tone
}

// PointBlank is the minimum physical speaker-to-wall distance: the
// speaker face pressed against the container, the paper's 1 cm reference
// geometry. Speaker→container distances are clamped up to this.
const PointBlank = 1 * units.Centimeter

// Layout places containers and attacker speakers in a shared body of
// water. Every speaker→container pair gets a real acoustics.Path through
// the medium (spreading + absorption, optional Lloyd's-mirror surface
// bounce), replacing hop-count sketches with geometry.
type Layout struct {
	// Medium is the shared water body. nil means "unset" and defaults to
	// the tank medium the chain is calibrated in; an explicit pointer is
	// always honored, including a legitimately all-zero medium (0 °C
	// freshwater at the surface, pH unset). Pointer semantics distinguish
	// zero from unset, the same convention as TrafficSpec.ReadFraction.
	Medium *water.Medium
	// SurfaceDepth, when positive, enables the surface-reflection
	// interference term on every path (source and targets at this depth).
	SurfaceDepth units.Distance
	// Containers are the failure domains.
	Containers []ContainerSite
	// Speakers are the attacker's sources.
	Speakers []SpeakerSite
}

// GridLayout lays rows×cols containers on a regular grid with the given
// pitch, all Scenario 2 (plastic container, storage tower) in the tank
// medium. The standard starting point for datacenter experiments.
func GridLayout(rows, cols int, pitch units.Distance) Layout {
	l := Layout{Medium: Ptr(water.FreshwaterTank())}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			l.Containers = append(l.Containers, ContainerSite{
				Name:     fmt.Sprintf("ct-%d-%d", r, c),
				Pos:      Vec3{X: float64(c) * pitch.Meters(), Y: float64(r) * pitch.Meters()},
				Scenario: core.Scenario2,
			})
		}
	}
	return l
}

// LineLayout is a 1×n grid: containers in a line with the given spacing,
// the geometry the Fleet experiments model.
func LineLayout(n int, spacing units.Distance) Layout { return GridLayout(1, n, spacing) }

// WithSpeakersAt returns a copy of the layout with one speaker pressed
// against each of the named containers (co-located positions; the
// point-blank clamp supplies the paper's 1 cm standoff), all emitting the
// same tone. This is the "silence a failure domain" attacker.
//
// It panics on an out-of-range container index: a typo'd index used to be
// skipped silently, which made the intended speaker vanish and quietly
// weakened every experiment built on the layout. The builder idiom keeps
// the chainable signature, so a bad index is a programming error, not a
// runtime condition to thread through.
func (l Layout) WithSpeakersAt(tone sig.Tone, containers ...int) Layout {
	speakers := make([]SpeakerSite, 0, len(containers))
	for _, c := range containers {
		if c < 0 || c >= len(l.Containers) {
			panic(fmt.Sprintf("cluster: WithSpeakersAt container index %d outside [0, %d)", c, len(l.Containers)))
		}
		speakers = append(speakers, SpeakerSite{
			Name: "spk@" + l.Containers[c].Name,
			Pos:  l.Containers[c].Pos,
			Tone: tone,
		})
	}
	l.Speakers = speakers
	return l
}

// medium returns the effective water medium: the explicitly set one, or
// the tank default when Medium is nil. An explicit all-zero medium is
// honored, never silently replaced.
func (l Layout) medium() water.Medium {
	if l.Medium == nil {
		return water.FreshwaterTank()
	}
	return *l.Medium
}

// EffectiveMedium exposes the medium the layout's acoustic paths run
// through (the tank default when Medium is unset), so co-located sensing
// systems — hydrophone arrays in internal/sonar — model propagation in
// the same water the attack crosses.
func (l Layout) EffectiveMedium() water.Medium { return l.medium() }

// Validate checks the layout.
func (l Layout) Validate() error {
	if len(l.Containers) == 0 {
		return fmt.Errorf("cluster: layout has no containers")
	}
	if err := l.medium().Validate(); err != nil {
		return err
	}
	for _, ct := range l.Containers {
		if _, err := ct.Scenario.Assembly(); err != nil {
			return fmt.Errorf("cluster: container %q: %w", ct.Name, err)
		}
	}
	return nil
}

// SpeakerDistance returns the physical path length from speaker s to
// container c, clamped up to PointBlank.
func (l Layout) SpeakerDistance(s, c int) units.Distance {
	d := Between(l.Speakers[s].Pos, l.Containers[c].Pos)
	if d < PointBlank {
		d = PointBlank
	}
	return d
}

// PathTo returns the water path from speaker s to container c.
func (l Layout) PathTo(s, c int) acoustics.Path {
	return acoustics.Path{
		Medium:       l.medium(),
		Distance:     l.SpeakerDistance(s, c),
		SurfaceDepth: l.SurfaceDepth,
	}
}

// ChainTo returns the full attack chain (paper amplifier and projector
// over the geometric path) from speaker s to container c.
func (l Layout) ChainTo(s, c int) acoustics.Chain {
	return acoustics.Chain{Amp: acoustics.BG2120(), Speaker: acoustics.AQ339(), Path: l.PathTo(s, c)}
}

// NearestSpeakerDistance returns the distance from container c to the
// closest speaker; ok is false when the layout has no speakers.
func (l Layout) NearestSpeakerDistance(c int) (units.Distance, bool) {
	if len(l.Speakers) == 0 {
		return 0, false
	}
	best := l.SpeakerDistance(0, c)
	for s := 1; s < len(l.Speakers); s++ {
		if d := l.SpeakerDistance(s, c); d < best {
			best = d
		}
	}
	return best, true
}

// SpeakerAmp evaluates the full transfer chain from speaker s to a
// drive mounted (with assembly asm) in container c: the tone is carried
// through the speaker's water path, the container's transmission, and
// the mount coupling, then converted to off-track displacement by the
// drive model. It returns the speaker's tone frequency and the
// off-track amplitude contribution (track-pitch fractions; 0 for a
// silent or out-of-band source). This is the per-(speaker, drive)
// transfer function the serving engine caches: it depends only on
// geometry and the speaker's tone, never on the attack schedule.
func (l Layout) SpeakerAmp(s, c int, asm enclosure.Assembly, model hdd.Model) (units.Frequency, float64) {
	tone := l.Speakers[s].Tone.Normalize()
	if tone.Amplitude == 0 || tone.Freq <= 0 {
		return tone.Freq, 0
	}
	pressure := l.ChainTo(s, c).IncidentPressure(tone).Pascals()
	return tone.Freq, model.OffTrack(tone.Freq, pressure*asm.StructuralGain(tone.Freq))
}

// PredictedAmp evaluates the transfer chain from a hypothesized source —
// a defense localization fix — to a drive mounted (with assembly asm) in
// container c, mirroring SpeakerAmp but for a position the defender only
// estimated. slack is the localization uncertainty: the path length is
// conservatively shortened by it (the source may be that much closer than
// the estimate says) before the PointBlank clamp. Returns the tone
// frequency and the predicted off-track amplitude.
func (l Layout) PredictedAmp(pos Vec3, slack units.Distance, tone sig.Tone, c int, asm enclosure.Assembly, model hdd.Model) (units.Frequency, float64) {
	tone = tone.Normalize()
	if tone.Amplitude == 0 || tone.Freq <= 0 {
		return tone.Freq, 0
	}
	d := Between(pos, l.Containers[c].Pos) - slack
	if d < PointBlank {
		d = PointBlank
	}
	chain := acoustics.Chain{
		Amp:     acoustics.BG2120(),
		Speaker: acoustics.AQ339(),
		Path:    acoustics.Path{Medium: l.medium(), Distance: d, SurfaceDepth: l.SurfaceDepth},
	}
	pressure := chain.IncidentPressure(tone).Pascals()
	return tone.Freq, model.OffTrack(tone.Freq, pressure*asm.StructuralGain(tone.Freq))
}

// superposeComponents merges n per-speaker contributions — each a
// (frequency, off-track amplitude) pair — into one excitation state.
// Same-frequency sources add coherently (in phase — the attacker's
// worst case); distinct frequencies ride along as hdd partials, the
// composite vibration path. active selects which speakers are keyed on;
// nil means all. Both the direct chain walk (VibrationAt) and the
// cached-transfer-function path superpose through this one helper, so
// the two agree bit-exactly.
func superposeComponents(n int, freq func(s int) units.Frequency, amp func(s int) float64, active []bool) hdd.Vibration {
	type comp struct {
		f units.Frequency
		a float64
	}
	var comps []comp
	for s := 0; s < n; s++ {
		if active != nil && (s >= len(active) || !active[s]) {
			continue
		}
		a := amp(s)
		if a <= 0 {
			continue
		}
		f := freq(s)
		merged := false
		for i := range comps {
			if comps[i].f == f {
				comps[i].a += a
				merged = true
				break
			}
		}
		if !merged {
			comps = append(comps, comp{f: f, a: a})
		}
	}
	if len(comps) == 0 {
		return hdd.Quiet()
	}
	best := 0
	for i, cc := range comps {
		if cc.a > comps[best].a {
			best = i
		}
	}
	out := hdd.Vibration{Freq: comps[best].f, Amplitude: comps[best].a}
	for i, cc := range comps {
		if i != best {
			out.Partials = append(out.Partials, hdd.Partial{Freq: cc.f, Amplitude: cc.a})
		}
	}
	return out
}

// VibrationAt superposes every active speaker's contribution at a drive
// mounted in container c by walking each speaker's full acoustic chain.
// It is the reference (uncached) path; the serving engine precomputes
// SpeakerAmp per (speaker, drive) instead and superposes cached gains.
func (l Layout) VibrationAt(c int, asm enclosure.Assembly, model hdd.Model, active []bool) hdd.Vibration {
	freqs := make([]units.Frequency, len(l.Speakers))
	amps := make([]float64, len(l.Speakers))
	for s := range l.Speakers {
		freqs[s], amps[s] = l.SpeakerAmp(s, c, asm, model)
	}
	return superposeComponents(len(l.Speakers),
		func(s int) units.Frequency { return freqs[s] },
		func(s int) float64 { return amps[s] }, active)
}

// SuperposeGains is the exported entry to the superposition helper for
// other tiers (internal/fleet) that cache per-(speaker, drive) transfer
// gains themselves: n sources with per-source normalized frequency and
// cached gain, masked by active (nil = all on). It goes through the same
// code path as VibrationAt and the cluster serving engine, so every tier
// agrees bit-exactly on what a speaker set does to a drive.
func SuperposeGains(n int, freq func(s int) units.Frequency, gain func(s int) float64, active []bool) hdd.Vibration {
	return superposeComponents(n, freq, gain, active)
}
