package cluster

import (
	"testing"

	"deepnote/internal/hdd"
	"deepnote/internal/sig"
	"deepnote/internal/units"
	"deepnote/internal/water"
)

// TestLayoutPointBlankClamp: a speaker co-located with its target is the
// paper's pressed-against-the-wall geometry, clamped to 1 cm.
func TestLayoutPointBlankClamp(t *testing.T) {
	l := LineLayout(3, 2*units.Meter).WithSpeakersAt(sig.NewTone(650*units.Hz), 0)
	if d := l.SpeakerDistance(0, 0); d != PointBlank {
		t.Fatalf("co-located speaker distance = %v, want %v", d, PointBlank)
	}
	if d := l.SpeakerDistance(0, 1); d != 2*units.Meter {
		t.Fatalf("next-container distance = %v, want 2 m", d)
	}
	if d := l.SpeakerDistance(0, 2); d != 4*units.Meter {
		t.Fatalf("two-hop distance = %v, want 4 m", d)
	}
}

// TestLayoutVibrationFallsWithDistance: farther containers always see
// weaker excitation from the same speaker.
func TestLayoutVibrationFallsWithDistance(t *testing.T) {
	l := LineLayout(6, 2*units.Meter).WithSpeakersAt(sig.NewTone(650*units.Hz), 0)
	a, err := l.Containers[0].Scenario.Assembly()
	if err != nil {
		t.Fatal(err)
	}
	model := hdd.Barracuda500()
	prev := -1.0
	for c := 0; c < 6; c++ {
		amp := l.VibrationAt(c, a, model, nil).Amplitude
		if c > 0 && amp >= prev {
			t.Fatalf("container %d amp %.6f not below container %d amp %.6f", c, amp, c-1, prev)
		}
		prev = amp
	}
}

// TestLayoutSuperpositionAdds: two same-frequency speakers excite a
// container at least as hard as either alone (coherent in-phase sum).
func TestLayoutSuperpositionAdds(t *testing.T) {
	tone := sig.NewTone(650 * units.Hz)
	l := LineLayout(4, 1*units.Meter).WithSpeakersAt(tone, 0, 1)
	a, err := l.Containers[0].Scenario.Assembly()
	if err != nil {
		t.Fatal(err)
	}
	model := hdd.Barracuda500()
	both := l.VibrationAt(2, a, model, []bool{true, true}).Amplitude
	only0 := l.VibrationAt(2, a, model, []bool{true, false}).Amplitude
	only1 := l.VibrationAt(2, a, model, []bool{false, true}).Amplitude
	if only0 <= 0 || only1 <= 0 {
		t.Fatalf("single-speaker amplitudes must be positive, got %.6f / %.6f", only0, only1)
	}
	if both < only0 || both < only1 {
		t.Fatalf("superposed amp %.6f below single-speaker amps %.6f / %.6f", both, only0, only1)
	}
	if diff := both - (only0 + only1); diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("same-frequency sources should add coherently: %.9f vs %.9f", both, only0+only1)
	}
}

// TestLayoutDistinctFrequenciesBecomePartials: a two-tone attack reaches
// the drive as a composite vibration, not a single tone.
func TestLayoutDistinctFrequenciesBecomePartials(t *testing.T) {
	l := LineLayout(3, 1*units.Meter)
	l.Speakers = []SpeakerSite{
		{Name: "a", Pos: l.Containers[0].Pos, Tone: sig.NewTone(650 * units.Hz)},
		{Name: "b", Pos: l.Containers[0].Pos, Tone: sig.NewTone(5000 * units.Hz)},
	}
	a, err := l.Containers[0].Scenario.Assembly()
	if err != nil {
		t.Fatal(err)
	}
	v := l.VibrationAt(0, a, hdd.Barracuda500(), nil)
	if len(v.Partials) != 1 {
		t.Fatalf("want 1 partial for the second frequency, got %d", len(v.Partials))
	}
	if v.Freq != 650*units.Hz {
		t.Fatalf("dominant component should be the stronger 650 Hz tone, got %v", v.Freq)
	}
}

// TestLayoutSilencesTargetOnly: the acceptance physics — a point-blank
// 650 Hz speaker servo-locks its own container while a 2 m neighbor
// stays far below every fault threshold.
func TestLayoutSilencesTargetOnly(t *testing.T) {
	l := LineLayout(6, 2*units.Meter).WithSpeakersAt(sig.NewTone(650*units.Hz), 0)
	a, err := l.Containers[0].Scenario.Assembly()
	if err != nil {
		t.Fatal(err)
	}
	model := hdd.Barracuda500()
	if amp := l.VibrationAt(0, a, model, nil).Amplitude; amp < model.ServoLockFrac {
		t.Fatalf("point-blank amp %.4f below servo lock %.2f: target not silenced", amp, model.ServoLockFrac)
	}
	neighbor := l.VibrationAt(1, a, model, nil).Amplitude
	if margin := model.WriteFaultFrac - neighbor; margin < 5*model.BaseJitterFrac {
		t.Fatalf("neighbor amp %.4f too close to write fault %.2f (margin %.4f)",
			neighbor, model.WriteFaultFrac, margin)
	}
}

// TestLayoutMediumZeroVsUnset pins the pointer semantics of
// Layout.Medium: nil means "use the tank default", while an explicit
// pointer — even to an all-zero Medium (0 °C freshwater at the surface)
// — is honored. The value-type version of this field silently swapped a
// legitimate zero medium for the tank default.
func TestLayoutMediumZeroVsUnset(t *testing.T) {
	unset := LineLayout(2, 1*units.Meter)
	unset.Medium = nil
	if got, want := unset.EffectiveMedium(), water.FreshwaterTank(); got != want {
		t.Fatalf("nil Medium: EffectiveMedium = %v, want tank default %v", got, want)
	}

	zero := LineLayout(2, 1*units.Meter)
	zero.Medium = Ptr(water.Medium{})
	if got := zero.EffectiveMedium(); got != (water.Medium{}) {
		t.Fatalf("explicit zero Medium replaced with %v", got)
	}
	// The distinction must be observable in the physics, not just the
	// struct: 0 °C water carries sound measurably slower than the 21 °C
	// tank (~1403 vs ~1481 m/s).
	if cz, ct := zero.EffectiveMedium().SoundSpeed(), unset.EffectiveMedium().SoundSpeed(); cz >= ct {
		t.Fatalf("zero-medium sound speed %.1f not below tank %.1f — zero was not honored", cz, ct)
	}
}

// TestWithSpeakersAtPanicsOutOfRange pins the bugfix for silently
// skipped out-of-range speaker indices: both edges beyond the container
// range panic, both boundary indices inside it do not.
func TestWithSpeakersAtPanicsOutOfRange(t *testing.T) {
	tone := sig.NewTone(650 * units.Hz)
	l := LineLayout(3, 1*units.Meter)

	mustPanic := func(idx int) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("WithSpeakersAt(%d) did not panic", idx)
			}
		}()
		l.WithSpeakersAt(tone, idx)
	}
	mustPanic(-1)
	mustPanic(len(l.Containers))

	got := l.WithSpeakersAt(tone, 0, len(l.Containers)-1)
	if len(got.Speakers) != 2 {
		t.Fatalf("boundary indices produced %d speakers, want 2", len(got.Speakers))
	}
}
