package cluster

import (
	"context"
	"fmt"
	"sort"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/enclosure"
	"deepnote/internal/hdd"
	"deepnote/internal/metrics"
	"deepnote/internal/netstore"
	"deepnote/internal/parallel"
	"deepnote/internal/sched"
	"deepnote/internal/simclock"
	"deepnote/internal/units"
)

// Ptr returns a pointer to v: the literal-friendly way to set the
// optional config fields that distinguish "unset" (nil) from an explicit
// zero, e.g. TrafficSpec{ReadFraction: cluster.Ptr(0.0)} for a
// write-only mix or Config{Seed: cluster.Ptr(int64(0))} for seed zero.
func Ptr[T any](v T) *T { return &v }

// Config sizes the cluster.
type Config struct {
	// Layout places the containers (failure domains) and attacker
	// speakers.
	Layout Layout
	// DrivesPerContainer is how many drives each container hosts
	// (default 1; drives occupy tower slots bottom-up).
	DrivesPerContainer int
	// DataShards (k) and ParityShards (m) set the erasure code: every
	// object is striped k-of-n with n = k+m, one shard per container
	// (defaults 4+2). The layout must have at least n containers.
	DataShards, ParityShards int
	// Objects is the keyspace size (default 64).
	Objects int
	// ObjectSize is the client object size in bytes (default 64 KiB);
	// shards are ObjectSize/k rounded up.
	ObjectSize int
	// Net templates the per-drive netstore servers; ObjectSize, Objects,
	// and Seed are overridden per drive.
	Net netstore.Config
	// Seed drives every stochastic element (per-drive mechanics, network
	// jitter, traffic); sub-seeds are derived with parallel.SeedFor so
	// results are identical at any worker count. nil means the default
	// (1); an explicit zero — Ptr(int64(0)) — is honored and reproduces
	// like any other seed.
	Seed *int64
	// Workers bounds the fan-out across drives (≤ 0 = all CPUs). Worker
	// count never changes results, only wall-clock time.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.DrivesPerContainer <= 0 {
		c.DrivesPerContainer = 1
	}
	if c.DataShards <= 0 {
		c.DataShards = 4
	}
	if c.ParityShards <= 0 {
		c.ParityShards = 2
	}
	if c.Objects <= 0 {
		c.Objects = 64
	}
	if c.ObjectSize <= 0 {
		c.ObjectSize = 64 << 10
	}
	if c.Seed == nil {
		c.Seed = Ptr(int64(1))
	}
	return c
}

// seed returns the resolved root seed; call only after withDefaults.
func (c Config) seed() int64 { return *c.Seed }

// driveStack is one drive's full victim stack: mechanics on its own
// virtual clock, a block device, and a netstore front end. Each drive
// owning its clock (rather than sharing one) is what makes the bulk-
// synchronous serving engine deterministic at any worker count: a
// drive's timeline depends only on the ops queued to it, never on how
// goroutines interleave.
type driveStack struct {
	container, slot int
	asm             enclosure.Assembly
	clock           *simclock.Virtual
	drive           *hdd.Drive
	disk            *blockdev.Disk
	server          *netstore.Server
	stepIdx         int

	// runner is the drive's discrete-event dispatcher: its queue holds
	// this drive's pending shard ops in (time, issue-seq) order, and its
	// clock is the drive's own virtual clock.
	runner sched.Runner
	// results accumulates one record per dispatched shard op within an
	// epoch; the engine combines them serially and truncates. Reused.
	results []opResult
	// retained holds copies of GET payloads that mismatched their
	// expected stripe bytes — the rare device-corruption case that needs
	// the exact decode fallback. Reused.
	retained []retainedShard
}

// ScheduleStep keys the attacker's speakers at an offset from the start
// of serving: Active[s] is whether layout speaker s is emitting from At
// onward (nil = all silent).
type ScheduleStep struct {
	At     time.Duration
	Active []bool
}

// Cluster is the assembled datacenter: n-shard erasure-coded object
// store over per-drive victim stacks placed in a spatial layout.
type Cluster struct {
	cfg       Config
	coder     *Coder
	shardSize int
	model     hdd.Model
	drives    []*driveStack

	// stripes caches each object's encoded shards; client PUTs rewrite
	// the same deterministic content, so GET verification is exact.
	stripes [][][]byte

	// tf caches the per-(speaker, drive) acoustic transfer gain — the
	// full chain walk evaluated once at construction. Layout and tones
	// are immutable after New, so the cache is never invalidated here;
	// schedule steps only superpose cached gains (see internal/sched).
	tf sched.TransferCache
	// tfFreqs[s] is speaker s's normalized tone frequency, the other
	// half of its cached transfer function.
	tfFreqs []units.Frequency

	schedule []ScheduleStep
	// vibs[step][drive] is the precomputed superposed vibration.
	vibs [][]hdd.Vibration

	// defense is the compiled closed-loop defense plan (nil = off). See
	// SetDefense in defense.go.
	defense *defenseState

	origin time.Time
	last   ServeResult
	// latencies of successful client requests, for histograms.
	latGet, latPut []time.Duration

	// Serving-engine buffers, reused across Serve calls so steady-state
	// runs do not reallocate the arenas.
	reqsBuf    []reqState
	pendingBuf [2][]int32
	failedBuf  []failRec
	repairBuf  []repairOp
	retained   map[retKey][]byte
}

// New assembles a cluster. Every drive gets an independently seeded
// mechanics RNG and network-jitter RNG derived from Config.Seed.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Layout.Validate(); err != nil {
		return nil, err
	}
	coder, err := NewCoder(cfg.DataShards, cfg.ParityShards)
	if err != nil {
		return nil, err
	}
	if n, ct := coder.TotalShards(), len(cfg.Layout.Containers); ct < n {
		return nil, fmt.Errorf("cluster: %d containers cannot hold %d-shard stripes in distinct failure domains", ct, n)
	}
	c := &Cluster{
		cfg:       cfg,
		coder:     coder,
		shardSize: coder.ShardSize(cfg.ObjectSize),
		model:     hdd.Barracuda500(),
	}
	for ct := range cfg.Layout.Containers {
		asm, err := cfg.Layout.Containers[ct].Scenario.Assembly()
		if err != nil {
			return nil, err
		}
		for slot := 0; slot < cfg.DrivesPerContainer; slot++ {
			driveAsm := asm
			if asm.Mount.Tower != nil {
				driveAsm.Mount = enclosure.TowerMount(*asm.Mount.Tower, slot%asm.Mount.Tower.Slots)
			}
			idx := len(c.drives)
			clock := simclock.NewVirtual()
			drive, err := hdd.NewDrive(c.model, clock, parallel.SeedFor(cfg.seed(), 2*idx))
			if err != nil {
				return nil, err
			}
			disk := blockdev.NewDisk(drive)
			net := cfg.Net
			net.ObjectSize = c.shardSize
			// The local keyspace is doubled: keys [0, Objects) hold home
			// shards, [Objects, 2·Objects) hold defense replicas (shard
			// re-placements steered here by an active Defense plan). With
			// the defense off the upper half is never addressed; Objects
			// only bounds-checks requests, so the doubling changes nothing
			// else.
			net.Objects = 2 * cfg.Objects
			net.Seed = parallel.SeedFor(cfg.seed(), 2*idx+1)
			d := &driveStack{
				container: ct,
				slot:      slot,
				asm:       driveAsm,
				clock:     clock,
				drive:     drive,
				disk:      disk,
				server:    netstore.NewServer(disk, clock, net),
				stepIdx:   -1,
			}
			d.runner.Clock = clock
			c.drives = append(c.drives, d)
		}
	}
	c.stripes = make([][][]byte, cfg.Objects)
	for o := range c.stripes {
		c.stripes[o] = coder.Encode(objectPayload(o, cfg.ObjectSize))
	}
	// Precompute every speaker→drive transfer function once: geometry and
	// tones are frozen after New, so attack schedules only superpose these
	// cached gains (keying speakers on/off never re-walks the chain).
	c.tfFreqs = make([]units.Frequency, len(cfg.Layout.Speakers))
	for s := range cfg.Layout.Speakers {
		c.tfFreqs[s] = cfg.Layout.Speakers[s].Tone.Normalize().Freq
	}
	c.tf.Ensure(len(cfg.Layout.Speakers), len(c.drives), func(s, di int) float64 {
		_, amp := cfg.Layout.SpeakerAmp(s, c.drives[di].container, c.drives[di].asm, c.model)
		return amp
	})
	c.retained = make(map[retKey][]byte)
	return c, nil
}

// Coder exposes the erasure coder.
func (c *Cluster) Coder() *Coder { return c.coder }

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Drives returns the number of drive stacks.
func (c *Cluster) Drives() int { return len(c.drives) }

// shardDrive maps (object, shard) to a drive index. Shard j of object o
// lives in container (o+j) mod C — n consecutive distinct containers, so
// each stripe spans n failure domains — on the drive in slot
// (o / C) mod drivesPerContainer. The shard is stored as local object o
// on that drive's netstore (one shard per object per container, so local
// IDs never collide).
func (c *Cluster) shardDrive(o, j int) int {
	ct := (o + j) % len(c.cfg.Layout.Containers)
	slot := (o / len(c.cfg.Layout.Containers)) % c.cfg.DrivesPerContainer
	return ct*c.cfg.DrivesPerContainer + slot
}

// objectPayload is the deterministic content of object o. Client PUTs
// write the same bytes, so any successful read — direct or reconstructed
// — must match exactly; a mismatch is counted as a corrupt read.
func objectPayload(o, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte((o*131 + i*7 + (i>>8)*13) ^ 0x5a)
	}
	return b
}

// SetSchedule programs the attack: steps sorted by offset; before the
// first step (and with no steps) every speaker is silent. Vibrations for
// every (step, drive) pair are superposed up front from the cached
// per-(speaker, drive) transfer functions — a schedule change costs
// O(steps·drives·speakers) float adds, never an acoustic chain walk.
func (c *Cluster) SetSchedule(steps []ScheduleStep) {
	c.schedule = append([]ScheduleStep(nil), steps...)
	sort.SliceStable(c.schedule, func(i, j int) bool { return c.schedule[i].At < c.schedule[j].At })
	c.vibs = make([][]hdd.Vibration, len(c.schedule))
	for si, step := range c.schedule {
		active := step.Active
		if active == nil {
			active = make([]bool, len(c.cfg.Layout.Speakers)) // nil step mask = all silent
		}
		c.vibs[si] = make([]hdd.Vibration, len(c.drives))
		for di := range c.drives {
			c.vibs[si][di] = superposeComponents(len(c.cfg.Layout.Speakers),
				func(s int) units.Frequency { return c.tfFreqs[s] },
				func(s int) float64 { return c.tf.Gain(s, di) },
				active)
		}
	}
	for _, d := range c.drives {
		d.stepIdx = -1
		d.drive.SetVibration(hdd.Quiet())
	}
}

// applySchedule advances drive di's vibration to the schedule step in
// effect at offset. Per drive, op start offsets are nondecreasing (an op
// starts at max(arrival, drive now) and the clock never rewinds), so the
// step index only moves forward and the scan resumes where the previous
// op left it instead of walking the schedule from the top each time.
func (c *Cluster) applySchedule(di int, offset time.Duration) {
	d := c.drives[di]
	step := d.stepIdx
	for step+1 < len(c.schedule) && c.schedule[step+1].At <= offset {
		step++
	}
	if step == d.stepIdx {
		return
	}
	d.stepIdx = step
	d.drive.SetVibration(c.vibs[step][di])
}

// Preload writes every object's stripe before serving starts (speakers
// silent), so GETs hit allocated storage. Drive timelines advance
// independently; the serving origin is aligned afterwards.
func (c *Cluster) Preload() error {
	// Group each drive's shards up front; per-drive execution is
	// self-contained, so the fan-out is deterministic.
	work := make([][][2]int, len(c.drives)) // drive -> list of (object, shard)
	for o := 0; o < c.cfg.Objects; o++ {
		for j := 0; j < c.coder.TotalShards(); j++ {
			di := c.shardDrive(o, j)
			work[di] = append(work[di], [2]int{o, j})
		}
	}
	_, err := parallel.Run(context.Background(), parallel.Indices(len(c.drives)), c.cfg.Workers,
		func(_ context.Context, di int, _ int) (struct{}, error) {
			d := c.drives[di]
			for _, oj := range work[di] {
				_, resp := d.server.HandleObjectShared(netstore.Put, oj[0], c.stripes[oj[0]][oj[1]])
				if resp.Err != nil {
					return struct{}{}, fmt.Errorf("cluster: preload object %d shard %d on drive %d: %w",
						oj[0], oj[1], di, resp.Err)
				}
			}
			return struct{}{}, nil
		})
	if err != nil {
		return err
	}
	// Align: serving measures offsets from the slowest drive's clock.
	c.origin = c.drives[0].clock.Now()
	for _, d := range c.drives[1:] {
		if t := d.clock.Now(); t.After(c.origin) {
			c.origin = t
		}
	}
	for _, d := range c.drives {
		if dt := c.origin.Sub(d.clock.Now()); dt > 0 {
			d.clock.Advance(dt)
		}
	}
	return nil
}

// PublishMetrics pushes the cluster's serving counters (under the
// "cluster." prefix) and every drive stack's hdd/blockdev/netstore
// counters into a registry. No-op on nil. Metrics never touch the
// virtual clocks or RNGs, so results are identical with metrics on or
// off.
func (c *Cluster) PublishMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	r := c.last
	reg.Add("cluster.requests", int64(r.Requests))
	reg.Add("cluster.gets", int64(r.Gets))
	reg.Add("cluster.puts", int64(r.Puts))
	reg.Add("cluster.get_failures", int64(r.GetFailures))
	reg.Add("cluster.put_failures", int64(r.PutFailures))
	reg.Add("cluster.degraded_reads", int64(r.DegradedReads))
	reg.Add("cluster.degraded_writes", int64(r.DegradedWrites))
	reg.Add("cluster.repair_writes", int64(r.RepairWrites))
	reg.Add("cluster.repair_failures", int64(r.RepairFailures))
	reg.Add("cluster.corrupt_reads", int64(r.CorruptReads))
	reg.Add("cluster.shard_reads", int64(r.ShardReads))
	reg.Add("cluster.shard_writes", int64(r.ShardWrites))
	reg.Add("cluster.shard_read_errors", int64(r.ShardReadErrors))
	reg.Add("cluster.shard_write_errors", int64(r.ShardWriteErrors))
	reg.Add("cluster.steered_gets", int64(r.SteeredGets))
	reg.Add("cluster.replica_reads", int64(r.ReplicaReads))
	reg.Add("cluster.replica_read_errors", int64(r.ReplicaReadErrors))
	reg.Add("cluster.evac_writes", int64(r.EvacWrites))
	reg.Add("cluster.evac_failures", int64(r.EvacFailures))
	reg.Add("cluster.evac_skipped", int64(r.EvacSkipped))
	reg.Add("cluster.bytes_served", r.BytesServed)
	reg.MaxGauge("cluster.goodput_mbps", r.GoodputMBps)
	reg.MaxGauge("cluster.p99_ms", float64(r.P99)/1e6)
	for _, l := range c.latGet {
		reg.Observe("cluster.get_latency_ns", int64(l))
	}
	for _, l := range c.latPut {
		reg.Observe("cluster.put_latency_ns", int64(l))
	}
	for _, d := range c.drives {
		d.drive.PublishMetrics(reg)
		d.disk.PublishMetrics(reg)
		d.server.PublishMetrics(reg)
	}
}
