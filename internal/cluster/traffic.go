package cluster

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"deepnote/internal/netstore"
	"deepnote/internal/parallel"
	"deepnote/internal/sched"
)

// TrafficSpec is the open-loop client workload: requests arrive on a
// fixed deterministic schedule regardless of how the cluster is coping
// (the attacker's favorite arrival process — load does not back off when
// the store degrades), with zipfian key popularity.
type TrafficSpec struct {
	// Requests is the total client request count (default 200).
	Requests int
	// Rate is the arrival rate in requests/second (default 1000): request
	// i arrives at origin + i/Rate, computed in integer nanoseconds.
	Rate float64
	// ReadFraction is the GET share of the mix. nil means the default
	// (0.9); an explicit Ptr(0.0) is a write-only workload. Values
	// outside [0, 1] are rejected.
	ReadFraction *float64
	// ZipfS and ZipfV shape key popularity (defaults 1.2, 1).
	ZipfS, ZipfV float64
	// Seed drives op mix and key choice. nil means the cluster seed; an
	// explicit Ptr(int64(0)) is honored and reproduces like any other
	// seed.
	Seed *int64
}

func (t TrafficSpec) withDefaults(clusterSeed int64) (TrafficSpec, error) {
	if t.Requests <= 0 {
		t.Requests = 200
	}
	if t.Rate <= 0 {
		t.Rate = 1000
	}
	if t.ReadFraction == nil {
		t.ReadFraction = Ptr(0.9)
	}
	if rf := *t.ReadFraction; math.IsNaN(rf) || rf < 0 || rf > 1 {
		return t, fmt.Errorf("cluster: ReadFraction %v outside [0, 1]", rf)
	}
	if t.ZipfS <= 1 {
		t.ZipfS = 1.2
	}
	if t.ZipfV < 1 {
		t.ZipfV = 1
	}
	if t.Seed == nil {
		t.Seed = Ptr(clusterSeed)
	}
	return t, nil
}

// arrivalNS returns request i's open-loop arrival offset in integer
// nanoseconds: i/rate seconds with the division carried out in int64 for
// whole-number rates, so a 10^8-request schedule stays strictly monotone
// instead of accumulating float64 rounding — float64(i)/rate*1e9 loses
// integer precision past 2^53 ns and can emit equal or even decreasing
// arrivals at scale.
func arrivalNS(i int, rate float64) int64 {
	if rate >= 1 && rate <= 1e9 && rate == math.Trunc(rate) {
		r := int64(rate)
		return int64(i)/r*int64(time.Second) + int64(i)%r*int64(time.Second)/r
	}
	return int64(math.Round(float64(i) / rate * 1e9))
}

// ServeResult summarizes one serving run.
type ServeResult struct {
	// Request-level outcomes.
	Requests, Gets, Puts     int
	GetOK, PutOK             int
	GetFailures, PutFailures int
	// DegradedReads are GETs that lost at least one shard and were served
	// from parity; DegradedWrites are PUTs acked with fewer than n shards
	// durable (still ≥ k).
	DegradedReads, DegradedWrites int
	// MinPutShards is the worst acked write redundancy (n when nothing
	// degraded).
	MinPutShards int
	// Read-repair outcomes (background re-replication of shards lost
	// during degraded reads).
	RepairWrites, RepairFailures int
	// CorruptReads counts served GETs whose decoded bytes mismatched the
	// expected object content (must stay 0).
	CorruptReads int
	// Shard-level I/O.
	ShardReads, ShardWrites           int
	ShardReadErrors, ShardWriteErrors int
	// Closed-loop defense outcomes (all 0 with the defense off).
	// SteeredGets are GETs whose initial shard set was reordered away
	// from the at-risk region; ReplicaReads are successful shard reads
	// served from a defense replica (ReplicaReadErrors the failed ones —
	// a replica whose bytes mismatch its shard is a checksum miss, a
	// failed op, never a corrupt read). EvacWrites/EvacFailures count the
	// preemptive re-placement writes; EvacSkipped counts shards the plan
	// could not re-place because no container was outside the predicted
	// blast radius.
	SteeredGets                     int
	ReplicaReads, ReplicaReadErrors int
	EvacWrites, EvacFailures        int
	EvacSkipped                     int
	// BytesServed is the object bytes moved by successful requests.
	BytesServed int64
	// Span is the time from first arrival to last client completion.
	Span time.Duration
	// GoodputMBps is BytesServed over Span in MB/s.
	GoodputMBps float64
	// Client latency percentiles over successful requests.
	P50, P99, Max time.Duration
}

// GetAvailability is the served fraction of GETs (1 when none issued).
func (r ServeResult) GetAvailability() float64 {
	if r.Gets == 0 {
		return 1
	}
	return float64(r.GetOK) / float64(r.Gets)
}

// PutAvailability is the acked fraction of PUTs (1 when none issued).
func (r ServeResult) PutAvailability() float64 {
	if r.Puts == 0 {
		return 1
	}
	return float64(r.PutOK) / float64(r.Puts)
}

// Availability is the served fraction of all requests.
func (r ServeResult) Availability() float64 {
	if r.Requests == 0 {
		return 1
	}
	return float64(r.GetOK+r.PutOK) / float64(r.Requests)
}

// reqState is one client request in the arena: fixed-size, no per-request
// heap objects. Shards are always issued as a prefix [0, nextShard), so a
// counter replaces the old per-request tried bitmap, and eager in-flight
// verification (see dispatch) replaces the old per-request [][]byte of
// returned payloads.
type reqState struct {
	arrival int64 // ns from origin
	end     int64 // ns from origin, max over this request's shard ops
	object  int32
	// nextShard is one past the highest source issued: an index into the
	// identity shard order 0..n−1, or — for a request under an active
	// defense phase — into that phase's source order (see defenseOrder).
	nextShard uint16
	shardOK   uint16
	failCount uint16
	flags     uint8
	// phase is 1 + the defense phase in force at arrival (0 = none: the
	// request predates the first fix, or the defense is off).
	phase uint8
}

// reqState flags.
const (
	reqPut uint8 = 1 << iota
	reqDone
	reqOK
	// reqAllFull: every successful GET shard matched its stripe
	// byte-for-byte (parity included).
	reqAllFull
	// reqAllDirect: every successful GET data shard matched through its
	// real-byte prefix (padding excluded) — exactly what a direct k-shard
	// decode would compare after the join truncates to the object size.
	reqAllDirect
)

// Event-ID flags (low byte of a queue item's ID).
const (
	evPut uint8 = 1 << iota
	evRepair
	// evReplica: this GET reads the shard's defense replica (local key
	// object+Objects on the replica's drive) instead of its home.
	evReplica
	// evEvac: a defense re-placement write; the request index addresses
	// the defense plan's evac list, not the client arena.
	evEvac
)

// packEv encodes a shard op as a queue event ID: request index (repair
// index for evRepair events) in the high bits, shard in bits 8–23, flags
// in the low byte. Events are plain integers so the queues never hold
// pointers or closures.
func packEv(req int32, shard int, flags uint8) uint64 {
	return uint64(uint32(req))<<24 | uint64(uint16(shard))<<8 | uint64(flags)
}

// opResult is one dispatched shard op's outcome, recorded by the owning
// drive during an epoch and folded into request state serially afterward.
type opResult struct {
	end   int64
	req   int32
	shard uint16
	bits  uint8
}

// opResult bits.
const (
	opOK uint8 = 1 << iota
	opPut
	opFull    // GET payload matched the stripe shard byte-for-byte
	opTrunc   // GET payload matched through the shard's real-byte prefix
	opReplica // GET was served from a defense replica
)

// retainedShard carries the actual device bytes of a GET that mismatched
// its stripe, for the exact decode fallback.
type retainedShard struct {
	req   int32
	shard uint16
	data  []byte
}

// retKey indexes retained shard bytes by (request, shard).
type retKey struct {
	req   int32
	shard uint16
}

// failRec is one failed GET shard op, kept for degraded accounting and
// read-repair planning.
type failRec struct {
	req   int32
	shard uint16
}

// repairOp is one background shard re-write.
type repairOp struct {
	arrival int64
	object  int32
	shard   uint16
	ok      bool
}

// Serve runs the workload to completion and returns the summary.
//
// The engine is an epoch-synchronized discrete-event simulation (see
// internal/sched): each epoch's shard ops are pushed onto per-drive event
// queues in deterministic global order, every drive drains its queue
// concurrently in (arrival, issue-seq) order on its own clock — an op
// starts at max(its arrival, the drive's current time), so a backlogged
// drive queues work exactly like a congested server — and results are
// folded back serially between epochs. GETs fetch the k data shards
// first and fall back to parity shard-by-shard in later epochs (degraded
// reads); PUTs write all n shards in one epoch and ack at ≥ k durable.
// After the client window, lost shards observed by degraded reads are
// re-written in a background read-repair epoch.
//
// GET payloads are verified against the precomputed stripe bytes inside
// the drive loop (the server hands out a view of its request buffer, so
// nothing is copied); only the rare mismatching shard is retained for an
// exact reconstruct-and-compare fallback. Results are byte-identical at
// any Config.Workers value.
func (c *Cluster) Serve(spec TrafficSpec) (ServeResult, error) {
	spec, err := spec.withDefaults(c.cfg.seed())
	if err != nil {
		return ServeResult{}, err
	}
	if c.origin.IsZero() {
		return ServeResult{}, fmt.Errorf("cluster: Serve before Preload")
	}
	n := c.coder.TotalShards()
	k := c.coder.DataShards()

	// Deterministic open-loop client stream: one Float64 (op mix) and one
	// zipf draw (key) per request, in request order.
	rng := rand.New(rand.NewSource(*spec.Seed))
	zipf := rand.NewZipf(rng, spec.ZipfS, spec.ZipfV, uint64(c.cfg.Objects-1))
	rf := *spec.ReadFraction

	if cap(c.reqsBuf) < spec.Requests {
		c.reqsBuf = make([]reqState, spec.Requests)
	}
	reqs := c.reqsBuf[:spec.Requests]
	c.failedBuf = c.failedBuf[:0]
	c.repairBuf = c.repairBuf[:0]
	clear(c.retained)
	c.latGet, c.latPut = c.latGet[:0], c.latPut[:0]

	res := ServeResult{Requests: spec.Requests, MinPutShards: n}
	for i := range reqs {
		fl := reqAllFull | reqAllDirect
		if rng.Float64() >= rf {
			fl |= reqPut
		}
		reqs[i] = reqState{arrival: arrivalNS(i, spec.Rate), object: int32(zipf.Uint64()), flags: fl}
		if c.defense != nil {
			if p := c.defense.phaseFor(reqs[i].arrival); p >= 0 {
				reqs[i].phase = uint8(p + 1)
			}
		}
	}

	// The defense plan's re-placement writes go on the queues first:
	// they share activation times with the requests that will read the
	// replicas, and pushing them ahead gives them the lower sequence
	// numbers that break the tie (a replica must exist on a drive's
	// timeline before the first steered read reaches it).
	queued := 0
	if c.defense != nil {
		res.EvacSkipped = c.defense.skipped
		for i := range c.defense.evacs {
			ev := &c.defense.evacs[i]
			ev.ok = false
			c.drives[ev.drive].runner.Queue.Push(ev.at, packEv(int32(i), int(ev.shard), evPut|evEvac))
			queued++
		}
	}

	// Epoch 0: PUTs stripe to all n shards; GETs try their first k
	// sources — the k data shards, or under an active defense phase the
	// first k entries of the phase's source order (healthy homes and
	// replicas ahead of anything inside the predicted blast radius).
	for ri := range reqs {
		r := &reqs[ri]
		limit, fl := k, uint8(0)
		if r.flags&reqPut != 0 {
			res.Puts++
			limit, fl = n, evPut
		} else {
			res.Gets++
		}
		r.nextShard = uint16(limit)
		if order := c.defenseOrder(r); order != nil && r.flags&reqPut == 0 {
			steered := false
			for idx := 0; idx < limit; idx++ {
				di, j, sfl := c.resolveSource(r, order[idx])
				if sfl != 0 || j != idx {
					steered = true
				}
				c.drives[di].runner.Queue.Push(r.arrival, packEv(int32(ri), j, sfl))
			}
			if steered {
				res.SteeredGets++
			}
			queued += limit
			continue
		}
		for j := 0; j < limit; j++ {
			c.drives[c.shardDrive(int(r.object), j)].runner.Queue.Push(r.arrival, packEv(int32(ri), j, fl))
		}
		queued += limit
	}
	pending := c.pendingBuf[0][:0]
	for ri := range reqs {
		pending = append(pending, int32(ri))
	}
	next := c.pendingBuf[1][:0]

	for queued > 0 {
		if err := c.drainDrives(); err != nil {
			return ServeResult{}, err
		}
		c.combine(reqs, &res)
		// Settle and plan the next epoch: PUTs ack at ≥ k durable; GETs
		// walk the parity shards until k succeed or the stripe is spent.
		next = next[:0]
		queued = 0
		for _, ri := range pending {
			r := &reqs[ri]
			if r.flags&reqPut != 0 {
				r.flags |= reqDone
				if int(r.shardOK) >= k {
					r.flags |= reqOK
				}
				continue
			}
			if int(r.shardOK) >= k {
				r.flags |= reqDone | reqOK
				continue
			}
			need := k - int(r.shardOK)
			issued := 0
			order := c.defenseOrder(r)
			for idx := int(r.nextShard); idx < n && issued < need; idx++ {
				di, j, sfl := c.shardDrive(int(r.object), idx), idx, uint8(0)
				if order != nil {
					di, j, sfl = c.resolveSource(r, order[idx])
				}
				c.drives[di].runner.Queue.Push(r.end, packEv(ri, j, sfl))
				r.nextShard++
				issued++
			}
			if issued == 0 {
				r.flags |= reqDone
			} else {
				next = append(next, ri)
				queued += issued
			}
		}
		pending, next = next, pending
	}
	c.pendingBuf[0], c.pendingBuf[1] = pending[:0], next[:0]

	// Fold the re-placement outcomes (the writes ran inside the epoch
	// drains, interleaved with client traffic on the target drives).
	if c.defense != nil {
		for i := range c.defense.evacs {
			res.EvacWrites++
			if !c.defense.evacs[i].ok {
				res.EvacFailures++
			}
		}
	}

	// Settle outcomes in request order: latencies, corruption checks, and
	// read-repair planning ("first observer wins" on each lost shard —
	// the fail list is sorted so observers are visited in request order).
	sort.Slice(c.failedBuf, func(i, j int) bool {
		if c.failedBuf[i].req != c.failedBuf[j].req {
			return c.failedBuf[i].req < c.failedBuf[j].req
		}
		return c.failedBuf[i].shard < c.failedBuf[j].shard
	})
	type objShard struct {
		object int32
		shard  uint16
	}
	repairSeen := map[objShard]bool{}
	fi := 0
	for ri := range reqs {
		r := &reqs[ri]
		if r.end > int64(res.Span) {
			res.Span = time.Duration(r.end)
		}
		fj := fi
		for fj < len(c.failedBuf) && int(c.failedBuf[fj].req) == ri {
			fj++
		}
		fails := c.failedBuf[fi:fj]
		fi = fj
		lat := time.Duration(r.end - r.arrival)
		if r.flags&reqPut != 0 {
			if r.flags&reqOK == 0 {
				res.PutFailures++
				continue
			}
			res.PutOK++
			if int(r.shardOK) < n {
				res.DegradedWrites++
			}
			if int(r.shardOK) < res.MinPutShards {
				res.MinPutShards = int(r.shardOK)
			}
			res.BytesServed += int64(c.cfg.ObjectSize)
			c.latPut = append(c.latPut, lat)
			continue
		}
		if r.flags&reqOK == 0 {
			res.GetFailures++
			continue
		}
		res.GetOK++
		res.BytesServed += int64(c.cfg.ObjectSize)
		c.latGet = append(c.latGet, lat)
		if len(fails) > 0 {
			res.DegradedReads++
		}
		switch {
		case len(fails) == 0:
			// Direct read: the decode is the k data shards concatenated
			// and truncated to the object size, so the per-shard
			// real-byte-prefix matches are exactly the old decoded-bytes
			// comparison.
			if r.flags&reqAllDirect == 0 {
				res.CorruptReads++
			}
		case r.flags&reqAllFull != 0:
			// Degraded, but every surviving shard matched its stripe
			// byte-for-byte: reconstruction reproduces the stripe. Clean.
		default:
			if err := c.verifyExact(int32(ri), r, fails, &res); err != nil {
				return ServeResult{}, err
			}
		}
		for _, f := range fails {
			key := objShard{r.object, f.shard}
			if repairSeen[key] {
				continue
			}
			repairSeen[key] = true
			c.repairBuf = append(c.repairBuf, repairOp{arrival: r.end, object: r.object, shard: f.shard})
		}
	}

	// Client-visible span and latency percentiles, before repair traffic.
	if res.Span > 0 {
		res.GoodputMBps = float64(res.BytesServed) / 1e6 / res.Span.Seconds()
	}
	all := append(append([]time.Duration(nil), c.latGet...), c.latPut...)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		res.P50 = all[(len(all)-1)/2]
		res.P99 = all[(len(all)*99+99)/100-1]
		res.Max = all[len(all)-1]
	}

	// Background read-repair epoch.
	if len(c.repairBuf) > 0 {
		for i := range c.repairBuf {
			rp := &c.repairBuf[i]
			c.drives[c.shardDrive(int(rp.object), int(rp.shard))].runner.Queue.Push(
				rp.arrival, packEv(int32(i), int(rp.shard), evPut|evRepair))
		}
		if err := c.drainDrives(); err != nil {
			return ServeResult{}, err
		}
		for i := range c.repairBuf {
			res.RepairWrites++
			if !c.repairBuf[i].ok {
				res.RepairFailures++
			}
		}
	}

	c.last = res
	return res, nil
}

// drainDrives runs every drive's event queue to empty, fanning out
// across Config.Workers. Each drive is self-contained — own queue, own
// clock, own RNGs, own result buffer — so the fan-out never changes
// results, only wall-clock time.
func (c *Cluster) drainDrives() error {
	_, err := parallel.Run(context.Background(), parallel.Indices(len(c.drives)), c.cfg.Workers,
		func(_ context.Context, di int, _ int) (struct{}, error) {
			d := c.drives[di]
			d.runner.Run(c.origin, func(it sched.Item) { c.dispatch(di, it) })
			return struct{}{}, nil
		})
	return err
}

// dispatch executes one shard op on drive di. The runner has already
// advanced the drive's clock to max(event time, drive now); everything
// touched here is owned by the drive (its stack, its result buffers) or
// read-only (request arena, stripes), so drives dispatch concurrently
// without synchronization. The steady-state path does not allocate: the
// op is a packed integer, the payload is the cached stripe, and GET
// verification compares the server's buffer in place.
func (c *Cluster) dispatch(di int, it sched.Item) {
	d := c.drives[di]
	c.applySchedule(di, d.clock.Now().Sub(c.origin))
	flags := uint8(it.ID)
	if flags&evRepair != 0 {
		rp := &c.repairBuf[int32(it.ID>>24)]
		_, resp := d.server.HandleObjectShared(netstore.Put, int(rp.object), c.stripes[rp.object][rp.shard])
		rp.ok = resp.Err == nil
		return
	}
	if flags&evEvac != 0 {
		ev := &c.defense.evacs[int32(it.ID>>24)]
		_, resp := d.server.HandleObjectShared(netstore.Put, int(ev.object)+c.cfg.Objects, c.stripes[ev.object][ev.shard])
		ev.ok = resp.Err == nil
		return
	}
	ri := int32(it.ID >> 24)
	shard := int(uint16(it.ID >> 8))
	r := &c.reqsBuf[ri]
	op, bits := netstore.Get, uint8(0)
	var payload []byte
	if flags&evPut != 0 {
		op, bits = netstore.Put, opPut
		payload = c.stripes[r.object][shard]
	}
	key := int(r.object)
	if flags&evReplica != 0 {
		key += c.cfg.Objects
		bits |= opReplica
	}
	data, resp := d.server.HandleObjectShared(op, key, payload)
	if flags&evReplica != 0 {
		// A replica read succeeds only if the bytes match the shard: a
		// mismatch means the re-placement write never landed (or landed
		// corrupted) and reads as a checksum miss — a failed op, never a
		// corrupt serve, never retained.
		if resp.Err == nil && bytes.Equal(data, c.stripes[r.object][shard]) {
			bits |= opOK | opFull | opTrunc
		}
		d.results = append(d.results, opResult{
			end: int64(d.clock.Now().Sub(c.origin)), req: ri, shard: uint16(shard), bits: bits})
		return
	}
	if resp.Err == nil {
		bits |= opOK
		if flags&evPut == 0 {
			stripe := c.stripes[r.object][shard]
			if bytes.Equal(data, stripe) {
				bits |= opFull | opTrunc
			} else {
				// A data shard's tail past the object size is padding the
				// join drops; judge the real-byte prefix separately.
				if tl := c.cfg.ObjectSize - shard*c.shardSize; shard < c.coder.DataShards() && tl < c.shardSize {
					if tl < 0 {
						tl = 0
					}
					if bytes.Equal(data[:tl], stripe[:tl]) {
						bits |= opTrunc
					}
				}
				d.retained = append(d.retained, retainedShard{
					req: ri, shard: uint16(shard), data: append([]byte(nil), data...)})
			}
		}
	}
	d.results = append(d.results, opResult{
		end: int64(d.clock.Now().Sub(c.origin)), req: ri, shard: uint16(shard), bits: bits})
}

// combine folds every drive's epoch results into the request arena and
// the run counters, serially in drive order. All folds are commutative
// across drives (counter increments, max of end times; the fail list is
// sorted before use), so the fold order never shows in the output.
func (c *Cluster) combine(reqs []reqState, res *ServeResult) {
	for _, d := range c.drives {
		for i := range d.results {
			rec := &d.results[i]
			r := &reqs[rec.req]
			if rec.bits&opPut != 0 {
				res.ShardWrites++
			} else {
				res.ShardReads++
			}
			switch {
			case rec.bits&opOK != 0:
				r.shardOK++
				if rec.bits&opReplica != 0 {
					res.ReplicaReads++
				}
				if rec.bits&opPut == 0 {
					if rec.bits&opFull == 0 {
						r.flags &^= reqAllFull
					}
					if rec.bits&opTrunc == 0 {
						r.flags &^= reqAllDirect
					}
				}
			case rec.bits&opPut != 0:
				res.ShardWriteErrors++
			default:
				res.ShardReadErrors++
				if rec.bits&opReplica != 0 {
					res.ReplicaReadErrors++
				}
				r.failCount++
				c.failedBuf = append(c.failedBuf, failRec{req: rec.req, shard: rec.shard})
			}
			if rec.end > r.end {
				r.end = rec.end
			}
		}
		d.results = d.results[:0]
		for _, rb := range d.retained {
			c.retained[retKey{rb.req, rb.shard}] = rb.data
		}
		d.retained = d.retained[:0]
	}
}

// verifyExact is the slow-path corruption check for a degraded GET whose
// surviving shards did not all match their stripes: rebuild the exact
// shard set the client held (stripe bytes for matching shards, retained
// device bytes for mismatched ones), reconstruct, join, and compare
// against the object's expected content — byte-for-byte the eager path's
// pre-cache decode check.
func (c *Cluster) verifyExact(ri int32, r *reqState, fails []failRec, res *ServeResult) error {
	shards := make([][]byte, c.coder.TotalShards())
	order := c.defenseOrder(r)
	for idx := 0; idx < int(r.nextShard); idx++ {
		j := idx
		if order != nil {
			j = order[idx].shard()
		}
		failed := false
		for _, f := range fails {
			if int(f.shard) == j {
				failed = true
				break
			}
		}
		if failed {
			continue
		}
		src := c.stripes[r.object][j]
		if data, ok := c.retained[retKey{ri, uint16(j)}]; ok {
			src = data
		}
		shards[j] = append([]byte(nil), src...)
	}
	dataIntact := true
	for j := 0; j < c.coder.DataShards(); j++ {
		if shards[j] == nil {
			dataIntact = false
			break
		}
	}
	if !dataIntact {
		if err := c.coder.Reconstruct(shards); err != nil {
			return fmt.Errorf("cluster: reconstruct object %d: %w", r.object, err)
		}
	}
	data, err := c.coder.Join(shards, c.cfg.ObjectSize)
	if err != nil {
		return fmt.Errorf("cluster: join object %d: %w", r.object, err)
	}
	expect := objectPayload(int(r.object), c.cfg.ObjectSize)
	for i := range data {
		if data[i] != expect[i] {
			res.CorruptReads++
			break
		}
	}
	return nil
}
