package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"deepnote/internal/netstore"
	"deepnote/internal/parallel"
)

// TrafficSpec is the open-loop client workload: requests arrive on a
// fixed deterministic schedule regardless of how the cluster is coping
// (the attacker's favorite arrival process — load does not back off when
// the store degrades), with zipfian key popularity.
type TrafficSpec struct {
	// Requests is the total client request count (default 200).
	Requests int
	// Rate is the arrival rate in requests/second (default 1000): request
	// i arrives at origin + i/Rate.
	Rate float64
	// ReadFraction is the GET share of the mix (default 0.9).
	ReadFraction float64
	// ZipfS and ZipfV shape key popularity (defaults 1.2, 1).
	ZipfS, ZipfV float64
	// Seed drives op mix and key choice (default: the cluster seed).
	Seed int64
}

func (t TrafficSpec) withDefaults(clusterSeed int64) TrafficSpec {
	if t.Requests <= 0 {
		t.Requests = 200
	}
	if t.Rate <= 0 {
		t.Rate = 1000
	}
	if t.ReadFraction <= 0 {
		t.ReadFraction = 0.9
	}
	if t.ZipfS <= 1 {
		t.ZipfS = 1.2
	}
	if t.ZipfV < 1 {
		t.ZipfV = 1
	}
	if t.Seed == 0 {
		t.Seed = clusterSeed
	}
	return t
}

// ServeResult summarizes one serving run.
type ServeResult struct {
	// Request-level outcomes.
	Requests, Gets, Puts     int
	GetOK, PutOK             int
	GetFailures, PutFailures int
	// DegradedReads are GETs that lost at least one shard and were served
	// from parity; DegradedWrites are PUTs acked with fewer than n shards
	// durable (still ≥ k).
	DegradedReads, DegradedWrites int
	// MinPutShards is the worst acked write redundancy (n when nothing
	// degraded).
	MinPutShards int
	// Read-repair outcomes (background re-replication of shards lost
	// during degraded reads).
	RepairWrites, RepairFailures int
	// CorruptReads counts served GETs whose decoded bytes mismatched the
	// expected object content (must stay 0).
	CorruptReads int
	// Shard-level I/O.
	ShardReads, ShardWrites           int
	ShardReadErrors, ShardWriteErrors int
	// BytesServed is the object bytes moved by successful requests.
	BytesServed int64
	// Span is the time from first arrival to last client completion.
	Span time.Duration
	// GoodputMBps is BytesServed over Span in MB/s.
	GoodputMBps float64
	// Client latency percentiles over successful requests.
	P50, P99, Max time.Duration
}

// GetAvailability is the served fraction of GETs (1 when none issued).
func (r ServeResult) GetAvailability() float64 {
	if r.Gets == 0 {
		return 1
	}
	return float64(r.GetOK) / float64(r.Gets)
}

// PutAvailability is the acked fraction of PUTs (1 when none issued).
func (r ServeResult) PutAvailability() float64 {
	if r.Puts == 0 {
		return 1
	}
	return float64(r.PutOK) / float64(r.Puts)
}

// Availability is the served fraction of all requests.
func (r ServeResult) Availability() float64 {
	if r.Requests == 0 {
		return 1
	}
	return float64(r.GetOK+r.PutOK) / float64(r.Requests)
}

// request is one in-flight client operation.
type request struct {
	op      netstore.Op
	object  int
	arrival time.Duration // offset from origin

	done, ok bool
	degraded bool
	end      time.Duration
	shardOK  int
	tried    []bool
	failed   []int
	got      [][]byte
}

// shardOp is one shard-level operation bound for a drive queue.
type shardOp struct {
	req     int // owning request index; -1 for background repair
	object  int
	shard   int
	op      netstore.Op
	drive   int
	arrival time.Duration

	ok   bool
	end  time.Duration
	data []byte
}

// Serve runs the workload to completion and returns the summary.
//
// The engine is bulk-synchronous: each round's shard ops are assigned to
// per-drive FIFO queues in deterministic global order, the drives are
// processed concurrently (each is self-contained — own clock, own
// mechanics RNG, own jitter RNG), and rounds are combined serially. A
// shard op starts at max(its issue offset, the drive's current time), so
// a backlogged drive queues work exactly like a congested server. GETs
// fetch the k data shards first and fall back to parity shard-by-shard
// in later rounds (degraded reads); PUTs write all n shards in one round
// and ack at ≥ k durable. After the client window, lost shards observed
// by degraded reads are re-written in a background read-repair round.
// Results are byte-identical at any Config.Workers value.
func (c *Cluster) Serve(spec TrafficSpec) (ServeResult, error) {
	spec = spec.withDefaults(c.cfg.Seed)
	if c.origin.IsZero() {
		return ServeResult{}, fmt.Errorf("cluster: Serve before Preload")
	}
	n := c.coder.TotalShards()
	k := c.coder.DataShards()

	// Deterministic open-loop arrivals.
	rng := rand.New(rand.NewSource(spec.Seed))
	zipf := rand.NewZipf(rng, spec.ZipfS, spec.ZipfV, uint64(c.cfg.Objects-1))
	reqs := make([]*request, spec.Requests)
	for i := range reqs {
		op := netstore.Get
		if rng.Float64() >= spec.ReadFraction {
			op = netstore.Put
		}
		reqs[i] = &request{
			op:      op,
			object:  int(zipf.Uint64()),
			arrival: time.Duration(float64(i) / spec.Rate * float64(time.Second)),
			tried:   make([]bool, n),
			got:     make([][]byte, n),
		}
	}

	res := ServeResult{Requests: spec.Requests, MinPutShards: n}
	c.latGet, c.latPut = nil, nil

	// Round 0: PUTs stripe to all n shards; GETs try the k data shards.
	var ops []shardOp
	for ri, r := range reqs {
		limit := k
		if r.op == netstore.Put {
			res.Puts++
			limit = n
		} else {
			res.Gets++
		}
		for j := 0; j < limit; j++ {
			r.tried[j] = true
			ops = append(ops, shardOp{req: ri, object: r.object, shard: j, op: r.op,
				drive: c.shardDrive(r.object, j), arrival: r.arrival})
		}
	}

	for len(ops) > 0 {
		if err := c.runRound(ops); err != nil {
			return ServeResult{}, err
		}
		// Combine serially, in deterministic op order.
		for i := range ops {
			op := &ops[i]
			r := reqs[op.req]
			if op.op == netstore.Get {
				res.ShardReads++
			} else {
				res.ShardWrites++
			}
			if op.ok {
				r.shardOK++
				if op.op == netstore.Get {
					r.got[op.shard] = op.data
				}
			} else {
				if op.op == netstore.Get {
					res.ShardReadErrors++
				} else {
					res.ShardWriteErrors++
				}
				r.failed = append(r.failed, op.shard)
			}
			if op.end > r.end {
				r.end = op.end
			}
		}
		// Settle requests and plan the next round: degraded GETs walk the
		// parity shards until k succeed or the stripe is exhausted.
		ops = ops[:0]
		for ri, r := range reqs {
			if r.done {
				continue
			}
			if r.op == netstore.Put {
				r.done = true
				r.ok = r.shardOK >= k
				continue
			}
			if r.shardOK >= k {
				r.done, r.ok = true, true
				continue
			}
			queued := 0
			need := k - r.shardOK
			for j := 0; j < n && queued < need; j++ {
				if r.tried[j] {
					continue
				}
				r.tried[j] = true
				queued++
				ops = append(ops, shardOp{req: ri, object: r.object, shard: j, op: netstore.Get,
					drive: c.shardDrive(r.object, j), arrival: r.end})
			}
			if queued == 0 {
				r.done, r.ok = true, false
			}
		}
	}

	// Settle outcomes, decode GETs, and collect repair candidates.
	type repairKey struct{ object, shard int }
	repaired := map[repairKey]bool{}
	var repairs []shardOp
	for _, r := range reqs {
		lat := r.end - r.arrival
		if r.op == netstore.Put {
			if !r.ok {
				res.PutFailures++
				continue
			}
			res.PutOK++
			if r.shardOK < n {
				res.DegradedWrites++
			}
			if r.shardOK < res.MinPutShards {
				res.MinPutShards = r.shardOK
			}
			res.BytesServed += int64(c.cfg.ObjectSize)
			c.latPut = append(c.latPut, lat)
			continue
		}
		if !r.ok {
			res.GetFailures++
			continue
		}
		res.GetOK++
		res.BytesServed += int64(c.cfg.ObjectSize)
		c.latGet = append(c.latGet, lat)
		if len(r.failed) > 0 {
			res.DegradedReads++
		}
		if err := c.verifyRead(r, &res); err != nil {
			return ServeResult{}, err
		}
		// Read-repair: shards this GET observed as lost get re-written in
		// the background round (first observer wins).
		for _, j := range r.failed {
			key := repairKey{r.object, j}
			if repaired[key] {
				continue
			}
			repaired[key] = true
			repairs = append(repairs, shardOp{req: -1, object: r.object, shard: j, op: netstore.Put,
				drive: c.shardDrive(r.object, j), arrival: r.end, data: c.stripes[r.object][j]})
		}
	}

	// Client-visible span and latency percentiles, before repair traffic.
	for _, r := range reqs {
		if r.end > res.Span {
			res.Span = r.end
		}
	}
	if res.Span > 0 {
		res.GoodputMBps = float64(res.BytesServed) / 1e6 / res.Span.Seconds()
	}
	all := append(append([]time.Duration(nil), c.latGet...), c.latPut...)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		res.P50 = all[(len(all)-1)/2]
		res.P99 = all[(len(all)*99+99)/100-1]
		res.Max = all[len(all)-1]
	}

	// Background read-repair round.
	if len(repairs) > 0 {
		if err := c.runRound(repairs); err != nil {
			return ServeResult{}, err
		}
		for _, op := range repairs {
			res.RepairWrites++
			if !op.ok {
				res.RepairFailures++
			}
		}
	}

	c.last = res
	return res, nil
}

// verifyRead decodes a served GET and checks it against the object's
// expected content.
func (c *Cluster) verifyRead(r *request, res *ServeResult) error {
	shards := make([][]byte, c.coder.TotalShards())
	copy(shards, r.got)
	dataIntact := true
	for j := 0; j < c.coder.DataShards(); j++ {
		if shards[j] == nil {
			dataIntact = false
			break
		}
	}
	if !dataIntact {
		if err := c.coder.Reconstruct(shards); err != nil {
			return fmt.Errorf("cluster: reconstruct object %d: %w", r.object, err)
		}
	}
	data, err := c.coder.Join(shards, c.cfg.ObjectSize)
	if err != nil {
		return fmt.Errorf("cluster: join object %d: %w", r.object, err)
	}
	expect := objectPayload(r.object, c.cfg.ObjectSize)
	for i := range data {
		if data[i] != expect[i] {
			res.CorruptReads++
			break
		}
	}
	return nil
}

// runRound executes one batch of shard ops: ops are split into per-drive
// FIFO queues preserving global order, then each drive runs its queue on
// its own clock.
func (c *Cluster) runRound(ops []shardOp) error {
	queues := make([][]int, len(c.drives))
	for i := range ops {
		queues[ops[i].drive] = append(queues[ops[i].drive], i)
	}
	_, err := parallel.Run(context.Background(), parallel.Indices(len(c.drives)), c.cfg.Workers,
		func(_ context.Context, di int, _ int) (struct{}, error) {
			d := c.drives[di]
			for _, oi := range queues[di] {
				op := &ops[oi]
				start := op.arrival
				if now := d.clock.Now().Sub(c.origin); now > start {
					start = now
				} else {
					d.clock.Advance(start - now)
				}
				c.applySchedule(di, start)
				var payload []byte
				if op.op == netstore.Put {
					payload = op.data
					if payload == nil {
						payload = c.stripes[op.object][op.shard]
					}
				}
				data, resp := d.server.HandleObject(op.op, op.object, payload)
				op.ok = resp.Err == nil
				op.end = d.clock.Now().Sub(c.origin)
				if op.ok && op.op == netstore.Get {
					op.data = data
				}
			}
			return struct{}{}, nil
		})
	return err
}
