package cluster

import (
	"reflect"
	"testing"
	"time"

	"deepnote/internal/sig"
	"deepnote/internal/units"
)

func buildServing(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Preload(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestWriteOnlyWorkload is the ReadFraction-zero regression test: an
// explicit Ptr(0.0) must mean "no reads", not "use the 0.9 default" —
// the bug the pointer field fixed.
func TestWriteOnlyWorkload(t *testing.T) {
	c := buildServing(t, testConfig(0))
	res, err := c.Serve(TrafficSpec{Requests: 80, Rate: 2000, ReadFraction: Ptr(0.0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gets != 0 {
		t.Fatalf("write-only workload executed %d GETs, want 0", res.Gets)
	}
	if res.Puts != 80 || res.ShardReads != 0 {
		t.Fatalf("write-only workload: Puts=%d ShardReads=%d, want 80 and 0", res.Puts, res.ShardReads)
	}
}

// TestReadOnlyWorkload: the other endpoint of the valid range.
func TestReadOnlyWorkload(t *testing.T) {
	c := buildServing(t, testConfig(0))
	res, err := c.Serve(TrafficSpec{Requests: 80, Rate: 2000, ReadFraction: Ptr(1.0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Puts != 0 || res.Gets != 80 {
		t.Fatalf("read-only workload: Gets=%d Puts=%d, want 80 and 0", res.Gets, res.Puts)
	}
}

// TestReadFractionOutOfRangeRejected: fractions outside [0, 1] are
// configuration errors, not clamped or silently defaulted.
func TestReadFractionOutOfRangeRejected(t *testing.T) {
	c := buildServing(t, testConfig(0))
	for _, rf := range []float64{-0.1, 1.5} {
		if _, err := c.Serve(TrafficSpec{Requests: 10, ReadFraction: Ptr(rf)}); err == nil {
			t.Fatalf("ReadFraction %v accepted, want error", rf)
		}
	}
}

// TestSeedZeroReproduces is the Seed-zero regression test: an explicit
// zero seed (cluster and traffic) is honored and reproduces exactly,
// instead of being treated as "unset" and overridden.
func TestSeedZeroReproduces(t *testing.T) {
	run := func() ServeResult {
		cfg := testConfig(0)
		cfg.Seed = Ptr(int64(0))
		cfg.Layout = cfg.Layout.WithSpeakersAt(sig.NewTone(650*units.Hz), 0)
		c := buildServing(t, cfg)
		c.SetSchedule([]ScheduleStep{{At: 0, Active: []bool{true}}})
		spec := testTraffic()
		spec.Seed = Ptr(int64(0))
		res, err := c.Serve(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Seed 0 did not reproduce:\n%+v\nvs\n%+v", a, b)
	}
	// And seed zero must actually be a distinct stream, not the default.
	cfg := testConfig(0)
	c := buildServing(t, cfg) // default seed 1
	spec := testTraffic()
	spec.Requests = 2000
	base, err := c.Serve(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = Ptr(int64(0))
	zero, err := c.Serve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if base.Puts == zero.Puts && base.P50 == zero.P50 && base.Max == zero.Max {
		t.Fatal("explicit Seed 0 produced the default-seed stream; zero is being treated as unset")
	}
}

// TestArrivalStrictlyMonotoneAt1e8 pins the integer-nanosecond arrival
// fix: at 10^8 requests the old float64(i)/rate*1e9 computation crosses
// 2^53 and starts emitting non-increasing arrivals; the int64 path must
// stay strictly monotone all the way.
func TestArrivalStrictlyMonotoneAt1e8(t *testing.T) {
	const n = 100_000_000
	const rate = 1e6
	prev := arrivalNS(0, rate)
	if prev != 0 {
		t.Fatalf("arrival(0) = %d, want 0", prev)
	}
	for i := 1; i <= n; i++ {
		at := arrivalNS(i, rate)
		if at <= prev {
			t.Fatalf("arrival(%d) = %d not after arrival(%d) = %d", i, at, i-1, prev)
		}
		prev = at
	}
	// The exact-rate path is exact: request i arrives at i/rate seconds.
	if got := arrivalNS(n, rate); got != int64(n/rate)*int64(time.Second) {
		t.Fatalf("arrival(%d) = %d, want %d", n, got, int64(n/rate)*int64(time.Second))
	}
}

// TestArrivalMonotoneFractionalRate: the float fallback for non-integral
// rates must still be nondecreasing.
func TestArrivalMonotoneFractionalRate(t *testing.T) {
	for _, rate := range []float64{0.5, 3.7, 2499.5} {
		prev := int64(-1)
		for i := 0; i < 200_000; i++ {
			at := arrivalNS(i, rate)
			if at < prev {
				t.Fatalf("rate %v: arrival(%d) = %d below arrival(%d) = %d", rate, i, at, i-1, prev)
			}
			prev = at
		}
	}
}

// TestCachedTransferMatchesDirect is the differential gate for the
// transfer-function cache: for every drive, schedule step, and active
// mask, the vibration superposed from cached per-(speaker, drive) gains
// must equal the direct per-op chain walk (Layout.VibrationAt)
// bit-for-bit, across a grid of attack tones spanning the drive's
// response bands.
func TestCachedTransferMatchesDirect(t *testing.T) {
	for _, freq := range []units.Frequency{120 * units.Hz, 650 * units.Hz, 1700 * units.Hz, 3000 * units.Hz, 5200 * units.Hz} {
		cfg := testConfig(0)
		cfg.DrivesPerContainer = 2
		// Mixed tones: three speakers at the grid frequency, one detuned,
		// so superposition exercises both coherent adds and partials.
		cfg.Layout = cfg.Layout.WithSpeakersAt(sig.NewTone(freq), 0, 1, 2, 3)
		cfg.Layout.Speakers[3].Tone = sig.NewTone(freq + 37*units.Hz)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		masks := [][]bool{
			nil, // direct-path convention: nil = all on
			{true, false, false, false},
			{false, true, true, false},
			{true, true, true, true},
			{false, false, false, true},
		}
		for mi, mask := range masks {
			stepMask := mask
			if stepMask == nil {
				stepMask = []bool{true, true, true, true} // SetSchedule: nil = all off
			}
			c.SetSchedule([]ScheduleStep{{At: 0, Active: stepMask}})
			for di, d := range c.drives {
				want := cfg.Layout.VibrationAt(d.container, d.asm, c.model, stepMask)
				got := c.vibs[0][di]
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("freq %v mask %d drive %d: cached vibration %+v != direct %+v",
						freq, mi, di, got, want)
				}
			}
		}
	}
}
