// Package core assembles the paper's testbed: the attack signal chain
// (amplifier → underwater speaker → water path), the submerged enclosure
// (container, optional storage tower), and the victim drive, wired to a
// virtual clock and a block device. It is the layer that turns "transmit a
// 650 Hz tone at 140 dB SPL from 1 cm" into the drive-level vibration state
// every software substrate then experiences.
package core

import (
	"fmt"

	"deepnote/internal/acoustics"
	"deepnote/internal/blockdev"
	"deepnote/internal/enclosure"
	"deepnote/internal/hdd"
	"deepnote/internal/sig"
	"deepnote/internal/simclock"
	"deepnote/internal/units"
)

// Scenario selects one of the paper's three experimental configurations
// (Figure 1).
type Scenario int

// The paper's scenarios.
const (
	// Scenario1 places the drive directly on the bottom of the hard
	// plastic container.
	Scenario1 Scenario = iota + 1
	// Scenario2 mounts the drive in the second level of the Supermicro
	// storage tower inside the plastic container (the paper's "more
	// realistic" configuration used for Tables 1–3).
	Scenario2
	// Scenario3 mounts the drive in the tower inside the aluminum
	// container.
	Scenario3
)

// String names the scenario.
func (s Scenario) String() string {
	switch s {
	case Scenario1:
		return "Scenario 1 (plastic, drive on floor)"
	case Scenario2:
		return "Scenario 2 (plastic, storage tower)"
	case Scenario3:
		return "Scenario 3 (aluminum, storage tower)"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// Assembly returns the structural configuration for the scenario.
func (s Scenario) Assembly() (enclosure.Assembly, error) {
	switch s {
	case Scenario1:
		return enclosure.Assembly{
			Container: enclosure.PlasticContainer(),
			Mount:     enclosure.FloorMount(),
		}, nil
	case Scenario2:
		return enclosure.Assembly{
			Container: enclosure.PlasticContainer(),
			Mount:     enclosure.TowerMount(enclosure.SupermicroCSEM35TQB(), 1),
		}, nil
	case Scenario3:
		return enclosure.Assembly{
			Container: enclosure.AluminumContainer(),
			Mount:     enclosure.TowerMount(enclosure.SupermicroCSEM35TQB(), 1),
		}, nil
	default:
		return enclosure.Assembly{}, fmt.Errorf("core: unknown scenario %d", int(s))
	}
}

// Testbed is the static physical configuration: signal chain, structure,
// and drive model.
type Testbed struct {
	// Scenario records which configuration this testbed models.
	Scenario Scenario
	// Chain is the attack signal chain, including the speaker distance.
	Chain acoustics.Chain
	// Assembly is the structural path from water to drive mounting.
	Assembly enclosure.Assembly
	// DriveModel is the victim drive.
	DriveModel hdd.Model
	// DriveStandoff is the drive's distance from the container wall
	// facing the speaker (the paper keeps the drive 3 cm behind it); it
	// is added to the water path.
	DriveStandoff units.Distance
}

// NewTestbed builds the paper's testbed for a scenario with the speaker at
// the given distance from the container wall.
func NewTestbed(s Scenario, speakerDistance units.Distance) (*Testbed, error) {
	asm, err := s.Assembly()
	if err != nil {
		return nil, err
	}
	tb := &Testbed{
		Scenario:      s,
		Chain:         acoustics.PaperChain(speakerDistance),
		Assembly:      asm,
		DriveModel:    hdd.Barracuda500(),
		DriveStandoff: 0,
	}
	if err := tb.Validate(); err != nil {
		return nil, err
	}
	return tb, nil
}

// Validate checks the whole configuration.
func (tb *Testbed) Validate() error {
	if err := tb.Chain.Validate(); err != nil {
		return err
	}
	if err := tb.Assembly.Validate(); err != nil {
		return err
	}
	if tb.DriveStandoff < 0 {
		return fmt.Errorf("core: drive standoff must be non-negative")
	}
	return tb.DriveModel.Validate()
}

// WithDistance returns a copy of the testbed with the speaker moved to a
// new distance. Range tests sweep this.
func (tb *Testbed) WithDistance(d units.Distance) *Testbed {
	cp := *tb
	cp.Chain = cp.Chain.WithDistance(d)
	return &cp
}

// IncidentSPL returns the sound pressure level reaching the container wall
// for a tone.
func (tb *Testbed) IncidentSPL(tone sig.Tone) units.SPL {
	return tb.Chain.IncidentSPL(tone)
}

// VibrationFor converts an attack tone into the drive's vibration state:
// incident pressure at the wall, times the structural gain of container and
// mount, converted by the drive model into off-track displacement.
func (tb *Testbed) VibrationFor(tone sig.Tone) hdd.Vibration {
	tone = tone.Normalize()
	if tone.Amplitude == 0 || tone.Freq <= 0 {
		return hdd.Quiet()
	}
	pressure := tb.Chain.IncidentPressure(tone).Pascals()
	gain := tb.Assembly.StructuralGain(tone.Freq)
	amp := tb.DriveModel.OffTrack(tone.Freq, pressure*gain)
	return hdd.Vibration{Freq: tone.Freq, Amplitude: amp}
}

// VibrationForChord combines several simultaneous tones into one composite
// drive excitation (a multi-tone attack). The strongest component becomes
// the dominant tone; the rest ride along as partials. Callers share the
// speaker's full-scale budget across the tones (e.g. amplitude 1/n each).
func (tb *Testbed) VibrationForChord(tones []sig.Tone) hdd.Vibration {
	type comp struct {
		f units.Frequency
		a float64
	}
	var comps []comp
	for _, tone := range tones {
		v := tb.VibrationFor(tone)
		if v.Amplitude > 0 {
			comps = append(comps, comp{f: v.Freq, a: v.Amplitude})
		}
	}
	if len(comps) == 0 {
		return hdd.Quiet()
	}
	// Strongest first.
	best := 0
	for i, c := range comps {
		if c.a > comps[best].a {
			best = i
		}
	}
	out := hdd.Vibration{Freq: comps[best].f, Amplitude: comps[best].a}
	for i, c := range comps {
		if i == best {
			continue
		}
		out.Partials = append(out.Partials, hdd.Partial{Freq: c.f, Amplitude: c.a})
	}
	return out
}

// ApplyChord applies a multi-tone attack to a rig's drive.
func (r *Rig) ApplyChord(tones []sig.Tone) {
	r.Drive.SetVibration(r.Testbed.VibrationForChord(tones))
}

// OffTrackRatio returns the off-track amplitude for a full-scale tone at f
// divided by the drive's write-fault threshold — the testbed's unitless
// "how far past failure are we" diagnostic used for calibration and
// reporting. Values ≥ 1 mean writes fault.
func (tb *Testbed) OffTrackRatio(f units.Frequency) float64 {
	v := tb.VibrationFor(sig.NewTone(f))
	return v.Amplitude / tb.DriveModel.WriteFaultFrac
}

// CriticalIncidentSPL returns the incident SPL at the container wall at
// which the drive's write path starts faulting at frequency f: the
// threshold a standoff attacker must deliver, used by the §5 range
// analyses. ok is false when no finite pressure reaches the threshold
// (e.g. the servo fully rejects the frequency).
func (tb *Testbed) CriticalIncidentSPL(f units.Frequency) (units.SPL, bool) {
	gain := tb.Assembly.StructuralGain(f)
	resp := tb.DriveModel.OffTrack(f, 1) // displacement per Pa of incident pressure
	if gain <= 0 || resp <= 0 {
		return units.SPL{}, false
	}
	pa := tb.DriveModel.WriteFaultFrac / (resp * gain)
	return units.SPLFromPressure(units.Pressure(pa), units.RefPressureWater), true
}

// Rig is a live testbed: physical configuration plus clock, drive, and
// block device, ready to run workloads under attack.
type Rig struct {
	Testbed *Testbed
	Clock   *simclock.Virtual
	Drive   *hdd.Drive
	Disk    *blockdev.Disk
}

// NewRig instantiates a testbed with a fresh clock and drive.
func NewRig(s Scenario, speakerDistance units.Distance, seed int64) (*Rig, error) {
	tb, err := NewTestbed(s, speakerDistance)
	if err != nil {
		return nil, err
	}
	return NewRigFromTestbed(tb, seed)
}

// NewRigFromTestbed instantiates a prepared testbed configuration.
func NewRigFromTestbed(tb *Testbed, seed int64) (*Rig, error) {
	return NewRigWithClock(tb, simclock.NewVirtual(), seed)
}

// NewRigWithClock instantiates a testbed on a shared clock, so several
// rigs (e.g. drives in different containers of one data center) advance
// time together.
func NewRigWithClock(tb *Testbed, clock *simclock.Virtual, seed int64) (*Rig, error) {
	drive, err := hdd.NewDrive(tb.DriveModel, clock, seed)
	if err != nil {
		return nil, err
	}
	return &Rig{
		Testbed: tb,
		Clock:   clock,
		Drive:   drive,
		Disk:    blockdev.NewDisk(drive),
	}, nil
}

// ApplyTone starts (or retunes) the attack: the drive immediately
// experiences the corresponding vibration.
func (r *Rig) ApplyTone(tone sig.Tone) {
	r.Drive.SetVibration(r.Testbed.VibrationFor(tone))
}

// Silence stops the attack.
func (r *Rig) Silence() { r.Drive.SetVibration(hdd.Quiet()) }

// MoveSpeaker changes the speaker distance mid-experiment, retaining any
// currently applied tone's frequency at the new level.
func (r *Rig) MoveSpeaker(d units.Distance, tone sig.Tone) {
	r.Testbed = r.Testbed.WithDistance(d)
	r.ApplyTone(tone)
}
