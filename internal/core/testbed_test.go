package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"deepnote/internal/fio"
	"deepnote/internal/hdd"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

func TestScenarioAssemblies(t *testing.T) {
	for _, s := range []Scenario{Scenario1, Scenario2, Scenario3} {
		asm, err := s.Assembly()
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if err := asm.Validate(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
	}
	if _, err := Scenario(0).Assembly(); err == nil {
		t.Fatal("expected error for unknown scenario")
	}
	if Scenario1.String() == "" || Scenario(9).String() == "" {
		t.Fatal("scenario names must render")
	}
}

func TestScenario1HasNoTower(t *testing.T) {
	asm, _ := Scenario1.Assembly()
	if asm.Mount.Tower != nil {
		t.Fatal("scenario 1 mounts the drive on the container floor")
	}
	asm2, _ := Scenario2.Assembly()
	if asm2.Mount.Tower == nil || asm2.Mount.Slot != 1 {
		t.Fatal("scenario 2 mounts the drive in the tower's second level")
	}
	if !strings.Contains(asm2.Container.Name, "plastic") {
		t.Fatal("scenario 2 uses the plastic container")
	}
	asm3, _ := Scenario3.Assembly()
	if !strings.Contains(asm3.Container.Name, "aluminum") {
		t.Fatal("scenario 3 uses the aluminum container")
	}
}

func TestNewTestbedValidates(t *testing.T) {
	if _, err := NewTestbed(Scenario2, 1*units.Centimeter); err != nil {
		t.Fatal(err)
	}
	if _, err := NewTestbed(Scenario2, 0); err == nil {
		t.Fatal("expected error for zero distance")
	}
	if _, err := NewTestbed(Scenario(42), 1*units.Centimeter); err == nil {
		t.Fatal("expected error for unknown scenario")
	}
}

func TestVibrationForSilence(t *testing.T) {
	tb, _ := NewTestbed(Scenario2, 1*units.Centimeter)
	if v := tb.VibrationFor(sig.Tone{Freq: 650, Amplitude: 0}); !v.IsQuiet() {
		t.Fatalf("silent tone produced vibration %+v", v)
	}
	if v := tb.VibrationFor(sig.Tone{Freq: 0, Amplitude: 1}); !v.IsQuiet() {
		t.Fatalf("zero-frequency tone produced vibration %+v", v)
	}
}

func TestVibrationScalesWithDistance(t *testing.T) {
	tone := sig.NewTone(650 * units.Hz)
	prev := math.Inf(1)
	for _, cm := range []float64{1, 5, 10, 15, 20, 25} {
		tb, err := NewTestbed(Scenario2, units.Distance(cm)*units.Centimeter)
		if err != nil {
			t.Fatal(err)
		}
		a := tb.VibrationFor(tone).Amplitude
		if a >= prev {
			t.Fatalf("amplitude not decreasing at %v cm: %v >= %v", cm, a, prev)
		}
		prev = a
	}
}

func TestVulnerableBandsMatchPaper(t *testing.T) {
	// §4.1: throughput losses occur in all three scenarios between 300 Hz
	// and 1.7 kHz; the aluminum container (Scenario 3) is effective for
	// writes from 300 Hz to 1.3 kHz and recovers above; everything is
	// safe below ~250 Hz and above ~2 kHz.
	for _, s := range []Scenario{Scenario1, Scenario2, Scenario3} {
		tb, err := NewTestbed(s, 1*units.Centimeter)
		if err != nil {
			t.Fatal(err)
		}
		// Write faults occur (ratio ≥ 1) across the core band.
		for _, f := range []units.Frequency{400, 650, 1000} {
			if r := tb.OffTrackRatio(f); r < 1 {
				t.Errorf("%v: off-track ratio %0.2f at %v, want ≥ 1 (vulnerable)", s, r, f)
			}
		}
		// Safe far outside the band.
		for _, f := range []units.Frequency{100, 200, 3000, 8000, 16900} {
			if r := tb.OffTrackRatio(f); r >= 1 {
				t.Errorf("%v: off-track ratio %0.2f at %v, want < 1 (safe)", s, r, f)
			}
		}
	}
	// Material difference: plastic still vulnerable at 1.5 kHz, aluminum
	// recovered (paper: metal band tops out at 1.3 kHz, plastic at 1.7 kHz).
	p, _ := NewTestbed(Scenario2, 1*units.Centimeter)
	a, _ := NewTestbed(Scenario3, 1*units.Centimeter)
	if p.OffTrackRatio(1500) < 1 {
		t.Error("plastic scenario should still fault writes at 1.5 kHz")
	}
	if a.OffTrackRatio(1500) >= 1 {
		t.Error("aluminum scenario should have recovered by 1.5 kHz")
	}
}

func TestIncidentSPLMatchesPaperOperatingPoint(t *testing.T) {
	tb, _ := NewTestbed(Scenario2, 1*units.Centimeter)
	spl := tb.IncidentSPL(sig.NewTone(650 * units.Hz))
	if math.Abs(spl.DB-140) > 0.01 {
		t.Fatalf("incident SPL = %v, want 140 dB re 1µPa", spl.DB)
	}
}

func TestRigTable1Shape(t *testing.T) {
	// The distance profile of Table 1 (650 Hz, Scenario 2) — asserting the
	// qualitative rows: dead ≤5 cm, write-only degradation 10–15 cm,
	// near-normal ≥20 cm.
	tone := sig.NewTone(650 * units.Hz)
	type row struct{ read, write float64 }
	runAt := func(cm float64) row {
		var out row
		for _, p := range []fio.Pattern{fio.SeqRead, fio.SeqWrite} {
			rig, err := NewRig(Scenario2, units.Distance(cm)*units.Centimeter, 11)
			if err != nil {
				t.Fatal(err)
			}
			rig.ApplyTone(tone)
			res, err := fio.NewRunner(rig.Disk, rig.Clock).Run(fio.PaperJob(p, 2*time.Second))
			if err != nil {
				t.Fatal(err)
			}
			if p == fio.SeqRead {
				out.read = res.ThroughputMBps()
			} else {
				out.write = res.ThroughputMBps()
			}
		}
		return out
	}
	at1 := runAt(1)
	if at1.read != 0 || at1.write != 0 {
		t.Fatalf("1 cm: got %.1f/%.1f MB/s, want 0/0", at1.read, at1.write)
	}
	at5 := runAt(5)
	if at5.read != 0 || at5.write != 0 {
		t.Fatalf("5 cm: got %.1f/%.1f MB/s, want 0/0", at5.read, at5.write)
	}
	at10 := runAt(10)
	if at10.write > 1.0 {
		t.Fatalf("10 cm: write %.1f MB/s, want ≈0.3 (crawling)", at10.write)
	}
	if at10.read < 10 {
		t.Fatalf("10 cm: read %.1f MB/s, want double digits", at10.read)
	}
	at15 := runAt(15)
	if at15.write < 0.3 || at15.write > 6 {
		t.Fatalf("15 cm: write %.1f MB/s, want heavily degraded but alive (paper: 2.9)", at15.write)
	}
	if at15.read < 16 {
		t.Fatalf("15 cm: read %.1f MB/s, want near normal (paper: 17.6)", at15.read)
	}
	at20 := runAt(20)
	if at20.write < 19 {
		t.Fatalf("20 cm: write %.1f MB/s, want near normal (paper: 21.1)", at20.write)
	}
	at25 := runAt(25)
	if at25.write < 21 || at25.read < 17 {
		t.Fatalf("25 cm: %.1f/%.1f MB/s, want normal", at25.read, at25.write)
	}
}

func TestMoveSpeaker(t *testing.T) {
	rig, err := NewRig(Scenario2, 1*units.Centimeter, 1)
	if err != nil {
		t.Fatal(err)
	}
	tone := sig.NewTone(650 * units.Hz)
	rig.ApplyTone(tone)
	near := rig.Drive.Vibration().Amplitude
	rig.MoveSpeaker(25*units.Centimeter, tone)
	far := rig.Drive.Vibration().Amplitude
	if far >= near {
		t.Fatalf("moving away should reduce amplitude: %v -> %v", near, far)
	}
	rig.Silence()
	if !rig.Drive.Vibration().IsQuiet() {
		t.Fatal("Silence did not clear vibration")
	}
}

func TestWithDistanceDoesNotMutate(t *testing.T) {
	tb, _ := NewTestbed(Scenario2, 1*units.Centimeter)
	tb2 := tb.WithDistance(25 * units.Centimeter)
	if tb.Chain.Path.Distance != 1*units.Centimeter {
		t.Fatal("WithDistance mutated the original")
	}
	if tb2.Chain.Path.Distance != 25*units.Centimeter {
		t.Fatal("WithDistance did not apply")
	}
}

func TestReadBandNestedInWriteBand(t *testing.T) {
	// Property from the mechanism: any frequency where reads fault is a
	// frequency where writes fault (write tolerance is tighter).
	tb, _ := NewTestbed(Scenario3, 1*units.Centimeter)
	m := tb.DriveModel
	for f := units.Frequency(100); f <= 16900; f += 100 {
		v := tb.VibrationFor(sig.NewTone(f))
		readFaults := v.Amplitude >= m.ReadFaultFrac
		writeFaults := v.Amplitude >= m.WriteFaultFrac
		if readFaults && !writeFaults {
			t.Fatalf("at %v reads fault but writes do not", f)
		}
	}
}

func TestVibrationForChord(t *testing.T) {
	tb, _ := NewTestbed(Scenario2, 1*units.Centimeter)
	chord := tb.VibrationForChord([]sig.Tone{
		{Freq: 650, Amplitude: 0.5},
		{Freq: 900, Amplitude: 0.5},
	})
	if chord.IsQuiet() {
		t.Fatal("chord produced no vibration")
	}
	if len(chord.Partials) != 1 {
		t.Fatalf("partials = %d, want 1", len(chord.Partials))
	}
	// The dominant component must be the strongest.
	if chord.Amplitude < chord.Partials[0].Amplitude {
		t.Fatal("dominant tone is not the strongest component")
	}
	// An all-silent chord is quiet.
	if v := tb.VibrationForChord([]sig.Tone{{Freq: 650, Amplitude: 0}}); !v.IsQuiet() {
		t.Fatalf("silent chord produced vibration %+v", v)
	}
	// Single-tone chord behaves like VibrationFor.
	single := tb.VibrationForChord([]sig.Tone{sig.NewTone(650)})
	direct := tb.VibrationFor(sig.NewTone(650))
	if single.Amplitude != direct.Amplitude || len(single.Partials) != 0 {
		t.Fatalf("single chord %+v != direct %+v", single, direct)
	}
}

func TestApplyChord(t *testing.T) {
	rig, err := NewRig(Scenario2, 1*units.Centimeter, 1)
	if err != nil {
		t.Fatal(err)
	}
	rig.ApplyChord([]sig.Tone{{Freq: 650, Amplitude: 0.5}, {Freq: 450, Amplitude: 0.5}})
	v := rig.Drive.Vibration()
	if v.IsQuiet() || len(v.Partials) != 1 {
		t.Fatalf("chord not applied: %+v", v)
	}
	var zero hdd.Vibration
	rig.Silence()
	if got := rig.Drive.Vibration(); !got.IsQuiet() || got.Freq != zero.Freq {
		t.Fatal("silence after chord failed")
	}
}

func TestOffTrackRatioUsesWriteThreshold(t *testing.T) {
	tb, _ := NewTestbed(Scenario2, 1*units.Centimeter)
	v := tb.VibrationFor(sig.NewTone(650))
	want := v.Amplitude / tb.DriveModel.WriteFaultFrac
	if got := tb.OffTrackRatio(650); math.Abs(got-want) > 1e-12 {
		t.Fatalf("OffTrackRatio = %v, want %v", got, want)
	}
}
