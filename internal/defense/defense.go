// Package defense implements and evaluates the countermeasures the paper's
// §5 proposes as future work: acoustically absorbent enclosure linings,
// vibration-damping drive mounts, enclosure stiffening, and servo
// feed-forward compensation in the drive firmware. Each defense transforms
// the testbed (enclosure transfer function or drive model) and carries a
// thermal penalty — the paper notes absorbent materials risk overheating,
// as observed in the in-air work.
package defense

import (
	"fmt"
	"math"

	"deepnote/internal/core"
	"deepnote/internal/units"
)

// Defense transforms a testbed into its defended variant.
type Defense interface {
	// Name identifies the defense.
	Name() string
	// Apply returns a defended copy of the testbed.
	Apply(tb *core.Testbed) *core.Testbed
	// ThermalPenaltyC is the steady-state drive temperature increase the
	// defense costs (insulating the enclosure also insulates heat).
	ThermalPenaltyC() float64
}

// AbsorbentLining lines the container interior with sound-absorbing
// material (e.g. metallic foam, the paper's citation [27]): broadband
// attenuation that grows with frequency, at a real thermal cost.
type AbsorbentLining struct {
	// ThicknessMM is the lining thickness (default 10 mm via New).
	ThicknessMM float64
}

// NewAbsorbentLining returns a lining of the given thickness.
func NewAbsorbentLining(thicknessMM float64) AbsorbentLining {
	if thicknessMM <= 0 {
		thicknessMM = 10
	}
	return AbsorbentLining{ThicknessMM: thicknessMM}
}

// Name implements Defense.
func (a AbsorbentLining) Name() string {
	return fmt.Sprintf("absorbent lining (%.0f mm foam)", a.ThicknessMM)
}

// attenuationDB returns the lining's insertion loss at f: absorption is
// poor at low frequency and improves with thickness and frequency.
func (a AbsorbentLining) attenuationDB(f units.Frequency) float64 {
	// ~0.35 dB per mm at 1 kHz, scaling with sqrt(f).
	return 0.35 * a.ThicknessMM * math.Sqrt(f.Kilohertz())
}

// Apply implements Defense by reducing the container coupling gain per
// frequency. Since CouplingGain is scalar, the lining is folded into the
// modal stack evaluation via a wrapper container copy whose coupling is
// scaled at the band center; the frequency dependence is preserved through
// the mass-law corner shift.
func (a AbsorbentLining) Apply(tb *core.Testbed) *core.Testbed {
	cp := *tb
	asm := cp.Assembly
	// Insertion loss at the structure's most-transmissive frequency is
	// the conservative (least flattering) choice for the defender.
	peak := peakFrequency(tb)
	loss := units.Decibel(-a.attenuationDB(peak))
	asm.Container.CouplingGain *= loss.Linear()
	cp.Assembly = asm
	return &cp
}

// ThermalPenaltyC implements Defense: thicker foam traps more heat.
func (a AbsorbentLining) ThermalPenaltyC() float64 { return 0.45 * a.ThicknessMM }

// DampedMount replaces the rigid drive mounting with elastomer isolators:
// an extra second-order low-pass between structure and drive.
type DampedMount struct {
	// CutoffHz is the isolator's natural frequency (default 150 Hz).
	CutoffHz units.Frequency
}

// NewDampedMount returns a mount with the given isolation cutoff.
func NewDampedMount(cutoff units.Frequency) DampedMount {
	if cutoff <= 0 {
		cutoff = 150 * units.Hz
	}
	return DampedMount{CutoffHz: cutoff}
}

// Name implements Defense.
func (d DampedMount) Name() string {
	return fmt.Sprintf("damped mount (isolator fc=%v)", d.CutoffHz)
}

// Apply implements Defense: the isolator attenuates 12 dB/octave above its
// cutoff, modeled by scaling the mount's gain at the testbed's peak
// frequency (isolators help most exactly where the attack band lives).
func (d DampedMount) Apply(tb *core.Testbed) *core.Testbed {
	cp := *tb
	peak := peakFrequency(tb)
	r := float64(peak) / float64(d.CutoffHz)
	att := 1.0
	if r > 1 {
		att = 1 / (r * r) // 12 dB/octave isolation above cutoff
	}
	asm := cp.Assembly
	if asm.Mount.Tower != nil {
		t := *asm.Mount.Tower
		t.BaseGain *= att
		asm.Mount.Tower = &t
	} else {
		asm.Mount.FloorGain *= att
	}
	cp.Assembly = asm
	return &cp
}

// ThermalPenaltyC implements Defense: elastomer mounts slightly impede
// conductive cooling through the chassis.
func (d DampedMount) ThermalPenaltyC() float64 { return 1.5 }

// StiffenedEnclosure doubles the wall thickness, raising panel modes and
// the wall's mass-law attenuation.
type StiffenedEnclosure struct {
	// Factor multiplies the wall thickness (default 2).
	Factor float64
}

// NewStiffenedEnclosure returns a stiffening with the given factor.
func NewStiffenedEnclosure(factor float64) StiffenedEnclosure {
	if factor <= 1 {
		factor = 2
	}
	return StiffenedEnclosure{Factor: factor}
}

// Name implements Defense.
func (s StiffenedEnclosure) Name() string {
	return fmt.Sprintf("stiffened enclosure (%.1fx wall)", s.Factor)
}

// Apply implements Defense: more surface density lowers the mass-law
// corner (more in-band attenuation) and pushes the panel fundamental up.
func (s StiffenedEnclosure) Apply(tb *core.Testbed) *core.Testbed {
	cp := *tb
	asm := cp.Assembly
	c := asm.Container
	c.Wall.ThicknessM *= s.Factor
	c.MassLawCorner = units.Frequency(float64(c.MassLawCorner) / s.Factor)
	c.PanelFundamental = units.Frequency(float64(c.PanelFundamental) * math.Sqrt(s.Factor))
	c.CouplingGain /= s.Factor
	asm.Container = c
	cp.Assembly = asm
	return &cp
}

// ThermalPenaltyC implements Defense: thicker walls insulate modestly —
// water cooling still dominates.
func (s StiffenedEnclosure) ThermalPenaltyC() float64 { return 0.8 * (s.Factor - 1) }

// ServoFeedforward is the firmware defense from Bolton et al.: an
// accelerometer feeds the measured disturbance forward into the servo
// loop, improving rejection in the vulnerable band by a fixed factor.
type ServoFeedforward struct {
	// RejectionDB is the added disturbance rejection (default 12 dB).
	RejectionDB float64
}

// NewServoFeedforward returns the firmware defense.
func NewServoFeedforward(rejectionDB float64) ServoFeedforward {
	if rejectionDB <= 0 {
		rejectionDB = 12
	}
	return ServoFeedforward{RejectionDB: rejectionDB}
}

// Name implements Defense.
func (s ServoFeedforward) Name() string {
	return fmt.Sprintf("servo feed-forward (+%.0f dB rejection)", s.RejectionDB)
}

// Apply implements Defense by scaling the drive's pressure-to-displacement
// gain down.
func (s ServoFeedforward) Apply(tb *core.Testbed) *core.Testbed {
	cp := *tb
	m := cp.DriveModel
	m.PressureGain *= units.Decibel(-s.RejectionDB).Linear()
	cp.DriveModel = m
	return &cp
}

// ThermalPenaltyC implements Defense: none — it is firmware.
func (s ServoFeedforward) ThermalPenaltyC() float64 { return 0 }

// Suite composes several defenses into one (defense in depth): each layer
// applies in order, and thermal penalties add.
type Suite []Defense

// Name implements Defense.
func (s Suite) Name() string {
	if len(s) == 0 {
		return "no defense"
	}
	name := s[0].Name()
	for _, d := range s[1:] {
		name += " + " + d.Name()
	}
	return name
}

// Apply implements Defense by chaining every layer.
func (s Suite) Apply(tb *core.Testbed) *core.Testbed {
	out := tb
	for _, d := range s {
		out = d.Apply(out)
	}
	return out
}

// ThermalPenaltyC implements Defense: insulation stacks.
func (s Suite) ThermalPenaltyC() float64 {
	var sum float64
	for _, d := range s {
		sum += d.ThermalPenaltyC()
	}
	return sum
}

// peakFrequency finds the testbed's most off-track-productive frequency.
func peakFrequency(tb *core.Testbed) units.Frequency {
	best, bestR := units.Frequency(100), -1.0
	for f := units.Frequency(100); f <= 4000; f += 25 {
		if r := tb.OffTrackRatio(f); r > bestR {
			bestR, best = r, f
		}
	}
	return best
}

// Evaluation compares a testbed before and after a defense.
type Evaluation struct {
	Defense string
	// PeakRatioBefore/After are the worst-case off-track ratios (≥1
	// means writes fault somewhere in the band).
	PeakRatioBefore, PeakRatioAfter float64
	// Protected is true when the defended testbed never crosses the
	// write fault threshold at full attack power.
	Protected bool
	// ResidualBandHz is the width of the still-vulnerable band.
	ResidualBandHz units.Frequency
	// ThermalPenaltyC echoes the defense's cooling cost.
	ThermalPenaltyC float64
}

// Evaluate sweeps 100 Hz–4 kHz at the testbed's configured distance and
// reports how much of the vulnerable band the defense removes.
func Evaluate(tb *core.Testbed, d Defense) Evaluation {
	defended := d.Apply(tb)
	ev := Evaluation{Defense: d.Name(), ThermalPenaltyC: d.ThermalPenaltyC()}
	var residual units.Frequency
	const step = 25 * units.Hz
	for f := units.Frequency(100); f <= 4000; f += step {
		before := tb.OffTrackRatio(f)
		after := defended.OffTrackRatio(f)
		if before > ev.PeakRatioBefore {
			ev.PeakRatioBefore = before
		}
		if after > ev.PeakRatioAfter {
			ev.PeakRatioAfter = after
		}
		if after >= 1 {
			residual += step
		}
	}
	ev.Protected = ev.PeakRatioAfter < 1
	ev.ResidualBandHz = residual
	return ev
}

// EvaluateAll runs the standard defense suite against a testbed.
func EvaluateAll(tb *core.Testbed) []Evaluation {
	defenses := []Defense{
		NewAbsorbentLining(10),
		NewDampedMount(150),
		NewStiffenedEnclosure(2),
		NewServoFeedforward(12),
	}
	out := make([]Evaluation, 0, len(defenses))
	for _, d := range defenses {
		out = append(out, Evaluate(tb, d))
	}
	return out
}
