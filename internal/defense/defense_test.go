package defense

import (
	"strings"
	"testing"

	"deepnote/internal/core"
	"deepnote/internal/units"
)

func testbed(t *testing.T) *core.Testbed {
	t.Helper()
	tb, err := core.NewTestbed(core.Scenario2, 1*units.Centimeter)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestEveryDefenseReducesPeakRatio(t *testing.T) {
	tb := testbed(t)
	for _, ev := range EvaluateAll(tb) {
		if ev.PeakRatioAfter >= ev.PeakRatioBefore {
			t.Errorf("%s: peak ratio %0.2f did not improve from %0.2f",
				ev.Defense, ev.PeakRatioAfter, ev.PeakRatioBefore)
		}
		if ev.PeakRatioBefore < 1 {
			t.Errorf("%s: undefended testbed should be vulnerable", ev.Defense)
		}
	}
}

func TestDefenseDoesNotMutateOriginal(t *testing.T) {
	tb := testbed(t)
	before := tb.OffTrackRatio(650)
	for _, d := range []Defense{
		NewAbsorbentLining(10), NewDampedMount(150),
		NewStiffenedEnclosure(2), NewServoFeedforward(12),
	} {
		_ = d.Apply(tb)
		if got := tb.OffTrackRatio(650); got != before {
			t.Errorf("%s mutated the original testbed: %v != %v", d.Name(), got, before)
		}
	}
}

func TestThickerLiningHelpsMore(t *testing.T) {
	tb := testbed(t)
	thin := Evaluate(tb, NewAbsorbentLining(5))
	thick := Evaluate(tb, NewAbsorbentLining(25))
	if thick.PeakRatioAfter >= thin.PeakRatioAfter {
		t.Errorf("25 mm lining (%0.2f) should beat 5 mm (%0.2f)",
			thick.PeakRatioAfter, thin.PeakRatioAfter)
	}
	if thick.ThermalPenaltyC <= thin.ThermalPenaltyC {
		t.Error("thicker lining must cost more thermally")
	}
}

func TestServoFeedforwardIsThermallyFree(t *testing.T) {
	if NewServoFeedforward(12).ThermalPenaltyC() != 0 {
		t.Fatal("firmware defense should not cost cooling")
	}
}

func TestStrongFeedforwardProtects(t *testing.T) {
	tb := testbed(t)
	ev := Evaluate(tb, NewServoFeedforward(30))
	if !ev.Protected {
		t.Fatalf("30 dB rejection should fully protect: %+v", ev)
	}
	if ev.ResidualBandHz != 0 {
		t.Fatalf("protected testbed should have no residual band, got %v", ev.ResidualBandHz)
	}
}

func TestWeakDefenseLeavesResidualBand(t *testing.T) {
	tb := testbed(t)
	ev := Evaluate(tb, NewServoFeedforward(3))
	if ev.Protected {
		t.Fatal("3 dB rejection should not fully protect at 1 cm")
	}
	if ev.ResidualBandHz == 0 {
		t.Fatal("expected residual vulnerable band")
	}
}

func TestDefaultConstructorsClampInputs(t *testing.T) {
	if NewAbsorbentLining(-1).ThicknessMM != 10 {
		t.Fatal("lining default")
	}
	if NewDampedMount(0).CutoffHz != 150 {
		t.Fatal("mount default")
	}
	if NewStiffenedEnclosure(0.5).Factor != 2 {
		t.Fatal("stiffening default")
	}
	if NewServoFeedforward(-5).RejectionDB != 12 {
		t.Fatal("feedforward default")
	}
}

func TestDampedMountOnFloorScenario(t *testing.T) {
	tb, err := core.NewTestbed(core.Scenario1, 1*units.Centimeter)
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(tb, NewDampedMount(150))
	if ev.PeakRatioAfter >= ev.PeakRatioBefore {
		t.Fatal("damped mount should help the floor-mounted drive too")
	}
}

func TestNamesAreDescriptive(t *testing.T) {
	for _, d := range []Defense{
		NewAbsorbentLining(10), NewDampedMount(150),
		NewStiffenedEnclosure(2), NewServoFeedforward(12),
	} {
		if d.Name() == "" || !strings.ContainsAny(d.Name(), "abcdefghijklmnopqrstuvwxyz") {
			t.Errorf("bad name %q", d.Name())
		}
	}
}

func TestEvaluationAgainstWeakerAttack(t *testing.T) {
	// At 25 cm even modest defenses fully protect.
	tb, err := core.NewTestbed(core.Scenario2, 25*units.Centimeter)
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(tb, NewServoFeedforward(12))
	if !ev.Protected {
		t.Fatalf("12 dB rejection at 25 cm should protect: %+v", ev)
	}
}

func TestSuiteComposes(t *testing.T) {
	tb := testbed(t)
	suite := Suite{NewServoFeedforward(12), NewDampedMount(150), NewAbsorbentLining(10)}
	ev := Evaluate(tb, suite)
	// Defense in depth must beat every individual layer.
	for _, d := range suite {
		single := Evaluate(tb, d)
		if ev.PeakRatioAfter >= single.PeakRatioAfter {
			t.Errorf("suite (%.3f) should beat %s alone (%.3f)",
				ev.PeakRatioAfter, d.Name(), single.PeakRatioAfter)
		}
	}
	if !ev.Protected {
		t.Fatalf("the full stack should protect even at 1 cm: %+v", ev)
	}
	// Thermal penalties add.
	want := suite[0].ThermalPenaltyC() + suite[1].ThermalPenaltyC() + suite[2].ThermalPenaltyC()
	if got := suite.ThermalPenaltyC(); got != want {
		t.Fatalf("suite thermal = %v, want %v", got, want)
	}
	if !strings.Contains(suite.Name(), " + ") {
		t.Fatalf("suite name = %q", suite.Name())
	}
	if (Suite{}).Name() != "no defense" {
		t.Fatal("empty suite name")
	}
	if (Suite{}).Apply(tb) != tb {
		t.Fatal("empty suite should pass the testbed through")
	}
}
