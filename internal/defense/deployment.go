package defense

import (
	"deepnote/internal/core"
	"deepnote/internal/thermal"
)

// DeploymentVerdict couples a defense's acoustic evaluation with its
// thermal consequences: a lining that stops the attack but cooks the drive
// has traded one availability loss for another — the trade-off §5 warns
// about.
type DeploymentVerdict struct {
	Evaluation
	// ThermalState is the drive's steady state at the design load with
	// the defense installed.
	ThermalState thermal.State
	// ThrottleFactor is the throughput multiplier heat imposes (1 = no
	// impact, 0 = thermal shutdown).
	ThrottleFactor float64
	// Deployable is true when the defense both blocks the attack and
	// keeps the drive thermally healthy.
	Deployable bool
}

// EvaluateDeployment runs the acoustic evaluation and the thermal model
// together for a defense at the given sustained load.
func EvaluateDeployment(tb *core.Testbed, d Defense, tm thermal.Model, loadMBps float64) DeploymentVerdict {
	ev := Evaluate(tb, d)
	hot := tm.WithDefensePenalty(d.ThermalPenaltyC())
	v := DeploymentVerdict{
		Evaluation:     ev,
		ThermalState:   hot.StateAt(loadMBps),
		ThrottleFactor: hot.ThrottleFactor(loadMBps),
	}
	v.Deployable = ev.Protected && v.ThermalState == thermal.OK
	return v
}

// EvaluateDeploymentAll runs the standard suite through the combined
// acoustic + thermal evaluation.
func EvaluateDeploymentAll(tb *core.Testbed, tm thermal.Model, loadMBps float64) []DeploymentVerdict {
	defenses := []Defense{
		NewAbsorbentLining(10),
		NewAbsorbentLining(30),
		NewDampedMount(150),
		NewStiffenedEnclosure(2),
		NewServoFeedforward(12),
	}
	out := make([]DeploymentVerdict, 0, len(defenses))
	for _, d := range defenses {
		out = append(out, EvaluateDeployment(tb, d, tm, loadMBps))
	}
	return out
}
