package defense

import (
	"testing"

	"deepnote/internal/core"
	"deepnote/internal/thermal"
	"deepnote/internal/units"
	"deepnote/internal/water"
)

func TestDeploymentVerdictCombinesAxes(t *testing.T) {
	tb := testbed(t)
	tm := thermal.Default(water.Seawater(36))
	verdicts := EvaluateDeploymentAll(tb, tm, 22.7)
	if len(verdicts) != 5 {
		t.Fatalf("verdicts = %d", len(verdicts))
	}
	for _, v := range verdicts {
		if v.Deployable && (!v.Protected || v.ThermalState != thermal.OK) {
			t.Errorf("%s: deployable without both axes passing", v.Defense)
		}
		if v.ThrottleFactor < 0 || v.ThrottleFactor > 1 {
			t.Errorf("%s: throttle factor %v", v.Defense, v.ThrottleFactor)
		}
	}
}

func TestFirmwareDefenseNeverThrottles(t *testing.T) {
	tb := testbed(t)
	tm := thermal.Default(water.Seawater(36))
	v := EvaluateDeployment(tb, NewServoFeedforward(12), tm, 22.7)
	if v.ThermalState != thermal.OK || v.ThrottleFactor != 1 {
		t.Fatalf("firmware defense should be thermally free: %+v", v)
	}
}

func TestThickLiningProtectsButOverheatsInWarmWater(t *testing.T) {
	// At a long standoff even a lining can protect acoustically — but in
	// warm shallow water its insulation throttles the drive: the paper's
	// §5 trade-off realized end to end.
	tb, err := core.NewTestbed(core.Scenario2, 20*units.Centimeter)
	if err != nil {
		t.Fatal(err)
	}
	warm := thermal.Default(water.Medium{TempC: 29, SalinityPSU: 35, DepthM: 5, AcidityPH: 8})
	lining := NewAbsorbentLining(30) // +13.5 °C
	v := EvaluateDeployment(tb, lining, warm, 22.7)
	if !v.Protected {
		t.Fatalf("30 mm lining at 20 cm should protect acoustically: %+v", v.Evaluation)
	}
	if v.ThermalState == thermal.OK {
		t.Fatalf("30 mm lining in 29 °C water should overheat: %+v", v)
	}
	if v.Deployable {
		t.Fatal("protected-but-overheating must not be deployable")
	}
}

func TestColdWaterMakesSameLiningDeployable(t *testing.T) {
	tb, err := core.NewTestbed(core.Scenario2, 20*units.Centimeter)
	if err != nil {
		t.Fatal(err)
	}
	cold := thermal.Default(water.Seawater(36)) // 12 °C
	v := EvaluateDeployment(tb, NewAbsorbentLining(30), cold, 22.7)
	if !v.Deployable {
		t.Fatalf("cold water should make the thick lining deployable: %+v", v)
	}
}
