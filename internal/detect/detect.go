// Package detect is the operator-side counterpart of the attack: an
// anomaly detector that watches a drive's externally observable telemetry
// (request latency and errors) and raises an alarm when the signature of
// acoustic interference appears — latencies inflating by orders of
// magnitude and I/O errors clustering, long before the ~80 s crash horizon
// of Table 3. The paper's §5 calls for exactly this kind of monitoring
// groundwork for subsea platforms.
//
// The latency/error Detector is one factor; the spectral Fingerprinter
// (fingerprint.go) watches the synthesized drive-tray vibration stream for
// narrowband tones in the servo-vulnerable band, and Fused combines both
// into a single per-verdict confidence.
package detect

import (
	"fmt"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/simclock"
)

// Ptr returns a pointer to v — shorthand for the optional config fields.
func Ptr[T any](v T) *T { return &v }

// Config tunes the latency/error detector. All fields follow the repo's
// pointer convention: nil means the documented default, an explicit value
// is validated and honored (a Config{WindowOps: Ptr(1)} really is a
// one-op window — it is not silently replaced by the default).
type Config struct {
	// BaselineOps is how many initial healthy operations train the
	// latency baseline. Nil = 64; must be ≥ 1.
	BaselineOps *int
	// WindowOps is the sliding window the suspicion score is computed
	// over. Nil = 32; must be ≥ 1.
	WindowOps *int
	// LatencyFactor flags an op as anomalous when it exceeds the
	// baseline mean by this factor. Nil = 8; must be > 0.
	LatencyFactor *float64
	// AlarmThreshold is the window fraction of anomalous ops that raises
	// the alarm. Nil = 0.5; must be in (0, 1].
	AlarmThreshold *float64
	// Expiry bounds how long a window entry stays evidence: entries
	// older than Expiry no longer count toward suspicion, so an alarm
	// armed during an attack decays once I/O quiesces instead of
	// latching forever. It must comfortably exceed WindowOps × the
	// worst-case op latency (a failed op burns ~0.5 s in media-timeout
	// retries, so a 32-op window of pure failures spans ~17 s) or the
	// live quorum can never fill under exactly the attack the detector
	// exists to catch. Nil = 30 s; Ptr(0) disables expiry (the pure
	// ops-window behavior) and is honored; must be ≥ 0.
	Expiry *time.Duration
	// TrainErrorBudget fails training closed: a device that errors this
	// many times consecutively before a baseline exists is declared
	// under attack rather than silently never trained. Nil = 32; must
	// be ≥ 1.
	TrainErrorBudget *int
}

// config is the resolved concrete form of Config.
type config struct {
	baselineOps      int
	windowOps        int
	latencyFactor    float64
	alarmThreshold   float64
	expiry           time.Duration
	trainErrorBudget int
}

func (c Config) resolve() (config, error) {
	r := config{
		baselineOps:      64,
		windowOps:        32,
		latencyFactor:    8,
		alarmThreshold:   0.5,
		expiry:           30 * time.Second,
		trainErrorBudget: 32,
	}
	if c.BaselineOps != nil {
		if *c.BaselineOps < 1 {
			return r, fmt.Errorf("detect: BaselineOps %d must be ≥ 1", *c.BaselineOps)
		}
		r.baselineOps = *c.BaselineOps
	}
	if c.WindowOps != nil {
		if *c.WindowOps < 1 {
			return r, fmt.Errorf("detect: WindowOps %d must be ≥ 1", *c.WindowOps)
		}
		r.windowOps = *c.WindowOps
	}
	if c.LatencyFactor != nil {
		if *c.LatencyFactor <= 0 {
			return r, fmt.Errorf("detect: LatencyFactor %g must be > 0", *c.LatencyFactor)
		}
		r.latencyFactor = *c.LatencyFactor
	}
	if c.AlarmThreshold != nil {
		if *c.AlarmThreshold <= 0 || *c.AlarmThreshold > 1 {
			return r, fmt.Errorf("detect: AlarmThreshold %g must be in (0, 1]", *c.AlarmThreshold)
		}
		r.alarmThreshold = *c.AlarmThreshold
	}
	if c.Expiry != nil {
		if *c.Expiry < 0 {
			return r, fmt.Errorf("detect: Expiry %v must be ≥ 0", *c.Expiry)
		}
		r.expiry = *c.Expiry
	}
	if c.TrainErrorBudget != nil {
		if *c.TrainErrorBudget < 1 {
			return r, fmt.Errorf("detect: TrainErrorBudget %d must be ≥ 1", *c.TrainErrorBudget)
		}
		r.trainErrorBudget = *c.TrainErrorBudget
	}
	return r, nil
}

// windowEntry is one observed operation: when it happened and whether it
// looked anomalous.
type windowEntry struct {
	at        time.Time
	anomalous bool
}

// Detector scores a stream of (time, latency, error) observations.
type Detector struct {
	cfg config

	trainCount int
	trainSum   time.Duration
	baseline   time.Duration
	trainErrs  int // consecutive failures while untrained
	failClosed bool

	window []windowEntry
	pos    int
	filled bool

	// Alarms counts rising edges of the alarm condition.
	Alarms int
	armed  bool
}

// NewDetector returns an untrained detector, rejecting out-of-range
// configuration.
func NewDetector(cfg Config) (*Detector, error) {
	r, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	return &Detector{cfg: r, window: make([]windowEntry, r.windowOps)}, nil
}

// Baseline returns the trained baseline latency (zero until trained).
func (d *Detector) Baseline() time.Duration { return d.baseline }

// Trained reports whether the latency baseline is established.
func (d *Detector) Trained() bool { return d.trainCount >= d.cfg.baselineOps }

// FailedClosed reports whether training tripped the consecutive-error
// budget and the detector armed without ever seeing a healthy baseline.
func (d *Detector) FailedClosed() bool { return d.failClosed }

// ready reports whether the detector can render verdicts: either a
// baseline exists or training failed closed.
func (d *Detector) ready() bool { return d.Trained() || d.failClosed }

func (d *Detector) push(now time.Time, anomalous bool) {
	d.window[d.pos] = windowEntry{at: now, anomalous: anomalous}
	d.pos = (d.pos + 1) % len(d.window)
	if d.pos == 0 {
		d.filled = true
	}
}

// Observe feeds one operation's outcome into the detector.
func (d *Detector) Observe(now time.Time, latency time.Duration, failed bool) {
	if !d.Trained() {
		if failed {
			d.trainErrs++
			if d.failClosed {
				// Already failed closed: keep scoring errors so the
				// alarm reflects the device's current state.
				d.push(now, true)
			} else if d.trainErrs >= d.cfg.trainErrorBudget {
				// A device unhealthy from boot never trains; fail
				// closed and alarm rather than stay silent forever.
				d.failClosed = true
				for i := range d.window {
					d.window[i] = windowEntry{at: now, anomalous: true}
				}
				d.pos = 0
				d.filled = true
			}
			d.Tick(now)
			return
		}
		// Healthy op: baseline material, and it resets the consecutive-
		// error budget. In fail-closed mode it also ages the alarm out.
		d.trainErrs = 0
		d.trainCount++
		d.trainSum += latency
		if d.Trained() {
			d.baseline = d.trainSum / time.Duration(d.trainCount)
		}
		if d.failClosed {
			d.push(now, false)
		}
		d.Tick(now)
		return
	}
	anomalous := failed ||
		latency > time.Duration(float64(d.baseline)*d.cfg.latencyFactor)
	d.push(now, anomalous)
	d.Tick(now)
}

// live counts the window entries still in evidence at now (unexpired),
// and how many of those are anomalous.
func (d *Detector) live(now time.Time) (n, hits int) {
	limit := len(d.window)
	if !d.filled {
		limit = d.pos
	}
	for i := 0; i < limit; i++ {
		e := d.window[i]
		if d.cfg.expiry > 0 && now.Sub(e.at) > d.cfg.expiry {
			continue
		}
		n++
		if e.anomalous {
			hits++
		}
	}
	return n, hits
}

// Suspicion returns the anomalous fraction of the unexpired window as of
// now. Entries older than the configured Expiry have aged out of
// evidence, so suspicion decays to zero once I/O quiesces.
func (d *Detector) Suspicion(now time.Time) float64 {
	n, hits := d.live(now)
	if n == 0 {
		return 0
	}
	return float64(hits) / float64(n)
}

// AttackSuspected reports whether the unexpired window crosses the alarm
// threshold with a quorum of at least half the window still in evidence —
// a single stale sample (or a freshly trained detector) cannot alarm.
func (d *Detector) AttackSuspected(now time.Time) bool {
	if !d.ready() {
		return false
	}
	n, hits := d.live(now)
	if n < (len(d.window)+1)/2 {
		return false
	}
	return float64(hits)/float64(n) >= d.cfg.alarmThreshold
}

// Tick re-evaluates the alarm edge at now without observing an op. Call
// it from an idle poll loop so alarms clear when I/O has quiesced and the
// window evidence expires.
func (d *Detector) Tick(now time.Time) {
	suspected := d.AttackSuspected(now)
	if suspected && !d.armed {
		d.Alarms++
	}
	d.armed = suspected
}

// Monitor wraps a block device, feeding every operation through a
// Detector. It implements blockdev.Device, so it slots transparently
// under a filesystem or workload.
type Monitor struct {
	dev   blockdev.Device
	clock simclock.Clock
	det   *Detector
}

// NewMonitor wraps dev with telemetry-driven attack detection, rejecting
// out-of-range configuration.
func NewMonitor(dev blockdev.Device, clock simclock.Clock, cfg Config) (*Monitor, error) {
	det, err := NewDetector(cfg)
	if err != nil {
		return nil, err
	}
	return &Monitor{dev: dev, clock: clock, det: det}, nil
}

// Detector exposes the underlying detector.
func (m *Monitor) Detector() *Detector { return m.det }

// Suspicion returns the detector's current suspicion at the monitor's
// clock.
func (m *Monitor) Suspicion() float64 { return m.det.Suspicion(m.clock.Now()) }

// AttackSuspected reports the alarm condition at the monitor's clock.
func (m *Monitor) AttackSuspected() bool { return m.det.AttackSuspected(m.clock.Now()) }

// Tick re-evaluates the alarm edge at the monitor's clock (idle polling).
func (m *Monitor) Tick() { m.det.Tick(m.clock.Now()) }

// ReadAt implements blockdev.Device.
func (m *Monitor) ReadAt(p []byte, off int64) (int, error) {
	start := m.clock.Now()
	n, err := m.dev.ReadAt(p, off)
	m.det.Observe(m.clock.Now(), m.clock.Now().Sub(start), err != nil)
	return n, err
}

// WriteAt implements blockdev.Device.
func (m *Monitor) WriteAt(p []byte, off int64) (int, error) {
	start := m.clock.Now()
	n, err := m.dev.WriteAt(p, off)
	m.det.Observe(m.clock.Now(), m.clock.Now().Sub(start), err != nil)
	return n, err
}

// Flush implements blockdev.Device.
func (m *Monitor) Flush() error {
	start := m.clock.Now()
	err := m.dev.Flush()
	m.det.Observe(m.clock.Now(), m.clock.Now().Sub(start), err != nil)
	return err
}

// Size implements blockdev.Device.
func (m *Monitor) Size() int64 { return m.dev.Size() }

var _ blockdev.Device = (*Monitor)(nil)
