// Package detect is the operator-side counterpart of the attack: an
// anomaly detector that watches a drive's externally observable telemetry
// (request latency and errors) and raises an alarm when the signature of
// acoustic interference appears — latencies inflating by orders of
// magnitude and I/O errors clustering, long before the ~80 s crash horizon
// of Table 3. The paper's §5 calls for exactly this kind of monitoring
// groundwork for subsea platforms.
package detect

import (
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/simclock"
)

// Config tunes the detector.
type Config struct {
	// BaselineOps is how many initial operations train the latency
	// baseline (default 64).
	BaselineOps int
	// WindowOps is the sliding window the suspicion score is computed
	// over (default 32).
	WindowOps int
	// LatencyFactor flags an op as anomalous when it exceeds the
	// baseline mean by this factor (default 8).
	LatencyFactor float64
	// AlarmThreshold is the window fraction of anomalous ops that
	// raises the alarm (default 0.5).
	AlarmThreshold float64
}

func (c Config) withDefaults() Config {
	if c.BaselineOps <= 0 {
		c.BaselineOps = 64
	}
	if c.WindowOps <= 0 {
		c.WindowOps = 32
	}
	if c.LatencyFactor <= 0 {
		c.LatencyFactor = 8
	}
	if c.AlarmThreshold <= 0 {
		c.AlarmThreshold = 0.5
	}
	return c
}

// Detector scores a stream of (latency, error) observations.
type Detector struct {
	cfg Config

	trainCount int
	trainSum   time.Duration
	baseline   time.Duration

	window []bool // true = anomalous
	pos    int
	filled bool

	// Alarms counts rising edges of the alarm condition.
	Alarms int
	armed  bool
}

// NewDetector returns an untrained detector.
func NewDetector(cfg Config) *Detector {
	cfg = cfg.withDefaults()
	return &Detector{cfg: cfg, window: make([]bool, cfg.WindowOps)}
}

// Baseline returns the trained baseline latency (zero until trained).
func (d *Detector) Baseline() time.Duration { return d.baseline }

// Trained reports whether the baseline is established.
func (d *Detector) Trained() bool { return d.trainCount >= d.cfg.BaselineOps }

// Observe feeds one operation's outcome into the detector.
func (d *Detector) Observe(latency time.Duration, failed bool) {
	if !d.Trained() {
		// Errors during training are not baseline material; healthy
		// deployment precedes monitoring.
		if !failed {
			d.trainCount++
			d.trainSum += latency
			if d.Trained() {
				d.baseline = d.trainSum / time.Duration(d.trainCount)
			}
		}
		return
	}
	anomalous := failed ||
		latency > time.Duration(float64(d.baseline)*d.cfg.LatencyFactor)
	d.window[d.pos] = anomalous
	d.pos = (d.pos + 1) % len(d.window)
	if d.pos == 0 {
		d.filled = true
	}
	suspected := d.AttackSuspected()
	if suspected && !d.armed {
		d.Alarms++
	}
	d.armed = suspected
}

// Suspicion returns the anomalous fraction of the current window.
func (d *Detector) Suspicion() float64 {
	n := len(d.window)
	if !d.filled {
		n = d.pos
	}
	if n == 0 {
		return 0
	}
	hits := 0
	limit := len(d.window)
	if !d.filled {
		limit = d.pos
	}
	for i := 0; i < limit; i++ {
		if d.window[i] {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

// AttackSuspected reports whether the window crosses the alarm threshold.
func (d *Detector) AttackSuspected() bool {
	if !d.Trained() || (!d.filled && d.pos < len(d.window)/2) {
		return false
	}
	return d.Suspicion() >= d.cfg.AlarmThreshold
}

// Monitor wraps a block device, feeding every operation through a
// Detector. It implements blockdev.Device, so it slots transparently
// under a filesystem or workload.
type Monitor struct {
	dev   blockdev.Device
	clock simclock.Clock
	det   *Detector
}

// NewMonitor wraps dev with telemetry-driven attack detection.
func NewMonitor(dev blockdev.Device, clock simclock.Clock, cfg Config) *Monitor {
	return &Monitor{dev: dev, clock: clock, det: NewDetector(cfg)}
}

// Detector exposes the underlying detector.
func (m *Monitor) Detector() *Detector { return m.det }

// ReadAt implements blockdev.Device.
func (m *Monitor) ReadAt(p []byte, off int64) (int, error) {
	start := m.clock.Now()
	n, err := m.dev.ReadAt(p, off)
	m.det.Observe(m.clock.Now().Sub(start), err != nil)
	return n, err
}

// WriteAt implements blockdev.Device.
func (m *Monitor) WriteAt(p []byte, off int64) (int, error) {
	start := m.clock.Now()
	n, err := m.dev.WriteAt(p, off)
	m.det.Observe(m.clock.Now().Sub(start), err != nil)
	return n, err
}

// Flush implements blockdev.Device.
func (m *Monitor) Flush() error {
	start := m.clock.Now()
	err := m.dev.Flush()
	m.det.Observe(m.clock.Now().Sub(start), err != nil)
	return err
}

// Size implements blockdev.Device.
func (m *Monitor) Size() int64 { return m.dev.Size() }

var _ blockdev.Device = (*Monitor)(nil)
