package detect

import (
	"testing"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/hdd"
	"deepnote/internal/simclock"
)

func newMonitored(t *testing.T) (*Monitor, *blockdev.Disk, *simclock.Virtual) {
	t.Helper()
	clock := simclock.NewVirtual()
	drive, err := hdd.NewDrive(hdd.Barracuda500(), clock, 41)
	if err != nil {
		t.Fatal(err)
	}
	disk := blockdev.NewDisk(drive)
	m, err := NewMonitor(disk, clock, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m, disk, clock
}

func seqWrite(m *Monitor, n int) {
	buf := make([]byte, 4096)
	var off int64
	for i := 0; i < n; i++ {
		m.WriteAt(buf, off)
		off += 4096
	}
}

func TestDetectorTrainsOnHealthyTraffic(t *testing.T) {
	m, _, _ := newMonitored(t)
	seqWrite(m, 80)
	d := m.Detector()
	if !d.Trained() {
		t.Fatal("detector should be trained after 80 ops")
	}
	if d.Baseline() <= 0 || d.Baseline() > 5*time.Millisecond {
		t.Fatalf("baseline = %v", d.Baseline())
	}
	if m.AttackSuspected() {
		t.Fatal("healthy traffic raised an alarm")
	}
	if m.Suspicion() != 0 {
		t.Fatalf("suspicion = %v on healthy traffic", m.Suspicion())
	}
}

func TestDetectorRaisesAlarmUnderAttack(t *testing.T) {
	m, disk, _ := newMonitored(t)
	seqWrite(m, 80) // train
	disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 0.25})
	seqWrite(m, 40)
	d := m.Detector()
	if !m.AttackSuspected() {
		t.Fatalf("attack not detected; suspicion %.2f", m.Suspicion())
	}
	if d.Alarms != 1 {
		t.Fatalf("alarms = %d, want 1 rising edge", d.Alarms)
	}
}

func TestDetectorDetectsDeadDriveFast(t *testing.T) {
	m, disk, _ := newMonitored(t)
	seqWrite(m, 80)
	disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 2.3})
	// Every op now errors; the alarm must fire well within the ≈80 s
	// crash horizon of Table 3.
	start := m.clock.Now()
	seqWrite(m, 40)
	if !m.AttackSuspected() {
		t.Fatal("dead drive not detected")
	}
	if elapsed := m.clock.Now().Sub(start); elapsed > 60*time.Second {
		t.Fatalf("detection took %v, want well under the crash horizon", elapsed)
	}
}

func TestDetectorClearsAfterAttack(t *testing.T) {
	m, disk, _ := newMonitored(t)
	seqWrite(m, 80)
	disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 0.25})
	seqWrite(m, 40)
	if !m.AttackSuspected() {
		t.Fatal("attack not detected")
	}
	disk.Drive().SetVibration(hdd.Quiet())
	seqWrite(m, 64) // window refills with healthy ops
	if m.AttackSuspected() {
		t.Fatal("alarm stuck after attack ended")
	}
	// A second attack raises a second alarm edge.
	disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 0.25})
	seqWrite(m, 40)
	if m.Detector().Alarms != 2 {
		t.Fatalf("alarms = %d, want 2", m.Detector().Alarms)
	}
}

// Regression (zero-vs-unset satellite): explicit low-but-valid values must
// be honored, not silently replaced by defaults, and out-of-range values
// must be rejected instead of clamped.
func TestConfigPointerSemantics(t *testing.T) {
	d, err := NewDetector(Config{WindowOps: Ptr(1), BaselineOps: Ptr(1), AlarmThreshold: Ptr(1.0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.window) != 1 {
		t.Fatalf("explicit WindowOps 1 resolved to %d", len(d.window))
	}
	now := time.Unix(0, 0)
	d.Observe(now, time.Millisecond, false) // trains in one op
	if !d.Trained() {
		t.Fatal("explicit BaselineOps 1 must train after one op")
	}
	// LatencyFactor below 1 is unusual but valid: flags anything slower
	// than a fraction of baseline.
	if _, err := NewDetector(Config{LatencyFactor: Ptr(0.5)}); err != nil {
		t.Fatalf("explicit LatencyFactor 0.5 rejected: %v", err)
	}
	// Expiry 0 = never expire is a meaningful setting and honored.
	d0, err := NewDetector(Config{Expiry: Ptr(time.Duration(0))})
	if err != nil {
		t.Fatal(err)
	}
	if d0.cfg.expiry != 0 {
		t.Fatalf("explicit Expiry 0 resolved to %v", d0.cfg.expiry)
	}

	bad := []Config{
		{BaselineOps: Ptr(0)},
		{WindowOps: Ptr(0)},
		{WindowOps: Ptr(-3)},
		{LatencyFactor: Ptr(0.0)},
		{LatencyFactor: Ptr(-1.0)},
		{AlarmThreshold: Ptr(0.0)},
		{AlarmThreshold: Ptr(1.5)},
		{Expiry: Ptr(-time.Second)},
		{TrainErrorBudget: Ptr(0)},
	}
	for i, cfg := range bad {
		if _, err := NewDetector(cfg); err == nil {
			t.Fatalf("bad config %d accepted: %+v", i, cfg)
		}
	}
	clock := simclock.NewVirtual()
	if _, err := NewMonitor(nil, clock, Config{WindowOps: Ptr(0)}); err == nil {
		t.Fatal("NewMonitor accepted a bad config")
	}
}

// Regression (alarm-latch satellite): once I/O quiesces, window evidence
// must expire so suspicion decays and the alarm edge falls; a later
// attack raises a fresh rising edge.
func TestAlarmDecaysWhenIdle(t *testing.T) {
	m, disk, clock := newMonitored(t)
	seqWrite(m, 80)
	disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 0.25})
	seqWrite(m, 40)
	if !m.AttackSuspected() {
		t.Fatal("attack not detected")
	}
	if m.Detector().Alarms != 1 {
		t.Fatalf("alarms = %d", m.Detector().Alarms)
	}
	// The attack ends AND the workload stops — no ops refill the window.
	disk.Drive().SetVibration(hdd.Quiet())
	clock.Advance(40 * time.Second) // past the default 30 s expiry
	if m.AttackSuspected() {
		t.Fatal("alarm latched after I/O quiesced (stale window evidence)")
	}
	if m.Suspicion() != 0 {
		t.Fatalf("suspicion froze at %.2f after quiesce", m.Suspicion())
	}
	m.Tick() // idle poll observes the falling edge
	// Second attack: a fresh rising edge.
	disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 0.25})
	seqWrite(m, 40)
	if m.Detector().Alarms != 2 {
		t.Fatalf("alarms = %d, want 2 (rising/falling/rising)", m.Detector().Alarms)
	}
	// Expiry 0 keeps the old ops-window semantics: evidence never ages.
	d, err := NewDetector(Config{BaselineOps: Ptr(1), WindowOps: Ptr(4), Expiry: Ptr(time.Duration(0))})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	d.Observe(now, time.Millisecond, false)
	for i := 0; i < 4; i++ {
		d.Observe(now, time.Millisecond, true)
	}
	if !d.AttackSuspected(now.Add(time.Hour)) {
		t.Fatal("Expiry 0 must never expire evidence")
	}
}

// Regression (fail-closed satellite): a device erroring from boot never
// trains a baseline — it must alarm after the training error budget
// instead of staying silent forever.
func TestTrainingFailsClosed(t *testing.T) {
	d, err := NewDetector(Config{TrainErrorBudget: Ptr(8)})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	for i := 0; i < 7; i++ {
		d.Observe(now, time.Second, true)
		now = now.Add(time.Millisecond)
	}
	if d.AttackSuspected(now) {
		t.Fatal("alarmed before the error budget")
	}
	d.Observe(now, time.Second, true) // 8th consecutive error
	if !d.FailedClosed() {
		t.Fatal("training did not fail closed")
	}
	if !d.AttackSuspected(now) {
		t.Fatal("fail-closed must raise the alarm")
	}
	if d.Alarms != 1 {
		t.Fatalf("alarms = %d, want 1", d.Alarms)
	}
	if d.Trained() {
		t.Fatal("fail-closed is not a trained baseline")
	}
	// The device comes back: healthy ops age the alarm out and complete
	// training normally.
	for i := 0; i < 80; i++ {
		now = now.Add(time.Millisecond)
		d.Observe(now, time.Millisecond, false)
	}
	if !d.Trained() {
		t.Fatal("recovery must complete training")
	}
	if d.AttackSuspected(now) {
		t.Fatal("alarm stuck after the device recovered")
	}
	// Scattered errors (interleaved with successes) never trip the
	// budget: only consecutive errors mean unhealthy-from-boot.
	d2, err := NewDetector(Config{BaselineOps: Ptr(64), TrainErrorBudget: Ptr(4)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ { // 80 healthy ops — enough to finish training
		d2.Observe(now, time.Second, true)
		d2.Observe(now, time.Millisecond, false)
		d2.Observe(now, time.Millisecond, false)
	}
	if d2.FailedClosed() {
		t.Fatal("interleaved errors must not fail training closed")
	}
	if !d2.Trained() {
		t.Fatal("healthy majority must train")
	}
	if d2.Baseline() != time.Millisecond {
		t.Fatalf("errors polluted the baseline: %v", d2.Baseline())
	}
}

func TestDetectorNeedsHalfWindowBeforeAlarming(t *testing.T) {
	d, err := NewDetector(Config{BaselineOps: Ptr(2), WindowOps: Ptr(10)})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	d.Observe(now, time.Millisecond, false)
	d.Observe(now, time.Millisecond, false)
	// One anomalous op right after training must not alarm.
	d.Observe(now, time.Second, false)
	if d.AttackSuspected(now) {
		t.Fatal("single sample alarmed")
	}
}

func TestMonitorPassesThroughData(t *testing.T) {
	m, _, _ := newMonitored(t)
	data := []byte("telemetry must not corrupt data")
	if _, err := m.WriteAt(data, 12345); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := m.ReadAt(got, 12345); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatal("monitor corrupted data path")
	}
	if m.Size() <= 0 {
		t.Fatal("size passthrough")
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
}
