package detect

import (
	"testing"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/hdd"
	"deepnote/internal/simclock"
)

func newMonitored(t *testing.T) (*Monitor, *blockdev.Disk, *simclock.Virtual) {
	t.Helper()
	clock := simclock.NewVirtual()
	drive, err := hdd.NewDrive(hdd.Barracuda500(), clock, 41)
	if err != nil {
		t.Fatal(err)
	}
	disk := blockdev.NewDisk(drive)
	return NewMonitor(disk, clock, Config{}), disk, clock
}

func seqWrite(m *Monitor, n int) {
	buf := make([]byte, 4096)
	var off int64
	for i := 0; i < n; i++ {
		m.WriteAt(buf, off)
		off += 4096
	}
}

func TestDetectorTrainsOnHealthyTraffic(t *testing.T) {
	m, _, _ := newMonitored(t)
	seqWrite(m, 80)
	d := m.Detector()
	if !d.Trained() {
		t.Fatal("detector should be trained after 80 ops")
	}
	if d.Baseline() <= 0 || d.Baseline() > 5*time.Millisecond {
		t.Fatalf("baseline = %v", d.Baseline())
	}
	if d.AttackSuspected() {
		t.Fatal("healthy traffic raised an alarm")
	}
	if d.Suspicion() != 0 {
		t.Fatalf("suspicion = %v on healthy traffic", d.Suspicion())
	}
}

func TestDetectorRaisesAlarmUnderAttack(t *testing.T) {
	m, disk, _ := newMonitored(t)
	seqWrite(m, 80) // train
	disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 0.25})
	seqWrite(m, 40)
	d := m.Detector()
	if !d.AttackSuspected() {
		t.Fatalf("attack not detected; suspicion %.2f", d.Suspicion())
	}
	if d.Alarms != 1 {
		t.Fatalf("alarms = %d, want 1 rising edge", d.Alarms)
	}
}

func TestDetectorDetectsDeadDriveFast(t *testing.T) {
	m, disk, _ := newMonitored(t)
	seqWrite(m, 80)
	disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 2.3})
	// Every op now errors; the alarm must fire well within the ≈80 s
	// crash horizon of Table 3.
	start := m.clock.Now()
	seqWrite(m, 40)
	if !m.Detector().AttackSuspected() {
		t.Fatal("dead drive not detected")
	}
	if elapsed := m.clock.Now().Sub(start); elapsed > 60*time.Second {
		t.Fatalf("detection took %v, want well under the crash horizon", elapsed)
	}
}

func TestDetectorClearsAfterAttack(t *testing.T) {
	m, disk, _ := newMonitored(t)
	seqWrite(m, 80)
	disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 0.25})
	seqWrite(m, 40)
	if !m.Detector().AttackSuspected() {
		t.Fatal("attack not detected")
	}
	disk.Drive().SetVibration(hdd.Quiet())
	seqWrite(m, 64) // window refills with healthy ops
	if m.Detector().AttackSuspected() {
		t.Fatal("alarm stuck after attack ended")
	}
	// A second attack raises a second alarm edge.
	disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 0.25})
	seqWrite(m, 40)
	if m.Detector().Alarms != 2 {
		t.Fatalf("alarms = %d, want 2", m.Detector().Alarms)
	}
}

func TestDetectorIgnoresErrorsDuringTraining(t *testing.T) {
	d := NewDetector(Config{BaselineOps: 4, WindowOps: 4})
	d.Observe(time.Millisecond, true) // ignored
	for i := 0; i < 4; i++ {
		d.Observe(time.Millisecond, false)
	}
	if !d.Trained() {
		t.Fatal("not trained")
	}
	if d.Baseline() != time.Millisecond {
		t.Fatalf("baseline = %v", d.Baseline())
	}
}

func TestDetectorNeedsHalfWindowBeforeAlarming(t *testing.T) {
	d := NewDetector(Config{BaselineOps: 2, WindowOps: 10})
	d.Observe(time.Millisecond, false)
	d.Observe(time.Millisecond, false)
	// One anomalous op right after training must not alarm.
	d.Observe(time.Second, false)
	if d.AttackSuspected() {
		t.Fatal("single sample alarmed")
	}
}

func TestMonitorPassesThroughData(t *testing.T) {
	m, _, _ := newMonitored(t)
	data := []byte("telemetry must not corrupt data")
	if _, err := m.WriteAt(data, 12345); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := m.ReadAt(got, 12345); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatal("monitor corrupted data path")
	}
	if m.Size() <= 0 {
		t.Fatal("size passthrough")
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
}
