// The spectral half of the detector: a streaming fingerprinter that runs
// a Goertzel bank over synthesized drive-tray vibration telemetry and
// decides, window by window, whether the energy looks like a hostile
// narrowband tone in the servo-vulnerable band (§4.1) or like one of the
// benign ambient sources an underwater facility actually hears — ship
// traffic, rain, snapping shrimp, its own pumps, hull creak.
//
// A window is hostile only when four independent factors agree: the peak
// is loud in absolute terms, narrowband relative to the in-band energy,
// well above the broadband floor, and persistent across consecutive
// windows. A fifth check rejects harmonic combs rooted below the band
// (pump and propeller lines), which defeat naive amplitude thresholds.
package detect

import (
	"fmt"
	"math"
	"time"

	"deepnote/internal/dsp"
	"deepnote/internal/units"
)

// FingerprintConfig tunes the spectral fingerprinter. Pointer fields
// follow the zero-vs-unset convention: nil = default, explicit values are
// validated and honored.
type FingerprintConfig struct {
	// SampleRate is the telemetry sample rate in Hz. Nil = 4096; must
	// be > 0.
	SampleRate *float64
	// WindowSamples is the analysis window length. Nil = 512 (125 ms at
	// the default rate); must be ≥ 16.
	WindowSamples *int
	// BandLow/BandHigh bound the vulnerable band a hostile tone lives
	// in. Nil = 300 / 1400 Hz (the §4.1 servo-resonance window).
	BandLow, BandHigh *units.Frequency
	// GuardLow is the bottom of the sub-band guard region scanned for
	// harmonic-comb fundamentals. Nil = 30 Hz; must be > 0 and < BandLow.
	GuardLow *units.Frequency
	// BinStep is the bank's frequency grid pitch. Nil = 10 Hz; must
	// be > 0.
	BinStep *units.Frequency
	// MinAmp is the minimum peak amplitude (track-pitch fractions) a
	// hostile candidate needs. Nil = 0.02; must be > 0.
	MinAmp *float64
	// MinTonalFrac is the minimum fraction of in-band bank energy the
	// peak bin must hold. Nil = 0.35; must be in (0, 1].
	MinTonalFrac *float64
	// MinSNRdB is the minimum peak-over-broadband ratio. Nil = 5 dB.
	MinSNRdB *float64
	// Persistence is how many consecutive windows a candidate must hold
	// its bin before the verdict turns hostile. Nil = 3; must be ≥ 1.
	Persistence *int
}

type fingerprintConfig struct {
	sampleRate    float64
	windowSamples int
	bandLow       units.Frequency
	bandHigh      units.Frequency
	guardLow      units.Frequency
	binStep       units.Frequency
	minAmp        float64
	minTonalFrac  float64
	minSNRdB      float64
	persistence   int
}

func (c FingerprintConfig) resolve() (fingerprintConfig, error) {
	r := fingerprintConfig{
		sampleRate:    4096,
		windowSamples: 512,
		bandLow:       300 * units.Hz,
		bandHigh:      1400 * units.Hz,
		guardLow:      30 * units.Hz,
		binStep:       10 * units.Hz,
		minAmp:        0.02,
		minTonalFrac:  0.35,
		minSNRdB:      5,
		persistence:   3,
	}
	if c.SampleRate != nil {
		if *c.SampleRate <= 0 {
			return r, fmt.Errorf("detect: SampleRate %g must be > 0", *c.SampleRate)
		}
		r.sampleRate = *c.SampleRate
	}
	if c.WindowSamples != nil {
		if *c.WindowSamples < 16 {
			return r, fmt.Errorf("detect: WindowSamples %d must be ≥ 16", *c.WindowSamples)
		}
		r.windowSamples = *c.WindowSamples
	}
	if c.BandLow != nil {
		r.bandLow = *c.BandLow
	}
	if c.BandHigh != nil {
		r.bandHigh = *c.BandHigh
	}
	if r.bandLow <= 0 || r.bandHigh <= r.bandLow {
		return r, fmt.Errorf("detect: band [%v, %v] must satisfy 0 < low < high", r.bandLow, r.bandHigh)
	}
	if c.GuardLow != nil {
		r.guardLow = *c.GuardLow
	}
	if r.guardLow <= 0 || r.guardLow >= r.bandLow {
		return r, fmt.Errorf("detect: GuardLow %v must be in (0, BandLow %v)", r.guardLow, r.bandLow)
	}
	if c.BinStep != nil {
		if *c.BinStep <= 0 {
			return r, fmt.Errorf("detect: BinStep %v must be > 0", *c.BinStep)
		}
		r.binStep = *c.BinStep
	}
	if c.MinAmp != nil {
		if *c.MinAmp <= 0 {
			return r, fmt.Errorf("detect: MinAmp %g must be > 0", *c.MinAmp)
		}
		r.minAmp = *c.MinAmp
	}
	if c.MinTonalFrac != nil {
		if *c.MinTonalFrac <= 0 || *c.MinTonalFrac > 1 {
			return r, fmt.Errorf("detect: MinTonalFrac %g must be in (0, 1]", *c.MinTonalFrac)
		}
		r.minTonalFrac = *c.MinTonalFrac
	}
	if c.MinSNRdB != nil {
		if *c.MinSNRdB <= 0 {
			return r, fmt.Errorf("detect: MinSNRdB %g must be > 0", *c.MinSNRdB)
		}
		r.minSNRdB = *c.MinSNRdB
	}
	if c.Persistence != nil {
		if *c.Persistence < 1 {
			return r, fmt.Errorf("detect: Persistence %d must be ≥ 1", *c.Persistence)
		}
		r.persistence = *c.Persistence
	}
	if r.bandHigh.Hertz() >= r.sampleRate/2 {
		return r, fmt.Errorf("detect: BandHigh %v at or above Nyquist (%g Hz)", r.bandHigh, r.sampleRate/2)
	}
	return r, nil
}

// BenignReason explains why a window was not classified hostile.
type BenignReason int

const (
	// ReasonNone: the window IS hostile.
	ReasonNone BenignReason = iota
	// ReasonQuiet: no in-band peak above the amplitude floor.
	ReasonQuiet
	// ReasonBroadband: energy spread across the band (rain, shrimp
	// crackle) rather than concentrated in one bin.
	ReasonBroadband
	// ReasonLowSNR: a peak exists but sits too close to the broadband
	// floor.
	ReasonLowSNR
	// ReasonHarmonicComb: the peak is a harmonic of a sub-band
	// fundamental with comb partners — facility pump or propeller blade
	// lines, not an attack tone.
	ReasonHarmonicComb
	// ReasonTransient: a candidate that has not yet persisted long
	// enough to confirm.
	ReasonTransient
)

// String names the reason.
func (r BenignReason) String() string {
	switch r {
	case ReasonNone:
		return "hostile"
	case ReasonQuiet:
		return "quiet"
	case ReasonBroadband:
		return "broadband"
	case ReasonLowSNR:
		return "low-snr"
	case ReasonHarmonicComb:
		return "harmonic-comb"
	case ReasonTransient:
		return "transient"
	}
	return fmt.Sprintf("reason(%d)", int(r))
}

// SpectralVerdict is one analysis window's classification.
type SpectralVerdict struct {
	// At is the window's end time (origin + windows·windowDuration).
	At time.Time
	// Window is the 0-based window index.
	Window int
	// PeakFreq/PeakAmp locate the strongest in-band bin (amplitude in
	// track-pitch fractions).
	PeakFreq units.Frequency
	PeakAmp  float64
	// TonalFrac is the peak bin's share of the in-band bank energy.
	TonalFrac float64
	// SNRdB is the peak amplitude over the broadband floor estimate.
	SNRdB float64
	// Run counts consecutive windows the candidate held its bin.
	Run int
	// Hostile is the verdict; Confidence ∈ [0, 1] is ≥ 0.5 iff Hostile.
	Hostile    bool
	Confidence float64
	// Benign explains a non-hostile verdict.
	Benign BenignReason
}

// Fingerprinter streams telemetry samples through a Goertzel bank and
// classifies each completed window. Steady state (benign traffic) is
// allocation-free; hostile verdicts append to a bounded detection log.
type Fingerprinter struct {
	cfg        fingerprintConfig
	bank       *dsp.Bank
	guardBins  int    // bins below bandLow
	masked     []bool // per-window scratch: bins attributed to a comb
	origin     time.Time
	run        int
	runBin     int
	armed      bool
	last       SpectralVerdict
	maxConf    float64
	hostileWin int
	// Alarms counts rising edges of the hostile verdict.
	Alarms     int
	detections []SpectralVerdict
}

// maxStoredDetections bounds the per-run detection log.
const maxStoredDetections = 512

// NewFingerprinter builds the spectral classifier, rejecting out-of-range
// configuration.
func NewFingerprinter(cfg FingerprintConfig) (*Fingerprinter, error) {
	r, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	var freqs []units.Frequency
	guard := 0
	for f := r.guardLow; f < r.bandLow; f += r.binStep {
		freqs = append(freqs, f)
		guard++
	}
	for f := r.bandLow; f <= r.bandHigh; f += r.binStep {
		freqs = append(freqs, f)
	}
	bank, err := dsp.NewBank(r.sampleRate, r.windowSamples, freqs)
	if err != nil {
		return nil, err
	}
	return &Fingerprinter{
		cfg:       r,
		bank:      bank,
		guardBins: guard,
		masked:    make([]bool, len(freqs)),
		runBin:    -1,
	}, nil
}

// SetOrigin anchors verdict timestamps: window w ends at
// origin + (w+1)·windowSamples/sampleRate.
func (f *Fingerprinter) SetOrigin(t time.Time) { f.origin = t }

// WindowDuration returns one analysis window's span of virtual time.
func (f *Fingerprinter) WindowDuration() time.Duration {
	return time.Duration(float64(f.cfg.windowSamples) / f.cfg.sampleRate * float64(time.Second))
}

// WindowSamples returns the analysis window length in samples.
func (f *Fingerprinter) WindowSamples() int { return f.cfg.windowSamples }

// SampleRate returns the telemetry sample rate in Hz.
func (f *Fingerprinter) SampleRate() float64 { return f.cfg.sampleRate }

// Feed pushes telemetry samples, classifying every window that completes.
func (f *Fingerprinter) Feed(samples []float64) {
	for _, x := range samples {
		frame, ok := f.bank.Push(x)
		if ok {
			f.classify(frame)
		}
	}
}

func clamp01(x float64) float64 { return math.Min(1, math.Max(0, x)) }

// score maps a threshold ratio to [0, 1]: exactly at threshold → 0.5,
// twice the threshold (or more) → 1.
func score(ratio float64) float64 { return clamp01(ratio / 2) }

func (f *Fingerprinter) classify(frame dsp.Frame) {
	n := f.cfg.windowSamples
	v := SpectralVerdict{
		Window: frame.Index,
		At:     f.origin.Add(time.Duration(int64(frame.Index+1) * int64(f.WindowDuration()))),
	}

	// Mask machinery combs first: a strong sub-band line whose harmonic
	// family is audible (pump, propeller blades) claims its multiples, so
	// comb energy is excluded from both the peak search and the tonal-
	// fraction denominator. A comb can out-shout a co-existing attack
	// tone; explaining it away up front lets the residual be judged on
	// its own merits.
	powers := frame.Power
	freqs := f.bank.Freqs()
	for i := range f.masked {
		f.masked[i] = false
	}
	sawComb := false
	for g := 0; g < f.guardBins; g++ {
		fundAmp := dsp.Amp(powers[g], n)
		if fundAmp < f.cfg.minAmp {
			continue
		}
		f0 := freqs[g].Hertz()
		audible := 0
		for m := 2.0; m*f0 <= freqs[len(freqs)-1].Hertz(); m++ {
			if dsp.Amp(powers[f.nearestBin(m*f0)], n) >= 0.25*fundAmp {
				audible++
			}
		}
		if audible >= 2 {
			sawComb = true
			f.maskComb(f0)
		}
	}

	// Locate the in-band peak over the unmasked residual.
	peak := -1
	var peakP, inBandSum float64
	for i := f.guardBins; i < len(powers); i++ {
		if f.masked[i] {
			continue
		}
		inBandSum += powers[i]
		if peak < 0 || powers[i] > peakP {
			peak, peakP = i, powers[i]
		}
	}
	if peak >= 0 {
		v.PeakFreq = freqs[peak]
		v.PeakAmp = dsp.Amp(peakP, n)
		if inBandSum > 0 {
			v.TonalFrac = peakP / inBandSum
		}
	}

	// Broadband floor: total power minus the tonal bins (bins well above
	// the mean bin power), floored so a dominating tone cannot drive the
	// estimate to zero.
	var meanP float64
	for _, p := range powers {
		meanP += p
	}
	meanP /= float64(len(powers))
	var tonalMS float64
	for _, p := range powers {
		if p > 4*meanP {
			a := dsp.Amp(p, n)
			tonalMS += a * a / 2
		}
	}
	noiseMS := math.Max(frame.TotalMS-tonalMS, 0.05*frame.TotalMS)
	if noiseMS < 1e-18 {
		noiseMS = 1e-18
	}
	sigma := math.Sqrt(noiseMS)
	if v.PeakAmp > 0 {
		v.SNRdB = 20 * math.Log10(v.PeakAmp/sigma)
	} else {
		v.SNRdB = math.Inf(-1)
	}

	// The four factor ratios (≥ 1 = factor satisfied).
	ampRatio := v.PeakAmp / f.cfg.minAmp
	tonalRatio := v.TonalFrac / f.cfg.minTonalFrac
	snrRatio := v.SNRdB / f.cfg.minSNRdB

	candidate := ampRatio >= 1 && tonalRatio >= 1 && snrRatio >= 1
	switch {
	case ampRatio < 1:
		if sawComb {
			// Everything above the floor was machinery-comb harmonics.
			v.Benign = ReasonHarmonicComb
		} else {
			v.Benign = ReasonQuiet
		}
	case tonalRatio < 1:
		v.Benign = ReasonBroadband
	case snrRatio < 1:
		v.Benign = ReasonLowSNR
	default:
		// Second line of defense: a comb too faint for fundamental-
		// anchored masking can still be recognized from the peak side.
		if _, ok := f.combMatch(frame, peak); ok {
			v.Benign = ReasonHarmonicComb
			candidate = false
		}
	}

	// Persistence: the candidate must hold (nearly) the same bin across
	// consecutive windows — drive tones are stable, transients are not.
	if candidate {
		if f.runBin >= 0 && abs(peak-f.runBin) <= 2 {
			f.run++
		} else {
			f.run = 1
		}
		f.runBin = peak
	} else {
		f.run = 0
		f.runBin = -1
	}
	v.Run = f.run

	// Confidence is the weakest factor's score; for comb windows the
	// ratios already describe the (quiet) residual after masking, so a
	// recognized comb cannot push confidence toward the hostile line no
	// matter how loud its harmonics are.
	runRatio := float64(f.run) / float64(f.cfg.persistence)
	conf := math.Min(math.Min(score(ampRatio), score(tonalRatio)),
		math.Min(score(snrRatio), score(runRatio)))
	v.Confidence = clamp01(conf)
	v.Hostile = candidate && f.run >= f.cfg.persistence
	if v.Hostile {
		v.Benign = ReasonNone
		f.hostileWin++
		if len(f.detections) < maxStoredDetections {
			f.detections = append(f.detections, v)
		}
	} else if candidate {
		v.Benign = ReasonTransient
	}
	if v.Confidence > f.maxConf {
		f.maxConf = v.Confidence
	}
	if v.Hostile && !f.armed {
		f.Alarms++
	}
	f.armed = v.Hostile
	f.last = v
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// combMatch reports whether the in-band peak is a harmonic of a sub-band
// fundamental with at least one more comb partner — the signature of
// pump/propeller machinery rather than a single attack tone — returning
// the fundamental's bin. (An attacker could in principle masquerade by
// emitting a matching sub-band fundamental; that trade costs acoustic
// power outside the damaging band and is out of scope for this
// classifier.)
func (f *Fingerprinter) combMatch(frame dsp.Frame, peak int) (int, bool) {
	if peak < 0 {
		return -1, false
	}
	freqs := f.bank.Freqs()
	powers := frame.Power
	n := f.cfg.windowSamples
	peakAmp := dsp.Amp(powers[peak], n)

	// Strongest guard-region line at least half the peak's amplitude.
	fund := -1
	var fundAmp float64
	for i := 0; i < f.guardBins; i++ {
		a := dsp.Amp(powers[i], n)
		if a >= 0.5*peakAmp && a > fundAmp {
			fund, fundAmp = i, a
		}
	}
	if fund < 0 {
		return -1, false
	}
	f0 := freqs[fund].Hertz()
	pf := freqs[peak].Hertz()
	k := math.Round(pf / f0)
	if k < 2 {
		return -1, false
	}
	tol := math.Max(f.cfg.binStep.Hertz(), 0.02*pf)
	if math.Abs(pf-k*f0) > tol {
		return -1, false
	}
	// At least one more harmonic of the fundamental must be audible.
	for m := 2; m <= 10; m++ {
		hf := f0 * float64(m)
		if hf > freqs[len(freqs)-1].Hertz() {
			break
		}
		if math.Abs(hf-pf) <= tol {
			continue // the peak itself
		}
		if a := dsp.Amp(powers[f.nearestBin(hf)], n); a >= 0.25*fundAmp {
			return fund, true
		}
	}
	return -1, false
}

// maskComb marks every in-band bin lying on a harmonic of f0 (Hz) so the
// residual spectrum can be re-scanned for a non-comb candidate. The
// tolerance matches combMatch's, evaluated per harmonic.
func (f *Fingerprinter) maskComb(f0 float64) {
	freqs := f.bank.Freqs()
	top := freqs[len(freqs)-1].Hertz()
	for m := 2.0; m*f0 <= top+f.cfg.binStep.Hertz(); m++ {
		hf := m * f0
		tol := math.Max(f.cfg.binStep.Hertz(), 0.02*hf)
		for i := f.guardBins; i < len(freqs); i++ {
			if math.Abs(freqs[i].Hertz()-hf) <= tol {
				f.masked[i] = true
			}
		}
	}
}

// nearestBin returns the bank bin index closest to freq (Hz).
func (f *Fingerprinter) nearestBin(hz float64) int {
	freqs := f.bank.Freqs()
	if hz <= freqs[0].Hertz() {
		return 0
	}
	if g := freqs[f.guardBins-1].Hertz(); hz < (g+f.cfg.bandLow.Hertz())/2 {
		i := int(math.Round((hz - f.cfg.guardLow.Hertz()) / f.cfg.binStep.Hertz()))
		if i >= f.guardBins {
			i = f.guardBins - 1
		}
		return i
	}
	i := f.guardBins + int(math.Round((hz-f.cfg.bandLow.Hertz())/f.cfg.binStep.Hertz()))
	if i < f.guardBins {
		i = f.guardBins
	}
	if i >= len(freqs) {
		i = len(freqs) - 1
	}
	return i
}

// Last returns the most recent window's verdict.
func (f *Fingerprinter) Last() SpectralVerdict { return f.last }

// Hostile reports whether the most recent window was classified hostile.
func (f *Fingerprinter) Hostile() bool { return f.last.Hostile }

// Confidence returns the most recent window's confidence.
func (f *Fingerprinter) Confidence() float64 { return f.last.Confidence }

// MaxConfidence returns the highest confidence any window reached.
func (f *Fingerprinter) MaxConfidence() float64 { return f.maxConf }

// Windows returns how many analysis windows have completed.
func (f *Fingerprinter) Windows() int { return f.bank.Frames() }

// HostileWindows returns how many windows were classified hostile.
func (f *Fingerprinter) HostileWindows() int { return f.hostileWin }

// Detections returns the hostile verdicts (bounded log, chronological).
func (f *Fingerprinter) Detections() []SpectralVerdict { return f.detections }

// FirstDetection returns the earliest hostile verdict.
func (f *Fingerprinter) FirstDetection() (SpectralVerdict, bool) {
	if len(f.detections) == 0 {
		return SpectralVerdict{}, false
	}
	return f.detections[0], true
}

// Fused combines the two detection factors — latency/error telemetry and
// the spectral fingerprint — into one verdict. Spectral confidence alone
// can cross the hostile line (a stealthy tone below the latency-damage
// threshold); a saturated latency detector alone can too (a non-acoustic
// failure still deserves an alarm); in between, each factor corroborates
// the other. A SMART trip (servo retries / command timeouts over
// threshold) adds a fixed bonus, since benign ambient noise never moves
// SMART counters.
type Fused struct {
	Telemetry *Detector
	Spectral  *Fingerprinter
	// SMARTSuspect is set by the caller when the drive's SMART
	// attributes crossed their thresholds.
	SMARTSuspect bool

	// Alarms counts rising edges of the fused hostile verdict.
	Alarms int
	armed  bool
	max    float64
}

// FusedVerdict is the combined classification at one instant.
type FusedVerdict struct {
	At                 time.Time
	Suspicion          float64
	SpectralConfidence float64
	SMARTSuspect       bool
	Confidence         float64
	Hostile            bool
}

// Verdict renders the fused verdict at now and tracks alarm edges.
func (f *Fused) Verdict(now time.Time) FusedVerdict {
	v := FusedVerdict{At: now, SMARTSuspect: f.SMARTSuspect}
	if f.Telemetry != nil {
		v.Suspicion = f.Telemetry.Suspicion(now)
	}
	if f.Spectral != nil {
		v.SpectralConfidence = f.Spectral.Confidence()
	}
	v.Confidence = math.Max(v.SpectralConfidence, 0.5*v.Suspicion+0.5*v.SpectralConfidence)
	if f.SMARTSuspect {
		v.Confidence = clamp01(v.Confidence + 0.2)
	}
	v.Hostile = v.Confidence >= 0.5
	if v.Confidence > f.max {
		f.max = v.Confidence
	}
	if v.Hostile && !f.armed {
		f.Alarms++
	}
	f.armed = v.Hostile
	return v
}

// MaxConfidence returns the highest fused confidence rendered so far.
func (f *Fused) MaxConfidence() float64 { return f.max }
