package detect

import (
	"math"
	"testing"
	"time"

	"deepnote/internal/hdd"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

func newFP(t *testing.T) *Fingerprinter {
	t.Helper()
	fp, err := NewFingerprinter(FingerprintConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// feedScenario streams windows of (vibration + ambient + sensor noise)
// telemetry through the fingerprinter.
func feedScenario(fp *Fingerprinter, vib hdd.Vibration, amb sig.Ambient, windows int, seed int64) {
	synth := NewSynth(fp.SampleRate(), fp.WindowSamples(), DefaultSensorSigma, seed)
	for w := 0; w < windows; w++ {
		fp.Feed(synth.Window(vib, amb))
	}
}

// The headline pin: zero false positives at default thresholds across the
// full benign ambient corpus — every scenario, many windows, several
// seeds.
func TestFingerprintZeroFalsePositivesOnBenignCorpus(t *testing.T) {
	for _, kind := range sig.AmbientKinds() {
		for seed := int64(1); seed <= 3; seed++ {
			fp := newFP(t)
			feedScenario(fp, hdd.Quiet(), sig.NewAmbient(kind, seed), 96, seed)
			if fp.HostileWindows() != 0 || fp.Alarms != 0 {
				t.Fatalf("%v seed %d: %d hostile windows, %d alarms on benign noise",
					kind, seed, fp.HostileWindows(), fp.Alarms)
			}
			if fp.MaxConfidence() >= 0.5 {
				t.Fatalf("%v seed %d: benign confidence reached %.2f",
					kind, seed, fp.MaxConfidence())
			}
			if fp.Windows() != 96 {
				t.Fatalf("windows = %d", fp.Windows())
			}
		}
	}
}

// The §4.1 hostile tone must be fingerprinted at 6 dB over the broadband
// floor — far below the level that causes any I/O damage.
func TestFingerprintDetectsHostileToneAt6dB(t *testing.T) {
	for _, kind := range append([]sig.AmbientKind{sig.AmbientNone}, sig.AmbientKinds()...) {
		amb := sig.NewAmbient(kind, 2)
		sigma := math.Hypot(DefaultSensorSigma, amb.NominalSigma())
		vib := hdd.Vibration{Freq: 650 * units.Hz, Amplitude: sigma * math.Pow(10, 6.0/20)}
		fp := newFP(t)
		fp.SetOrigin(time.Unix(1000, 0))
		feedScenario(fp, vib, amb, 48, 2)
		det, ok := fp.FirstDetection()
		if !ok {
			t.Fatalf("%v: 650 Hz tone at 6 dB SNR not detected (max conf %.2f)", kind, fp.MaxConfidence())
		}
		if math.Abs(det.PeakFreq.Hertz()-650) > 20 {
			t.Fatalf("%v: detected %v, want ≈ 650 Hz", kind, det.PeakFreq)
		}
		if det.Confidence < 0.5 {
			t.Fatalf("%v: hostile confidence %.2f < 0.5", kind, det.Confidence)
		}
		if det.Hostile != (det.Confidence >= 0.5) {
			t.Fatal("hostile iff confidence ≥ 0.5 invariant broken")
		}
		// Detection latency: persistence (3 windows) plus slack.
		if det.At.Sub(time.Unix(1000, 0)) > 10*fp.WindowDuration() {
			t.Fatalf("%v: detection took %v", kind, det.At.Sub(time.Unix(1000, 0)))
		}
	}
}

// Below the floor (0 dB) the same tone must NOT be called hostile — that
// is the false-positive / sensitivity trade the thresholds encode.
func TestFingerprintIgnoresBuriedTone(t *testing.T) {
	vib := hdd.Vibration{Freq: 650 * units.Hz, Amplitude: DefaultSensorSigma}
	fp := newFP(t)
	feedScenario(fp, vib, sig.Ambient{}, 48, 3)
	if fp.HostileWindows() != 0 {
		t.Fatalf("tone at 0 dB SNR classified hostile in %d windows", fp.HostileWindows())
	}
}

// The pump's 360/480/600 Hz harmonics are louder than MinAmp — only the
// comb check keeps them benign. Verify it is load-bearing.
func TestFingerprintRejectsPumpCombByStructure(t *testing.T) {
	fp := newFP(t)
	feedScenario(fp, hdd.Quiet(), sig.NewAmbient(sig.AmbientPump, 5), 48, 5)
	if fp.HostileWindows() != 0 {
		t.Fatal("pump comb classified hostile")
	}
	combSeen := false
	// Re-run a single window to inspect the verdict.
	fp2 := newFP(t)
	synth := NewSynth(fp2.SampleRate(), fp2.WindowSamples(), DefaultSensorSigma, 5)
	for w := 0; w < 16; w++ {
		fp2.Feed(synth.Window(hdd.Quiet(), sig.NewAmbient(sig.AmbientPump, 5)))
		if fp2.Last().Benign == ReasonHarmonicComb {
			combSeen = true
		}
	}
	if !combSeen {
		t.Fatal("pump windows never exercised the harmonic-comb rejector")
	}
	// A hostile tone co-existing with the pump must still be caught:
	// 650 Hz is not on the 120 Hz comb.
	amb := sig.NewAmbient(sig.AmbientPump, 5)
	sigma := math.Hypot(DefaultSensorSigma, amb.NominalSigma())
	fp3 := newFP(t)
	feedScenario(fp3, hdd.Vibration{Freq: 650 * units.Hz, Amplitude: 3 * sigma}, amb, 48, 5)
	if _, ok := fp3.FirstDetection(); !ok {
		t.Fatal("pump background masked a true 650 Hz attack")
	}
}

func TestFingerprintConfigValidation(t *testing.T) {
	good, err := NewFingerprinter(FingerprintConfig{
		SampleRate:    Ptr(2048.0),
		WindowSamples: Ptr(256),
		BinStep:       Ptr(8 * units.Hz),
		BandHigh:      Ptr(900 * units.Hz),
	})
	if err != nil {
		t.Fatal(err)
	}
	if good.SampleRate() != 2048 || good.WindowSamples() != 256 {
		t.Fatal("explicit config not honored")
	}
	bad := []FingerprintConfig{
		{SampleRate: Ptr(0.0)},
		{WindowSamples: Ptr(8)},
		{BandLow: Ptr(units.Frequency(0))},
		{BandLow: Ptr(900 * units.Hz), BandHigh: Ptr(800 * units.Hz)},
		{GuardLow: Ptr(units.Frequency(0))},
		{GuardLow: Ptr(400 * units.Hz)}, // ≥ BandLow
		{BinStep: Ptr(units.Frequency(0))},
		{MinAmp: Ptr(0.0)},
		{MinTonalFrac: Ptr(1.5)},
		{MinSNRdB: Ptr(-3.0)},
		{Persistence: Ptr(0)},
		{BandHigh: Ptr(3000 * units.Hz)}, // ≥ Nyquist at 4096 Hz
	}
	for i, cfg := range bad {
		if _, err := NewFingerprinter(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

// Benign steady state must not allocate (the fingerprinter rides inside
// simulation loops); the Synth buffer is reused.
func TestFingerprintBenignSteadyStateAllocFree(t *testing.T) {
	fp := newFP(t)
	buf := make([]float64, fp.WindowSamples())
	for i := range buf {
		buf[i] = 0.001 * math.Sin(0.05*float64(i))
	}
	fp.Feed(buf) // warm up
	allocs := testing.AllocsPerRun(50, func() { fp.Feed(buf) })
	if allocs != 0 {
		t.Fatalf("benign classify allocates %.1f/window, want 0", allocs)
	}
}

func TestFusedVerdictCombinesFactors(t *testing.T) {
	// Spectral-only: a stealthy tone the latency detector cannot see.
	fp := newFP(t)
	det, err := NewDetector(Config{})
	if err != nil {
		t.Fatal(err)
	}
	fused := &Fused{Telemetry: det, Spectral: fp}
	now := time.Unix(2000, 0)
	feedScenario(fp, hdd.Vibration{Freq: 650 * units.Hz, Amplitude: 0.05}, sig.Ambient{}, 8, 9)
	v := fused.Verdict(now)
	if !v.Hostile || v.SpectralConfidence < 0.5 {
		t.Fatalf("spectral-only verdict: %+v", v)
	}
	if fused.Alarms != 1 {
		t.Fatalf("fused alarms = %d", fused.Alarms)
	}
	// Telemetry-only: saturate the latency detector with no spectral
	// energy — a non-acoustic failure still alarms.
	det2, _ := NewDetector(Config{BaselineOps: Ptr(1), WindowOps: Ptr(4)})
	det2.Observe(now, time.Millisecond, false)
	for i := 0; i < 4; i++ {
		det2.Observe(now, time.Millisecond, true)
	}
	fused2 := &Fused{Telemetry: det2, Spectral: newFP(t)}
	if v2 := fused2.Verdict(now); !v2.Hostile {
		t.Fatalf("saturated telemetry verdict: %+v", v2)
	}
	// SMART corroboration adds confidence.
	fused3 := &Fused{Telemetry: det, Spectral: newFP(t)}
	base := fused3.Verdict(now).Confidence
	fused3.SMARTSuspect = true
	if boosted := fused3.Verdict(now).Confidence; boosted <= base {
		t.Fatalf("SMART trip must raise confidence: %.2f -> %.2f", base, boosted)
	}
}
