// Telemetry synthesis: the drive-tray vibration stream the fingerprinter
// consumes. A real deployment would read an accelerometer on the tray;
// the simulation synthesizes the equivalent signal from what it already
// knows — the drive's current excitation state (the attack side of the
// acoustic chain), the ambient scenario's components, and seeded sensor
// noise — window by window, deterministic per (seed, window index).
package detect

import (
	"math"
	"math/rand"

	"deepnote/internal/hdd"
	"deepnote/internal/parallel"
	"deepnote/internal/sig"
)

// DefaultSensorSigma is the tray sensor's own noise floor in track-pitch
// fractions — matched to the Barracuda500 ambient track-misregistration
// floor, since the sensor reads the same physical displacement.
const DefaultSensorSigma = 0.012

// Synth renders consecutive telemetry windows. The returned buffer is
// reused between calls.
type Synth struct {
	sampleRate  float64
	window      int
	sensorSigma float64
	seed        int64
	w           int
	buf         []float64
	comps       []sig.AmbientComponent
}

// NewSynth builds a window renderer. sensorSigma may be 0 (an ideal,
// noiseless sensor).
func NewSynth(sampleRateHz float64, windowSamples int, sensorSigma float64, seed int64) *Synth {
	if seed == 0 {
		seed = 1
	}
	return &Synth{
		sampleRate:  sampleRateHz,
		window:      windowSamples,
		sensorSigma: sensorSigma,
		seed:        seed,
		buf:         make([]float64, windowSamples),
		comps:       make([]sig.AmbientComponent, 0, 16),
	}
}

// Windows returns how many windows have been rendered.
func (s *Synth) Windows() int { return s.w }

// Window renders the next telemetry window: the drive's excitation state
// (attack tone + partials + excitation jitter), the ambient scenario, and
// sensor noise. The slice is reused — feed it before the next call.
func (s *Synth) Window(vib hdd.Vibration, amb sig.Ambient) []float64 {
	for i := range s.buf {
		s.buf[i] = 0
	}
	t0 := float64(s.w) * float64(s.window) / s.sampleRate
	dt := 1 / s.sampleRate
	if vib.Amplitude != 0 && vib.Freq > 0 {
		wv := vib.Freq.AngularVelocity()
		for i := range s.buf {
			s.buf[i] += vib.Amplitude * math.Sin(wv*(t0+float64(i)*dt))
		}
	}
	for _, p := range vib.Partials {
		if p.Amplitude == 0 || p.Freq <= 0 {
			continue
		}
		wv := p.Freq.AngularVelocity()
		for i := range s.buf {
			s.buf[i] += p.Amplitude * math.Sin(wv*(t0+float64(i)*dt)+p.Phase)
		}
	}
	amb.RenderInto(s.w, s.sampleRate, s.buf)
	sigma := math.Hypot(s.sensorSigma, vib.ExtraJitter)
	if sigma > 0 {
		rng := rand.New(rand.NewSource(parallel.SeedFor(s.seed, s.w)))
		for i := range s.buf {
			s.buf[i] += sigma * rng.NormFloat64()
		}
	}
	s.w++
	return s.buf
}
