// Package dsp is the spectral estimation toolkit behind the operator-side
// attack fingerprinting: sliding Goertzel banks that watch a fixed set of
// frequencies in the drive-tray vibration telemetry, plus a windowed-DFT
// reference path used as a fallback and as the differential oracle in
// tests. Everything here is deterministic — the same sample stream always
// produces the same frames — and the bank's steady state is allocation
// free, so it can ride inside the simulation hot loop.
//
// The Goertzel recurrence evaluates one DFT bin with two multiplies per
// sample, which is the right trade when the interesting spectrum is a
// handful of known bands (the servo-resonance window of §4.1) rather than
// the full FFT range.
package dsp

import (
	"fmt"
	"math"

	"deepnote/internal/units"
)

// Goertzel evaluates signal power at a single frequency over blocks of
// samples. The frequency does not need to lie on an integer DFT bin.
type Goertzel struct {
	coeff float64 // 2·cos(ω)
	s1    float64
	s2    float64
	n     int
}

// NewGoertzel returns a detector for freq at the given sample rate.
func NewGoertzel(freq units.Frequency, sampleRateHz float64) Goertzel {
	w := freq.AngularVelocity() / sampleRateHz
	return Goertzel{coeff: 2 * math.Cos(w)}
}

// Push feeds one sample into the recurrence.
func (g *Goertzel) Push(x float64) {
	s0 := g.coeff*g.s1 - g.s2 + x
	g.s2 = g.s1
	g.s1 = s0
	g.n++
}

// Power returns |X(f)|² for the samples pushed since the last Reset.
func (g *Goertzel) Power() float64 {
	return g.s1*g.s1 + g.s2*g.s2 - g.coeff*g.s1*g.s2
}

// N returns how many samples the current block holds.
func (g *Goertzel) N() int { return g.n }

// Reset clears the block state.
func (g *Goertzel) Reset() { g.s1, g.s2, g.n = 0, 0, 0 }

// Frame is one completed analysis window. Power aliases the bank's
// internal storage and is valid until the next frame completes; callers
// that need to keep it must copy.
type Frame struct {
	// Index is the 0-based window index since the bank was created.
	Index int
	// Power holds per-bin |X(f)|² of the Hann-windowed block, in the
	// order of the bank's frequency list.
	Power []float64
	// TotalMS is the mean square of the raw (unwindowed) block — the
	// total signal power the tonal bins are judged against.
	TotalMS float64
}

// Bank runs a set of Goertzel bins over a common Hann-windowed block. It
// is the streaming front half of the attack fingerprinter: Push samples
// in, get a Frame back every windowLen samples. After construction the
// bank never allocates.
type Bank struct {
	sampleRate float64
	freqs      []units.Frequency
	coeff      []float64
	hann       []float64
	s1, s2     []float64
	sumSq      float64
	n          int
	frames     int
	power      []float64 // reused Frame.Power storage
}

// NewBank builds a bank of Goertzel bins at the given frequencies, all
// sharing one Hann window of windowLen samples.
func NewBank(sampleRateHz float64, windowLen int, freqs []units.Frequency) (*Bank, error) {
	if sampleRateHz <= 0 {
		return nil, fmt.Errorf("dsp: sample rate %v must be > 0", sampleRateHz)
	}
	if windowLen < 16 {
		return nil, fmt.Errorf("dsp: window of %d samples is too short (min 16)", windowLen)
	}
	if len(freqs) == 0 {
		return nil, fmt.Errorf("dsp: bank needs at least one frequency")
	}
	b := &Bank{
		sampleRate: sampleRateHz,
		freqs:      append([]units.Frequency(nil), freqs...),
		coeff:      make([]float64, len(freqs)),
		hann:       make([]float64, windowLen),
		s1:         make([]float64, len(freqs)),
		s2:         make([]float64, len(freqs)),
		power:      make([]float64, len(freqs)),
	}
	for i, f := range freqs {
		if f <= 0 || f.Hertz() >= sampleRateHz/2 {
			return nil, fmt.Errorf("dsp: frequency %v outside (0, Nyquist %v Hz)", f, sampleRateHz/2)
		}
		b.coeff[i] = 2 * math.Cos(f.AngularVelocity()/sampleRateHz)
	}
	for i := range b.hann {
		b.hann[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(windowLen)))
	}
	return b, nil
}

// Freqs returns the bank's bin frequencies (shared storage; do not mutate).
func (b *Bank) Freqs() []units.Frequency { return b.freqs }

// WindowLen returns the analysis window length in samples.
func (b *Bank) WindowLen() int { return len(b.hann) }

// SampleRate returns the bank's sample rate in Hz.
func (b *Bank) SampleRate() float64 { return b.sampleRate }

// Push feeds one sample. When the sample completes a window, the frame
// for that window is returned with ok = true.
func (b *Bank) Push(x float64) (Frame, bool) {
	b.sumSq += x * x
	xw := x * b.hann[b.n]
	for i := range b.coeff {
		s0 := b.coeff[i]*b.s1[i] - b.s2[i] + xw
		b.s2[i] = b.s1[i]
		b.s1[i] = s0
	}
	b.n++
	if b.n < len(b.hann) {
		return Frame{}, false
	}
	for i := range b.coeff {
		b.power[i] = b.s1[i]*b.s1[i] + b.s2[i]*b.s2[i] - b.coeff[i]*b.s1[i]*b.s2[i]
		b.s1[i], b.s2[i] = 0, 0
	}
	f := Frame{
		Index:   b.frames,
		Power:   b.power,
		TotalMS: b.sumSq / float64(len(b.hann)),
	}
	b.frames++
	b.n = 0
	b.sumSq = 0
	return f, true
}

// Frames returns how many windows have completed.
func (b *Bank) Frames() int { return b.frames }

// Reset discards the partial block in progress (completed-frame count is
// retained so Frame indices stay monotonic).
func (b *Bank) Reset() {
	for i := range b.s1 {
		b.s1[i], b.s2[i] = 0, 0
	}
	b.n = 0
	b.sumSq = 0
}

// Amp converts a bin power from a Hann-windowed block of n samples into
// the amplitude estimate of a sinusoid at that bin's frequency (the Hann
// coherent gain is 1/2, so a tone of amplitude A yields |X| = A·n/4).
func Amp(power float64, n int) float64 {
	if power <= 0 {
		return 0
	}
	return 4 * math.Sqrt(power) / float64(n)
}

// DFTAt computes Hann-windowed DFT power at arbitrary frequencies — the
// reference implementation the Goertzel bank is differentially tested
// against, and the fallback for one-shot analysis of a captured buffer.
// out is reused when it has capacity.
func DFTAt(samples []float64, sampleRateHz float64, freqs []units.Frequency, out []float64) []float64 {
	if cap(out) >= len(freqs) {
		out = out[:len(freqs)]
	} else {
		out = make([]float64, len(freqs))
	}
	n := len(samples)
	for k, f := range freqs {
		w := f.AngularVelocity() / sampleRateHz
		var re, im float64
		for i, x := range samples {
			h := 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n)))
			xw := x * h
			re += xw * math.Cos(w*float64(i))
			im -= xw * math.Sin(w*float64(i))
		}
		out[k] = re*re + im*im
	}
	return out
}

// PeakSearch scans [lo, hi] in steps of step and returns the frequency
// with the highest Hann-windowed DFT power, plus the amplitude estimate
// at that frequency.
func PeakSearch(samples []float64, sampleRateHz float64, lo, hi, step units.Frequency) (units.Frequency, float64) {
	if step <= 0 || hi < lo || len(samples) == 0 {
		return 0, 0
	}
	var (
		bestF units.Frequency
		bestP float64
	)
	buf := make([]float64, 1)
	one := make([]units.Frequency, 1)
	for f := lo; f <= hi; f += step {
		one[0] = f
		buf = DFTAt(samples, sampleRateHz, one, buf)
		if buf[0] > bestP {
			bestP, bestF = buf[0], f
		}
	}
	return bestF, Amp(bestP, len(samples))
}
