package dsp

import (
	"math"
	"math/rand"
	"testing"

	"deepnote/internal/units"
)

const rate = 4096.0

func bankFreqs() []units.Frequency {
	var fs []units.Frequency
	for f := 30 * units.Hz; f <= 1400*units.Hz; f += 10 * units.Hz {
		fs = append(fs, f)
	}
	return fs
}

// The streaming Goertzel bank must agree with the direct windowed DFT on
// arbitrary signals — same window, same bins, same powers.
func TestBankMatchesDFT(t *testing.T) {
	freqs := bankFreqs()
	b, err := NewBank(rate, 512, freqs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	samples := make([]float64, 512)
	for i := range samples {
		samples[i] = rng.NormFloat64() + 0.1*math.Sin(2*math.Pi*650*float64(i)/rate)
	}
	var frame Frame
	ok := false
	for _, x := range samples {
		frame, ok = b.Push(x)
	}
	if !ok {
		t.Fatal("window did not complete")
	}
	ref := DFTAt(samples, rate, freqs, nil)
	for i := range freqs {
		if diff := math.Abs(frame.Power[i] - ref[i]); diff > 1e-6*(1+ref[i]) {
			t.Fatalf("bin %v: goertzel %.9g vs dft %.9g", freqs[i], frame.Power[i], ref[i])
		}
	}
}

// A pure tone on a bin frequency must read back with its amplitude, and a
// tone halfway between bins must lose no more than the Hann scallop.
func TestBankToneAmplitude(t *testing.T) {
	freqs := bankFreqs()
	b, err := NewBank(rate, 512, freqs)
	if err != nil {
		t.Fatal(err)
	}
	const amp = 0.05
	feed := func(f units.Frequency) Frame {
		b.Reset()
		var frame Frame
		for i := 0; i < 512; i++ {
			frame, _ = b.Push(amp * math.Sin(f.AngularVelocity()*float64(i)/rate))
		}
		return frame
	}
	onBin := feed(650 * units.Hz)
	peak, bestAmp := 0, 0.0
	for i, p := range onBin.Power {
		if a := Amp(p, 512); a > bestAmp {
			bestAmp, peak = a, i
		}
	}
	if freqs[peak] != 650*units.Hz {
		t.Fatalf("peak at %v, want 650 Hz", freqs[peak])
	}
	if bestAmp < 0.95*amp || bestAmp > 1.05*amp {
		t.Fatalf("on-bin amplitude estimate %.4f, want ≈ %.4f", bestAmp, amp)
	}
	offBin := feed(655 * units.Hz) // worst case for the 10 Hz grid
	bestAmp = 0
	for _, p := range offBin.Power {
		if a := Amp(p, 512); a > bestAmp {
			bestAmp = a
		}
	}
	// Worst-case Hann scallop for a 10 Hz grid over 8 Hz bins is ≈ −2.3 dB.
	if bestAmp < 0.75*amp {
		t.Fatalf("off-bin scallop loss too high: estimate %.4f of %.4f", bestAmp, amp)
	}
	if onBin.TotalMS < 0.9*amp*amp/2 || onBin.TotalMS > 1.1*amp*amp/2 {
		t.Fatalf("TotalMS = %g, want ≈ %g", onBin.TotalMS, amp*amp/2)
	}
}

// The bank's steady state must not allocate: it runs inside the serving
// simulation's telemetry loop.
func TestBankSteadyStateAllocFree(t *testing.T) {
	b, err := NewBank(rate, 256, bankFreqs())
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		for j := 0; j < 256; j++ {
			i++
			b.Push(math.Sin(0.3 * float64(i)))
		}
	})
	if allocs != 0 {
		t.Fatalf("bank steady state allocates %.1f/window, want 0", allocs)
	}
}

func TestBankRejectsBadConfig(t *testing.T) {
	cases := []struct {
		rate   float64
		window int
		freqs  []units.Frequency
	}{
		{0, 512, []units.Frequency{650}},
		{rate, 8, []units.Frequency{650}},
		{rate, 512, nil},
		{rate, 512, []units.Frequency{0}},
		{rate, 512, []units.Frequency{3000}}, // ≥ Nyquist
	}
	for i, c := range cases {
		if _, err := NewBank(c.rate, c.window, c.freqs); err == nil {
			t.Fatalf("case %d: bad config accepted", i)
		}
	}
}

func TestPeakSearchFindsTone(t *testing.T) {
	samples := make([]float64, 1024)
	for i := range samples {
		samples[i] = 0.2 * math.Sin(2*math.Pi*647*float64(i)/rate)
	}
	f, amp := PeakSearch(samples, rate, 300*units.Hz, 1400*units.Hz, 2*units.Hz)
	if math.Abs(f.Hertz()-647) > 2 {
		t.Fatalf("peak at %v, want ≈ 647 Hz", f)
	}
	if amp < 0.18 || amp > 0.22 {
		t.Fatalf("peak amplitude %.3f, want ≈ 0.2", amp)
	}
}

// Goertzel single-bin detector agrees with its own bank on a block.
func TestGoertzelSingleBin(t *testing.T) {
	g := NewGoertzel(650*units.Hz, rate)
	var sum float64
	for i := 0; i < 512; i++ {
		x := 0.1 * math.Sin(2*math.Pi*650*float64(i)/rate)
		g.Push(x)
		sum += x * x
	}
	if g.N() != 512 {
		t.Fatalf("N = %d", g.N())
	}
	// Rectangular window: |X| = A·N/2.
	if a := 2 * math.Sqrt(g.Power()) / 512; a < 0.095 || a > 0.105 {
		t.Fatalf("amplitude %.4f, want ≈ 0.1", a)
	}
	g.Reset()
	if g.Power() != 0 || g.N() != 0 {
		t.Fatal("reset did not clear state")
	}
}
