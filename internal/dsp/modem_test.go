package dsp

import (
	"math"
	"testing"

	"deepnote/internal/units"
)

// The covert-channel receiver (internal/exfil) scores each symbol with a
// rectangular-window Goertzel evaluated exactly at the modem tones — 780
// and 1140 Hz at 4096 Hz — over one symbol of samples: 256, 128, or 64 at
// the supported 16/32/64 baud rates. None of those windows holds an
// integer number of tone cycles, so these tests pin the two properties
// the demodulator's SNR and FER accounting silently lean on: on-tone
// scallop loss stays negligible because the bin sits exactly on the tone,
// and the other tone's leakage into the bin stays far below the decision
// margins.

// modemSymbolLens maps the supported baud rates (64, 32, 16) to their
// symbol windows at the modem's 4096 Hz telemetry rate, shortest first.
var modemSymbolLens = []int{64, 128, 256}

var modemTones = []units.Frequency{780 * units.Hz, 1140 * units.Hz}

const modemRate = 4096.0

// goertzelAmp runs one symbol's samples through a fresh Goertzel at freq
// and converts block power to the rectangular-window amplitude estimate
// (a tone of amplitude A on its own bin yields |X| = A·n/2).
func goertzelAmp(samples []float64, freq units.Frequency) float64 {
	g := NewGoertzel(freq, modemRate)
	for _, x := range samples {
		g.Push(x)
	}
	return 2 * math.Sqrt(g.Power()) / float64(len(samples))
}

func toneSamples(freq units.Frequency, phase float64, n int) []float64 {
	w := freq.AngularVelocity() / modemRate
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(w*float64(i) + phase)
	}
	return out
}

// TestGoertzelModemScallopLoss pins why the receiver can put bins exactly
// on the tones instead of snapping to integer DFT bins: evaluated at the
// tone frequency, the amplitude estimate stays within ±0.25 dB of truth
// over every symbol phase, even though the symbol windows hold fractional
// cycle counts (e.g. 24.375 cycles of 780 Hz in 128 samples). A tone
// detuned by half a bin from the evaluation frequency shows the classic
// ~3.9 dB rectangular-window scallop loss — the error the exact-bin
// placement avoids.
func TestGoertzelModemScallopLoss(t *testing.T) {
	const phases = 64
	for _, n := range modemSymbolLens {
		for _, tone := range modemTones {
			minAmp, maxAmp := math.Inf(1), math.Inf(-1)
			for k := 0; k < phases; k++ {
				amp := goertzelAmp(toneSamples(tone, 2*math.Pi*float64(k)/phases, n), tone)
				minAmp = math.Min(minAmp, amp)
				maxAmp = math.Max(maxAmp, amp)
			}
			if lo := 20 * math.Log10(minAmp); lo < -0.25 {
				t.Errorf("n=%d %v: worst on-tone amplitude %.3f dB, want ≥ -0.25 dB", n, tone, lo)
			}
			if hi := 20 * math.Log10(maxAmp); hi > 0.25 {
				t.Errorf("n=%d %v: best on-tone amplitude %+.3f dB, want ≤ +0.25 dB", n, tone, hi)
			}

			// Half a bin off (fs/2n), the scallop loss appears in full.
			detuned := tone + units.Frequency(modemRate/(2*float64(n)))
			worst := math.Inf(1)
			for k := 0; k < phases; k++ {
				amp := goertzelAmp(toneSamples(detuned, 2*math.Pi*float64(k)/phases, n), tone)
				worst = math.Min(worst, amp)
			}
			loss := -20 * math.Log10(worst)
			if loss < 3.5 || loss > 4.5 {
				t.Errorf("n=%d %v: half-bin scallop loss %.2f dB, want the classic ~3.9 dB (3.5–4.5)", n, tone, loss)
			}
		}
	}
}

// TestGoertzelModemAdjacentBinLeakage bounds how much of one tone's power
// bleeds into the other tone's bin — the floor under the FSK comparison
// and the OOK noise-reference bin. The 360 Hz tone spacing was chosen so
// even the shortest symbol (64 samples at 64 baud) keeps the leak 24 dB
// down, and longer symbols only improve it.
func TestGoertzelModemAdjacentBinLeakage(t *testing.T) {
	const phases = 64
	// Worst tolerated leak per symbol window, in dB below on-bin power.
	floor := map[int]float64{256: 35, 128: 30, 64: 24}
	prevWorst := 0.0
	for _, n := range modemSymbolLens {
		worst := 0.0
		for _, tx := range modemTones {
			rx := modemTones[0]
			if rx == tx {
				rx = modemTones[1]
			}
			onBin := float64(n) * float64(n) / 4
			for k := 0; k < phases; k++ {
				g := NewGoertzel(rx, modemRate)
				for _, x := range toneSamples(tx, 2*math.Pi*float64(k)/phases, n) {
					g.Push(x)
				}
				worst = math.Max(worst, g.Power()/onBin)
			}
		}
		leakDB := -10 * math.Log10(worst)
		if leakDB < floor[n] {
			t.Errorf("n=%d: worst cross-tone leakage %.1f dB below carrier, want ≥ %.0f dB", n, leakDB, floor[n])
		}
		if prevWorst > 0 && worst >= prevWorst {
			t.Errorf("n=%d: leakage %.2e did not improve on the shorter window's %.2e", n, worst, prevWorst)
		}
		prevWorst = worst
	}
}
