package enclosure

import (
	"fmt"
	"math"

	"deepnote/internal/units"
	"deepnote/internal/vibration"
)

// Container is a submerged enclosure whose walls transmit external acoustic
// pressure to the interior structure (and the nitrogen-filled air space) as
// mechanical vibration.
type Container struct {
	// Name identifies the container build.
	Name string
	// Wall is the wall material.
	Wall Material
	// PanelFundamental is the first flexural mode of the loaded wall
	// panel. Below it the wall is stiffness-controlled and transmits
	// poorly; near it and its overtones transmission is resonant.
	PanelFundamental units.Frequency
	// Modes are the structural resonances that amplify transmission into
	// the interior (panel overtones, frame modes).
	Modes vibration.Stack
	// MassLawCorner is the frequency above which mass-law attenuation
	// takes hold; heavier walls have lower corners and steeper effective
	// loss in-band.
	MassLawCorner units.Frequency
	// CouplingGain is a dimensionless scale for how efficiently incident
	// pressure becomes interior structural excitation.
	CouplingGain float64
}

// PlasticContainer models the paper's hard plastic enclosure. Its light,
// compliant walls pass a broad band: resonances near 450 Hz and 1.1 kHz and
// a high mass-law corner keep transmission strong out to ≈1.7 kHz.
func PlasticContainer() Container {
	return Container{
		Name:             "hard plastic container",
		Wall:             HDPE(),
		PanelFundamental: 320 * units.Hz,
		Modes: vibration.Stack{
			{F0: 450 * units.Hz, Q: 2.8, Gain: 1.0},
			{F0: 1100 * units.Hz, Q: 2.2, Gain: 0.9},
		},
		MassLawCorner: 1250 * units.Hz,
		CouplingGain:  1.0,
	}
}

// AluminumContainer models the paper's aluminum enclosure. The heavier,
// stiffer wall attenuates more overall and rolls off sooner (band collapses
// by ≈1.3 kHz for writes), but its low damping produces sharper resonant
// transmission inside the band.
func AluminumContainer() Container {
	return Container{
		Name:             "aluminum container",
		Wall:             Aluminum6061(),
		PanelFundamental: 340 * units.Hz,
		Modes: vibration.Stack{
			{F0: 430 * units.Hz, Q: 4.5, Gain: 0.75},
			{F0: 820 * units.Hz, Q: 3.5, Gain: 0.55},
		},
		MassLawCorner: 500 * units.Hz,
		CouplingGain:  0.85,
	}
}

// NatickVessel models a production-grade steel pressure vessel (the §5
// "Data Center Structure" discussion): the heavy wall buys roughly an
// order of magnitude more attenuation than the test containers and pushes
// the panel fundamental down (large cylinder shell modes) while the
// mass-law corner drops far below the vulnerable band.
func NatickVessel() Container {
	return Container{
		Name:             "steel pressure vessel (Natick-class)",
		Wall:             PressureVesselSteel(),
		PanelFundamental: 180 * units.Hz,
		Modes: vibration.Stack{
			{F0: 240 * units.Hz, Q: 6, Gain: 0.35},
			{F0: 510 * units.Hz, Q: 4, Gain: 0.2},
		},
		MassLawCorner: 200 * units.Hz,
		CouplingGain:  0.3,
	}
}

// Validate reports whether the container is consistent.
func (c Container) Validate() error {
	if err := c.Wall.Validate(); err != nil {
		return err
	}
	if c.PanelFundamental <= 0 {
		return fmt.Errorf("enclosure: container %q panel fundamental must be positive", c.Name)
	}
	if c.MassLawCorner <= 0 {
		return fmt.Errorf("enclosure: container %q mass-law corner must be positive", c.Name)
	}
	if c.CouplingGain <= 0 {
		return fmt.Errorf("enclosure: container %q coupling gain must be positive", c.Name)
	}
	return c.Modes.Validate()
}

// TransmissionGain returns the dimensionless linear gain from incident
// external pressure to interior structural excitation at frequency f.
func (c Container) TransmissionGain(f units.Frequency) float64 {
	if f <= 0 {
		return 0
	}
	// Stiffness-controlled region: rises 12 dB/octave up to the panel
	// fundamental, unity above.
	stiff := 1.0
	if f < c.PanelFundamental {
		r := float64(f) / float64(c.PanelFundamental)
		stiff = r * r
	}
	// Mass law: -6 dB/octave above the corner.
	mass := 1.0
	if f > c.MassLawCorner {
		mass = float64(c.MassLawCorner) / float64(f)
	}
	// Resonant transmission: base path plus modal peaks (power sum so the
	// floor stays at ~1 between modes).
	modal := math.Sqrt(1 + sq(c.Modes.Response(f)))
	return c.CouplingGain * stiff * mass * modal
}

func sq(x float64) float64 { return x * x }

// TransmissionLossDB returns the container's transmission expressed as a
// loss in dB (positive = attenuation), convenient for reporting.
func (c Container) TransmissionLossDB(f units.Frequency) units.Decibel {
	g := c.TransmissionGain(f)
	if g <= 0 {
		return units.Decibel(math.Inf(1))
	}
	return units.Decibel(-20 * math.Log10(g))
}
