package enclosure

import (
	"math"
	"testing"
	"testing/quick"

	"deepnote/internal/units"
)

func TestMaterialPresets(t *testing.T) {
	for _, m := range []Material{HDPE(), Aluminum6061()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	if Aluminum6061().SurfaceDensity() <= HDPE().SurfaceDensity() {
		t.Fatal("aluminum wall should be heavier per unit area than HDPE")
	}
}

func TestMaterialValidate(t *testing.T) {
	bad := []Material{
		{Name: "x", DensityKgM3: 0, ThicknessM: 1, YoungModulusGPa: 1, LossFactor: 0.1},
		{Name: "x", DensityKgM3: 1, ThicknessM: 0, YoungModulusGPa: 1, LossFactor: 0.1},
		{Name: "x", DensityKgM3: 1, ThicknessM: 1, YoungModulusGPa: 0, LossFactor: 0.1},
		{Name: "x", DensityKgM3: 1, ThicknessM: 1, YoungModulusGPa: 1, LossFactor: 0},
		{Name: "x", DensityKgM3: 1, ThicknessM: 1, YoungModulusGPa: 1, LossFactor: 2},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestContainerPresetsValid(t *testing.T) {
	for _, c := range []Container{PlasticContainer(), AluminumContainer()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestContainerValidateRejectsBadFields(t *testing.T) {
	c := PlasticContainer()
	c.PanelFundamental = 0
	if err := c.Validate(); err == nil {
		t.Error("expected error for zero panel fundamental")
	}
	c = PlasticContainer()
	c.MassLawCorner = 0
	if err := c.Validate(); err == nil {
		t.Error("expected error for zero mass-law corner")
	}
	c = PlasticContainer()
	c.CouplingGain = 0
	if err := c.Validate(); err == nil {
		t.Error("expected error for zero coupling gain")
	}
}

func TestTransmissionGainZeroAtZeroFrequency(t *testing.T) {
	if got := PlasticContainer().TransmissionGain(0); got != 0 {
		t.Fatalf("gain at 0 Hz = %v, want 0", got)
	}
}

func TestStiffnessRegionAttenuatesLowFrequency(t *testing.T) {
	c := PlasticContainer()
	// 12 dB/octave below the panel fundamental: an octave below should be
	// well under half the gain near the fundamental.
	low := c.TransmissionGain(c.PanelFundamental / 2)
	at := c.TransmissionGain(c.PanelFundamental)
	if low >= at/2 {
		t.Fatalf("stiffness region not attenuating: gain(%v)=%v vs gain(%v)=%v",
			c.PanelFundamental/2, low, c.PanelFundamental, at)
	}
}

func TestMassLawAttenuatesHighFrequency(t *testing.T) {
	for _, c := range []Container{PlasticContainer(), AluminumContainer()} {
		g2k := c.TransmissionGain(2 * c.MassLawCorner)
		g8k := c.TransmissionGain(8 * c.MassLawCorner)
		if g8k >= g2k {
			t.Errorf("%s: mass law not attenuating: gain falls %v → %v", c.Name, g2k, g8k)
		}
	}
}

func TestAluminumRollsOffSoonerThanPlastic(t *testing.T) {
	// The paper's §4.1: the metal container's vulnerable band tops out at
	// 1.3 kHz vs 1.7 kHz for plastic. At 1.6 kHz the plastic container must
	// transmit relatively more than the aluminum one, normalized to their
	// mid-band transmission.
	p, a := PlasticContainer(), AluminumContainer()
	ratioP := p.TransmissionGain(1600) / p.TransmissionGain(650)
	ratioA := a.TransmissionGain(1600) / a.TransmissionGain(650)
	if ratioP <= ratioA {
		t.Fatalf("plastic 1.6k/650 ratio %v should exceed aluminum %v", ratioP, ratioA)
	}
}

func TestTransmissionPeaksInsideVulnerableBand(t *testing.T) {
	for _, c := range []Container{PlasticContainer(), AluminumContainer()} {
		best, bestG := units.Frequency(0), 0.0
		for f := units.Frequency(100); f <= 16900; f += 10 {
			if g := c.TransmissionGain(f); g > bestG {
				bestG, best = g, f
			}
		}
		if best < 300 || best > 1300 {
			t.Errorf("%s: peak transmission at %v, want inside [300, 1300] Hz", c.Name, best)
		}
	}
}

func TestTransmissionLossDB(t *testing.T) {
	c := PlasticContainer()
	g := c.TransmissionGain(650)
	tl := float64(c.TransmissionLossDB(650))
	if math.Abs(tl-(-20*math.Log10(g))) > 1e-9 {
		t.Fatalf("TL = %v, want %v", tl, -20*math.Log10(g))
	}
	if got := float64(c.TransmissionLossDB(0)); !math.IsInf(got, 1) {
		t.Fatalf("TL at 0 Hz = %v, want +Inf", got)
	}
}

func TestTowerPresetValid(t *testing.T) {
	tw := SupermicroCSEM35TQB()
	if err := tw.Validate(); err != nil {
		t.Fatal(err)
	}
	if tw.Slots != 5 {
		t.Fatalf("slots = %d, want 5", tw.Slots)
	}
}

func TestTowerValidateRejectsBad(t *testing.T) {
	tw := SupermicroCSEM35TQB()
	tw.Slots = 0
	if err := tw.Validate(); err == nil {
		t.Error("expected error for zero slots")
	}
	tw = SupermicroCSEM35TQB()
	tw.BaseGain = 0
	if err := tw.Validate(); err == nil {
		t.Error("expected error for zero base gain")
	}
	tw = SupermicroCSEM35TQB()
	tw.SlotGradient = -1
	if err := tw.Validate(); err == nil {
		t.Error("expected error for negative gradient")
	}
}

func TestSlotGainMonotoneAndClamped(t *testing.T) {
	tw := SupermicroCSEM35TQB()
	prev := 0.0
	for s := 0; s < tw.Slots; s++ {
		g := tw.SlotGain(s)
		if g <= prev {
			t.Fatalf("slot gain not increasing at slot %d", s)
		}
		prev = g
	}
	if tw.SlotGain(-3) != tw.SlotGain(0) {
		t.Fatal("negative slot should clamp to 0")
	}
	if tw.SlotGain(99) != tw.SlotGain(tw.Slots-1) {
		t.Fatal("overflow slot should clamp to top")
	}
}

func TestTowerCouplingNeverBelowBase(t *testing.T) {
	tw := SupermicroCSEM35TQB()
	prop := func(fRaw uint16, slotRaw uint8) bool {
		f := units.Frequency(fRaw%17000) + 1
		slot := int(slotRaw % 5)
		return tw.CouplingGain(f, slot) >= tw.SlotGain(slot)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMounts(t *testing.T) {
	fm := FloorMount()
	if err := fm.Validate(); err != nil {
		t.Fatal(err)
	}
	if fm.Gain(650) != 1.1 {
		t.Fatalf("floor gain = %v, want 1.1", fm.Gain(650))
	}
	zero := Mount{}
	if zero.Gain(650) != 1 {
		t.Fatalf("zero-value mount gain = %v, want 1", zero.Gain(650))
	}
	tm := TowerMount(SupermicroCSEM35TQB(), 1)
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	if tm.Gain(650) <= 0 {
		t.Fatal("tower mount gain must be positive")
	}
	badSlot := TowerMount(SupermicroCSEM35TQB(), 7)
	if err := badSlot.Validate(); err == nil {
		t.Fatal("expected error for out-of-range slot")
	}
	badFloor := Mount{FloorGain: -1}
	if err := badFloor.Validate(); err == nil {
		t.Fatal("expected error for negative floor gain")
	}
}

func TestAssemblyGainComposes(t *testing.T) {
	a := Assembly{Container: PlasticContainer(), Mount: TowerMount(SupermicroCSEM35TQB(), 1)}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	g := a.StructuralGain(650)
	want := a.Container.TransmissionGain(650) * a.Mount.Gain(650)
	if math.Abs(g-want) > 1e-12 {
		t.Fatalf("assembly gain = %v, want %v", g, want)
	}
}

func TestAssemblyValidatePropagates(t *testing.T) {
	a := Assembly{Container: PlasticContainer(), Mount: Mount{FloorGain: -1}}
	if err := a.Validate(); err == nil {
		t.Fatal("expected mount validation error")
	}
	a = Assembly{Container: Container{}, Mount: FloorMount()}
	if err := a.Validate(); err == nil {
		t.Fatal("expected container validation error")
	}
}
