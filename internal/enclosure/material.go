// Package enclosure models the structures between the water and the victim
// drive: the submerged container (hard plastic or aluminum, per the paper's
// Scenarios 1–3), and the Supermicro-style 5-in-3 storage tower that holds
// the drive in Scenarios 2 and 3.
//
// The model is deliberately simple but captures the two effects the paper's
// §4.1 highlights as decisive: (1) container material changes the vulnerable
// band (plastic vs. aluminum), and (2) structural resonances amplify
// vibration at specific frequencies. Transmission through a wall follows a
// stiffness-controlled region below the first panel mode, resonant
// amplification near modal frequencies, and mass-law attenuation
// (−6 dB/octave growing with surface density) above.
package enclosure

import (
	"fmt"
)

// Material describes a container wall material.
type Material struct {
	// Name identifies the material.
	Name string
	// DensityKgM3 is the bulk density in kg/m³.
	DensityKgM3 float64
	// ThicknessM is the wall thickness in meters.
	ThicknessM float64
	// YoungModulusGPa is the stiffness in GPa; stiffer walls push panel
	// modes up in frequency.
	YoungModulusGPa float64
	// LossFactor is the structural damping loss factor η; higher damping
	// flattens resonant peaks.
	LossFactor float64
}

// HDPE returns a hard-plastic (high-density polyethylene) container wall,
// matching the paper's plastic enclosure.
func HDPE() Material {
	return Material{
		Name:            "HDPE plastic",
		DensityKgM3:     960,
		ThicknessM:      0.004,
		YoungModulusGPa: 1.0,
		LossFactor:      0.06,
	}
}

// Aluminum6061 returns an aluminum container wall, matching the paper's
// metal enclosure.
func Aluminum6061() Material {
	return Material{
		Name:            "Aluminum 6061",
		DensityKgM3:     2700,
		ThicknessM:      0.003,
		YoungModulusGPa: 69,
		LossFactor:      0.01,
	}
}

// PressureVesselSteel returns the thick steel wall of a production
// underwater data center vessel (Project Natick's cylinder), the §5
// "Data Center Structure" case: far heavier than either test container.
func PressureVesselSteel() Material {
	return Material{
		Name:            "pressure-vessel steel",
		DensityKgM3:     7850,
		ThicknessM:      0.025,
		YoungModulusGPa: 200,
		LossFactor:      0.008,
	}
}

// SurfaceDensity returns the wall's mass per unit area (kg/m²), the quantity
// that controls mass-law transmission loss.
func (m Material) SurfaceDensity() float64 { return m.DensityKgM3 * m.ThicknessM }

// Validate reports whether the material parameters are physical.
func (m Material) Validate() error {
	if m.DensityKgM3 <= 0 {
		return fmt.Errorf("enclosure: material %q density must be positive", m.Name)
	}
	if m.ThicknessM <= 0 {
		return fmt.Errorf("enclosure: material %q thickness must be positive", m.Name)
	}
	if m.YoungModulusGPa <= 0 {
		return fmt.Errorf("enclosure: material %q stiffness must be positive", m.Name)
	}
	if m.LossFactor <= 0 || m.LossFactor > 1 {
		return fmt.Errorf("enclosure: material %q loss factor must be in (0, 1]", m.Name)
	}
	return nil
}
