package enclosure

import (
	"fmt"
	"math"

	"deepnote/internal/units"
	"deepnote/internal/vibration"
)

// StorageTower models a 5-in-3 hot-swap drive cage (the paper uses a
// Supermicro CSE-M35TQB) standing inside the container. The tower's sheet-
// metal frame adds its own resonances and couples the container's wall
// vibration into the mounted drives; which slot the drive occupies modifies
// the coupling slightly (lower slots sit closer to the anchored base).
type StorageTower struct {
	// Name identifies the cage.
	Name string
	// Slots is the number of drive bays.
	Slots int
	// FrameModes are the cage's structural resonances.
	FrameModes vibration.Stack
	// BaseGain is the slot-independent coupling through the cage frame.
	BaseGain float64
	// SlotGradient is the per-slot multiplicative step: slot 0 (bottom)
	// couples at BaseGain, each higher slot multiplies by (1+SlotGradient).
	SlotGradient float64
}

// SupermicroCSEM35TQB returns the paper's storage tower model.
func SupermicroCSEM35TQB() StorageTower {
	return StorageTower{
		Name:  "Supermicro CSE-M35TQB 5-in-3",
		Slots: 5,
		FrameModes: vibration.Stack{
			{F0: 600 * units.Hz, Q: 2.5, Gain: 0.5},
			{F0: 1500 * units.Hz, Q: 2.0, Gain: 0.3},
		},
		BaseGain:     0.95,
		SlotGradient: 0.03,
	}
}

// Validate reports whether the tower parameters are consistent.
func (t StorageTower) Validate() error {
	if t.Slots <= 0 {
		return fmt.Errorf("enclosure: tower %q must have at least one slot", t.Name)
	}
	if t.BaseGain <= 0 {
		return fmt.Errorf("enclosure: tower %q base gain must be positive", t.Name)
	}
	if t.SlotGradient < 0 {
		return fmt.Errorf("enclosure: tower %q slot gradient must be non-negative", t.Name)
	}
	return t.FrameModes.Validate()
}

// SlotGain returns the coupling gain for the given slot (0 = bottom).
// Out-of-range slots are clamped.
func (t StorageTower) SlotGain(slot int) float64 {
	if slot < 0 {
		slot = 0
	}
	if slot >= t.Slots {
		slot = t.Slots - 1
	}
	g := t.BaseGain
	for i := 0; i < slot; i++ {
		g *= 1 + t.SlotGradient
	}
	return g
}

// CouplingGain returns the tower's frequency-dependent coupling for a drive
// in the given slot: frame base path plus modal amplification.
func (t StorageTower) CouplingGain(f units.Frequency, slot int) float64 {
	modal := t.FrameModes.Response(f)
	base := t.SlotGain(slot)
	// Power-sum the direct frame path with the modal path so the coupling
	// never dips below the structural baseline.
	return base * math.Hypot(1, modal)
}

// Mount describes how the drive is fixed inside the container: either
// directly on the container floor (Scenario 1) or in a tower slot
// (Scenarios 2 and 3).
type Mount struct {
	// Tower is nil when the drive sits on the container floor.
	Tower *StorageTower
	// Slot is the tower bay index (0 = bottom); the paper uses the second
	// level from the bottom (slot 1).
	Slot int
	// FloorGain is the direct-coupling gain used when Tower is nil; a
	// drive lying on the container floor picks up wall vibration through
	// its base with a mild low-frequency emphasis.
	FloorGain float64
}

// FloorMount returns the Scenario 1 mount (drive on the container floor).
func FloorMount() Mount { return Mount{FloorGain: 1.1} }

// TowerMount returns a mount in the given slot of the tower.
func TowerMount(t StorageTower, slot int) Mount { return Mount{Tower: &t, Slot: slot} }

// Gain returns the mount's coupling gain at frequency f.
func (m Mount) Gain(f units.Frequency) float64 {
	if m.Tower == nil {
		if m.FloorGain > 0 {
			return m.FloorGain
		}
		return 1
	}
	return m.Tower.CouplingGain(f, m.Slot)
}

// Validate reports whether the mount is consistent.
func (m Mount) Validate() error {
	if m.Tower != nil {
		if err := m.Tower.Validate(); err != nil {
			return err
		}
		if m.Slot < 0 || m.Slot >= m.Tower.Slots {
			return fmt.Errorf("enclosure: slot %d out of range [0, %d)", m.Slot, m.Tower.Slots)
		}
		return nil
	}
	if m.FloorGain < 0 {
		return fmt.Errorf("enclosure: floor gain must be non-negative")
	}
	return nil
}

// Assembly is the full structural path: container plus mount.
type Assembly struct {
	Container Container
	Mount     Mount
}

// StructuralGain returns the end-to-end linear gain from incident external
// pressure to vibration excitation at the drive's mounting points.
func (a Assembly) StructuralGain(f units.Frequency) float64 {
	return a.Container.TransmissionGain(f) * a.Mount.Gain(f)
}

// Validate reports whether the assembly is consistent.
func (a Assembly) Validate() error {
	if err := a.Container.Validate(); err != nil {
		return err
	}
	return a.Mount.Validate()
}
