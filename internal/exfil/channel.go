// The waterborne link: the modulator's radiated tones cross the facility
// water to a hydrophone via the same propagation model the attack and
// sonar layers use (spreading + absorption + optional Lloyd's-mirror
// surface bounce, through sonar.Array.ReceiveLevel), then the receiver
// hears them buried in the sig ambient corpus and the hydrophone's own
// noise floor. All pressures are in µPa; the ambient corpus — defined in
// tray-telemetry units — is re-expressed through the same 90 dB ↔ 0.004
// track-pitch-fraction calibration anchor the telemetry path uses.
package exfil

import (
	"math"
	"math/rand"

	"deepnote/internal/cluster"
	"deepnote/internal/parallel"
	"deepnote/internal/sig"
	"deepnote/internal/sonar"
	"deepnote/internal/units"
)

// paPerFrac converts the ambient corpus's track-pitch-fraction amplitudes
// into µPa of waterborne pressure, inverting the wenz calibration anchor
// (a 90 dB re 1 µPa band level shakes the tray 0.004 fractions).
var paPerFrac = units.WaterSPL(90).Pressure().Pascals() * 1e6 / 0.004

// ambientWindow is the block length the ambient corpus is rendered in —
// the corpus's native 512-sample windows, so burst structure (shrimp
// crackle, hull pops) lands identically in telemetry and waterborne form.
const ambientWindow = 512

// Link is one transmitter → hydrophone hop.
type Link struct {
	// Array is the receiving hydrophone array (typically built from the
	// cluster layout with sonar.FacilityArray or RingArray, so medium and
	// surface depth match the facility). The link listens on the element
	// with the strongest received carrier.
	Array sonar.Array
	// TxPos is the transmitting container's position.
	TxPos cluster.Vec3
	// Ambient is the background soundscape at the hydrophone.
	Ambient sig.Ambient
	// NoiseSPL is the hydrophone's self-noise floor. Zero value = 70 dB
	// re 1 µPa, matching the sonar layer's default.
	NoiseSPL units.SPL
	// Seed isolates this link's noise draws.
	Seed int64
}

// LinkBudget reports the link's resolved signal levels.
type LinkBudget struct {
	// Hydrophone is the array element the receiver listens on.
	Hydrophone int
	// RxSPL[b] is bit b's received carrier level there (zero SPL for a
	// silent OOK zero-symbol).
	RxSPL [2]units.SPL
	// RxAmp[b] is the corresponding peak pressure amplitude in µPa.
	RxAmp [2]float64
	// NoiseSigma is the per-sample hydrophone self-noise 1σ in µPa.
	NoiseSigma float64
	// AmbientSigma is the ambient background's nominal broadband 1σ in
	// µPa at the hydrophone.
	AmbientSigma float64
	// Lead is the noise-only lead-in before the first symbol, in samples.
	Lead int
}

// Render synthesizes the received waveform (µPa) for the bit stream:
// noise-only lead-in, then the modulated carrier at the received level,
// with the ambient corpus and hydrophone self-noise added throughout.
// Deterministic per (link seed, ambient seed).
func (l Link) Render(mod *Modulator, bits []byte) ([]float64, LinkBudget) {
	budget := LinkBudget{Hydrophone: -1}
	// Resolve per-bit received levels and pick the hydrophone that hears
	// the mark carrier best (lowest index wins ties, deterministically).
	var recs [2][]sonar.Reception
	for b := 0; b < 2; b++ {
		src, on := mod.SourceSPL(b)
		if !on {
			continue
		}
		recs[b] = l.Array.ReceiveLevel(l.TxPos, mod.pattern[b].Tone, src, mod.RefDist(), parallel.SeedFor(l.Seed, int(1+b)))
	}
	for i, r := range recs[1] {
		if budget.Hydrophone < 0 || r.SPL.DB > recs[1][budget.Hydrophone].SPL.DB {
			budget.Hydrophone = i
		}
	}
	if budget.Hydrophone < 0 {
		budget.Hydrophone = 0
	}
	for b := 0; b < 2; b++ {
		if recs[b] == nil {
			continue
		}
		spl := recs[b][budget.Hydrophone].SPL
		budget.RxSPL[b] = spl
		budget.RxAmp[b] = math.Sqrt2 * spl.Pressure().Pascals() * 1e6
	}

	noise := l.NoiseSPL
	if noise == (units.SPL{}) {
		noise = units.WaterSPL(70)
	}
	budget.NoiseSigma = noise.Pressure().Pascals() * 1e6
	budget.AmbientSigma = l.Ambient.NominalSigma() * paPerFrac

	L := mod.m.symbolLen
	rng := rand.New(rand.NewSource(parallel.SeedFor(l.Seed, 0)))
	budget.Lead = L/2 + rng.Intn(L)

	// One symbol of tail margin keeps the last frame decodable when
	// acquisition snaps to a grid point just past the true lead-in.
	n := budget.Lead + (len(bits)+1)*L
	padded := (n + ambientWindow - 1) / ambientWindow * ambientWindow
	out := make([]float64, padded)

	// Carrier.
	dt := 1 / mod.m.sampleRate
	for s, bit := range bits {
		b := int(bit & 1)
		amp := budget.RxAmp[b]
		if amp == 0 {
			continue
		}
		wv := mod.pattern[b].Tone.AngularVelocity()
		base := budget.Lead + s*L
		for i := 0; i < L; i++ {
			t := float64(base+i) * dt
			out[base+i] += amp * math.Sin(wv*t)
		}
	}
	// Ambient corpus, window by window so burst structure is preserved.
	for w := 0; w*ambientWindow < padded; w++ {
		l.Ambient.RenderScaledInto(w, mod.m.sampleRate, paPerFrac, out[w*ambientWindow:(w+1)*ambientWindow])
	}
	// Hydrophone self-noise.
	if budget.NoiseSigma > 0 {
		for i := range out {
			out[i] += budget.NoiseSigma * rng.NormFloat64()
		}
	}
	return out, budget
}
