// Package exfil models the attack in reverse: a covert acoustic channel
// that leaks data *out* of the underwater facility. DiskFiltration and
// Fansmitter (PAPERS.md) showed that the same electromechanics an acoustic
// attacker exploits — the head-stack assembly and its mount — also work as
// a transmitter: software with no network access can schedule disk seeks
// in patterns whose repetition rate sets an acoustic tone. Here that tone
// crosses the mount → enclosure → water path the Deep Note attack crosses
// inward, and a hydrophone outside the facility demodulates it.
//
// The stack has three layers:
//
//   - Modulator (modulator.go): a per-symbol seek-pattern dictionary,
//     validated against the hdd seek model's actuator limits, that maps
//     bits to emitted tones and radiated source levels.
//   - Channel (channel.go): propagation over the cluster layout via
//     sonar.Array.ReceiveLevel, plus the sig ambient corpus and hydrophone
//     self-noise rendered as received pressure.
//   - Modem (frame.go, rs.go, receiver.go): preamble + sync framing with
//     CRC-32 and Reed–Solomon FEC over GF(256) (internal/gf, shared with
//     the cluster erasure coder), demodulated with internal/dsp Goertzel
//     bins — OOK and binary-FSK symbol decisions with per-symbol soft SNR.
//
// Everything is deterministic per seed, so capacity maps and the defense
// leg (detect.Fingerprinter classifying the modulated telemetry) replay
// byte-identically at any worker count.
package exfil

import (
	"errors"
	"fmt"

	"deepnote/internal/units"
)

// Ptr returns a pointer to v — shorthand for the optional config fields.
func Ptr[T any](v T) *T { return &v }

// Config errors.
var (
	// ErrConfig reports an out-of-range modem or transmitter parameter.
	ErrConfig = errors.New("exfil: invalid config")
	// ErrPayloadSize reports a payload that does not fit one frame.
	ErrPayloadSize = errors.New("exfil: payload does not fit frame")
	// ErrNoSync means the receiver never found the preamble + sync word.
	ErrNoSync = errors.New("exfil: no frame sync")
	// ErrFrameCorrupt means FEC decoding or the CRC rejected the frame.
	ErrFrameCorrupt = errors.New("exfil: frame corrupt beyond FEC budget")
)

// Scheme selects the modulation.
type Scheme int

const (
	// SchemeFSK keys between Tone0 and Tone1 — the robust default: the
	// receiver compares two bins, so slow gain changes cancel.
	SchemeFSK Scheme = iota
	// SchemeOOK keys Tone1 on and off. Half the average acoustic power of
	// FSK (quieter to the fingerprinter) but needs a power threshold.
	SchemeOOK
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeFSK:
		return "fsk"
	case SchemeOOK:
		return "ook"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// ModemConfig tunes the modem. Pointer fields follow the zero-vs-unset
// convention of the detect and cluster specs: nil = default, explicit
// values are validated and honored (including explicit zero where a zero
// is meaningful).
type ModemConfig struct {
	// Scheme selects OOK or binary FSK (value type: the zero value is the
	// FSK default, and there is no meaningful "unset" distinct from it).
	Scheme Scheme
	// SampleRate is the receiver sample rate in Hz. Nil = 4096 (matching
	// the detect fingerprinter); must be > 0.
	SampleRate *float64
	// SymbolRate is the signaling rate in baud. Nil = 32; must be > 0 and
	// divide SampleRate into an integer symbol window of ≥ 8 samples.
	SymbolRate *float64
	// Tone0 and Tone1 carry bit 0 and bit 1. Nil = 780 Hz and 1140 Hz —
	// reachable seek-rate harmonics that sit inside the servo-vulnerable
	// band, near the HSA resonances, and off the facility pump's 120 Hz
	// comb. Both must be in (0, Nyquist); they must differ by at least one
	// symbol-rate bin so the Goertzel decisions separate.
	Tone0, Tone1 *units.Frequency
	// PreambleBits is the alternating 1010… sync preamble length. Nil =
	// 32; must be ≥ 8 and even.
	PreambleBits *int
	// DataBytes is the RS codeword's data block size (length prefix +
	// payload + CRC-32). Nil = 64; must be ≥ 7.
	DataBytes *int
	// ParityBytes is the RS parity count: the codec corrects up to
	// ParityBytes/2 byte errors per frame. Nil = 16; must be ≥ 2, even,
	// and DataBytes+ParityBytes ≤ 255 (the GF(256) codeword bound).
	ParityBytes *int
}

// modem is the resolved configuration.
type modem struct {
	scheme       Scheme
	sampleRate   float64
	symbolRate   float64
	symbolLen    int // samples per symbol
	tone0, tone1 units.Frequency
	preambleBits int
	dataBytes    int
	parityBytes  int
}

func (c ModemConfig) resolve() (modem, error) {
	m := modem{
		scheme:       c.Scheme,
		sampleRate:   4096,
		symbolRate:   32,
		tone0:        780 * units.Hz,
		tone1:        1140 * units.Hz,
		preambleBits: 32,
		dataBytes:    64,
		parityBytes:  16,
	}
	if c.Scheme != SchemeFSK && c.Scheme != SchemeOOK {
		return m, fmt.Errorf("%w: unknown scheme %d", ErrConfig, int(c.Scheme))
	}
	if c.SampleRate != nil {
		if *c.SampleRate <= 0 {
			return m, fmt.Errorf("%w: SampleRate %g must be > 0", ErrConfig, *c.SampleRate)
		}
		m.sampleRate = *c.SampleRate
	}
	if c.SymbolRate != nil {
		if *c.SymbolRate <= 0 {
			return m, fmt.Errorf("%w: SymbolRate %g must be > 0", ErrConfig, *c.SymbolRate)
		}
		m.symbolRate = *c.SymbolRate
	}
	win := m.sampleRate / m.symbolRate
	m.symbolLen = int(win)
	if float64(m.symbolLen) != win || m.symbolLen < 8 {
		return m, fmt.Errorf("%w: SymbolRate %g must divide SampleRate %g into an integer window of ≥ 8 samples (got %g)",
			ErrConfig, m.symbolRate, m.sampleRate, win)
	}
	if c.Tone0 != nil {
		m.tone0 = *c.Tone0
	}
	if c.Tone1 != nil {
		m.tone1 = *c.Tone1
	}
	nyq := units.Frequency(m.sampleRate / 2)
	if m.tone0 <= 0 || m.tone0 >= nyq {
		return m, fmt.Errorf("%w: Tone0 %v outside (0, Nyquist %v)", ErrConfig, m.tone0, nyq)
	}
	if m.tone1 <= 0 || m.tone1 >= nyq {
		return m, fmt.Errorf("%w: Tone1 %v outside (0, Nyquist %v)", ErrConfig, m.tone1, nyq)
	}
	if sep := (m.tone1 - m.tone0).Hertz(); sep < m.symbolRate && -sep < m.symbolRate {
		return m, fmt.Errorf("%w: tones %v and %v closer than one symbol-rate bin (%g Hz)",
			ErrConfig, m.tone0, m.tone1, m.symbolRate)
	}
	if c.PreambleBits != nil {
		if *c.PreambleBits < 8 || *c.PreambleBits%2 != 0 {
			return m, fmt.Errorf("%w: PreambleBits %d must be even and ≥ 8", ErrConfig, *c.PreambleBits)
		}
		m.preambleBits = *c.PreambleBits
	}
	if c.DataBytes != nil {
		if *c.DataBytes < 7 {
			return m, fmt.Errorf("%w: DataBytes %d must be ≥ 7 (length prefix + 1 payload byte + CRC-32)", ErrConfig, *c.DataBytes)
		}
		m.dataBytes = *c.DataBytes
	}
	if c.ParityBytes != nil {
		if *c.ParityBytes < 2 || *c.ParityBytes%2 != 0 {
			return m, fmt.Errorf("%w: ParityBytes %d must be even and ≥ 2", ErrConfig, *c.ParityBytes)
		}
		m.parityBytes = *c.ParityBytes
	}
	if n := m.dataBytes + m.parityBytes; n > 255 {
		return m, fmt.Errorf("%w: codeword %d bytes exceeds the GF(256) bound of 255", ErrConfig, n)
	}
	return m, nil
}

// MaxPayload returns the largest payload one frame carries: DataBytes
// minus the 2-byte length prefix and 4-byte CRC-32.
func (m modem) MaxPayload() int { return m.dataBytes - 6 }

// frameBits returns the total symbol count of one frame on the wire.
func (m modem) frameBits() int {
	return m.preambleBits + syncBits + 8*(m.dataBytes+m.parityBytes)
}

// FrameAirtime returns one frame's transmission time in seconds.
func (m modem) FrameAirtime() float64 { return float64(m.frameBits()) / m.symbolRate }

// Modem is the validated public handle on a resolved modem configuration
// — the experiment layer's view of frame geometry and encoding.
type Modem struct {
	m modem
}

// NewModem resolves the config, rejecting out-of-range values.
func NewModem(cfg ModemConfig) (*Modem, error) {
	m, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	return &Modem{m: m}, nil
}

// MaxPayload returns the largest payload one frame carries.
func (md *Modem) MaxPayload() int { return md.m.MaxPayload() }

// FrameBits returns the symbols per frame on the wire.
func (md *Modem) FrameBits() int { return md.m.frameBits() }

// FrameAirtime returns one frame's transmission time in seconds.
func (md *Modem) FrameAirtime() float64 { return md.m.FrameAirtime() }

// SymbolRate returns the signaling rate in baud.
func (md *Modem) SymbolRate() float64 { return md.m.symbolRate }

// SampleRate returns the receiver sample rate in Hz.
func (md *Modem) SampleRate() float64 { return md.m.sampleRate }

// EncodeFrame builds one frame's symbol stream (one bit per byte).
func (md *Modem) EncodeFrame(payload []byte) ([]byte, error) {
	return md.m.encodeFrame(payload)
}
