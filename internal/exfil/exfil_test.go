package exfil

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"deepnote/internal/cluster"
	"deepnote/internal/sig"
	"deepnote/internal/sonar"
	"deepnote/internal/units"
)

// Satellite: the zero-vs-unset pointer-field convention on every new
// config struct — nil defaults, explicit out-of-range values rejected.
func TestModemConfigRejection(t *testing.T) {
	cases := []struct {
		name string
		cfg  ModemConfig
	}{
		{"negative sample rate", ModemConfig{SampleRate: Ptr(-1.0)}},
		{"zero sample rate", ModemConfig{SampleRate: Ptr(0.0)}},
		{"zero symbol rate", ModemConfig{SymbolRate: Ptr(0.0)}},
		{"non-divisor symbol rate", ModemConfig{SymbolRate: Ptr(31.0)}},
		{"window too short", ModemConfig{SymbolRate: Ptr(1024.0)}},
		{"tone0 above nyquist", ModemConfig{Tone0: Ptr(3000 * units.Hz)}},
		{"tone1 zero", ModemConfig{Tone1: Ptr(0 * units.Hz)}},
		{"tones too close", ModemConfig{Tone0: Ptr(780 * units.Hz), Tone1: Ptr(790 * units.Hz), SymbolRate: Ptr(32.0)}},
		{"odd preamble", ModemConfig{PreambleBits: Ptr(9)}},
		{"short preamble", ModemConfig{PreambleBits: Ptr(6)}},
		{"data too small", ModemConfig{DataBytes: Ptr(6)}},
		{"odd parity", ModemConfig{ParityBytes: Ptr(15)}},
		{"parity too small", ModemConfig{ParityBytes: Ptr(0)}},
		{"codeword too long", ModemConfig{DataBytes: Ptr(250), ParityBytes: Ptr(16)}},
		{"unknown scheme", ModemConfig{Scheme: Scheme(7)}},
	}
	for _, tc := range cases {
		if _, err := tc.cfg.resolve(); !errors.Is(err, ErrConfig) {
			t.Errorf("%s: got %v, want ErrConfig", tc.name, err)
		}
	}
	// Nil everything resolves to the documented defaults.
	m, err := ModemConfig{}.resolve()
	if err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if m.sampleRate != 4096 || m.symbolRate != 32 || m.symbolLen != 128 ||
		m.tone0 != 780*units.Hz || m.tone1 != 1140*units.Hz ||
		m.preambleBits != 32 || m.dataBytes != 64 || m.parityBytes != 16 {
		t.Errorf("unexpected defaults: %+v", m)
	}
}

func TestTxConfigRejection(t *testing.T) {
	cases := []struct {
		name string
		cfg  TxConfig
	}{
		{"zero stroke", TxConfig{StrokeBytes: Ptr(int64(0))}},
		{"negative stroke", TxConfig{StrokeBytes: Ptr(int64(-5))}},
		{"zero harmonic0", TxConfig{Harmonic0: Ptr(0)}},
		{"zero harmonic1", TxConfig{Harmonic1: Ptr(0)}},
		{"zero seek frac", TxConfig{BaseSeekFrac: Ptr(0.0)}},
		{"negative source SPL", TxConfig{BaseSourceSPL: Ptr(-3.0)}},
	}
	for _, tc := range cases {
		if _, err := tc.cfg.resolve(); !errors.Is(err, ErrConfig) {
			t.Errorf("%s: got %v, want ErrConfig", tc.name, err)
		}
	}
}

func TestModulatorRejectsUnreachableTone(t *testing.T) {
	// Harmonic 1 would need a 780 Hz seek rate — nearly double the
	// actuator's ~416 Hz track-to-track limit.
	_, err := NewModulator(ModemConfig{}, TxConfig{Harmonic0: Ptr(1)})
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("unreachable seek rate accepted: %v", err)
	}
}

func TestModulatorDictionary(t *testing.T) {
	mod, err := NewModulator(ModemConfig{}, TxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p := mod.Patterns()
	if p[0].Tone != 780*units.Hz || p[0].Harmonic != 2 || math.Abs(p[0].SeekRate-390) > 1e-9 {
		t.Errorf("bit-0 pattern %+v", p[0])
	}
	if p[1].Tone != 1140*units.Hz || p[1].Harmonic != 3 || math.Abs(p[1].SeekRate-380) > 1e-9 {
		t.Errorf("bit-1 pattern %+v", p[1])
	}
	if f := mod.TxFrac(1); f <= 0 {
		t.Errorf("FSK bit-1 tray excitation %g must be positive", f)
	}
	ook, err := NewModulator(ModemConfig{Scheme: SchemeOOK}, TxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if f := ook.TxFrac(0); f != 0 {
		t.Errorf("OOK bit-0 tray excitation %g, want 0 (silence)", f)
	}
	if _, on := ook.SourceSPL(0); on {
		t.Error("OOK bit 0 radiates")
	}
}

// testLink builds a single-container facility with a hydrophone at the
// given range.
func testLink(dist units.Distance, amb sig.Ambient, seed int64) (Link, cluster.Vec3) {
	lay := cluster.LineLayout(1, 10)
	tx := lay.Containers[0].Pos
	arr := sonar.Array{
		Medium:       lay.EffectiveMedium(),
		SurfaceDepth: lay.SurfaceDepth,
		Hydrophones: []sonar.Hydrophone{
			{Name: "h0", Pos: cluster.Vec3{X: tx.X + float64(dist), Y: tx.Y, Z: tx.Z}},
		},
	}
	return Link{Array: arr, TxPos: tx, Ambient: amb, Seed: seed}, tx
}

func roundTrip(t *testing.T, scheme Scheme, dist units.Distance, amb sig.Ambient, payloads [][]byte) RxResult {
	t.Helper()
	cfg := ModemConfig{Scheme: scheme}
	mod, err := NewModulator(cfg, TxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var bits []byte
	for _, p := range payloads {
		fb, err := mod.m.encodeFrame(p)
		if err != nil {
			t.Fatal(err)
		}
		bits = append(bits, fb...)
	}
	link, _ := testLink(dist, amb, 42)
	wave, _ := link.Render(mod, bits)
	rx, err := NewReceiver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rx.Demodulate(wave, len(payloads))
}

func TestEndToEndShortRange(t *testing.T) {
	payloads := [][]byte{
		[]byte("deep note: the attack in reverse"),
		bytes.Repeat([]byte{0x5A}, 58),
	}
	ambients := map[Scheme][]sig.AmbientKind{
		// FSK's per-symbol two-tone comparison rides out rain's heavy
		// steady broadband; OOK cannot (no contemporaneous mark reference),
		// so its three backgrounds swap rain for the ship-traffic comb.
		// The capacity tables in internal/experiment map this difference.
		SchemeFSK: {sig.AmbientPump, sig.AmbientCreak, sig.AmbientRain},
		SchemeOOK: {sig.AmbientPump, sig.AmbientCreak, sig.AmbientShipTraffic},
	}
	for _, scheme := range []Scheme{SchemeFSK, SchemeOOK} {
		for _, amb := range ambients[scheme] {
			res := roundTrip(t, scheme, 5*units.Meter, sig.NewAmbient(amb, 3), payloads)
			if !res.Synced {
				t.Fatalf("%v over %v: no sync", scheme, amb)
			}
			if len(res.Frames) != len(payloads) {
				t.Fatalf("%v over %v: %d frames decoded, want %d", scheme, amb, len(res.Frames), len(payloads))
			}
			for i, fr := range res.Frames {
				if !fr.OK {
					t.Fatalf("%v over %v: frame %d failed: %v (SNR %.1f dB)", scheme, amb, i, fr.Err, fr.MeanSNRdB)
				}
				if !bytes.Equal(fr.Payload, payloads[i]) {
					t.Fatalf("%v over %v: frame %d payload mismatch", scheme, amb, i)
				}
			}
		}
	}
}

func TestEndToEndCapacityCollapsesWithRange(t *testing.T) {
	// The same frames that survive at 5 m must die far out: the channel
	// has a range wall, which is the capacity-map story.
	payloads := [][]byte{[]byte("short-range only")}
	res := roundTrip(t, SchemeFSK, 300*units.Meter, sig.NewAmbient(sig.AmbientShipTraffic, 3), payloads)
	for _, fr := range res.Frames {
		if fr.OK {
			t.Fatal("frame decoded at 300 m — the link budget is implausibly generous")
		}
	}
}

func TestLinkRenderDeterministic(t *testing.T) {
	cfg := ModemConfig{}
	mod, err := NewModulator(cfg, TxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bits, err := mod.m.encodeFrame([]byte("determinism"))
	if err != nil {
		t.Fatal(err)
	}
	link, _ := testLink(20*units.Meter, sig.NewAmbient(sig.AmbientShrimp, 9), 7)
	w1, b1 := link.Render(mod, bits)
	w2, b2 := link.Render(mod, bits)
	if b1 != b2 {
		t.Fatalf("budgets differ: %+v vs %+v", b1, b2)
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestLinkBudgetAsymmetry(t *testing.T) {
	// Tone1 rides harmonic 3 against tone0's harmonic 2 and a weaker HSA
	// mode: the received mark carrier must be the quieter one, which is
	// exactly what the preamble-trained normalization compensates.
	mod, err := NewModulator(ModemConfig{}, TxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := mod.SourceSPL(0)
	s1, _ := mod.SourceSPL(1)
	if s1.DB >= s0.DB {
		t.Errorf("tone1 source %v not quieter than tone0 %v", s1, s0)
	}
}
