// Frame codec: the bit stream one frame puts on the wire is
//
//	[preamble: alternating 1010…] [sync: 0x2DD4] [RS codeword]
//
// where the codeword is rsEncode over a fixed-size data block
//
//	[length: 2 bytes BE] [payload] [zero padding] [CRC-32 (IEEE)]
//
// The CRC covers length + payload + padding, so a padding byte corrupted
// into the block is caught even when the RS layer miscorrects. Bytes are
// transmitted MSB-first.
package exfil

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// syncWord marks the end of the preamble. 0x2DD4 is a 16-bit word with
// good autocorrelation (the tail half of a CCSDS 32-bit marker) that an
// alternating preamble never contains.
const (
	syncWord uint16 = 0x2DD4
	syncBits        = 16
)

// encodeFrame builds one frame's symbol stream (one bit per byte of the
// returned slice).
func (m modem) encodeFrame(payload []byte) ([]byte, error) {
	if len(payload) > m.MaxPayload() {
		return nil, fmt.Errorf("%w: %d bytes > max %d", ErrPayloadSize, len(payload), m.MaxPayload())
	}
	data := make([]byte, m.dataBytes)
	binary.BigEndian.PutUint16(data[0:2], uint16(len(payload)))
	copy(data[2:], payload)
	crc := crc32.ChecksumIEEE(data[: m.dataBytes-4 : m.dataBytes-4])
	binary.BigEndian.PutUint32(data[m.dataBytes-4:], crc)
	cw := rsEncode(data, m.parityBytes)

	bits := make([]byte, 0, m.frameBits())
	for i := 0; i < m.preambleBits; i++ {
		bits = append(bits, byte(1-i%2))
	}
	for i := syncBits - 1; i >= 0; i-- {
		bits = append(bits, byte(syncWord>>i&1))
	}
	for _, b := range cw {
		for i := 7; i >= 0; i-- {
			bits = append(bits, (b>>i)&1)
		}
	}
	return bits, nil
}

// decodeCodeword recovers the payload from codeword bits (the stream after
// the sync word), returning the payload and the number of RS corrections.
func (m modem) decodeCodeword(bits []byte) ([]byte, int, error) {
	n := m.dataBytes + m.parityBytes
	if len(bits) < 8*n {
		return nil, 0, fmt.Errorf("%w: %d codeword bits, want %d", ErrFrameCorrupt, len(bits), 8*n)
	}
	cw := make([]byte, n)
	for i := range cw {
		var b byte
		for j := 0; j < 8; j++ {
			b = b<<1 | bits[8*i+j]&1
		}
		cw[i] = b
	}
	corrections, err := rsDecode(cw, m.parityBytes)
	if err != nil {
		return nil, 0, err
	}
	data := cw[:m.dataBytes]
	crc := crc32.ChecksumIEEE(data[: m.dataBytes-4 : m.dataBytes-4])
	if binary.BigEndian.Uint32(data[m.dataBytes-4:]) != crc {
		return nil, 0, fmt.Errorf("%w: CRC mismatch", ErrFrameCorrupt)
	}
	size := int(binary.BigEndian.Uint16(data[0:2]))
	if size > m.MaxPayload() {
		return nil, 0, fmt.Errorf("%w: length field %d > max %d", ErrFrameCorrupt, size, m.MaxPayload())
	}
	return append([]byte(nil), data[2:2+size]...), corrections, nil
}

// preamblePattern returns the expected preamble+sync bit pattern the
// receiver correlates against during acquisition.
func (m modem) preamblePattern() []byte {
	bits := make([]byte, 0, m.preambleBits+syncBits)
	for i := 0; i < m.preambleBits; i++ {
		bits = append(bits, byte(1-i%2))
	}
	for i := syncBits - 1; i >= 0; i-- {
		bits = append(bits, byte(syncWord>>i&1))
	}
	return bits
}
