package exfil

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func testModem(t *testing.T) modem {
	t.Helper()
	m, err := ModemConfig{}.resolve()
	if err != nil {
		t.Fatalf("default config: %v", err)
	}
	return m
}

func TestFrameRoundTrip(t *testing.T) {
	m := testModem(t)
	rng := rand.New(rand.NewSource(3))
	for size := 0; size <= m.MaxPayload(); size++ {
		payload := make([]byte, size)
		rng.Read(payload)
		bits, err := m.encodeFrame(payload)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if len(bits) != m.frameBits() {
			t.Fatalf("size %d: %d bits on the wire, want %d", size, len(bits), m.frameBits())
		}
		got, corrections, err := m.decodeCodeword(bits[m.preambleBits+syncBits:])
		if err != nil {
			t.Fatalf("size %d: decode: %v", size, err)
		}
		if corrections != 0 {
			t.Errorf("size %d: %d corrections on a clean frame", size, corrections)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("size %d: payload mismatch", size)
		}
	}
}

func TestFrameRejectsOversizedPayload(t *testing.T) {
	m := testModem(t)
	if _, err := m.encodeFrame(make([]byte, m.MaxPayload()+1)); !errors.Is(err, ErrPayloadSize) {
		t.Fatalf("oversized payload: got %v, want ErrPayloadSize", err)
	}
}

// corruptCodeword flips nbytes distinct bytes of the frame's codeword
// region (after preamble+sync), returning the corrupted bit stream.
func corruptCodeword(m modem, bits []byte, nbytes int, rng *rand.Rand) []byte {
	out := append([]byte(nil), bits...)
	cw := out[m.preambleBits+syncBits:]
	for _, byteIdx := range rng.Perm(len(cw) / 8)[:nbytes] {
		// Flip at least one bit of the chosen byte.
		mask := 1 + rng.Intn(255)
		for j := 0; j < 8; j++ {
			if mask>>j&1 == 1 {
				cw[8*byteIdx+j] ^= 1
			}
		}
	}
	return out
}

// FuzzFrameCodec is the satellite guarantee: corruption within the FEC
// budget decodes to the exact payload; beyond it the codec must reject —
// a silently wrong payload is never acceptable for an exfiltrated blob
// whose whole value is integrity.
func FuzzFrameCodec(f *testing.F) {
	f.Add([]byte("deep note"), int64(1), 4)
	f.Add([]byte{}, int64(2), 0)
	f.Add(bytes.Repeat([]byte{0xA5}, 58), int64(3), 20)
	f.Fuzz(func(t *testing.T, payload []byte, seed int64, nbytes int) {
		m, err := (ModemConfig{}).resolve()
		if err != nil {
			t.Fatal(err)
		}
		if len(payload) > m.MaxPayload() {
			payload = payload[:m.MaxPayload()]
		}
		if nbytes < 0 {
			nbytes = -nbytes
		}
		nbytes %= m.dataBytes + m.parityBytes
		bits, err := m.encodeFrame(payload)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		corrupted := corruptCodeword(m, bits, nbytes, rng)
		got, corrections, err := m.decodeCodeword(corrupted[m.preambleBits+syncBits:])
		budget := m.parityBytes / 2
		switch {
		case nbytes <= budget:
			if err != nil {
				t.Fatalf("%d corrupted bytes within budget %d rejected: %v", nbytes, budget, err)
			}
			if corrections != nbytes {
				t.Errorf("reported %d corrections, want %d", corrections, nbytes)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("payload mismatch after in-budget correction")
			}
		case err == nil:
			// Beyond the budget a lucky pattern may still land on the
			// original codeword's decoding sphere and decode fine — but
			// only ever to the true payload. Any other outcome means the
			// CRC failed its job.
			if !bytes.Equal(got, payload) {
				t.Fatalf("silent corruption: %d bytes corrupted, decode returned a wrong payload", nbytes)
			}
		}
	})
}

func TestFrameCorruptionSweep(t *testing.T) {
	// Deterministic sweep across the whole corruption range — the fuzz
	// target's property, exercised unconditionally in CI.
	m := testModem(t)
	rng := rand.New(rand.NewSource(9))
	payload := []byte("exfiltrated secret block")
	budget := m.parityBytes / 2
	rejected := 0
	for nbytes := 0; nbytes <= 40; nbytes++ {
		for trial := 0; trial < 10; trial++ {
			bits, err := m.encodeFrame(payload)
			if err != nil {
				t.Fatal(err)
			}
			corrupted := corruptCodeword(m, bits, nbytes, rng)
			got, _, err := m.decodeCodeword(corrupted[m.preambleBits+syncBits:])
			if nbytes <= budget {
				if err != nil {
					t.Fatalf("%d bytes within budget rejected: %v", nbytes, err)
				}
				if !bytes.Equal(got, payload) {
					t.Fatalf("%d bytes within budget: wrong payload", nbytes)
				}
				continue
			}
			if err != nil {
				rejected++
			} else if !bytes.Equal(got, payload) {
				t.Fatalf("%d bytes beyond budget: silently wrong payload", nbytes)
			}
		}
	}
	if rejected < 250 {
		t.Errorf("only %d/320 over-budget frames rejected", rejected)
	}
}
