// The physical transmitter: malware with disk access but no network
// schedules back-and-forth seeks; the repetition rate sets a fundamental
// and the head-stack assembly's resonances amplify its harmonics. The
// modulator owns the per-symbol seek-pattern dictionary — which stroke,
// repetition rate, and harmonic carry each bit — validated against the
// hdd model's actuator limits, and converts it into tray excitation (for
// the defender's telemetry path) and radiated source level (for the
// waterborne path).
package exfil

import (
	"fmt"
	"math"

	"deepnote/internal/hdd"
	"deepnote/internal/units"
)

// TxConfig tunes the physical transmitter. Pointer fields: nil = default,
// explicit values validated and honored.
type TxConfig struct {
	// Model is the transmitting drive. Nil = Barracuda500 (the paper's
	// victim — here the insider's instrument).
	Model *hdd.Model
	// StrokeBytes is the LBA span of each back-and-forth seek. Nil = the
	// model's TrackBytes (the shortest, fastest stroke). Must be > 0.
	StrokeBytes *int64
	// Harmonic0/Harmonic1 pick which harmonic of the seek repetition rate
	// carries Tone0/Tone1. Nil = 2 and 3. Must be ≥ 1. Higher harmonics
	// let a slow actuator reach high tones at the cost of amplitude
	// (roll-off ∝ 1/harmonic).
	Harmonic0, Harmonic1 *int
	// BaseSeekFrac is the tray self-excitation of full-rate seeking at
	// unit harmonic content and unit mechanical response, in track-pitch
	// fractions. Nil = 0.06; must be > 0.
	BaseSeekFrac *float64
	// BaseSourceSPL is the radiated source level of that same reference
	// emission, in dB re 1 µPa at 1 m after mount and enclosure coupling.
	// Nil = 118; must be > 0.
	BaseSourceSPL *float64
}

type txResolved struct {
	model        hdd.Model
	strokeBytes  int64
	harmonic     [2]int
	baseSeekFrac float64
	baseSrcSPL   float64
}

func (c TxConfig) resolve() (txResolved, error) {
	r := txResolved{
		model:        hdd.Barracuda500(),
		harmonic:     [2]int{2, 3},
		baseSeekFrac: 0.06,
		baseSrcSPL:   118,
	}
	if c.Model != nil {
		r.model = *c.Model
	}
	r.strokeBytes = r.model.TrackBytes
	if c.StrokeBytes != nil {
		if *c.StrokeBytes <= 0 {
			return r, fmt.Errorf("%w: StrokeBytes %d must be > 0", ErrConfig, *c.StrokeBytes)
		}
		r.strokeBytes = *c.StrokeBytes
	}
	if c.Harmonic0 != nil {
		if *c.Harmonic0 < 1 {
			return r, fmt.Errorf("%w: Harmonic0 %d must be ≥ 1", ErrConfig, *c.Harmonic0)
		}
		r.harmonic[0] = *c.Harmonic0
	}
	if c.Harmonic1 != nil {
		if *c.Harmonic1 < 1 {
			return r, fmt.Errorf("%w: Harmonic1 %d must be ≥ 1", ErrConfig, *c.Harmonic1)
		}
		r.harmonic[1] = *c.Harmonic1
	}
	if c.BaseSeekFrac != nil {
		if *c.BaseSeekFrac <= 0 {
			return r, fmt.Errorf("%w: BaseSeekFrac %g must be > 0", ErrConfig, *c.BaseSeekFrac)
		}
		r.baseSeekFrac = *c.BaseSeekFrac
	}
	if c.BaseSourceSPL != nil {
		if *c.BaseSourceSPL <= 0 {
			return r, fmt.Errorf("%w: BaseSourceSPL %g must be > 0", ErrConfig, *c.BaseSourceSPL)
		}
		r.baseSrcSPL = *c.BaseSourceSPL
	}
	return r, nil
}

// SeekPattern describes one dictionary entry: how the actuator emits one
// symbol's tone.
type SeekPattern struct {
	Bit         int
	StrokeBytes int64
	// SeekRate is the back-and-forth repetition rate in Hz.
	SeekRate float64
	// Harmonic of SeekRate that lands on Tone.
	Harmonic int
	Tone     units.Frequency
}

// Modulator binds a resolved modem and transmitter into a validated
// symbol dictionary.
type Modulator struct {
	m  modem
	tx txResolved
	// pattern[b] is the dictionary entry for bit b.
	pattern [2]SeekPattern
}

// NewModulator validates the configs and the dictionary: every tone must
// be a reachable harmonic of a seek rate the actuator can sustain over
// the configured stroke.
func NewModulator(mc ModemConfig, tc TxConfig) (*Modulator, error) {
	m, err := mc.resolve()
	if err != nil {
		return nil, err
	}
	tx, err := tc.resolve()
	if err != nil {
		return nil, err
	}
	mod := &Modulator{m: m, tx: tx}
	maxRate := tx.model.MaxSeekRate(tx.strokeBytes)
	for b, tone := range [2]units.Frequency{m.tone0, m.tone1} {
		h := tx.harmonic[b]
		rate := tone.Hertz() / float64(h)
		if rate > maxRate {
			return nil, fmt.Errorf("%w: tone %v needs seek rate %.0f Hz at harmonic %d, above the actuator limit %.0f Hz for a %d-byte stroke",
				ErrConfig, tone, rate, h, maxRate, tx.strokeBytes)
		}
		mod.pattern[b] = SeekPattern{
			Bit:         b,
			StrokeBytes: tx.strokeBytes,
			SeekRate:    rate,
			Harmonic:    h,
			Tone:        tone,
		}
	}
	return mod, nil
}

// Patterns returns the symbol dictionary.
func (mod *Modulator) Patterns() [2]SeekPattern { return mod.pattern }

// Modem returns the public handle on the modulator's resolved modem —
// frame geometry, encoding, and rates.
func (mod *Modulator) Modem() *Modem { return &Modem{m: mod.m} }

// silent reports whether bit b emits nothing under the current scheme.
func (mod *Modulator) silent(b int) bool {
	return mod.m.scheme == SchemeOOK && b == 0
}

// emissionGain is the dimensionless amplitude factor of bit b's emission:
// harmonic roll-off times the HSA's mechanical amplification at the tone.
func (mod *Modulator) emissionGain(b int) float64 {
	p := mod.pattern[b]
	return 1 / float64(p.Harmonic) * mod.tx.model.MechanicalResponse(p.Tone)
}

// TxFrac returns bit b's tray self-excitation amplitude in track-pitch
// fractions — what the defender's tray telemetry sensor sees. OOK bit 0
// is silence.
func (mod *Modulator) TxFrac(b int) float64 {
	if mod.silent(b) {
		return 0
	}
	return mod.tx.baseSeekFrac * mod.emissionGain(b)
}

// SourceSPL returns bit b's radiated source level at RefDist, and false
// for a silent symbol.
func (mod *Modulator) SourceSPL(b int) (units.SPL, bool) {
	if mod.silent(b) {
		return units.SPL{}, false
	}
	g := mod.emissionGain(b)
	return units.WaterSPL(mod.tx.baseSrcSPL + 20*math.Log10(g)), true
}

// RefDist is the reference distance of SourceSPL.
func (mod *Modulator) RefDist() units.Distance { return 1 * units.Meter }

// AppendTelemetry renders the bits' modulated tray waveform (track-pitch
// fractions, one sample per 1/SampleRate) onto out and returns it. The
// time base continues from len(out) at the configured sample rate, so
// consecutive calls produce a phase-continuous stream.
func (mod *Modulator) AppendTelemetry(bits []byte, out []float64) []float64 {
	L := mod.m.symbolLen
	dt := 1 / mod.m.sampleRate
	for _, bit := range bits {
		b := int(bit & 1)
		amp := mod.TxFrac(b)
		if amp == 0 {
			out = append(out, make([]float64, L)...)
			continue
		}
		wv := mod.pattern[b].Tone.AngularVelocity()
		t0 := float64(len(out)) * dt
		for i := 0; i < L; i++ {
			out = append(out, amp*math.Sin(wv*(t0+float64(i)*dt)))
		}
	}
	return out
}
