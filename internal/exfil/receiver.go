// The demodulator: per-symbol Goertzel bins at the two carrier tones over
// rectangular symbol windows, preamble + sync acquisition by sliding
// soft correlation, preamble-trained decision references (so the
// asymmetric link budget — Tone1 rides a weaker harmonic — does not bias
// FSK decisions, and OOK gets its threshold), then hard symbol decisions
// into the frame codec. Per-symbol soft SNR is logged alongside.
package exfil

import (
	"math"

	"deepnote/internal/dsp"
)

// Receiver demodulates rendered waveforms.
type Receiver struct {
	m modem
}

// NewReceiver builds a receiver, rejecting out-of-range configuration.
func NewReceiver(cfg ModemConfig) (*Receiver, error) {
	m, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	return &Receiver{m: m}, nil
}

// RxFrame is one decoded frame.
type RxFrame struct {
	// Payload is the recovered payload; nil unless OK.
	Payload []byte
	// OK reports bit-exact recovery (FEC decoded, CRC verified).
	OK bool
	// Err is the decode failure when !OK.
	Err error
	// Corrections is how many byte errors the RS layer repaired.
	Corrections int
	// BitErrors counts raw symbol decisions the FEC layer had to work
	// against, estimated from re-encoding the recovered codeword. -1
	// when the frame did not decode.
	BitErrors int
	// MeanSNRdB is the mean per-symbol soft SNR over the codeword.
	MeanSNRdB float64
}

// RxResult is a demodulation run over one waveform.
type RxResult struct {
	// Synced reports preamble acquisition; Offset is the first frame's
	// sample offset.
	Synced bool
	Offset int
	// Frames holds per-frame outcomes in wire order.
	Frames []RxFrame
}

// symPower returns the Goertzel power at both tones over the symbol
// window starting at off.
func (r *Receiver) symPower(wave []float64, off int) (p0, p1 float64) {
	g0 := dsp.NewGoertzel(r.m.tone0, r.m.sampleRate)
	g1 := dsp.NewGoertzel(r.m.tone1, r.m.sampleRate)
	for i := 0; i < r.m.symbolLen; i++ {
		x := wave[off+i]
		g0.Push(x)
		g1.Push(x)
	}
	return g0.Power(), g1.Power()
}

const powerEps = 1e-12

// patternScore soft-correlates the preamble+sync pattern at a candidate
// offset: per expected symbol, the normalized margin of the expected tone
// over the alternative. Positive means the pattern is present.
func (r *Receiver) patternScore(wave []float64, off int, pattern []byte) float64 {
	var score float64
	for s, bit := range pattern {
		p0, p1 := r.symPower(wave, off+s*r.m.symbolLen)
		// Normalized two-bin margin. For OOK the space symbol is silence,
		// so its expected margin is zero rather than −1 — the score still
		// peaks at the true offset, and the tone0 bin acts as a noise
		// reference that cancels broadband bursts.
		margin := (p1 - p0) / (p0 + p1 + powerEps)
		if bit == 1 {
			score += margin
		} else {
			score -= margin
		}
	}
	return score
}

// Demodulate decodes up to maxFrames back-to-back frames from the
// waveform. Acquisition scans symbol-aligned and sub-symbol offsets over
// the first two frame lengths; decoding then proceeds at a fixed stride.
func (r *Receiver) Demodulate(wave []float64, maxFrames int) RxResult {
	res := RxResult{}
	L := r.m.symbolLen
	pattern := r.m.preamblePattern()
	patSamples := len(pattern) * L
	frameSamples := r.m.frameBits() * L

	scanEnd := len(wave) - patSamples
	if limit := 2 * frameSamples; scanEnd > limit {
		scanEnd = limit
	}
	step := L / 8
	var offs []int
	var scores []float64
	peak := 0.0
	for off := 0; off <= scanEnd; off += step {
		s := r.patternScore(wave, off, pattern)
		offs = append(offs, off)
		scores = append(scores, s)
		if s > peak {
			peak = s
		}
	}
	if peak <= 0 {
		return res
	}
	// Every frame carries the pattern, so the global maximum may be a
	// LATER frame's preamble. Acquisition wants the earliest one: take
	// the first candidate within 60% of the global peak, then climb to
	// the local maximum inside one symbol — the correlation peak's width.
	best, anchor, bestScore := -1, -1, 0.0
	for i, s := range scores {
		if anchor < 0 {
			if s >= 0.6*peak {
				anchor, best, bestScore = offs[i], offs[i], s
			}
			continue
		}
		if offs[i] > anchor+L {
			break
		}
		if s > bestScore {
			best, bestScore = offs[i], s
		}
	}
	if best < 0 {
		return res
	}
	res.Synced = true
	res.Offset = best

	// Preamble-trained references over the known alternating symbols.
	// FSK: mean per-tone mark power, to normalize the asymmetric link.
	// OOK: the decision variable is p1 − c·p0 — the unused tone0 bin is a
	// contemporaneous noise reference, weighted by the trained spectral
	// ratio c between the bins, so broadband bursts (which raise both bins
	// in that ratio) cancel instead of crossing a power threshold as false
	// marks, while colored steady noise contributes little extra variance.
	// ref1/ref0 are the decision variable's trained mark/space means.
	var on0, on1, sp0, sp1 float64
	var n0, n1 int
	for s := 0; s < r.m.preambleBits; s++ {
		p0, p1 := r.symPower(wave, best+s*L)
		if pattern[s] == 1 {
			on0 += p0
			on1 += p1
			n1++
		} else {
			sp0 += p0
			sp1 += p1
			n0++
		}
	}
	ref1 := on1 / float64(n1)
	ref0 := sp0 / float64(n0)
	noiseRatio := 0.0
	if r.m.scheme == SchemeOOK {
		noiseRatio = sp1 / (sp0 + powerEps)
		ref1 = (on1 - noiseRatio*on0) / float64(n1)
		ref0 = (sp1 - noiseRatio*sp0) / float64(n0)
	}

	cwBits := 8 * (r.m.dataBytes + r.m.parityBytes)
	bits := make([]byte, cwBits)
	for f := 0; f < maxFrames; f++ {
		frameOff := best + f*frameSamples
		cwOff := frameOff + patSamples
		if cwOff+cwBits*L > len(wave) {
			break
		}
		var snrSum float64
		for s := 0; s < cwBits; s++ {
			p0, p1 := r.symPower(wave, cwOff+s*L)
			var bit byte
			var sig, floor float64
			if r.m.scheme == SchemeOOK {
				d := p1 - noiseRatio*p0
				thresh := ref0 + (ref1-ref0)/2
				if d > thresh {
					bit = 1
					sig, floor = p1, noiseRatio*p0+powerEps
				} else {
					// A confident space is as far below the trained mark
					// level as a confident mark is above the floor.
					sig, floor = ref1+powerEps, p1+powerEps
				}
			} else {
				// Preamble-normalized comparison cancels the asymmetric
				// harmonic roll-off between the two carriers.
				q0 := p0 / (ref0 + powerEps)
				q1 := p1 / (ref1 + powerEps)
				if q1 > q0 {
					bit = 1
					sig, floor = p1, p0*ref1/(ref0+powerEps)+powerEps
				} else {
					sig, floor = p0, p1*ref0/(ref1+powerEps)+powerEps
				}
			}
			bits[s] = bit
			snrSum += 10 * math.Log10((sig+powerEps)/(floor+powerEps))
		}
		frame := RxFrame{MeanSNRdB: snrSum / float64(cwBits)}
		payload, corrections, err := r.m.decodeCodeword(bits)
		if err != nil {
			frame.Err = err
			frame.BitErrors = -1
		} else {
			frame.OK = true
			frame.Payload = payload
			frame.Corrections = corrections
			frame.BitErrors = r.countBitErrors(bits, payload)
		}
		res.Frames = append(res.Frames, frame)
	}
	return res
}

// countBitErrors re-encodes the recovered payload and counts raw symbol
// decisions that differed — the pre-FEC bit error count for this frame.
func (r *Receiver) countBitErrors(got []byte, payload []byte) int {
	clean, err := r.m.encodeFrame(payload)
	if err != nil {
		return -1
	}
	clean = clean[r.m.preambleBits+syncBits:]
	errs := 0
	for i := range got {
		if got[i] != clean[i] {
			errs++
		}
	}
	return errs
}
