// The error-correcting half of the shared Reed–Solomon machinery. The
// cluster store only ever faces erasures — a silenced container is a known
// hole — so its coder inverts a Cauchy system over the surviving shards.
// The covert channel faces genuine errors at unknown positions: a symbol
// decision flipped by an ambient burst looks exactly like any other byte.
// This file implements the classical BCH-view decoder over the same
// internal/gf field: syndromes, Berlekamp–Massey, Chien search, Forney.
package exfil

import (
	"fmt"

	"deepnote/internal/gf"
)

// rsEncode appends parity to data, returning the n = len(data)+parity
// codeword. The code is systematic with generator
// g(x) = Π_{i=0}^{parity-1} (x − α^i); codewords are polynomial
// coefficient vectors with the highest-degree term first, so cw[0] is the
// first data byte on the wire.
func rsEncode(data []byte, parity int) []byte {
	gen := rsGenerator(parity)
	cw := make([]byte, len(data)+parity)
	copy(cw, data)
	// Remainder of data·x^parity mod g(x) by synthetic division.
	rem := make([]byte, parity)
	for _, d := range data {
		factor := d ^ rem[0]
		copy(rem, rem[1:])
		rem[parity-1] = 0
		if factor != 0 {
			for j := 0; j < parity; j++ {
				rem[j] ^= gf.Mul(gen[j+1], factor)
			}
		}
	}
	copy(cw[len(data):], rem)
	return cw
}

// rsGenerator returns g(x) for the given parity count, highest degree
// first, with g[0] = 1.
func rsGenerator(parity int) []byte {
	g := []byte{1}
	for i := 0; i < parity; i++ {
		g = gf.PolyMul(g, []byte{1, gf.Exp(i)})
	}
	return g
}

// rsDecode corrects up to parity/2 byte errors in cw in place and returns
// the number of corrections. A pattern beyond the budget returns
// ErrFrameCorrupt; the codeword may then hold residual garbage and the
// caller's CRC is the last line of defense against a miscorrection that
// happens to land on a valid codeword.
func rsDecode(cw []byte, parity int) (int, error) {
	n := len(cw)
	if n <= parity || n > 255 {
		return 0, fmt.Errorf("%w: codeword length %d with %d parity", ErrConfig, n, parity)
	}
	synd := make([]byte, parity)
	clean := true
	for i := range synd {
		synd[i] = gf.PolyEval(cw, gf.Exp(i))
		if synd[i] != 0 {
			clean = false
		}
	}
	if clean {
		return 0, nil
	}

	// Berlekamp–Massey: find the shortest LFSR Λ (lowest-degree-first)
	// generating the syndrome sequence.
	lambda := []byte{1}
	prev := []byte{1}
	var l, m int = 0, 1
	var b byte = 1
	for i := 0; i < parity; i++ {
		var delta byte
		for j := 0; j <= l; j++ {
			if j < len(lambda) && i-j >= 0 {
				delta ^= gf.Mul(lambda[j], synd[i-j])
			}
		}
		if delta == 0 {
			m++
			continue
		}
		scale := gf.Div(delta, b)
		shifted := make([]byte, len(prev)+m)
		for j, c := range prev {
			shifted[j+m] = gf.Mul(c, scale)
		}
		next := xorLow(lambda, shifted)
		if 2*l <= i {
			prev = append([]byte(nil), lambda...)
			l = i + 1 - l
			b = delta
			m = 1
		} else {
			m++
		}
		lambda = next
	}
	lambda = trimLow(lambda)
	nerr := len(lambda) - 1
	if nerr == 0 || nerr > parity/2 {
		return 0, fmt.Errorf("%w: %d errors exceed the %d-error budget", ErrFrameCorrupt, nerr, parity/2)
	}

	// Chien search: coefficient of x^d lives at cw[n-1-d]; position d is
	// in error iff Λ(α^{−d}) = 0.
	var errDegrees []int
	for d := 0; d < n; d++ {
		xinv := gf.Exp((255 - d%255) % 255)
		if evalLow(lambda, xinv) == 0 {
			errDegrees = append(errDegrees, d)
		}
	}
	if len(errDegrees) != nerr {
		return 0, fmt.Errorf("%w: locator degree %d but %d roots", ErrFrameCorrupt, nerr, len(errDegrees))
	}

	// Forney: Ω(x) = S(x)·Λ(x) mod x^parity, then
	// e_d = α^d · Ω(α^{−d}) / Λ'(α^{−d}) for first consecutive root 0.
	omega := make([]byte, parity)
	for i := 0; i < parity; i++ {
		var v byte
		for j := 0; j <= i && j < len(lambda); j++ {
			v ^= gf.Mul(lambda[j], synd[i-j])
		}
		omega[i] = v
	}
	// Formal derivative over GF(2^8): odd-power coefficients shift down.
	deriv := make([]byte, 0, len(lambda)-1)
	for i := 1; i < len(lambda); i += 2 {
		deriv = append(deriv, lambda[i])
		if i+1 < len(lambda) {
			deriv = append(deriv, 0)
		}
	}
	for _, d := range errDegrees {
		xinv := gf.Exp((255 - d%255) % 255)
		den := evalLow(deriv, xinv)
		if den == 0 {
			return 0, fmt.Errorf("%w: Forney denominator vanished", ErrFrameCorrupt)
		}
		mag := gf.Mul(gf.Exp(d%255), gf.Div(evalLow(omega, xinv), den))
		cw[n-1-d] ^= mag
	}

	// Verify: the corrected word must have all-zero syndromes. This turns
	// a miscorrection of an over-budget pattern into a detected failure
	// instead of silent corruption.
	for i := 0; i < parity; i++ {
		if gf.PolyEval(cw, gf.Exp(i)) != 0 {
			return 0, fmt.Errorf("%w: syndromes nonzero after correction", ErrFrameCorrupt)
		}
	}
	return nerr, nil
}

// evalLow evaluates a lowest-degree-first coefficient slice at x.
func evalLow(p []byte, x byte) byte {
	var y byte
	for i := len(p) - 1; i >= 0; i-- {
		y = gf.Mul(y, x) ^ p[i]
	}
	return y
}

// xorLow adds two lowest-degree-first slices.
func xorLow(a, b []byte) []byte {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]byte, n)
	copy(out, a)
	for i, c := range b {
		out[i] ^= c
	}
	return out
}

// trimLow drops trailing (highest-degree) zero coefficients.
func trimLow(p []byte) []byte {
	n := len(p)
	for n > 1 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}
