package exfil

import (
	"bytes"
	"math/rand"
	"testing"

	"deepnote/internal/gf"
)

func TestRSGeneratorRoots(t *testing.T) {
	// Every codeword must vanish at the generator's roots α^0..α^{p-1}.
	gen := rsGenerator(16)
	if len(gen) != 17 || gen[0] != 1 {
		t.Fatalf("generator degree %d, want 16 monic", len(gen)-1)
	}
	for i := 0; i < 16; i++ {
		if v := gf.PolyEval(gen, gf.Exp(i)); v != 0 {
			t.Errorf("g(α^%d) = %d, want 0", i, v)
		}
	}
}

func TestRSCleanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(200)
		parity := 2 * (1 + rng.Intn(10))
		if k+parity > 255 {
			continue
		}
		data := make([]byte, k)
		rng.Read(data)
		cw := rsEncode(data, parity)
		if !bytes.Equal(cw[:k], data) {
			t.Fatalf("code is not systematic")
		}
		if n, err := rsDecode(cw, parity); err != nil || n != 0 {
			t.Fatalf("clean codeword: %d corrections, err %v", n, err)
		}
		if !bytes.Equal(cw[:k], data) {
			t.Fatalf("clean decode mutated data")
		}
	}
}

func TestRSCorrectsWithinBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		k := 16 + rng.Intn(64)
		parity := 2 * (2 + rng.Intn(7))
		data := make([]byte, k)
		rng.Read(data)
		cw := rsEncode(data, parity)
		nerr := 1 + rng.Intn(parity/2)
		corrupted := append([]byte(nil), cw...)
		positions := rng.Perm(len(cw))[:nerr]
		for _, p := range positions {
			var e byte
			for e == 0 {
				e = byte(rng.Intn(256))
			}
			corrupted[p] ^= e
		}
		got, err := rsDecode(corrupted, parity)
		if err != nil {
			t.Fatalf("trial %d: %d errors within budget %d rejected: %v", trial, nerr, parity/2, err)
		}
		if got != nerr {
			t.Errorf("trial %d: reported %d corrections, want %d", trial, got, nerr)
		}
		if !bytes.Equal(corrupted, cw) {
			t.Fatalf("trial %d: decode did not restore the codeword", trial)
		}
	}
}

func TestRSRejectsBeyondBudgetOrRestores(t *testing.T) {
	// Past the budget the decoder may fail (the common case) or — for
	// patterns that land within distance t of another codeword —
	// miscorrect. It must never claim success while leaving a word that
	// fails re-encoding; the frame layer's CRC catches miscorrections.
	rng := rand.New(rand.NewSource(13))
	failures := 0
	for trial := 0; trial < 200; trial++ {
		k := 32
		parity := 8 // corrects 4
		data := make([]byte, k)
		rng.Read(data)
		cw := rsEncode(data, parity)
		corrupted := append([]byte(nil), cw...)
		for _, p := range rng.Perm(len(cw))[:6] {
			corrupted[p] ^= byte(1 + rng.Intn(255))
		}
		if _, err := rsDecode(corrupted, parity); err != nil {
			failures++
			continue
		}
		// Claimed success: the result must be a valid codeword.
		if got := rsEncode(corrupted[:k], parity); !bytes.Equal(got, corrupted) {
			t.Fatalf("trial %d: decoder claimed success on a non-codeword", trial)
		}
	}
	if failures < 150 {
		t.Errorf("only %d/200 over-budget patterns rejected; decoder is too credulous", failures)
	}
}

func TestRSDecodeBadLengths(t *testing.T) {
	if _, err := rsDecode(make([]byte, 8), 8); err == nil {
		t.Error("codeword of only parity bytes accepted")
	}
	if _, err := rsDecode(make([]byte, 300), 8); err == nil {
		t.Error("codeword beyond GF(256) bound accepted")
	}
}
