package experiment

import (
	"context"
	"fmt"
	"time"

	"deepnote/internal/core"
	"deepnote/internal/fio"
	"deepnote/internal/parallel"
	"deepnote/internal/report"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// Ablations quantify the load-bearing design choices in the victim model
// (DESIGN.md §4): what happens to the headline results if a mechanism is
// removed or a calibrated constant moved. Each ablation answers "does this
// part of the model actually matter," which is the difference between a
// mechanism and a curve fit.

// AblationRow is one variant's headline metrics.
type AblationRow struct {
	Variant string
	// Write10cmMBps is Table 1's 10 cm write cell.
	Write10cmMBps float64
	// Read10cmMBps is Table 1's 10 cm read cell.
	Read10cmMBps float64
	// NoResponseAt5cm reports whether the 5 cm row still deadlocks.
	NoResponseAt5cm bool
	// BandTopHz is the write band's upper edge at 1 cm (≥50% loss).
	BandTopHz float64
}

// ablationVariant mutates a testbed's drive model.
type ablationVariant struct {
	name   string
	mutate func(tb *core.Testbed)
}

func ablationVariants() []ablationVariant {
	return []ablationVariant{
		{"baseline (calibrated model)", func(tb *core.Testbed) {}},
		{"no servo lock-loss cliff", func(tb *core.Testbed) {
			tb.DriveModel.ServoLockFrac = 1e9
		}},
		{"equal r/w fault thresholds", func(tb *core.Testbed) {
			tb.DriveModel.ReadFaultFrac = tb.DriveModel.WriteFaultFrac + 1e-9
		}},
		{"no servo wedge window", func(tb *core.Testbed) {
			tb.DriveModel.WedgeWindow = 0
		}},
		{"cheap write retries (= read)", func(tb *core.Testbed) {
			tb.DriveModel.RetryWrite = tb.DriveModel.RetryRead
		}},
		{"no servo rejection (flat)", func(tb *core.Testbed) {
			tb.DriveModel.ServoCrossover = 1 * units.Hz
		}},
	}
}

// runAblationVariant measures one variant's headline numbers.
func runAblationVariant(v ablationVariant, seed int64) (AblationRow, error) {
	row := AblationRow{Variant: v.name}

	measure := func(d units.Distance, p fio.Pattern, f units.Frequency) (fio.Result, error) {
		tb, err := core.NewTestbed(core.Scenario2, d)
		if err != nil {
			return fio.Result{}, err
		}
		v.mutate(tb)
		rig, err := core.NewRigFromTestbed(tb, seed)
		if err != nil {
			return fio.Result{}, err
		}
		rig.ApplyTone(sig.NewTone(f))
		return fio.NewRunner(rig.Disk, rig.Clock).Run(fio.PaperJob(p, time.Second))
	}

	w10, err := measure(10*units.Centimeter, fio.SeqWrite, 650)
	if err != nil {
		return row, err
	}
	row.Write10cmMBps = w10.ThroughputMBps()
	r10, err := measure(10*units.Centimeter, fio.SeqRead, 650)
	if err != nil {
		return row, err
	}
	row.Read10cmMBps = r10.ThroughputMBps()
	w5, err := measure(5*units.Centimeter, fio.SeqWrite, 650)
	if err != nil {
		return row, err
	}
	row.NoResponseAt5cm = w5.NoResponse

	// Band top: walk down from 3 kHz until ≥50% write loss appears.
	for f := units.Frequency(3000); f >= 300; f -= 100 {
		res, err := measure(1*units.Centimeter, fio.SeqWrite, f)
		if err != nil {
			return row, err
		}
		if res.ThroughputMBps() <= 22.7/2 {
			row.BandTopHz = f.Hertz()
			break
		}
	}
	return row, nil
}

// Ablation runs the full variant suite, one worker per CPU. Each variant
// mutates its own testbeds, so the rows match a serial run exactly.
func Ablation(seed int64) ([]AblationRow, error) {
	return AblationWorkers(seed, 0)
}

// AblationWorkers is Ablation with an explicit worker bound (≤ 0 means one
// per CPU).
func AblationWorkers(seed int64, workers int) ([]AblationRow, error) {
	return parallel.Run(context.Background(), ablationVariants(), workers,
		func(_ context.Context, _ int, v ablationVariant) (AblationRow, error) {
			return runAblationVariant(v, seed)
		})
}

// AblationReport renders the suite.
func AblationReport(rows []AblationRow) *report.Table {
	tb := report.NewTable(
		"Model ablations: headline metrics per removed mechanism (650 Hz, Scenario 2)",
		"Variant", "10cm write MB/s", "10cm read MB/s", "5cm dead", "band top Hz")
	for _, r := range rows {
		tb.AddRow(r.Variant,
			fmt.Sprintf("%.2f", r.Write10cmMBps),
			fmt.Sprintf("%.1f", r.Read10cmMBps),
			fmt.Sprintf("%v", r.NoResponseAt5cm),
			fmt.Sprintf("%.0f", r.BandTopHz))
	}
	return tb
}
