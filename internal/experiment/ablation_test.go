package experiment

import (
	"strings"
	"testing"
)

func TestAblationSuite(t *testing.T) {
	rows, err := Ablation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := func(sub string) AblationRow {
		for _, r := range rows {
			if strings.Contains(r.Variant, sub) {
				return r
			}
		}
		t.Fatalf("variant %q missing", sub)
		return AblationRow{}
	}

	base := byName("baseline")
	// The calibrated model reproduces the paper's cells.
	if base.Write10cmMBps > 1 || base.Read10cmMBps < 10 {
		t.Fatalf("baseline off: %+v", base)
	}
	if !base.NoResponseAt5cm {
		t.Fatal("baseline should deadlock at 5 cm")
	}
	if base.BandTopHz < 1500 || base.BandTopHz > 2000 {
		t.Fatalf("baseline band top %v", base.BandTopHz)
	}

	// Removing the servo lock-loss cliff keeps the drive limping at
	// 5 cm instead of deadlocking: the cliff is what produces the
	// paper's "no response" rows.
	noLock := byName("lock-loss")
	if noLock.NoResponseAt5cm {
		t.Error("without lock loss, 5 cm should not fully deadlock")
	}

	// Equal fault thresholds erase the read/write asymmetry — the core
	// §4.1 observation disappears.
	equal := byName("equal r/w")
	if equal.Read10cmMBps > 2*equal.Write10cmMBps+1 {
		t.Errorf("equal thresholds should erase asymmetry: read %.1f vs write %.1f",
			equal.Read10cmMBps, equal.Write10cmMBps)
	}

	// Cheap write retries recover meaningful write throughput at 10 cm:
	// the revolution-priced retry is why writes crawl.
	cheap := byName("cheap write")
	if cheap.Write10cmMBps < 2*base.Write10cmMBps {
		t.Errorf("cheap retries should lift 10 cm writes: %.2f vs baseline %.2f",
			cheap.Write10cmMBps, base.Write10cmMBps)
	}

	// A flat servo (no low-frequency rejection) cannot shrink the band's
	// top edge — the upper edge comes from the wall, not the servo — but
	// baseline behaviour elsewhere must persist.
	flat := byName("flat")
	if flat.BandTopHz < base.BandTopHz-200 {
		t.Errorf("flat servo should not lower the band top: %v vs %v",
			flat.BandTopHz, base.BandTopHz)
	}

	rep := AblationReport(rows).String()
	if !strings.Contains(rep, "baseline") || !strings.Contains(rep, "band top") {
		t.Fatalf("report rendering:\n%s", rep)
	}
}
