package experiment

import (
	"context"
	"fmt"
	"time"

	"deepnote/internal/cluster"
	"deepnote/internal/hdd"
	"deepnote/internal/metrics"
	"deepnote/internal/parallel"
	"deepnote/internal/report"
	"deepnote/internal/sig"
	"deepnote/internal/sonar"
	"deepnote/internal/units"
)

// ClusterSpec is the facility-scale campaign: an erasure-coded
// datacenter serving open-loop client traffic while an attacker ladder
// adds point-blank speakers one failure domain at a time, keying them on
// mid-run. It answers the question the paper's introduction poses at
// facility scale: how many sources must an attacker position before the
// redundant store actually loses availability?
type ClusterSpec struct {
	// Containers and DrivesPerContainer size the facility (defaults 6, 1).
	Containers, DrivesPerContainer int
	// DataShards/ParityShards set the k-of-n code (defaults 4+2).
	DataShards, ParityShards int
	// Objects and ObjectSize size the keyspace (defaults 24, 16 KiB).
	Objects, ObjectSize int
	// Spacing is the container pitch (default 2 m).
	Spacing units.Distance
	// Freq is the attack tone (default 650 Hz).
	Freq units.Frequency
	// MaxSpeakers is the top of the attacker ladder; cells run speaker
	// counts 0..MaxSpeakers (default: Containers).
	MaxSpeakers int
	// Cells, when non-nil, restricts the sweep to these speaker counts
	// (each clamped to 0..MaxSpeakers) instead of the full ladder — the
	// way a single huge-workload cell is run without paying for the whole
	// ladder.
	Cells []int
	// Requests, Rate, and ReadFraction shape the client workload
	// (defaults 240 requests at 250 req/s, 90% reads). ReadFraction nil
	// means the default 0.9; cluster.Ptr(0.0) is a write-only workload.
	Requests     int
	Rate         float64
	ReadFraction *float64
	// AttackStartFrac and AttackStopFrac key the speakers on during
	// [start, stop] of the nominal request window, so the cluster serves
	// load before, during, and after the attack (defaults 0.25, 0.75).
	// AttackStopFrac ≥ 1 means the speakers never key off — the
	// sustained-attack case the availability-cliff analysis uses.
	AttackStartFrac, AttackStopFrac float64
	// StaggerFrac, when positive, staggers the cell's key-ons instead of
	// keying every speaker at AttackStartFrac: speaker i keys on at
	// window·(AttackStartFrac + i·StaggerFrac) and stays on. This is the
	// escalation pattern the closed-loop defense needs a reaction window
	// against; AttackStopFrac is ignored when staggering.
	StaggerFrac float64
	// Defense closes the loop in every cell: a hydrophone ring
	// (Hydrophones elements, Standoff beyond the farthest container)
	// hears each key-on, multilaterates it, and the fixes steer the
	// store via cluster.SetDefense. Standoff nil means the default 3 m;
	// cluster.Ptr(units.Distance(0)) puts the ring at the perimeter and
	// is honored.
	Defense     bool
	Hydrophones int
	Standoff    *units.Distance
	Seed        int64
	// Workers bounds the ladder fan-out (≤ 0 = one per CPU); results are
	// identical for any worker count.
	Workers int
	// CellWorkers bounds the drive fan-out inside each cell's cluster
	// (default 1 — the ladder is usually the fan-out axis). Raise it when
	// running one huge cell via Cells; results never depend on it.
	CellWorkers int
	// Metrics receives engine and per-layer counters when non-nil.
	Metrics *metrics.Registry
}

func (s ClusterSpec) withDefaults() ClusterSpec {
	if s.Containers <= 0 {
		s.Containers = 6
	}
	if s.DrivesPerContainer <= 0 {
		s.DrivesPerContainer = 1
	}
	if s.DataShards <= 0 {
		s.DataShards = 4
	}
	if s.ParityShards <= 0 {
		s.ParityShards = 2
	}
	if s.Objects <= 0 {
		s.Objects = 24
	}
	if s.ObjectSize <= 0 {
		s.ObjectSize = 16 << 10
	}
	if s.Spacing == 0 {
		s.Spacing = 2 * units.Meter
	}
	if s.Freq == 0 {
		s.Freq = 650 * units.Hz
	}
	if s.MaxSpeakers <= 0 || s.MaxSpeakers > s.Containers {
		s.MaxSpeakers = s.Containers
	}
	if s.Requests <= 0 {
		s.Requests = 240
	}
	if s.Rate <= 0 {
		s.Rate = 250
	}
	if s.ReadFraction == nil {
		s.ReadFraction = cluster.Ptr(0.9)
	}
	if s.AttackStartFrac <= 0 {
		s.AttackStartFrac = 0.25
	}
	if s.AttackStopFrac <= 0 {
		s.AttackStopFrac = 0.75
	}
	if s.AttackStopFrac < s.AttackStartFrac {
		s.AttackStopFrac = s.AttackStartFrac
	}
	if s.Hydrophones <= 0 {
		s.Hydrophones = 6
	}
	if s.Standoff == nil {
		s.Standoff = cluster.Ptr(3 * units.Meter)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.CellWorkers <= 0 {
		s.CellWorkers = 1
	}
	return s
}

// ClusterResult is one ladder cell: the serving summary with the given
// number of attacker speakers keyed on mid-run.
type ClusterResult struct {
	Speakers int
	Silenced int // containers driven past servo lock while speakers are on
	Serve    cluster.ServeResult
}

// ClusterSweep runs the attacker ladder: cell s places one point-blank
// speaker at each of the first s containers, keys them on during the
// attack window, and measures availability, durability, goodput, and
// tail latency. Cells fan out over the parallel engine; every cell
// builds its own cluster with seeds derived from (Seed, cell), so
// results are byte-identical at any worker count.
func ClusterSweep(spec ClusterSpec) ([]ClusterResult, error) {
	spec = spec.withDefaults()
	tone := sig.NewTone(spec.Freq)
	window := time.Duration(float64(spec.Requests) / spec.Rate * float64(time.Second))
	cells := spec.Cells
	if cells == nil {
		cells = parallel.Indices(spec.MaxSpeakers + 1)
	} else {
		cells = append([]int(nil), cells...)
		for i, s := range cells {
			if s < 0 {
				cells[i] = 0
			} else if s > spec.MaxSpeakers {
				cells[i] = spec.MaxSpeakers
			}
		}
	}
	return parallel.RunObserved(context.Background(), cells, spec.Workers, spec.Metrics,
		func(_ context.Context, _ int, speakers int) (ClusterResult, error) {
			targets := make([]int, speakers)
			for i := range targets {
				targets[i] = i
			}
			lay := cluster.LineLayout(spec.Containers, spec.Spacing).WithSpeakersAt(tone, targets...)
			c, err := cluster.New(cluster.Config{
				Layout:             lay,
				DrivesPerContainer: spec.DrivesPerContainer,
				DataShards:         spec.DataShards,
				ParityShards:       spec.ParityShards,
				Objects:            spec.Objects,
				ObjectSize:         spec.ObjectSize,
				Seed:               cluster.Ptr(parallel.SeedFor(spec.Seed, speakers)),
				Workers:            spec.CellWorkers,
			})
			if err != nil {
				return ClusterResult{}, err
			}
			if err := c.Preload(); err != nil {
				return ClusterResult{}, err
			}
			var steps []cluster.ScheduleStep
			if spec.StaggerFrac > 0 {
				steps = staggeredSchedule(speakers, window, spec.AttackStartFrac, spec.StaggerFrac)
			} else {
				on := make([]bool, speakers)
				for i := range on {
					on[i] = true
				}
				steps = []cluster.ScheduleStep{
					{At: time.Duration(float64(window) * spec.AttackStartFrac), Active: on},
				}
				if spec.AttackStopFrac < 1 {
					steps = append(steps, cluster.ScheduleStep{
						At: time.Duration(float64(window) * spec.AttackStopFrac), Active: nil})
				}
			}
			c.SetSchedule(steps)
			if spec.Defense {
				arr := sonar.FacilityArray(lay, spec.Hydrophones, *spec.Standoff)
				dets := sonar.DetectSchedule(lay, arr, steps, parallel.SeedFor(spec.Seed, 3000+speakers))
				var fixes []cluster.SourceFix
				for _, d := range dets {
					if d.OK {
						fixes = append(fixes, cluster.SourceFix{
							At: d.FixAt, Pos: d.Est.Pos, Err: d.Est.ErrRadius,
							Tone: lay.Speakers[d.Speaker].Tone,
						})
					}
				}
				if err := c.SetDefense(cluster.DefenseSpec{Fixes: fixes}); err != nil {
					return ClusterResult{}, err
				}
				sonar.PublishMetrics(spec.Metrics, dets)
			}
			res, err := c.Serve(cluster.TrafficSpec{
				Requests:     spec.Requests,
				Rate:         spec.Rate,
				ReadFraction: spec.ReadFraction,
				Seed:         cluster.Ptr(parallel.SeedFor(spec.Seed, 1000+speakers)),
			})
			if err != nil {
				return ClusterResult{}, err
			}
			c.PublishMetrics(spec.Metrics)
			spec.Metrics.Add("experiment.cluster_cells", 1)
			return ClusterResult{Speakers: speakers, Silenced: silencedContainers(lay, speakers), Serve: res}, nil
		})
}

// clusterDriveModel is the drive every cluster container hosts.
func clusterDriveModel() hdd.Model { return hdd.Barracuda500() }

// silencedContainers counts containers whose drives are pushed past the
// servo-lock threshold while all s speakers are on — the attacker's
// effective failure-domain kill count.
func silencedContainers(lay cluster.Layout, speakers int) int {
	if speakers == 0 {
		return 0
	}
	model := clusterDriveModel()
	count := 0
	for ci := range lay.Containers {
		asm, err := lay.Containers[ci].Scenario.Assembly()
		if err != nil {
			continue
		}
		if lay.VibrationAt(ci, asm, model, nil).Amplitude >= model.ServoLockFrac {
			count++
		}
	}
	return count
}

// ClusterReport renders the ladder.
func ClusterReport(rows []ClusterResult) *report.Table {
	tb := report.NewTable(
		"Erasure-coded cluster availability vs attacker speakers (k-of-n, mid-run attack window)",
		"Speakers", "Silenced", "GET avail", "PUT avail", "Degraded reads", "Repairs",
		"Steered", "Evacs", "Goodput MB/s", "P50 ms", "P99 ms")
	for _, r := range rows {
		tb.AddRow(
			fmt.Sprintf("%d", r.Speakers),
			fmt.Sprintf("%d", r.Silenced),
			fmt.Sprintf("%.1f%%", r.Serve.GetAvailability()*100),
			fmt.Sprintf("%.1f%%", r.Serve.PutAvailability()*100),
			fmt.Sprintf("%d", r.Serve.DegradedReads),
			fmt.Sprintf("%d", r.Serve.RepairWrites),
			fmt.Sprintf("%d", r.Serve.SteeredGets),
			fmt.Sprintf("%d", r.Serve.EvacWrites),
			fmt.Sprintf("%.2f", r.Serve.GoodputMBps),
			fmt.Sprintf("%.2f", float64(r.Serve.P50)/1e6),
			fmt.Sprintf("%.2f", float64(r.Serve.P99)/1e6))
	}
	return tb
}
