package experiment

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"deepnote/internal/metrics"
)

// testClusterSpec is a small, fast ladder: 6 containers, 4-of-6 code,
// three-speaker ladder.
func testClusterSpec() ClusterSpec {
	return ClusterSpec{
		Containers:  6,
		MaxSpeakers: 3,
		Objects:     16,
		ObjectSize:  8 << 10,
		Requests:    100,
		Rate:        2000,
		Seed:        5,
	}
}

// TestClusterSweepAvailabilityCliff: with a full-window attack, the
// 4-of-6 cluster rides out up to 2 silenced containers at 100% GET
// availability and collapses beyond the parity budget — the acceptance
// criterion at the campaign level.
func TestClusterSweepAvailabilityCliff(t *testing.T) {
	spec := testClusterSpec()
	spec.AttackStartFrac = 1e-9 // on from the first request...
	spec.AttackStopFrac = 1     // ...and never keyed off
	rows, err := ClusterSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 ladder cells, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Silenced != r.Speakers {
			t.Fatalf("speakers=%d: silenced %d containers, want %d (point-blank must servo-lock)",
				r.Speakers, r.Silenced, r.Speakers)
		}
		if r.Serve.CorruptReads != 0 {
			t.Fatalf("speakers=%d: %d corrupt reads", r.Speakers, r.Serve.CorruptReads)
		}
		switch {
		case r.Speakers <= 2:
			if got := r.Serve.GetAvailability(); got != 1 {
				t.Fatalf("speakers=%d: GET availability %.4f, want 1.0", r.Speakers, got)
			}
		default:
			if got := r.Serve.GetAvailability(); got != 0 {
				t.Fatalf("speakers=%d: GET availability %.4f, want 0 (beyond n−k domains)", r.Speakers, got)
			}
		}
		if r.Speakers > 0 && r.Speakers <= 2 && r.Serve.DegradedReads == 0 {
			t.Fatalf("speakers=%d: expected degraded reads", r.Speakers)
		}
	}
}

// TestClusterSweepMidRunWindowRecovers: with the default mid-run attack
// window the speakers key off again, so even the over-budget cell keeps
// higher availability than a sustained attack — while the attack still
// leaves a visible mark on the serving record.
func TestClusterSweepMidRunWindowRecovers(t *testing.T) {
	spec := testClusterSpec()
	rows, err := ClusterSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	if got := last.Serve.GetAvailability(); got == 0 {
		t.Fatalf("speakers=%d with mid-run window: GET availability 0, want recovery after the window",
			last.Speakers)
	}
	if last.Serve.DegradedReads == 0 && last.Serve.GetFailures == 0 {
		t.Fatalf("speakers=%d: attack window left no trace (no degraded reads, no failures)", last.Speakers)
	}
	if last.Serve.P99 <= rows[0].Serve.P99 {
		t.Fatalf("attacked P99 %v not above healthy P99 %v", last.Serve.P99, rows[0].Serve.P99)
	}
}

// TestClusterSweepDeterministicAcrossWorkers: rows, rendered report, and
// metrics snapshot are byte-identical at workers 1/2/8.
func TestClusterSweepDeterministicAcrossWorkers(t *testing.T) {
	var baseRows []ClusterResult
	var baseReport string
	var baseSnap []byte
	for i, workers := range []int{1, 2, 8} {
		spec := testClusterSpec()
		spec.Workers = workers
		spec.Metrics = metrics.NewRegistry()
		rows, err := ClusterSweep(spec)
		if err != nil {
			t.Fatal(err)
		}
		rep := ClusterReport(rows).String()
		snap, err := json.Marshal(spec.Metrics.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			baseRows, baseReport, baseSnap = rows, rep, snap
			continue
		}
		if !reflect.DeepEqual(rows, baseRows) {
			t.Fatalf("workers=%d: rows diverged from workers=1", workers)
		}
		if rep != baseReport {
			t.Fatalf("workers=%d: report diverged from workers=1", workers)
		}
		if !bytes.Equal(snap, baseSnap) {
			t.Fatalf("workers=%d: metrics snapshot diverged from workers=1", workers)
		}
	}
}

// TestClusterSweepResultsIdenticalWithMetricsOnOff: instrumentation is
// pure observation (PR 2 convention).
func TestClusterSweepResultsIdenticalWithMetricsOnOff(t *testing.T) {
	bareSpec := testClusterSpec()
	bare, err := ClusterSweep(bareSpec)
	if err != nil {
		t.Fatal(err)
	}
	obsSpec := testClusterSpec()
	obsSpec.Metrics = metrics.NewRegistry()
	observed, err := ClusterSweep(obsSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, observed) {
		t.Fatal("metrics changed sweep results")
	}
	snap := obsSpec.Metrics.Snapshot()
	if got := snap.Counters["experiment.cluster_cells"]; got != int64(len(observed)) {
		t.Fatalf("experiment.cluster_cells = %d, want %d", got, len(observed))
	}
	for _, layer := range []string{"cluster", "hdd", "blockdev", "netstore", "parallel"} {
		found := false
		for _, l := range snap.Layers() {
			if l == layer {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("layer %q missing from %v", layer, snap.Layers())
		}
	}
}

// TestClusterSweepDefendedCell: the ladder with the closed loop on. The
// over-budget cell (speakers = parity+1) must recover measurable GET
// availability versus the same staggered escalation undefended, and the
// defense must leave its counters in the serving record.
func TestClusterSweepDefendedCell(t *testing.T) {
	// The request window must comfortably outlast the sonar processing
	// window plus the controller lag, or no request ever reaches a
	// defense phase: 300 requests at 500/s is a 600 ms window against
	// ~155 ms from key-on to policy switch.
	undefended := testClusterSpec()
	undefended.Cells = []int{3}
	undefended.StaggerFrac = 0.2
	undefended.Requests = 300
	undefended.Rate = 500
	offRows, err := ClusterSweep(undefended)
	if err != nil {
		t.Fatal(err)
	}
	defended := undefended
	defended.Defense = true
	onRows, err := ClusterSweep(defended)
	if err != nil {
		t.Fatal(err)
	}
	off, on := offRows[0].Serve, onRows[0].Serve
	if off.SteeredGets != 0 || off.EvacWrites != 0 {
		t.Fatalf("undefended cell reported defense activity: steered=%d evacs=%d",
			off.SteeredGets, off.EvacWrites)
	}
	if on.SteeredGets == 0 || on.EvacWrites == 0 || on.ReplicaReads == 0 {
		t.Fatalf("defense machinery idle: steered=%d evacs=%d replicaReads=%d",
			on.SteeredGets, on.EvacWrites, on.ReplicaReads)
	}
	if off.CorruptReads != 0 || on.CorruptReads != 0 {
		t.Fatalf("corrupt reads: off=%d on=%d", off.CorruptReads, on.CorruptReads)
	}
	if gain := on.GetAvailability() - off.GetAvailability(); gain < 0.05 {
		t.Fatalf("defense gain %.4f not measurable (off %.4f, on %.4f)",
			gain, off.GetAvailability(), on.GetAvailability())
	}
}
