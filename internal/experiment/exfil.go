// The exfiltration experiment maps the covert channel from both sides.
// Offense: frame streams cross the facility water at each (distance,
// depth, ambient) cell and the demodulator's frame-error rate turns into
// net goodput — the capacity map. A scheme × symbol-rate sweep shows
// where faster signaling collapses. Defense: the same modulated seek
// waveforms run under the PR 9 fingerprinting pipeline, reporting
// detection latency and — the number a defender actually budgets against
// — payload bytes leaked before the alarm.
package experiment

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"

	"deepnote/internal/campaign"
	"deepnote/internal/cluster"
	"deepnote/internal/detect"
	"deepnote/internal/exfil"
	"deepnote/internal/metrics"
	"deepnote/internal/parallel"
	"deepnote/internal/report"
	"deepnote/internal/sig"
	"deepnote/internal/sonar"
	"deepnote/internal/units"
)

// ExfilSpec configures the experiment.
type ExfilSpec struct {
	// Distances are the transmitter → hydrophone ranges of the capacity
	// map (default 5, 20, 80 m).
	Distances []units.Distance
	// Depths are the facility SurfaceDepth values swept (default 0 —
	// deep water, no surface bounce — and 6 m, where the Lloyd's-mirror
	// interference reshapes the link). 0 is meaningful here, so the
	// slice, not its elements, carries the unset state.
	Depths []units.Distance
	// SymbolRates is the signaling-rate sweep in baud (default 16, 32,
	// 64), run for both schemes at the nearest distance.
	SymbolRates []float64
	// Frames is how many frames each offense cell transmits (default 3).
	Frames int
	// DetectFrames is how many frames each defense cell transmits
	// (default 8 — long enough for the slow-detection schemes to show
	// their leak).
	DetectFrames int
	// Tx tunes the transmitting drive; Fingerprint the defense-leg
	// classifier.
	Tx          exfil.TxConfig
	Fingerprint detect.FingerprintConfig
	Seed        int64
	// Workers bounds the cell fan-out (≤ 0 = one per CPU); results are
	// byte-identical at any worker count.
	Workers int
	// Metrics receives experiment counters when non-nil.
	Metrics *metrics.Registry
}

func (s ExfilSpec) withDefaults() ExfilSpec {
	if s.Distances == nil {
		s.Distances = []units.Distance{5 * units.Meter, 20 * units.Meter, 80 * units.Meter}
	}
	if s.Depths == nil {
		s.Depths = []units.Distance{0, 6 * units.Meter}
	}
	if s.SymbolRates == nil {
		s.SymbolRates = []float64{16, 32, 64}
	}
	if s.Frames <= 0 {
		s.Frames = 3
	}
	if s.DetectFrames <= 0 {
		s.DetectFrames = 8
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// ExfilCell identifies one experiment cell.
type ExfilCell struct {
	// Kind is "capacity", "rate", or "detect".
	Kind    string
	Scheme  exfil.Scheme
	Ambient sig.AmbientKind
	// Distance and Depth place the hydrophone (offense cells).
	Distance units.Distance
	Depth    units.Distance
	// SymbolRate is the signaling rate in baud.
	SymbolRate float64
}

// ExfilRow is one cell's outcome.
type ExfilRow struct {
	Cell ExfilCell
	// Offense-cell outcomes.
	Synced bool
	// FramesSent / FramesOK count transmitted and bit-exactly recovered
	// frames; FER is their failure ratio.
	FramesSent, FramesOK int
	FER                  float64
	// MeanSNRdB averages the demodulator's per-symbol soft SNR over
	// decoded frames.
	MeanSNRdB float64
	// RawBps is the wire symbol rate; GoodputBps the net payload rate
	// after framing, FEC, and frame errors.
	RawBps, GoodputBps float64
	// Defense-cell outcomes.
	Detect campaign.ExfilDetectResult
}

// ExfilResult is the experiment outcome.
type ExfilResult struct {
	// Capacity is the (distance, depth, ambient) map; Rates the scheme ×
	// symbol-rate sweep; Detect the defense table.
	Capacity, Rates, Detect []ExfilRow
	// BestGoodputBps is the highest net goodput across offense cells —
	// the bench headline.
	BestGoodputBps float64
	// RecoveredDistances / RecoveredAmbients count capacity-map distances
	// and ambients with at least one bit-exact cell — the acceptance
	// floor (≥2 distances, ≥3 ambients).
	RecoveredDistances, RecoveredAmbients int
}

func (s ExfilSpec) cells() []ExfilCell {
	var cells []ExfilCell
	for _, depth := range s.Depths {
		for _, d := range s.Distances {
			for _, kind := range sig.AmbientKinds() {
				cells = append(cells, ExfilCell{
					Kind: "capacity", Scheme: exfil.SchemeFSK, Ambient: kind,
					Distance: d, Depth: depth, SymbolRate: 32,
				})
			}
		}
	}
	for _, scheme := range []exfil.Scheme{exfil.SchemeFSK, exfil.SchemeOOK} {
		for _, rate := range s.SymbolRates {
			cells = append(cells, ExfilCell{
				Kind: "rate", Scheme: scheme, Ambient: sig.AmbientPump,
				Distance: s.Distances[0], SymbolRate: rate,
			})
		}
	}
	for _, scheme := range []exfil.Scheme{exfil.SchemeFSK, exfil.SchemeOOK} {
		for _, kind := range sig.AmbientKinds() {
			cells = append(cells, ExfilCell{
				Kind: "detect", Scheme: scheme, Ambient: kind, SymbolRate: 32,
			})
		}
	}
	return cells
}

// exfilLink builds the cell's facility: one container at the cell depth
// with a hydrophone at the cell distance, hearing through the same water
// the attack experiments use.
func exfilLink(c ExfilCell, amb sig.Ambient, seed int64) exfil.Link {
	lay := cluster.LineLayout(1, 10*units.Meter)
	lay.SurfaceDepth = c.Depth
	tx := lay.Containers[0].Pos
	arr := sonar.Array{
		Medium:       lay.EffectiveMedium(),
		SurfaceDepth: lay.SurfaceDepth,
		Hydrophones: []sonar.Hydrophone{
			{Name: "exfil-rx", Pos: cluster.Vec3{X: tx.X + float64(c.Distance), Y: tx.Y, Z: tx.Z}},
		},
	}
	return exfil.Link{Array: arr, TxPos: tx, Ambient: amb, Seed: seed}
}

// runOffenseCell transmits Frames frames across the cell's link and
// scores recovery.
func (s ExfilSpec) runOffenseCell(c ExfilCell, seed int64) (ExfilRow, error) {
	cfg := exfil.ModemConfig{Scheme: c.Scheme, SymbolRate: exfil.Ptr(c.SymbolRate)}
	mod, err := exfil.NewModulator(cfg, s.Tx)
	if err != nil {
		return ExfilRow{}, err
	}
	md := mod.Modem()
	rx, err := exfil.NewReceiver(cfg)
	if err != nil {
		return ExfilRow{}, err
	}
	payloadRng := rand.New(rand.NewSource(parallel.SeedFor(seed, 1)))
	payloads := make([][]byte, s.Frames)
	var bits []byte
	for f := range payloads {
		payloads[f] = make([]byte, md.MaxPayload())
		payloadRng.Read(payloads[f])
		fb, err := md.EncodeFrame(payloads[f])
		if err != nil {
			return ExfilRow{}, err
		}
		bits = append(bits, fb...)
	}
	amb := sig.NewAmbient(c.Ambient, parallel.SeedFor(seed, 3))
	wave, _ := exfilLink(c, amb, parallel.SeedFor(seed, 2)).Render(mod, bits)
	res := rx.Demodulate(wave, s.Frames)

	row := ExfilRow{
		Cell:       c,
		Synced:     res.Synced,
		FramesSent: s.Frames,
		RawBps:     c.SymbolRate,
	}
	var snrSum float64
	for i, fr := range res.Frames {
		snrSum += fr.MeanSNRdB
		if fr.OK && i < len(payloads) && bytes.Equal(fr.Payload, payloads[i]) {
			row.FramesOK++
		}
	}
	if len(res.Frames) > 0 {
		row.MeanSNRdB = snrSum / float64(len(res.Frames))
	}
	row.FER = 1 - float64(row.FramesOK)/float64(row.FramesSent)
	row.GoodputBps = (1 - row.FER) * 8 * float64(md.MaxPayload()) / md.FrameAirtime()
	return row, nil
}

// runDetectCell runs the defense campaign for the cell.
func (s ExfilSpec) runDetectCell(c ExfilCell, seed int64) (ExfilRow, error) {
	cs := campaign.ExfilDetectSpec{
		Modem:       exfil.ModemConfig{Scheme: c.Scheme, SymbolRate: exfil.Ptr(c.SymbolRate)},
		Tx:          s.Tx,
		Ambient:     sig.NewAmbient(c.Ambient, 3),
		Frames:      s.DetectFrames,
		Fingerprint: s.Fingerprint,
		Seed:        seed,
		Metrics:     s.Metrics,
	}
	res, err := cs.Run()
	if err != nil {
		return ExfilRow{}, err
	}
	return ExfilRow{Cell: c, Detect: res}, nil
}

// ExfilRun executes the experiment. Every cell derives its seed with
// parallel.SeedFor, so the result is byte-identical at any Workers value.
func ExfilRun(spec ExfilSpec) (ExfilResult, error) {
	spec = spec.withDefaults()
	cells := spec.cells()
	rows, err := parallel.RunObserved(context.Background(), cells, spec.Workers, spec.Metrics,
		func(_ context.Context, i int, c ExfilCell) (ExfilRow, error) {
			seed := parallel.SeedFor(spec.Seed, i)
			if c.Kind == "detect" {
				return spec.runDetectCell(c, seed)
			}
			return spec.runOffenseCell(c, seed)
		})
	if err != nil {
		return ExfilResult{}, err
	}

	out := ExfilResult{}
	distOK := map[units.Distance]bool{}
	ambOK := map[sig.AmbientKind]bool{}
	for _, r := range rows {
		switch r.Cell.Kind {
		case "capacity":
			out.Capacity = append(out.Capacity, r)
			if r.FER == 0 {
				distOK[r.Cell.Distance] = true
				ambOK[r.Cell.Ambient] = true
			}
		case "rate":
			out.Rates = append(out.Rates, r)
		case "detect":
			out.Detect = append(out.Detect, r)
		}
		if r.Cell.Kind != "detect" && r.GoodputBps > out.BestGoodputBps {
			out.BestGoodputBps = r.GoodputBps
		}
	}
	out.RecoveredDistances = len(distOK)
	out.RecoveredAmbients = len(ambOK)

	spec.Metrics.Add("experiment.exfil_runs", 1)
	spec.Metrics.Add("experiment.exfil_cells", int64(len(cells)))
	spec.Metrics.MaxGauge("experiment.exfil_goodput_bits_per_sec", out.BestGoodputBps)
	return out, nil
}

// ExfilCapacityReport renders the capacity map.
func ExfilCapacityReport(res ExfilResult) *report.Table {
	tb := report.NewTable(
		"Covert-channel capacity map (FSK @ 32 baud): net goodput vs distance, depth, ambient",
		"Depth m", "Distance m", "Ambient", "Synced", "Frames OK", "FER", "Sym SNR dB", "Goodput b/s")
	for _, r := range res.Capacity {
		tb.AddRow(
			fmt.Sprintf("%.0f", r.Cell.Depth.Meters()),
			fmt.Sprintf("%.0f", r.Cell.Distance.Meters()),
			r.Cell.Ambient.String(),
			fmt.Sprintf("%v", r.Synced),
			fmt.Sprintf("%d/%d", r.FramesOK, r.FramesSent),
			fmt.Sprintf("%.2f", r.FER),
			fmt.Sprintf("%.1f", r.MeanSNRdB),
			fmt.Sprintf("%.2f", r.GoodputBps))
	}
	return tb
}

// ExfilRateReport renders the scheme × symbol-rate sweep.
func ExfilRateReport(res ExfilResult) *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Signaling-rate sweep at %s over %s",
			firstDistance(res), sig.AmbientPump),
		"Scheme", "Baud", "Raw b/s", "Frames OK", "FER", "Sym SNR dB", "Goodput b/s")
	for _, r := range res.Rates {
		tb.AddRow(
			r.Cell.Scheme.String(),
			fmt.Sprintf("%.0f", r.Cell.SymbolRate),
			fmt.Sprintf("%.0f", r.RawBps),
			fmt.Sprintf("%d/%d", r.FramesOK, r.FramesSent),
			fmt.Sprintf("%.2f", r.FER),
			fmt.Sprintf("%.1f", r.MeanSNRdB),
			fmt.Sprintf("%.2f", r.GoodputBps))
	}
	return tb
}

func firstDistance(res ExfilResult) string {
	if len(res.Rates) == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f m", res.Rates[0].Cell.Distance.Meters())
}

// ExfilDetectReport renders the defense leg: detection latency against
// bytes leaked before the alarm.
func ExfilDetectReport(res ExfilResult) *report.Table {
	tb := report.NewTable(
		"Fingerprinting the active channel: detection latency vs bytes leaked",
		"Scheme", "Ambient", "Detected", "Latency s", "Goodput b/s", "Sent B", "Leaked B", "Lead-in FPs")
	for _, r := range res.Detect {
		det, lat := "no", "-"
		if r.Detect.Detected {
			det = "yes"
			lat = fmt.Sprintf("%.1f", r.Detect.DetectLatency.Seconds())
		}
		tb.AddRow(
			r.Cell.Scheme.String(),
			r.Cell.Ambient.String(),
			det, lat,
			fmt.Sprintf("%.2f", r.Detect.GoodputBps),
			fmt.Sprintf("%d", r.Detect.BytesSent),
			fmt.Sprintf("%d", r.Detect.BytesLeaked),
			fmt.Sprintf("%d", r.Detect.FalsePositives))
	}
	return tb
}
