package experiment

import (
	"reflect"
	"strings"
	"testing"

	"deepnote/internal/metrics"
	"deepnote/internal/units"
)

// exfilTestSpec is a trimmed spec that keeps the unit test fast while
// still exercising every cell kind; the CLI runs the full default sweep.
func exfilTestSpec(workers int, reg *metrics.Registry) ExfilSpec {
	return ExfilSpec{
		Distances:    []units.Distance{5 * units.Meter, 20 * units.Meter},
		Depths:       []units.Distance{0},
		SymbolRates:  []float64{32},
		Frames:       2,
		DetectFrames: 2,
		Seed:         5,
		Workers:      workers,
		Metrics:      reg,
	}
}

// TestExfilRunAcceptance pins the PR's acceptance floor on the trimmed
// sweep: bit-exact payload recovery at ≥2 distances and ≥3 ambient
// backgrounds, a positive goodput headline, and a populated defense
// table where FSK leaks nothing.
func TestExfilRunAcceptance(t *testing.T) {
	res, err := ExfilRun(exfilTestSpec(0, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.RecoveredDistances < 2 {
		t.Errorf("bit-exact recovery at %d distances, want ≥ 2", res.RecoveredDistances)
	}
	if res.RecoveredAmbients < 3 {
		t.Errorf("bit-exact recovery over %d ambients, want ≥ 3", res.RecoveredAmbients)
	}
	if res.BestGoodputBps <= 0 {
		t.Errorf("best goodput %.2f b/s, want > 0", res.BestGoodputBps)
	}
	if len(res.Capacity) != 10 || len(res.Rates) != 2 || len(res.Detect) != 10 {
		t.Fatalf("cell counts capacity=%d rates=%d detect=%d", len(res.Capacity), len(res.Rates), len(res.Detect))
	}
	for _, r := range res.Detect {
		if r.Cell.Scheme.String() == "fsk" && r.Detect.BytesLeaked != 0 {
			t.Errorf("FSK over %v leaked %d bytes before detection, want 0", r.Cell.Ambient, r.Detect.BytesLeaked)
		}
		if r.Detect.FalsePositives != 0 {
			t.Errorf("%v over %v: %d lead-in false positives", r.Cell.Scheme, r.Cell.Ambient, r.Detect.FalsePositives)
		}
	}
}

// TestExfilRunDeterministicAcrossWorkers is the property the
// exfil-determinism CI job leans on: byte-identical results at any
// worker count.
func TestExfilRunDeterministicAcrossWorkers(t *testing.T) {
	r1, err := ExfilRun(exfilTestSpec(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := ExfilRun(exfilTestSpec(4, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r4) {
		t.Fatal("results diverge between workers=1 and workers=4")
	}
	if ExfilCapacityReport(r1).String() != ExfilCapacityReport(r4).String() ||
		ExfilRateReport(r1).String() != ExfilRateReport(r4).String() ||
		ExfilDetectReport(r1).String() != ExfilDetectReport(r4).String() {
		t.Fatal("rendered tables diverge between workers=1 and workers=4")
	}
}

// TestExfilReportsAndMetrics checks the tables carry the sweep axes and
// the registry receives the experiment counters.
func TestExfilReportsAndMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	res, err := ExfilRun(exfilTestSpec(0, reg))
	if err != nil {
		t.Fatal(err)
	}
	cap := ExfilCapacityReport(res).String()
	for _, want := range []string{"thermal-creak", "facility-pump", "Goodput", "20"} {
		if !strings.Contains(cap, want) {
			t.Errorf("capacity table missing %q:\n%s", want, cap)
		}
	}
	det := ExfilDetectReport(res).String()
	for _, want := range []string{"fsk", "ook", "Leaked"} {
		if !strings.Contains(det, want) {
			t.Errorf("detect table missing %q:\n%s", want, det)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["experiment.exfil_runs"]; got != 1 {
		t.Errorf("experiment.exfil_runs = %d, want 1", got)
	}
	if got := snap.Counters["experiment.exfil_cells"]; got != 22 {
		t.Errorf("experiment.exfil_cells = %d, want 22", got)
	}
	if snap.Counters["exfil_detect.runs"] != 10 {
		t.Errorf("exfil_detect.runs = %d, want 10", snap.Counters["exfil_detect.runs"])
	}
}
