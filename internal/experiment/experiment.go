// Package experiment regenerates every table and figure in the paper's
// evaluation (§4): Figure 2's frequency sweeps, Table 1's FIO range test,
// Table 2's RocksDB range test, and Table 3's software crashes. Each runner
// returns typed results plus renderers that print paper-style output, and
// the paper's published values ship alongside for comparison.
package experiment

import (
	"fmt"
	"time"

	"deepnote/internal/attack"
	"deepnote/internal/core"
	"deepnote/internal/fio"
	"deepnote/internal/jfs"
	"deepnote/internal/kvdb"
	"deepnote/internal/report"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// --- Figure 2 -----------------------------------------------------------

// Figure2Options tunes the sweep resolution.
type Figure2Options struct {
	// Start, End, Step bound the swept band (defaults 100 Hz – 8 kHz in
	// 100 Hz steps, the band Figure 2 plots).
	Start, End, Step units.Frequency
	// JobRuntime is the per-point FIO window (default 500 ms).
	JobRuntime time.Duration
	// Seed fixes the run.
	Seed int64
}

func (o Figure2Options) withDefaults() Figure2Options {
	if o.Start == 0 {
		o.Start = 100 * units.Hz
	}
	if o.End == 0 {
		o.End = 8000 * units.Hz
	}
	if o.Step == 0 {
		o.Step = 100 * units.Hz
	}
	if o.JobRuntime == 0 {
		o.JobRuntime = 500 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Figure2Series is one scenario's throughput-versus-frequency line.
type Figure2Series struct {
	Scenario core.Scenario
	Freqs    []units.Frequency
	MBps     []float64
}

// Figure2Result reproduces one panel of Figure 2 (a: write, b: read).
type Figure2Result struct {
	Pattern fio.Pattern
	Series  []Figure2Series
}

// Figure2 sweeps all three scenarios for the given pattern.
func Figure2(pattern fio.Pattern, opts Figure2Options) (Figure2Result, error) {
	opts = opts.withDefaults()
	res := Figure2Result{Pattern: pattern}
	for _, s := range []core.Scenario{core.Scenario1, core.Scenario2, core.Scenario3} {
		series := Figure2Series{Scenario: s}
		for f := opts.Start; f <= opts.End; f += opts.Step {
			rig, err := core.NewRig(s, 1*units.Centimeter, opts.Seed)
			if err != nil {
				return res, err
			}
			rig.ApplyTone(sig.NewTone(f))
			r, err := fio.NewRunner(rig.Disk, rig.Clock).Run(fio.PaperJob(pattern, opts.JobRuntime))
			if err != nil {
				return res, err
			}
			series.Freqs = append(series.Freqs, f)
			series.MBps = append(series.MBps, r.ThroughputMBps())
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Chart renders the result as the paper's plot.
func (r Figure2Result) Chart() *report.Chart {
	panel := "(a) Sequential Write"
	if r.Pattern == fio.SeqRead {
		panel = "(b) Sequential Read"
	}
	c := &report.Chart{
		Title:  "Figure 2" + panel + ": HDD throughput during attack vs frequency",
		XLabel: "Frequency (kHz)",
		YLabel: "Throughput (MB/s)",
	}
	for _, s := range r.Series {
		series := report.Series{Name: s.Scenario.String()}
		for i := range s.Freqs {
			series.X = append(series.X, s.Freqs[i].Kilohertz())
			series.Y = append(series.Y, s.MBps[i])
		}
		c.Series = append(c.Series, series)
	}
	return c
}

// VulnerableBand returns the contiguous band of ≥50% throughput loss for a
// scenario (relative to the series' maximum).
func (r Figure2Result) VulnerableBand(s core.Scenario) (sig.Band, bool) {
	for _, series := range r.Series {
		if series.Scenario != s {
			continue
		}
		peak := 0.0
		for _, v := range series.MBps {
			if v > peak {
				peak = v
			}
		}
		if peak == 0 {
			return sig.Band{}, false
		}
		var vulnerable []units.Frequency
		for i, v := range series.MBps {
			if v <= peak/2 {
				vulnerable = append(vulnerable, series.Freqs[i])
			}
		}
		bands := sig.CoalesceBands(vulnerable, 400*units.Hz)
		if len(bands) == 0 {
			return sig.Band{}, false
		}
		// Return the widest band.
		best := bands[0]
		for _, b := range bands[1:] {
			if b.Width() > best.Width() {
				best = b
			}
		}
		return best, true
	}
	return sig.Band{}, false
}

// --- Table 1 ------------------------------------------------------------

// Table1Result carries the measured range rows.
type Table1Result struct {
	Rows []attack.RangeRow
}

// Table1 runs the paper's §4.2 range test (650 Hz, Scenario 2).
func Table1(seed int64) (Table1Result, error) {
	rows, err := attack.RangeTest{JobRuntime: 2 * time.Second, Seed: seed}.Run()
	if err != nil {
		return Table1Result{}, err
	}
	return Table1Result{Rows: rows}, nil
}

// PaperTable1 is the paper's published Table 1 for comparison.
// Latency -1 encodes the paper's "-" (no response).
var PaperTable1 = []attack.RangeRow{
	{Distance: 0, ReadMBps: 18.0, WriteMBps: 22.7, ReadLatMs: 0.2, WriteLatMs: 0.2},
	{Distance: 1 * units.Centimeter, ReadMBps: 0, WriteMBps: 0, ReadLatMs: -1, WriteLatMs: -1, ReadNoResponse: true, WriteNoResponse: true},
	{Distance: 5 * units.Centimeter, ReadMBps: 0, WriteMBps: 0, ReadLatMs: -1, WriteLatMs: -1, ReadNoResponse: true, WriteNoResponse: true},
	{Distance: 10 * units.Centimeter, ReadMBps: 12.6, WriteMBps: 0.3, ReadLatMs: 0.3, WriteLatMs: -1},
	{Distance: 15 * units.Centimeter, ReadMBps: 17.6, WriteMBps: 2.9, ReadLatMs: 0.2, WriteLatMs: 4.0},
	{Distance: 20 * units.Centimeter, ReadMBps: 17.6, WriteMBps: 21.1, ReadLatMs: 0.2, WriteLatMs: 0.2},
	{Distance: 25 * units.Centimeter, ReadMBps: 18.0, WriteMBps: 22.0, ReadLatMs: 0.2, WriteLatMs: 0.2},
}

func distanceLabel(d units.Distance) string {
	if d == 0 {
		return "No Attack"
	}
	return fmt.Sprintf("%.0f cm", d.Centimeters())
}

// Report renders measured rows beside the paper's published values.
func (t Table1Result) Report() *report.Table {
	tb := report.NewTable(
		"Table 1: FIO throughput/latency vs distance (650 Hz, Scenario 2)",
		"Distance", "Read MB/s", "Write MB/s", "Read ms", "Write ms",
		"paper R", "paper W")
	for i, row := range t.Rows {
		var pr, pw string
		if i < len(PaperTable1) {
			pr = report.FormatMBps(PaperTable1[i].ReadMBps)
			pw = report.FormatMBps(PaperTable1[i].WriteMBps)
		}
		tb.AddRow(
			distanceLabel(row.Distance),
			report.FormatMBps(row.ReadMBps),
			report.FormatMBps(row.WriteMBps),
			report.FormatLatencyMs(row.ReadLatMs),
			report.FormatLatencyMs(row.WriteLatMs),
			pr, pw,
		)
	}
	return tb
}

// --- Table 2 ------------------------------------------------------------

// Table2Row is one distance of the RocksDB range test.
type Table2Row struct {
	Distance  units.Distance
	MBps      float64
	OpsPerSec float64
	Crashed   bool
}

// Table2Result carries the measured rows.
type Table2Result struct {
	Rows []Table2Row
}

// PaperTable2 is the paper's published Table 2 (ops/s in raw ops).
var PaperTable2 = []Table2Row{
	{Distance: 0, MBps: 8.7, OpsPerSec: 1.1e5},
	{Distance: 1 * units.Centimeter, MBps: 0, OpsPerSec: 0},
	{Distance: 5 * units.Centimeter, MBps: 0, OpsPerSec: 0},
	{Distance: 10 * units.Centimeter, MBps: 0, OpsPerSec: 0},
	{Distance: 15 * units.Centimeter, MBps: 3.7, OpsPerSec: 0.9e5},
	{Distance: 20 * units.Centimeter, MBps: 8.6, OpsPerSec: 1.1e5},
	{Distance: 25 * units.Centimeter, MBps: 8.6, OpsPerSec: 1.1e5},
}

// Table2Options tunes the RocksDB range test.
type Table2Options struct {
	// Runtime is the readwhilewriting window per distance (default 5 s).
	Runtime time.Duration
	// Fill is the pre-population size (default 5000 keys).
	Fill int
	Seed int64
}

func (o Table2Options) withDefaults() Table2Options {
	if o.Runtime == 0 {
		o.Runtime = 5 * time.Second
	}
	if o.Fill == 0 {
		o.Fill = 5000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Table2 runs db_bench readwhilewriting at each paper distance.
func Table2(opts Table2Options) (Table2Result, error) {
	opts = opts.withDefaults()
	distances := []units.Distance{
		0,
		1 * units.Centimeter, 5 * units.Centimeter, 10 * units.Centimeter,
		15 * units.Centimeter, 20 * units.Centimeter, 25 * units.Centimeter,
	}
	var res Table2Result
	for _, d := range distances {
		rig, err := core.NewRig(core.Scenario2, 1*units.Centimeter, opts.Seed)
		if err != nil {
			return res, err
		}
		if err := jfs.Mkfs(rig.Disk, jfs.MkfsOptions{Blocks: 1 << 17}); err != nil {
			return res, err
		}
		fs, err := jfs.Mount(rig.Disk, rig.Clock, jfs.Config{})
		if err != nil {
			return res, err
		}
		db, err := kvdb.Open(fs, rig.Clock, kvdb.Options{Seed: opts.Seed})
		if err != nil {
			return res, err
		}
		bench := kvdb.NewBench(db, rig.Clock)
		if _, err := bench.Run(kvdb.BenchSpec{Workload: kvdb.WorkloadFillRandom, Num: opts.Fill}); err != nil {
			return res, err
		}
		if d > 0 {
			rig.MoveSpeaker(d, sig.NewTone(650*units.Hz))
		}
		r, err := bench.Run(kvdb.BenchSpec{Workload: kvdb.WorkloadReadWhileWriting, Runtime: opts.Runtime})
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, Table2Row{
			Distance:  d,
			MBps:      r.ThroughputMBps(),
			OpsPerSec: r.OpsPerSec(),
			Crashed:   r.Crashed,
		})
	}
	return res, nil
}

// Report renders measured rows beside the paper's values.
func (t Table2Result) Report() *report.Table {
	tb := report.NewTable(
		"Table 2: RocksDB readwhilewriting vs distance (650 Hz, Scenario 2)",
		"Distance", "MB/s", "ops/s (x1e5)", "paper MB/s", "paper ops/s")
	for i, row := range t.Rows {
		var pm, po string
		if i < len(PaperTable2) {
			pm = report.FormatMBps(PaperTable2[i].MBps)
			po = fmt.Sprintf("%.1f", PaperTable2[i].OpsPerSec/1e5)
		}
		tb.AddRow(
			distanceLabel(row.Distance),
			report.FormatMBps(row.MBps),
			fmt.Sprintf("%.1f", row.OpsPerSec/1e5),
			pm, po,
		)
	}
	return tb
}

// --- Table 3 ------------------------------------------------------------

// Table3Result carries the crash outcomes.
type Table3Result struct {
	Outcomes []attack.CrashOutcome
}

// PaperTable3 is the paper's published time-to-crash (seconds).
var PaperTable3 = map[attack.CrashTarget]float64{
	attack.TargetExt4:    80.0,
	attack.TargetUbuntu:  81.0,
	attack.TargetRocksDB: 81.3,
}

// Table3 runs the paper's §4.4 prolonged attack against all three stacks.
func Table3(seed int64) (Table3Result, error) {
	outcomes, err := attack.ProlongedAttack{Seed: seed}.RunAll()
	if err != nil {
		return Table3Result{}, err
	}
	return Table3Result{Outcomes: outcomes}, nil
}

// MeanTimeToCrash averages the crash times (the paper reports 80.8 s).
func (t Table3Result) MeanTimeToCrash() time.Duration {
	var sum time.Duration
	n := 0
	for _, o := range t.Outcomes {
		if o.Crashed {
			sum += o.TimeToCrash
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

func describeTarget(t attack.CrashTarget) string {
	switch t {
	case attack.TargetExt4:
		return "Journaling filesystem"
	case attack.TargetUbuntu:
		return "Ubuntu server 16.04"
	case attack.TargetRocksDB:
		return "Key-value database"
	default:
		return string(t)
	}
}

// Report renders the crash table beside the paper's values.
func (t Table3Result) Report() *report.Table {
	tb := report.NewTable(
		"Table 3: Crashes in real-world applications (650 Hz, 1 cm, Scenario 2)",
		"Application", "Description", "Time to Crash", "paper", "Error signature")
	for _, o := range t.Outcomes {
		crash := "did not crash"
		if o.Crashed {
			crash = fmt.Sprintf("%.1f seconds", o.TimeToCrash.Seconds())
		}
		sig := o.ErrorOutput
		if len(sig) > 60 {
			sig = sig[:60] + "..."
		}
		tb.AddRow(
			string(o.Target),
			describeTarget(o.Target),
			crash,
			fmt.Sprintf("%.1f seconds", PaperTable3[o.Target]),
			sig,
		)
	}
	return tb
}
