package experiment

import (
	"strings"
	"testing"
	"time"

	"deepnote/internal/attack"
	"deepnote/internal/core"
	"deepnote/internal/fio"
	"deepnote/internal/units"
)

// coarseFig2 keeps figure sweeps fast in tests.
func coarseFig2() Figure2Options {
	return Figure2Options{
		Start: 200 * units.Hz, End: 4000 * units.Hz, Step: 200 * units.Hz,
		JobRuntime: 300 * time.Millisecond,
	}
}

func TestFigure2WriteShape(t *testing.T) {
	res, err := Figure2(fio.SeqWrite, coarseFig2())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d, want 3 scenarios", len(res.Series))
	}
	for _, s := range res.Series {
		// Mid-band (600 Hz) is devastated; 4 kHz is healthy.
		var at600, at4000 float64
		for i, f := range s.Freqs {
			if f == 600 {
				at600 = s.MBps[i]
			}
			if f == 4000 {
				at4000 = s.MBps[i]
			}
		}
		if at600 > 1 {
			t.Errorf("%v: write at 600 Hz = %.1f MB/s, want ≈0", s.Scenario, at600)
		}
		if at4000 < 20 {
			t.Errorf("%v: write at 4 kHz = %.1f MB/s, want ≈22.7", s.Scenario, at4000)
		}
	}
}

func TestFigure2VulnerableBands(t *testing.T) {
	res, err := Figure2(fio.SeqWrite, coarseFig2())
	if err != nil {
		t.Fatal(err)
	}
	// §4.1: plastic (Scenario 2) stays vulnerable to ≈1.7 kHz; aluminum
	// (Scenario 3) recovers by ≈1.3 kHz.
	b2, ok := res.VulnerableBand(core.Scenario2)
	if !ok {
		t.Fatal("no band for scenario 2")
	}
	b3, ok := res.VulnerableBand(core.Scenario3)
	if !ok {
		t.Fatal("no band for scenario 3")
	}
	if b2.High <= b3.High {
		t.Errorf("plastic band top %v should exceed aluminum %v", b2.High, b3.High)
	}
	if b2.Low > 500 || b3.Low > 500 {
		t.Errorf("band lower edges %v/%v, want ≈300 Hz", b2.Low, b3.Low)
	}
	if b3.High < 1000*units.Hz || b3.High > 1800*units.Hz {
		t.Errorf("aluminum band top %v, want ≈1.3 kHz", b3.High)
	}
}

func TestFigure2ReadNarrowerThanWrite(t *testing.T) {
	w, err := Figure2(fio.SeqWrite, coarseFig2())
	if err != nil {
		t.Fatal(err)
	}
	r, err := Figure2(fio.SeqRead, coarseFig2())
	if err != nil {
		t.Fatal(err)
	}
	bw, _ := w.VulnerableBand(core.Scenario3)
	br, ok := r.VulnerableBand(core.Scenario3)
	if !ok {
		t.Fatal("no read band")
	}
	if br.Width() > bw.Width() {
		t.Errorf("read band %v wider than write band %v", br, bw)
	}
}

func TestFigure2Chart(t *testing.T) {
	res, err := Figure2(fio.SeqWrite, Figure2Options{
		Start: 400, End: 1200, Step: 400, JobRuntime: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Chart().String()
	if !strings.Contains(out, "Sequential Write") || !strings.Contains(out, "Scenario 2") {
		t.Fatalf("chart missing labels:\n%s", out)
	}
}

func TestTable1MatchesPaperShape(t *testing.T) {
	res, err := Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(PaperTable1) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(PaperTable1))
	}
	for i, row := range res.Rows {
		paper := PaperTable1[i]
		if row.Distance != paper.Distance {
			t.Fatalf("row %d distance %v, want %v", i, row.Distance, paper.Distance)
		}
		// Qualitative agreement: dead rows dead, healthy rows healthy.
		if paper.WriteNoResponse && !row.WriteNoResponse {
			t.Errorf("row %d (%v): paper has write no-response, we measured %.1f MB/s",
				i, row.Distance, row.WriteMBps)
		}
		if paper.WriteMBps > 15 && row.WriteMBps < paper.WriteMBps*0.75 {
			t.Errorf("row %d (%v): write %.1f MB/s far below paper %.1f",
				i, row.Distance, row.WriteMBps, paper.WriteMBps)
		}
		if paper.ReadMBps > 15 && row.ReadMBps < paper.ReadMBps*0.75 {
			t.Errorf("row %d (%v): read %.1f MB/s far below paper %.1f",
				i, row.Distance, row.ReadMBps, paper.ReadMBps)
		}
	}
	rep := res.Report().String()
	if !strings.Contains(rep, "No Attack") || !strings.Contains(rep, "paper R") {
		t.Fatalf("report rendering:\n%s", rep)
	}
}

func TestTable2MatchesPaperShape(t *testing.T) {
	res, err := Table2(Table2Options{Runtime: 3 * time.Second, Fill: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	base := res.Rows[0]
	if base.MBps < 6 || base.MBps > 14 {
		t.Errorf("baseline = %.1f MB/s, want ≈8.7", base.MBps)
	}
	if base.OpsPerSec < 0.7e5 || base.OpsPerSec > 1.6e5 {
		t.Errorf("baseline ops/s = %.0f, want ≈1.1e5", base.OpsPerSec)
	}
	// 1 cm and 5 cm: collapse to ≈0 (paper: 0).
	for i := 1; i <= 2; i++ {
		if res.Rows[i].MBps > 0.5 {
			t.Errorf("row %d: %.2f MB/s under close attack, want ≈0", i, res.Rows[i].MBps)
		}
	}
	// 20+ cm: recovered to near baseline.
	for i := 5; i <= 6; i++ {
		if res.Rows[i].MBps < base.MBps*0.7 {
			t.Errorf("row %d: %.1f MB/s, want near baseline %.1f", i, res.Rows[i].MBps, base.MBps)
		}
	}
	// Monotone-ish recovery from 5 cm outward.
	for i := 3; i <= 6; i++ {
		if res.Rows[i].MBps+0.3 < res.Rows[i-1].MBps {
			t.Errorf("throughput regressed with distance at row %d", i)
		}
	}
	rep := res.Report().String()
	if !strings.Contains(rep, "paper MB/s") {
		t.Fatalf("report rendering:\n%s", rep)
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	res, err := Table3(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 3 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	for _, o := range res.Outcomes {
		if !o.Crashed {
			t.Errorf("%s did not crash", o.Target)
			continue
		}
		paper := PaperTable3[o.Target]
		got := o.TimeToCrash.Seconds()
		if got < paper-10 || got > paper+12 {
			t.Errorf("%s: time to crash %.1f s, paper %.1f s", o.Target, got, paper)
		}
	}
	mean := res.MeanTimeToCrash().Seconds()
	if mean < 72 || mean > 90 {
		t.Errorf("mean time to crash = %.1f s, paper: 80.8 s", mean)
	}
	rep := res.Report().String()
	for _, want := range []string{"ext4", "ubuntu", "rocksdb", "Journaling filesystem"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestMeanTimeToCrashEmpty(t *testing.T) {
	var r Table3Result
	if r.MeanTimeToCrash() != 0 {
		t.Fatal("empty mean should be 0")
	}
	r.Outcomes = []attack.CrashOutcome{{Target: attack.TargetExt4, Crashed: false}}
	if r.MeanTimeToCrash() != 0 {
		t.Fatal("uncrashed outcomes should not count")
	}
}

func TestVulnerableBandMissingScenario(t *testing.T) {
	var r Figure2Result
	if _, ok := r.VulnerableBand(core.Scenario1); ok {
		t.Fatal("band found in empty result")
	}
}
