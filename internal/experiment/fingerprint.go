package experiment

import (
	"context"
	"fmt"
	"math"
	"time"

	"deepnote/internal/campaign"
	"deepnote/internal/cluster"
	"deepnote/internal/detect"
	"deepnote/internal/metrics"
	"deepnote/internal/parallel"
	"deepnote/internal/report"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// FingerprintSpec is the spectral-fingerprinting experiment: the benign
// ambient corpus (ship traffic, rain, snapping shrimp, facility pumps,
// thermal creak) runs through the full monitored-victim chain to measure
// the classifier's false-positive rate, and the §4.1 hostile tone is
// injected over every background at controlled SNRs to measure detection
// latency and confidence. A defense-gate demo rides along: the measured
// confidences are fed through cluster.SetDefense's MinConfidence gate to
// show benign verdicts cannot escalate the store's defense while hostile
// ones arm it.
type FingerprintSpec struct {
	// Freq is the hostile tone (default 650 Hz, the §4.1 worst case).
	Freq units.Frequency
	// SNRs are the hostile-cell tone levels in dB over the telemetry
	// noise floor (default 0, 6, 12 — below, at, and above the detection
	// threshold).
	SNRs []float64
	// BenignSeeds is how many seeded variants of each benign scenario run
	// (default 3).
	BenignSeeds int
	// Duration is each cell's run length (default 12 s ≈ 96 windows).
	Duration time.Duration
	// Detector and Fingerprint tune the two detection layers.
	Detector    detect.Config
	Fingerprint detect.FingerprintConfig
	Seed        int64
	// Workers bounds the cell fan-out (≤ 0 = one per CPU); results are
	// byte-identical at any worker count.
	Workers int
	// Metrics receives campaign and experiment counters when non-nil.
	Metrics *metrics.Registry
}

func (s FingerprintSpec) withDefaults() FingerprintSpec {
	if s.Freq == 0 {
		s.Freq = 650 * units.Hz
	}
	if s.SNRs == nil {
		s.SNRs = []float64{0, 6, 12}
	}
	if s.BenignSeeds <= 0 {
		s.BenignSeeds = 3
	}
	if s.Duration == 0 {
		s.Duration = 12 * time.Second
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// FingerprintRow is one experiment cell's outcome.
type FingerprintRow struct {
	// Background is the ambient scenario the tray sensor heard.
	Background sig.AmbientKind
	// AmbientSeed is the scenario's seed variant.
	AmbientSeed int64
	// Attack is true for hostile cells; SNRdB is the injected tone level
	// over the telemetry floor (meaningful only when Attack).
	Attack bool
	SNRdB  float64
	// Result is the full monitored-run outcome.
	Result campaign.FingerprintResult
}

// FingerprintResult is the experiment outcome.
type FingerprintResult struct {
	// Benign are the no-attack corpus cells; Hostile the tone-injection
	// cells.
	Benign, Hostile []FingerprintRow
	// BenignWindows and FalsePositives aggregate the corpus; FPRate is
	// their ratio — the headline number pinned to zero at default
	// thresholds.
	BenignWindows, FalsePositives int
	FPRate                        float64
	// BenignMaxConfidence is the worst spectral confidence any benign
	// window reached; HostileMinConfidence the weakest detection
	// confidence among detected hostile cells (1 if none detected).
	BenignMaxConfidence, HostileMinConfidence float64
	// GateBenignArmed / GateHostileArmed report the defense-gate demo:
	// a SourceFix carrying the benign-side confidence must NOT arm the
	// store's defense at MinConfidence 0.5, while the hostile-side one
	// must.
	GateBenignArmed, GateHostileArmed bool
}

// fingerprintCell is one unit of fan-out work.
type fingerprintCell struct {
	kind   sig.AmbientKind
	seed   int64 // ambient seed variant
	attack bool
	snr    float64
}

func (s FingerprintSpec) cells() []fingerprintCell {
	var cells []fingerprintCell
	for _, kind := range sig.AmbientKinds() {
		for v := int64(1); v <= int64(s.BenignSeeds); v++ {
			cells = append(cells, fingerprintCell{kind: kind, seed: v})
		}
	}
	for _, kind := range append([]sig.AmbientKind{sig.AmbientNone}, sig.AmbientKinds()...) {
		for _, snr := range s.SNRs {
			cells = append(cells, fingerprintCell{kind: kind, seed: 1, attack: true, snr: snr})
		}
	}
	return cells
}

// FingerprintRun executes the experiment. Every cell derives its seed with
// parallel.SeedFor, so the result is byte-identical at any Workers value.
func FingerprintRun(spec FingerprintSpec) (FingerprintResult, error) {
	spec = spec.withDefaults()
	cells := spec.cells()
	rows, err := parallel.RunObserved(context.Background(), cells, spec.Workers, spec.Metrics,
		func(_ context.Context, i int, c fingerprintCell) (FingerprintRow, error) {
			amb := sig.NewAmbient(c.kind, c.seed)
			cs := campaign.FingerprintSpec{
				Freq:        spec.Freq,
				Ambient:     amb,
				Duration:    spec.Duration,
				Detector:    spec.Detector,
				Fingerprint: spec.Fingerprint,
				Seed:        parallel.SeedFor(spec.Seed, i),
				Metrics:     spec.Metrics,
			}
			if c.attack {
				floor := math.Hypot(detect.DefaultSensorSigma, amb.NominalSigma())
				cs.ToneAmp = campaign.Ptr(floor * math.Pow(10, c.snr/20))
			} else {
				cs.ToneAmp = campaign.Ptr(0.0)
			}
			res, err := cs.Run()
			if err != nil {
				return FingerprintRow{}, err
			}
			return FingerprintRow{
				Background:  c.kind,
				AmbientSeed: c.seed,
				Attack:      c.attack,
				SNRdB:       c.snr,
				Result:      res,
			}, nil
		})
	if err != nil {
		return FingerprintResult{}, err
	}

	out := FingerprintResult{HostileMinConfidence: 1}
	for _, r := range rows {
		if !r.Attack {
			out.Benign = append(out.Benign, r)
			out.BenignWindows += r.Result.BenignWindows
			out.FalsePositives += r.Result.FalsePositives
			if r.Result.MaxConfidence > out.BenignMaxConfidence {
				out.BenignMaxConfidence = r.Result.MaxConfidence
			}
			continue
		}
		out.Hostile = append(out.Hostile, r)
		if r.Result.Detected && r.Result.Confidence < out.HostileMinConfidence {
			out.HostileMinConfidence = r.Result.Confidence
		}
	}
	if out.BenignWindows > 0 {
		out.FPRate = float64(out.FalsePositives) / float64(out.BenignWindows)
	}

	// Defense-gate demo: feed the measured confidences through the
	// store's MinConfidence gate.
	var gateErr error
	out.GateBenignArmed, gateErr = defenseGateArms(spec.Freq, out.BenignMaxConfidence)
	if gateErr != nil {
		return out, gateErr
	}
	out.GateHostileArmed, gateErr = defenseGateArms(spec.Freq, out.HostileMinConfidence)
	if gateErr != nil {
		return out, gateErr
	}

	spec.Metrics.Add("experiment.fingerprint_runs", 1)
	spec.Metrics.Add("experiment.fingerprint_cells", int64(len(cells)))
	spec.Metrics.MaxGauge("experiment.fingerprint_fp_rate", out.FPRate)
	spec.Metrics.MaxGauge("experiment.fingerprint_benign_max_confidence", out.BenignMaxConfidence)
	return out, nil
}

// defenseGateArms compiles a minimal defense plan from one SourceFix
// carrying the given verdict confidence, gated at MinConfidence 0.5, and
// reports whether the store armed.
func defenseGateArms(freq units.Frequency, confidence float64) (bool, error) {
	tone := sig.NewTone(freq)
	lay := cluster.LineLayout(3, 2*units.Meter).WithSpeakersAt(tone, 0)
	c, err := cluster.New(cluster.Config{
		Layout:     lay,
		DataShards: 2, ParityShards: 1,
		Objects: 6, ObjectSize: 4 << 10,
		Seed: cluster.Ptr(int64(1)),
	})
	if err != nil {
		return false, err
	}
	err = c.SetDefense(cluster.DefenseSpec{
		Fixes: []cluster.SourceFix{{
			At:         100 * time.Millisecond,
			Pos:        lay.Speakers[0].Pos,
			Err:        20 * units.Centimeter,
			Tone:       tone,
			Confidence: confidence,
		}},
		MinConfidence: cluster.Ptr(0.5),
	})
	if err != nil {
		return false, err
	}
	return c.Defended(), nil
}

// FingerprintBenignReport renders the false-positive corpus sweep.
func FingerprintBenignReport(res FingerprintResult) *report.Table {
	tb := report.NewTable(
		"Benign ambient corpus: spectral classifier false positives at default thresholds",
		"Scenario", "Seed", "Windows", "False pos", "FP rate", "Max conf", "Alarms")
	for _, r := range res.Benign {
		tb.AddRow(
			r.Background.String(),
			fmt.Sprintf("%d", r.AmbientSeed),
			fmt.Sprintf("%d", r.Result.Windows),
			fmt.Sprintf("%d", r.Result.FalsePositives),
			fmt.Sprintf("%.3f", r.Result.FPRate),
			fmt.Sprintf("%.2f", r.Result.MaxConfidence),
			fmt.Sprintf("%d", r.Result.FusedAlarms))
	}
	return tb
}

// FingerprintDetectionReport renders the hostile-tone injection sweep.
func FingerprintDetectionReport(res FingerprintResult) *report.Table {
	tb := report.NewTable(
		"Hostile tone over each background at controlled SNR",
		"Background", "SNR dB", "Detected", "Latency s", "Freq Hz", "Confidence", "Lead-in FPs")
	for _, r := range res.Hostile {
		det, lat, freq, conf := "no", "-", "-", "-"
		if r.Result.Detected {
			det = "yes"
			lat = fmt.Sprintf("%.2f", r.Result.DetectLatency.Seconds())
			freq = fmt.Sprintf("%.0f", r.Result.DetectedFreq.Hertz())
			conf = fmt.Sprintf("%.2f", r.Result.Confidence)
		}
		tb.AddRow(
			r.Background.String(),
			fmt.Sprintf("%.0f", r.SNRdB),
			det, lat, freq, conf,
			fmt.Sprintf("%d", r.Result.FalsePositives))
	}
	return tb
}
