package experiment

import (
	"math"
	"reflect"
	"testing"
	"time"
)

// The acceptance pin for the experiment layer: zero false positives at
// default thresholds across the whole benign corpus, detection of the
// §4.1 tone at ≥ 6 dB SNR over every background, and the measured
// confidences driving the store's defense gate the right way.
func TestFingerprintRunAcceptance(t *testing.T) {
	res, err := FingerprintRun(FingerprintSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FalsePositives != 0 || res.FPRate != 0 {
		t.Fatalf("benign corpus FP rate %.4f (%d/%d), want 0",
			res.FPRate, res.FalsePositives, res.BenignWindows)
	}
	if len(res.Benign) != 15 { // 5 scenarios × 3 seeds
		t.Fatalf("benign cells = %d, want 15", len(res.Benign))
	}
	if res.BenignMaxConfidence >= 0.5 {
		t.Fatalf("benign confidence reached %.2f", res.BenignMaxConfidence)
	}
	for _, r := range res.Benign {
		if r.Result.FusedAlarms != 0 || r.Result.TelemetryAlarms != 0 {
			t.Fatalf("%v seed %d: benign run alarmed", r.Background, r.AmbientSeed)
		}
	}
	for _, r := range res.Hostile {
		if r.SNRdB >= 6 {
			if !r.Result.Detected {
				t.Fatalf("%v at %g dB: tone not detected", r.Background, r.SNRdB)
			}
			if math.Abs(r.Result.DetectedFreq.Hertz()-650) > 20 {
				t.Fatalf("%v at %g dB: detected %v, want ≈ 650 Hz",
					r.Background, r.SNRdB, r.Result.DetectedFreq)
			}
			if r.Result.Confidence < 0.5 {
				t.Fatalf("%v at %g dB: confidence %.2f", r.Background, r.SNRdB, r.Result.Confidence)
			}
			if r.Result.DetectLatency > 2*time.Second {
				t.Fatalf("%v at %g dB: detection took %v", r.Background, r.SNRdB, r.Result.DetectLatency)
			}
		} else if r.Result.Detected {
			t.Fatalf("%v at %g dB: buried tone flagged hostile", r.Background, r.SNRdB)
		}
		if r.Result.FalsePositives != 0 {
			t.Fatalf("%v at %g dB: %d lead-in false positives", r.Background, r.SNRdB, r.Result.FalsePositives)
		}
	}
	if res.GateBenignArmed {
		t.Fatal("benign-confidence fix armed the defense through the 0.5 gate")
	}
	if !res.GateHostileArmed {
		t.Fatal("hostile-confidence fix failed to arm the defense")
	}
}

// The experiment must be byte-identical at any worker count — the CI
// determinism gate runs the CLI flavor of this.
func TestFingerprintRunDeterministicAcrossWorkers(t *testing.T) {
	spec := FingerprintSpec{
		SNRs:        []float64{6},
		BenignSeeds: 1,
		Duration:    6 * time.Second,
		Seed:        5,
	}
	spec.Workers = 1
	a, err := FingerprintRun(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workers = 8
	b, err := FingerprintRun(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("workers 1 vs 8 diverged:\n 1: %+v\n 8: %+v", a, b)
	}
}
