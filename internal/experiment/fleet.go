package experiment

import (
	"context"
	"fmt"

	"deepnote/internal/cluster"
	"deepnote/internal/core"
	"deepnote/internal/parallel"
	"deepnote/internal/report"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// Fleet models a small underwater data center as M containers of N drives
// each, and asks the scaling question the paper's introduction implies:
// how much of the facility can an attacker with k speakers take offline?
// The facility is a cluster.LineLayout: containers in a line at the
// configured pitch, one point-blank speaker pressed against each
// targeted container, and every container's exposure computed from its
// geometric acoustics.Path to the nearest source (non-targeted
// containers are protected only by spreading along the real water path).

// FleetSpec describes the facility and attack.
type FleetSpec struct {
	// Containers and DrivesPerContainer set the facility size.
	Containers, DrivesPerContainer int
	// Speakers is the attacker's simultaneous source count.
	Speakers int
	// Freq is the attack tone.
	Freq units.Frequency
	// ContainerSpacing is the distance from a speaker to the *next*
	// container over (default 2 m).
	ContainerSpacing units.Distance
	Seed             int64
	// Workers bounds how many containers are evaluated concurrently;
	// ≤ 0 means one worker per CPU. Results are identical for any worker
	// count.
	Workers int
}

func (s FleetSpec) withDefaults() FleetSpec {
	if s.Containers <= 0 {
		s.Containers = 4
	}
	if s.DrivesPerContainer <= 0 {
		s.DrivesPerContainer = 5
	}
	if s.Speakers < 0 {
		s.Speakers = 0
	}
	// One speaker per container is the model's geometry: extra speakers
	// have no container left to target, so an over-provisioned attacker
	// behaves exactly like one with a speaker per container. Without the
	// clamp the c < Speakers branch would mislabel spill-over distances.
	if s.Speakers > s.Containers {
		s.Speakers = s.Containers
	}
	if s.Freq == 0 {
		s.Freq = 650 * units.Hz
	}
	if s.ContainerSpacing == 0 {
		s.ContainerSpacing = 2 * units.Meter
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// FleetResult reports facility-level availability.
type FleetResult struct {
	Spec FleetSpec
	// DrivesTotal and DrivesFaulting count the facility.
	DrivesTotal, DrivesFaulting int
	// Availability is the fraction of drives still below the write
	// fault threshold.
	Availability float64
}

// FleetAvailability computes, analytically from the off-track model, how
// many drives fault when k containers are targeted point-blank and the
// rest receive only the spill-over from the nearest speaker. Each
// container's speaker distance is its geometric path length in the
// cluster layout (co-located speakers clamp to the paper's 1 cm
// point-blank geometry). Containers are evaluated concurrently over the
// spec's Workers pool; each builds its own testbed.
func FleetAvailability(spec FleetSpec) (FleetResult, error) {
	spec = spec.withDefaults()
	res := FleetResult{Spec: spec, DrivesTotal: spec.Containers * spec.DrivesPerContainer}
	tone := sig.NewTone(spec.Freq)
	targets := make([]int, spec.Speakers)
	for i := range targets {
		targets[i] = i
	}
	lay := cluster.LineLayout(spec.Containers, spec.ContainerSpacing).WithSpeakersAt(tone, targets...)
	counts, err := parallel.Run(context.Background(), parallel.Indices(spec.Containers), spec.Workers,
		func(_ context.Context, _ int, c int) (int, error) {
			// Real path distance to the nearest speaker in the layout.
			d, attacked := lay.NearestSpeakerDistance(c)
			if !attacked {
				return 0, nil
			}
			tb, err := core.NewTestbed(core.Scenario2, d)
			if err != nil {
				return 0, err
			}
			faulting := 0
			for slot := 0; slot < spec.DrivesPerContainer; slot++ {
				asm := tb.Assembly
				if asm.Mount.Tower != nil {
					mount := *asm.Mount.Tower
					asm.Mount.Slot = slot % mount.Slots
				}
				probe := *tb
				probe.Assembly = asm
				if probe.VibrationFor(tone).Amplitude >= probe.DriveModel.WriteFaultFrac {
					faulting++
				}
			}
			return faulting, nil
		})
	if err != nil {
		return res, err
	}
	for _, n := range counts {
		res.DrivesFaulting += n
	}
	res.Availability = 1 - float64(res.DrivesFaulting)/float64(res.DrivesTotal)
	return res, nil
}

// FleetSweep runs FleetAvailability for every speaker count 0..Containers.
func FleetSweep(spec FleetSpec) ([]FleetResult, error) {
	spec = spec.withDefaults()
	out := make([]FleetResult, 0, spec.Containers+1)
	for k := 0; k <= spec.Containers; k++ {
		s := spec
		s.Speakers = k
		r, err := FleetAvailability(s)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// FleetReport renders the sweep.
func FleetReport(rows []FleetResult) *report.Table {
	tb := report.NewTable(
		"Facility availability vs attacker speakers (write-fault criterion)",
		"Speakers", "Drives faulting", "Drives total", "Availability")
	for _, r := range rows {
		tb.AddRow(
			fmt.Sprintf("%d", r.Spec.Speakers),
			fmt.Sprintf("%d", r.DrivesFaulting),
			fmt.Sprintf("%d", r.DrivesTotal),
			fmt.Sprintf("%.0f%%", r.Availability*100))
	}
	return tb
}
