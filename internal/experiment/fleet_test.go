package experiment

import (
	"strings"
	"testing"

	"deepnote/internal/cluster"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

func TestFleetNoAttackFullyAvailable(t *testing.T) {
	r, err := FleetAvailability(FleetSpec{Speakers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Availability != 1 || r.DrivesFaulting != 0 {
		t.Fatalf("idle facility: %+v", r)
	}
}

func TestFleetOneSpeakerOneContainer(t *testing.T) {
	r, err := FleetAvailability(FleetSpec{Containers: 4, DrivesPerContainer: 5, Speakers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The targeted container loses all five drives; 2 m spacing protects
	// the neighbours (spreading from 1 cm reference is ≈46 dB).
	if r.DrivesFaulting != 5 {
		t.Fatalf("one speaker should take exactly one container: %+v", r)
	}
	if r.Availability != 0.75 {
		t.Fatalf("availability = %v, want 0.75", r.Availability)
	}
}

func TestFleetSweepMonotone(t *testing.T) {
	rows, err := FleetSweep(FleetSpec{Containers: 4, DrivesPerContainer: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Availability > rows[i-1].Availability {
			t.Fatalf("availability rose with more speakers: %+v then %+v", rows[i-1], rows[i])
		}
	}
	if last := rows[len(rows)-1]; last.Availability != 0 {
		t.Fatalf("speaker per container should zero the facility: %+v", last)
	}
	rep := FleetReport(rows).String()
	if !strings.Contains(rep, "Availability") {
		t.Fatalf("report rendering:\n%s", rep)
	}
}

func TestFleetOverProvisionedSpeakersClampToContainers(t *testing.T) {
	// Regression: Speakers > Containers used to leave the extra speakers
	// in the spec, so downstream consumers (and the c < Speakers distance
	// branch under any future geometry change) miscounted. An attacker
	// with more speakers than containers is exactly a speaker-per-container
	// attacker.
	base := FleetSpec{Containers: 4, DrivesPerContainer: 5}
	exact := base
	exact.Speakers = base.Containers
	over := base
	over.Speakers = base.Containers + 3
	want, err := FleetAvailability(exact)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FleetAvailability(over)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.Speakers != base.Containers {
		t.Fatalf("spec speakers = %d, want clamped to %d", got.Spec.Speakers, base.Containers)
	}
	if got.DrivesFaulting != want.DrivesFaulting || got.Availability != want.Availability {
		t.Fatalf("over-provisioned attacker %+v != exact attacker %+v", got, want)
	}
}

func TestFleetTightSpacingLeaksAcrossContainers(t *testing.T) {
	// If containers sit very close together, one speaker's spill-over
	// reaches the neighbour too.
	r, err := FleetAvailability(FleetSpec{
		Containers: 4, DrivesPerContainer: 5, Speakers: 1,
		ContainerSpacing: 4 * units.Centimeter,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.DrivesFaulting <= 5 {
		t.Fatalf("4 cm spacing should leak into the next container: %+v", r)
	}
}

// TestFleetLayoutDistancesMatchHopModel pins the regression baseline for
// the layout-based refactor: in a line layout the geometric distance
// from container c to the nearest of k co-located speakers is exactly
// the old hop-count model's (c−k+1)·spacing, with targeted containers
// clamped to the 1 cm point-blank geometry.
func TestFleetLayoutDistancesMatchHopModel(t *testing.T) {
	const containers, speakers = 6, 2
	spacing := 2 * units.Meter
	lay := cluster.LineLayout(containers, spacing).
		WithSpeakersAt(sig.NewTone(650*units.Hz), 0, 1)
	for c := 0; c < containers; c++ {
		got, ok := lay.NearestSpeakerDistance(c)
		if !ok {
			t.Fatalf("container %d: no speakers in layout", c)
		}
		want := cluster.PointBlank
		if c >= speakers {
			want = spacing * units.Distance(c-speakers+1)
		}
		if got != want {
			t.Fatalf("container %d: layout distance %v, hop model %v", c, got, want)
		}
	}
}
