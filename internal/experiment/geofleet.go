package experiment

import (
	"context"
	"fmt"
	"time"

	"deepnote/internal/cluster"
	"deepnote/internal/fleet"
	"deepnote/internal/metrics"
	"deepnote/internal/parallel"
	"deepnote/internal/report"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// GeoFleetSpec is the geo-distributed campaign: a multi-facility fleet
// serves one global workload twice — once with attack-aware placement,
// once with the naive locality-greedy layout — while an acoustic blast
// silences a run of containers at one site and the WAN degrades under
// injected faults. The pair of runs shares every seed, so the only
// variable is where the shards live.
type GeoFleetSpec struct {
	// Sites and ContainersPerSite size the fleet (defaults 4, 8).
	Sites, ContainersPerSite int
	// DataShards/ParityShards set the k-of-n code (defaults 4+4 — a site
	// allotment of ceil(n/S) shards must fit inside the parity budget for
	// attack-aware placement to survive a facility loss).
	DataShards, ParityShards int
	// Objects and ObjectSize size the keyspace (defaults 48, 8 KiB).
	Objects, ObjectSize int
	// Spacing is the container pitch (default 2 m); Freq the attack tone
	// (default 650 Hz).
	Spacing units.Distance
	Freq    units.Frequency
	// Blast is the attack's footprint: that many contiguous containers of
	// site 0, starting at container 0, each get a point-blank speaker
	// (default 5 — one more than the parity budget, so every naive stripe
	// homed on the attacked site is erased).
	Blast int
	// AttackStart/AttackStop key the speakers (and the WAN faults) on
	// over [AttackStart, AttackStop) of the serving timeline (defaults
	// 500 ms, 2 s).
	AttackStart, AttackStop time.Duration
	// Deadline is the per-request budget (default 2 s — blasted drives
	// fail slowly, so failover needs room to outlast the grinding waves).
	Deadline time.Duration
	// Faults are the injected WAN faults; nil means the standard pair —
	// the attacked site's link to its nearest peer flaps and an unrelated
	// pair browns out ×4, both over the attack window.
	Faults []fleet.Fault
	// Requests, Rate, and ReadFraction shape the workload (defaults 800
	// requests at 300 req/s, 90% reads — busy but below the drives'
	// saturation knee, so the deadline budget is spent on failover, not
	// on queueing backlog).
	Requests     int
	Rate         float64
	ReadFraction *float64
	// Seed seeds the infrastructure — per-node engines and WAN jitter
	// (default 1). The request schedule itself is the traffic tier's
	// reference workload, held fixed so the placement comparison varies
	// only the machinery under it.
	Seed int64
	// Workers bounds the placement fan-out (≤ 0 = one per CPU); results
	// are identical for any worker count.
	Workers int
	// CellWorkers bounds the node fan-out inside each fleet (default 1);
	// results never depend on it.
	CellWorkers int
	// Metrics receives engine and per-layer counters when non-nil.
	Metrics *metrics.Registry
}

func (s GeoFleetSpec) withDefaults() GeoFleetSpec {
	if s.Sites <= 0 {
		s.Sites = 4
	}
	if s.ContainersPerSite <= 0 {
		s.ContainersPerSite = 8
	}
	if s.DataShards <= 0 {
		s.DataShards = 4
	}
	if s.ParityShards <= 0 {
		s.ParityShards = 4
	}
	if s.Objects <= 0 {
		s.Objects = 48
	}
	if s.ObjectSize <= 0 {
		s.ObjectSize = 8 << 10
	}
	if s.Spacing == 0 {
		s.Spacing = 2 * units.Meter
	}
	if s.Freq == 0 {
		s.Freq = 650 * units.Hz
	}
	if s.Blast <= 0 {
		s.Blast = 5
	}
	if s.Blast > s.ContainersPerSite {
		s.Blast = s.ContainersPerSite
	}
	if s.AttackStart <= 0 {
		s.AttackStart = 500 * time.Millisecond
	}
	if s.AttackStop <= s.AttackStart {
		s.AttackStop = 2 * time.Second
	}
	if s.Deadline <= 0 {
		s.Deadline = 2 * time.Second
	}
	if s.Requests <= 0 {
		s.Requests = 800
	}
	if s.Rate <= 0 {
		s.Rate = 300
	}
	if s.ReadFraction == nil {
		s.ReadFraction = cluster.Ptr(0.9)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.CellWorkers <= 0 {
		s.CellWorkers = 1
	}
	return s
}

// geoFleetSiteNames label the facilities in reports.
var geoFleetSiteNames = []string{"pacific", "atlantic", "baltic", "coral", "nordic", "tasman"}

// geoFleetFaults is the standard concurrent-WAN-trouble pair.
func (s GeoFleetSpec) geoFleetFaults() []fleet.Fault {
	if s.Faults != nil {
		return s.Faults
	}
	window := s.AttackStop - s.AttackStart
	faults := []fleet.Fault{
		{Kind: fleet.LinkFlap, A: 0, B: 1 % s.Sites, Start: s.AttackStart, Duration: window},
	}
	if s.Sites >= 4 {
		faults = append(faults, fleet.Fault{
			Kind: fleet.Brownout, A: 2, B: 3, Start: s.AttackStart, Duration: window, Factor: 4})
	}
	return faults
}

// GeoFleetResult holds both placements' full ledgers plus the
// attack-window cut where the headline gap lives.
type GeoFleetResult struct {
	Spec         GeoFleetSpec
	Aware, Naive fleet.Result
	// AwareAttack and NaiveAttack re-cut each ledger over exactly
	// [AttackStart, AttackStop).
	AwareAttack, NaiveAttack fleet.WindowStats
}

// GeoFleetRun serves the identical seeded workload under both placements
// while the facility attack and WAN faults play out. The two cells fan
// out over the parallel engine; every seed is shared across cells, so
// the placement policy is the only difference — and the whole result is
// byte-identical at any worker count.
func GeoFleetRun(spec GeoFleetSpec) (GeoFleetResult, error) {
	spec = spec.withDefaults()
	placements := []fleet.Placement{fleet.PlacementAttackAware, fleet.PlacementNaive}
	runs, err := parallel.RunObserved(context.Background(), placements, spec.Workers, spec.Metrics,
		func(_ context.Context, _ int, p fleet.Placement) (fleet.Result, error) {
			tone := sig.NewTone(spec.Freq)
			blast := make([]int, spec.Blast)
			for i := range blast {
				blast[i] = i
			}
			sites := make([]fleet.SiteSpec, spec.Sites)
			for i := range sites {
				name := fmt.Sprintf("site-%d", i)
				if i < len(geoFleetSiteNames) {
					name = geoFleetSiteNames[i]
				}
				lay := cluster.LineLayout(spec.ContainersPerSite, spec.Spacing)
				if i == 0 {
					lay = lay.WithSpeakersAt(tone, blast...)
				}
				sites[i] = fleet.SiteSpec{Name: name, Layout: lay}
			}
			f, err := fleet.New(fleet.Config{
				Sites:        sites,
				DataShards:   spec.DataShards,
				ParityShards: spec.ParityShards,
				Objects:      spec.Objects,
				ObjectSize:   spec.ObjectSize,
				Placement:    p,
				WAN:          fleet.WANConfig{Faults: spec.geoFleetFaults()},
				Resilience:   fleet.Resilience{Deadline: spec.Deadline},
				Seed:         cluster.Ptr(spec.Seed),
				Workers:      spec.CellWorkers,
			})
			if err != nil {
				return fleet.Result{}, err
			}
			if err := f.Preload(); err != nil {
				return fleet.Result{}, err
			}
			on := make([]bool, spec.Blast)
			for i := range on {
				on[i] = true
			}
			if err := f.SetAttack(0, []cluster.ScheduleStep{
				{At: spec.AttackStart, Active: on},
				{At: spec.AttackStop, Active: nil},
			}); err != nil {
				return fleet.Result{}, err
			}
			res, err := f.Serve(fleet.TrafficSpec{
				Requests:     spec.Requests,
				Rate:         spec.Rate,
				ReadFraction: spec.ReadFraction,
			})
			if err != nil {
				return fleet.Result{}, err
			}
			f.PublishMetrics(spec.Metrics)
			spec.Metrics.Add("experiment.geofleet_cells", 1)
			return res, nil
		})
	if err != nil {
		return GeoFleetResult{}, err
	}
	out := GeoFleetResult{Spec: spec, Aware: runs[0], Naive: runs[1]}
	out.AwareAttack = out.Aware.Window(spec.AttackStart, spec.AttackStop)
	out.NaiveAttack = out.Naive.Window(spec.AttackStart, spec.AttackStop)
	return out, nil
}

// GeoFleetReport renders the aware-vs-naive comparison: whole-run and
// attack-window availability and time-to-verdict tails, plus the
// robustness machinery each placement leaned on.
func GeoFleetReport(res GeoFleetResult) *report.Table {
	tb := report.NewTable(
		"Geo-distributed fleet under facility attack + WAN faults (attack-aware vs naive placement)",
		"Placement", "GET avail", "PUT avail", "P99 ms",
		"Attack GET avail", "Attack P99 ms",
		"Waves", "Hedged", "Shed", "WAN drops", "Opens", "Corrupt")
	row := func(name string, r fleet.Result, w fleet.WindowStats) {
		tb.AddRow(
			name,
			fmt.Sprintf("%.2f%%", r.GetAvailability()*100),
			fmt.Sprintf("%.2f%%", r.PutAvailability()*100),
			fmt.Sprintf("%.1f", float64(r.P99)/1e6),
			fmt.Sprintf("%.2f%%", w.GetAvailability()*100),
			fmt.Sprintf("%.1f", float64(w.P99)/1e6),
			fmt.Sprintf("%d", r.FailoverWaves),
			fmt.Sprintf("%d", r.HedgedRequests),
			fmt.Sprintf("%d", r.ShedRequests),
			fmt.Sprintf("%d", r.WANDrops),
			fmt.Sprintf("%d", r.BreakerOpens),
			fmt.Sprintf("%d", r.CorruptReads))
	}
	row(fleet.PlacementAttackAware.String(), res.Aware, res.AwareAttack)
	row(fleet.PlacementNaive.String(), res.Naive, res.NaiveAttack)
	return tb
}
