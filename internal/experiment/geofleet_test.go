package experiment

import (
	"reflect"
	"strings"
	"testing"

	"deepnote/internal/metrics"
)

// TestGeoFleetAwareBeatsNaive is the campaign's acceptance: under the
// default facility attack with concurrent WAN faults, attack-aware
// placement holds strictly higher GET availability and a strictly lower
// time-to-verdict P99 than the naive layout — with zero corrupt reads on
// either side.
func TestGeoFleetAwareBeatsNaive(t *testing.T) {
	res, err := GeoFleetRun(GeoFleetSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aware.CorruptReads != 0 || res.Naive.CorruptReads != 0 {
		t.Fatalf("corrupt reads: aware=%d naive=%d", res.Aware.CorruptReads, res.Naive.CorruptReads)
	}
	if res.NaiveAttack.GetAvailability() >= 0.999 {
		t.Fatalf("attack too weak: naive attack-window availability %.4f", res.NaiveAttack.GetAvailability())
	}
	if a, n := res.AwareAttack.GetAvailability(), res.NaiveAttack.GetAvailability(); a <= n {
		t.Fatalf("aware attack-window availability %.4f not above naive %.4f", a, n)
	}
	if res.AwareAttack.P99 >= res.NaiveAttack.P99 {
		t.Fatalf("aware attack-window P99 %v not below naive %v", res.AwareAttack.P99, res.NaiveAttack.P99)
	}
	if a, n := res.Aware.GetAvailability(), res.Naive.GetAvailability(); a <= n {
		t.Fatalf("aware whole-run availability %.4f not above naive %.4f", a, n)
	}
	if res.Aware.FailoverWaves == 0 || res.Naive.WANDrops == 0 {
		t.Fatalf("machinery never engaged: waves=%d drops=%d", res.Aware.FailoverWaves, res.Naive.WANDrops)
	}
	tbl := GeoFleetReport(res).String()
	for _, want := range []string{"attack-aware", "naive", "Attack GET avail"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("report missing %q:\n%s", want, tbl)
		}
	}
}

// TestGeoFleetDeterministicAcrossWorkers: the full two-placement result —
// every counter, every per-request outcome — is byte-identical whether
// the cells and their fleets run serially or fanned out.
func TestGeoFleetDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers, cellWorkers int) GeoFleetResult {
		res, err := GeoFleetRun(GeoFleetSpec{Workers: workers, CellWorkers: cellWorkers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1, 1)
	res := run(2, 8)
	// The echoed Spec legitimately differs in its worker fields; every
	// simulation output must not.
	base.Spec, res.Spec = GeoFleetSpec{}, GeoFleetSpec{}
	if !reflect.DeepEqual(base, res) {
		t.Fatal("geofleet diverged across worker counts")
	}
}

// TestGeoFleetPublishesMetrics: the campaign feeds the shared registry
// from both cells.
func TestGeoFleetPublishesMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	if _, err := GeoFleetRun(GeoFleetSpec{Requests: 60, Rate: 2000, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["experiment.geofleet_cells"] != 2 {
		t.Fatalf("geofleet_cells = %d, want 2", snap.Counters["experiment.geofleet_cells"])
	}
	if snap.Counters["fleet.requests"] != 120 {
		t.Fatalf("fleet.requests = %d, want 120 (both placements)", snap.Counters["fleet.requests"])
	}
}
