package experiment

import (
	"bytes"
	"fmt"

	"deepnote/internal/core"
	"deepnote/internal/report"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// Integrity demonstrates the silent-corruption surface the paper's
// introduction attributes to acoustic interference ("availability and
// integrity"): during a *marginal* attack — too weak to block writes, so
// nothing looks wrong — successful writes squeeze neighboring tracks, and
// data written earlier quietly rots. Availability monitoring alone would
// never notice.
type Integrity struct {
	Scenario core.Scenario
	Freq     units.Frequency
	// Distance puts the drive in the marginal zone (default 18 cm:
	// amplitude just under the write gate at 650 Hz, Scenario 2).
	Distance units.Distance
	// CorruptionProb is the per-marginal-write squeeze probability
	// (default 0.05).
	CorruptionProb float64
	// Blocks is the size of the victim data set in 4 KiB blocks
	// (default 256).
	Blocks int
	Seed   int64
}

func (s Integrity) withDefaults() Integrity {
	if s.Scenario == 0 {
		s.Scenario = core.Scenario2
	}
	if s.Freq == 0 {
		s.Freq = 650 * units.Hz
	}
	if s.Distance == 0 {
		s.Distance = 18 * units.Centimeter
	}
	if s.CorruptionProb == 0 {
		s.CorruptionProb = 0.05
	}
	if s.Blocks == 0 {
		s.Blocks = 256
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// IntegrityResult reports the damage.
type IntegrityResult struct {
	Spec Integrity
	// WritesAttempted and WritesFailed describe the attack-phase
	// workload; a marginal attack has few or no failures.
	WritesAttempted, WritesFailed int
	// CorruptedBlocks of TotalBlocks in the victim data set differ from
	// what was written.
	CorruptedBlocks, TotalBlocks int
}

// Run executes the experiment: write a known data set quietly, attack at
// the marginal distance while writing the neighboring track, silence, and
// audit the original data set.
func (s Integrity) Run() (IntegrityResult, error) {
	s = s.withDefaults()
	tb, err := core.NewTestbed(s.Scenario, s.Distance)
	if err != nil {
		return IntegrityResult{}, err
	}
	tb.DriveModel.AdjacentCorruptionProb = s.CorruptionProb
	rig, err := core.NewRigFromTestbed(tb, s.Seed)
	if err != nil {
		return IntegrityResult{}, err
	}

	const blockSize = 4096
	track := tb.DriveModel.TrackBytes
	victimBase := 4 * track

	pattern := func(i int) []byte {
		b := make([]byte, blockSize)
		for j := range b {
			b[j] = byte(i*31 + j)
		}
		return b
	}

	// Phase 1: quiet write of the victim data set.
	for i := 0; i < s.Blocks; i++ {
		if _, err := rig.Disk.WriteAt(pattern(i), victimBase+int64(i*blockSize)); err != nil {
			return IntegrityResult{}, fmt.Errorf("experiment: seeding victim data: %w", err)
		}
	}

	// Phase 2: marginal attack while a workload writes the next track
	// over (physically adjacent to the victim's).
	res := IntegrityResult{Spec: s, TotalBlocks: s.Blocks}
	rig.ApplyTone(sig.NewTone(s.Freq))
	writerBase := victimBase + track
	for i := 0; i < s.Blocks; i++ {
		res.WritesAttempted++
		if _, err := rig.Disk.WriteAt(pattern(i), writerBase+int64(i*blockSize)); err != nil {
			res.WritesFailed++
		}
	}
	rig.Silence()

	// Phase 3: audit the victim data set.
	buf := make([]byte, blockSize)
	for i := 0; i < s.Blocks; i++ {
		if _, err := rig.Disk.ReadAt(buf, victimBase+int64(i*blockSize)); err != nil {
			res.CorruptedBlocks++
			continue
		}
		if !bytes.Equal(buf, pattern(i)) {
			res.CorruptedBlocks++
		}
	}
	return res, nil
}

// Report renders the result.
func (r IntegrityResult) Report() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Integrity attack: marginal tone at %v, %v", r.Spec.Freq, r.Spec.Distance),
		"Metric", "Value")
	tb.AddRow("attack-phase writes", fmt.Sprintf("%d (%d failed)", r.WritesAttempted, r.WritesFailed))
	tb.AddRow("victim blocks audited", fmt.Sprintf("%d", r.TotalBlocks))
	tb.AddRow("victim blocks corrupted", fmt.Sprintf("%d (%.1f%%)",
		r.CorruptedBlocks, 100*float64(r.CorruptedBlocks)/float64(r.TotalBlocks)))
	return tb
}
