package experiment

import (
	"strings"
	"testing"

	"deepnote/internal/units"
)

func TestIntegrityMarginalAttackCorruptsSilently(t *testing.T) {
	res, err := Integrity{CorruptionProb: 0.1}.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Marginal means the attack itself looks nearly harmless...
	if res.WritesFailed > res.WritesAttempted/4 {
		t.Fatalf("attack not marginal: %d/%d writes failed", res.WritesFailed, res.WritesAttempted)
	}
	// ...while previously written data rots.
	if res.CorruptedBlocks == 0 {
		t.Fatal("no corruption observed")
	}
	if res.CorruptedBlocks >= res.TotalBlocks {
		t.Fatal("total corruption is not the marginal-attack signature")
	}
	rep := res.Report().String()
	if !strings.Contains(rep, "corrupted") {
		t.Fatalf("report rendering:\n%s", rep)
	}
}

func TestIntegrityNoCorruptionWithoutMechanism(t *testing.T) {
	res, err := Integrity{CorruptionProb: -1}.Run() // negative disables (prob < 0 never fires)
	if err != nil {
		t.Fatal(err)
	}
	if res.CorruptedBlocks != 0 {
		t.Fatalf("corruption without the mechanism: %d blocks", res.CorruptedBlocks)
	}
}

func TestIntegrityNoCorruptionAtStandoff(t *testing.T) {
	// At 25 cm the amplitude is below the marginal zone: writes are
	// clean and nothing rots even with the mechanism armed.
	res, err := Integrity{CorruptionProb: 0.5, Distance: 40 * units.Centimeter}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CorruptedBlocks != 0 {
		t.Fatalf("standoff corruption: %d blocks", res.CorruptedBlocks)
	}
	if res.WritesFailed != 0 {
		t.Fatalf("standoff write failures: %d", res.WritesFailed)
	}
}
