package experiment

import (
	"fmt"

	"deepnote/internal/acoustics"
	"deepnote/internal/core"
	"deepnote/internal/enclosure"
	"deepnote/internal/report"
	"deepnote/internal/units"
	"deepnote/internal/water"
)

// NatickRow compares enclosure classes against attacker tiers: the §5
// "Data Center Structure and HDD types" question — does a production
// steel vessel change the attack calculus?
type NatickRow struct {
	Enclosure string
	Tier      acoustics.SourceClass
	// CriticalSPL is the incident level that faults writes at 650 Hz.
	CriticalSPL units.SPL
	// MaxRange is the tier's standoff range against this enclosure in
	// seawater; Unreachable when even point-blank falls short.
	MaxRange    units.Distance
	Unreachable bool
}

// waterAtNatick returns the open-sea condition at Microsoft's ≈36 m test
// deployment depth.
func waterAtNatick() water.Medium { return water.Seawater(36) }

// natickTestbed builds a testbed with the given container, tower-mounted
// drive, at 1 cm.
func natickTestbed(c enclosure.Container) (*core.Testbed, error) {
	tb, err := core.NewTestbed(core.Scenario2, 1*units.Centimeter)
	if err != nil {
		return nil, err
	}
	tb.Assembly.Container = c
	return tb, nil
}

// NatickAnalysis computes the enclosure × attacker-tier matrix at 650 Hz
// in open seawater at Natick's ≈36 m depth.
func NatickAnalysis() ([]NatickRow, error) {
	containers := []enclosure.Container{
		enclosure.PlasticContainer(),
		enclosure.AluminumContainer(),
		enclosure.NatickVessel(),
	}
	sea := waterAtNatick()
	var rows []NatickRow
	for _, c := range containers {
		tb, err := natickTestbed(c)
		if err != nil {
			return nil, err
		}
		crit, ok := tb.CriticalIncidentSPL(650)
		if !ok {
			return nil, fmt.Errorf("experiment: no critical SPL for %s", c.Name)
		}
		for _, tier := range acoustics.AttackerTiers() {
			row := NatickRow{Enclosure: c.Name, Tier: tier, CriticalSPL: crit}
			d, reachable := acoustics.MaxAttackRange(tier.Level, tier.RefDist, crit, 650, sea, SearchCap)
			row.MaxRange = d
			row.Unreachable = !reachable
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// NatickReport renders the matrix.
func NatickReport(rows []NatickRow) *report.Table {
	tb := report.NewTable(
		"Enclosure hardening vs attacker tier (650 Hz, seawater at 36 m)",
		"Enclosure", "Attacker", "Critical SPL", "Max standoff")
	for _, r := range rows {
		rng := r.MaxRange.String()
		if r.Unreachable {
			rng = "unreachable"
		} else if r.MaxRange >= SearchCap {
			rng = ">= " + SearchCap.String()
		}
		tb.AddRow(r.Enclosure, r.Tier.Name,
			fmt.Sprintf("%.0f dB re 1µPa", r.CriticalSPL.DB), rng)
	}
	return tb
}
