package experiment

import (
	"strings"
	"testing"

	"deepnote/internal/enclosure"
	"deepnote/internal/units"
)

func TestNatickVesselValid(t *testing.T) {
	if err := enclosure.NatickVessel().Validate(); err != nil {
		t.Fatal(err)
	}
	steel := enclosure.PressureVesselSteel()
	if steel.SurfaceDensity() <= enclosure.Aluminum6061().SurfaceDensity()*10 {
		t.Fatal("pressure vessel should be an order of magnitude heavier per area")
	}
}

func TestNatickAnalysisShape(t *testing.T) {
	rows, err := NatickAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 3 enclosures × 3 tiers
		t.Fatalf("rows = %d", len(rows))
	}
	find := func(enc, tier string) NatickRow {
		for _, r := range rows {
			if strings.Contains(r.Enclosure, enc) && strings.Contains(r.Tier.Name, tier) {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", enc, tier)
		return NatickRow{}
	}
	// The steel vessel demands a much louder incident field than the
	// plastic test container.
	plastic := find("plastic", "pool")
	steel := find("steel", "pool")
	if steel.CriticalSPL.DB < plastic.CriticalSPL.DB+10 {
		t.Fatalf("steel critical %.0f dB should far exceed plastic %.0f dB",
			steel.CriticalSPL.DB, plastic.CriticalSPL.DB)
	}
	// A pool speaker cannot meaningfully threaten the steel vessel...
	if !steel.Unreachable && steel.MaxRange.Centimeters() > 10 {
		t.Fatalf("pool speaker vs steel: range %v, want negligible", steel.MaxRange)
	}
	// ...but sonar-class equipment still can, from distance.
	sonar := find("steel", "military")
	if sonar.Unreachable || sonar.MaxRange.Meters() < 10 {
		t.Fatalf("sonar vs steel: %v (unreachable=%v), want substantial range",
			sonar.MaxRange, sonar.Unreachable)
	}
	rep := NatickReport(rows).String()
	if !strings.Contains(rep, "steel pressure vessel") {
		t.Fatalf("report rendering:\n%s", rep)
	}
}

func TestNatickVesselShrinksVulnerableBand(t *testing.T) {
	tb, err := natickTestbed(enclosure.NatickVessel())
	if err != nil {
		t.Fatal(err)
	}
	// Even point blank at full power, the steel vessel keeps the drive
	// below the write-fault threshold across most of the band; count the
	// vulnerable fraction and require it to be far below the plastic
	// container's.
	vulnSteel := 0
	for f := 100; f <= 4000; f += 50 {
		if tb.OffTrackRatio(float64AsFreq(f)) >= 1 {
			vulnSteel++
		}
	}
	plasticTB, err := natickTestbed(enclosure.PlasticContainer())
	if err != nil {
		t.Fatal(err)
	}
	vulnPlastic := 0
	for f := 100; f <= 4000; f += 50 {
		if plasticTB.OffTrackRatio(float64AsFreq(f)) >= 1 {
			vulnPlastic++
		}
	}
	if vulnSteel*3 > vulnPlastic {
		t.Fatalf("steel vulnerable points %d, plastic %d: steel should shrink the band at least 3x",
			vulnSteel, vulnPlastic)
	}
}

func float64AsFreq(f int) (out units.Frequency) { return units.Frequency(f) }
