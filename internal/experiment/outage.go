package experiment

import (
	"fmt"
	"time"

	"deepnote/internal/core"
	"deepnote/internal/metrics"
	"deepnote/internal/report"
	"deepnote/internal/sig"
	"deepnote/internal/trace"
	"deepnote/internal/units"
)

// ControlledOutage realizes the paper's §3 first attacker objective: a
// controlled throughput loss of a victim drive for a specific amount of
// time, to induce application delays — then full recovery. The result is
// the throughput timeline a monitoring system would record.
type ControlledOutage struct {
	Scenario core.Scenario
	Freq     units.Frequency
	Distance units.Distance
	// Before, During, After are the phase durations.
	Before, During, After time.Duration
	// Bucket is the timeline resolution.
	Bucket time.Duration
	Seed   int64
	// Metrics, when set, is bound to the rig's virtual clock (snapshots
	// stamp virtual seconds) and receives the drive/disk counters plus
	// phase-mean gauges (nil = uninstrumented).
	Metrics *metrics.Registry
}

func (c ControlledOutage) withDefaults() ControlledOutage {
	if c.Scenario == 0 {
		c.Scenario = core.Scenario2
	}
	if c.Freq == 0 {
		c.Freq = 650 * units.Hz
	}
	if c.Distance == 0 {
		c.Distance = 1 * units.Centimeter
	}
	if c.Before == 0 {
		c.Before = 5 * time.Second
	}
	if c.During == 0 {
		c.During = 10 * time.Second
	}
	if c.After == 0 {
		c.After = 5 * time.Second
	}
	if c.Bucket == 0 {
		c.Bucket = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// OutageResult is the measured timeline.
type OutageResult struct {
	Spec   ControlledOutage
	Points []trace.Point
	// BeforeMBps, DuringMBps, AfterMBps are phase means.
	BeforeMBps, DuringMBps, AfterMBps float64
}

// Run executes the outage: a continuously writing workload, with the tone
// keyed on for exactly the During window.
func (c ControlledOutage) Run() (OutageResult, error) {
	c = c.withDefaults()
	rig, err := core.NewRig(c.Scenario, c.Distance, c.Seed)
	if err != nil {
		return OutageResult{}, err
	}
	// Bind the registry to this rig's virtual clock up front, so the final
	// snapshot stamps the experiment's elapsed virtual time.
	c.Metrics.SetClock(rig.Clock)
	meter := trace.NewMeter(rig.Clock, c.Bucket)
	buf := make([]byte, 4096)
	var off int64
	phaseEnd := func(d time.Duration) time.Time { return rig.Clock.Now().Add(d) }

	writeUntil := func(deadline time.Time) {
		for rig.Clock.Now().Before(deadline) {
			if _, err := rig.Disk.WriteAt(buf, off%(1<<24)); err == nil {
				meter.Add(4096)
			}
			off += 4096
		}
	}

	writeUntil(phaseEnd(c.Before))
	rig.ApplyTone(sig.NewTone(c.Freq))
	writeUntil(phaseEnd(c.During))
	rig.Silence()
	writeUntil(phaseEnd(c.After))

	res := OutageResult{Spec: c, Points: meter.Buckets()}
	res.BeforeMBps = meter.MeanMBps(0, c.Before)
	res.DuringMBps = meter.MeanMBps(c.Before, c.Before+c.During)
	res.AfterMBps = meter.MeanMBps(c.Before+c.During, c.Before+c.During+c.After)
	if c.Metrics != nil {
		rig.Drive.PublishMetrics(c.Metrics)
		rig.Disk.PublishMetrics(c.Metrics)
		c.Metrics.Add("experiment.outages", 1)
		c.Metrics.MaxGauge("experiment.outage_before_mbps", res.BeforeMBps)
		c.Metrics.MaxGauge("experiment.outage_during_mbps", res.DuringMBps)
		c.Metrics.MaxGauge("experiment.outage_after_mbps", res.AfterMBps)
	}
	return res, nil
}

// Chart renders the timeline.
func (r OutageResult) Chart() *report.Chart {
	s := report.Series{Name: "write MB/s"}
	for _, p := range r.Points {
		s.X = append(s.X, p.T.Seconds())
		s.Y = append(s.Y, p.V)
	}
	return &report.Chart{
		Title: fmt.Sprintf("Controlled outage: %v keyed for %.0fs (attack window %.0f-%.0fs)",
			r.Spec.Freq, r.Spec.During.Seconds(),
			r.Spec.Before.Seconds(), (r.Spec.Before + r.Spec.During).Seconds()),
		XLabel: "time (s)",
		YLabel: "MB/s",
		Series: []report.Series{s},
	}
}
