package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestControlledOutageTimeline(t *testing.T) {
	res, err := ControlledOutage{
		Before: 3 * time.Second,
		During: 4 * time.Second,
		After:  3 * time.Second,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BeforeMBps < 20 {
		t.Fatalf("pre-attack throughput %.1f, want ≈22.7", res.BeforeMBps)
	}
	if res.DuringMBps > 0.5 {
		t.Fatalf("attack-window throughput %.1f, want ≈0", res.DuringMBps)
	}
	if res.AfterMBps < 20 {
		t.Fatalf("post-attack throughput %.1f, want full recovery", res.AfterMBps)
	}
	// The timeline must cover all three phases.
	total := res.Points[len(res.Points)-1].T
	if total < 9*time.Second {
		t.Fatalf("timeline covers %v, want ≈10s", total)
	}
	chart := res.Chart().String()
	if !strings.Contains(chart, "Controlled outage") {
		t.Fatalf("chart rendering:\n%s", chart)
	}
}

func TestControlledOutageAtSafeFrequencyIsHarmless(t *testing.T) {
	res, err := ControlledOutage{
		Freq:   8000,
		Before: 2 * time.Second,
		During: 2 * time.Second,
		After:  2 * time.Second,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DuringMBps < 20 {
		t.Fatalf("8 kHz tone should be harmless, got %.1f MB/s", res.DuringMBps)
	}
}
