package experiment

import (
	"reflect"
	"testing"
	"time"

	"deepnote/internal/fio"
	"deepnote/internal/units"
)

// The engine's contract: every parallelized grid returns byte-identical
// results for any worker count. These tests pin that for the hot grids.

func TestFigure2DeterministicAcrossWorkerCounts(t *testing.T) {
	opts := Figure2Options{
		Start: 200 * units.Hz, End: 2000 * units.Hz, Step: 200 * units.Hz,
		JobRuntime: 100 * time.Millisecond,
	}
	run := func(workers int) Figure2Result {
		o := opts
		o.Workers = workers
		res, err := Figure2(fio.SeqWrite, o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: Figure2 diverges from serial run", workers)
		}
	}
}

func TestFleetDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := FleetSpec{Containers: 12, DrivesPerContainer: 5, Speakers: 3}
	run := func(workers int) FleetResult {
		s := spec
		s.Workers = workers
		r, err := FleetAvailability(s)
		if err != nil {
			t.Fatal(err)
		}
		// Spec.Workers necessarily differs between runs; blank it so
		// DeepEqual compares only the physics.
		r.Spec.Workers = 0
		return r
	}
	ref := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: fleet result diverges from serial run", workers)
		}
	}
}

func TestAblationDeterministicAcrossWorkerCounts(t *testing.T) {
	ref, err := AblationWorkers(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := AblationWorkers(1, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: ablation rows diverge from serial run", workers)
		}
	}
}
