package experiment

import (
	"fmt"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/core"
	"deepnote/internal/raid"
	"deepnote/internal/report"
	"deepnote/internal/sig"
	"deepnote/internal/simclock"
	"deepnote/internal/units"
)

// Redundancy answers the deployment question the paper's data-center
// framing raises: does RAID protect against an acoustic attack? The
// decisive variable is *placement*. Members sharing the attacked
// enclosure fail together (common mode); members split across enclosures
// — one attacked, one at standoff — keep the array serving.

// RedundancyRow is one (level, placement) cell.
type RedundancyRow struct {
	Level     raid.Level
	Placement string
	// Survived reports whether the array still served I/O through the
	// attack window.
	Survived bool
	// DegradedMembers counts members the array lost.
	DegradedMembers int
	// WriteMBps is the array's write throughput during the attack.
	WriteMBps float64
}

// redundancyRigs builds member rigs on one clock: either all inside the
// attacked container, or split with the second half in a container far
// from the speaker.
func redundancyRigs(n int, split bool, clock *simclock.Virtual, seed int64) ([]*core.Rig, error) {
	rigs := make([]*core.Rig, 0, n)
	for i := 0; i < n; i++ {
		d := 1 * units.Centimeter
		if split && i >= n/2 {
			// The second enclosure sits meters away: spreading alone
			// drops the tone far below every threshold.
			d = 5 * units.Meter
		}
		tb, err := core.NewTestbed(core.Scenario2, d)
		if err != nil {
			return nil, err
		}
		rig, err := core.NewRigWithClock(tb, clock, seed+int64(i))
		if err != nil {
			return nil, err
		}
		rigs = append(rigs, rig)
	}
	return rigs, nil
}

// Redundancy runs the placement × level matrix under a 650 Hz attack.
func Redundancy(seed int64) ([]RedundancyRow, error) {
	type cfg struct {
		level raid.Level
		n     int
		split bool
		name  string
	}
	cases := []cfg{
		{raid.RAID1, 2, false, "mirrors share enclosure"},
		{raid.RAID1, 2, true, "mirrors split across enclosures"},
		{raid.RAID5, 4, false, "stripe set shares enclosure"},
		{raid.RAID5, 4, true, "stripe set split across enclosures"},
	}
	tone := sig.NewTone(650 * units.Hz)
	var rows []RedundancyRow
	for _, c := range cases {
		clock := simclock.NewVirtual()
		rigs, err := redundancyRigs(c.n, c.split, clock, seed)
		if err != nil {
			return nil, err
		}
		devs := make([]blockdev.Device, 0, c.n)
		for _, r := range rigs {
			devs = append(devs, r.Disk)
		}
		arr, err := raid.New(c.level, devs)
		if err != nil {
			return nil, err
		}
		// Attack on: every rig applies the tone through its own path.
		for _, r := range rigs {
			r.ApplyTone(tone)
		}
		row := RedundancyRow{Level: c.level, Placement: c.name}
		buf := make([]byte, 4096)
		window := 2 * time.Second
		start := clock.Now()
		var bytesOK int64
		var off int64
		survived := true
		for clock.Now().Sub(start) < window {
			if _, err := arr.WriteAt(buf, off%(1<<22)); err != nil {
				survived = false
				// A dead array stops the loop: no progress possible.
				if !arr.Healthy() {
					break
				}
			} else {
				bytesOK += 4096
			}
			off += 4096
		}
		elapsed := clock.Now().Sub(start).Seconds()
		if elapsed > 0 {
			row.WriteMBps = float64(bytesOK) / 1e6 / elapsed
		}
		row.Survived = survived && arr.Healthy()
		row.DegradedMembers = len(arr.FailedMembers())
		rows = append(rows, row)
	}
	return rows, nil
}

// RedundancyReport renders the matrix.
func RedundancyReport(rows []RedundancyRow) *report.Table {
	tb := report.NewTable(
		"Redundancy placement under attack (650 Hz, full power)",
		"Array", "Placement", "Survived", "Members lost", "Write MB/s")
	for _, r := range rows {
		tb.AddRow(r.Level.String(), r.Placement,
			fmt.Sprintf("%v", r.Survived),
			fmt.Sprintf("%d", r.DegradedMembers),
			fmt.Sprintf("%.1f", r.WriteMBps))
	}
	return tb
}
