package experiment

import (
	"strings"
	"testing"
)

func TestRedundancyPlacementMatrix(t *testing.T) {
	rows, err := Redundancy(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	find := func(level, placement string) RedundancyRow {
		for _, r := range rows {
			if r.Level.String() == level && strings.Contains(r.Placement, placement) {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", level, placement)
		return RedundancyRow{}
	}

	// Shared enclosure: common-mode failure defeats both levels.
	if r := find("RAID-1", "share"); r.Survived {
		t.Errorf("co-located RAID-1 should die: %+v", r)
	}
	if r := find("RAID-5", "share"); r.Survived {
		t.Errorf("co-located RAID-5 should die: %+v", r)
	}

	// Split placement: RAID-1 keeps one healthy mirror and survives.
	split1 := find("RAID-1", "split")
	if !split1.Survived {
		t.Errorf("split RAID-1 should survive: %+v", split1)
	}
	if split1.WriteMBps <= 0 {
		t.Errorf("split RAID-1 should keep serving writes: %+v", split1)
	}
	if split1.DegradedMembers != 1 {
		t.Errorf("split RAID-1 should lose exactly the attacked mirror: %+v", split1)
	}

	// Split RAID-5 with half its members attacked loses 2 of 4: beyond
	// single-parity tolerance.
	split5 := find("RAID-5", "split")
	if split5.Survived {
		t.Errorf("split RAID-5 with two attacked members should still die: %+v", split5)
	}

	rep := RedundancyReport(rows).String()
	if !strings.Contains(rep, "RAID-1") || !strings.Contains(rep, "split") {
		t.Fatalf("report rendering:\n%s", rep)
	}
}
