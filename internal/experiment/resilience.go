package experiment

import (
	"context"
	"fmt"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/core"
	"deepnote/internal/detect"
	"deepnote/internal/faultinj"
	"deepnote/internal/jfs"
	"deepnote/internal/kvdb"
	"deepnote/internal/metrics"
	"deepnote/internal/osmodel"
	"deepnote/internal/parallel"
	"deepnote/internal/report"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// Resilience reruns the paper's §4.3 prolonged attack against a ladder of
// victim stacks: the bare paper victim (which crashes and stays down), the
// same stack under a watchdog (which reboots through journal replay, fsck
// and WAL recovery once the tone stops), and a hardened stack that also
// retries device I/O with backoff. An injected transient-fault burst before
// the attack shows the retry layer masking ordinary storage glitches that
// the bare stack surfaces as dmesg errors. The paper measures time-to-
// crash; this experiment adds the operations side: availability over the
// whole episode and mean time to recovery.
type Resilience struct {
	Scenario core.Scenario
	Freq     units.Frequency
	Distance units.Distance
	// Pre is the healthy lead-in; the injected fault burst fires inside it.
	Pre time.Duration
	// Attack is how long the tone is held (default 100 s — past the ≈81 s
	// Ubuntu time-to-crash).
	Attack time.Duration
	// Cooldown is the post-attack window in which recovery can happen.
	Cooldown time.Duration
	// SampleInterval is the availability sampling period (default 250 ms).
	SampleInterval time.Duration
	// Ambient is the benign soundscape the victim's tray sensor hears
	// throughout the episode (zero value = none).
	Ambient sig.Ambient
	// CrashThreshold overrides the OS crash threshold (default 80 s);
	// tests shrink it to keep virtual time short.
	CrashThreshold time.Duration
	Seed           int64
	// Workers bounds the config fan-out (≤ 0 = one per CPU). Results are
	// bit-identical for any worker count.
	Workers int
	// Metrics, when set, receives every layer's counters — including the
	// injected-fault and recovery-action counters (nil = uninstrumented).
	Metrics *metrics.Registry
}

func (r Resilience) withDefaults() Resilience {
	if r.Scenario == 0 {
		r.Scenario = core.Scenario2
	}
	if r.Freq == 0 {
		r.Freq = 650 * units.Hz
	}
	if r.Distance == 0 {
		r.Distance = 1 * units.Centimeter
	}
	if r.Pre == 0 {
		r.Pre = 10 * time.Second
	}
	if r.Attack == 0 {
		r.Attack = 100 * time.Second
	}
	if r.Cooldown == 0 {
		r.Cooldown = 60 * time.Second
	}
	if r.SampleInterval == 0 {
		r.SampleInterval = 250 * time.Millisecond
	}
	if r.CrashThreshold == 0 {
		r.CrashThreshold = 80 * time.Second
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	return r
}

// ResilienceRow is one stack configuration's episode outcome.
type ResilienceRow struct {
	Config string
	// Crashed reports whether the OS died during the episode; TimeToCrash
	// is measured from attack start.
	Crashed     bool
	TimeToCrash time.Duration
	// Recovered reports the stack was serving again by the end of the
	// cooldown; Reboots counts successful watchdog recoveries and MTTR is
	// the mean crash-to-recovery time.
	Recovered bool
	Reboots   int64
	MTTR      time.Duration
	// AvailabilityPct is the fraction of samples with a live OS.
	AvailabilityPct float64
	// BurstMasked reports whether the pre-attack injected fault burst was
	// fully absorbed (no page-in errors before the tone started).
	BurstMasked bool
	// Detected reports the spectral fingerprinter identified the attack
	// tone; DetectLatency is key-on to the first hostile verdict. Every
	// rung carries the same detection stack, so the ladder shows how far
	// ahead of the crash horizon the operator hears the attack.
	Detected      bool
	DetectLatency time.Duration
}

// resilienceConfig is one rung of the hardening ladder.
type resilienceConfig struct {
	name     string
	retries  bool
	watchdog bool
}

func resilienceConfigs() []resilienceConfig {
	return []resilienceConfig{
		{name: "bare", retries: false, watchdog: false},
		{name: "watchdog", retries: false, watchdog: true},
		{name: "hardened", retries: true, watchdog: true},
	}
}

// preBurst is the transient storage glitch injected before the attack: one
// second of certain I/O errors, well under the crash threshold.
func (r Resilience) preBurst() faultinj.Fault {
	return faultinj.Fault{
		Kind:     faultinj.TransientError,
		Start:    r.Pre / 2,
		Duration: time.Second,
	}
}

// resilienceRetryPolicy rides out the one-second injected burst: the
// cumulative backoff comfortably exceeds the burst window while staying
// inside the per-request budget.
func resilienceRetryPolicy() blockdev.RetryPolicy {
	return blockdev.RetryPolicy{
		MaxRetries:  8,
		BaseBackoff: 25 * time.Millisecond,
		MaxBackoff:  500 * time.Millisecond,
		Budget:      4 * time.Second,
	}
}

// runResilienceConfig runs one stack through pre → attack → cooldown.
func (r Resilience) runResilienceConfig(cfg resilienceConfig, seed int64) (ResilienceRow, error) {
	row := ResilienceRow{Config: cfg.name}
	rig, err := core.NewRig(r.Scenario, r.Distance, seed)
	if err != nil {
		return row, err
	}
	clock := rig.Clock

	// Device stack: acoustic drive → fault injector → (optional) retrier
	// → latency/error monitor outermost, so the detector sees exactly the
	// I/O behavior the OS sees.
	inj := faultinj.Wrap(rig.Disk, clock, seed, r.preBurst())
	var dev blockdev.Device = inj
	var retrier *blockdev.Retrier
	if cfg.retries {
		retrier = blockdev.NewRetrier(inj, clock, resilienceRetryPolicy())
		dev = retrier
	}
	mon, err := detect.NewMonitor(dev, clock, detect.Config{})
	if err != nil {
		return row, err
	}
	dev = mon

	// The spectral side: tray telemetry synthesized and classified in
	// lockstep with the sampling loop.
	fp, err := detect.NewFingerprinter(detect.FingerprintConfig{})
	if err != nil {
		return row, err
	}
	origin := clock.Now()
	fp.SetOrigin(origin)
	synth := detect.NewSynth(fp.SampleRate(), fp.WindowSamples(),
		detect.DefaultSensorSigma, parallel.SeedFor(seed, 1))
	winDur := fp.WindowDuration()
	maxSuspicion := 0.0

	if err := jfs.Mkfs(dev, jfs.MkfsOptions{Blocks: 1 << 17}); err != nil {
		return row, err
	}
	fs, err := jfs.Mount(dev, clock, jfs.Config{})
	if err != nil {
		return row, err
	}
	srvCfg := osmodel.Config{Seed: seed, CrashThreshold: r.CrashThreshold}
	srv, err := osmodel.Boot(fs, clock, srvCfg)
	if err != nil {
		return row, err
	}

	// The hardened stack also carries a key-value store whose WAL must
	// replay through the watchdog's recovery chain.
	var db *kvdb.DB
	if cfg.retries {
		db, err = kvdb.Open(fs, clock, kvdb.Options{Seed: seed})
		if err != nil {
			return row, err
		}
		for i := 0; i < 32; i++ {
			if err := db.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte("v")); err != nil {
				return row, err
			}
		}
	}

	var wd *osmodel.Watchdog
	if cfg.watchdog {
		wd = osmodel.NewWatchdog(dev, clock, srvCfg, osmodel.WatchdogConfig{
			OnRecover: func(newFS *jfs.FS) error {
				if db == nil {
					return nil
				}
				reopened, err := kvdb.Open(newFS, clock, kvdb.Options{Seed: seed})
				if err != nil {
					return err
				}
				db = reopened
				return nil
			},
		})
		wd.Adopt(srv, fs)
	}
	current := func() *osmodel.Server {
		if wd != nil {
			return wd.Server()
		}
		return srv
	}

	var total, up int64
	var crashedAt time.Time
	runPhase := func(d time.Duration) {
		deadline := clock.Now().Add(d)
		for clock.Now().Before(deadline) {
			clock.Advance(r.SampleInterval)
			current().Step()
			if wd != nil {
				wd.Step()
			}
			// Classify every telemetry window the step crossed.
			for !origin.Add(time.Duration(synth.Windows()+1) * winDur).After(clock.Now()) {
				fp.Feed(synth.Window(rig.Drive.Vibration(), r.Ambient))
			}
			if sus := mon.Suspicion(); sus > maxSuspicion {
				maxSuspicion = sus
			}
			total++
			crashed, _ := current().Crashed()
			if !crashed {
				up++
			} else if !row.Crashed {
				row.Crashed = true
				crashedAt = current().CrashedAt()
			}
		}
	}

	runPhase(r.Pre)
	burstErrors := current().PageInErrors + current().LogErrors
	row.BurstMasked = burstErrors == 0

	attackStart := clock.Now()
	rig.ApplyTone(sig.NewTone(r.Freq))
	runPhase(r.Attack)
	rig.Silence()
	runPhase(r.Cooldown)

	if row.Crashed {
		row.TimeToCrash = crashedAt.Sub(attackStart)
		if row.TimeToCrash < 0 {
			row.TimeToCrash = 0
		}
	}
	if crashed, _ := current().Crashed(); !crashed && row.Crashed {
		row.Recovered = true
	}
	if wd != nil {
		row.Reboots = wd.Reboots
		if wd.Reboots > 0 {
			row.MTTR = wd.Downtime / time.Duration(wd.Reboots)
		}
	}
	if total > 0 {
		row.AvailabilityPct = 100 * float64(up) / float64(total)
	}
	for _, det := range fp.Detections() {
		if !det.At.Before(attackStart) {
			row.Detected = true
			row.DetectLatency = det.At.Sub(attackStart)
			break
		}
	}

	r.publishConfig(cfg, rig, inj, retrier, fs, srv, wd, db, row, maxSuspicion)
	return row, nil
}

// publishConfig pushes one config's layer counters and outcome into the
// shared registry. Registry merges are commutative, so concurrent config
// tasks publish directly and the snapshot is identical at any worker
// count.
func (r Resilience) publishConfig(cfg resilienceConfig, rig *core.Rig, inj *faultinj.Device,
	retrier *blockdev.Retrier, fs *jfs.FS, srv *osmodel.Server, wd *osmodel.Watchdog, db *kvdb.DB,
	row ResilienceRow, maxSuspicion float64) {
	reg := r.Metrics
	if reg == nil {
		return
	}
	rig.Drive.PublishMetrics(reg)
	rig.Disk.PublishMetrics(reg)
	inj.PublishMetrics(reg)
	if retrier != nil {
		retrier.PublishMetrics(reg)
	}
	if wd != nil {
		wd.Server().PublishMetrics(reg)
		wd.PublishMetrics(reg)
		fs = wd.FS()
	} else {
		srv.PublishMetrics(reg)
	}
	fs.PublishMetrics(reg)
	if db != nil {
		db.PublishMetrics(reg)
	}
	prefix := "experiment.resilience." + cfg.name
	reg.Add(prefix+".runs", 1)
	if row.Crashed {
		reg.Add(prefix+".crashes", 1)
	}
	if row.Recovered {
		reg.Add(prefix+".recoveries", 1)
	}
	reg.Add(prefix+".reboots", row.Reboots)
	reg.MaxGauge(prefix+".availability_pct", row.AvailabilityPct)
	if row.Crashed {
		reg.MaxGauge(prefix+".time_to_crash_s", row.TimeToCrash.Seconds())
	}
	if row.MTTR > 0 {
		reg.MaxGauge(prefix+".mttr_s", row.MTTR.Seconds())
	}
	if row.Detected {
		reg.Add(prefix+".detections", 1)
		reg.MaxGauge(prefix+".detect_latency_s", row.DetectLatency.Seconds())
	}
	reg.MaxGauge(prefix+".max_suspicion", maxSuspicion)
}

// Run executes the hardening ladder, fanning the independent stack
// simulations over the worker pool.
func (r Resilience) Run() ([]ResilienceRow, error) {
	r = r.withDefaults()
	return parallel.RunObserved(context.Background(), resilienceConfigs(), r.Workers, r.Metrics,
		func(_ context.Context, i int, cfg resilienceConfig) (ResilienceRow, error) {
			return r.runResilienceConfig(cfg, parallel.SeedFor(r.Seed, i))
		})
}

// ResilienceReport renders the ladder.
func ResilienceReport(rows []ResilienceRow) *report.Table {
	tb := report.NewTable(
		"Prolonged attack vs hardening ladder (650 Hz, full power)",
		"Config", "Crashed", "TTC s", "Recovered", "Reboots", "MTTR s", "Avail %", "Burst masked", "Detect s")
	for _, r := range rows {
		ttc, mttr, det := "-", "-", "-"
		if r.Crashed {
			ttc = fmt.Sprintf("%.1f", r.TimeToCrash.Seconds())
		}
		if r.MTTR > 0 {
			mttr = fmt.Sprintf("%.1f", r.MTTR.Seconds())
		}
		if r.Detected {
			det = fmt.Sprintf("%.2f", r.DetectLatency.Seconds())
		}
		tb.AddRow(r.Config,
			fmt.Sprintf("%v", r.Crashed), ttc,
			fmt.Sprintf("%v", r.Recovered),
			fmt.Sprintf("%d", r.Reboots), mttr,
			fmt.Sprintf("%.1f", r.AvailabilityPct),
			fmt.Sprintf("%v", r.BurstMasked),
			det)
	}
	return tb
}
