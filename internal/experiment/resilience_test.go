package experiment

import (
	"encoding/json"
	"testing"
	"time"

	"deepnote/internal/metrics"
)

// testResilienceSpec shrinks the episode so the three-config ladder stays
// fast: a 12 s crash threshold inside a 30 s attack, with enough cooldown
// for the watchdog to reboot.
func testResilienceSpec(workers int, reg *metrics.Registry) Resilience {
	return Resilience{
		Pre:            6 * time.Second,
		Attack:         30 * time.Second,
		Cooldown:       25 * time.Second,
		CrashThreshold: 12 * time.Second,
		Workers:        workers,
		Metrics:        reg,
	}
}

func TestResilienceLadderOutcomes(t *testing.T) {
	rows, err := testResilienceSpec(1, nil).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]ResilienceRow{}
	for _, r := range rows {
		byName[r.Config] = r
	}

	bare := byName["bare"]
	if !bare.Crashed || bare.Recovered || bare.Reboots != 0 {
		t.Fatalf("bare stack must crash and stay down: %+v", bare)
	}
	// Time-to-crash tracks the crash threshold (the paper's ≈81 s scales
	// with the 80 s default; the test threshold is 12 s).
	if bare.TimeToCrash < 11*time.Second || bare.TimeToCrash > 20*time.Second {
		t.Fatalf("bare TTC = %v", bare.TimeToCrash)
	}
	if bare.BurstMasked {
		t.Fatal("bare stack has no retry layer; the injected burst must surface")
	}

	wd := byName["watchdog"]
	if !wd.Crashed || !wd.Recovered || wd.Reboots != 1 || wd.MTTR <= 0 {
		t.Fatalf("watchdog stack must crash once and recover: %+v", wd)
	}

	hard := byName["hardened"]
	if !hard.Recovered || !hard.BurstMasked {
		t.Fatalf("hardened stack must mask the burst and recover: %+v", hard)
	}
	if hard.AvailabilityPct <= bare.AvailabilityPct {
		t.Fatalf("hardening must buy availability: hardened %.1f%% vs bare %.1f%%",
			hard.AvailabilityPct, bare.AvailabilityPct)
	}

	// Every rung carries the fingerprinting stack, and the full-power tone
	// must be spectrally identified long before the crash threshold.
	for _, r := range rows {
		if !r.Detected {
			t.Fatalf("%s: attack tone never fingerprinted", r.Config)
		}
		if r.DetectLatency >= bare.TimeToCrash {
			t.Fatalf("%s: detection (%v) slower than the bare crash (%v)",
				r.Config, r.DetectLatency, bare.TimeToCrash)
		}
	}
}

func TestResilienceDeterministicAcrossWorkers(t *testing.T) {
	type run struct {
		rows []byte
		snap []byte
	}
	runAt := func(workers int) run {
		reg := metrics.NewRegistry()
		rows, err := testResilienceSpec(workers, reg).Run()
		if err != nil {
			t.Fatal(err)
		}
		rj, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		sj, err := json.Marshal(reg.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return run{rows: rj, snap: sj}
	}
	base := runAt(1)
	for _, workers := range []int{2, 8} {
		got := runAt(workers)
		if string(got.rows) != string(base.rows) {
			t.Fatalf("rows differ at workers=%d:\n%s\nvs\n%s", workers, got.rows, base.rows)
		}
		if string(got.snap) != string(base.snap) {
			t.Fatalf("metrics snapshot differs at workers=%d", workers)
		}
	}
}

func TestResilienceSnapshotShowsFaultsAndRecovery(t *testing.T) {
	// Acceptance: every injected fault and recovery action must be visible
	// in the deepnote-metrics snapshot.
	reg := metrics.NewRegistry()
	if _, err := testResilienceSpec(1, reg).Run(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, key := range []string{
		"faultinj.injected_read_errors",
		"blockdev.retry.requests",
		"blockdev.retry.recovered",
		"osmodel.watchdog.reboots",
		"osmodel.watchdog.replayed_tx",
		"experiment.resilience.bare.crashes",
		"experiment.resilience.hardened.recoveries",
	} {
		if _, ok := snap.Counters[key]; !ok {
			t.Fatalf("key %s missing from snapshot", key)
		}
	}
	if snap.Counters["faultinj.injected_read_errors"]+
		snap.Counters["faultinj.injected_write_errors"]+
		snap.Counters["faultinj.injected_flush_errors"] == 0 {
		t.Fatal("no injected faults recorded")
	}
	if snap.Counters["osmodel.watchdog.reboots"] < 2 {
		t.Fatalf("watchdog+hardened should both reboot: %d",
			snap.Counters["osmodel.watchdog.reboots"])
	}
}
