package experiment

import (
	"context"
	"fmt"

	"deepnote/internal/acoustics"
	"deepnote/internal/core"
	"deepnote/internal/parallel"
	"deepnote/internal/report"
	"deepnote/internal/units"
	"deepnote/internal/water"
)

// Section5 quantifies the paper's §5 "Challenges & Open Problems"
// discussion: how water conditions and attacker capability change the
// attack's effective range. The paper raises these as open questions; the
// model lets us answer them numerically.

// RangeScenario is one (attacker tier, water condition) cell.
type RangeScenario struct {
	Tier   acoustics.SourceClass
	Water  string
	Medium water.Medium
	Freq   units.Frequency
	// RequiredSPL is the incident level that faults writes at Freq.
	RequiredSPL units.SPL
	// MaxRange is how far the tier's source can stand off and still
	// deliver RequiredSPL; capped at SearchCap.
	MaxRange units.Distance
	// Unreachable is true when even point-blank delivery falls short.
	Unreachable bool
}

// SearchCap bounds the §5 range search (10 km — far beyond any plausible
// standoff attack).
const SearchCap = 10 * units.Kilometer

// Section5Ranges computes the effective-range matrix at the given
// frequency for Scenario 2's enclosure across attacker tiers and water
// conditions.
func Section5Ranges(f units.Frequency) ([]RangeScenario, error) {
	tb, err := core.NewTestbed(core.Scenario2, 1*units.Centimeter)
	if err != nil {
		return nil, err
	}
	required, ok := tb.CriticalIncidentSPL(f)
	if !ok {
		return nil, fmt.Errorf("experiment: no critical SPL at %v", f)
	}
	waters := []struct {
		name string
		m    water.Medium
	}{
		{"freshwater tank", water.FreshwaterTank()},
		{"sea, 20 m depth", water.Seawater(20)},
		{"sea, 36 m depth (Natick)", water.Seawater(36)},
		{"Baltic, 50 m", water.BalticAt50m()},
	}
	type cell struct {
		tier  acoustics.SourceClass
		name  string
		water water.Medium
	}
	var cells []cell
	for _, tier := range acoustics.AttackerTiers() {
		for _, w := range waters {
			cells = append(cells, cell{tier: tier, name: w.name, water: w.m})
		}
	}
	// The (tier × water) grid is embarrassingly parallel: each cell is a
	// pure range search against the shared read-only testbed.
	return parallel.Run(context.Background(), cells, 0,
		func(_ context.Context, _ int, c cell) (RangeScenario, error) {
			rs := RangeScenario{
				Tier: c.tier, Water: c.name, Medium: c.water, Freq: f, RequiredSPL: required,
			}
			d, reachable := acoustics.MaxAttackRange(c.tier.Level, c.tier.RefDist, required, f, c.water, SearchCap)
			rs.MaxRange = d
			rs.Unreachable = !reachable
			return rs, nil
		})
}

// Section5Report renders the range matrix.
func Section5Report(rows []RangeScenario) *report.Table {
	tb := report.NewTable(
		"Section 5 analysis: effective attack range vs. attacker tier and water",
		"Attacker", "Water", "Required SPL", "Max range")
	for _, r := range rows {
		rng := r.MaxRange.String()
		if r.Unreachable {
			rng = "unreachable"
		} else if r.MaxRange >= SearchCap {
			rng = ">= " + SearchCap.String()
		}
		tb.AddRow(r.Tier.Name, r.Water, fmt.Sprintf("%.0f dB re 1µPa", r.RequiredSPL.DB), rng)
	}
	return tb
}

// SoundSpeedSensitivity reports how §5's water parameters move the speed
// of sound (and hence arrival timing/refraction) around a base condition.
type SoundSpeedSensitivity struct {
	Parameter string
	Delta     string
	BaseMS    float64
	NewMS     float64
}

// Section5SoundSpeed computes the sensitivity table the paper's §5
// narrates qualitatively ("as temperature increases, sound speed
// increases...").
func Section5SoundSpeed() []SoundSpeedSensitivity {
	base := water.Seawater(20)
	rows := []struct {
		name  string
		delta string
		m     water.Medium
	}{
		{"temperature", "+5 °C", func() water.Medium { m := base; m.TempC += 5; return m }()},
		{"salinity", "+5 PSU", func() water.Medium { m := base; m.SalinityPSU += 5; return m }()},
		{"depth", "+80 m", func() water.Medium { m := base; m.DepthM += 80; return m }()},
	}
	out := make([]SoundSpeedSensitivity, 0, len(rows))
	for _, r := range rows {
		out = append(out, SoundSpeedSensitivity{
			Parameter: r.name,
			Delta:     r.delta,
			BaseMS:    base.SoundSpeed(),
			NewMS:     r.m.SoundSpeed(),
		})
	}
	return out
}

// Section5SoundSpeedReport renders the sensitivity table.
func Section5SoundSpeedReport(rows []SoundSpeedSensitivity) *report.Table {
	tb := report.NewTable(
		"Section 5 analysis: sound speed sensitivity (base: sea at 20 m)",
		"Parameter", "Change", "Base c (m/s)", "New c (m/s)", "Delta (m/s)")
	for _, r := range rows {
		tb.AddRow(r.Parameter, r.Delta,
			fmt.Sprintf("%.1f", r.BaseMS),
			fmt.Sprintf("%.1f", r.NewMS),
			fmt.Sprintf("%+.1f", r.NewMS-r.BaseMS))
	}
	return tb
}
