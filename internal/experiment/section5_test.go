package experiment

import (
	"strings"
	"testing"

	"deepnote/internal/acoustics"
	"deepnote/internal/core"
	"deepnote/internal/units"
	"deepnote/internal/water"
)

func TestCriticalIncidentSPLConsistency(t *testing.T) {
	// The critical SPL must sit right where the testbed's off-track
	// ratio crosses 1 as the source level varies.
	tb, err := core.NewTestbed(core.Scenario2, 1*units.Centimeter)
	if err != nil {
		t.Fatal(err)
	}
	crit, ok := tb.CriticalIncidentSPL(650)
	if !ok {
		t.Fatal("no critical SPL at 650 Hz")
	}
	// At 140 dB incident the ratio is ≈15.6, i.e. 20·log10(15.6) ≈ 24 dB
	// above critical: critical should be ≈116 dB re 1 µPa.
	if crit.DB < 110 || crit.DB > 122 {
		t.Fatalf("critical SPL = %.1f dB, want ≈116", crit.DB)
	}
}

func TestMaxAttackRangeMonotoneInSourceLevel(t *testing.T) {
	m := water.Seawater(20)
	required := units.WaterSPL(116)
	prev := units.Distance(0)
	for _, lvl := range []float64{140, 160, 180, 200, 220} {
		d, ok := acoustics.MaxAttackRange(units.WaterSPL(lvl), 1*units.Meter, required, 650, m, SearchCap)
		if !ok {
			t.Fatalf("source %v dB cannot even reach point blank", lvl)
		}
		if d < prev || (d == prev && d < SearchCap) {
			t.Fatalf("range not increasing with source level at %v dB: %v <= %v", lvl, d, prev)
		}
		prev = d
	}
}

func TestMaxAttackRangeSpreadingDominatedCloseIn(t *testing.T) {
	// 140 dB at 1 cm with a 116 dB requirement: spreading alone gives
	// 10^(24/20) cm ≈ 16 cm (absorption is negligible at tank scale) —
	// the model behind Table 1's ≈15-20 cm write-effect boundary.
	d, ok := acoustics.MaxAttackRange(
		units.WaterSPL(140), 1*units.Centimeter, units.WaterSPL(116),
		650, water.FreshwaterTank(), SearchCap)
	if !ok {
		t.Fatal("unreachable")
	}
	if cm := d.Centimeters(); cm < 14 || cm > 18 {
		t.Fatalf("max range = %.1f cm, want ≈15.8", cm)
	}
}

func TestMaxAttackRangeUnreachable(t *testing.T) {
	_, ok := acoustics.MaxAttackRange(
		units.WaterSPL(100), 1*units.Meter, units.WaterSPL(150),
		650, water.Seawater(20), SearchCap)
	if ok {
		t.Fatal("a quiet source cannot deliver a louder requirement")
	}
}

func TestRequiredSourceLevelRoundTrip(t *testing.T) {
	m := water.Seawater(36)
	required := units.WaterSPL(116)
	d := 100 * units.Meter
	src := acoustics.RequiredSourceLevel(required, 1*units.Meter, 650, m, d)
	// A source at exactly that level must reach exactly distance d.
	got, ok := acoustics.MaxAttackRange(src, 1*units.Meter, required, 650, m, SearchCap)
	if !ok {
		t.Fatal("unreachable")
	}
	if got < d*0.99 || got > d*1.01 {
		t.Fatalf("round trip range = %v, want %v", got, d)
	}
}

func TestSection5RangesShape(t *testing.T) {
	rows, err := Section5Ranges(650)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 3 tiers × 4 waters
		t.Fatalf("rows = %d", len(rows))
	}
	// The pool speaker reaches centimeters; sonar-class reaches beyond
	// the cap in at least one condition.
	var pool, sonar units.Distance
	for _, r := range rows {
		if strings.Contains(r.Tier.Name, "pool") && strings.Contains(r.Water, "tank") {
			pool = r.MaxRange
		}
		if strings.Contains(r.Tier.Name, "military") && strings.Contains(r.Water, "Natick") {
			sonar = r.MaxRange
		}
	}
	if pool.Centimeters() < 5 || pool.Centimeters() > 50 {
		t.Fatalf("pool speaker range = %v, want tank-scale centimeters", pool)
	}
	if sonar < 1*units.Kilometer {
		t.Fatalf("sonar-class range = %v, want kilometers", sonar)
	}
	rep := Section5Report(rows).String()
	if !strings.Contains(rep, "pool speaker") || !strings.Contains(rep, "military") {
		t.Fatalf("report rendering:\n%s", rep)
	}
}

func TestSection5SoundSpeed(t *testing.T) {
	rows := Section5SoundSpeed()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// §5: each parameter increase raises sound speed.
	for _, r := range rows {
		if r.NewMS <= r.BaseMS {
			t.Errorf("%s %s did not raise sound speed (%.1f -> %.1f)",
				r.Parameter, r.Delta, r.BaseMS, r.NewMS)
		}
	}
	rep := Section5SoundSpeedReport(rows).String()
	if !strings.Contains(rep, "temperature") {
		t.Fatalf("report rendering:\n%s", rep)
	}
}

func TestAttackerTiersOrdered(t *testing.T) {
	tiers := acoustics.AttackerTiers()
	if len(tiers) != 3 {
		t.Fatalf("tiers = %d", len(tiers))
	}
	if tiers[0].Level.DB >= tiers[2].Level.DB {
		t.Fatal("tiers should escalate in source level")
	}
}
