// Differential self-check over the paper's §4.1 operating grid: every
// (frequency × drive level × op × block size × offset) cell is pushed
// through the full acoustic chain to a drive-level excitation, then the
// analytic oracle and the Monte-Carlo simulator are compared on it.

package experiment

import (
	"fmt"
	"time"

	"deepnote/internal/core"
	"deepnote/internal/fio"
	"deepnote/internal/hdd"
	"deepnote/internal/metrics"
	"deepnote/internal/oracle"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// SelfCheckOptions tunes the differential grid.
type SelfCheckOptions struct {
	// Scenario selects the testbed configuration (default Scenario2, the
	// paper's "realistic" tower mount used for Tables 1–3).
	Scenario core.Scenario
	// Distance is the speaker standoff (default 1 cm, the contact-attack
	// distance of §4.1).
	Distance units.Distance
	// Freqs are the probe tones (default: a spread over the paper's
	// vulnerable and quiet bands, 200 Hz – 3 kHz).
	Freqs []units.Frequency
	// Levels are the normalized drive levels per tone (default 1, 0.5,
	// 0.25 full scale — spanning collapse, transition, and quiet cells).
	Levels []float64
	// Patterns are the fio access patterns (default sequential write and
	// read).
	Patterns []fio.Pattern
	// BlockSizes are the per-request sizes in bytes (default 4 KiB, the
	// paper's fio block size, and 64 KiB to exercise multi-chunk ops).
	BlockSizes []int64
	// OffsetFracs place the swept region as a fraction of drive capacity
	// (default 0 and 0.9 — outer and inner zones).
	OffsetFracs []float64
	// JobRuntime, Repeats, Seed, Workers, Tolerance, FloorFrac, Mutation
	// pass through to the oracle.Differ.
	JobRuntime time.Duration
	Repeats    int
	Seed       int64
	Workers    int
	Tolerance  float64
	FloorFrac  float64
	Mutation   oracle.Mutation
	// Metrics, when set, receives oracle and victim-stack counters (nil =
	// uninstrumented).
	Metrics *metrics.Registry
}

func (o SelfCheckOptions) withDefaults() SelfCheckOptions {
	if o.Scenario == 0 {
		o.Scenario = core.Scenario2
	}
	if o.Distance == 0 {
		o.Distance = 1 * units.Centimeter
	}
	if len(o.Freqs) == 0 {
		o.Freqs = []units.Frequency{
			200 * units.Hz, 450 * units.Hz, 650 * units.Hz, 800 * units.Hz,
			1000 * units.Hz, 1300 * units.Hz, 1700 * units.Hz,
			2200 * units.Hz, 3000 * units.Hz,
		}
	}
	if len(o.Levels) == 0 {
		o.Levels = []float64{1, 0.5, 0.25}
	}
	if len(o.Patterns) == 0 {
		o.Patterns = []fio.Pattern{fio.SeqWrite, fio.SeqRead}
	}
	if len(o.BlockSizes) == 0 {
		o.BlockSizes = []int64{4096, 65536}
	}
	if len(o.OffsetFracs) == 0 {
		o.OffsetFracs = []float64{0, 0.9}
	}
	return o
}

// SelfCheckGrid expands the options into drive-level cells by running each
// (frequency, level) tone through the scenario's acoustic chain. Exposed so
// the CLI can report grid size before running.
func SelfCheckGrid(opts SelfCheckOptions) (hdd.Model, []oracle.CellSpec, error) {
	opts = opts.withDefaults()
	tb, err := core.NewTestbed(opts.Scenario, opts.Distance)
	if err != nil {
		return hdd.Model{}, nil, err
	}
	var cells []oracle.CellSpec
	for _, f := range opts.Freqs {
		for _, level := range opts.Levels {
			tone := sig.Tone{Freq: f, Amplitude: level}.Normalize()
			vib := tb.VibrationFor(tone)
			spl := tb.IncidentSPL(tone)
			for _, pat := range opts.Patterns {
				op := hdd.OpRead
				if pat == fio.SeqWrite || pat == fio.RandWrite {
					op = hdd.OpWrite
				}
				for _, bs := range opts.BlockSizes {
					for _, frac := range opts.OffsetFracs {
						offset := int64(frac * float64(tb.DriveModel.CapacityBytes))
						offset -= offset % bs
						cells = append(cells, oracle.CellSpec{
							Label: fmt.Sprintf("%v %.2fFS (%s) %v %dKiB @%.0f%%",
								f, level, spl, op, bs/1024, frac*100),
							SPL:       spl,
							Vib:       vib,
							Op:        op,
							Offset:    offset,
							BlockSize: bs,
						})
					}
				}
			}
		}
	}
	return tb.DriveModel, cells, nil
}

// SelfCheck runs the differential harness over the §4.1 grid.
func SelfCheck(opts SelfCheckOptions) (oracle.Report, error) {
	opts = opts.withDefaults()
	model, cells, err := SelfCheckGrid(opts)
	if err != nil {
		return oracle.Report{}, err
	}
	d := oracle.Differ{
		Model:      model,
		JobRuntime: opts.JobRuntime,
		Repeats:    opts.Repeats,
		Seed:       opts.Seed,
		Workers:    opts.Workers,
		Tolerance:  opts.Tolerance,
		FloorFrac:  opts.FloorFrac,
		Mutation:   opts.Mutation,
		Metrics:    opts.Metrics,
	}
	rep, err := d.Run(cells)
	if err != nil {
		return oracle.Report{}, err
	}
	opts.Metrics.Add("experiment.selfcheck_cells", int64(len(rep.Cells)))
	return rep, nil
}
