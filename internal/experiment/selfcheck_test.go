package experiment

import (
	"testing"
	"time"

	"deepnote/internal/fio"
	"deepnote/internal/metrics"
	"deepnote/internal/units"
)

// fastSelfCheck is a reduced grid: one quiet band, one collapse band, and
// one transition frequency, both ops, both block sizes, both diameters.
func fastSelfCheck() SelfCheckOptions {
	return SelfCheckOptions{
		Freqs:      []units.Frequency{200 * units.Hz, 650 * units.Hz, 1700 * units.Hz},
		Levels:     []float64{1},
		JobRuntime: 500 * time.Millisecond,
		Workers:    4,
	}
}

// TestSelfCheckGridShape pins the grid expansion: freqs × levels ×
// patterns × block sizes × offsets, with offsets aligned to block size.
func TestSelfCheckGridShape(t *testing.T) {
	opts := fastSelfCheck()
	model, cells, err := SelfCheckGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * 1 * 2 * 2 * 2
	if len(cells) != want {
		t.Fatalf("grid has %d cells, want %d", len(cells), want)
	}
	for _, c := range cells {
		if c.Offset%c.BlockSize != 0 {
			t.Fatalf("cell %q offset %d not aligned to block size %d", c.Label, c.Offset, c.BlockSize)
		}
		if c.Offset+c.BlockSize > model.CapacityBytes {
			t.Fatalf("cell %q overruns capacity", c.Label)
		}
	}
}

// TestSelfCheckPassesOnFixedTree is the acceptance gate in miniature: the
// differential check must pass on the fixed tree within tolerance.
func TestSelfCheckPassesOnFixedTree(t *testing.T) {
	rep, err := SelfCheck(fastSelfCheck())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("self-check failed on a clean tree:\n%s", rep.Table())
	}
}

// TestSelfCheckMetricsLayer checks that an instrumented run surfaces the
// oracle alongside the victim-stack layers.
func TestSelfCheckMetricsLayer(t *testing.T) {
	reg := metrics.NewRegistry()
	opts := fastSelfCheck()
	opts.Freqs = []units.Frequency{650 * units.Hz}
	opts.Patterns = []fio.Pattern{fio.SeqWrite}
	opts.BlockSizes = []int64{4096}
	opts.OffsetFracs = []float64{0}
	opts.Metrics = reg
	if _, err := SelfCheck(opts); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, want := range []string{"oracle.cells", "experiment.selfcheck_cells", "hdd.writes"} {
		if _, ok := snap.Counters[want]; !ok {
			t.Fatalf("snapshot missing %q", want)
		}
	}
}
