package experiment

import (
	"fmt"
	"time"

	"deepnote/internal/cluster"
	"deepnote/internal/metrics"
	"deepnote/internal/parallel"
	"deepnote/internal/report"
	"deepnote/internal/sig"
	"deepnote/internal/sonar"
	"deepnote/internal/units"
)

// SonarSpec is the closed-loop defense campaign: the PR 5 availability
// cliff (one attacker speaker past the parity budget) re-run with a
// hydrophone array listening, each key-on localized by multilateration,
// and the resulting fixes steering the erasure-coded store — measured
// against the identical run with the defense off. A localization range
// sweep rides along, probing fix quality from point-blank out past the
// facility perimeter.
type SonarSpec struct {
	// Containers and DrivesPerContainer size the facility (defaults 6, 1).
	Containers, DrivesPerContainer int
	// DataShards/ParityShards set the k-of-n code (defaults 4+2).
	DataShards, ParityShards int
	// Objects and ObjectSize size the keyspace (defaults 24, 16 KiB).
	Objects, ObjectSize int
	// Spacing is the container pitch (default 2 m).
	Spacing units.Distance
	// Freq is the attack tone (default 650 Hz).
	Freq units.Frequency
	// Speakers is how many point-blank speakers the attacker stages
	// (default ParityShards+1 — exactly one failure domain past the
	// cliff, the scenario the defense must rescue).
	Speakers int
	// Hydrophones and Standoff shape the surveillance array: a ring of
	// Hydrophones elements Standoff beyond the farthest container.
	// Standoff nil means the default 3 m; cluster.Ptr(units.Distance(0))
	// places the ring exactly at the facility perimeter and is honored.
	Hydrophones int
	Standoff    *units.Distance
	// Requests, Rate, and ReadFraction shape the client workload
	// (defaults 600 requests at 500 req/s, 90% reads).
	Requests     int
	Rate         float64
	ReadFraction *float64
	// AttackStartFrac places the first key-on in the request window
	// (default 0.25); StaggerFrac spaces the remaining key-ons — the
	// attacker escalates one speaker at a time, which is what gives the
	// defense its reaction window. StaggerFrac nil means the default 0.2
	// of the window; cluster.Ptr(0.0) keys every speaker on
	// simultaneously (no reaction window) and is honored.
	AttackStartFrac float64
	StaggerFrac     *float64
	// Margin and React tune the defense policy, passed straight through
	// to cluster.DefenseSpec (nil = cluster defaults: react at half the
	// servo-lock amplitude, 50 ms controller lag; explicit zeros are
	// honored).
	Margin *float64
	React  *time.Duration
	// Ranges are the localization-probe distances from the container
	// centroid (default 1, 2, 5, 10, 15, 20, 30 m).
	Ranges []units.Distance
	Seed   int64
	// Workers bounds the drive fan-out inside each serving run (≤ 0 =
	// one per CPU); results are identical for any worker count.
	Workers int
	// Metrics receives engine, cluster, and sonar counters when non-nil.
	Metrics *metrics.Registry
}

func (s SonarSpec) withDefaults() SonarSpec {
	if s.Containers <= 0 {
		s.Containers = 6
	}
	if s.DrivesPerContainer <= 0 {
		s.DrivesPerContainer = 1
	}
	if s.DataShards <= 0 {
		s.DataShards = 4
	}
	if s.ParityShards <= 0 {
		s.ParityShards = 2
	}
	if s.Objects <= 0 {
		s.Objects = 24
	}
	if s.ObjectSize <= 0 {
		s.ObjectSize = 16 << 10
	}
	if s.Spacing == 0 {
		s.Spacing = 2 * units.Meter
	}
	if s.Freq == 0 {
		s.Freq = 650 * units.Hz
	}
	if s.Speakers <= 0 {
		s.Speakers = s.ParityShards + 1
	}
	if s.Speakers > s.Containers {
		s.Speakers = s.Containers
	}
	if s.Hydrophones <= 0 {
		s.Hydrophones = 6
	}
	if s.Standoff == nil {
		s.Standoff = cluster.Ptr(3 * units.Meter)
	}
	if s.Requests <= 0 {
		s.Requests = 600
	}
	if s.Rate <= 0 {
		s.Rate = 500
	}
	if s.ReadFraction == nil {
		s.ReadFraction = cluster.Ptr(0.9)
	}
	if s.AttackStartFrac <= 0 {
		s.AttackStartFrac = 0.25
	}
	if s.StaggerFrac == nil {
		s.StaggerFrac = cluster.Ptr(0.2)
	}
	if s.Ranges == nil {
		s.Ranges = []units.Distance{
			1 * units.Meter, 2 * units.Meter, 5 * units.Meter, 10 * units.Meter,
			15 * units.Meter, 20 * units.Meter, 30 * units.Meter,
		}
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// RangeProbe is one cell of the localization range sweep: a source at a
// known distance from the container centroid, received and multilaterated
// through the same array the defense uses.
type RangeProbe struct {
	// Range is the true source distance from the container centroid.
	Range units.Distance
	// Heard is how many hydrophones detected the tone.
	Heard int
	// OK reports whether multilateration produced a fix.
	OK bool
	// Planar reports the degraded horizontal-only fix.
	Planar bool
	// MissM is the 3-D distance between the fix and the true position in
	// meters (negative when no fix was produced).
	MissM float64
	// ErrRadius is the fix's own one-sigma uncertainty claim.
	ErrRadius units.Distance
}

// SonarResult is the campaign outcome: the detection timeline, the range
// sweep, and the defense-off/defense-on serving results under identical
// traffic and attack seeds.
type SonarResult struct {
	// Window is the nominal client request window.
	Window time.Duration
	// Detections is the surveillance timeline, one entry per key-on.
	Detections []sonar.Detection
	// MissM[i] is detection i's localization miss in meters against the
	// true speaker position (negative when the fix failed).
	MissM []float64
	// Probes is the localization range sweep.
	Probes []RangeProbe
	// Off and On are the serving results with the defense disabled and
	// enabled; everything else about the two runs is identical.
	Off, On cluster.ServeResult
	// EvacsPlanned and EvacsSkipped summarize the compiled defense plan.
	EvacsPlanned, EvacsSkipped int
}

// SonarRun executes the campaign. Both serving runs and every reception
// draw their randomness from seeds derived with parallel.SeedFor, so the
// whole result is byte-identical at any Workers value.
func SonarRun(spec SonarSpec) (SonarResult, error) {
	spec = spec.withDefaults()
	tone := sig.NewTone(spec.Freq)
	window := time.Duration(float64(spec.Requests) / spec.Rate * float64(time.Second))

	targets := make([]int, spec.Speakers)
	for i := range targets {
		targets[i] = i
	}
	lay := cluster.LineLayout(spec.Containers, spec.Spacing).WithSpeakersAt(tone, targets...)
	arr := sonar.FacilityArray(lay, spec.Hydrophones, *spec.Standoff)

	steps := staggeredSchedule(spec.Speakers, window, spec.AttackStartFrac, *spec.StaggerFrac)
	dets := sonar.DetectSchedule(lay, arr, steps, parallel.SeedFor(spec.Seed, 1))

	res := SonarResult{Window: window, Detections: dets}
	var fixes []cluster.SourceFix
	for _, d := range dets {
		miss := -1.0
		if d.OK {
			miss = d.Est.Pos.Sub(lay.Speakers[d.Speaker].Pos).Norm()
			fixes = append(fixes, cluster.SourceFix{
				At:   d.FixAt,
				Pos:  d.Est.Pos,
				Err:  d.Est.ErrRadius,
				Tone: lay.Speakers[d.Speaker].Tone,
			})
		}
		res.MissM = append(res.MissM, miss)
	}

	serve := func(defended bool) (cluster.ServeResult, *cluster.Cluster, error) {
		c, err := cluster.New(cluster.Config{
			Layout:             lay,
			DrivesPerContainer: spec.DrivesPerContainer,
			DataShards:         spec.DataShards,
			ParityShards:       spec.ParityShards,
			Objects:            spec.Objects,
			ObjectSize:         spec.ObjectSize,
			Seed:               cluster.Ptr(parallel.SeedFor(spec.Seed, 2)),
			Workers:            spec.Workers,
		})
		if err != nil {
			return cluster.ServeResult{}, nil, err
		}
		if err := c.Preload(); err != nil {
			return cluster.ServeResult{}, nil, err
		}
		c.SetSchedule(steps)
		if defended {
			if err := c.SetDefense(cluster.DefenseSpec{
				Fixes: fixes, Margin: spec.Margin, React: spec.React,
			}); err != nil {
				return cluster.ServeResult{}, nil, err
			}
		}
		sr, err := c.Serve(cluster.TrafficSpec{
			Requests:     spec.Requests,
			Rate:         spec.Rate,
			ReadFraction: spec.ReadFraction,
			Seed:         cluster.Ptr(parallel.SeedFor(spec.Seed, 3)),
		})
		return sr, c, err
	}

	var err error
	var onCluster *cluster.Cluster
	if res.Off, _, err = serve(false); err != nil {
		return res, err
	}
	if res.On, onCluster, err = serve(true); err != nil {
		return res, err
	}
	res.EvacsPlanned, res.EvacsSkipped = onCluster.DefenseEvacsPlanned()

	center := sonar.ContainerCentroid(lay)
	for i, r := range spec.Ranges {
		truth := cluster.Vec3{X: center.X + float64(r), Y: center.Y, Z: center.Z}
		recs := arr.Receive(truth, tone, parallel.SeedFor(spec.Seed, 1000+i))
		probe := RangeProbe{Range: r, MissM: -1}
		for _, rec := range recs {
			if rec.Detected {
				probe.Heard++
			}
		}
		if est, lerr := arr.Locate(recs); lerr == nil {
			probe.OK = true
			probe.Planar = est.Planar
			probe.MissM = est.Pos.Sub(truth).Norm()
			probe.ErrRadius = est.ErrRadius
		}
		res.Probes = append(res.Probes, probe)
	}

	// Only the defense-on cluster publishes, so the sonar/defense layers
	// land in the snapshot exactly once.
	onCluster.PublishMetrics(spec.Metrics)
	sonar.PublishMetrics(spec.Metrics, dets)
	spec.Metrics.Add("experiment.sonar_runs", 1)
	return res, nil
}

// staggeredSchedule builds the cumulative key-on ladder: speaker i keys
// on at window·(startFrac + i·staggerFrac), and nothing ever keys off —
// the sustained-escalation attack the availability cliff needs.
func staggeredSchedule(speakers int, window time.Duration, startFrac, staggerFrac float64) []cluster.ScheduleStep {
	steps := make([]cluster.ScheduleStep, 0, speakers)
	for i := 0; i < speakers; i++ {
		on := make([]bool, speakers)
		for j := 0; j <= i; j++ {
			on[j] = true
		}
		at := time.Duration(float64(window) * (startFrac + float64(i)*staggerFrac))
		steps = append(steps, cluster.ScheduleStep{At: at, Active: on})
	}
	return steps
}

// SonarDetectionReport renders the surveillance timeline.
func SonarDetectionReport(res SonarResult) *report.Table {
	tb := report.NewTable(
		"Detection timeline: attacker key-ons through the hydrophone array",
		"Speaker", "Key-on s", "Heard", "Fix", "Latency ms", "Err radius m", "Miss m")
	for i, d := range res.Detections {
		fix, miss := "none", "-"
		if d.OK {
			fix = "3-D"
			if d.Est.Planar {
				fix = "planar"
			}
			miss = fmt.Sprintf("%.2f", res.MissM[i])
		}
		tb.AddRow(
			fmt.Sprintf("%d", d.Speaker),
			fmt.Sprintf("%.2f", d.KeyOn.Seconds()),
			fmt.Sprintf("%d", d.Heard),
			fix,
			fmt.Sprintf("%.1f", float64(d.Latency)/1e6),
			fmt.Sprintf("%.2f", float64(d.Est.ErrRadius)),
			miss)
	}
	return tb
}

// SonarRangeReport renders the localization error vs range sweep.
func SonarRangeReport(res SonarResult) *report.Table {
	tb := report.NewTable(
		"Localization error vs source range (probes from the container centroid)",
		"Range m", "Heard", "Fix", "Miss m", "Err radius m")
	for _, p := range res.Probes {
		fix, miss := "none", "-"
		if p.OK {
			fix = "3-D"
			if p.Planar {
				fix = "planar"
			}
			miss = fmt.Sprintf("%.2f", p.MissM)
		}
		tb.AddRow(
			fmt.Sprintf("%.0f", float64(p.Range)),
			fmt.Sprintf("%d", p.Heard),
			fix,
			miss,
			fmt.Sprintf("%.2f", float64(p.ErrRadius)))
	}
	return tb
}

// SonarDefenseReport renders the defense-off/defense-on comparison.
func SonarDefenseReport(res SonarResult) *report.Table {
	tb := report.NewTable(
		"Serving under staged escalation, defense off vs on (identical seeds)",
		"Defense", "GET avail", "PUT avail", "GET fails", "Degraded", "Steered",
		"Replica reads", "Evacs", "P99 ms")
	for _, row := range []struct {
		name string
		sr   cluster.ServeResult
	}{{"off", res.Off}, {"on", res.On}} {
		tb.AddRow(row.name,
			fmt.Sprintf("%.1f%%", row.sr.GetAvailability()*100),
			fmt.Sprintf("%.1f%%", row.sr.PutAvailability()*100),
			fmt.Sprintf("%d", row.sr.GetFailures),
			fmt.Sprintf("%d", row.sr.DegradedReads),
			fmt.Sprintf("%d", row.sr.SteeredGets),
			fmt.Sprintf("%d", row.sr.ReplicaReads),
			fmt.Sprintf("%d", row.sr.EvacWrites),
			fmt.Sprintf("%.2f", float64(row.sr.P99)/1e6))
	}
	return tb
}
