package experiment

import (
	"reflect"
	"testing"
)

// TestSonarRunClosesTheLoop: the headline acceptance — under the staged
// one-past-the-cliff escalation, the localization-driven defense must
// measurably beat defense-off on GET availability, every key-on must be
// detected and localized, and nothing may be served corrupt.
func TestSonarRunClosesTheLoop(t *testing.T) {
	res, err := SonarRun(SonarSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Detections) != 3 {
		t.Fatalf("got %d detections, want 3 (parity+1 staged key-ons)", len(res.Detections))
	}
	for i, d := range res.Detections {
		if !d.OK {
			t.Fatalf("key-on %d produced no fix", i)
		}
		if d.Latency <= 0 {
			t.Fatalf("key-on %d: non-positive detection latency %v", i, d.Latency)
		}
		if miss := res.MissM[i]; miss < 0 || miss > 1.5 {
			t.Fatalf("key-on %d localized %.2f m off the true speaker", i, miss)
		}
	}
	if res.Off.GetFailures == 0 {
		t.Fatal("defense-off run never fell off the availability cliff")
	}
	if res.Off.CorruptReads != 0 || res.On.CorruptReads != 0 {
		t.Fatalf("corrupt reads: off=%d on=%d", res.Off.CorruptReads, res.On.CorruptReads)
	}
	off, on := res.Off.GetAvailability(), res.On.GetAvailability()
	if on-off < 0.05 {
		t.Fatalf("defense improvement not measurable: off %.4f, on %.4f", off, on)
	}
	if res.EvacsPlanned == 0 || res.On.EvacWrites != res.EvacsPlanned {
		t.Fatalf("evac accounting: planned %d, wrote %d", res.EvacsPlanned, res.On.EvacWrites)
	}
}

// TestSonarRangeSweepDegradesWithRange: the probe sweep must detect and
// localize at short range, and fix quality must not be reported better
// at the far end than point-blank.
func TestSonarRangeSweepDegradesWithRange(t *testing.T) {
	res, err := SonarRun(SonarSpec{Requests: 60, Rate: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probes) == 0 {
		t.Fatal("no range probes")
	}
	first, last := res.Probes[0], res.Probes[len(res.Probes)-1]
	if !first.OK || first.MissM > 1 {
		t.Fatalf("nearest probe (%v): OK=%v miss=%.2f m", first.Range, first.OK, first.MissM)
	}
	if last.OK && last.ErrRadius < first.ErrRadius {
		t.Fatalf("fix claims to improve with range: %.3f m at %v vs %.3f m at %v",
			float64(last.ErrRadius), last.Range, float64(first.ErrRadius), first.Range)
	}
}

// TestSonarRunDeterministicAcrossWorkers: the whole campaign result —
// detections, probes, both serving runs — must be byte-identical at any
// drive fan-out.
func TestSonarRunDeterministicAcrossWorkers(t *testing.T) {
	base, err := SonarRun(SonarSpec{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		res, err := SonarRun(SonarSpec{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("workers=%d diverged from workers=1", w)
		}
	}
}
