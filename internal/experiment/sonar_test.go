package experiment

import (
	"reflect"
	"testing"
	"time"

	"deepnote/internal/cluster"
	"deepnote/internal/units"
)

// TestSonarRunClosesTheLoop: the headline acceptance — under the staged
// one-past-the-cliff escalation, the localization-driven defense must
// measurably beat defense-off on GET availability, every key-on must be
// detected and localized, and nothing may be served corrupt.
func TestSonarRunClosesTheLoop(t *testing.T) {
	res, err := SonarRun(SonarSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Detections) != 3 {
		t.Fatalf("got %d detections, want 3 (parity+1 staged key-ons)", len(res.Detections))
	}
	for i, d := range res.Detections {
		if !d.OK {
			t.Fatalf("key-on %d produced no fix", i)
		}
		if d.Latency <= 0 {
			t.Fatalf("key-on %d: non-positive detection latency %v", i, d.Latency)
		}
		if miss := res.MissM[i]; miss < 0 || miss > 1.5 {
			t.Fatalf("key-on %d localized %.2f m off the true speaker", i, miss)
		}
	}
	if res.Off.GetFailures == 0 {
		t.Fatal("defense-off run never fell off the availability cliff")
	}
	if res.Off.CorruptReads != 0 || res.On.CorruptReads != 0 {
		t.Fatalf("corrupt reads: off=%d on=%d", res.Off.CorruptReads, res.On.CorruptReads)
	}
	off, on := res.Off.GetAvailability(), res.On.GetAvailability()
	if on-off < 0.05 {
		t.Fatalf("defense improvement not measurable: off %.4f, on %.4f", off, on)
	}
	if res.EvacsPlanned == 0 || res.On.EvacWrites != res.EvacsPlanned {
		t.Fatalf("evac accounting: planned %d, wrote %d", res.EvacsPlanned, res.On.EvacWrites)
	}
}

// TestSonarRangeSweepDegradesWithRange: the probe sweep must detect and
// localize at short range, and fix quality must not be reported better
// at the far end than point-blank.
func TestSonarRangeSweepDegradesWithRange(t *testing.T) {
	res, err := SonarRun(SonarSpec{Requests: 60, Rate: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probes) == 0 {
		t.Fatal("no range probes")
	}
	first, last := res.Probes[0], res.Probes[len(res.Probes)-1]
	if !first.OK || first.MissM > 1 {
		t.Fatalf("nearest probe (%v): OK=%v miss=%.2f m", first.Range, first.OK, first.MissM)
	}
	if last.OK && last.ErrRadius < first.ErrRadius {
		t.Fatalf("fix claims to improve with range: %.3f m at %v vs %.3f m at %v",
			float64(last.ErrRadius), last.Range, float64(first.ErrRadius), first.Range)
	}
}

// TestSonarRunDeterministicAcrossWorkers: the whole campaign result —
// detections, probes, both serving runs — must be byte-identical at any
// drive fan-out.
func TestSonarRunDeterministicAcrossWorkers(t *testing.T) {
	base, err := SonarRun(SonarSpec{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		res, err := SonarRun(SonarSpec{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("workers=%d diverged from workers=1", w)
		}
	}
}

// TestSpecZeroFieldsHonored pins the zero-vs-unset contract on the
// campaign specs' pointer fields: explicit zeros configure meaningful
// scenarios (simultaneous key-ons, a hydrophone ring at the facility
// perimeter) and must not be silently replaced by the defaults.
func TestSpecZeroFieldsHonored(t *testing.T) {
	s := SonarSpec{
		StaggerFrac: cluster.Ptr(0.0),
		Standoff:    cluster.Ptr(units.Distance(0)),
	}.withDefaults()
	if *s.StaggerFrac != 0 {
		t.Fatalf("explicit zero StaggerFrac replaced by %v", *s.StaggerFrac)
	}
	if *s.Standoff != 0 {
		t.Fatalf("explicit zero Standoff replaced by %v", *s.Standoff)
	}
	d := SonarSpec{}.withDefaults()
	if *d.StaggerFrac != 0.2 || *d.Standoff != 3*units.Meter {
		t.Fatalf("nil defaults wrong: stagger %v standoff %v", *d.StaggerFrac, *d.Standoff)
	}
	cs := ClusterSpec{Standoff: cluster.Ptr(units.Distance(0))}.withDefaults()
	if *cs.Standoff != 0 {
		t.Fatalf("explicit zero ClusterSpec.Standoff replaced by %v", *cs.Standoff)
	}
	if cd := (ClusterSpec{}).withDefaults(); *cd.Standoff != 3*units.Meter {
		t.Fatalf("nil ClusterSpec.Standoff default wrong: %v", *cd.Standoff)
	}
	// A zero stagger collapses the escalation: every key-on lands at the
	// same instant, leaving the defense no reaction window.
	steps := staggeredSchedule(3, time.Second, 0.25, 0)
	for _, st := range steps {
		if st.At != 250*time.Millisecond {
			t.Fatalf("zero stagger: key-on at %v, want all at 250ms", st.At)
		}
	}
}
