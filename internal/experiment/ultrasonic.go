package experiment

import (
	"fmt"

	"deepnote/internal/core"
	"deepnote/internal/report"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// Ultrasonic analyzes the second attack vector from Bolton et al. (the
// paper's in-air predecessor): ultrasonic tones that trip the drive's
// shock sensor and park the heads. The paper's underwater sweep stops at
// 16.9 kHz and reports no ultrasonic effect; this analysis shows why the
// submerged enclosure makes the vector impractical — wall mass-law
// attenuation grows with frequency, so by the time a tone is ultrasonic
// the structural excitation is orders of magnitude below the sensor
// threshold.

// UltrasonicRow is one frequency's reachability verdict.
type UltrasonicRow struct {
	Freq units.Frequency
	// Amplitude is the off-track-equivalent excitation at the drive
	// (track-pitch fractions) at full attack power, 1 cm.
	Amplitude float64
	// SensorThreshold is the shock sensor's trip level.
	SensorThreshold float64
	// Parks reports whether the tone would trip the sensor.
	Parks bool
}

// Ultrasonic sweeps the ultrasonic band against a scenario at 1 cm and
// full power.
func Ultrasonic(s core.Scenario) ([]UltrasonicRow, error) {
	tb, err := core.NewTestbed(s, 1*units.Centimeter)
	if err != nil {
		return nil, err
	}
	var rows []UltrasonicRow
	for _, f := range []units.Frequency{17000, 18000, 20000, 25000, 31000, 40000} {
		v := tb.VibrationFor(sig.NewTone(f))
		rows = append(rows, UltrasonicRow{
			Freq:            f,
			Amplitude:       v.Amplitude,
			SensorThreshold: tb.DriveModel.ShockSensorAmpFrac,
			Parks:           f >= tb.DriveModel.ShockSensorMin && v.Amplitude >= tb.DriveModel.ShockSensorAmpFrac,
		})
	}
	return rows, nil
}

// UltrasonicReport renders the verdicts.
func UltrasonicReport(s core.Scenario, rows []UltrasonicRow) *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Ultrasonic (shock-sensor) vector, %v, full power at 1 cm", s),
		"Frequency", "Drive excitation", "Sensor threshold", "Heads park")
	for _, r := range rows {
		tb.AddRow(r.Freq.String(),
			fmt.Sprintf("%.5f", r.Amplitude),
			fmt.Sprintf("%.3f", r.SensorThreshold),
			fmt.Sprintf("%v", r.Parks))
	}
	return tb
}
