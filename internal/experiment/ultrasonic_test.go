package experiment

import (
	"strings"
	"testing"

	"deepnote/internal/core"
	"deepnote/internal/hdd"
	"deepnote/internal/simclock"
)

func TestUltrasonicVectorUnreachableThroughEnclosure(t *testing.T) {
	// The paper's sweep to 16.9 kHz saw no shock-sensor parking; the
	// model explains it: wall attenuation crushes ultrasonic excitation
	// far below the sensor threshold in every scenario.
	for _, s := range []core.Scenario{core.Scenario1, core.Scenario2, core.Scenario3} {
		rows, err := Ultrasonic(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			t.Fatal("no rows")
		}
		for _, r := range rows {
			if r.Parks {
				t.Errorf("%v: %v parks the heads through the enclosure — should be unreachable", s, r.Freq)
			}
			if r.Amplitude >= r.SensorThreshold {
				t.Errorf("%v: %v excitation %.4f above sensor threshold", s, r.Freq, r.Amplitude)
			}
		}
		rep := UltrasonicReport(s, rows).String()
		if !strings.Contains(rep, "Heads park") {
			t.Fatalf("report rendering:\n%s", rep)
		}
	}
}

func TestShockSensorStillWorksWithDirectExcitation(t *testing.T) {
	// The sensor itself functions: direct excitation (no enclosure, e.g.
	// a transducer clamped to the drive) parks the heads, so the
	// negative result above is about the acoustic path, not a dead
	// model feature.
	clock := simclock.NewVirtual()
	d, err := hdd.NewDrive(hdd.Barracuda500(), clock, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.SetVibration(hdd.Vibration{Freq: 20000, Amplitude: 0.1})
	if d.Stats().ShockParks != 1 {
		t.Fatal("direct ultrasonic excitation should park the heads")
	}
}
