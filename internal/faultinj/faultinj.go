// Package faultinj is the deterministic fault-injection harness: a
// blockdev.Device wrapper that injects seeded, simclock-scheduled faults —
// transient or permanent read/write errors, latency spikes, torn writes,
// stuck I/O — underneath any software substrate. It exists so the victim
// stack's robustness mechanisms (retries, RAID thresholds and rebuild,
// watchdog reboots, circuit breakers) can be exercised and regression-tested
// independently of the acoustic attack model, and *composed* with it: the
// wrapper stacks above or below an attacked blockdev.Disk, a raid.Array, or
// a blockdev.Retrier, so an experiment can overlay a transient-error burst
// on top of the paper's §4.3 prolonged tone.
//
// Every fault is scheduled in virtual time relative to the wrapper's
// creation and drawn from a seeded RNG, so a run with the same seed and
// schedule reproduces bit-for-bit at any worker count.
package faultinj

import (
	"fmt"
	"math/rand"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/metrics"
	"deepnote/internal/simclock"
)

// ErrInjected is the error returned for injected failures. It wraps
// blockdev.ErrIO, so every upper layer classifies an injected fault exactly
// like a real EIO from the drive.
var ErrInjected = fmt.Errorf("%w: injected fault", blockdev.ErrIO)

// OpMask selects which operations a fault applies to.
type OpMask uint8

// Operation bits.
const (
	OpRead OpMask = 1 << iota
	OpWrite
	OpFlush
	// OpAll targets every operation.
	OpAll = OpRead | OpWrite | OpFlush
)

// Kind is the fault class.
type Kind int

// Fault classes.
const (
	// TransientError fails matching requests during the window; requests
	// outside the window pass through untouched. This is the "drive
	// hiccup" a retry policy must absorb.
	TransientError Kind = iota
	// PermanentError fails every matching request from Start onward
	// (Duration is ignored): a dead member a RAID rebuild must replace.
	PermanentError
	// LatencySpike completes matching requests but charges Extra virtual
	// time first: the degraded-but-alive regime where deadline budgets
	// and hedged reads matter.
	LatencySpike
	// TornWrite writes only the first half of the request's payload,
	// then fails: the partial-write crash a journal replay must mask.
	TornWrite
	// StuckIO hangs the request for Extra virtual time and then fails:
	// the blocked-I/O convoy the paper's dmesg traces show.
	StuckIO
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case TransientError:
		return "transient-error"
	case PermanentError:
		return "permanent-error"
	case LatencySpike:
		return "latency-spike"
	case TornWrite:
		return "torn-write"
	case StuckIO:
		return "stuck-io"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault is one scheduled fault rule.
type Fault struct {
	// Kind selects the failure mode.
	Kind Kind
	// Ops selects the targeted operations (default OpAll; TornWrite
	// only ever applies to writes).
	Ops OpMask
	// Start is the window start in virtual time since the wrapper was
	// created.
	Start time.Duration
	// Duration is the window length (ignored for PermanentError; zero
	// means the rule never fires for other kinds).
	Duration time.Duration
	// Probability is the per-request chance the fault fires inside the
	// window (default 1.0).
	Probability float64
	// Extra is the added virtual time for LatencySpike and StuckIO
	// (default 100 ms).
	Extra time.Duration
}

func (f Fault) withDefaults() Fault {
	if f.Ops == 0 {
		f.Ops = OpAll
	}
	if f.Probability == 0 {
		f.Probability = 1
	}
	if f.Extra == 0 {
		f.Extra = 100 * time.Millisecond
	}
	return f
}

// active reports whether the rule's window covers elapsed.
func (f Fault) active(elapsed time.Duration) bool {
	if elapsed < f.Start {
		return false
	}
	if f.Kind == PermanentError {
		return true
	}
	return elapsed < f.Start+f.Duration
}

// Stats counts injected faults and passthrough traffic.
type Stats struct {
	// Reads, Writes, Flushes count requests that reached the wrapper.
	Reads, Writes, Flushes int64
	// InjectedReadErrs, InjectedWriteErrs, InjectedFlushErrs count
	// requests failed by a rule.
	InjectedReadErrs, InjectedWriteErrs, InjectedFlushErrs int64
	// TornWrites, StuckIOs, LatencySpikes count the specialty faults.
	TornWrites, StuckIOs, LatencySpikes int64
}

// Injected returns the total injected error count.
func (s Stats) Injected() int64 {
	return s.InjectedReadErrs + s.InjectedWriteErrs + s.InjectedFlushErrs
}

// Device is a fault-injecting blockdev.Device wrapper.
type Device struct {
	inner  blockdev.Device
	clock  simclock.Clock
	origin time.Time
	faults []Fault
	rng    *rand.Rand
	stats  Stats
}

// Wrap builds a fault-injecting wrapper over inner. The fault windows are
// anchored at the wrapper's creation time on clock; the seed drives
// probabilistic rules.
func Wrap(inner blockdev.Device, clock simclock.Clock, seed int64, faults ...Fault) *Device {
	if seed == 0 {
		seed = 1
	}
	fs := make([]Fault, len(faults))
	for i, f := range faults {
		fs[i] = f.withDefaults()
	}
	return &Device{
		inner:  inner,
		clock:  clock,
		origin: clock.Now(),
		faults: fs,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Stats returns a copy of the counters.
func (d *Device) Stats() Stats { return d.stats }

// Size returns the inner device capacity.
func (d *Device) Size() int64 { return d.inner.Size() }

// match returns the first active rule targeting op whose probability draw
// fires, or nil. Probability draws happen for every active matching rule
// in schedule order, so the RNG stream depends only on the request
// sequence.
func (d *Device) match(op OpMask) *Fault {
	elapsed := d.clock.Now().Sub(d.origin)
	for i := range d.faults {
		f := &d.faults[i]
		if f.Ops&op == 0 || !f.active(elapsed) {
			continue
		}
		if f.Probability >= 1 || d.rng.Float64() < f.Probability {
			return f
		}
	}
	return nil
}

// ReadAt implements blockdev.Device.
func (d *Device) ReadAt(p []byte, off int64) (int, error) {
	d.stats.Reads++
	if f := d.match(OpRead); f != nil {
		switch f.Kind {
		case LatencySpike:
			d.stats.LatencySpikes++
			d.clock.Sleep(f.Extra)
		case StuckIO:
			d.stats.StuckIOs++
			d.stats.InjectedReadErrs++
			d.clock.Sleep(f.Extra)
			return 0, fmt.Errorf("%w: read stuck %v at offset %d", ErrInjected, f.Extra, off)
		default:
			d.stats.InjectedReadErrs++
			return 0, fmt.Errorf("%w: %v read at offset %d", ErrInjected, f.Kind, off)
		}
	}
	return d.inner.ReadAt(p, off)
}

// WriteAt implements blockdev.Device.
func (d *Device) WriteAt(p []byte, off int64) (int, error) {
	d.stats.Writes++
	if f := d.match(OpWrite); f != nil {
		switch f.Kind {
		case LatencySpike:
			d.stats.LatencySpikes++
			d.clock.Sleep(f.Extra)
		case StuckIO:
			d.stats.StuckIOs++
			d.stats.InjectedWriteErrs++
			d.clock.Sleep(f.Extra)
			return 0, fmt.Errorf("%w: write stuck %v at offset %d", ErrInjected, f.Extra, off)
		case TornWrite:
			d.stats.TornWrites++
			d.stats.InjectedWriteErrs++
			n, _ := d.inner.WriteAt(p[:len(p)/2], off)
			return n, fmt.Errorf("%w: torn write at offset %d (%d of %d bytes)", ErrInjected, off, n, len(p))
		default:
			d.stats.InjectedWriteErrs++
			return 0, fmt.Errorf("%w: %v write at offset %d", ErrInjected, f.Kind, off)
		}
	}
	return d.inner.WriteAt(p, off)
}

// Flush implements blockdev.Device.
func (d *Device) Flush() error {
	d.stats.Flushes++
	if f := d.match(OpFlush); f != nil {
		switch f.Kind {
		case LatencySpike:
			d.stats.LatencySpikes++
			d.clock.Sleep(f.Extra)
		case StuckIO:
			d.stats.StuckIOs++
			d.stats.InjectedFlushErrs++
			d.clock.Sleep(f.Extra)
			return fmt.Errorf("%w: flush stuck %v", ErrInjected, f.Extra)
		case TornWrite:
			// A torn flush is just a failed flush: nothing to tear.
			d.stats.InjectedFlushErrs++
			return fmt.Errorf("%w: %v flush", ErrInjected, f.Kind)
		default:
			d.stats.InjectedFlushErrs++
			return fmt.Errorf("%w: %v flush", ErrInjected, f.Kind)
		}
	}
	return d.inner.Flush()
}

// PublishMetrics pushes the harness counters into a registry under the
// "faultinj." prefix (no-op on a nil registry).
func (d *Device) PublishMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s := d.stats
	reg.Add("faultinj.reads", s.Reads)
	reg.Add("faultinj.writes", s.Writes)
	reg.Add("faultinj.flushes", s.Flushes)
	reg.Add("faultinj.injected_read_errors", s.InjectedReadErrs)
	reg.Add("faultinj.injected_write_errors", s.InjectedWriteErrs)
	reg.Add("faultinj.injected_flush_errors", s.InjectedFlushErrs)
	reg.Add("faultinj.torn_writes", s.TornWrites)
	reg.Add("faultinj.stuck_ios", s.StuckIOs)
	reg.Add("faultinj.latency_spikes", s.LatencySpikes)
	reg.Add("faultinj.rules", int64(len(d.faults)))
}

var _ blockdev.Device = (*Device)(nil)
