package faultinj

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/hdd"
	"deepnote/internal/metrics"
	"deepnote/internal/simclock"
)

func newDisk(t *testing.T) (*blockdev.Disk, *simclock.Virtual) {
	t.Helper()
	clock := simclock.NewVirtual()
	drive, err := hdd.NewDrive(hdd.Barracuda500(), clock, 7)
	if err != nil {
		t.Fatal(err)
	}
	return blockdev.NewDisk(drive), clock
}

func TestPassthroughWithoutFaults(t *testing.T) {
	disk, clock := newDisk(t)
	dev := Wrap(disk, clock, 1)
	data := []byte("payload survives the wrapper")
	if _, err := dev.WriteAt(data, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := dev.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("passthrough corrupted data")
	}
	if err := dev.Flush(); err != nil {
		t.Fatal(err)
	}
	if dev.Size() != disk.Size() {
		t.Fatal("size not forwarded")
	}
	s := dev.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.Flushes != 1 || s.Injected() != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTransientWindowInjectsOnlyInside(t *testing.T) {
	disk, clock := newDisk(t)
	dev := Wrap(disk, clock, 1, Fault{
		Kind: TransientError, Ops: OpWrite,
		Start: 10 * time.Second, Duration: 5 * time.Second,
	})
	buf := make([]byte, 512)
	if _, err := dev.WriteAt(buf, 0); err != nil {
		t.Fatalf("write before window: %v", err)
	}
	clock.Advance(12 * time.Second)
	if _, err := dev.WriteAt(buf, 0); !errors.Is(err, blockdev.ErrIO) {
		t.Fatalf("write inside window: %v", err)
	}
	if _, err := dev.ReadAt(buf, 0); err != nil {
		t.Fatalf("read untargeted by write fault: %v", err)
	}
	clock.Advance(5 * time.Second)
	if _, err := dev.WriteAt(buf, 0); err != nil {
		t.Fatalf("write after window: %v", err)
	}
	if got := dev.Stats().InjectedWriteErrs; got != 1 {
		t.Fatalf("injected write errors = %d", got)
	}
}

func TestPermanentErrorNeverRecovers(t *testing.T) {
	disk, clock := newDisk(t)
	dev := Wrap(disk, clock, 1, Fault{Kind: PermanentError, Start: time.Second})
	buf := make([]byte, 512)
	clock.Advance(2 * time.Second)
	for i := 0; i < 3; i++ {
		clock.Advance(time.Hour)
		if _, err := dev.ReadAt(buf, 0); !errors.Is(err, ErrInjected) {
			t.Fatalf("permanent fault recovered: %v", err)
		}
	}
	if err := dev.Flush(); !errors.Is(err, blockdev.ErrIO) {
		t.Fatalf("flush on dead device: %v", err)
	}
}

func TestLatencySpikeChargesTimeAndSucceeds(t *testing.T) {
	disk, clock := newDisk(t)
	dev := Wrap(disk, clock, 1, Fault{
		Kind: LatencySpike, Ops: OpRead, Duration: time.Hour, Extra: 3 * time.Second,
	})
	buf := make([]byte, 512)
	before := clock.Now()
	if _, err := dev.ReadAt(buf, 0); err != nil {
		t.Fatalf("latency spike should succeed: %v", err)
	}
	if elapsed := clock.Now().Sub(before); elapsed < 3*time.Second {
		t.Fatalf("spike charged only %v", elapsed)
	}
	if dev.Stats().LatencySpikes != 1 {
		t.Fatal("spike not counted")
	}
}

func TestStuckIOHangsThenFails(t *testing.T) {
	disk, clock := newDisk(t)
	dev := Wrap(disk, clock, 1, Fault{
		Kind: StuckIO, Ops: OpWrite, Duration: time.Hour, Extra: 30 * time.Second,
	})
	before := clock.Now()
	if _, err := dev.WriteAt(make([]byte, 512), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("stuck write returned %v", err)
	}
	if elapsed := clock.Now().Sub(before); elapsed < 30*time.Second {
		t.Fatalf("stuck I/O charged only %v", elapsed)
	}
}

func TestTornWritePersistsPrefixOnly(t *testing.T) {
	disk, clock := newDisk(t)
	dev := Wrap(disk, clock, 1, Fault{Kind: TornWrite, Ops: OpWrite, Duration: time.Hour})
	data := bytes.Repeat([]byte{0xAB}, 4096)
	n, err := dev.WriteAt(data, 0)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write returned %v", err)
	}
	if n != len(data)/2 {
		t.Fatalf("torn write reported %d bytes", n)
	}
	// The prefix landed on media, the suffix did not.
	got := make([]byte, 4096)
	if _, err := disk.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:2048], data[:2048]) {
		t.Fatal("torn prefix missing")
	}
	if bytes.Equal(got[2048:], data[2048:]) {
		t.Fatal("torn suffix landed in full")
	}
	if dev.Stats().TornWrites != 1 {
		t.Fatal("torn write not counted")
	}
}

func TestProbabilisticFaultIsSeedDeterministic(t *testing.T) {
	run := func() []bool {
		disk, clock := newDisk(t)
		dev := Wrap(disk, clock, 99, Fault{
			Kind: TransientError, Ops: OpWrite, Duration: time.Hour, Probability: 0.5,
		})
		out := make([]bool, 40)
		buf := make([]byte, 512)
		for i := range out {
			_, err := dev.WriteAt(buf, 0)
			out[i] = err != nil
		}
		return out
	}
	a, b := run(), run()
	failures := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs between identical seeds", i)
		}
		if a[i] {
			failures++
		}
	}
	if failures == 0 || failures == len(a) {
		t.Fatalf("probability 0.5 produced %d/%d failures", failures, len(a))
	}
}

func TestComposesWithAcousticAttack(t *testing.T) {
	// The wrapper passes the drive's own (attack-induced) errors through
	// unchanged while contributing its own schedule.
	disk, clock := newDisk(t)
	dev := Wrap(disk, clock, 1) // no rules
	disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
	if _, err := dev.WriteAt(make([]byte, 512), 0); !errors.Is(err, blockdev.ErrIO) {
		t.Fatalf("attacked write through wrapper: %v", err)
	}
	if dev.Stats().Injected() != 0 {
		t.Fatal("drive error miscounted as injected")
	}
}

func TestPublishMetrics(t *testing.T) {
	disk, clock := newDisk(t)
	dev := Wrap(disk, clock, 1, Fault{Kind: TransientError, Ops: OpWrite, Duration: time.Hour})
	_, _ = dev.WriteAt(make([]byte, 512), 0)
	_, _ = dev.ReadAt(make([]byte, 512), 0)
	reg := metrics.NewRegistry()
	dev.PublishMetrics(reg)
	snap := reg.Snapshot()
	if snap.Counters["faultinj.injected_write_errors"] != 1 {
		t.Fatalf("snapshot: %+v", snap.Counters)
	}
	if snap.Counters["faultinj.reads"] != 1 || snap.Counters["faultinj.writes"] != 1 {
		t.Fatalf("snapshot traffic: %+v", snap.Counters)
	}
	dev.PublishMetrics(nil) // must not panic
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		TransientError: "transient-error",
		PermanentError: "permanent-error",
		LatencySpike:   "latency-spike",
		TornWrite:      "torn-write",
		StuckIO:        "stuck-io",
	} {
		if k.String() != want {
			t.Fatalf("%d: %q", int(k), k.String())
		}
	}
}
