// Package fio is a Flexible-I/O-Tester workalike for the simulated block
// device: it runs the paper's measurement workloads (sequential read and
// sequential write at 4 KB granularity) and reports throughput, latency, and
// IOPS the way the paper's Tables 1 and Figure 2 do, including the
// "no response" condition when the device stops completing requests.
package fio

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/metrics"
	"deepnote/internal/simclock"
)

// Pattern is the access pattern of a job.
type Pattern int

// Supported patterns.
const (
	SeqRead Pattern = iota
	SeqWrite
	RandRead
	RandWrite
)

// String names the pattern using fio's vocabulary.
func (p Pattern) String() string {
	switch p {
	case SeqRead:
		return "read"
	case SeqWrite:
		return "write"
	case RandRead:
		return "randread"
	case RandWrite:
		return "randwrite"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// IsWrite reports whether the pattern issues writes.
func (p Pattern) IsWrite() bool { return p == SeqWrite || p == RandWrite }

// IsRandom reports whether the pattern randomizes offsets.
func (p Pattern) IsRandom() bool { return p == RandRead || p == RandWrite || p == MixedRand }

// IsMixed reports whether the pattern blends reads and writes.
func (p Pattern) IsMixed() bool { return p == MixedSeq || p == MixedRand }

// Job describes one fio-style workload.
type Job struct {
	// Name labels the job in reports.
	Name string
	// Pattern selects the access pattern.
	Pattern Pattern
	// BlockSize is the per-request size in bytes (the paper uses 4 KB).
	BlockSize int
	// Span is the device region the job covers, starting at Offset.
	Offset, Span int64
	// Runtime bounds the job in virtual time.
	Runtime time.Duration
	// MaxOps optionally bounds the number of requests (0 = unlimited).
	MaxOps int
	// Seed drives the random pattern generator.
	Seed int64
	// ReadPercent sets the read share for mixed patterns (default 50
	// when the pattern is mixed; ignored otherwise).
	ReadPercent int
}

// PaperJob returns the paper's measurement job: sequential 4 KB over a
// 1 GiB span for the given virtual runtime.
func PaperJob(p Pattern, runtime time.Duration) Job {
	return Job{
		Name:      p.String(),
		Pattern:   p,
		BlockSize: 4096,
		Span:      1 << 30,
		Runtime:   runtime,
		Seed:      1,
	}
}

// Validate reports whether the job is well-formed for a device of the given
// size.
func (j Job) Validate(devSize int64) error {
	if j.BlockSize <= 0 {
		return fmt.Errorf("fio: job %q block size must be positive", j.Name)
	}
	if j.Span < int64(j.BlockSize) {
		return fmt.Errorf("fio: job %q span %d below block size %d", j.Name, j.Span, j.BlockSize)
	}
	if j.Offset < 0 || j.Offset+j.Span > devSize {
		return fmt.Errorf("fio: job %q region [%d, %d) outside device of %d", j.Name, j.Offset, j.Offset+j.Span, devSize)
	}
	if j.Runtime <= 0 && j.MaxOps <= 0 {
		return fmt.Errorf("fio: job %q needs a runtime or an op budget", j.Name)
	}
	return nil
}

// Result is the job's measurement outcome.
type Result struct {
	// Job echoes the job definition.
	Job Job
	// Ops and Errors count completed and failed requests.
	Ops, Errors int
	// Bytes is the total payload moved by completed requests.
	Bytes int64
	// Elapsed is the virtual time consumed.
	Elapsed time.Duration
	// Latencies summarizes completed-request service times.
	Latencies LatencySummary
	// ErrorLatencies summarizes the service times of failed requests.
	// Failed I/Os consume virtual time (retry storms are the attack's
	// signature), so dropping them would hide exactly the delays the
	// attack induces.
	ErrorLatencies LatencySummary
	// NoResponse is set when the device completed no requests at all —
	// the paper's "-" entries in Table 1.
	NoResponse bool
}

// ThroughputMBps returns payload throughput in MB/s (decimal megabytes,
// matching the paper's units).
func (r Result) ThroughputMBps() float64 {
	secs := r.Elapsed.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / secs
}

// IOPS returns completed requests per second.
func (r Result) IOPS() float64 {
	secs := r.Elapsed.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(r.Ops) / secs
}

// LatencySummary aggregates per-request latencies.
type LatencySummary struct {
	// Count is the number of samples.
	Count int
	// Mean, P50, P99, and Max summarize the distribution.
	Mean, P50, P99, Max time.Duration
}

func summarize(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, s := range sorted {
		sum += s
	}
	// Nearest-rank percentile: the smallest sample whose rank covers a
	// q fraction of the population. A truncating index under-reports for
	// small n (n=10 put P99 at the 9th value, not the max).
	pick := func(q float64) time.Duration {
		idx := int(math.Ceil(q*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return sorted[idx]
	}
	return LatencySummary{
		Count: len(sorted),
		Mean:  sum / time.Duration(len(sorted)),
		P50:   pick(0.50),
		P99:   pick(0.99),
		Max:   sorted[len(sorted)-1],
	}
}

// Runner executes jobs against a device on a virtual clock.
type Runner struct {
	dev   blockdev.Device
	clock simclock.Clock

	reg *metrics.Registry
	// Pre-resolved histogram handles: the per-op hot path does one
	// atomic bucket increment instead of a registry map lookup.
	latOK, latErr *metrics.Histogram
}

// NewRunner returns a runner bound to a device and clock.
func NewRunner(dev blockdev.Device, clock simclock.Clock) *Runner {
	return &Runner{dev: dev, clock: clock}
}

// WithMetrics attaches a registry: per-op latencies stream into
// "fio.lat_ok_ns" / "fio.lat_err_ns" histograms and each Run publishes
// its op/byte/error counters. A nil registry leaves the runner
// uninstrumented; either way the simulation outcome is unchanged, because
// metrics never touch the clock or the workload RNG.
func (r *Runner) WithMetrics(reg *metrics.Registry) *Runner {
	r.reg = reg
	if reg != nil {
		r.latOK = reg.Histogram("fio.lat_ok_ns")
		r.latErr = reg.Histogram("fio.lat_err_ns")
	}
	return r
}

// Run executes the job to completion (runtime or op budget, whichever
// first) and returns its measurements. Failed requests are counted and the
// runner presses on, like fio with continue_on_error.
func (r *Runner) Run(job Job) (Result, error) {
	if err := job.Validate(r.dev.Size()); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(job.Seed))
	buf := make([]byte, job.BlockSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	blocks := job.Span / int64(job.BlockSize)

	res := Result{Job: job}
	var lats, errLats []time.Duration
	start := r.clock.Now()
	var seq int64
	for i := 0; ; i++ {
		if job.MaxOps > 0 && i >= job.MaxOps {
			break
		}
		if job.Runtime > 0 && r.clock.Now().Sub(start) >= job.Runtime {
			break
		}
		var block int64
		if job.Pattern.IsRandom() {
			block = rng.Int63n(blocks)
		} else {
			block = seq % blocks
			seq++
		}
		off := job.Offset + block*int64(job.BlockSize)

		write := job.Pattern.IsWrite()
		if job.Pattern.IsMixed() {
			rp := job.ReadPercent
			if rp <= 0 {
				rp = 50
			}
			write = rng.Intn(100) >= rp
		}
		opStart := r.clock.Now()
		var err error
		if write {
			_, err = r.dev.WriteAt(buf, off)
		} else {
			_, err = r.dev.ReadAt(buf, off)
		}
		lat := r.clock.Now().Sub(opStart)
		if err != nil {
			res.Errors++
			errLats = append(errLats, lat)
			r.latErr.ObserveDuration(lat)
			continue
		}
		res.Ops++
		res.Bytes += int64(job.BlockSize)
		lats = append(lats, lat)
		r.latOK.ObserveDuration(lat)
	}
	res.Elapsed = r.clock.Now().Sub(start)
	res.Latencies = summarize(lats)
	res.ErrorLatencies = summarize(errLats)
	res.NoResponse = res.Ops == 0
	r.publish(res)
	return res, nil
}

// publish pushes one run's totals into the attached registry (no-op
// without one).
func (r *Runner) publish(res Result) {
	if r.reg == nil {
		return
	}
	r.reg.Add("fio.runs", 1)
	r.reg.Add("fio.ops", int64(res.Ops))
	r.reg.Add("fio.errors", int64(res.Errors))
	r.reg.Add("fio.bytes", res.Bytes)
	if res.NoResponse {
		r.reg.Add("fio.no_response_runs", 1)
	}
}
