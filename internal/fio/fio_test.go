package fio

import (
	"math"
	"testing"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/hdd"
	"deepnote/internal/simclock"
)

func newRig(t *testing.T) (*Runner, *blockdev.Disk, *simclock.Virtual) {
	t.Helper()
	clock := simclock.NewVirtual()
	drive, err := hdd.NewDrive(hdd.Barracuda500(), clock, 5)
	if err != nil {
		t.Fatal(err)
	}
	disk := blockdev.NewDisk(drive)
	return NewRunner(disk, clock), disk, clock
}

func TestPatternStrings(t *testing.T) {
	cases := map[Pattern]string{
		SeqRead: "read", SeqWrite: "write", RandRead: "randread", RandWrite: "randwrite",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
	if Pattern(99).String() == "" {
		t.Error("unknown pattern should still render")
	}
	if !SeqWrite.IsWrite() || SeqRead.IsWrite() {
		t.Error("IsWrite misbehaves")
	}
	if !RandRead.IsRandom() || SeqRead.IsRandom() {
		t.Error("IsRandom misbehaves")
	}
}

func TestJobValidate(t *testing.T) {
	dev := int64(1 << 40)
	good := PaperJob(SeqRead, time.Second)
	if err := good.Validate(dev); err != nil {
		t.Fatal(err)
	}
	bad := []Job{
		{Pattern: SeqRead, BlockSize: 0, Span: 1 << 20, Runtime: time.Second},
		{Pattern: SeqRead, BlockSize: 4096, Span: 1024, Runtime: time.Second},
		{Pattern: SeqRead, BlockSize: 4096, Span: 1 << 20, Offset: -1, Runtime: time.Second},
		{Pattern: SeqRead, BlockSize: 4096, Span: 1 << 20, Offset: dev, Runtime: time.Second},
		{Pattern: SeqRead, BlockSize: 4096, Span: 1 << 20},
	}
	for i, j := range bad {
		if err := j.Validate(dev); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNoAttackThroughputMatchesPaperTable1(t *testing.T) {
	// Paper Table 1, "No Attack": read 18.0 MB/s, write 22.7 MB/s,
	// latency 0.2 ms for both.
	for _, tc := range []struct {
		p       Pattern
		wantMB  float64
		wantLat float64 // ms
	}{
		{SeqRead, 18.0, 0.2},
		{SeqWrite, 22.7, 0.2},
	} {
		r, _, _ := newRig(t)
		res, err := r.Run(PaperJob(tc.p, 2*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		if got := res.ThroughputMBps(); math.Abs(got-tc.wantMB)/tc.wantMB > 0.08 {
			t.Errorf("%v: throughput = %.1f MB/s, want ≈%.1f", tc.p, got, tc.wantMB)
		}
		if got := res.Latencies.Mean.Seconds() * 1000; math.Abs(got-tc.wantLat) > 0.1 {
			t.Errorf("%v: mean latency = %.2f ms, want ≈%.1f", tc.p, got, tc.wantLat)
		}
		if res.NoResponse {
			t.Errorf("%v: unexpected NoResponse", tc.p)
		}
		if res.Errors != 0 {
			t.Errorf("%v: unexpected errors %d", tc.p, res.Errors)
		}
	}
}

func TestHeavyAttackGivesNoResponse(t *testing.T) {
	// Paper Table 1 at 1 cm: zero throughput, no latency measurable.
	r, disk, _ := newRig(t)
	disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 2.4})
	res, err := r.Run(PaperJob(SeqWrite, 2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !res.NoResponse {
		t.Fatalf("expected NoResponse, got %d ops", res.Ops)
	}
	if res.ThroughputMBps() != 0 {
		t.Fatalf("throughput = %v, want 0", res.ThroughputMBps())
	}
	if res.Errors == 0 {
		t.Fatal("expected failed requests to be counted")
	}
}

func TestModerateAttackDegradesWritesMoreThanReads(t *testing.T) {
	amp := 0.2 // between write (0.15) and read (0.26) thresholds
	run := func(p Pattern) Result {
		r, disk, _ := newRig(t)
		disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: amp})
		res, err := r.Run(PaperJob(p, 2*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	read := run(SeqRead)
	write := run(SeqWrite)
	if write.ThroughputMBps() >= read.ThroughputMBps() {
		t.Fatalf("write %.1f MB/s should degrade below read %.1f MB/s",
			write.ThroughputMBps(), read.ThroughputMBps())
	}
	if write.ThroughputMBps() >= 22.7*0.8 {
		t.Fatalf("write throughput %.1f should be visibly degraded", write.ThroughputMBps())
	}
}

func TestRandomPatternsSlower(t *testing.T) {
	r, _, _ := newRig(t)
	seqRes, err := r.Run(PaperJob(SeqRead, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	r2, _, _ := newRig(t)
	rnd := PaperJob(RandRead, time.Second)
	rndRes, err := r2.Run(rnd)
	if err != nil {
		t.Fatal(err)
	}
	if rndRes.ThroughputMBps() >= seqRes.ThroughputMBps()/5 {
		t.Fatalf("random read %.2f MB/s should be much slower than sequential %.2f",
			rndRes.ThroughputMBps(), seqRes.ThroughputMBps())
	}
}

func TestMaxOpsBoundsJob(t *testing.T) {
	r, _, _ := newRig(t)
	job := PaperJob(SeqWrite, 0)
	job.Runtime = 0
	job.MaxOps = 100
	res, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 100 {
		t.Fatalf("ops = %d, want 100", res.Ops)
	}
}

func TestIOPSAndThroughputConsistent(t *testing.T) {
	r, _, _ := newRig(t)
	res, err := r.Run(PaperJob(SeqRead, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	wantIOPS := res.ThroughputMBps() * 1e6 / 4096
	if math.Abs(res.IOPS()-wantIOPS)/wantIOPS > 0.01 {
		t.Fatalf("IOPS %v inconsistent with throughput-derived %v", res.IOPS(), wantIOPS)
	}
}

func TestLatencySummary(t *testing.T) {
	s := summarize([]time.Duration{4 * time.Millisecond, 1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond})
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Mean != 2500*time.Microsecond {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Max != 4*time.Millisecond {
		t.Fatalf("max = %v", s.Max)
	}
	if s.P50 != 2*time.Millisecond {
		t.Fatalf("p50 = %v", s.P50)
	}
	if got := summarize(nil); got.Count != 0 || got.Mean != 0 {
		t.Fatalf("empty summary = %+v", got)
	}
}

func TestPercentilesNearestRankSmallN(t *testing.T) {
	// Regression: with n=10 distinct samples, a truncating index put P99
	// at the 9th value instead of the max. Nearest-rank (ceil(q·n)) must
	// return the max for any q > 0.9 at n=10.
	samples := make([]time.Duration, 10)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	s := summarize(samples)
	if s.P99 != 10*time.Millisecond {
		t.Fatalf("P99 of 1..10ms = %v, want 10ms (nearest rank)", s.P99)
	}
	if s.P50 != 5*time.Millisecond {
		t.Fatalf("P50 of 1..10ms = %v, want 5ms", s.P50)
	}
	// n=1: every percentile is that sample.
	one := summarize([]time.Duration{7 * time.Millisecond})
	if one.P50 != 7*time.Millisecond || one.P99 != 7*time.Millisecond {
		t.Fatalf("n=1 percentiles = %+v", one)
	}
}

func TestErrorLatenciesRecorded(t *testing.T) {
	// Regression: failed ops consume virtual time but used to vanish
	// from the latency accounting entirely.
	r, disk, _ := newRig(t)
	disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 2.4})
	res, err := r.Run(PaperJob(SeqWrite, 2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatal("expected failed requests under a heavy attack")
	}
	if res.ErrorLatencies.Count != res.Errors {
		t.Fatalf("ErrorLatencies.Count = %d, want %d (one sample per failed op)",
			res.ErrorLatencies.Count, res.Errors)
	}
	if res.ErrorLatencies.Mean <= 0 || res.ErrorLatencies.Max < res.ErrorLatencies.P50 {
		t.Fatalf("implausible error-latency summary: %+v", res.ErrorLatencies)
	}
	if res.Latencies.Count != 0 {
		t.Fatalf("no ops completed, but Latencies.Count = %d", res.Latencies.Count)
	}
}

func TestZeroElapsedResultAccessors(t *testing.T) {
	var r Result
	if r.ThroughputMBps() != 0 || r.IOPS() != 0 {
		t.Fatal("zero result accessors must return 0")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Result {
		r, disk, _ := newRig(t)
		disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 0.18})
		res, err := r.Run(PaperJob(SeqWrite, time.Second))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Ops != b.Ops || a.Errors != b.Errors || a.Bytes != b.Bytes {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
