package fio

import (
	"fmt"
	"math/rand"
	"time"
)

// Mixed patterns extend the base set: a read/write blend at a configurable
// ratio, fio's rw=readwrite / randrw modes.
const (
	MixedSeq Pattern = iota + 100
	MixedRand
)

// patternName resolves mixed pattern names; plain patterns defer to
// Pattern.String.
func patternName(p Pattern) string {
	switch p {
	case MixedSeq:
		return "readwrite"
	case MixedRand:
		return "randrw"
	default:
		return p.String()
	}
}

// MixedJob returns a blended workload: readPercent% reads, the rest
// writes, sequential or random per the pattern.
func MixedJob(p Pattern, readPercent int, runtime time.Duration) Job {
	if p != MixedSeq && p != MixedRand {
		p = MixedSeq
	}
	return Job{
		Name:        patternName(p),
		Pattern:     p,
		BlockSize:   4096,
		Span:        1 << 30,
		Runtime:     runtime,
		Seed:        1,
		ReadPercent: readPercent,
	}
}

// TraceOp is one recorded I/O for replay.
type TraceOp struct {
	// Write selects the direction.
	Write bool
	// Offset and Size locate the request.
	Offset int64
	Size   int
}

// GenerateTrace synthesizes a reproducible trace with the given pattern
// characteristics — a stand-in for captured production traces, which the
// paper's data-center framing would use here.
func GenerateTrace(p Pattern, n int, blockSize int, span int64, readPercent int, seed int64) []TraceOp {
	rng := rand.New(rand.NewSource(seed))
	blocks := span / int64(blockSize)
	if blocks <= 0 {
		return nil
	}
	ops := make([]TraceOp, 0, n)
	var seq int64
	for i := 0; i < n; i++ {
		var block int64
		if p.IsRandom() || p == MixedRand {
			block = rng.Int63n(blocks)
		} else {
			block = seq % blocks
			seq++
		}
		write := p.IsWrite()
		switch p {
		case MixedSeq, MixedRand:
			write = rng.Intn(100) >= readPercent
		}
		ops = append(ops, TraceOp{Write: write, Offset: block * int64(blockSize), Size: blockSize})
	}
	return ops
}

// Replay runs a trace against the device, measuring like Run. Ops beyond
// the device fail validation individually and count as errors.
func (r *Runner) Replay(name string, ops []TraceOp) (Result, error) {
	if len(ops) == 0 {
		return Result{}, fmt.Errorf("fio: empty trace %q", name)
	}
	res := Result{Job: Job{Name: name, Pattern: MixedRand}}
	var lats []time.Duration
	start := r.clock.Now()
	for _, op := range ops {
		if op.Size <= 0 || op.Offset < 0 || op.Offset+int64(op.Size) > r.dev.Size() {
			res.Errors++
			continue
		}
		buf := make([]byte, op.Size)
		opStart := r.clock.Now()
		var err error
		if op.Write {
			_, err = r.dev.WriteAt(buf, op.Offset)
		} else {
			_, err = r.dev.ReadAt(buf, op.Offset)
		}
		if err != nil {
			res.Errors++
			continue
		}
		res.Ops++
		res.Bytes += int64(op.Size)
		lats = append(lats, r.clock.Now().Sub(opStart))
	}
	res.Elapsed = r.clock.Now().Sub(start)
	res.Latencies = summarize(lats)
	res.NoResponse = res.Ops == 0
	return res, nil
}
