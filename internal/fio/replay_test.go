package fio

import (
	"testing"
	"time"

	"deepnote/internal/hdd"
)

func TestMixedJobBlendsDirections(t *testing.T) {
	r, disk, _ := newRig(t)
	job := MixedJob(MixedSeq, 70, time.Second)
	res, err := r.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Errors != 0 {
		t.Fatalf("mixed run: %+v", res)
	}
	s := disk.Stats()
	if s.ReadOps == 0 || s.WriteOps == 0 {
		t.Fatalf("mixed job issued reads=%d writes=%d, want both", s.ReadOps, s.WriteOps)
	}
	// 70% reads within sampling tolerance.
	frac := float64(s.ReadOps) / float64(s.ReadOps+s.WriteOps)
	if frac < 0.6 || frac > 0.8 {
		t.Fatalf("read fraction = %.2f, want ≈0.7", frac)
	}
}

func TestMixedWorkloadDegradesPartiallyUnderWriteKillingAttack(t *testing.T) {
	// At an amplitude between the write and read thresholds a mixed
	// workload loses its writes but keeps serving reads — the blended
	// throughput lands in between.
	quietRig, _, _ := newRig(t)
	quiet, err := quietRig.Run(MixedJob(MixedSeq, 50, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	r, disk, _ := newRig(t)
	disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 0.2})
	hit, err := r.Run(MixedJob(MixedSeq, 50, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if hit.ThroughputMBps() >= quiet.ThroughputMBps()*0.9 {
		t.Fatalf("mixed throughput barely degraded: %.1f vs %.1f",
			hit.ThroughputMBps(), quiet.ThroughputMBps())
	}
	if hit.NoResponse {
		t.Fatal("reads should keep the mixed workload alive")
	}
}

func TestGenerateTraceShape(t *testing.T) {
	ops := GenerateTrace(MixedRand, 1000, 4096, 1<<30, 30, 7)
	if len(ops) != 1000 {
		t.Fatalf("ops = %d", len(ops))
	}
	writes := 0
	for _, op := range ops {
		if op.Size != 4096 || op.Offset < 0 || op.Offset >= 1<<30 {
			t.Fatalf("bad op %+v", op)
		}
		if op.Write {
			writes++
		}
	}
	if writes < 600 || writes > 800 {
		t.Fatalf("writes = %d, want ≈700 (30%% reads)", writes)
	}
	// Sequential traces advance linearly.
	seq := GenerateTrace(SeqRead, 5, 4096, 1<<20, 0, 7)
	for i, op := range seq {
		if op.Offset != int64(i*4096) || op.Write {
			t.Fatalf("seq trace op %d = %+v", i, op)
		}
	}
	if GenerateTrace(SeqRead, 5, 4096, 0, 0, 7) != nil {
		t.Fatal("zero-span trace should be nil")
	}
}

func TestReplay(t *testing.T) {
	r, _, _ := newRig(t)
	ops := GenerateTrace(MixedSeq, 500, 4096, 1<<20, 50, 3)
	res, err := r.Replay("synthetic", ops)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 500 || res.Errors != 0 {
		t.Fatalf("replay: %+v", res)
	}
	if res.ThroughputMBps() <= 0 {
		t.Fatal("no throughput measured")
	}
	if _, err := r.Replay("empty", nil); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestReplayCountsInvalidOps(t *testing.T) {
	r, _, _ := newRig(t)
	ops := []TraceOp{
		{Write: true, Offset: 0, Size: 4096},
		{Write: true, Offset: -4, Size: 4096},
		{Write: false, Offset: 0, Size: 0},
	}
	res, err := r.Replay("partial", ops)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 1 || res.Errors != 2 {
		t.Fatalf("replay: %+v", res)
	}
}

func TestPatternNameMixed(t *testing.T) {
	if patternName(MixedSeq) != "readwrite" || patternName(MixedRand) != "randrw" {
		t.Fatal("mixed names")
	}
	if patternName(SeqRead) != "read" {
		t.Fatal("plain names must pass through")
	}
	if !MixedRand.IsRandom() || MixedSeq.IsRandom() {
		t.Fatal("mixed randomness flags")
	}
	if !MixedSeq.IsMixed() || SeqRead.IsMixed() {
		t.Fatal("IsMixed flags")
	}
}
