package fleet

import (
	"testing"
	"time"

	"deepnote/internal/cluster"
)

// TestAttackAwarePlacementBeatsNaiveUnderFacilityAttack is the tier's
// headline acceptance: during a facility-level acoustic attack (three
// contiguous containers of site 0 silenced) with concurrent WAN faults
// (a link flap and a brownout over the same window), attack-aware
// placement must hold strictly higher GET availability and a strictly
// lower time-to-verdict P99 than the naive locality-greedy layout — and
// neither may ever serve corrupt bytes.
func TestAttackAwarePlacementBeatsNaiveUnderFacilityAttack(t *testing.T) {
	aware := serveAttacked(t, PlacementAttackAware, 0)
	naive := serveAttacked(t, PlacementNaive, 0)
	if aware.CorruptReads != 0 || naive.CorruptReads != 0 {
		t.Fatalf("corrupt reads: aware=%d naive=%d", aware.CorruptReads, naive.CorruptReads)
	}
	awareW, naiveW := aware.Window(atkStart, atkEnd), naive.Window(atkStart, atkEnd)
	if naiveW.GetAvailability() >= 0.999 {
		t.Fatalf("attack too weak: naive GET availability %.4f in the attack window", naiveW.GetAvailability())
	}
	if a, n := awareW.GetAvailability(), naiveW.GetAvailability(); a <= n {
		t.Fatalf("attack-aware GET availability %.4f not above naive %.4f during the attack", a, n)
	}
	if awareW.P99 >= naiveW.P99 {
		t.Fatalf("attack-aware P99 %v not below naive %v during the attack", awareW.P99, naiveW.P99)
	}
	if a, n := aware.GetAvailability(), naive.GetAvailability(); a <= n {
		t.Fatalf("attack-aware whole-run GET availability %.4f not above naive %.4f", a, n)
	}
	// The robustness machinery must actually have engaged: failover
	// waves past the blast, drops on the flapped link, a breaker
	// incident, and degraded (yet correct) reads.
	for name, v := range map[string]int{
		"aware failover waves": aware.FailoverWaves,
		"aware degraded reads": aware.DegradedReads,
		"aware WAN drops":      aware.WANDrops,
		"naive WAN drops":      naive.WANDrops,
	} {
		if v == 0 {
			t.Fatalf("%s = 0; the campaign never exercised the machinery", name)
		}
	}
	// Outside the attack window the aware fleet must recover to full
	// availability — the incident ends, the breakers close.
	after := aware.Window(atkEnd+100*time.Millisecond, aware.Span+1)
	if after.Gets > 0 && after.GetAvailability() != 1 {
		t.Fatalf("aware fleet did not recover after the attack: %.4f", after.GetAvailability())
	}
}

// TestShedPolicyFailsFastWhenSourcesUnreachable: with Shed on, a GET
// whose remaining sources sit behind a dead link is failed immediately
// instead of burning its whole deadline budget on doomed waves.
func TestShedPolicyFailsFastWhenSourcesUnreachable(t *testing.T) {
	run := func(shed bool) Result {
		cfg := testFleetConfig(PlacementNaive, 0)
		cfg.Resilience.Shed = shed
		// Site 0 partitioned for the entire run: every cross-site read
		// of a site-0-homed object is doomed.
		cfg.WAN.Faults = []Fault{{Kind: SitePartition, A: 0, Duration: time.Hour}}
		f := buildFleet(t, cfg)
		res, err := f.Serve(TrafficSpec{Requests: 600, Rate: 1500})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	shed, degrade := run(true), run(false)
	if shed.ShedRequests == 0 {
		t.Fatal("shed policy never shed a doomed request")
	}
	if degrade.ShedRequests != 0 {
		t.Fatalf("serve-degraded policy shed %d requests", degrade.ShedRequests)
	}
	// Serve-degraded keeps probing the dead link, so it burns strictly
	// more doomed ops than the shedding gateway.
	if shed.WANDrops+shed.FastFails >= degrade.WANDrops+degrade.FastFails {
		t.Fatalf("shedding burned as many doomed ops (%d) as serve-degraded (%d)",
			shed.WANDrops+shed.FastFails, degrade.WANDrops+degrade.FastFails)
	}
	if shed.CorruptReads != 0 || degrade.CorruptReads != 0 {
		t.Fatalf("corrupt reads: shed=%d degrade=%d", shed.CorruptReads, degrade.CorruptReads)
	}
}

// TestAttackWindowRecovery: the attack schedule is honored in time —
// availability inside the keyed-on window drops, and the same fleet
// serves clean before and after it (speakers off, WAN healthy).
func TestAttackWindowRecovery(t *testing.T) {
	res := serveAttacked(t, PlacementNaive, 0)
	// Keep a margin before the key-on: a request arriving just before
	// the attack legitimately completes inside it.
	before := res.Window(0, atkStart-200*time.Millisecond)
	during := res.Window(atkStart, atkEnd)
	if before.GetAvailability() != 1 {
		t.Fatalf("pre-attack availability %.4f, want 1", before.GetAvailability())
	}
	if during.GetAvailability() >= before.GetAvailability() {
		t.Fatalf("attack window availability %.4f not below pre-attack %.4f",
			during.GetAvailability(), before.GetAvailability())
	}
	if during.P99 <= before.P99 {
		t.Fatalf("attack window P99 %v not above pre-attack %v", during.P99, before.P99)
	}
}

// TestHedgingEngagesUnderBrownout: a heavy brownout on every link
// stretches cross-site reads past HedgeAfter, so failover waves must
// start hedging (and the hedges must not double-count).
func TestHedgingEngagesUnderBrownout(t *testing.T) {
	cfg := testFleetConfig(PlacementAttackAware, 0, 0, 1, 2)
	cfg.WAN.Faults = []Fault{
		{Kind: Brownout, A: 0, B: 1, Duration: time.Hour, Factor: 8},
		{Kind: Brownout, A: 0, B: 2, Duration: time.Hour, Factor: 8},
		{Kind: Brownout, A: 1, B: 2, Duration: time.Hour, Factor: 8},
	}
	f := buildFleet(t, cfg)
	if err := f.SetAttack(0, []cluster.ScheduleStep{{At: 0, Active: []bool{true, true, true}}}); err != nil {
		t.Fatal(err)
	}
	res, err := f.Serve(TrafficSpec{Requests: 800, Rate: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if res.HedgedRequests == 0 {
		t.Fatal("no request hedged despite browned-out failover")
	}
	if res.HedgedRequests > res.Gets {
		t.Fatalf("hedged requests %d exceed GETs %d (double-counted)", res.HedgedRequests, res.Gets)
	}
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads: %d", res.CorruptReads)
	}
}
