// Package fleet lifts the single-facility cluster into a geo-distributed
// multi-facility tier: several cluster.Layout sites connected by a
// deterministic WAN model (per-link latency distributions, bandwidth
// serialization, injected link flaps, site partitions, and brownouts),
// with a cross-facility placement layer that spreads erasure shards
// across acoustic blast radii within a site and across sites.
//
// The serving engine reuses the event-driven core (internal/sched): every
// node drains its own event queue on its own virtual clock, cross-node
// causality is resolved at epoch boundaries, and every stochastic draw is
// a pure hash of (seed, event) — so results are byte-identical at any
// worker count. Robustness is the point of the tier: cross-site failover
// reads under per-request deadline budgets, doubling backoff with
// tail-triggered hedging, a circuit breaker per WAN link, and a
// serve-degraded vs. shed policy for when a whole facility goes dark
// mid-attack.
package fleet

import (
	"context"
	"fmt"
	"sort"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/cluster"
	"deepnote/internal/enclosure"
	"deepnote/internal/hdd"
	"deepnote/internal/metrics"
	"deepnote/internal/netstore"
	"deepnote/internal/parallel"
	"deepnote/internal/sched"
	"deepnote/internal/simclock"
	"deepnote/internal/units"
)

// SiteSpec is one facility: a named cluster layout in its own water body
// (sites are acoustically isolated from each other — only the WAN and
// the placement couple them).
type SiteSpec struct {
	Name   string
	Layout cluster.Layout
}

// Resilience tunes the fleet gateway's robustness machinery, mirroring
// the netstore.Config.Resilience idioms at WAN scale.
type Resilience struct {
	// Deadline is the per-request issue budget: no failover wave is
	// issued after arrival+Deadline, and a wave whose doubled backoff
	// would overshoot the deadline is clamped to a final attempt at the
	// deadline edge (the blockdev.Retrier boundary contract). Default
	// 500 ms.
	Deadline time.Duration
	// RetryBackoff is the sleep before the first failover wave; it
	// doubles each wave (default 15 ms).
	RetryBackoff time.Duration
	// HedgeAfter triggers hedging: a failover wave issued after the
	// request has already been in flight longer than this requests one
	// source beyond what it strictly needs (default 120 ms).
	HedgeAfter time.Duration
	// BreakerThreshold opens a WAN link's circuit breaker after this
	// many consecutive failed ops over the link (default 6).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds ops before
	// letting a probe through (default 300 ms).
	BreakerCooldown time.Duration
	// Shed switches the degradation policy when sources are unreachable:
	// false (default) is serve-degraded — keep walking parity and remote
	// sites until the deadline budget runs out; true sheds the request
	// immediately once the reachable sources cannot complete it.
	Shed bool
}

func (r Resilience) withDefaults() Resilience {
	if r.Deadline <= 0 {
		r.Deadline = 500 * time.Millisecond
	}
	if r.RetryBackoff <= 0 {
		r.RetryBackoff = 15 * time.Millisecond
	}
	if r.HedgeAfter <= 0 {
		r.HedgeAfter = 120 * time.Millisecond
	}
	if r.BreakerThreshold <= 0 {
		r.BreakerThreshold = 6
	}
	if r.BreakerCooldown <= 0 {
		r.BreakerCooldown = 300 * time.Millisecond
	}
	return r
}

// Config sizes the fleet.
type Config struct {
	// Sites are the facilities (at least two).
	Sites []SiteSpec
	// DataShards (k) and ParityShards (m) set the erasure code
	// (defaults 4+2). Every object is striped k-of-n across nodes
	// chosen by Placement.
	DataShards, ParityShards int
	// Objects is the global keyspace size (default 64).
	Objects int
	// ObjectSize is the client object size in bytes (default 32 KiB).
	ObjectSize int
	// Placement chooses the shard-spreading policy (default
	// PlacementAttackAware).
	Placement Placement
	// Net templates the per-node netstore servers; ObjectSize, Objects,
	// and Seed are overridden per node.
	Net netstore.Config
	// WAN models the inter-site network.
	WAN WANConfig
	// Resilience tunes the gateway's failover machinery.
	Resilience Resilience
	// Seed drives every stochastic element; sub-seeds are derived with
	// parallel.SeedFor and per-op draws with sched.Hash64, so results
	// are identical at any worker count. nil means 1; an explicit
	// cluster.Ptr(int64(0)) is honored.
	Seed *int64
	// Workers bounds the fan-out across nodes (≤ 0 = all CPUs). Worker
	// count never changes results, only wall-clock time.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.DataShards <= 0 {
		c.DataShards = 4
	}
	if c.ParityShards <= 0 {
		c.ParityShards = 2
	}
	if c.Objects <= 0 {
		c.Objects = 64
	}
	if c.ObjectSize <= 0 {
		c.ObjectSize = 32 << 10
	}
	if c.Seed == nil {
		c.Seed = cluster.Ptr(int64(1))
	}
	c.WAN = c.WAN.withDefaults()
	c.Resilience = c.Resilience.withDefaults()
	return c
}

func (c Config) seed() int64 { return *c.Seed }

// node is one container's victim stack at a site: mechanics on its own
// virtual clock, a block device, a netstore front end, and its own event
// queue — the same per-resource isolation that makes the cluster engine
// deterministic at any worker count.
type node struct {
	site, container int
	asm             enclosure.Assembly
	clock           *simclock.Virtual
	drive           *hdd.Drive
	disk            *blockdev.Disk
	server          *netstore.Server
	stepIdx         int
	runner          sched.Runner
}

// Fleet is the assembled multi-facility store.
type Fleet struct {
	cfg       Config
	coder     *cluster.Coder
	shardSize int
	model     hdd.Model
	nodes     []*node
	siteBase  []int // first node index per site
	siteSize  []int // nodes (containers) per site

	// stripes caches each object's encoded shards; client PUTs rewrite
	// the same deterministic content, so GET verification is exact.
	stripes [][][]byte

	// Per-site cached transfer functions: tf[s] holds site s's
	// per-(speaker, local node) gains, tfFreqs[s] the speaker tones.
	tf      []sched.TransferCache
	tfFreqs [][]units.Frequency

	// schedules[s] is site s's attack schedule; vibs[s][step][local]
	// the precomputed superposed vibrations.
	schedules [][]cluster.ScheduleStep
	vibs      [][][]hdd.Vibration

	links   []link
	linkAt  []int16 // linkAt[a*S+b] = link index, -1 on the diagonal
	wanSeed int64

	origin time.Time
	last   Result

	// Serving buffers, reused across Serve calls.
	reqs           []reqState
	ops            []wanOp
	pendingBuf     []int32
	orderBuf       []uint16
	epochSort      []int32
	latGet, latPut []time.Duration
}

// New assembles the fleet.
func New(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Sites) < 2 {
		return nil, fmt.Errorf("fleet: need at least 2 sites, got %d", len(cfg.Sites))
	}
	coder, err := cluster.NewCoder(cfg.DataShards, cfg.ParityShards)
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		cfg:       cfg,
		coder:     coder,
		shardSize: coder.ShardSize(cfg.ObjectSize),
		model:     hdd.Barracuda500(),
		wanSeed:   parallel.SeedFor(cfg.seed(), 1_000_003),
	}
	n := coder.TotalShards()
	if n > 32 {
		// The serving arena tracks confirmed shards in a 32-bit mask.
		return nil, fmt.Errorf("fleet: %d total shards exceeds the 32-shard stripe limit", n)
	}
	S := len(cfg.Sites)
	for s, site := range cfg.Sites {
		if err := site.Layout.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: site %d (%s): %w", s, site.Name, err)
		}
		C := len(site.Layout.Containers)
		if min := minContainers(cfg.Placement, n, S); C < min {
			return nil, fmt.Errorf("fleet: site %d (%s) has %d containers, %s placement needs >= %d",
				s, site.Name, C, cfg.Placement, min)
		}
		f.siteBase = append(f.siteBase, len(f.nodes))
		f.siteSize = append(f.siteSize, C)
		for ct := 0; ct < C; ct++ {
			asm, err := site.Layout.Containers[ct].Scenario.Assembly()
			if err != nil {
				return nil, err
			}
			if asm.Mount.Tower != nil {
				asm.Mount = enclosure.TowerMount(*asm.Mount.Tower, 0)
			}
			idx := len(f.nodes)
			clock := simclock.NewVirtual()
			drive, err := hdd.NewDrive(f.model, clock, parallel.SeedFor(cfg.seed(), 2*idx))
			if err != nil {
				return nil, err
			}
			disk := blockdev.NewDisk(drive)
			net := cfg.Net
			net.ObjectSize = f.shardSize
			net.Objects = cfg.Objects
			net.Seed = parallel.SeedFor(cfg.seed(), 2*idx+1)
			nd := &node{
				site: s, container: ct, asm: asm,
				clock: clock, drive: drive, disk: disk,
				server:  netstore.NewServer(disk, clock, net),
				stepIdx: -1,
			}
			nd.runner.Clock = clock
			f.nodes = append(f.nodes, nd)
		}
	}
	f.stripes = make([][][]byte, cfg.Objects)
	for o := range f.stripes {
		f.stripes[o] = coder.Encode(objectPayload(o, cfg.ObjectSize))
	}
	// Cache every site's speaker→node transfer functions once: layouts
	// and tones are immutable after New, so attack schedules only
	// superpose cached gains.
	f.tf = make([]sched.TransferCache, S)
	f.tfFreqs = make([][]units.Frequency, S)
	f.schedules = make([][]cluster.ScheduleStep, S)
	f.vibs = make([][][]hdd.Vibration, S)
	for s := range cfg.Sites {
		lay := cfg.Sites[s].Layout
		f.tfFreqs[s] = make([]units.Frequency, len(lay.Speakers))
		for sp := range lay.Speakers {
			f.tfFreqs[s][sp] = lay.Speakers[sp].Tone.Normalize().Freq
		}
		base := f.siteBase[s]
		f.tf[s].Ensure(len(lay.Speakers), f.siteSize[s], func(sp, local int) float64 {
			nd := f.nodes[base+local]
			_, amp := lay.SpeakerAmp(sp, nd.container, nd.asm, f.model)
			return amp
		})
	}
	f.buildLinks()
	return f, nil
}

// Config returns the effective configuration.
func (f *Fleet) Config() Config { return f.cfg }

// Nodes returns the total node count across sites.
func (f *Fleet) Nodes() int { return len(f.nodes) }

// objectPayload is the deterministic content of object o (the cluster
// convention, so the two tiers' stores are directly comparable).
func objectPayload(o, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte((o*131 + i*7 + (i>>8)*13) ^ 0x5a)
	}
	return b
}

// SetAttack programs site s's acoustic attack: steps sorted by offset;
// before the first step (and with nil steps) every speaker at the site
// is silent. Vibrations are superposed up front from the cached
// per-(speaker, node) transfer functions.
func (f *Fleet) SetAttack(s int, steps []cluster.ScheduleStep) error {
	if s < 0 || s >= len(f.cfg.Sites) {
		return fmt.Errorf("fleet: SetAttack site %d outside [0, %d)", s, len(f.cfg.Sites))
	}
	plan := append([]cluster.ScheduleStep(nil), steps...)
	sort.SliceStable(plan, func(i, j int) bool { return plan[i].At < plan[j].At })
	f.schedules[s] = plan
	f.vibs[s] = make([][]hdd.Vibration, len(plan))
	speakers := len(f.cfg.Sites[s].Layout.Speakers)
	for si, step := range plan {
		active := step.Active
		if active == nil {
			active = make([]bool, speakers)
		}
		f.vibs[s][si] = make([]hdd.Vibration, f.siteSize[s])
		for local := 0; local < f.siteSize[s]; local++ {
			gainAt := func(sp int) float64 { return f.tf[s].Gain(sp, local) }
			freqAt := func(sp int) units.Frequency { return f.tfFreqs[s][sp] }
			f.vibs[s][si][local] = cluster.SuperposeGains(speakers, freqAt, gainAt, active)
		}
	}
	for local := 0; local < f.siteSize[s]; local++ {
		nd := f.nodes[f.siteBase[s]+local]
		nd.stepIdx = -1
		nd.drive.SetVibration(hdd.Quiet())
	}
	return nil
}

// applyAttack advances node ni's vibration to its site's schedule step in
// effect at offset (forward-only scan, as in the cluster engine).
func (f *Fleet) applyAttack(ni int, offset time.Duration) {
	nd := f.nodes[ni]
	steps := f.schedules[nd.site]
	step := nd.stepIdx
	for step+1 < len(steps) && steps[step+1].At <= offset {
		step++
	}
	if step == nd.stepIdx {
		return
	}
	nd.stepIdx = step
	nd.drive.SetVibration(f.vibs[nd.site][step][ni-f.siteBase[nd.site]])
}

// Preload writes every shard to its placement node before serving starts
// (speakers silent, WAN idle — preload is an out-of-band bulk load), then
// aligns all node clocks to the slowest.
func (f *Fleet) Preload() error {
	n := f.coder.TotalShards()
	work := make([][][2]int, len(f.nodes))
	for o := 0; o < f.cfg.Objects; o++ {
		for j := 0; j < n; j++ {
			ni := f.shardNode(o, j)
			work[ni] = append(work[ni], [2]int{o, j})
		}
	}
	_, err := parallel.Run(context.Background(), parallel.Indices(len(f.nodes)), f.cfg.Workers,
		func(_ context.Context, ni int, _ int) (struct{}, error) {
			nd := f.nodes[ni]
			for _, oj := range work[ni] {
				_, resp := nd.server.HandleObjectShared(netstore.Put, oj[0], f.stripes[oj[0]][oj[1]])
				if resp.Err != nil {
					return struct{}{}, fmt.Errorf("fleet: preload object %d shard %d on node %d: %w",
						oj[0], oj[1], ni, resp.Err)
				}
			}
			return struct{}{}, nil
		})
	if err != nil {
		return err
	}
	f.origin = f.nodes[0].clock.Now()
	for _, nd := range f.nodes[1:] {
		if t := nd.clock.Now(); t.After(f.origin) {
			f.origin = t
		}
	}
	for _, nd := range f.nodes {
		if dt := f.origin.Sub(nd.clock.Now()); dt > 0 {
			nd.clock.Advance(dt)
		}
	}
	return nil
}

// PublishMetrics pushes the fleet's serving counters (under the "fleet."
// prefix) plus every node's hdd/blockdev/netstore counters into a
// registry. No-op on nil; metrics never touch clocks or draws, so
// results are identical with metrics on or off.
func (f *Fleet) PublishMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	r := f.last
	reg.Add("fleet.requests", int64(r.Requests))
	reg.Add("fleet.gets", int64(r.Gets))
	reg.Add("fleet.puts", int64(r.Puts))
	reg.Add("fleet.get_failures", int64(r.GetFailures))
	reg.Add("fleet.put_failures", int64(r.PutFailures))
	reg.Add("fleet.degraded_reads", int64(r.DegradedReads))
	reg.Add("fleet.degraded_writes", int64(r.DegradedWrites))
	reg.Add("fleet.corrupt_reads", int64(r.CorruptReads))
	reg.Add("fleet.checksum_misses", int64(r.ChecksumMisses))
	reg.Add("fleet.shard_reads", int64(r.ShardReads))
	reg.Add("fleet.shard_writes", int64(r.ShardWrites))
	reg.Add("fleet.shard_read_errors", int64(r.ShardReadErrors))
	reg.Add("fleet.shard_write_errors", int64(r.ShardWriteErrors))
	reg.Add("fleet.cross_site_ops", int64(r.CrossSiteOps))
	reg.Add("fleet.failover_waves", int64(r.FailoverWaves))
	reg.Add("fleet.hedged_requests", int64(r.HedgedRequests))
	reg.Add("fleet.shed_requests", int64(r.ShedRequests))
	reg.Add("fleet.deadline_exhausted", int64(r.DeadlineExhausted))
	reg.Add("fleet.wan_drops", int64(r.WANDrops))
	reg.Add("fleet.wan_fast_fails", int64(r.FastFails))
	reg.Add("fleet.breaker_opens", int64(r.BreakerOpens))
	reg.Add("fleet.breaker_closes", int64(r.BreakerCloses))
	reg.Add("fleet.bytes_served", r.BytesServed)
	reg.MaxGauge("fleet.goodput_mbps", r.GoodputMBps)
	reg.MaxGauge("fleet.p99_ms", float64(r.P99)/1e6)
	for _, l := range f.latGet {
		reg.Observe("fleet.get_latency_ns", int64(l))
	}
	for _, l := range f.latPut {
		reg.Observe("fleet.put_latency_ns", int64(l))
	}
	for _, nd := range f.nodes {
		nd.drive.PublishMetrics(reg)
		nd.disk.PublishMetrics(reg)
		nd.server.PublishMetrics(reg)
	}
}
