package fleet

import (
	"reflect"
	"testing"
	"time"

	"deepnote/internal/cluster"
	"deepnote/internal/metrics"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// testSites builds three 8-container facilities; if attacked is
// non-empty, site 0 gets a point-blank 650 Hz speaker at each listed
// container (the servo-killing idiom from the cluster tests).
func testSites(attacked ...int) []SiteSpec {
	mk := func(name string) SiteSpec {
		return SiteSpec{Name: name, Layout: cluster.LineLayout(8, 2*units.Meter)}
	}
	sites := []SiteSpec{mk("pacific"), mk("atlantic"), mk("baltic")}
	if len(attacked) > 0 {
		sites[0].Layout = sites[0].Layout.WithSpeakersAt(sig.NewTone(650*units.Hz), attacked...)
	}
	return sites
}

func testFleetConfig(p Placement, workers int, attacked ...int) Config {
	return Config{
		Sites:      testSites(attacked...),
		Objects:    48,
		ObjectSize: 8 << 10,
		Placement:  p,
		Seed:       cluster.Ptr(int64(42)),
		Workers:    workers,
	}
}

func buildFleet(t *testing.T, cfg Config) *Fleet {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Preload(); err != nil {
		t.Fatal(err)
	}
	return f
}

const (
	atkStart = 500 * time.Millisecond
	atkEnd   = 2000 * time.Millisecond
)

// attackConfig is the standard facility-attack campaign geometry: four
// 8-container sites, 4+4 coding, and a blast radius of five contiguous
// containers on site 0 — wide enough to erase any naive stripe (5 lost
// > 4 parity) while an attack-aware site allotment of at most two
// strided shards loses at most two.
func attackConfig(p Placement, workers int) Config {
	mk := func(name string, attacked bool) SiteSpec {
		s := SiteSpec{Name: name, Layout: cluster.LineLayout(8, 2*units.Meter)}
		if attacked {
			s.Layout = s.Layout.WithSpeakersAt(sig.NewTone(650*units.Hz), 0, 1, 2, 3, 4)
		}
		return s
	}
	return Config{
		Sites: []SiteSpec{
			mk("pacific", true), mk("atlantic", false),
			mk("baltic", false), mk("coral", false),
		},
		DataShards:   4,
		ParityShards: 4,
		Objects:      48,
		ObjectSize:   8 << 10,
		Placement:    p,
		Seed:         cluster.Ptr(int64(42)),
		Workers:      workers,
		// Blasted drives fail slowly (the servo grinds before it gives
		// up), so cross-site failover needs a deadline budget that
		// outlasts a couple of grinding waves.
		Resilience: Resilience{Deadline: 2 * time.Second},
		WAN: WANConfig{Faults: []Fault{
			// Concurrent WAN trouble: the attacked site's link to its
			// nearest peer flaps, and an unrelated pair browns out.
			{Kind: LinkFlap, A: 0, B: 1, Start: atkStart, Duration: atkEnd - atkStart},
			{Kind: Brownout, A: 2, B: 3, Start: atkStart, Duration: atkEnd - atkStart, Factor: 4},
		}},
	}
}

// serveAttacked runs the campaign: speakers keyed on for
// [atkStart, atkEnd), WAN faults over the same window.
func serveAttacked(t *testing.T, p Placement, workers int) Result {
	t.Helper()
	f := buildFleet(t, attackConfig(p, workers))
	if err := f.SetAttack(0, []cluster.ScheduleStep{
		{At: atkStart, Active: []bool{true, true, true, true, true}},
		{At: atkEnd, Active: nil},
	}); err != nil {
		t.Fatal(err)
	}
	// 300/s keeps the 32 drives busy without runaway queueing, so the
	// deadline budget is spent on failover — not on the backlog.
	res, err := f.Serve(TrafficSpec{Requests: 800, Rate: 300})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFleetServesCleanWithoutFaults(t *testing.T) {
	f := buildFleet(t, testFleetConfig(PlacementAttackAware, 0))
	res, err := f.Serve(TrafficSpec{Requests: 400, Rate: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.GetFailures != 0 || res.PutFailures != 0 {
		t.Fatalf("clean run failed requests: gets=%d puts=%d", res.GetFailures, res.PutFailures)
	}
	if res.CorruptReads != 0 || res.ChecksumMisses != 0 {
		t.Fatalf("clean run corrupted: corrupt=%d misses=%d", res.CorruptReads, res.ChecksumMisses)
	}
	if res.Availability() != 1 {
		t.Fatalf("clean availability %.4f, want 1", res.Availability())
	}
	// Attack-aware placement spreads shards across sites, so a healthy
	// run still crosses the WAN constantly.
	if res.CrossSiteOps == 0 {
		t.Fatal("no cross-site ops despite cross-site placement")
	}
	if res.Puts > 0 && res.MinPutShards != f.coder.TotalShards() {
		t.Fatalf("clean PUT lost shards: min durable %d, want %d", res.MinPutShards, f.coder.TotalShards())
	}
	if res.BreakerOpens != 0 || res.WANDrops != 0 || res.ShedRequests != 0 {
		t.Fatalf("clean run tripped fault machinery: opens=%d drops=%d shed=%d",
			res.BreakerOpens, res.WANDrops, res.ShedRequests)
	}
	if res.P99 <= 0 || res.Span <= 0 || res.GoodputMBps <= 0 {
		t.Fatalf("degenerate throughput stats: p99=%v span=%v goodput=%.2f",
			res.P99, res.Span, res.GoodputMBps)
	}
}

// TestFleetDeterministicAcrossWorkers is the tier's core contract: the
// full ledger of the compound attack+WAN-fault campaign — every counter,
// every per-request outcome — must be byte-identical at any fan-out.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	base := serveAttacked(t, PlacementAttackAware, 1)
	for _, w := range []int{2, 8} {
		if res := serveAttacked(t, PlacementAttackAware, w); !reflect.DeepEqual(base, res) {
			t.Fatalf("workers=%d diverged from workers=1", w)
		}
	}
}

// TestFleetSeedZeroReproduces pins the zero-vs-unset contract on the
// fleet's seed pointers: an explicit zero seed is honored and
// reproduces exactly.
func TestFleetSeedZeroReproduces(t *testing.T) {
	run := func() Result {
		cfg := testFleetConfig(PlacementAttackAware, 0)
		cfg.Seed = cluster.Ptr(int64(0))
		f := buildFleet(t, cfg)
		res, err := f.Serve(TrafficSpec{Requests: 200, Rate: 2000, Seed: cluster.Ptr(int64(0))})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("explicit zero seeds did not reproduce")
	}
}

func TestFleetWorkloadEndpoints(t *testing.T) {
	f := buildFleet(t, testFleetConfig(PlacementAttackAware, 0))
	res, err := f.Serve(TrafficSpec{Requests: 60, Rate: 2000, ReadFraction: cluster.Ptr(0.0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gets != 0 || res.Puts != 60 {
		t.Fatalf("write-only workload: gets=%d puts=%d", res.Gets, res.Puts)
	}
	res, err = f.Serve(TrafficSpec{Requests: 60, Rate: 2000, ReadFraction: cluster.Ptr(1.0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Puts != 0 || res.Gets != 60 {
		t.Fatalf("read-only workload: gets=%d puts=%d", res.Gets, res.Puts)
	}
	if _, err := f.Serve(TrafficSpec{Requests: 10, ReadFraction: cluster.Ptr(1.5)}); err == nil {
		t.Fatal("out-of-range ReadFraction accepted")
	}
}

func TestFleetConfigValidation(t *testing.T) {
	if _, err := New(Config{Sites: testSites()[:1]}); err == nil {
		t.Fatal("single-site fleet accepted")
	}
	small := Config{Sites: []SiteSpec{
		{Name: "a", Layout: cluster.LineLayout(4, 2*units.Meter)},
		{Name: "b", Layout: cluster.LineLayout(4, 2*units.Meter)},
	}, Placement: PlacementNaive}
	if _, err := New(small); err == nil {
		t.Fatal("naive placement with 4-container sites accepted (needs n=6)")
	}
	wide := testFleetConfig(PlacementAttackAware, 0)
	wide.DataShards, wide.ParityShards = 30, 6
	if _, err := New(wide); err == nil {
		t.Fatal("36-shard stripe accepted past the 32-shard mask limit")
	}
	f, err := New(testFleetConfig(PlacementAttackAware, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Serve(TrafficSpec{Requests: 10}); err == nil {
		t.Fatal("Serve before Preload accepted")
	}
	if err := f.SetAttack(3, nil); err == nil {
		t.Fatal("out-of-range attack site accepted")
	}
}

func TestFleetPublishMetrics(t *testing.T) {
	f := buildFleet(t, testFleetConfig(PlacementAttackAware, 0))
	if _, err := f.Serve(TrafficSpec{Requests: 100, Rate: 2000}); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	f.PublishMetrics(reg)
	snap := reg.Snapshot()
	if snap.Counters["fleet.requests"] != 100 {
		t.Fatalf("fleet.requests = %d, want 100", snap.Counters["fleet.requests"])
	}
	for _, key := range []string{
		"fleet.gets", "fleet.puts", "fleet.cross_site_ops",
		"fleet.wan_drops", "fleet.breaker_opens", "fleet.shed_requests",
		"fleet.corrupt_reads", "fleet.bytes_served",
	} {
		if _, ok := snap.Counters[key]; !ok {
			t.Fatalf("key %s missing from snapshot", key)
		}
	}
	if snap.Counters["netstore.requests"] == 0 {
		t.Fatal("node-level netstore counters missing")
	}
	f.PublishMetrics(nil) // must not panic
}
