package fleet

// Placement chooses where an object's n erasure shards live across the
// fleet. The paper's threat is *correlated* failure: one acoustic attack
// degrades a contiguous blast radius of containers, and at fleet scale a
// whole facility can go dark at once. Placement is the knob that decides
// whether that correlation is survivable.
type Placement int

const (
	// PlacementAttackAware spreads shards across sites (at most
	// ceil(n/S) per site, so a full facility loss costs no more than
	// that many shards) and, within each site, across containers
	// separated by a maximal stride (so one blast radius cannot swallow
	// a site's whole allotment).
	PlacementAttackAware Placement = iota
	// PlacementNaive keeps every shard of an object on its home site, on
	// contiguous containers — the latency-optimal layout a
	// locality-greedy allocator would pick, and exactly the one a single
	// acoustic blast radius erases.
	PlacementNaive
)

func (p Placement) String() string {
	switch p {
	case PlacementNaive:
		return "naive"
	default:
		return "attack-aware"
	}
}

// shardsPerSite is the attack-aware per-site shard cap: ceil(n/S). A
// single-site loss is survivable iff this is <= the parity count.
func shardsPerSite(n, sites int) int { return (n + sites - 1) / sites }

// minContainers is the smallest per-site container count a placement
// needs for collision-free shard assignment.
func minContainers(p Placement, n, sites int) int {
	if p == PlacementNaive {
		return n
	}
	return shardsPerSite(n, sites)
}

// homeSite is the object's anchor facility; placement and traffic both
// derive from it.
func (f *Fleet) homeSite(o int) int { return o % len(f.cfg.Sites) }

// shardSite maps (object, shard) to a site.
func (f *Fleet) shardSite(o, j int) int {
	s := len(f.cfg.Sites)
	if f.cfg.Placement == PlacementNaive {
		return o % s
	}
	return (o + j) % s
}

// shardNode maps (object, shard) to a global node index.
func (f *Fleet) shardNode(o, j int) int {
	s := f.shardSite(o, j)
	c := f.siteSize[s]
	var local int
	if f.cfg.Placement == PlacementNaive {
		// Contiguous run starting at a per-object offset.
		local = (o/len(f.cfg.Sites) + j) % c
	} else {
		// r-th shard landing on this site; stride the replicas as far
		// apart as the site allows so a contiguous blast radius of
		// fewer than stride containers can only ever claim one.
		q := shardsPerSite(f.coder.TotalShards(), len(f.cfg.Sites))
		stride := c / q
		if stride < 1 {
			stride = 1
		}
		local = (o/len(f.cfg.Sites) + (j/len(f.cfg.Sites))*stride) % c
	}
	return f.siteBase[s] + local
}

// sourceOrder fills buf with the shard indices of object o in GET
// preference order for a client at clientSite: local shards first (no
// WAN hop), then the rest in ascending shard order. The order is a pure
// function of (object, clientSite), so failover waves resume it
// deterministically.
func (f *Fleet) sourceOrder(o, clientSite int, buf []uint16) []uint16 {
	buf = buf[:0]
	n := f.coder.TotalShards()
	for j := 0; j < n; j++ {
		if f.shardSite(o, j) == clientSite {
			buf = append(buf, uint16(j))
		}
	}
	for j := 0; j < n; j++ {
		if f.shardSite(o, j) != clientSite {
			buf = append(buf, uint16(j))
		}
	}
	return buf
}
