package fleet

import (
	"testing"
)

// TestAwarePlacementSpreadsBlastRadii pins the two survivability
// invariants: no site holds more than ceil(n/S) shards of any object
// (facility loss costs at most the parity budget), and a site's shards
// of one object sit a maximal stride apart (one contiguous blast radius
// cannot claim two).
func TestAwarePlacementSpreadsBlastRadii(t *testing.T) {
	f, err := New(testFleetConfig(PlacementAttackAware, 0))
	if err != nil {
		t.Fatal(err)
	}
	n := f.coder.TotalShards()
	S := len(f.cfg.Sites)
	q := shardsPerSite(n, S)
	if q > f.coder.ParityShards() {
		t.Fatalf("test geometry cannot survive a site: %d shards/site > %d parity", q, f.coder.ParityShards())
	}
	for o := 0; o < f.cfg.Objects; o++ {
		perSite := make(map[int][]int)
		seen := make(map[int]bool)
		for j := 0; j < n; j++ {
			ni := f.shardNode(o, j)
			if seen[ni] {
				t.Fatalf("object %d: two shards on node %d", o, ni)
			}
			seen[ni] = true
			s := f.nodes[ni].site
			perSite[s] = append(perSite[s], f.nodes[ni].container)
		}
		for s, cts := range perSite {
			if len(cts) > q {
				t.Fatalf("object %d: site %d holds %d shards, cap %d", o, s, len(cts), q)
			}
			if len(cts) == 2 {
				c := f.siteSize[s]
				dist := cts[0] - cts[1]
				if dist < 0 {
					dist = -dist
				}
				if circ := c - dist; circ < dist {
					dist = circ
				}
				if want := c / q; dist < want {
					t.Fatalf("object %d site %d: replicas %d apart, want >= %d", o, s, dist, want)
				}
			}
		}
	}
}

// TestNaivePlacementIsOneBlastRadius: the baseline keeps all n shards on
// the home site in one contiguous container run — latency-optimal and
// exactly what a single acoustic blast erases.
func TestNaivePlacementIsOneBlastRadius(t *testing.T) {
	cfg := testFleetConfig(PlacementNaive, 0)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := f.coder.TotalShards()
	for o := 0; o < f.cfg.Objects; o++ {
		home := f.homeSite(o)
		for j := 0; j < n; j++ {
			ni := f.shardNode(o, j)
			if f.nodes[ni].site != home {
				t.Fatalf("object %d shard %d left home site %d", o, j, home)
			}
			if j > 0 {
				prev := f.nodes[f.shardNode(o, j-1)].container
				if f.nodes[ni].container != (prev+1)%f.siteSize[home] {
					t.Fatalf("object %d: naive shards not contiguous at %d", o, j)
				}
			}
		}
	}
}

// TestSourceOrderPrefersLocalShards: GET source order is a permutation
// of all shards with every client-local shard ahead of every remote one
// — the cross-site hop is the failover, not the fast path.
func TestSourceOrderPrefersLocalShards(t *testing.T) {
	f, err := New(testFleetConfig(PlacementAttackAware, 0))
	if err != nil {
		t.Fatal(err)
	}
	n := f.coder.TotalShards()
	for o := 0; o < f.cfg.Objects; o++ {
		for site := 0; site < len(f.cfg.Sites); site++ {
			order := f.sourceOrder(o, site, nil)
			if len(order) != n {
				t.Fatalf("order length %d, want %d", len(order), n)
			}
			seen := make(map[uint16]bool)
			remoteSeen := false
			for _, j := range order {
				if seen[j] {
					t.Fatalf("object %d site %d: shard %d repeated", o, site, j)
				}
				seen[j] = true
				if f.shardSite(o, int(j)) != site {
					remoteSeen = true
				} else if remoteSeen {
					t.Fatalf("object %d site %d: local shard %d after a remote one", o, site, j)
				}
			}
		}
	}
}
