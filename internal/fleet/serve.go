package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"deepnote/internal/netstore"
	"deepnote/internal/parallel"
	"deepnote/internal/sched"
)

// Request flags.
const (
	fPut      uint8 = 1 << iota // request is a PUT
	fOK                         // completed successfully
	fHedged                     // issued a speculative extra source
	fShed                       // failed fast by the shed policy
	fDeadline                   // ran out its deadline budget
)

// reqState is one client request's arena slot. All times are int64
// nanosecond offsets from the fleet origin.
type reqState struct {
	arrival  int64
	deadline int64
	end      int64 // latest observed op completion (= final latency edge)
	object   int32
	okMask   uint32 // bitmask of shards confirmed OK
	site     uint8
	flags    uint8
	wave     uint8
	nextSrc  uint16 // cursor into the request's source order
	shardOK  uint16
	fails    uint16
}

// Op flags.
const (
	oPut      uint8 = 1 << iota // shard write
	oFastFail                   // shed instantly by an open breaker (never reached the link)
	oDropped                    // swallowed by a down link (observed at issue+Timeout)
)

// Op outcome bits, written only by the owning node's dispatch.
const (
	bOK       uint8 = 1 << iota // shard op succeeded and bytes verified
	bChecksum                   // bytes came back but did not match the stripe
)

// wanOp is one shard operation in flight. The op index doubles as the
// node-queue event ID; concurrent node drains write disjoint entries, so
// the epoch's outcomes fold race-free in the serial combine.
type wanOp struct {
	end      int64 // gateway-observed completion (node finish + return delay)
	retDelay int64
	req      int32
	link     int16 // WAN link index, -1 for a site-local op
	shard    uint16
	flags    uint8
	bits     uint8
}

// Serve runs the global workload through the fleet and returns the
// ledger. The engine is the cluster tier's epoch loop lifted to WAN
// scale: issue ops serially (sampling WAN delays by pure per-op hash),
// drain every node's queue concurrently on its own clock, fold outcomes
// serially in observation order (breakers, shard accounting), then plan
// the next failover waves — repeat until no request is pending.
func (f *Fleet) Serve(spec TrafficSpec) (Result, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if f.origin.IsZero() {
		return Result{}, errors.New("fleet: Serve before Preload")
	}
	n, k := f.coder.TotalShards(), f.coder.DataShards()
	window := time.Duration(arrivalNS(spec.Requests, spec.Rate))
	f.genRequests(spec, window)
	f.resetBreakers()
	f.ops = f.ops[:0]
	res := Result{Requests: spec.Requests}

	pending := f.pendingBuf[:0]
	for i := range f.reqs {
		r := &f.reqs[i]
		if r.flags&fPut != 0 {
			for j := 0; j < n; j++ {
				f.issueOp(int32(i), j, r.arrival, true, &res)
			}
		} else {
			f.orderBuf = f.sourceOrder(int(r.object), int(r.site), f.orderBuf)
			for c := 0; c < k && c < n; c++ {
				f.issueOp(int32(i), int(f.orderBuf[c]), r.arrival, false, &res)
			}
			r.nextSrc = uint16(k)
		}
		pending = append(pending, int32(i))
	}

	folded := 0
	for len(pending) > 0 {
		if err := f.drainNodes(); err != nil {
			return Result{}, err
		}
		folded = f.combine(folded, &res)
		pending = f.plan(pending, &res)
	}
	f.pendingBuf = pending[:0]
	if err := f.settle(&res); err != nil {
		return Result{}, err
	}
	f.last = res
	return res, nil
}

// issueOp records one shard op and either enqueues it on its node or —
// when the WAN refuses it — synthesizes the failure the gateway will
// observe. Called only from serial planning.
func (f *Fleet) issueOp(ri int32, j int, at int64, put bool, res *Result) {
	r := &f.reqs[ri]
	ni := f.shardNode(int(r.object), j)
	opIdx := len(f.ops)
	op := wanOp{req: ri, shard: uint16(j), link: -1}
	if put {
		op.flags |= oPut
	}
	if site := f.nodes[ni].site; site != int(r.site) {
		li := f.linkIdx(int(r.site), site)
		op.link = int16(li)
		res.CrossSiteOps++
		switch {
		case !f.breakerAllows(li, at):
			// Open breaker: the gateway sheds the op instantly; the
			// link never sees it, so the breaker does not feed on it.
			op.flags |= oFastFail
			op.end = at
			res.FastFails++
			f.ops = append(f.ops, op)
			return
		case f.linkDown(li, at):
			// Down link swallows the op; the loss is observed only
			// after the WAN timeout, and it does feed the breaker.
			op.flags |= oDropped
			op.end = at + int64(f.cfg.WAN.Timeout)
			res.WANDrops++
			f.ops = append(f.ops, op)
			return
		}
		out, ret := f.wanDelays(li, uint64(opIdx), at, put)
		op.retDelay = ret
		f.ops = append(f.ops, op)
		f.nodes[ni].runner.Queue.Push(at+out, uint64(opIdx))
		return
	}
	f.ops = append(f.ops, op)
	f.nodes[ni].runner.Queue.Push(at, uint64(opIdx))
}

// drainNodes runs every node's event queue to empty, fanned out across
// workers. Nodes share no mutable state — each writes only its own ops
// entries and its own mechanics.
func (f *Fleet) drainNodes() error {
	_, err := parallel.Run(context.Background(), parallel.Indices(len(f.nodes)), f.cfg.Workers,
		func(_ context.Context, ni int, _ int) (struct{}, error) {
			nd := f.nodes[ni]
			nd.runner.Run(f.origin, func(it sched.Item) { f.dispatch(ni, it) })
			return struct{}{}, nil
		})
	return err
}

// dispatch executes one shard op on its node, verifying GET bytes
// eagerly against the encoded stripe (the end-to-end checksum: a
// vibration-corrupted sector fails the op rather than poisoning the
// decode).
func (f *Fleet) dispatch(ni int, it sched.Item) {
	nd := f.nodes[ni]
	op := &f.ops[it.ID]
	r := &f.reqs[op.req]
	f.applyAttack(ni, nd.clock.Now().Sub(f.origin))
	if op.flags&oPut != 0 {
		_, resp := nd.server.HandleObjectShared(netstore.Put, int(r.object), f.stripes[r.object][op.shard])
		if resp.Err == nil {
			op.bits |= bOK
		}
	} else {
		data, resp := nd.server.HandleObjectShared(netstore.Get, int(r.object), nil)
		if resp.Err == nil {
			if bytes.Equal(data, f.stripes[r.object][op.shard]) {
				op.bits |= bOK
			} else {
				op.bits |= bChecksum
			}
		}
	}
	op.end = int64(nd.clock.Now().Sub(f.origin)) + op.retDelay
}

// combine folds every op issued since the last fold, in gateway
// observation order — (end, op index) — which is what makes the breaker
// state machines deterministic. Request-level folds are commutative, so
// the one sorted pass serves both.
func (f *Fleet) combine(folded int, res *Result) int {
	f.epochSort = f.epochSort[:0]
	for i := folded; i < len(f.ops); i++ {
		f.epochSort = append(f.epochSort, int32(i))
	}
	sort.Slice(f.epochSort, func(a, b int) bool {
		oa, ob := &f.ops[f.epochSort[a]], &f.ops[f.epochSort[b]]
		if oa.end != ob.end {
			return oa.end < ob.end
		}
		return f.epochSort[a] < f.epochSort[b]
	})
	k := f.coder.DataShards()
	for _, oi := range f.epochSort {
		op := &f.ops[oi]
		r := &f.reqs[op.req]
		ok := op.bits&bOK != 0
		if op.link >= 0 && op.flags&oFastFail == 0 {
			f.breakerObserve(int(op.link), op.end, ok, res)
		}
		// The client stops waiting at the k-th confirmed shard; ops
		// folding after that (stragglers, in-flight hedges) no longer
		// move the request's latency edge. Folding in end order makes
		// this exact: when shardOK reaches k, r.end is the ack time.
		if int(r.shardOK) < k && op.end > r.end {
			r.end = op.end
		}
		if op.flags&oPut != 0 {
			res.ShardWrites++
			if ok {
				r.shardOK++
			} else {
				res.ShardWriteErrors++
				r.fails++
			}
		} else {
			res.ShardReads++
			if ok {
				r.shardOK++
				r.okMask |= 1 << op.shard
			} else {
				res.ShardReadErrors++
				r.fails++
				if op.bits&bChecksum != 0 {
					res.ChecksumMisses++
				}
			}
		}
	}
	return len(f.ops)
}

// plan walks the pending requests after a fold: completes the done ones
// and issues the next failover wave for starved GETs — doubling backoff,
// deadline-clamped final wave, tail-triggered hedging, and the
// serve-degraded vs. shed policy.
func (f *Fleet) plan(pending []int32, res *Result) []int32 {
	next := pending[:0]
	n, k := f.coder.TotalShards(), f.coder.DataShards()
	rz := f.cfg.Resilience
	for _, ri := range pending {
		r := &f.reqs[ri]
		if r.flags&fPut != 0 {
			// PUTs are single-wave: every shard was issued at arrival;
			// the ack needs k durable, full durability is n.
			if int(r.shardOK) >= k {
				r.flags |= fOK
			}
			continue
		}
		if int(r.shardOK) >= k {
			r.flags |= fOK
			continue
		}
		if int(r.nextSrc) >= n {
			continue // every source consumed and still short: failed
		}
		// Doubling backoff from the last observation, clamped so the
		// request spends its whole deadline budget and gets one final
		// wave at the edge (the blockdev.Retrier boundary contract)
		// instead of abandoning the remainder unspent.
		backoff := int64(rz.RetryBackoff)
		if shift := uint(r.wave); shift > 0 {
			if shift > 20 {
				shift = 20
			}
			backoff <<= shift
		}
		issueAt := r.end + backoff
		if issueAt > r.deadline {
			if r.end >= r.deadline {
				r.flags |= fDeadline
				res.DeadlineExhausted++
				continue
			}
			issueAt = r.deadline
		}
		need := k - int(r.shardOK)
		avail := n - int(r.nextSrc)
		issue := need
		hedge := avail > need && r.end-r.arrival > int64(rz.HedgeAfter)
		if hedge {
			issue++
		}
		if issue > avail {
			issue = avail
		}
		f.orderBuf = f.sourceOrder(int(r.object), int(r.site), f.orderBuf)
		if rz.Shed {
			reachable := 0
			for _, j := range f.orderBuf[r.nextSrc:] {
				if t := f.shardSite(int(r.object), int(j)); t == int(r.site) {
					reachable++
				} else if li := f.linkIdx(int(r.site), t); !f.linkDown(li, issueAt) && f.breakerAllows(li, issueAt) {
					reachable++
				}
			}
			if reachable < need {
				r.flags |= fShed
				res.ShedRequests++
				continue
			}
		}
		r.wave++
		res.FailoverWaves++
		if hedge && r.flags&fHedged == 0 {
			r.flags |= fHedged
			res.HedgedRequests++
		}
		for c := 0; c < issue; c++ {
			j := int(f.orderBuf[r.nextSrc])
			r.nextSrc++
			f.issueOp(ri, j, issueAt, false, res)
		}
		next = append(next, ri)
	}
	return next
}

// settle closes the ledger: per-request and per-site outcomes, latency
// quantiles, goodput — and the corruption audit: every degraded-but-OK
// GET is actually decoded from its confirmed shards and compared to the
// object's true content. Accepted shards are byte-verified at the node,
// so CorruptReads must come out zero; the audit is what makes that a
// measurement instead of an assumption.
func (f *Fleet) settle(res *Result) error {
	f.latGet, f.latPut = f.latGet[:0], f.latPut[:0]
	outcomes := make([]ReqOutcome, len(f.reqs))
	per := make([]SiteStats, len(f.cfg.Sites))
	for s := range per {
		per[s].Name = f.cfg.Sites[s].Name
	}
	n := f.coder.TotalShards()
	var span int64
	minPut := n
	anyPutOK := false
	for i := range f.reqs {
		r := &f.reqs[i]
		ok := r.flags&fOK != 0
		lat := time.Duration(r.end - r.arrival)
		if r.end > span {
			span = r.end
		}
		st := &per[r.site]
		if r.flags&fPut != 0 {
			res.Puts++
			st.Puts++
			f.latPut = append(f.latPut, lat)
			if ok {
				res.PutOK++
				st.PutOK++
				anyPutOK = true
				res.BytesServed += int64(f.cfg.ObjectSize)
				if int(r.shardOK) < n {
					res.DegradedWrites++
				}
				if int(r.shardOK) < minPut {
					minPut = int(r.shardOK)
				}
			} else {
				res.PutFailures++
			}
		} else {
			res.Gets++
			st.Gets++
			f.latGet = append(f.latGet, lat)
			if ok {
				res.GetOK++
				st.GetOK++
				res.BytesServed += int64(f.cfg.ObjectSize)
				if r.wave > 0 || r.fails > 0 {
					res.DegradedReads++
					if err := f.auditRead(r, res); err != nil {
						return err
					}
				}
			} else {
				res.GetFailures++
			}
		}
		outcomes[i] = ReqOutcome{
			Arrival: time.Duration(r.arrival),
			Latency: lat,
			Site:    r.site,
			Get:     r.flags&fPut == 0,
			OK:      ok,
		}
	}
	if !anyPutOK {
		minPut = 0
	}
	res.MinPutShards = minPut
	all := make([]time.Duration, 0, len(f.latGet)+len(f.latPut))
	all = append(append(all, f.latGet...), f.latPut...)
	res.P50, res.P99 = quantile(all, 0.50), quantile(all, 0.99)
	for _, l := range all {
		if l > res.Max {
			res.Max = l
		}
	}
	res.Span = time.Duration(span)
	if span > 0 {
		res.GoodputMBps = float64(res.BytesServed) / (float64(span) / 1e9) / 1e6
	}
	res.PerSite = per
	res.Outcomes = outcomes
	return nil
}

// auditRead re-decodes one degraded-but-acknowledged GET from exactly
// the shards the gateway confirmed, and charges CorruptReads if the
// reassembled bytes differ from the object's true content.
func (f *Fleet) auditRead(r *reqState, res *Result) error {
	n, k := f.coder.TotalShards(), f.coder.DataShards()
	shards := make([][]byte, n)
	have := 0
	for j := 0; j < n; j++ {
		if r.okMask&(1<<j) != 0 {
			shards[j] = append([]byte(nil), f.stripes[r.object][j]...)
			have++
		}
	}
	if have < k {
		return fmt.Errorf("fleet: GET for object %d acked with %d/%d shards", r.object, have, k)
	}
	if err := f.coder.Reconstruct(shards); err != nil {
		return err
	}
	joined, err := f.coder.Join(shards, f.cfg.ObjectSize)
	if err != nil {
		return err
	}
	if !bytes.Equal(joined, objectPayload(int(r.object), f.cfg.ObjectSize)) {
		res.CorruptReads++
	}
	return nil
}
