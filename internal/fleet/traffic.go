package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"deepnote/internal/cluster"
)

// TrafficSpec describes a global open-loop workload: millions-of-users
// traffic compressed to a representative request count — zipfian keys
// (a hot head of popular objects) issued from every region, with each
// region's request share following a phase-shifted diurnal curve (the
// planet's load rotates across the facilities). Generation is serial
// and seeded, so the schedule is byte-identical at any worker count.
type TrafficSpec struct {
	// Requests is the total number of client requests (default 2000).
	Requests int
	// Rate is the global open-loop arrival rate per second (default
	// 1500).
	Rate float64
	// ReadFraction is the GET share; nil means 0.9, an explicit
	// cluster.Ptr(0.0) is a pure-write workload.
	ReadFraction *float64
	// ZipfS and ZipfV shape the key popularity (defaults 1.2 and 1).
	ZipfS, ZipfV float64
	// DiurnalAmp is the amplitude of each region's load swing around its
	// equal share, in [0, 1] (default 0.6; 0 disables the diurnal curve
	// — regions stay uniform).
	DiurnalAmp float64
	// Period is the diurnal cycle length (default: the serving window,
	// so one run sees one full planetary rotation).
	Period time.Duration
	// Seed drives the workload draws; nil means 7, explicit zero
	// honored.
	Seed *int64
}

func (s TrafficSpec) withDefaults() (TrafficSpec, error) {
	if s.Requests <= 0 {
		s.Requests = 2000
	}
	if s.Rate <= 0 {
		s.Rate = 1500
	}
	if s.ReadFraction == nil {
		s.ReadFraction = cluster.Ptr(0.9)
	}
	if *s.ReadFraction < 0 || *s.ReadFraction > 1 {
		return s, fmt.Errorf("fleet: ReadFraction %v outside [0, 1]", *s.ReadFraction)
	}
	if s.ZipfS <= 1 {
		s.ZipfS = 1.2
	}
	if s.ZipfV < 1 {
		s.ZipfV = 1
	}
	if s.DiurnalAmp < 0 || s.DiurnalAmp > 1 {
		return s, fmt.Errorf("fleet: DiurnalAmp %v outside [0, 1]", s.DiurnalAmp)
	}
	if s.Seed == nil {
		s.Seed = cluster.Ptr(int64(7))
	}
	return s, nil
}

// ReqOutcome is one request's ledger entry, retained so availability and
// tail latency can be re-cut over any time window (e.g. exactly the
// attack interval) after the run.
type ReqOutcome struct {
	Arrival time.Duration
	Latency time.Duration
	Site    uint8
	Get     bool
	OK      bool
}

// SiteStats is one site's client-side request ledger.
type SiteStats struct {
	Name        string
	Gets, GetOK int
	Puts, PutOK int
}

// Result summarizes one fleet serving run.
type Result struct {
	// Request-level outcomes.
	Requests, Gets, Puts     int
	GetOK, PutOK             int
	GetFailures, PutFailures int
	// DegradedReads are GETs that needed at least one failover wave or
	// lost at least one shard op yet still completed; DegradedWrites are
	// PUTs acked with fewer than all n shards durable (but at least k).
	DegradedReads, DegradedWrites int
	// CorruptReads counts GETs acknowledged OK whose reassembled bytes
	// would not match the object's true content. Every accepted shard is
	// byte-verified against the encoded stripe at the storage node, so
	// this must be zero — the fleet fails a read rather than serving
	// rotted bytes.
	CorruptReads int
	// ChecksumMisses counts shard reads rejected because the returned
	// bytes did not match the stripe (the end-to-end checksum model).
	ChecksumMisses int
	// MinPutShards is the smallest durable-shard count among acked PUTs.
	MinPutShards int

	// Shard-level accounting.
	ShardReads, ShardWrites           int
	ShardReadErrors, ShardWriteErrors int

	// Robustness machinery.
	CrossSiteOps      int // shard ops that crossed a WAN link
	FailoverWaves     int // extra GET waves beyond the initial k
	HedgedRequests    int // GETs that issued a speculative extra source
	ShedRequests      int // requests failed fast by the shed policy
	DeadlineExhausted int // GETs that ran out their deadline budget
	WANDrops          int // ops swallowed by a down link (observed at +Timeout)
	FastFails         int // ops shed instantly by an open link breaker
	BreakerOpens      int // closed→open transitions across all links
	BreakerCloses     int // open→closed transitions across all links

	// Throughput and latency. Quantiles are time-to-verdict over ALL
	// requests: a failed request counts at the moment the gateway gave
	// up on it, so unavailability cannot flatter the tail — a placement
	// that hard-fails its slow requests does not get to drop them from
	// the latency pool.
	BytesServed int64
	Span        time.Duration
	GoodputMBps float64
	P50, P99    time.Duration
	Max         time.Duration

	// PerSite cuts the ledger by the requesting client's region.
	PerSite []SiteStats
	// Outcomes is the full per-request ledger (arrival order).
	Outcomes []ReqOutcome
}

// GetAvailability is the fraction of GETs served.
func (r Result) GetAvailability() float64 {
	if r.Gets == 0 {
		return 1
	}
	return float64(r.GetOK) / float64(r.Gets)
}

// PutAvailability is the fraction of PUTs acked.
func (r Result) PutAvailability() float64 {
	if r.Puts == 0 {
		return 1
	}
	return float64(r.PutOK) / float64(r.Puts)
}

// Availability is the overall served fraction.
func (r Result) Availability() float64 {
	if r.Requests == 0 {
		return 1
	}
	return float64(r.GetOK+r.PutOK) / float64(r.Requests)
}

// WindowStats re-cuts the ledger over one time window.
type WindowStats struct {
	Gets, GetOK int
	Puts, PutOK int
	P50, P99    time.Duration
}

// GetAvailability is the windowed GET served fraction.
func (w WindowStats) GetAvailability() float64 {
	if w.Gets == 0 {
		return 1
	}
	return float64(w.GetOK) / float64(w.Gets)
}

// Window cuts availability and latency quantiles over requests arriving
// in [from, to) — e.g. exactly the facility-attack interval, where the
// headline aware-vs-naive gap lives.
func (r Result) Window(from, to time.Duration) WindowStats {
	var w WindowStats
	lat := make([]time.Duration, 0, len(r.Outcomes))
	for _, o := range r.Outcomes {
		if o.Arrival < from || o.Arrival >= to {
			continue
		}
		if o.Get {
			w.Gets++
			if o.OK {
				w.GetOK++
			}
		} else {
			w.Puts++
			if o.OK {
				w.PutOK++
			}
		}
		// Time-to-verdict: failures count at the moment they failed.
		lat = append(lat, o.Latency)
	}
	w.P50, w.P99 = quantile(lat, 0.50), quantile(lat, 0.99)
	return w
}

// quantile returns the q-quantile of lat (nearest-rank on a sorted
// copy); 0 on an empty slice.
func quantile(lat []time.Duration, q float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// genRequests fills f.reqs with the serial, seeded workload schedule.
func (f *Fleet) genRequests(spec TrafficSpec, window time.Duration) {
	rng := rand.New(rand.NewSource(*spec.Seed))
	zipf := rand.NewZipf(rng, spec.ZipfS, spec.ZipfV, uint64(f.cfg.Objects-1))
	S := len(f.cfg.Sites)
	period := spec.Period
	if period <= 0 {
		period = window
	}
	deadline := int64(f.cfg.Resilience.Deadline)
	weights := make([]float64, S)
	if cap(f.reqs) < spec.Requests {
		f.reqs = make([]reqState, spec.Requests)
	}
	f.reqs = f.reqs[:spec.Requests]
	for i := range f.reqs {
		at := arrivalNS(i, spec.Rate)
		// Phase-shifted diurnal share: region s peaks when the sun (or
		// the evening Netflix hour) is over it.
		tfrac := float64(at) / float64(period)
		sum := 0.0
		for s := 0; s < S; s++ {
			w := 1 + spec.DiurnalAmp*math.Sin(2*math.Pi*(tfrac+float64(s)/float64(S)))
			if w < 0 {
				w = 0
			}
			weights[s] = w
			sum += w
		}
		draw := rng.Float64() * sum
		site := 0
		for acc := weights[0]; site < S-1 && draw >= acc; {
			site++
			acc += weights[site]
		}
		var flags uint8
		if rng.Float64() >= *spec.ReadFraction {
			flags = fPut
		}
		f.reqs[i] = reqState{
			arrival:  at,
			deadline: at + deadline,
			end:      at,
			object:   int32(zipf.Uint64()),
			site:     uint8(site),
			flags:    flags,
		}
	}
}

// arrivalNS returns request i's open-loop arrival offset in integer
// nanoseconds (integer path for whole-number rates so long schedules
// stay strictly monotone — the cluster tier's convention).
func arrivalNS(i int, rate float64) int64 {
	if rate >= 1 && rate <= 1e9 && rate == math.Trunc(rate) {
		r := int64(rate)
		return int64(i)/r*int64(time.Second) + int64(i)%r*int64(time.Second)/r
	}
	return int64(math.Round(float64(i) / rate * 1e9))
}
