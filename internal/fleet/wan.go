package fleet

import (
	"fmt"
	"time"

	"deepnote/internal/parallel"
	"deepnote/internal/sched"
)

// WANConfig models the inter-site network: a full mesh of symmetric
// links, each with a base RTT, uniform jitter, and a bandwidth that
// serializes shard transfers. Faults are declarative time windows — a
// pure function of the virtual clock, so the same spec yields the same
// byte-identical run at any worker count (the faultinj idiom, lifted to
// links).
type WANConfig struct {
	// RTT is the default round-trip time between sites (default 30 ms).
	RTT time.Duration
	// Jitter is the uniform ± jitter on the RTT (default 3 ms; negative
	// disables jitter), drawn per op by hashing (link seed, op
	// sequence) — never an ordered RNG stream, so issue order cannot
	// perturb other draws.
	Jitter time.Duration
	// GbitPerSec is the link bandwidth (default 10); a shard transfer
	// adds size·8/GbitPerSec ns of serialization delay.
	GbitPerSec float64
	// Timeout is how long the gateway waits before declaring an op
	// swallowed by a down link (default 200 ms). Drops are observed at
	// issue+Timeout and feed the link's circuit breaker.
	Timeout time.Duration
	// Links overrides per-link parameters (zero fields inherit the
	// defaults above).
	Links []LinkSpec
	// Faults are the injected WAN faults.
	Faults []Fault
}

func (w WANConfig) withDefaults() WANConfig {
	if w.RTT <= 0 {
		w.RTT = 30 * time.Millisecond
	}
	if w.Jitter < 0 {
		w.Jitter = 0
	} else if w.Jitter == 0 {
		w.Jitter = 3 * time.Millisecond
	}
	if w.GbitPerSec <= 0 {
		w.GbitPerSec = 10
	}
	if w.Timeout <= 0 {
		w.Timeout = 200 * time.Millisecond
	}
	return w
}

// LinkSpec overrides one site-pair's link parameters.
type LinkSpec struct {
	A, B       int
	RTT        time.Duration
	Jitter     time.Duration
	GbitPerSec float64
}

// FaultKind classifies an injected WAN fault.
type FaultKind int

const (
	// LinkFlap takes one link (A↔B) hard down for the window.
	LinkFlap FaultKind = iota
	// SitePartition takes every link touching site A down — the
	// facility is unreachable, though its local clients still hit its
	// local shards.
	SitePartition
	// Brownout multiplies the A↔B link's RTT by Factor for the window
	// (congestion, not loss).
	Brownout
)

func (k FaultKind) String() string {
	switch k {
	case LinkFlap:
		return "link-flap"
	case SitePartition:
		return "site-partition"
	case Brownout:
		return "brownout"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one declarative WAN fault window, active on
// [Start, Start+Duration) of the serving timeline.
type Fault struct {
	Kind FaultKind
	// A and B name the site pair (LinkFlap, Brownout); SitePartition
	// uses only A.
	A, B int
	// Start and Duration bound the window.
	Start    time.Duration
	Duration time.Duration
	// Factor is the Brownout RTT multiplier (default 4).
	Factor float64
}

func (fa Fault) active(at int64) bool {
	return at >= int64(fa.Start) && at < int64(fa.Start+fa.Duration)
}

func (fa Fault) hits(a, b int) bool {
	if fa.Kind == SitePartition {
		return a == fa.A || b == fa.A
	}
	return (a == fa.A && b == fa.B) || (a == fa.B && b == fa.A)
}

// span is one half-open time window.
type span struct{ from, to int64 }

// link is one undirected site pair plus its gateway-side circuit
// breaker. Breaker state only ever mutates in the serial combine step,
// folded over outcomes sorted by observation time — never during
// concurrent node drains. Because planning issues ops at virtual times
// the fold has already moved past, the breaker keeps its shedding
// decisions as a history of windows: every open (and every failed-probe
// re-arm) at time T sheds the ops issued in [T, T+cooldown), whenever
// they are planned. Queries against history are order-independent, so
// epoch granularity cannot perturb them.
type link struct {
	a, b        int
	rtt, jitter int64
	gbps        float64
	seed        int64

	open     bool
	strk     int
	openedAt int64
	shed     []span
}

func (f *Fleet) buildLinks() {
	s := len(f.cfg.Sites)
	f.linkAt = make([]int16, s*s)
	for i := range f.linkAt {
		f.linkAt[i] = -1
	}
	w := f.cfg.WAN
	for a := 0; a < s; a++ {
		for b := a + 1; b < s; b++ {
			l := link{
				a: a, b: b,
				rtt:    int64(w.RTT),
				jitter: int64(w.Jitter),
				gbps:   w.GbitPerSec,
				seed:   parallel.SeedFor(f.wanSeed, a*s+b),
			}
			for _, ls := range w.Links {
				if (ls.A == a && ls.B == b) || (ls.A == b && ls.B == a) {
					if ls.RTT > 0 {
						l.rtt = int64(ls.RTT)
					}
					if ls.Jitter > 0 {
						l.jitter = int64(ls.Jitter)
					}
					if ls.GbitPerSec > 0 {
						l.gbps = ls.GbitPerSec
					}
				}
			}
			idx := int16(len(f.links))
			f.linkAt[a*s+b], f.linkAt[b*s+a] = idx, idx
			f.links = append(f.links, l)
		}
	}
}

// linkIdx returns the link index for a site pair (a != b).
func (f *Fleet) linkIdx(a, b int) int {
	return int(f.linkAt[a*len(f.cfg.Sites)+b])
}

// linkDown reports whether a flap or partition has the link down at
// offset `at` on the serving timeline.
func (f *Fleet) linkDown(li int, at int64) bool {
	l := &f.links[li]
	for _, fa := range f.cfg.WAN.Faults {
		if fa.Kind != Brownout && fa.active(at) && fa.hits(l.a, l.b) {
			return true
		}
	}
	return false
}

// linkFactor returns the brownout RTT multiplier at offset `at` (1 when
// no brownout is active; concurrent brownouts compound).
func (f *Fleet) linkFactor(li int, at int64) float64 {
	l := &f.links[li]
	factor := 1.0
	for _, fa := range f.cfg.WAN.Faults {
		if fa.Kind == Brownout && fa.active(at) && fa.hits(l.a, l.b) {
			mul := fa.Factor
			if mul <= 0 {
				mul = 4
			}
			factor *= mul
		}
	}
	return factor
}

// wanDelays samples the outbound and return delays for op opSeq crossing
// link li at offset `at`. The jitter draw hashes (link seed, opSeq), so
// it is independent of dispatch order; brownouts scale the whole RTT;
// bandwidth serialization rides on the payload-bearing direction (out
// for PUT, return for GET).
func (f *Fleet) wanDelays(li int, opSeq uint64, at int64, put bool) (out, ret int64) {
	l := &f.links[li]
	u := sched.HashUnit(uint64(l.seed), opSeq)
	rtt := l.rtt + int64((2*u-1)*float64(l.jitter))
	rtt = int64(float64(rtt) * f.linkFactor(li, at))
	if rtt < 0 {
		rtt = 0
	}
	ser := int64(float64(f.shardSize) * 8 / l.gbps)
	out, ret = rtt/2, rtt-rtt/2
	if put {
		out += ser
	} else {
		ret += ser
	}
	return out, ret
}

// breakerAllows decides whether the gateway sends an op issued at
// virtual time `at` over link li: it is shed iff `at` falls inside a
// recorded shed window. Ops past a window's end pass as half-open
// probes; a probe that fails re-arms a fresh window.
func (f *Fleet) breakerAllows(li int, at int64) bool {
	for _, sp := range f.links[li].shed {
		if at >= sp.from && at < sp.to {
			return false
		}
	}
	return true
}

// breakerObserve folds one op outcome into link li's breaker. Called
// only from the serial combine step in (observation time, op index)
// order. Opens count only on the closed→open transition; a failed probe
// re-arms the cooldown without a fresh open (one outage, one incident —
// the netstore breaker contract).
func (f *Fleet) breakerObserve(li int, end int64, ok bool, res *Result) {
	l := &f.links[li]
	if ok {
		l.strk = 0
		if l.open {
			l.open = false
			res.BreakerCloses++
		}
		return
	}
	l.strk++
	if l.open {
		l.openedAt = end
		l.shed = append(l.shed, span{end, end + int64(f.cfg.Resilience.BreakerCooldown)})
		return
	}
	if l.strk >= f.cfg.Resilience.BreakerThreshold {
		l.open = true
		l.openedAt = end
		l.shed = append(l.shed, span{end, end + int64(f.cfg.Resilience.BreakerCooldown)})
		res.BreakerOpens++
	}
}

// resetBreakers returns every link to closed before a serve run.
func (f *Fleet) resetBreakers() {
	for i := range f.links {
		f.links[i].open = false
		f.links[i].strk = 0
		f.links[i].openedAt = 0
		f.links[i].shed = f.links[i].shed[:0]
	}
}
