package fleet

import (
	"testing"
	"time"
)

func testWANFleet(t *testing.T, faults ...Fault) *Fleet {
	t.Helper()
	cfg := testFleetConfig(PlacementAttackAware, 0)
	cfg.WAN.Faults = faults
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFaultWindowsGateLinks(t *testing.T) {
	flap := Fault{Kind: LinkFlap, A: 0, B: 1, Start: 100 * time.Millisecond, Duration: 50 * time.Millisecond}
	part := Fault{Kind: SitePartition, A: 2, Start: 300 * time.Millisecond, Duration: 100 * time.Millisecond}
	f := testWANFleet(t, flap, part)
	l01, l02, l12 := f.linkIdx(0, 1), f.linkIdx(0, 2), f.linkIdx(1, 2)
	if l01 != f.linkIdx(1, 0) {
		t.Fatal("link index not symmetric")
	}
	at := func(d time.Duration) int64 { return int64(d) }
	// The flap downs exactly its own link, half-open boundary semantics.
	if f.linkDown(l01, at(99*time.Millisecond)) || !f.linkDown(l01, at(100*time.Millisecond)) {
		t.Fatal("flap start boundary wrong")
	}
	if f.linkDown(l01, at(150*time.Millisecond)) {
		t.Fatal("flap did not lift at its end")
	}
	if f.linkDown(l02, at(120*time.Millisecond)) || f.linkDown(l12, at(120*time.Millisecond)) {
		t.Fatal("flap leaked onto other links")
	}
	// The partition downs every link touching site 2 and nothing else.
	if !f.linkDown(l02, at(350*time.Millisecond)) || !f.linkDown(l12, at(350*time.Millisecond)) {
		t.Fatal("partition missed a link touching the site")
	}
	if f.linkDown(l01, at(350*time.Millisecond)) {
		t.Fatal("partition downed an unrelated link")
	}
}

func TestBrownoutScalesDelaysAndCompounds(t *testing.T) {
	b1 := Fault{Kind: Brownout, A: 0, B: 1, Duration: time.Second, Factor: 3}
	b2 := Fault{Kind: Brownout, A: 0, B: 1, Start: 500 * time.Millisecond, Duration: time.Second, Factor: 2}
	f := testWANFleet(t, b1, b2)
	li := f.linkIdx(0, 1)
	if got := f.linkFactor(li, int64(100*time.Millisecond)); got != 3 {
		t.Fatalf("single brownout factor %v, want 3", got)
	}
	if got := f.linkFactor(li, int64(700*time.Millisecond)); got != 6 {
		t.Fatalf("overlapping brownouts factor %v, want 6 (compounded)", got)
	}
	if got := f.linkFactor(li, int64(2*time.Second)); got != 1 {
		t.Fatalf("expired brownout factor %v, want 1", got)
	}
	// A browned-out op is slower than the same op healthy.
	hOut, hRet := f.wanDelays(li, 7, int64(2*time.Second), false)
	bOut, bRet := f.wanDelays(li, 7, int64(100*time.Millisecond), false)
	if bOut+bRet <= hOut+hRet {
		t.Fatalf("brownout did not slow the op: %d vs %d", bOut+bRet, hOut+hRet)
	}
}

func TestWANDelaysArePureAndBounded(t *testing.T) {
	f := testWANFleet(t)
	li := f.linkIdx(1, 2)
	out1, ret1 := f.wanDelays(li, 12345, 0, false)
	out2, ret2 := f.wanDelays(li, 12345, 0, false)
	if out1 != out2 || ret1 != ret2 {
		t.Fatal("same (link, op) hash produced different delays")
	}
	w := f.cfg.WAN
	ser := int64(float64(f.shardSize) * 8 / w.GbitPerSec)
	for op := uint64(0); op < 200; op++ {
		out, ret := f.wanDelays(li, op, 0, false)
		rtt := out + ret - ser
		if lo, hi := int64(w.RTT-w.Jitter), int64(w.RTT+w.Jitter); rtt < lo || rtt > hi {
			t.Fatalf("op %d: rtt %d outside [%d, %d]", op, rtt, lo, hi)
		}
		// GETs carry the payload on the return path, PUTs outbound.
		pOut, pRet := f.wanDelays(li, op, 0, true)
		if pOut+pRet != out+ret {
			t.Fatalf("op %d: direction changed total delay", op)
		}
		if pOut <= out || pRet >= ret {
			t.Fatalf("op %d: serialization on the wrong direction", op)
		}
	}
}

func TestLinkBreakerLifecycle(t *testing.T) {
	f := testWANFleet(t)
	li := f.linkIdx(0, 1)
	var res Result
	ms := int64(time.Millisecond)
	// Consecutive failures up to the threshold open the breaker once.
	for i := 0; i < f.cfg.Resilience.BreakerThreshold; i++ {
		if !f.breakerAllows(li, int64(i)*ms) {
			t.Fatalf("breaker refused op %d while closed", i)
		}
		f.breakerObserve(li, int64(i)*ms, false, &res)
	}
	if !f.links[li].open || res.BreakerOpens != 1 {
		t.Fatalf("breaker open=%v opens=%d after threshold failures", f.links[li].open, res.BreakerOpens)
	}
	openedAt := f.links[li].openedAt
	cool := int64(f.cfg.Resilience.BreakerCooldown)
	// Before the cooldown: shed. After: a probe passes.
	if f.breakerAllows(li, openedAt+cool-1) {
		t.Fatal("op allowed before cooldown elapsed")
	}
	if !f.breakerAllows(li, openedAt+cool) {
		t.Fatal("probe refused after cooldown")
	}
	// A failed probe re-arms the cooldown without a second open.
	f.breakerObserve(li, openedAt+cool+ms, false, &res)
	if !f.links[li].open || res.BreakerOpens != 1 {
		t.Fatalf("failed probe: open=%v opens=%d, want re-opened with 1 open", f.links[li].open, res.BreakerOpens)
	}
	if f.links[li].openedAt != openedAt+cool+ms {
		t.Fatal("failed probe did not re-arm the cooldown")
	}
	// A successful probe closes it.
	f.breakerObserve(li, openedAt+2*cool+2*ms, true, &res)
	if f.links[li].open || res.BreakerCloses != 1 {
		t.Fatalf("successful probe: open=%v closes=%d", f.links[li].open, res.BreakerCloses)
	}
	// Other links were never touched.
	if f.links[f.linkIdx(0, 2)].open || f.links[f.linkIdx(1, 2)].open {
		t.Fatal("breaker state leaked onto other links")
	}
}

// TestBreakerEngagesDuringServe: a long flap must open the 0↔1 breaker
// mid-run (drops feed it), fast-fail ops while open, and close it again
// after the flap lifts — observable in the run's counters.
func TestBreakerEngagesDuringServe(t *testing.T) {
	cfg := testFleetConfig(PlacementAttackAware, 0)
	cfg.WAN.Faults = []Fault{{Kind: LinkFlap, A: 0, B: 1, Start: 100 * time.Millisecond, Duration: 500 * time.Millisecond}}
	f := buildFleet(t, cfg)
	res, err := f.Serve(TrafficSpec{Requests: 1200, Rate: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if res.WANDrops == 0 {
		t.Fatal("flap swallowed no ops")
	}
	if res.BreakerOpens == 0 {
		t.Fatal("drops never opened the breaker")
	}
	if res.FastFails == 0 {
		t.Fatal("open breaker never shed an op")
	}
	if res.BreakerCloses == 0 {
		t.Fatal("breaker never closed after the flap lifted")
	}
	if res.CorruptReads != 0 {
		t.Fatalf("corrupt reads: %d", res.CorruptReads)
	}
}

func TestLinkSpecOverrides(t *testing.T) {
	cfg := testFleetConfig(PlacementAttackAware, 0)
	cfg.WAN.Links = []LinkSpec{{A: 1, B: 0, RTT: 80 * time.Millisecond, GbitPerSec: 1}}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := f.links[f.linkIdx(0, 1)]
	if l.rtt != int64(80*time.Millisecond) || l.gbps != 1 {
		t.Fatalf("override not applied: rtt=%d gbps=%v", l.rtt, l.gbps)
	}
	if l.jitter != int64(cfg.WAN.withDefaults().Jitter) {
		t.Fatal("zero override field did not inherit the default")
	}
	if def := f.links[f.linkIdx(0, 2)]; def.rtt != int64(30*time.Millisecond) {
		t.Fatalf("unrelated link changed: rtt=%d", def.rtt)
	}
}
