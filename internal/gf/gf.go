// Package gf implements arithmetic over GF(256), the finite field both
// Reed–Solomon codes in this repository are built on: the cluster store's
// erasure coder (internal/cluster) and the covert-channel modem's
// error-correcting FEC (internal/exfil). The field uses the AES-adjacent
// primitive polynomial x^8+x^4+x^3+x^2+1 (0x11d) with generator α = 2,
// the conventional choice for storage codes; log/antilog tables make a
// multiply two lookups.
//
// The package was extracted verbatim from internal/cluster/erasure.go so
// both consumers share one table; the cluster coder's output is pinned
// byte-identical to the pre-extraction vectors by its regression tests.
package gf

// Poly is the field's primitive polynomial, 0x11d.
const Poly = 0x11d

var (
	expTable [512]byte
	logTable [256]int
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	// Double the table so Mul can skip the mod-255 reduction.
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

// Add returns a ⊕ b (addition and subtraction coincide in GF(2^8)).
func Add(a, b byte) byte { return a ^ b }

// Mul returns the field product a·b.
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[logTable[a]+logTable[b]]
}

// Div returns a/b. Division by zero panics, mirroring integer division:
// a zero divisor is a programming error in code built on this field, not
// a runtime condition.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[logTable[a]+255-logTable[b]]
}

// Inv returns the multiplicative inverse of a nonzero element. Inv(0)
// panics for the same reason Div panics.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return expTable[255-logTable[a]]
}

// Exp returns α^n for n ≥ 0 (α = 2, the field generator).
func Exp(n int) byte { return expTable[n%255] }

// Log returns log_α(a) for nonzero a, in [0, 255).
func Log(a byte) int {
	if a == 0 {
		panic("gf: log of zero")
	}
	return logTable[a]
}

// PolyEval evaluates the polynomial with coefficients p — p[0] is the
// highest-degree term — at x, by Horner's rule. An empty polynomial is 0.
func PolyEval(p []byte, x byte) byte {
	var y byte
	for _, c := range p {
		y = Mul(y, x) ^ c
	}
	return y
}

// PolyMul multiplies two coefficient slices (highest-degree term first).
func PolyMul(a, b []byte) []byte {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]byte, len(a)+len(b)-1)
	for i, ca := range a {
		if ca == 0 {
			continue
		}
		for j, cb := range b {
			out[i+j] ^= Mul(ca, cb)
		}
	}
	return out
}

// PolyScale multiplies every coefficient of p by s.
func PolyScale(p []byte, s byte) []byte {
	out := make([]byte, len(p))
	for i, c := range p {
		out[i] = Mul(c, s)
	}
	return out
}

// PolyAdd adds two coefficient slices (highest-degree term first),
// right-aligning the shorter one.
func PolyAdd(a, b []byte) []byte {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]byte, n)
	copy(out[n-len(a):], a)
	for i, c := range b {
		out[n-len(b)+i] ^= c
	}
	return out
}
