package gf

import "testing"

// The extraction from cluster/erasure.go must preserve the exact tables:
// a few spot values of the 0x11d exp/log tables, independently derivable.
func TestTableSpotValues(t *testing.T) {
	cases := []struct {
		n    int
		want byte
	}{
		{0, 1}, {1, 2}, {2, 4}, {7, 128}, {8, 0x1d}, {254, 142},
	}
	for _, c := range cases {
		if got := Exp(c.n); got != c.want {
			t.Errorf("Exp(%d) = %#x, want %#x", c.n, got, c.want)
		}
	}
	if Log(2) != 1 || Log(1) != 0 {
		t.Errorf("Log anchor values wrong: Log(1)=%d Log(2)=%d", Log(1), Log(2))
	}
}

func TestFieldAxioms(t *testing.T) {
	// Every nonzero element must invert, and Mul must agree with the
	// schoolbook carry-less product reduced by the primitive polynomial.
	slowMul := func(a, b byte) byte {
		var p int
		x, y := int(a), int(b)
		for y > 0 {
			if y&1 != 0 {
				p ^= x
			}
			x <<= 1
			if x&0x100 != 0 {
				x ^= Poly
			}
			y >>= 1
		}
		return byte(p)
	}
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if Mul(byte(a), inv) != 1 {
			t.Fatalf("Inv(%d) = %d is not an inverse", a, inv)
		}
		if Div(1, byte(a)) != inv {
			t.Fatalf("Div(1, %d) != Inv(%d)", a, a)
		}
	}
	for a := 0; a < 256; a += 7 {
		for b := 0; b < 256; b += 5 {
			if got, want := Mul(byte(a), byte(b)), slowMul(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d, %d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestPolyHelpers(t *testing.T) {
	// (x + 1)(x + 2) = x² + 3x + 2 over GF(256).
	prod := PolyMul([]byte{1, 1}, []byte{1, 2})
	want := []byte{1, 3, 2}
	if len(prod) != len(want) {
		t.Fatalf("PolyMul length %d, want %d", len(prod), len(want))
	}
	for i := range want {
		if prod[i] != want[i] {
			t.Fatalf("PolyMul = %v, want %v", prod, want)
		}
	}
	// Evaluate x² + 3x + 2 at x = 2: 4 ⊕ 6 ⊕ 2 = 0 (2 is a root).
	if got := PolyEval(prod, 2); got != 0 {
		t.Errorf("PolyEval at root = %d, want 0", got)
	}
	if got := PolyEval(prod, 1); got != 0 {
		t.Errorf("PolyEval at root 1 = %d, want 0", got)
	}
	sum := PolyAdd([]byte{1, 2, 3}, []byte{5})
	if sum[0] != 1 || sum[1] != 2 || sum[2] != 6 {
		t.Errorf("PolyAdd = %v, want [1 2 6]", sum)
	}
	sc := PolyScale([]byte{1, 2}, 3)
	if sc[0] != 3 || sc[1] != 6 {
		t.Errorf("PolyScale = %v, want [3 6]", sc)
	}
}

func TestZeroArgumentPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Inv(0)":    func() { Inv(0) },
		"Div(1, 0)": func() { Div(1, 0) },
		"Log(0)":    func() { Log(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
