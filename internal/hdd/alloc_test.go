package hdd

import (
	"testing"

	"deepnote/internal/simclock"
	"deepnote/internal/units"
)

// TestAccessHoldWindowZeroAlloc is the allocation-regression gate for
// the drive's hot path: a chunked access under vibration — per-chunk
// hold-window evaluation, retries included — must not allocate, so the
// facility-scale serving engine's per-op cost on this layer is pure
// compute. Runs both below and above the read fault threshold (the
// retry regime) and a multi-tone composite excitation.
func TestAccessHoldWindowZeroAlloc(t *testing.T) {
	model := Barracuda500()
	cases := []struct {
		name string
		vib  Vibration
	}{
		{"quiet", Quiet()},
		{"held", Vibration{Freq: 650 * units.Hz, Amplitude: model.ReadFaultFrac * 0.8}},
		{"retrying", Vibration{Freq: 650 * units.Hz, Amplitude: model.ReadFaultFrac * 1.1}},
		{"composite", Vibration{Freq: 650 * units.Hz, Amplitude: model.ReadFaultFrac * 0.7,
			Partials: []Partial{{Freq: 1300 * units.Hz, Amplitude: model.ReadFaultFrac * 0.5}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := NewDrive(model, simclock.NewVirtual(), 7)
			if err != nil {
				t.Fatal(err)
			}
			d.SetVibration(tc.vib)
			d.Access(OpRead, 0, 64<<10) // warm any lazy state
			avg := testing.AllocsPerRun(200, func() {
				res := d.Access(OpRead, 0, 64<<10)
				if res.Err != nil && res.Err != ErrMediaTimeout {
					t.Fatalf("access failed: %v", res.Err)
				}
			})
			if avg != 0 {
				t.Fatalf("Access allocated %.1f times per op, want 0", avg)
			}
		})
	}
}
