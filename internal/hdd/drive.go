package hdd

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"deepnote/internal/metrics"
	"deepnote/internal/simclock"
	"deepnote/internal/units"
)

// Op is the kind of media access.
type Op int

// Operation kinds.
const (
	OpRead Op = iota
	OpWrite
)

// String names the op.
func (o Op) String() string {
	if o == OpWrite {
		return "write"
	}
	return "read"
}

// Errors reported by the drive.
var (
	// ErrMediaTimeout is returned when an operation exhausts its retry
	// budget without ever holding the head on track long enough.
	ErrMediaTimeout = errors.New("hdd: media access timed out after retries")
	// ErrHeadsParked is returned while the shock sensor has the heads
	// parked off the platters.
	ErrHeadsParked = errors.New("hdd: heads parked by shock sensor")
	// ErrOutOfRange is returned for accesses beyond the drive capacity.
	ErrOutOfRange = errors.New("hdd: access beyond device capacity")
	// ErrCompositeVibration is returned by the success-probability
	// predictors for multi-partial excitations: their peak statistics
	// have no closed form, so callers must fall back to simulation
	// (Drive.Access evaluates composites numerically).
	ErrCompositeVibration = errors.New("hdd: success probability undefined for composite vibrations")
)

// ChunkBytes is the service granularity of the drive: Access splits every
// request into independent ChunkBytes-sized chunks (roughly one servo
// sector), each of which must hold track for its own transfer window and
// retries on its own. The success-probability predictors and the analytic
// throughput oracle mirror this granularity.
const ChunkBytes = 4096

// Partial is one spectral component of a composite excitation.
type Partial struct {
	// Freq is the component frequency.
	Freq units.Frequency
	// Amplitude is the component's off-track amplitude (track-pitch
	// fractions).
	Amplitude float64
	// Phase is the component's phase in radians relative to the others.
	Phase float64
}

// Vibration is the excitation state applied to a drive: a dominant tone at
// Freq whose off-track displacement amplitude is Amplitude (track-pitch
// fractions), plus broadband jitter, plus optional extra Partials for
// multi-tone attacks.
type Vibration struct {
	// Freq is the dominant excitation frequency.
	Freq units.Frequency
	// Amplitude is the sinusoidal off-track amplitude in track-pitch
	// fractions.
	Amplitude float64
	// ExtraJitter adds broadband off-track noise (1σ, track fractions)
	// on top of the drive's own ambient jitter.
	ExtraJitter float64
	// Partials are additional coherent components beyond the dominant
	// tone (multi-tone attacks). Empty for single-tone excitation.
	Partials []Partial
}

// Quiet is the no-attack vibration state.
func Quiet() Vibration { return Vibration{} }

// IsQuiet reports whether the excitation carries no tonal energy.
func (v Vibration) IsQuiet() bool {
	return v.Amplitude == 0 && len(v.Partials) == 0 && v.ExtraJitter == 0
}

// TotalAmplitude returns the worst-case (coherent sum) off-track
// amplitude of all components.
func (v Vibration) TotalAmplitude() float64 {
	a := v.Amplitude
	for _, p := range v.Partials {
		a += p.Amplitude
	}
	return a
}

// isComposite reports whether numeric evaluation is required.
func (v Vibration) isComposite() bool { return len(v.Partials) > 0 }

// displacementAt evaluates the composite waveform at time t (seconds)
// with the dominant tone at the given phase offset.
func (v Vibration) displacementAt(t, phase float64) float64 {
	u := v.Amplitude * math.Sin(v.Freq.AngularVelocity()*t+phase)
	for _, p := range v.Partials {
		u += p.Amplitude * math.Sin(p.Freq.AngularVelocity()*t+p.Phase+phase)
	}
	return u
}

// Stats counts drive activity.
type Stats struct {
	Reads, Writes           int64
	ReadErrors, WriteErrors int64
	Retries                 int64
	Seeks                   int64
	ShockParks              int64
	AdjacentCorruptions     int64
	BytesRead, BytesWritten int64
}

// Drive is an operating disk: a Model plus mutable state. Drives are not
// safe for concurrent use; the simulation serializes I/O as a real single-
// actuator drive does.
type Drive struct {
	model  Model
	clock  simclock.Clock
	rng    *rand.Rand
	vib    Vibration
	stats  Stats
	parked time.Time // heads parked until this instant
	lastOp struct {
		end int64
		set bool
	}
}

// NewDrive returns a drive with the given model, clock, and deterministic
// seed.
func NewDrive(m Model, clock simclock.Clock, seed int64) (*Drive, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if clock == nil {
		return nil, errors.New("hdd: clock must not be nil")
	}
	return &Drive{model: m, clock: clock, rng: rand.New(rand.NewSource(seed))}, nil
}

// Model returns the drive's static model.
func (d *Drive) Model() Model { return d.model }

// Stats returns a copy of the activity counters.
func (d *Drive) Stats() Stats { return d.stats }

// PublishMetrics pushes the drive's counters into a registry under the
// "hdd." prefix. Counters are cumulative totals; callers publish once per
// drive lifetime (no-op on a nil registry).
func (d *Drive) PublishMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s := d.stats
	reg.Add("hdd.reads", s.Reads)
	reg.Add("hdd.writes", s.Writes)
	reg.Add("hdd.read_errors", s.ReadErrors)
	reg.Add("hdd.write_errors", s.WriteErrors)
	reg.Add("hdd.retries", s.Retries)
	reg.Add("hdd.seeks", s.Seeks)
	reg.Add("hdd.shock_parks", s.ShockParks)
	reg.Add("hdd.adjacent_corruptions", s.AdjacentCorruptions)
	reg.Add("hdd.bytes_read", s.BytesRead)
	reg.Add("hdd.bytes_written", s.BytesWritten)
}

// Vibration returns the current excitation state.
func (d *Drive) Vibration() Vibration { return d.vib }

// SetVibration applies an excitation state, e.g. computed by the testbed
// from an attack tone. It also evaluates the shock sensor: ultrasonic
// content above the sensor's threshold parks the heads.
func (d *Drive) SetVibration(v Vibration) {
	d.vib = v
	trip := v.Freq >= d.model.ShockSensorMin && v.Amplitude >= d.model.ShockSensorAmpFrac
	for _, p := range v.Partials {
		if p.Freq >= d.model.ShockSensorMin && p.Amplitude >= d.model.ShockSensorAmpFrac {
			trip = true
		}
	}
	if trip {
		d.parked = d.clock.Now().Add(d.model.ParkDuration)
		d.stats.ShockParks++
	}
}

// Capacity returns the drive capacity in bytes.
func (d *Drive) Capacity() int64 { return d.model.CapacityBytes }

// Result describes one completed (or failed) access.
type Result struct {
	// Latency is the total virtual time the access took, including
	// retries. It has already been charged to the clock.
	Latency time.Duration
	// Retries is how many positioning retries were needed.
	Retries int
	// AdjacentCorruptions lists byte offsets whose adjacent-track data
	// was silently squeezed by marginal writes (only with the model's
	// AdjacentCorruptionProb enabled). The drive does NOT know about
	// these — they surface later as unreadable or wrong data.
	AdjacentCorruptions []int64
	// Err is nil on success.
	Err error
}

// Access performs one media access of length bytes at the given offset.
// Virtual time is charged to the drive's clock as the access proceeds.
func (d *Drive) Access(op Op, offset, length int64) Result {
	if offset < 0 || length <= 0 || offset+length > d.model.CapacityBytes {
		return Result{Err: fmt.Errorf("%w: offset=%d length=%d", ErrOutOfRange, offset, length)}
	}
	if until := d.parked; d.clock.Now().Before(until) {
		// The drive rejects I/O while parked; the command round trip
		// still costs a little time so callers can't spin for free.
		const rejectCost = 100 * time.Microsecond
		d.clock.Sleep(rejectCost)
		d.countError(op)
		return Result{Latency: rejectCost, Err: ErrHeadsParked}
	}

	threshold := d.model.ReadFaultFrac
	retryCost := d.model.RetryRead
	if op == OpWrite {
		threshold = d.model.WriteFaultFrac
		retryCost = d.model.RetryWrite
	}

	// The drive services a request chunk by chunk (roughly one servo
	// sector at a time): each chunk must hold track for its own zoned
	// transfer plus the wedge window, and each chunk retries
	// independently. Large sequential requests therefore crawl rather
	// than atomically fail under moderate vibration. Media transfer is
	// charged per completed chunk, so an operation that times out partway
	// through pays only for the work it actually performed.
	total := d.fixedTime(op, offset)
	totalRetries := 0
	var corruptions []int64
	for done := int64(0); done < length; done += ChunkBytes {
		chunk := length - done
		if chunk > ChunkBytes {
			chunk = ChunkBytes
		}
		transfer := d.model.TransferTimeAt(offset+done, chunk)
		hold := transfer + d.model.WedgeWindow
		for attempt := 0; ; attempt++ {
			if attempt > 0 {
				total += retryCost
				totalRetries++
				d.stats.Retries++
			}
			ok, peakFrac := d.attemptHoldsTrack(threshold, hold)
			if ok {
				total += transfer
				// The integrity surface: a write that squeaked through
				// near the gate may have squeezed the adjacent track.
				if op == OpWrite && d.model.AdjacentCorruptionProb > 0 &&
					peakFrac >= 0.6 && d.rng.Float64() < d.model.AdjacentCorruptionProb {
					if victim := d.adjacentOffset(offset + done); victim >= 0 {
						corruptions = append(corruptions, victim)
						d.stats.AdjacentCorruptions++
					}
				}
				break
			}
			if attempt >= d.model.MaxRetries {
				d.clock.Sleep(total)
				d.countError(op)
				d.lastOp.set = false
				return Result{Latency: total, Retries: totalRetries, AdjacentCorruptions: corruptions, Err: ErrMediaTimeout}
			}
		}
	}
	d.clock.Sleep(total)
	d.count(op, length)
	d.lastOp.end = offset + length
	d.lastOp.set = true
	return Result{Latency: total, Retries: totalRetries, AdjacentCorruptions: corruptions}
}

// adjacentOffset locates the neighboring-track LBA range for a given
// offset, preferring the previous track (returns -1 when none exists).
func (d *Drive) adjacentOffset(offset int64) int64 {
	tb := d.model.TrackBytes
	if tb <= 0 {
		return -1
	}
	if offset >= tb {
		return offset - tb
	}
	if offset+tb < d.model.CapacityBytes {
		return offset + tb
	}
	return -1
}

// fixedTime is the positioning cost of an access before any media transfer:
// overhead, plus seek and rotational latency when the access is not
// sequential with the previous one. Seeks cost by travel distance; reads pay
// a half-revolution average rotational latency while writes pay far less
// because the on-drive write-back cache acknowledges and reorders them.
// Media transfer is charged separately, per completed chunk.
func (d *Drive) fixedTime(op Op, offset int64) time.Duration {
	t := d.model.ReadOverhead
	if op == OpWrite {
		t = d.model.WriteOverhead
	}
	if !d.lastOp.set || d.lastOp.end != offset {
		d.stats.Seeks++
		t += d.model.SeekTime(offset - d.lastOp.end)
		if op == OpRead {
			t += d.model.RevolutionPeriod() / 2
		} else {
			t += d.model.RevolutionPeriod() / 8
		}
	}
	return t
}

// attemptHoldsTrack decides whether one positioning attempt keeps the head
// within the fault threshold for the whole transfer window. The head's
// off-track displacement is A·sin(ωt+φ) with random phase plus Gaussian
// jitter; the attempt fails if the peak excursion over the transfer window
// crosses the threshold.
// attemptHoldsTrack decides whether one positioning attempt stays within
// the fault threshold for the whole hold window; peakFrac reports the
// worst excursion as a fraction of the threshold (for the marginal-write
// integrity model).
func (d *Drive) attemptHoldsTrack(threshold float64, hold time.Duration) (ok bool, peakFrac float64) {
	sigma := d.model.BaseJitterFrac + d.vib.ExtraJitter
	jitter := math.Abs(d.rng.NormFloat64()) * sigma
	if d.vib.isComposite() {
		return d.compositeHoldsTrack(threshold, hold, jitter)
	}
	a := d.vib.Amplitude
	if a >= d.model.ServoLockFrac {
		// Position feedback is gone: the servo wedges themselves are
		// unreadable, so no attempt can succeed.
		return false, a / threshold
	}
	if a <= 0 {
		return jitter < threshold, jitter / threshold
	}
	phase := d.rng.Float64() * 2 * math.Pi
	window := d.vib.Freq.AngularVelocity() * hold.Seconds()
	peak := a*maxAbsSinOver(phase, window) + jitter
	return peak < threshold, peak / threshold
}

// compositeHoldsTrack evaluates a multi-tone excitation numerically: the
// waveform is sampled densely across the hold window at a random phase.
func (d *Drive) compositeHoldsTrack(threshold float64, hold time.Duration, jitter float64) (bool, float64) {
	// Servo lock loss uses the RMS-equivalent envelope: a coherent peak
	// above the lock threshold occurring within the window defeats the
	// wedge reads just like a single tone would.
	phase := d.rng.Float64() * 2 * math.Pi
	const samples = 24
	dt := hold.Seconds() / samples
	peak := 0.0
	for i := 0; i <= samples; i++ {
		if u := math.Abs(d.vib.displacementAt(float64(i)*dt, phase)); u > peak {
			peak = u
		}
	}
	if peak >= d.model.ServoLockFrac {
		return false, peak / threshold
	}
	total := peak + jitter
	return total < threshold, total / threshold
}

// MaxAbsSinOver returns max(|sin θ|) for θ in [phase, phase+width] — the
// peak excursion factor of a sinusoidal disturbance observed over a hold
// window of width radians starting at the given phase. It is exported so
// the analytic throughput oracle integrates over the exact same window
// geometry the drive's attempt model uses.
func MaxAbsSinOver(phase, width float64) float64 { return maxAbsSinOver(phase, width) }

// maxAbsSinOver returns max(|sin θ|) for θ in [phase, phase+width].
func maxAbsSinOver(phase, width float64) float64 {
	if width >= math.Pi {
		return 1
	}
	// Normalize the start into [0, π): |sin| has period π.
	start := math.Mod(phase, math.Pi)
	if start < 0 {
		start += math.Pi
	}
	end := start + width
	// A crest of |sin| sits at π/2 (+kπ).
	if start <= math.Pi/2 && end >= math.Pi/2 {
		return 1
	}
	if end >= math.Pi && end-math.Pi >= math.Pi/2-1e-15 {
		// The window wrapped past π and reached the next crest. Given
		// width < π this can only happen when start > π/2, so the crest
		// at 3π/2 equivalent is included.
		return 1
	}
	return math.Max(math.Abs(math.Sin(start)), math.Abs(math.Sin(end)))
}

func (d *Drive) count(op Op, n int64) {
	if op == OpWrite {
		d.stats.Writes++
		d.stats.BytesWritten += n
	} else {
		d.stats.Reads++
		d.stats.BytesRead += n
	}
}

func (d *Drive) countError(op Op) {
	if op == OpWrite {
		d.stats.WriteErrors++
	} else {
		d.stats.ReadErrors++
	}
}

// SuccessProbability estimates, by Monte Carlo with the drive's own RNG
// untouched, the probability that a single positioning attempt per chunk
// completes an op of the given transfer length at offset 0 under vibration
// v — i.e. that the op succeeds with zero retries. It mirrors Drive.Access
// exactly: the op is split into independent ChunkBytes chunks, each with
// its own zoned hold window, and the op succeeds only if every chunk holds
// (success = product over chunks). Composite (multi-partial) vibrations
// return ErrCompositeVibration; callers must fall back to simulation.
func (m Model) SuccessProbability(op Op, v Vibration, length int64, trials int, seed int64) (float64, error) {
	return m.SuccessProbabilityAt(op, v, 0, length, trials, seed)
}

// SuccessProbabilityAt is SuccessProbability at an explicit byte offset,
// honoring zoned recording: inner-track chunks transfer slower, hold track
// longer, and therefore fail more often at equal excitation.
func (m Model) SuccessProbabilityAt(op Op, v Vibration, offset, length int64, trials int, seed int64) (float64, error) {
	if v.isComposite() {
		return 0, ErrCompositeVibration
	}
	if trials <= 0 {
		trials = 2000
	}
	threshold := m.ReadFaultFrac
	if op == OpWrite {
		threshold = m.WriteFaultFrac
	}
	if v.Amplitude >= m.ServoLockFrac {
		return 0, nil
	}
	rng := rand.New(rand.NewSource(seed))
	sigma := m.BaseJitterFrac + v.ExtraJitter
	// Per-chunk angular hold windows, mirroring Drive.Access's service
	// granularity and zoned transfer timing.
	var windows []float64
	for done := int64(0); done < length; done += ChunkBytes {
		chunk := length - done
		if chunk > ChunkBytes {
			chunk = ChunkBytes
		}
		hold := m.TransferTimeAt(offset+done, chunk) + m.WedgeWindow
		windows = append(windows, v.Freq.AngularVelocity()*hold.Seconds())
	}
	ok := 0
	for i := 0; i < trials; i++ {
		holds := true
		for _, w := range windows {
			jitter := math.Abs(rng.NormFloat64()) * sigma
			peak := jitter
			if v.Amplitude > 0 {
				phase := rng.Float64() * 2 * math.Pi
				peak = v.Amplitude*maxAbsSinOver(phase, w) + jitter
			}
			if peak >= threshold {
				holds = false
				break
			}
		}
		if holds {
			ok++
		}
	}
	return float64(ok) / float64(trials), nil
}
