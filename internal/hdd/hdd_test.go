package hdd

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"deepnote/internal/simclock"
)

func newTestDrive(t *testing.T) (*Drive, *simclock.Virtual) {
	t.Helper()
	clock := simclock.NewVirtual()
	d, err := NewDrive(Barracuda500(), clock, 1)
	if err != nil {
		t.Fatal(err)
	}
	return d, clock
}

func TestModelValidate(t *testing.T) {
	m := Barracuda500()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := m
	bad.WriteFaultFrac = 0.5 // looser than read: nonsense
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error when write tolerance looser than read")
	}
	bad = m
	bad.CapacityBytes = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero capacity")
	}
	bad = m
	bad.MaxRetries = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero retry budget")
	}
	bad = m
	bad.PressureGain = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero pressure gain")
	}
}

func TestNewDriveRejectsNilClock(t *testing.T) {
	if _, err := NewDrive(Barracuda500(), nil, 1); err == nil {
		t.Fatal("expected error for nil clock")
	}
}

func TestRevolutionPeriod7200RPM(t *testing.T) {
	m := Barracuda500()
	want := 8333 * time.Microsecond
	got := m.RevolutionPeriod()
	if got < want-10*time.Microsecond || got > want+10*time.Microsecond {
		t.Fatalf("RevolutionPeriod = %v, want ≈%v", got, want)
	}
}

func TestServoSensitivityShape(t *testing.T) {
	m := Barracuda500()
	// Well below crossover the servo rejects almost everything.
	if s := m.ServoSensitivity(50); s > 0.01 {
		t.Fatalf("sensitivity at 50 Hz = %v, want ≈0", s)
	}
	// Well above crossover it passes vibration through (≈1).
	if s := m.ServoSensitivity(5000); s < 0.9 || s > 1.3 {
		t.Fatalf("sensitivity at 5 kHz = %v, want ≈1", s)
	}
	if s := m.ServoSensitivity(0); s != 0 {
		t.Fatalf("sensitivity at 0 = %v, want 0", s)
	}
	// Monotone-ish rise through the crossover region.
	if m.ServoSensitivity(200) >= m.ServoSensitivity(650) {
		t.Fatal("sensitivity should grow from 200 Hz to 650 Hz")
	}
}

func TestOffTrackZeroWithoutExcitation(t *testing.T) {
	m := Barracuda500()
	if got := m.OffTrack(650, 0); got != 0 {
		t.Fatalf("OffTrack(0 Pa) = %v, want 0", got)
	}
	if got := m.OffTrack(650, -3); got != 0 {
		t.Fatalf("OffTrack(neg) = %v, want 0", got)
	}
}

func TestOffTrackBandpassShape(t *testing.T) {
	m := Barracuda500()
	// With flat excitation, the off-track response must peak in the
	// paper's vulnerable band and fall off on both sides.
	low := m.OffTrack(100, 10)
	mid := m.OffTrack(700, 10)
	high := m.OffTrack(8000, 10)
	if mid <= low*3 {
		t.Fatalf("mid-band response %v should dominate low-frequency %v", mid, low)
	}
	if mid <= high {
		t.Fatalf("mid-band response %v should exceed high-frequency %v", mid, high)
	}
}

func TestQuietDriveThroughputMatchesPaper(t *testing.T) {
	// No attack: sequential 4 KB reads at ≈18.0 MB/s, writes at ≈22.7 MB/s
	// (the paper's Table 1 "No Attack" row).
	for _, tc := range []struct {
		op   Op
		want float64 // MB/s
	}{
		{OpRead, 18.0},
		{OpWrite, 22.7},
	} {
		d, clock := newTestDrive(t)
		const bs = 4096
		const ops = 2000
		start := clock.Now()
		var off int64
		// Prime sequentiality: first op pays a seek.
		for i := 0; i < ops; i++ {
			res := d.Access(tc.op, off, bs)
			if res.Err != nil {
				t.Fatalf("%v: unexpected error %v", tc.op, res.Err)
			}
			off += bs
		}
		secs := clock.Since(start).Seconds()
		mbps := float64(bs*ops) / 1e6 / secs
		if math.Abs(mbps-tc.want)/tc.want > 0.08 {
			t.Errorf("%v: quiet throughput = %.1f MB/s, want ≈%.1f", tc.op, mbps, tc.want)
		}
	}
}

func TestQuietLatencyMatchesPaper(t *testing.T) {
	// Paper Table 1: ≈0.2 ms per op for both read and write.
	d, _ := newTestDrive(t)
	d.Access(OpRead, 0, 4096) // absorb initial seek
	res := d.Access(OpRead, 4096, 4096)
	if ms := res.Latency.Seconds() * 1000; ms < 0.1 || ms > 0.35 {
		t.Fatalf("sequential read latency = %.3f ms, want ≈0.2", ms)
	}
}

func TestRandomAccessPaysSeek(t *testing.T) {
	d, _ := newTestDrive(t)
	d.Access(OpRead, 0, 4096)
	seq := d.Access(OpRead, 4096, 4096)
	rnd := d.Access(OpRead, 1e9, 4096)
	if rnd.Latency < seq.Latency+5*time.Millisecond {
		t.Fatalf("random access %v should pay seek over sequential %v", rnd.Latency, seq.Latency)
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	d, _ := newTestDrive(t)
	if res := d.Access(OpRead, -1, 4096); !errors.Is(res.Err, ErrOutOfRange) {
		t.Fatalf("negative offset: %v", res.Err)
	}
	if res := d.Access(OpRead, 0, 0); !errors.Is(res.Err, ErrOutOfRange) {
		t.Fatalf("zero length: %v", res.Err)
	}
	cap := d.Capacity()
	if res := d.Access(OpWrite, cap-100, 4096); !errors.Is(res.Err, ErrOutOfRange) {
		t.Fatalf("overflow: %v", res.Err)
	}
}

func TestHeavyVibrationTimesOutWrites(t *testing.T) {
	d, _ := newTestDrive(t)
	d.SetVibration(Vibration{Freq: 650, Amplitude: 3.0}) // 20x write threshold
	res := d.Access(OpWrite, 0, 4096)
	if !errors.Is(res.Err, ErrMediaTimeout) {
		t.Fatalf("expected media timeout, got %v", res.Err)
	}
	if res.Retries != d.Model().MaxRetries {
		t.Fatalf("retries = %d, want %d", res.Retries, d.Model().MaxRetries)
	}
	if d.Stats().WriteErrors != 1 {
		t.Fatalf("write errors = %d, want 1", d.Stats().WriteErrors)
	}
}

func TestWritesFailBeforeReads(t *testing.T) {
	// At an amplitude between the write and read thresholds, writes
	// struggle while reads mostly sail through — the paper's core
	// asymmetry (§4.1).
	m := Barracuda500()
	v := Vibration{Freq: 650, Amplitude: 0.2} // above 0.15 write, below 0.26 read
	pw, err := m.SuccessProbability(OpWrite, v, 4096, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := m.SuccessProbability(OpRead, v, 4096, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if pw >= pr {
		t.Fatalf("write success %v should be below read success %v", pw, pr)
	}
	if pr < 0.9 {
		t.Fatalf("read success %v should stay high below read threshold", pr)
	}
}

func TestSuccessProbabilityMonotoneInAmplitude(t *testing.T) {
	m := Barracuda500()
	prev := 1.1
	for _, a := range []float64{0, 0.05, 0.15, 0.25, 0.5, 1, 3} {
		p, err := m.SuccessProbability(OpWrite, Vibration{Freq: 650, Amplitude: a}, 4096, 6000, 11)
		if err != nil {
			t.Fatal(err)
		}
		if p > prev+0.02 {
			t.Fatalf("success probability rose with amplitude at %v: %v > %v", a, p, prev)
		}
		prev = p
	}
}

func TestMaxAbsSinOver(t *testing.T) {
	cases := []struct {
		phase, width, want float64
	}{
		{0, math.Pi, 1},                        // covers a crest by width
		{0, 0.1, math.Sin(0.1)},                // rising edge
		{math.Pi / 2, 0.1, 1},                  // starts on the crest
		{math.Pi/2 - 0.05, 0.2, 1},             // crosses the crest
		{math.Pi - 0.1, 0.05, math.Sin(0.1)},   // descending near zero, |sin|
		{2*math.Pi - 0.1, 0.05, math.Sin(0.1)}, // wraps the 2π boundary
		{math.Pi * 0.75, math.Pi * 0.8, 1},     // wraps into the next crest
	}
	for i, c := range cases {
		got := maxAbsSinOver(c.phase, c.width)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("case %d: maxAbsSinOver(%v, %v) = %v, want %v", i, c.phase, c.width, got, c.want)
		}
	}
}

func TestMaxAbsSinOverProperty(t *testing.T) {
	// The analytic max must match a dense numeric scan.
	prop := func(pRaw, wRaw uint16) bool {
		phase := float64(pRaw) / 65535 * 2 * math.Pi
		width := float64(wRaw) / 65535 * math.Pi * 1.2
		got := maxAbsSinOver(phase, width)
		max := 0.0
		for i := 0; i <= 400; i++ {
			v := math.Abs(math.Sin(phase + width*float64(i)/400))
			if v > max {
				max = v
			}
		}
		return got >= max-1e-6 && got <= max+5e-3
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestShockSensorParksHeads(t *testing.T) {
	d, clock := newTestDrive(t)
	d.SetVibration(Vibration{Freq: 20000, Amplitude: 0.1})
	if d.Stats().ShockParks != 1 {
		t.Fatalf("parks = %d, want 1", d.Stats().ShockParks)
	}
	res := d.Access(OpRead, 0, 4096)
	if !errors.Is(res.Err, ErrHeadsParked) {
		t.Fatalf("expected parked error, got %v", res.Err)
	}
	// After the park duration the drive recovers.
	clock.Advance(d.Model().ParkDuration + time.Millisecond)
	d.SetVibration(Quiet())
	if res := d.Access(OpRead, 0, 4096); res.Err != nil {
		t.Fatalf("drive did not recover after parking: %v", res.Err)
	}
}

func TestShockSensorIgnoresAudibleBand(t *testing.T) {
	d, _ := newTestDrive(t)
	d.SetVibration(Vibration{Freq: 650, Amplitude: 5})
	if d.Stats().ShockParks != 0 {
		t.Fatal("audible-band vibration must not trip the shock sensor")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Stats, time.Duration) {
		clock := simclock.NewVirtual()
		d, err := NewDrive(Barracuda500(), clock, 42)
		if err != nil {
			t.Fatal(err)
		}
		d.SetVibration(Vibration{Freq: 650, Amplitude: 0.18})
		start := clock.Now()
		var off int64
		for i := 0; i < 500; i++ {
			d.Access(OpWrite, off, 4096)
			off += 4096
		}
		return d.Stats(), clock.Since(start)
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Fatalf("nondeterministic: %+v/%v vs %+v/%v", s1, t1, s2, t2)
	}
}

func TestVibrationAccessorRoundTrip(t *testing.T) {
	d, _ := newTestDrive(t)
	v := Vibration{Freq: 650, Amplitude: 0.3, ExtraJitter: 0.01}
	d.SetVibration(v)
	got := d.Vibration()
	if got.Freq != v.Freq || got.Amplitude != v.Amplitude || got.ExtraJitter != v.ExtraJitter {
		t.Fatalf("Vibration() = %+v, want %+v", got, v)
	}
}

func TestStatsCounts(t *testing.T) {
	d, _ := newTestDrive(t)
	d.Access(OpRead, 0, 4096)
	d.Access(OpWrite, 4096, 8192)
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("ops: %+v", s)
	}
	if s.BytesRead != 4096 || s.BytesWritten != 8192 {
		t.Fatalf("bytes: %+v", s)
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatal("Op.String misbehaves")
	}
}

func TestRetryLatencyGrowsUnderModerateVibration(t *testing.T) {
	// Paper Table 1 at 15 cm: write latency rises to ≈4 ms while reads
	// stay at 0.2 ms. Under moderate vibration, mean write latency should
	// exceed the quiet value by an order of magnitude.
	d, clock := newTestDrive(t)
	d.Access(OpWrite, 0, 4096)
	d.SetVibration(Vibration{Freq: 650, Amplitude: 0.16})
	start := clock.Now()
	var off int64 = 4096
	n := 300
	fails := 0
	for i := 0; i < n; i++ {
		res := d.Access(OpWrite, off, 4096)
		if res.Err != nil {
			fails++
		}
		off += 4096
	}
	mean := clock.Since(start).Seconds() * 1000 / float64(n)
	if mean < 0.5 {
		t.Fatalf("mean write latency under vibration = %.3f ms, want ≥0.5", mean)
	}
	if fails == n {
		t.Fatal("moderate vibration should not kill all writes")
	}
}

func TestTransferTime(t *testing.T) {
	m := Barracuda500()
	got := m.TransferTime(120e6)
	if math.Abs(got.Seconds()-1) > 1e-9 {
		t.Fatalf("TransferTime(120MB) = %v, want 1s", got)
	}
}
