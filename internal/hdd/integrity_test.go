package hdd

import (
	"testing"

	"deepnote/internal/simclock"
)

func newIntegrityDrive(t *testing.T, prob float64) *Drive {
	t.Helper()
	m := Barracuda500()
	m.AdjacentCorruptionProb = prob
	clock := simclock.NewVirtual()
	d, err := NewDrive(m, clock, 51)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestIntegrityDisabledByDefault(t *testing.T) {
	clock := simclock.NewVirtual()
	d, err := NewDrive(Barracuda500(), clock, 51)
	if err != nil {
		t.Fatal(err)
	}
	d.SetVibration(Vibration{Freq: 650, Amplitude: 0.13}) // marginal zone
	var off int64 = 1 << 21
	for i := 0; i < 500; i++ {
		d.Access(OpWrite, off, 4096)
		off += 4096
	}
	if d.Stats().AdjacentCorruptions != 0 {
		t.Fatal("corruption occurred with the mechanism disabled")
	}
}

func TestMarginalWritesCorruptAdjacentTrack(t *testing.T) {
	d := newIntegrityDrive(t, 0.2)
	// Amplitude just under the write gate: writes succeed, but peaks sit
	// in the marginal zone.
	d.SetVibration(Vibration{Freq: 650, Amplitude: 0.13})
	var off int64 = 1 << 21
	sawCorruption := false
	for i := 0; i < 500; i++ {
		res := d.Access(OpWrite, off, 4096)
		for _, c := range res.AdjacentCorruptions {
			sawCorruption = true
			if c != off-d.Model().TrackBytes && c != off+d.Model().TrackBytes {
				t.Fatalf("corruption at %d not adjacent to %d", c, off)
			}
		}
		off += 4096
	}
	if !sawCorruption {
		t.Fatal("marginal writes never squeezed the adjacent track")
	}
	if d.Stats().AdjacentCorruptions == 0 {
		t.Fatal("corruption counter not incremented")
	}
}

func TestQuietWritesNeverCorrupt(t *testing.T) {
	d := newIntegrityDrive(t, 1.0) // even at certainty-level probability
	var off int64 = 1 << 21
	for i := 0; i < 500; i++ {
		res := d.Access(OpWrite, off, 4096)
		if len(res.AdjacentCorruptions) != 0 {
			t.Fatal("quiet drive corrupted data")
		}
		off += 4096
	}
}

func TestReadsNeverCorrupt(t *testing.T) {
	d := newIntegrityDrive(t, 1.0)
	d.SetVibration(Vibration{Freq: 650, Amplitude: 0.2}) // marginal for reads
	var off int64 = 1 << 21
	for i := 0; i < 300; i++ {
		res := d.Access(OpRead, off, 4096)
		if len(res.AdjacentCorruptions) != 0 {
			t.Fatal("read corrupted data")
		}
		off += 4096
	}
}

func TestAdjacentOffsetEdges(t *testing.T) {
	d := newIntegrityDrive(t, 1)
	tb := d.Model().TrackBytes
	if got := d.adjacentOffset(0); got != tb {
		t.Fatalf("track 0 neighbor = %d, want next track %d", got, tb)
	}
	if got := d.adjacentOffset(5 * tb); got != 4*tb {
		t.Fatalf("mid-disk neighbor = %d, want previous track", got)
	}
	m := d.Model()
	m.TrackBytes = 0
	clock := simclock.NewVirtual()
	d2, err := NewDrive(m, clock, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.adjacentOffset(123); got != -1 {
		t.Fatalf("zero track bytes neighbor = %d, want -1", got)
	}
}
