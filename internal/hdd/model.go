// Package hdd models the victim hard disk drive: a mechanical model of how
// incident vibration becomes head off-track displacement, and an operational
// model of how off-track displacement becomes failed or retried I/O.
//
// The mechanism follows Bolton et al. (the paper's citation [6]): the
// read/write head must stay within a tolerance distance of track center —
// tighter for writes than reads — and acoustic excitation at the right
// frequencies drives the head-stack assembly beyond that tolerance. The
// drive's servo rejects disturbance below its control bandwidth, so very low
// frequencies do little; container walls attenuate high frequencies; the
// vulnerable band lives between.
package hdd

import (
	"fmt"
	"math"
	"time"

	"deepnote/internal/units"
	"deepnote/internal/vibration"
)

// Model is the static description of a drive: geometry, timing, mechanics,
// and fault tolerances. It is immutable; operational state lives in Drive.
type Model struct {
	// Name identifies the drive model.
	Name string
	// CapacityBytes is the usable capacity.
	CapacityBytes int64
	// RPM is the spindle speed.
	RPM float64
	// MediaRateBps is the sustained media transfer rate in bytes/second
	// at the outer diameter (LBA 0).
	MediaRateBps float64
	// InnerRateFraction is the media rate at the inner diameter relative
	// to the outer: zoned bit recording makes inner tracks slower (≈0.55
	// on desktop drives). 0 disables zoning (flat rate).
	InnerRateFraction float64
	// ReadOverhead and WriteOverhead are the per-operation fixed costs
	// (controller, cache, settle) for sequential access.
	ReadOverhead, WriteOverhead time.Duration
	// AvgSeek is the average seek time for a random full-span access.
	AvgSeek time.Duration
	// TrackToTrack is the minimum seek time for short hops; seeks scale
	// between TrackToTrack and ~2×AvgSeek with the square root of the
	// travel distance, the classic HDD seek profile.
	TrackToTrack time.Duration
	// WriteFaultFrac and ReadFaultFrac are the off-track fault thresholds
	// as fractions of track pitch. Writes abort at smaller excursions
	// than reads — the root cause of writes dying first under attack.
	WriteFaultFrac, ReadFaultFrac float64
	// ServoCrossover is the servo loop's disturbance-rejection crossover;
	// below it the positioning loop attenuates vibration.
	ServoCrossover units.Frequency
	// ServoOrder sets the steepness of rejection below crossover
	// (6·ServoOrder dB/octave).
	ServoOrder int
	// ServoPeak is the sensitivity hump just above crossover, a standard
	// feature of feedback loops (Bode's integral makes it unavoidable).
	ServoPeak float64
	// HSAModes are the head-stack assembly's mechanical resonances.
	HSAModes vibration.Stack
	// PressureGain converts incident pressure (Pa, after structural
	// gain) into head off-track displacement in track-pitch fractions at
	// the HSA reference response.
	PressureGain float64
	// BaseJitterFrac is the ambient track-misregistration noise floor
	// (fraction of track pitch, 1σ).
	BaseJitterFrac float64
	// ServoLockFrac is the off-track amplitude beyond which the head can
	// no longer read the servo wedges at all: position feedback is lost,
	// retries are useless, and the drive stops responding. This is the
	// cliff behind the paper's "no response" rows — distinct from the
	// per-op fault thresholds, which still allow lucky retries.
	ServoLockFrac float64
	// WedgeWindow is the servo-wedge sampling span the head must stay on
	// track for in addition to the data transfer itself: the positioning
	// loop checks the position error signal at the wedge preceding an
	// access and through it, so even tiny transfers cannot sneak through
	// an instantaneous zero crossing of the vibration.
	WedgeWindow time.Duration
	// RetryRead and RetryWrite are the costs of one positioning retry.
	// Reads recover faster (ECC + immediate re-read); writes must wait a
	// full revolution for the sector to come around again.
	RetryRead, RetryWrite time.Duration
	// MaxRetries bounds retry attempts before the drive reports a media
	// error for the operation.
	MaxRetries int
	// ShockSensorMin is the lowest frequency that trips the drive's
	// shock sensor into parking the heads (the ultrasonic attack path in
	// Bolton et al.). Parking lasts ParkDuration past the last trigger.
	ShockSensorMin units.Frequency
	// ShockSensorAmpFrac is the minimum off-track-equivalent amplitude
	// that trips the sensor.
	ShockSensorAmpFrac float64
	// ParkDuration is how long the heads stay parked after a trigger.
	ParkDuration time.Duration
	// AdjacentCorruptionProb enables the integrity attack surface from
	// Bolton et al. (the paper's intro: acoustic waves affect
	// "availability and integrity"): a write whose peak excursion lands
	// in the marginal zone just under the fault gate squeezes the
	// neighboring track, silently corrupting it with this probability.
	// 0 (the default) disables the mechanism; the availability
	// calibration is unaffected either way.
	AdjacentCorruptionProb float64
	// TrackBytes is the LBA span of one track, used to locate the
	// adjacent-track victim of a marginal write (default 1 MiB via
	// Barracuda500).
	TrackBytes int64
}

// Barracuda500 returns the victim drive used in the paper: a 500 GB
// Seagate Barracuda desktop drive, with per-op overheads calibrated so the
// paper's no-attack FIO numbers (18.0 MB/s sequential read, 22.7 MB/s
// sequential write at 4 KB granularity) fall out.
func Barracuda500() Model {
	return Model{
		Name:              "Seagate Barracuda 500GB (ST500DM002-like)",
		CapacityBytes:     500e9,
		RPM:               7200,
		MediaRateBps:      120e6,
		InnerRateFraction: 0.55,
		ReadOverhead:      193 * time.Microsecond,
		WriteOverhead:     146 * time.Microsecond,
		AvgSeek:           8500 * time.Microsecond,
		TrackToTrack:      1200 * time.Microsecond,

		WriteFaultFrac: 0.15,
		ReadFaultFrac:  0.26,

		ServoCrossover: 400 * units.Hz,
		ServoOrder:     3,
		ServoPeak:      1.25,
		HSAModes: vibration.Stack{
			{F0: 800 * units.Hz, Q: 2.5, Gain: 0.8},
			{F0: 1250 * units.Hz, Q: 2.0, Gain: 0.5},
		},
		PressureGain:   0.043,
		BaseJitterFrac: 0.012,
		ServoLockFrac:  0.45,

		WedgeWindow: 42 * time.Microsecond,
		RetryRead:   2 * time.Millisecond,
		RetryWrite:  8333 * time.Microsecond, // one revolution at 7200 RPM
		MaxRetries:  64,

		ShockSensorMin:     18000 * units.Hz,
		ShockSensorAmpFrac: 0.05,
		ParkDuration:       300 * time.Millisecond,

		TrackBytes: 1 << 20,
	}
}

// Validate reports whether the model is self-consistent.
func (m Model) Validate() error {
	if m.CapacityBytes <= 0 {
		return fmt.Errorf("hdd: %q capacity must be positive", m.Name)
	}
	if m.RPM <= 0 {
		return fmt.Errorf("hdd: %q RPM must be positive", m.Name)
	}
	if m.MediaRateBps <= 0 {
		return fmt.Errorf("hdd: %q media rate must be positive", m.Name)
	}
	if m.WriteFaultFrac <= 0 || m.ReadFaultFrac <= 0 {
		return fmt.Errorf("hdd: %q fault thresholds must be positive", m.Name)
	}
	if m.WriteFaultFrac >= m.ReadFaultFrac {
		return fmt.Errorf("hdd: %q write fault threshold %.3f must be tighter than read %.3f",
			m.Name, m.WriteFaultFrac, m.ReadFaultFrac)
	}
	if m.ServoCrossover <= 0 || m.ServoOrder <= 0 {
		return fmt.Errorf("hdd: %q servo parameters invalid", m.Name)
	}
	if m.PressureGain <= 0 {
		return fmt.Errorf("hdd: %q pressure gain must be positive", m.Name)
	}
	if m.ServoLockFrac <= m.ReadFaultFrac {
		return fmt.Errorf("hdd: %q servo lock loss %.3f must be looser than the read fault threshold %.3f",
			m.Name, m.ServoLockFrac, m.ReadFaultFrac)
	}
	if m.MaxRetries <= 0 {
		return fmt.Errorf("hdd: %q retry budget must be positive", m.Name)
	}
	return m.HSAModes.Validate()
}

// RevolutionPeriod returns the time of one platter revolution.
func (m Model) RevolutionPeriod() time.Duration {
	return time.Duration(60 / m.RPM * float64(time.Second))
}

// TransferTime returns the media transfer time for n bytes at the outer
// diameter. Use TransferTimeAt for zone-aware timing.
func (m Model) TransferTime(n int64) time.Duration {
	return time.Duration(float64(n) / m.MediaRateBps * float64(time.Second))
}

// MediaRateAt returns the zoned media rate at a byte offset: linear
// interpolation from the outer-diameter rate at LBA 0 down to
// InnerRateFraction of it at the last LBA, the classic ZBR profile.
func (m Model) MediaRateAt(offset int64) float64 {
	if m.InnerRateFraction <= 0 || m.InnerRateFraction >= 1 || m.CapacityBytes <= 0 {
		return m.MediaRateBps
	}
	frac := float64(offset) / float64(m.CapacityBytes)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return m.MediaRateBps * (1 - (1-m.InnerRateFraction)*frac)
}

// TransferTimeAt returns the media transfer time for n bytes starting at
// the given offset, honoring zoned recording.
func (m Model) TransferTimeAt(offset, n int64) time.Duration {
	return time.Duration(float64(n) / m.MediaRateAt(offset) * float64(time.Second))
}

// SeekTime returns the head travel time for a seek spanning the given byte
// distance: TrackToTrack for short hops, growing with the square root of
// the travel fraction so that an average random seek (1/3 of the span)
// costs AvgSeek.
func (m Model) SeekTime(distance int64) time.Duration {
	if distance < 0 {
		distance = -distance
	}
	if distance == 0 {
		return m.TrackToTrack
	}
	frac := float64(distance) / float64(m.CapacityBytes)
	t := float64(m.TrackToTrack) + (float64(m.AvgSeek)-float64(m.TrackToTrack))*math.Sqrt(frac*3)
	if max := 2 * float64(m.AvgSeek); t > max {
		t = max
	}
	return time.Duration(t)
}

// MaxSeekRate returns the highest sustainable seek repetition rate (Hz)
// for back-and-forth seeks spanning strokeBytes: each period is two seeks
// (out and back), so the actuator tops out at 1/(2·SeekTime). This bounds
// the fundamental an exfiltration modulator can emit — harmonics of the
// seek rate, amplified by the HSA modes, reach higher.
func (m Model) MaxSeekRate(strokeBytes int64) float64 {
	st := m.SeekTime(strokeBytes)
	if st <= 0 {
		return 0
	}
	return 1 / (2 * st.Seconds())
}

// ServoSensitivity returns |S(f)|, the servo loop's disturbance
// transmissibility: ≈0 well below crossover (the loop follows and rejects),
// a modest hump just above crossover, and ≈1 far above (the loop cannot
// react).
func (m Model) ServoSensitivity(f units.Frequency) float64 {
	if f <= 0 {
		return 0
	}
	r := float64(f) / float64(m.ServoCrossover)
	rn := math.Pow(r, float64(m.ServoOrder))
	base := rn / math.Sqrt(1+rn*rn)
	// Peaking term centered at ~1.3x crossover, width ~ one octave.
	peak := 1 + (m.ServoPeak-1)*math.Exp(-sqDiffLog(r, 1.3)/0.18)
	return base * peak
}

func sqDiffLog(r, center float64) float64 {
	d := math.Log2(r / center)
	return d * d
}

// MechanicalResponse returns the head-stack assembly's dimensionless
// response at frequency f (power sum of its modes).
func (m Model) MechanicalResponse(f units.Frequency) float64 {
	return m.HSAModes.Response(f)
}

// OffTrack converts an excitation — incident acoustic pressure (Pa) already
// multiplied by the enclosure's structural gain — into head off-track
// displacement amplitude, in track-pitch fractions.
func (m Model) OffTrack(f units.Frequency, excitationPa float64) float64 {
	if excitationPa <= 0 {
		return 0
	}
	return m.PressureGain * excitationPa * m.MechanicalResponse(f) * m.ServoSensitivity(f)
}
