package hdd

import (
	"errors"
	"testing"
	"time"

	"deepnote/internal/simclock"
)

func TestCompositeVibrationTotalAmplitude(t *testing.T) {
	v := Vibration{
		Freq: 650, Amplitude: 0.1,
		Partials: []Partial{{Freq: 900, Amplitude: 0.05}, {Freq: 450, Amplitude: 0.02}},
	}
	if got := v.TotalAmplitude(); got != 0.17 {
		t.Fatalf("TotalAmplitude = %v", got)
	}
	if !v.isComposite() {
		t.Fatal("composite not detected")
	}
	if (Vibration{Freq: 650, Amplitude: 0.1}).isComposite() {
		t.Fatal("single tone flagged composite")
	}
}

func TestCompositeKillsWritesLikeSingleTone(t *testing.T) {
	clock := simclock.NewVirtual()
	d, err := NewDrive(Barracuda500(), clock, 3)
	if err != nil {
		t.Fatal(err)
	}
	d.SetVibration(Vibration{
		Freq: 650, Amplitude: 1.5,
		Partials: []Partial{{Freq: 800, Amplitude: 1.2}},
	})
	fails := 0
	var total time.Duration
	var off int64
	n := 20
	for i := 0; i < n; i++ {
		res := d.Access(OpWrite, off, 4096)
		total += res.Latency
		if errors.Is(res.Err, ErrMediaTimeout) {
			fails++
		}
		off += 4096
	}
	if fails == 0 && total/time.Duration(n) < 20*time.Millisecond {
		t.Fatalf("heavy chord should devastate writes: %d fails, mean %v", fails, total/time.Duration(n))
	}
	if fails < n/2 {
		t.Fatalf("heavy chord (amplitudes far above servo lock) should time out most writes: %d/%d", fails, n)
	}
}

func TestCompositeSplitPowerWeakerThanFullSingle(t *testing.T) {
	// Physics sanity: splitting the same drive budget across two tones
	// produces no more damage than the best single tone at full power.
	run := func(v Vibration) int {
		clock := simclock.NewVirtual()
		d, err := NewDrive(Barracuda500(), clock, 5)
		if err != nil {
			t.Fatal(err)
		}
		d.SetVibration(v)
		fails := 0
		var off int64
		for i := 0; i < 200; i++ {
			if res := d.Access(OpWrite, off, 4096); res.Err != nil {
				fails++
			}
			off += 4096
		}
		return fails
	}
	full := run(Vibration{Freq: 650, Amplitude: 0.3})
	split := run(Vibration{
		Freq: 650, Amplitude: 0.15,
		Partials: []Partial{{Freq: 800, Amplitude: 0.15}},
	})
	if split > full {
		t.Fatalf("split-power chord (%d fails) should not beat full single tone (%d fails)", split, full)
	}
}

func TestCompositeBelowThresholdSucceeds(t *testing.T) {
	clock := simclock.NewVirtual()
	d, err := NewDrive(Barracuda500(), clock, 7)
	if err != nil {
		t.Fatal(err)
	}
	d.SetVibration(Vibration{
		Freq: 650, Amplitude: 0.03,
		Partials: []Partial{{Freq: 900, Amplitude: 0.02}},
	})
	var off int64
	for i := 0; i < 100; i++ {
		if res := d.Access(OpWrite, off, 4096); res.Err != nil {
			t.Fatalf("quiet chord failed a write: %v", res.Err)
		}
		off += 4096
	}
}

func TestCompositeUltrasonicPartialTripsShockSensor(t *testing.T) {
	clock := simclock.NewVirtual()
	d, err := NewDrive(Barracuda500(), clock, 9)
	if err != nil {
		t.Fatal(err)
	}
	d.SetVibration(Vibration{
		Freq: 650, Amplitude: 0.05,
		Partials: []Partial{{Freq: 20000, Amplitude: 0.06}},
	})
	if d.Stats().ShockParks != 1 {
		t.Fatal("ultrasonic partial should park the heads")
	}
}

func TestCompositeServoLockLoss(t *testing.T) {
	clock := simclock.NewVirtual()
	d, err := NewDrive(Barracuda500(), clock, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Two nearby partials beat against each other: their coherent peaks
	// exceed the write threshold most of the time, so writes limp along
	// on retries even though single ops occasionally sneak through a
	// beat null.
	d.SetVibration(Vibration{
		Freq: 650, Amplitude: 0.3,
		Partials: []Partial{{Freq: 651, Amplitude: 0.3}},
	})
	var off int64
	var total time.Duration
	n := 50
	for i := 0; i < n; i++ {
		res := d.Access(OpWrite, off, 4096)
		total += res.Latency
		off += 4096
	}
	mean := total / time.Duration(n)
	if mean < 2*time.Millisecond {
		t.Fatalf("mean write latency under beating chord = %v, want heavy retry inflation", mean)
	}
	if d.Stats().Retries == 0 {
		t.Fatal("expected retries under beating chord")
	}
}
