package hdd

import "fmt"

// SMARTAttribute mirrors the vendor-style health attributes an operator
// would pull from a drive under acoustic stress: the raw counters that the
// paper's dmesg evidence (§4.4) ultimately surfaces. IDs follow the
// conventional SMART numbering where one exists.
type SMARTAttribute struct {
	ID    int
	Name  string
	Value int64
	// Worst tracks the attribute's historical worst normalized value in
	// real drives; here it mirrors Value for raw counters.
	Worst int64
	// Threshold marks the vendor alarm level (0 = informational).
	Threshold int64
	// Failing reports Value past Threshold.
	Failing bool
}

// String renders the attribute like smartctl.
func (a SMARTAttribute) String() string {
	status := "-"
	if a.Failing {
		status = "FAILING_NOW"
	}
	return fmt.Sprintf("%3d %-28s %12d %s", a.ID, a.Name, a.Value, status)
}

// SMART returns the drive's current health attributes. The interesting
// ones under acoustic attack are the servo retry and command timeout
// counters, which inflate orders of magnitude before anything crashes —
// a forensic fingerprint of the attack distinct from normal wear.
func (d *Drive) SMART() []SMARTAttribute {
	s := d.stats
	mk := func(id int, name string, v int64, threshold int64) SMARTAttribute {
		return SMARTAttribute{
			ID: id, Name: name, Value: v, Worst: v,
			Threshold: threshold,
			Failing:   threshold > 0 && v >= threshold,
		}
	}
	totalOps := s.Reads + s.Writes
	var retryRate int64
	if totalOps > 0 {
		retryRate = s.Retries * 1000 / totalOps // retries per 1000 ops
	}
	return []SMARTAttribute{
		mk(1, "Raw_Read_Error_Rate", s.ReadErrors, 0),
		mk(9, "Power_On_Ops", totalOps, 0),
		mk(10, "Spin_Retry_Count", s.ShockParks, 10),
		mk(188, "Command_Timeout", s.ReadErrors+s.WriteErrors, 100),
		mk(191, "G-Sense_Error_Rate", s.Retries, 0),
		mk(199, "Servo_Retries_Per_1k_Ops", retryRate, 500),
		mk(241, "Total_LBAs_Written", s.BytesWritten/512, 0),
		mk(242, "Total_LBAs_Read", s.BytesRead/512, 0),
	}
}

// SMARTHealthy reports whether no attribute crosses its threshold.
func (d *Drive) SMARTHealthy() bool {
	for _, a := range d.SMART() {
		if a.Failing {
			return false
		}
	}
	return true
}
