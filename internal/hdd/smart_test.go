package hdd

import (
	"strings"
	"testing"
)

func TestSMARTHealthyDrive(t *testing.T) {
	d, _ := newTestDrive(t)
	var off int64
	for i := 0; i < 100; i++ {
		d.Access(OpWrite, off, 4096)
		off += 4096
	}
	if !d.SMARTHealthy() {
		t.Fatal("healthy drive failing SMART")
	}
	attrs := d.SMART()
	byName := func(name string) SMARTAttribute {
		for _, a := range attrs {
			if a.Name == name {
				return a
			}
		}
		t.Fatalf("attribute %q missing", name)
		return SMARTAttribute{}
	}
	if byName("Power_On_Ops").Value != 100 {
		t.Fatalf("ops = %d", byName("Power_On_Ops").Value)
	}
	if byName("Total_LBAs_Written").Value != 100*4096/512 {
		t.Fatalf("LBAs written = %d", byName("Total_LBAs_Written").Value)
	}
	if byName("Command_Timeout").Value != 0 {
		t.Fatal("healthy drive should have no timeouts")
	}
}

func TestSMARTUnderAttackShowsFingerprint(t *testing.T) {
	d, _ := newTestDrive(t)
	var off int64
	for i := 0; i < 100; i++ {
		d.Access(OpWrite, off, 4096)
		off += 4096
	}
	d.SetVibration(Vibration{Freq: 650, Amplitude: 0.2})
	for i := 0; i < 300; i++ {
		d.Access(OpWrite, off, 4096)
		off += 4096
	}
	attrs := d.SMART()
	var servo SMARTAttribute
	for _, a := range attrs {
		if a.Name == "Servo_Retries_Per_1k_Ops" {
			servo = a
		}
	}
	if servo.Value < 100 {
		t.Fatalf("servo retry rate = %d per 1k ops, want inflated", servo.Value)
	}
	rendered := servo.String()
	if !strings.Contains(rendered, "Servo_Retries") {
		t.Fatalf("rendering: %q", rendered)
	}
}

func TestSMARTFailsAfterSustainedTimeouts(t *testing.T) {
	d, _ := newTestDrive(t)
	d.SetVibration(Vibration{Freq: 650, Amplitude: 2.3})
	var off int64
	for i := 0; i < 120; i++ {
		d.Access(OpWrite, off, 4096)
		off += 4096
	}
	if d.SMARTHealthy() {
		t.Fatal("120 command timeouts should cross the SMART threshold")
	}
	for _, a := range d.SMART() {
		if a.Name == "Command_Timeout" {
			if !a.Failing || !strings.Contains(a.String(), "FAILING_NOW") {
				t.Fatalf("command timeout attribute: %+v", a)
			}
		}
	}
}

func TestZonedRecordingRates(t *testing.T) {
	m := Barracuda500()
	outer := m.MediaRateAt(0)
	inner := m.MediaRateAt(m.CapacityBytes)
	if outer != m.MediaRateBps {
		t.Fatalf("outer rate = %v", outer)
	}
	if inner >= outer*0.6 || inner <= outer*0.5 {
		t.Fatalf("inner rate = %v, want ≈55%% of outer", inner)
	}
	mid := m.MediaRateAt(m.CapacityBytes / 2)
	if mid <= inner || mid >= outer {
		t.Fatal("mid-disk rate not between zones")
	}
	flat := m
	flat.InnerRateFraction = 0
	if flat.MediaRateAt(flat.CapacityBytes) != flat.MediaRateBps {
		t.Fatal("zoning disabled should be flat")
	}
}

func TestInnerTracksSlowerEndToEnd(t *testing.T) {
	d, clock := newTestDrive(t)
	run := func(base int64) float64 {
		start := clock.Now()
		off := base
		for i := 0; i < 500; i++ {
			if res := d.Access(OpRead, off, 4096); res.Err != nil {
				t.Fatal(res.Err)
			}
			off += 4096
		}
		return 500 * 4096 / clock.Since(start).Seconds() / 1e6
	}
	outer := run(0)
	inner := run(d.Capacity() - 500*4096 - 4096)
	if inner >= outer {
		t.Fatalf("inner zone %.1f MB/s should be slower than outer %.1f", inner, outer)
	}
}
