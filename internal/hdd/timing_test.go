package hdd

import (
	"errors"
	"math"
	"testing"
	"time"

	"deepnote/internal/simclock"
	"deepnote/internal/units"
)

// marginalModel is a drive tuned so individual attempt failures are common
// but op failures are cheap to observe: a small retry budget keeps failed
// ops short and makes failure-path accounting visible.
func marginalModel() Model {
	m := Barracuda500()
	m.MaxRetries = 2
	return m
}

// TestZonedInnerOffsetsFailMoreOften is the observable of the zoned
// hold-window fix: at equal excitation, an inner-track chunk transfers
// slower, holds track longer, and therefore fails more often than an
// outer-track chunk. Before the fix the hold window ignored zoning, making
// inner and outer accesses statistically identical.
func TestZonedInnerOffsetsFailMoreOften(t *testing.T) {
	m := marginalModel()
	vib := Vibration{Freq: 1200 * units.Hz, Amplitude: 0.20}

	errorsAt := func(offset int64) int64 {
		clock := simclock.NewVirtual()
		d, err := NewDrive(m, clock, 7)
		if err != nil {
			t.Fatal(err)
		}
		d.SetVibration(vib)
		fails := int64(0)
		for i := 0; i < 400; i++ {
			if res := d.Access(OpWrite, offset, ChunkBytes); res.Err != nil {
				if !errors.Is(res.Err, ErrMediaTimeout) {
					t.Fatalf("unexpected error at offset %d: %v", offset, res.Err)
				}
				fails++
			}
		}
		return fails
	}

	outer := errorsAt(0)
	inner := errorsAt(m.CapacityBytes - ChunkBytes)
	if inner <= outer {
		t.Fatalf("inner-track accesses must fail more often than outer at equal excitation: inner=%d outer=%d", inner, outer)
	}
}

// TestZonedHoldWindowMatchesZonedTransfer pins the mechanism behind the
// statistical test above: the per-chunk hold window must stretch with the
// zoned transfer time, so inner windows are strictly wider.
func TestZonedHoldWindowMatchesZonedTransfer(t *testing.T) {
	m := Barracuda500()
	outer := m.TransferTimeAt(0, ChunkBytes)
	inner := m.TransferTimeAt(m.CapacityBytes-ChunkBytes, ChunkBytes)
	if inner <= outer {
		t.Fatalf("zoned transfer must be slower at the inner diameter: inner=%v outer=%v", inner, outer)
	}
}

// TestFailureLatencyChargesOnlyAccruedWork asserts the ErrMediaTimeout
// accounting fix: a failed op pays its fixed positioning cost, the retries
// it actually burned, and the transfer of chunks it actually completed —
// never the media time of chunks after the failing one.
func TestFailureLatencyChargesOnlyAccruedWork(t *testing.T) {
	m := Barracuda500()
	const length = 16 * ChunkBytes

	// Servo lock is lost at this amplitude, so the very first chunk burns
	// the whole retry budget deterministically: the op must cost exactly
	// fixed positioning plus MaxRetries retry slots, with zero transfer.
	clock := simclock.NewVirtual()
	d, err := NewDrive(m, clock, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.SetVibration(Vibration{Freq: 800 * units.Hz, Amplitude: m.ServoLockFrac})
	res := d.Access(OpWrite, 0, length)
	if !errors.Is(res.Err, ErrMediaTimeout) {
		t.Fatalf("expected media timeout under servo lock loss, got %v", res.Err)
	}
	fixed := m.WriteOverhead + m.SeekTime(0) + m.RevolutionPeriod()/8
	want := fixed + time.Duration(m.MaxRetries)*m.RetryWrite
	if res.Latency != want {
		t.Fatalf("first-chunk timeout latency = %v, want %v (fixed %v + %d retries); transfer for unattempted chunks must not be charged",
			res.Latency, want, fixed, m.MaxRetries)
	}
	if full := m.TransferTime(length); res.Latency >= want+full {
		t.Fatalf("first-chunk timeout still charges whole-request transfer: %v", res.Latency)
	}
}

// TestFirstChunkTimeoutCheaperThanLastChunk compares failure latencies by
// failure position: among failed ops that burned exactly one retry budget
// (so their retry cost is identical), one that died on a later chunk must
// have paid for the chunks it completed first and so must cost strictly
// more than one that died on chunk zero.
func TestFirstChunkTimeoutCheaperThanLastChunk(t *testing.T) {
	m := marginalModel()
	const length = 16 * ChunkBytes
	vib := Vibration{Freq: 900 * units.Hz, Amplitude: 0.17}
	budgetOnly := time.Duration(m.MaxRetries) * m.RetryWrite

	var minLat, maxLat time.Duration
	seen := 0
	for seed := int64(0); seed < 400; seed++ {
		clock := simclock.NewVirtual()
		d, err := NewDrive(m, clock, seed)
		if err != nil {
			t.Fatal(err)
		}
		d.SetVibration(vib)
		res := d.Access(OpWrite, 0, length)
		if res.Err == nil || res.Retries != m.MaxRetries {
			continue
		}
		// Same retry spend; latency differences are purely completed-chunk
		// transfer, i.e. where in the op the timeout happened.
		lat := res.Latency - budgetOnly
		if seen == 0 || lat < minLat {
			minLat = lat
		}
		if seen == 0 || lat > maxLat {
			maxLat = lat
		}
		seen++
	}
	if seen < 10 {
		t.Fatalf("marginal excitation produced only %d single-budget failures; test needs more", seen)
	}
	if minLat >= maxLat {
		t.Fatalf("all timeouts cost the same (%v) regardless of failing position; failure latency must accrue per completed chunk", minLat)
	}
	chunk := m.TransferTime(ChunkBytes)
	if maxLat-minLat < chunk {
		t.Fatalf("latency spread %v between earliest and latest timeout is smaller than one chunk transfer %v", maxLat-minLat, chunk)
	}
}

// TestSuccessProbabilityMatchesSimulated64K is the regression pinned by the
// per-chunk predictor fix: for a multi-chunk 64 KiB op the predictor and
// the simulator must describe the same random process. The simulated
// zero-retry success rate (ops that complete with no retries) is compared
// against SuccessProbability's estimate of exactly that event.
func TestSuccessProbabilityMatchesSimulated64K(t *testing.T) {
	m := Barracuda500()
	const length = 64 * 1024
	// Moderate tone plus broadband jitter lands the 16-chunk zero-retry
	// probability far from 0 and 1, where per-chunk vs whole-request
	// modeling differences are starkest.
	vib := Vibration{Freq: 1200 * units.Hz, Amplitude: 0.10, ExtraJitter: 0.030}

	pred, err := m.SuccessProbability(OpWrite, vib, length, 20000, 11)
	if err != nil {
		t.Fatal(err)
	}

	const ops = 4000
	clean := 0
	clock := simclock.NewVirtual()
	d, err := NewDrive(m, clock, 23)
	if err != nil {
		t.Fatal(err)
	}
	d.SetVibration(vib)
	for i := 0; i < ops; i++ {
		if res := d.Access(OpWrite, 0, length); res.Err == nil && res.Retries == 0 {
			clean++
		}
	}
	sim := float64(clean) / ops

	if pred < 0.02 || pred > 0.98 {
		t.Fatalf("operating point degenerate for a regression test: predicted %.3f", pred)
	}
	if diff := pred - sim; diff > 0.05 || diff < -0.05 {
		t.Fatalf("predictor and simulator disagree on a 64 KiB op: predicted %.3f, simulated %.3f", pred, sim)
	}
}

// TestSuccessProbabilityCompositeRejected pins the documented composite
// fallback: multi-partial excitations have no closed per-chunk form and
// must be refused rather than silently ignored.
func TestSuccessProbabilityCompositeRejected(t *testing.T) {
	m := Barracuda500()
	v := Vibration{
		Freq: 650 * units.Hz, Amplitude: 0.1,
		Partials: []Partial{{Freq: 1300 * units.Hz, Amplitude: 0.05}},
	}
	if _, err := m.SuccessProbability(OpWrite, v, ChunkBytes, 100, 1); !errors.Is(err, ErrCompositeVibration) {
		t.Fatalf("composite vibration must return ErrCompositeVibration, got %v", err)
	}
}

// TestMaxSeekRate pins the actuator's back-and-forth repetition limit —
// the ceiling the exfil modulator's seek-pattern dictionary is validated
// against: one period is two seeks of the stroke.
func TestMaxSeekRate(t *testing.T) {
	m := Barracuda500()
	for _, stroke := range []int64{0, m.TrackBytes, m.CapacityBytes / 2} {
		want := 1 / (2 * m.SeekTime(stroke).Seconds())
		if got := m.MaxSeekRate(stroke); math.Abs(got-want) > 1e-9 {
			t.Errorf("stroke %d: MaxSeekRate %.3f, want %.3f", stroke, got, want)
		}
	}
	// Longer strokes take longer per seek, so the sustainable rate must
	// fall monotonically, and the track-to-track rate must clear the
	// modulator's default dictionary (390 Hz seek rate for the 780 Hz
	// tone at harmonic 2).
	short, long := m.MaxSeekRate(m.TrackBytes), m.MaxSeekRate(m.CapacityBytes)
	if short <= long {
		t.Errorf("rate must fall with stroke: track %.1f, full %.1f", short, long)
	}
	if short < 390 {
		t.Errorf("track-to-track rate %.1f cannot carry the default dictionary", short)
	}
}
