package jfs

import (
	"fmt"
	"io"
)

// File is a handle to a file in the root directory. Handles stay valid
// until the file is removed; they are not reference counted.
type File struct {
	fs   *FS
	ino  int
	name string
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Size returns the current file size in bytes.
func (f *File) Size() int64 { return int64(f.fs.inodes[f.ino].Size) }

// MaxFileSize is the largest file the direct + single-indirect block map
// can address.
const MaxFileSize = int64(NDirect+PointersPerBlock) * BlockSize

// blockNumber returns the data block for file block index idx (0 = hole).
func (f *File) blockNumber(idx int64) uint64 {
	in := &f.fs.inodes[f.ino]
	if idx < NDirect {
		return in.Direct[idx]
	}
	if in.Indirect == 0 {
		return 0
	}
	rel := idx - NDirect
	if rel >= PointersPerBlock {
		return 0
	}
	return f.fs.indirect[in.Indirect][rel]
}

// ensureBlock allocates (if needed) and returns the data block for file
// block index idx. Fresh data blocks are zeroed on the device unless the
// caller declares it will overwrite the whole block: freed blocks get
// recycled, and a partial write into a dirty recycled block would
// otherwise expose the previous owner's bytes.
func (f *File) ensureBlock(idx int64, fullCover bool) (uint64, error) {
	in := &f.fs.inodes[f.ino]
	if idx < NDirect {
		if in.Direct[idx] == 0 {
			bn, err := f.allocDataBlock(fullCover)
			if err != nil {
				return 0, err
			}
			in.Direct[idx] = bn
			f.fs.markInodeDirty(f.ino)
		}
		return in.Direct[idx], nil
	}
	rel := idx - NDirect
	if rel >= PointersPerBlock {
		return 0, fmt.Errorf("%w: block index %d", ErrFileTooLarge, idx)
	}
	if in.Indirect == 0 {
		bn, err := f.fs.allocBlock()
		if err != nil {
			return 0, err
		}
		in.Indirect = bn
		f.fs.indirect[bn] = make([]uint64, PointersPerBlock)
		f.fs.markInodeDirty(f.ino)
		f.fs.markIndirectDirty(bn)
	}
	ptrs := f.fs.indirect[in.Indirect]
	if ptrs[rel] == 0 {
		bn, err := f.allocDataBlock(fullCover)
		if err != nil {
			return 0, err
		}
		ptrs[rel] = bn
		f.fs.markIndirectDirty(in.Indirect)
	}
	return ptrs[rel], nil
}

func (f *File) allocDataBlock(fullCover bool) (uint64, error) {
	bn, err := f.fs.allocBlock()
	if err != nil {
		return 0, err
	}
	if !fullCover {
		zeros := make([]byte, BlockSize)
		if _, err := f.fs.dev.WriteAt(zeros, int64(bn)*BlockSize); err != nil {
			f.fs.freeBlock(bn)
			return 0, fmt.Errorf("jfs: zeroing fresh block %d: %w", bn, err)
		}
	}
	return bn, nil
}

// WriteAt writes p at offset off, growing the file as needed. Data blocks
// are written in place (ordered mode); metadata changes are journaled at
// the next commit.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if err := f.fs.guard(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("jfs: negative offset %d", off)
	}
	if off+int64(len(p)) > MaxFileSize {
		return 0, fmt.Errorf("%w: %d bytes at %d", ErrFileTooLarge, len(p), off)
	}
	// Extending past EOF: the gap between the old end and the write
	// start must read as zeros, but recycled blocks can carry stale
	// bytes — zero the allocated part of the gap explicitly.
	if size := f.Size(); off > size {
		if err := f.zeroRange(size, off); err != nil {
			return 0, err
		}
	}

	// Map the span onto physical extents, merging physically contiguous
	// blocks into single device requests the way the kernel's block layer
	// would. Sequentially allocated files get large sequential writes.
	written := 0
	for written < len(p) {
		idx := (off + int64(written)) / BlockSize
		in := (off + int64(written)) % BlockSize
		remain := int64(len(p) - written)
		bn, err := f.ensureBlock(idx, in == 0 && remain >= BlockSize)
		if err != nil {
			return written, err
		}
		run := int64(BlockSize - in) // bytes coverable in this extent
		prev := bn
		for run < remain {
			nextIdx := idx + (in+run)/BlockSize
			nbn, err := f.ensureBlock(nextIdx, remain-run >= BlockSize)
			if err != nil {
				return written, err
			}
			if nbn != prev+1 {
				break
			}
			prev = nbn
			run += BlockSize
		}
		n := int64(len(p) - written)
		if n > run {
			n = run
		}
		if _, err := f.fs.dev.WriteAt(p[written:written+int(n)], int64(bn)*BlockSize+in); err != nil {
			return written, fmt.Errorf("jfs: data write: %w", err)
		}
		written += int(n)
	}
	if newSize := uint64(off) + uint64(len(p)); newSize > f.fs.inodes[f.ino].Size {
		f.fs.inodes[f.ino].Size = newSize
		f.fs.markInodeDirty(f.ino)
	}
	f.fs.maybeCommit()
	return written, nil
}

// Append writes p at the end of the file.
func (f *File) Append(p []byte) (int, error) {
	return f.WriteAt(p, f.Size())
}

// zeroRange writes zeros over [from, to) wherever blocks are already
// allocated; unallocated blocks are holes and read as zeros anyway.
func (f *File) zeroRange(from, to int64) error {
	for from < to {
		idx := from / BlockSize
		in := from % BlockSize
		n := to - from
		if n > BlockSize-in {
			n = BlockSize - in
		}
		if bn := f.blockNumber(idx); bn != 0 {
			zeros := make([]byte, n)
			if _, err := f.fs.dev.WriteAt(zeros, int64(bn)*BlockSize+in); err != nil {
				return fmt.Errorf("jfs: zeroing extension gap: %w", err)
			}
		}
		from += n
	}
	return nil
}

// ReadAt reads into p from offset off. Reads past EOF return io.EOF after
// the available bytes, matching io.ReaderAt semantics.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if !f.fs.mounted {
		return 0, ErrNotMounted
	}
	if off < 0 {
		return 0, fmt.Errorf("jfs: negative offset %d", off)
	}
	size := f.Size()
	if off >= size {
		return 0, io.EOF
	}
	want := int64(len(p))
	if off+want > size {
		want = size - off
	}
	read := int64(0)
	for read < want {
		idx := (off + read) / BlockSize
		in := (off + read) % BlockSize
		bn := f.blockNumber(idx)
		if bn == 0 {
			n := want - read
			if n > BlockSize-in {
				n = BlockSize - in
			}
			for i := int64(0); i < n; i++ {
				p[read+i] = 0
			}
			read += n
			continue
		}
		// Merge physically contiguous blocks into one device read.
		run := int64(BlockSize - in)
		prev := bn
		for run < want-read {
			nbn := f.blockNumber(idx + (in+run)/BlockSize)
			if nbn != prev+1 {
				break
			}
			prev = nbn
			run += BlockSize
		}
		n := want - read
		if n > run {
			n = run
		}
		if _, err := f.fs.dev.ReadAt(p[read:read+n], int64(bn)*BlockSize+in); err != nil {
			return int(read), fmt.Errorf("jfs: data read: %w", err)
		}
		read += n
	}
	f.fs.maybeCommit()
	if read < int64(len(p)) {
		return int(read), io.EOF
	}
	return int(read), nil
}

// Sync commits the file's metadata (and everything else pending) durably.
func (f *File) Sync() error { return f.fs.Sync() }

// Truncate sets the file size. Growing leaves a hole; shrinking frees whole
// blocks beyond the new end.
func (f *File) Truncate(size int64) error {
	if err := f.fs.guard(); err != nil {
		return err
	}
	if size < 0 || size > MaxFileSize {
		return fmt.Errorf("%w: truncate to %d", ErrFileTooLarge, size)
	}
	in := &f.fs.inodes[f.ino]
	oldBlocks := (int64(in.Size) + BlockSize - 1) / BlockSize
	newBlocks := (size + BlockSize - 1) / BlockSize
	// Shrinking: the retained final block's tail beyond the new size must
	// not leak the old content back if the file later grows over it.
	if size < int64(in.Size) && size%BlockSize != 0 {
		end := size + (BlockSize - size%BlockSize)
		if end > int64(in.Size) {
			end = int64(in.Size)
		}
		if err := f.zeroRange(size, end); err != nil {
			return err
		}
	}
	for idx := newBlocks; idx < oldBlocks; idx++ {
		if idx < NDirect {
			if in.Direct[idx] != 0 {
				f.fs.freeBlock(in.Direct[idx])
				in.Direct[idx] = 0
			}
			continue
		}
		if in.Indirect == 0 {
			continue
		}
		rel := idx - NDirect
		ptrs := f.fs.indirect[in.Indirect]
		if ptrs[rel] != 0 {
			f.fs.freeBlock(ptrs[rel])
			ptrs[rel] = 0
			f.fs.markIndirectDirty(in.Indirect)
		}
	}
	in.Size = uint64(size)
	f.fs.markInodeDirty(f.ino)
	f.fs.maybeCommit()
	return nil
}
