package jfs

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/metrics"
	"deepnote/internal/simclock"
)

// Errors reported by the filesystem.
var (
	// ErrAborted is the JBD abort: the journal could not be written for
	// longer than the stall limit. The message carries the paper's
	// observed signature ("error -5").
	ErrAborted = errors.New("jfs: journal has aborted (JBD: Detected aborted journal, error -5)")
	// ErrNotFound is returned for missing names.
	ErrNotFound = errors.New("jfs: file not found")
	// ErrExists is returned when creating an existing name.
	ErrExists = errors.New("jfs: file exists")
	// ErrNameTooLong is returned for names over MaxNameLen bytes.
	ErrNameTooLong = errors.New("jfs: name too long")
	// ErrNoSpace is returned when blocks or inodes run out.
	ErrNoSpace = errors.New("jfs: no space left on device")
	// ErrFileTooLarge is returned when a file exceeds its block map.
	ErrFileTooLarge = errors.New("jfs: file too large")
	// ErrNotMounted is returned after Unmount.
	ErrNotMounted = errors.New("jfs: not mounted")
)

// Config tunes the journaling behaviour.
type Config struct {
	// CommitInterval is the background commit cadence (default 5 s,
	// matching ext4's commit=5 default).
	CommitInterval time.Duration
	// StallLimit is how long the journal tolerates failing commits
	// before aborting (default 75 s; with the 5 s commit cadence this
	// reproduces the paper's ≈80 s Ext4 time-to-crash).
	StallLimit time.Duration
}

func (c Config) withDefaults() Config {
	if c.CommitInterval <= 0 {
		c.CommitInterval = 5 * time.Second
	}
	if c.StallLimit <= 0 {
		c.StallLimit = 75 * time.Second
	}
	return c
}

// FS is a mounted filesystem.
type FS struct {
	dev   blockdev.Device
	clock simclock.Clock
	cfg   Config
	sb    *Superblock
	js    journalSuper

	bitmap   []byte
	inodes   []Inode
	dirents  []Dirent
	indirect map[uint64][]uint64 // indirect block number -> pointers

	dirty      map[uint64]bool // dirty metadata blocks (absolute numbers)
	lastCommit time.Time
	stallSince time.Time
	aborted    bool
	abortErr   error
	crashedAt  time.Time
	mounted    bool

	// CommitAttempts and CommitFailures count journal activity.
	CommitAttempts, CommitFailures int
	// Replays counts journal transactions replayed at mount.
	Replays int
}

// Mkfs formats the device. It must run against a quiet (un-attacked)
// device; formatting failures are returned verbatim.
func Mkfs(dev blockdev.Device, opts MkfsOptions) error {
	devBlocks := uint64(dev.Size()) / BlockSize
	opts, err := opts.withDefaults(devBlocks)
	if err != nil {
		return err
	}
	bitmapBlocks := (opts.Blocks/8 + BlockSize - 1) / BlockSize
	inodeBlocks := (uint64(opts.Inodes) + InodesPerBlock - 1) / InodesPerBlock
	dirBlocks := (uint64(opts.Inodes)*DirentSize + BlockSize - 1) / BlockSize

	sb := &Superblock{
		Magic:         Magic,
		TotalBlocks:   opts.Blocks,
		JournalStart:  1,
		JournalBlocks: opts.JournalBlocks,
		BitmapStart:   1 + opts.JournalBlocks,
		BitmapBlocks:  bitmapBlocks,
		InodeStart:    1 + opts.JournalBlocks + bitmapBlocks,
		InodeBlocks:   inodeBlocks,
		InodeCount:    opts.Inodes,
		State:         StateClean,
	}
	sb.DataStart = sb.InodeStart + inodeBlocks + dirBlocks
	if sb.DataStart >= opts.Blocks {
		return fmt.Errorf("jfs: layout overflows %d blocks", opts.Blocks)
	}

	// Superblock.
	if err := writeBlock(dev, 0, sb.encode()); err != nil {
		return err
	}
	// Empty journal.
	js := journalSuper{Start: 1, Head: 1, Sequence: 1}
	if err := writeBlock(dev, sb.JournalStart, js.encode()); err != nil {
		return err
	}
	// Bitmap with metadata blocks marked used.
	bitmap := make([]byte, bitmapBlocks*BlockSize)
	for b := uint64(0); b < sb.DataStart; b++ {
		bitmap[b/8] |= 1 << (b % 8)
	}
	for i := uint64(0); i < bitmapBlocks; i++ {
		if err := writeBlock(dev, sb.BitmapStart+i, bitmap[i*BlockSize:(i+1)*BlockSize]); err != nil {
			return err
		}
	}
	// Zeroed inode table and directory.
	zeroBlock := make([]byte, BlockSize)
	for i := uint64(0); i < inodeBlocks+dirBlocks; i++ {
		if err := writeBlock(dev, sb.InodeStart+i, zeroBlock); err != nil {
			return err
		}
	}
	return dev.Flush()
}

// Mount opens the filesystem, replaying any committed journal transactions
// left by an unclean shutdown.
func Mount(dev blockdev.Device, clock simclock.Clock, cfg Config) (*FS, error) {
	buf := make([]byte, BlockSize)
	if _, err := dev.ReadAt(buf, 0); err != nil {
		return nil, fmt.Errorf("jfs: reading superblock: %w", err)
	}
	sb, err := decodeSuperblock(buf)
	if err != nil {
		return nil, err
	}
	fs := &FS{
		dev:      dev,
		clock:    clock,
		cfg:      cfg.withDefaults(),
		sb:       sb,
		indirect: make(map[uint64][]uint64),
		dirty:    make(map[uint64]bool),
		mounted:  true,
	}
	if err := fs.replayJournal(); err != nil {
		return nil, err
	}
	if err := fs.loadMetadata(); err != nil {
		return nil, err
	}
	fs.sb.State = StateDirty
	fs.sb.MountCount++
	if err := writeBlock(dev, 0, fs.sb.encode()); err != nil {
		return nil, fmt.Errorf("jfs: updating superblock: %w", err)
	}
	fs.lastCommit = clock.Now()
	return fs, nil
}

func (fs *FS) replayJournal() error {
	buf := make([]byte, BlockSize)
	if _, err := fs.dev.ReadAt(buf, int64(fs.sb.JournalStart)*BlockSize); err != nil {
		return fmt.Errorf("jfs: reading journal superblock: %w", err)
	}
	js, err := decodeJournalSuper(buf)
	if err != nil {
		return err
	}
	fs.js = js
	pos := js.Start
	seq := js.Sequence
	replayed := 0
	for pos != js.Head {
		desc, err := fs.readJournalBlock(pos)
		if err != nil {
			return err
		}
		dseq, blocks, ok := decodeDescriptor(desc)
		if !ok || dseq != seq {
			break
		}
		images := make([][]byte, len(blocks))
		for i := range blocks {
			img, err := fs.readJournalBlock(pos + 1 + uint64(i))
			if err != nil {
				return err
			}
			images[i] = img
		}
		cblk, err := fs.readJournalBlock(pos + 1 + uint64(len(blocks)))
		if err != nil {
			return err
		}
		cseq, sum, ok := decodeCommit(cblk)
		if !ok || cseq != dseq || sum != txChecksum(blocks, images) {
			break
		}
		// Committed transaction: apply in place.
		for i, bn := range blocks {
			if err := writeBlock(fs.dev, bn, images[i]); err != nil {
				return fmt.Errorf("jfs: replaying block %d: %w", bn, err)
			}
		}
		replayed++
		pos += uint64(len(blocks)) + 2
		seq++
	}
	fs.Replays = replayed
	// Journal fully checkpointed: mark empty.
	fs.js = journalSuper{Start: 1, Head: 1, Sequence: seq}
	if err := writeBlock(fs.dev, fs.sb.JournalStart, fs.js.encode()); err != nil {
		return fmt.Errorf("jfs: resetting journal: %w", err)
	}
	return nil
}

func (fs *FS) readJournalBlock(rel uint64) ([]byte, error) {
	if rel >= fs.sb.JournalBlocks {
		return nil, fmt.Errorf("jfs: journal offset %d out of range", rel)
	}
	buf := make([]byte, BlockSize)
	if _, err := fs.dev.ReadAt(buf, int64(fs.sb.JournalStart+rel)*BlockSize); err != nil {
		return nil, err
	}
	return buf, nil
}

func (fs *FS) loadMetadata() error {
	sb := fs.sb
	fs.bitmap = make([]byte, sb.BitmapBlocks*BlockSize)
	if _, err := fs.dev.ReadAt(fs.bitmap, int64(sb.BitmapStart)*BlockSize); err != nil {
		return fmt.Errorf("jfs: reading bitmap: %w", err)
	}
	raw := make([]byte, sb.InodeBlocks*BlockSize)
	if _, err := fs.dev.ReadAt(raw, int64(sb.InodeStart)*BlockSize); err != nil {
		return fmt.Errorf("jfs: reading inode table: %w", err)
	}
	fs.inodes = make([]Inode, sb.InodeCount)
	for i := range fs.inodes {
		fs.inodes[i] = decodeInode(raw[i*InodeSize:])
	}
	dirBlocks := fs.dirBlocks()
	rawDir := make([]byte, dirBlocks*BlockSize)
	if _, err := fs.dev.ReadAt(rawDir, int64(fs.dirStart())*BlockSize); err != nil {
		return fmt.Errorf("jfs: reading directory: %w", err)
	}
	fs.dirents = make([]Dirent, sb.InodeCount)
	for i := range fs.dirents {
		fs.dirents[i] = decodeDirent(rawDir[i*DirentSize:])
	}
	// Load indirect blocks of live inodes.
	for i := range fs.inodes {
		in := &fs.inodes[i]
		if in.Used && in.Indirect != 0 {
			buf := make([]byte, BlockSize)
			if _, err := fs.dev.ReadAt(buf, int64(in.Indirect)*BlockSize); err != nil {
				return fmt.Errorf("jfs: reading indirect block of inode %d: %w", i, err)
			}
			ptrs := make([]uint64, PointersPerBlock)
			for j := range ptrs {
				ptrs[j] = leUint64(buf[8*j:])
			}
			fs.indirect[in.Indirect] = ptrs
		}
	}
	return nil
}

func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func (fs *FS) dirStart() uint64  { return fs.sb.InodeStart + fs.sb.InodeBlocks }
func (fs *FS) dirBlocks() uint64 { return fs.sb.DataStart - fs.dirStart() }

// Aborted reports whether the journal has aborted, and with what error.
func (fs *FS) Aborted() (bool, error) { return fs.aborted, fs.abortErr }

// PublishMetrics pushes the filesystem's journal counters into a registry
// under the "jfs." prefix (no-op on a nil registry).
func (fs *FS) PublishMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.Add("jfs.commit_attempts", int64(fs.CommitAttempts))
	reg.Add("jfs.commit_failures", int64(fs.CommitFailures))
	reg.Add("jfs.replays", int64(fs.Replays))
	if fs.aborted {
		reg.Add("jfs.aborts", 1)
	}
}

// CrashedAt returns the virtual time of the journal abort (zero if none).
func (fs *FS) CrashedAt() time.Time { return fs.crashedAt }

// Superblock returns a copy of the superblock (diagnostics).
func (fs *FS) Superblock() Superblock { return *fs.sb }

// Unmount commits outstanding state and marks the filesystem clean.
func (fs *FS) Unmount() error {
	if !fs.mounted {
		return ErrNotMounted
	}
	if err := fs.Sync(); err != nil {
		fs.mounted = false
		return err
	}
	fs.sb.State = StateClean
	err := writeBlock(fs.dev, 0, fs.sb.encode())
	fs.mounted = false
	if err != nil {
		return fmt.Errorf("jfs: writing clean superblock: %w", err)
	}
	return fs.dev.Flush()
}

// guard returns the error that should preempt a mutating operation.
func (fs *FS) guard() error {
	if !fs.mounted {
		return ErrNotMounted
	}
	if fs.aborted {
		return fs.abortErr
	}
	return nil
}

// Create makes a new empty file.
func (fs *FS) Create(name string) (*File, error) {
	if err := fs.guard(); err != nil {
		return nil, err
	}
	if len(name) == 0 || len(name) > MaxNameLen {
		return nil, fmt.Errorf("%w: %q", ErrNameTooLong, name)
	}
	if _, ok := fs.lookup(name); ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	ino := -1
	for i := range fs.inodes {
		if !fs.inodes[i].Used {
			ino = i
			break
		}
	}
	if ino < 0 {
		return nil, fmt.Errorf("%w: out of inodes", ErrNoSpace)
	}
	slot := -1
	for i := range fs.dirents {
		if !fs.dirents[i].Used {
			slot = i
			break
		}
	}
	if slot < 0 {
		return nil, fmt.Errorf("%w: directory full", ErrNoSpace)
	}
	fs.inodes[ino] = Inode{Used: true}
	fs.dirents[slot] = Dirent{Used: true, Ino: uint32(ino), Name: name}
	fs.markInodeDirty(ino)
	fs.markDirentDirty(slot)
	fs.maybeCommit()
	return &File{fs: fs, ino: ino, name: name}, nil
}

// Open returns a handle to an existing file.
func (fs *FS) Open(name string) (*File, error) {
	if !fs.mounted {
		return nil, ErrNotMounted
	}
	ino, ok := fs.lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return &File{fs: fs, ino: ino, name: name}, nil
}

// Remove deletes a file and frees its blocks.
func (fs *FS) Remove(name string) error {
	if err := fs.guard(); err != nil {
		return err
	}
	slot := -1
	for i := range fs.dirents {
		if fs.dirents[i].Used && fs.dirents[i].Name == name {
			slot = i
			break
		}
	}
	if slot < 0 {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	ino := int(fs.dirents[slot].Ino)
	in := &fs.inodes[ino]
	for _, bn := range in.Direct {
		if bn != 0 {
			fs.freeBlock(bn)
		}
	}
	if in.Indirect != 0 {
		for _, bn := range fs.indirect[in.Indirect] {
			if bn != 0 {
				fs.freeBlock(bn)
			}
		}
		delete(fs.indirect, in.Indirect)
		fs.freeBlock(in.Indirect)
	}
	fs.inodes[ino] = Inode{}
	fs.dirents[slot] = Dirent{}
	fs.markInodeDirty(ino)
	fs.markDirentDirty(slot)
	fs.maybeCommit()
	return nil
}

// List returns the names in the root directory, sorted.
func (fs *FS) List() []string {
	var names []string
	for i := range fs.dirents {
		if fs.dirents[i].Used {
			names = append(names, fs.dirents[i].Name)
		}
	}
	sort.Strings(names)
	return names
}

func (fs *FS) lookup(name string) (int, bool) {
	for i := range fs.dirents {
		if fs.dirents[i].Used && fs.dirents[i].Name == name {
			return int(fs.dirents[i].Ino), true
		}
	}
	return 0, false
}

// --- block allocation -------------------------------------------------

func (fs *FS) allocBlock() (uint64, error) {
	for bn := fs.sb.DataStart; bn < fs.sb.TotalBlocks; bn++ {
		if fs.bitmap[bn/8]&(1<<(bn%8)) == 0 {
			fs.bitmap[bn/8] |= 1 << (bn % 8)
			fs.markBitmapDirty(bn)
			return bn, nil
		}
	}
	return 0, ErrNoSpace
}

func (fs *FS) freeBlock(bn uint64) {
	fs.bitmap[bn/8] &^= 1 << (bn % 8)
	fs.markBitmapDirty(bn)
}

// FreeBlocks counts unallocated blocks (diagnostics).
func (fs *FS) FreeBlocks() uint64 {
	var n uint64
	for bn := fs.sb.DataStart; bn < fs.sb.TotalBlocks; bn++ {
		if fs.bitmap[bn/8]&(1<<(bn%8)) == 0 {
			n++
		}
	}
	return n
}

// --- dirty metadata tracking -------------------------------------------

func (fs *FS) markBitmapDirty(bn uint64) {
	fs.dirty[fs.sb.BitmapStart+(bn/8)/BlockSize] = true
}

func (fs *FS) markInodeDirty(ino int) {
	fs.dirty[fs.sb.InodeStart+uint64(ino)/InodesPerBlock] = true
}

func (fs *FS) markDirentDirty(slot int) {
	fs.dirty[fs.dirStart()+uint64(slot*DirentSize)/BlockSize] = true
}

func (fs *FS) markIndirectDirty(bn uint64) {
	fs.dirty[bn] = true
}

// blockImage regenerates the current content of a metadata block from the
// in-memory state.
func (fs *FS) blockImage(bn uint64) []byte {
	sb := fs.sb
	buf := make([]byte, BlockSize)
	switch {
	case bn >= sb.BitmapStart && bn < sb.BitmapStart+sb.BitmapBlocks:
		off := (bn - sb.BitmapStart) * BlockSize
		copy(buf, fs.bitmap[off:off+BlockSize])
	case bn >= sb.InodeStart && bn < sb.InodeStart+sb.InodeBlocks:
		first := int((bn - sb.InodeStart) * InodesPerBlock)
		for i := 0; i < InodesPerBlock && first+i < len(fs.inodes); i++ {
			fs.inodes[first+i].encode(buf[i*InodeSize:])
		}
	case bn >= fs.dirStart() && bn < sb.DataStart:
		perBlock := BlockSize / DirentSize
		first := int(bn-fs.dirStart()) * perBlock
		for i := 0; i < perBlock && first+i < len(fs.dirents); i++ {
			fs.dirents[first+i].encode(buf[i*DirentSize:])
		}
	default:
		if ptrs, ok := fs.indirect[bn]; ok {
			for i, p := range ptrs {
				putLeUint64(buf[8*i:], p)
			}
		}
	}
	return buf
}

func putLeUint64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// --- journal commit ----------------------------------------------------

// Tick gives the filesystem a chance to run its background commit; any
// operation also does this implicitly.
func (fs *FS) Tick() { fs.maybeCommit() }

// Sync forces a commit of all dirty metadata now.
func (fs *FS) Sync() error {
	if err := fs.guard(); err != nil {
		return err
	}
	return fs.commitNow()
}

func (fs *FS) maybeCommit() {
	if fs.aborted || !fs.mounted {
		return
	}
	due := fs.clock.Now().Sub(fs.lastCommit) >= fs.cfg.CommitInterval
	pending := len(fs.dirty) > 0 || !fs.stallSince.IsZero()
	if due && pending {
		_ = fs.commitNow() // the abort path records the error
	}
}

func (fs *FS) commitNow() error {
	if len(fs.dirty) == 0 {
		fs.lastCommit = fs.clock.Now()
		fs.stallSince = time.Time{}
		return nil
	}
	fs.CommitAttempts++
	err := fs.writeTransaction()
	if err == nil {
		fs.lastCommit = fs.clock.Now()
		fs.stallSince = time.Time{}
		fs.dirty = make(map[uint64]bool)
		return nil
	}
	fs.CommitFailures++
	now := fs.clock.Now()
	if fs.stallSince.IsZero() {
		fs.stallSince = now
	}
	// Back the commit cadence off to the interval again.
	fs.lastCommit = now
	if now.Sub(fs.stallSince) >= fs.cfg.StallLimit {
		fs.abort(err)
		return fs.abortErr
	}
	return fmt.Errorf("jfs: journal commit failed: %w", err)
}

func (fs *FS) abort(cause error) {
	fs.aborted = true
	fs.crashedAt = fs.clock.Now()
	fs.abortErr = fmt.Errorf("%w (errno %d): %v", ErrAborted, blockdev.EIOErrno, cause)
	fs.sb.State = StateAborted
	// Best-effort superblock update; the device is likely still dead.
	_ = writeBlockQuiet(fs.dev, 0, fs.sb.encode())
}

// writeTransaction journals the dirty set, then checkpoints it in place.
func (fs *FS) writeTransaction() error {
	blocks := make([]uint64, 0, len(fs.dirty))
	for bn := range fs.dirty {
		blocks = append(blocks, bn)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	if len(blocks) > maxBlocksPerDescriptor {
		// Split into several transactions.
		half := len(blocks) / 2
		if err := fs.writeTxn(blocks[:half]); err != nil {
			return err
		}
		return fs.writeTxn(blocks[half:])
	}
	return fs.writeTxn(blocks)
}

func (fs *FS) writeTxn(blocks []uint64) error {
	if len(blocks) == 0 {
		return nil
	}
	images := make([][]byte, len(blocks))
	for i, bn := range blocks {
		images[i] = fs.blockImage(bn)
	}
	need := uint64(len(blocks)) + 2
	head := fs.js.Head
	if head+need > fs.sb.JournalBlocks {
		// Wrap: the journal is checkpointed after every commit, so
		// wrapping to the region start is safe whenever Start == Head.
		if fs.js.Start != fs.js.Head {
			if err := fs.checkpoint(blocks, images); err != nil {
				return err
			}
		}
		head = 1
		fs.js.Start = 1
		fs.js.Head = 1
	}
	base := fs.sb.JournalStart + head
	if err := writeBlock(fs.dev, base, encodeDescriptor(fs.js.Sequence, blocks)); err != nil {
		return err
	}
	for i, img := range images {
		if err := writeBlock(fs.dev, base+1+uint64(i), img); err != nil {
			return err
		}
	}
	sum := txChecksum(blocks, images)
	if err := writeBlock(fs.dev, base+1+uint64(len(blocks)), encodeCommit(fs.js.Sequence, sum)); err != nil {
		return err
	}
	// Advance the journal head durably: the transaction is now committed.
	newJS := journalSuper{Start: fs.js.Start, Head: head + need, Sequence: fs.js.Sequence + 1}
	if err := writeBlock(fs.dev, fs.sb.JournalStart, newJS.encode()); err != nil {
		return err
	}
	if err := fs.dev.Flush(); err != nil {
		return err
	}
	fs.js = newJS
	// Checkpoint in place and retire the transaction.
	if err := fs.checkpoint(blocks, images); err != nil {
		return err
	}
	return nil
}

func (fs *FS) checkpoint(blocks []uint64, images [][]byte) error {
	for i, bn := range blocks {
		if err := writeBlock(fs.dev, bn, images[i]); err != nil {
			return err
		}
	}
	fs.js.Start = fs.js.Head
	if err := writeBlock(fs.dev, fs.sb.JournalStart, fs.js.encode()); err != nil {
		return err
	}
	return nil
}

// --- low-level helpers ---------------------------------------------------

func writeBlock(dev blockdev.Device, bn uint64, data []byte) error {
	if len(data) != BlockSize {
		return fmt.Errorf("jfs: writeBlock needs a full block, got %d bytes", len(data))
	}
	_, err := dev.WriteAt(data, int64(bn)*BlockSize)
	return err
}

func writeBlockQuiet(dev blockdev.Device, bn uint64, data []byte) error {
	_, err := dev.WriteAt(data, int64(bn)*BlockSize)
	return err
}
