package jfs

import (
	"fmt"

	"deepnote/internal/metrics"
)

// FsckReport is the outcome of a consistency check.
type FsckReport struct {
	// Clean is true when no problems were found.
	Clean bool
	// Problems lists human-readable findings.
	Problems []string
	// Files, UsedBlocks, FreeBlocks summarize the filesystem.
	Files      int
	UsedBlocks uint64
	FreeBlocks uint64
}

func (r *FsckReport) problemf(format string, args ...any) {
	r.Clean = false
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// PublishMetrics pushes the check's findings into a registry under the
// "jfs." prefix (no-op on a nil registry).
func (r FsckReport) PublishMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.Add("jfs.fsck_runs", 1)
	reg.Add("jfs.fsck_problems", int64(len(r.Problems)))
	reg.Add("jfs.fsck_files", int64(r.Files))
	if !r.Clean {
		reg.Add("jfs.fsck_unclean", 1)
	}
}

// Fsck verifies the mounted filesystem's invariants against its in-memory
// state: every block referenced by a live inode is marked used exactly
// once, directory entries point at live inodes, no two files share a
// block, and the superblock layout is self-consistent. It is read-only.
func (fs *FS) Fsck() FsckReport {
	rep := FsckReport{Clean: true}
	if !fs.mounted {
		rep.problemf("filesystem not mounted")
		return rep
	}
	sb := fs.sb

	// Layout sanity.
	if sb.DataStart <= sb.InodeStart || sb.DataStart >= sb.TotalBlocks {
		rep.problemf("superblock layout corrupt: data start %d of %d blocks", sb.DataStart, sb.TotalBlocks)
	}

	// Directory entries must point at live inodes, and names must be
	// unique.
	seenNames := make(map[string]bool)
	liveInodes := make(map[int]string)
	for _, de := range fs.dirents {
		if !de.Used {
			continue
		}
		rep.Files++
		if seenNames[de.Name] {
			rep.problemf("duplicate directory entry %q", de.Name)
		}
		seenNames[de.Name] = true
		if int(de.Ino) >= len(fs.inodes) {
			rep.problemf("entry %q points at inode %d beyond table", de.Name, de.Ino)
			continue
		}
		if !fs.inodes[de.Ino].Used {
			rep.problemf("entry %q points at free inode %d", de.Name, de.Ino)
			continue
		}
		if prev, dup := liveInodes[int(de.Ino)]; dup {
			rep.problemf("inode %d referenced by both %q and %q", de.Ino, prev, de.Name)
		}
		liveInodes[int(de.Ino)] = de.Name
	}

	// Inodes used but not referenced are orphans.
	for i := range fs.inodes {
		if fs.inodes[i].Used {
			if _, ok := liveInodes[i]; !ok {
				rep.problemf("orphan inode %d (used but unreferenced)", i)
			}
		}
	}

	// Walk every live inode's block map: blocks must be in the data
	// region, marked used, and unshared.
	owner := make(map[uint64]int)
	claim := func(bn uint64, ino int) {
		if bn == 0 {
			return
		}
		if bn < sb.DataStart || bn >= sb.TotalBlocks {
			rep.problemf("inode %d references out-of-range block %d", ino, bn)
			return
		}
		if fs.bitmap[bn/8]&(1<<(bn%8)) == 0 {
			rep.problemf("inode %d references free block %d", ino, bn)
		}
		if prev, dup := owner[bn]; dup {
			rep.problemf("block %d shared by inodes %d and %d", bn, prev, ino)
		}
		owner[bn] = ino
	}
	for ino := range liveInodes {
		in := &fs.inodes[ino]
		for _, bn := range in.Direct {
			claim(bn, ino)
		}
		if in.Indirect != 0 {
			claim(in.Indirect, ino)
			ptrs, ok := fs.indirect[in.Indirect]
			if !ok {
				rep.problemf("inode %d indirect block %d not loaded", ino, in.Indirect)
			} else {
				for _, bn := range ptrs {
					claim(bn, ino)
				}
			}
		}
	}

	// Bitmap accounting: every used data block must have an owner.
	for bn := sb.DataStart; bn < sb.TotalBlocks; bn++ {
		used := fs.bitmap[bn/8]&(1<<(bn%8)) != 0
		if used {
			rep.UsedBlocks++
			if _, ok := owner[bn]; !ok {
				rep.problemf("leaked block %d (marked used, no owner)", bn)
			}
		} else {
			rep.FreeBlocks++
		}
	}
	return rep
}
