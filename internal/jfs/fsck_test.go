package jfs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestFsckCleanOnFreshFS(t *testing.T) {
	fs, _, _ := newFS(t)
	rep := fs.Fsck()
	if !rep.Clean {
		t.Fatalf("fresh fs dirty: %v", rep.Problems)
	}
	if rep.Files != 0 || rep.UsedBlocks != 0 {
		t.Fatalf("fresh fs accounting: %+v", rep)
	}
}

func TestFsckCleanAfterWorkload(t *testing.T) {
	fs, _, clock := newFS(t)
	for i := 0; i < 20; i++ {
		f, err := fs.Create(string(rune('a' + i)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(bytes.Repeat([]byte{byte(i)}, (i+1)*1000), 0); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Second)
		fs.Tick()
	}
	fs.Remove("a")
	fs.Remove("e")
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	rep := fs.Fsck()
	if !rep.Clean {
		t.Fatalf("post-workload fsck dirty: %v", rep.Problems)
	}
	if rep.Files != 18 {
		t.Fatalf("files = %d, want 18", rep.Files)
	}
	if rep.UsedBlocks == 0 || rep.FreeBlocks == 0 {
		t.Fatalf("accounting: %+v", rep)
	}
}

func TestFsckCleanAfterCrashRecovery(t *testing.T) {
	fs, disk, clock := newFS(t)
	f, _ := fs.Create("survivor")
	f.WriteAt(bytes.Repeat([]byte{1}, 3*BlockSize), 0)
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash + replay.
	fs2, err := Mount(disk, clock, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep := fs2.Fsck()
	if !rep.Clean {
		t.Fatalf("post-recovery fsck dirty: %v", rep.Problems)
	}
}

func TestFsckDetectsLeakedBlock(t *testing.T) {
	fs, _, _ := newFS(t)
	// Corrupt deliberately: mark a data block used with no owner.
	bn := fs.sb.DataStart + 10
	fs.bitmap[bn/8] |= 1 << (bn % 8)
	rep := fs.Fsck()
	if rep.Clean {
		t.Fatal("leak not detected")
	}
	if !containsProblem(rep, "leaked block") {
		t.Fatalf("problems: %v", rep.Problems)
	}
}

func TestFsckDetectsSharedBlock(t *testing.T) {
	fs, _, _ := newFS(t)
	a, _ := fs.Create("a")
	b, _ := fs.Create("b")
	a.WriteAt([]byte("x"), 0)
	b.WriteAt([]byte("y"), 0)
	// Cross-link: b's first block now points at a's.
	fs.inodes[b.ino].Direct[0] = fs.inodes[a.ino].Direct[0]
	rep := fs.Fsck()
	if rep.Clean || !containsProblem(rep, "shared by inodes") {
		t.Fatalf("cross-link not detected: %v", rep.Problems)
	}
}

func TestFsckDetectsDanglingDirent(t *testing.T) {
	fs, _, _ := newFS(t)
	f, _ := fs.Create("ghost")
	fs.inodes[f.ino].Used = false // orphan the entry
	rep := fs.Fsck()
	if rep.Clean || !containsProblem(rep, "free inode") {
		t.Fatalf("dangling entry not detected: %v", rep.Problems)
	}
}

func TestFsckDetectsOrphanInode(t *testing.T) {
	fs, _, _ := newFS(t)
	fs.inodes[5].Used = true // used, never referenced
	rep := fs.Fsck()
	if rep.Clean || !containsProblem(rep, "orphan inode") {
		t.Fatalf("orphan not detected: %v", rep.Problems)
	}
}

func TestFsckDetectsFreeBlockReference(t *testing.T) {
	fs, _, _ := newFS(t)
	f, _ := fs.Create("f")
	f.WriteAt([]byte("data"), 0)
	bn := fs.inodes[f.ino].Direct[0]
	fs.bitmap[bn/8] &^= 1 << (bn % 8) // free it under the inode
	rep := fs.Fsck()
	if rep.Clean || !containsProblem(rep, "references free block") {
		t.Fatalf("free-block reference not detected: %v", rep.Problems)
	}
}

func TestFsckUnmounted(t *testing.T) {
	fs, _, _ := newFS(t)
	fs.Unmount()
	rep := fs.Fsck()
	if rep.Clean {
		t.Fatal("unmounted fsck should report a problem")
	}
}

func containsProblem(rep FsckReport, sub string) bool {
	for _, p := range rep.Problems {
		if strings.Contains(p, sub) {
			return true
		}
	}
	return false
}
