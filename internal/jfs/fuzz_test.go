package jfs

import (
	"bytes"
	"io"
	"testing"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/hdd"
	"deepnote/internal/simclock"
)

// FuzzFileOps interprets the fuzz input as an operation stream (create,
// write, truncate, remove, sync, tick, crash-remount) mirrored against an
// in-memory model. Any divergence between the filesystem and the model —
// or an unclean fsck after a synced workload — is a bug. This is the
// oracle test's property under adversarial schedules instead of a fixed
// RNG.
func FuzzFileOps(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 1, 0, 3, 9, 4, 1, 0, 0, 6, 0, 0, 0})
	f.Add([]byte{1, 1, 0, 200, 2, 1, 7, 0, 3, 1, 0, 0, 5, 2, 1, 1})
	f.Add(bytes.Repeat([]byte{0, 2, 40, 17}, 24))
	f.Fuzz(func(t *testing.T, data []byte) {
		clock := simclock.NewVirtual()
		drive, err := hdd.NewDrive(hdd.Barracuda500(), clock, 7)
		if err != nil {
			t.Fatal(err)
		}
		disk := blockdev.NewDisk(drive)
		if err := Mkfs(disk, MkfsOptions{Blocks: 1 << 14}); err != nil {
			t.Fatal(err)
		}
		fs, err := Mount(disk, clock, Config{})
		if err != nil {
			t.Fatal(err)
		}

		names := []string{"a", "b", "c", "d"}
		model := make(map[string][]byte)

		for len(data) >= 4 {
			op, ni, a, b := data[0], data[1], data[2], data[3]
			data = data[4:]
			name := names[int(ni)%len(names)]
			switch op % 7 {
			case 0: // write (creating on demand), offset and length bounded
				if _, ok := model[name]; !ok {
					if _, err := fs.Create(name); err != nil {
						t.Fatalf("create %q: %v", name, err)
					}
					model[name] = nil
				}
				fh, err := fs.Open(name)
				if err != nil {
					t.Fatalf("open %q: %v", name, err)
				}
				off := int64(a) * 37 // up to ~2.3 blocks in
				buf := make([]byte, 1+int(b))
				for j := range buf {
					buf[j] = b + byte(j)
				}
				if _, err := fh.WriteAt(buf, off); err != nil {
					t.Fatalf("write %q: %v", name, err)
				}
				cur := model[name]
				if need := off + int64(len(buf)); int64(len(cur)) < need {
					grown := make([]byte, need)
					copy(grown, cur)
					cur = grown
				}
				copy(cur[off:], buf)
				model[name] = cur
			case 1: // append
				if _, ok := model[name]; !ok {
					continue
				}
				fh, err := fs.Open(name)
				if err != nil {
					t.Fatalf("open %q: %v", name, err)
				}
				buf := bytes.Repeat([]byte{a}, 1+int(b)%97)
				if _, err := fh.Append(buf); err != nil {
					t.Fatalf("append %q: %v", name, err)
				}
				model[name] = append(model[name], buf...)
			case 2: // truncate within the current size
				cur, ok := model[name]
				if !ok {
					continue
				}
				newSize := int64(0)
				if len(cur) > 0 {
					newSize = int64(int(a) % (len(cur) + 1))
				}
				fh, err := fs.Open(name)
				if err != nil {
					t.Fatalf("open %q: %v", name, err)
				}
				if err := fh.Truncate(newSize); err != nil {
					t.Fatalf("truncate %q: %v", name, err)
				}
				model[name] = append([]byte(nil), cur[:newSize]...)
			case 3: // remove
				if _, ok := model[name]; !ok {
					continue
				}
				if err := fs.Remove(name); err != nil {
					t.Fatalf("remove %q: %v", name, err)
				}
				delete(model, name)
			case 4: // sync
				if err := fs.Sync(); err != nil {
					t.Fatalf("sync: %v", err)
				}
			case 5: // time passes, background commit
				clock.Advance(time.Duration(1+int(a)%5) * time.Second)
				fs.Tick()
			case 6: // sync, then crash and recover on a fresh mount
				if err := fs.Sync(); err != nil {
					t.Fatalf("pre-crash sync: %v", err)
				}
				fs, err = Mount(disk, clock, Config{})
				if err != nil {
					t.Fatalf("recovery mount: %v", err)
				}
			}
		}

		// The filesystem must agree with the model exactly.
		if live := fs.List(); len(live) != len(model) {
			t.Fatalf("fs has %d files, model %d (%v)", len(live), len(model), live)
		}
		for name, want := range model {
			fh, err := fs.Open(name)
			if err != nil {
				t.Fatalf("final open %q: %v", name, err)
			}
			if fh.Size() != int64(len(want)) {
				t.Fatalf("%q size %d, model %d", name, fh.Size(), len(want))
			}
			got := make([]byte, len(want))
			if len(want) > 0 {
				if _, err := fh.ReadAt(got, 0); err != nil && err != io.EOF {
					t.Fatalf("final read %q: %v", name, err)
				}
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%q content mismatch", name)
			}
		}
		if err := fs.Sync(); err != nil {
			t.Fatalf("final sync: %v", err)
		}
		if rep := fs.Fsck(); !rep.Clean {
			t.Fatalf("fuzz workload left dirty fs: %v", rep.Problems)
		}
	})
}
