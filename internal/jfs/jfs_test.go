package jfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/hdd"
	"deepnote/internal/simclock"
)

func newFS(t *testing.T) (*FS, *blockdev.Disk, *simclock.Virtual) {
	t.Helper()
	clock := simclock.NewVirtual()
	drive, err := hdd.NewDrive(hdd.Barracuda500(), clock, 9)
	if err != nil {
		t.Fatal(err)
	}
	disk := blockdev.NewDisk(drive)
	if err := Mkfs(disk, MkfsOptions{Blocks: 65536}); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(disk, clock, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return fs, disk, clock
}

func TestMkfsAndMount(t *testing.T) {
	fs, _, _ := newFS(t)
	sb := fs.Superblock()
	if sb.Magic != Magic {
		t.Fatal("bad magic after mount")
	}
	if sb.State != StateDirty {
		t.Fatalf("mounted state = %d, want dirty", sb.State)
	}
	if sb.MountCount != 1 {
		t.Fatalf("mount count = %d, want 1", sb.MountCount)
	}
	if len(fs.List()) != 0 {
		t.Fatal("fresh filesystem should be empty")
	}
}

func TestMkfsTooSmall(t *testing.T) {
	clock := simclock.NewVirtual()
	drive, _ := hdd.NewDrive(hdd.Barracuda500(), clock, 9)
	disk := blockdev.NewDisk(drive)
	if err := Mkfs(disk, MkfsOptions{Blocks: 100, JournalBlocks: 90}); err == nil {
		t.Fatal("expected error for undersized filesystem")
	}
}

func TestMountRejectsUnformattedDevice(t *testing.T) {
	clock := simclock.NewVirtual()
	drive, _ := hdd.NewDrive(hdd.Barracuda500(), clock, 9)
	disk := blockdev.NewDisk(drive)
	if _, err := Mount(disk, clock, Config{}); err == nil {
		t.Fatal("expected error mounting unformatted device")
	}
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	fs, _, _ := newFS(t)
	f, err := fs.Create("hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("underwater data centers hum at 650 Hz")
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %q", got)
	}
	if f.Size() != int64(len(data)) {
		t.Fatalf("size = %d, want %d", f.Size(), len(data))
	}
}

func TestCreateValidation(t *testing.T) {
	fs, _, _ := newFS(t)
	if _, err := fs.Create(""); !errors.Is(err, ErrNameTooLong) {
		t.Fatalf("empty name: %v", err)
	}
	if _, err := fs.Create("this-name-is-way-too-long-for-jfs"); !errors.Is(err, ErrNameTooLong) {
		t.Fatalf("long name: %v", err)
	}
	if _, err := fs.Create("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("a"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate: %v", err)
	}
}

func TestOpenMissing(t *testing.T) {
	fs, _, _ := newFS(t)
	if _, err := fs.Open("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

func TestRemoveFreesSpace(t *testing.T) {
	fs, _, _ := newFS(t)
	before := fs.FreeBlocks()
	f, _ := fs.Create("big")
	if _, err := f.WriteAt(bytes.Repeat([]byte{1}, 10*BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	during := fs.FreeBlocks()
	if during >= before {
		t.Fatal("write did not consume blocks")
	}
	if err := fs.Remove("big"); err != nil {
		t.Fatal(err)
	}
	after := fs.FreeBlocks()
	if after != before {
		t.Fatalf("remove did not free all blocks: %d -> %d -> %d", before, during, after)
	}
	if err := fs.Remove("big"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second remove: %v", err)
	}
}

func TestLargeFileUsesIndirectBlocks(t *testing.T) {
	fs, _, _ := newFS(t)
	f, _ := fs.Create("large")
	data := bytes.Repeat([]byte{0xCD}, (NDirect+5)*BlockSize)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("indirect round trip mismatch")
	}
	if fs.inodes[f.ino].Indirect == 0 {
		t.Fatal("expected indirect block allocation")
	}
}

func TestFileTooLarge(t *testing.T) {
	fs, _, _ := newFS(t)
	f, _ := fs.Create("huge")
	if _, err := f.WriteAt([]byte{1}, MaxFileSize); !errors.Is(err, ErrFileTooLarge) {
		t.Fatalf("got %v", err)
	}
}

func TestSparseFileReadsZeros(t *testing.T) {
	fs, _, _ := newFS(t)
	f, _ := fs.Create("sparse")
	if _, err := f.WriteAt([]byte("end"), 5*BlockSize); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	if _, err := f.ReadAt(got, BlockSize); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("hole should read zeros")
		}
	}
}

func TestReadPastEOF(t *testing.T) {
	fs, _, _ := newFS(t)
	f, _ := fs.Create("short")
	f.WriteAt([]byte("abc"), 0)
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if n != 3 || err != io.EOF {
		t.Fatalf("n=%d err=%v, want 3, EOF", n, err)
	}
	if _, err := f.ReadAt(buf, 100); err != io.EOF {
		t.Fatalf("fully past EOF: %v", err)
	}
}

func TestAppend(t *testing.T) {
	fs, _, _ := newFS(t)
	f, _ := fs.Create("log")
	f.Append([]byte("one "))
	f.Append([]byte("two"))
	got := make([]byte, 7)
	f.ReadAt(got, 0)
	if string(got) != "one two" {
		t.Fatalf("append result %q", got)
	}
}

func TestTruncate(t *testing.T) {
	fs, _, _ := newFS(t)
	f, _ := fs.Create("t")
	f.WriteAt(bytes.Repeat([]byte{7}, 4*BlockSize), 0)
	free := fs.FreeBlocks()
	if err := f.Truncate(BlockSize); err != nil {
		t.Fatal(err)
	}
	if f.Size() != BlockSize {
		t.Fatalf("size after truncate = %d", f.Size())
	}
	if fs.FreeBlocks() != free+3 {
		t.Fatalf("truncate freed %d blocks, want 3", fs.FreeBlocks()-free)
	}
	if err := f.Truncate(-1); err == nil {
		t.Fatal("negative truncate accepted")
	}
}

func TestPersistenceAcrossRemount(t *testing.T) {
	fs, disk, clock := newFS(t)
	f, _ := fs.Create("persist")
	data := []byte("survives remount")
	f.WriteAt(data, 0)
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(disk, clock, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := fs2.Open("persist")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("remount round trip: %q", got)
	}
	if fs2.Superblock().MountCount != 2 {
		t.Fatalf("mount count = %d, want 2", fs2.Superblock().MountCount)
	}
}

func TestJournalReplayAfterCrash(t *testing.T) {
	// Sync (journal commit) then remount WITHOUT unmounting: committed
	// metadata must survive via journal + checkpoint.
	fs, disk, clock := newFS(t)
	f, _ := fs.Create("committed")
	f.WriteAt([]byte("durable"), 0)
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Simulated crash: no unmount, just a fresh mount.
	fs2, err := Mount(disk, clock, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := fs2.Open("committed")
	if err != nil {
		t.Fatalf("committed file lost after crash: %v", err)
	}
	got := make([]byte, 7)
	f2.ReadAt(got, 0)
	if string(got) != "durable" {
		t.Fatalf("content %q", got)
	}
}

func TestUncommittedMetadataLostAfterCrash(t *testing.T) {
	fs, disk, clock := newFS(t)
	f, _ := fs.Create("volatile")
	f.WriteAt([]byte("gone"), 0)
	// No sync, no unmount, commit interval not reached: metadata only in
	// memory.
	fs2, err := Mount(disk, clock, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs2.Open("volatile"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("uncommitted file visible after crash: %v", err)
	}
}

func TestBackgroundCommitRunsOnInterval(t *testing.T) {
	fs, _, clock := newFS(t)
	f, _ := fs.Create("bg")
	f.WriteAt([]byte("x"), 0)
	if fs.CommitAttempts != 0 {
		t.Fatalf("commit ran too early: %d", fs.CommitAttempts)
	}
	clock.Advance(6 * time.Second)
	fs.Tick()
	if fs.CommitAttempts != 1 {
		t.Fatalf("commit attempts = %d, want 1", fs.CommitAttempts)
	}
}

func TestJournalAbortUnderProlongedAttack(t *testing.T) {
	// The Table 3 mechanism: the attack blocks all I/O; the journal
	// cannot commit; after the stall limit the journal aborts with the
	// JBD -5 signature. Uses shortened limits to keep the test fast.
	fs, disk, clock := newFS(t)
	fs.cfg = Config{CommitInterval: time.Second, StallLimit: 10 * time.Second}.withDefaults()
	f, _ := fs.Create("victim")
	if _, err := f.WriteAt([]byte("dirty"), 0); err != nil {
		t.Fatal(err)
	}
	attackStart := clock.Now()
	disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 2.3})
	for i := 0; i < 1000; i++ {
		clock.Advance(time.Second)
		fs.Tick()
		if aborted, _ := fs.Aborted(); aborted {
			break
		}
	}
	aborted, abortErr := fs.Aborted()
	if !aborted {
		t.Fatal("journal did not abort under attack")
	}
	if !errors.Is(abortErr, ErrAborted) {
		t.Fatalf("abort error = %v", abortErr)
	}
	if want := "error -5"; !errorContains(abortErr, want) {
		t.Fatalf("abort error %q missing %q", abortErr, want)
	}
	elapsed := fs.CrashedAt().Sub(attackStart)
	if elapsed < 10*time.Second || elapsed > 20*time.Second {
		t.Fatalf("time to crash = %v, want ≈ stall limit", elapsed)
	}
	// Writes now fail with the abort error.
	if _, err := f.WriteAt([]byte("more"), 0); !errors.Is(err, ErrAborted) {
		t.Fatalf("write after abort: %v", err)
	}
	if _, err := fs.Create("another"); !errors.Is(err, ErrAborted) {
		t.Fatalf("create after abort: %v", err)
	}
}

func errorContains(err error, sub string) bool {
	return err != nil && bytes.Contains([]byte(err.Error()), []byte(sub))
}

func TestCommitRecoversAfterShortAttack(t *testing.T) {
	fs, disk, clock := newFS(t)
	fs.cfg = Config{CommitInterval: time.Second, StallLimit: 60 * time.Second}.withDefaults()
	f, _ := fs.Create("resilient")
	f.WriteAt([]byte("data"), 0)
	disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 2.3})
	for i := 0; i < 5; i++ {
		clock.Advance(time.Second)
		fs.Tick()
	}
	if fs.CommitFailures == 0 {
		t.Fatal("expected commit failures during attack")
	}
	disk.Drive().SetVibration(hdd.Quiet())
	clock.Advance(2 * time.Second)
	fs.Tick()
	if aborted, _ := fs.Aborted(); aborted {
		t.Fatal("journal aborted despite attack ending inside the stall limit")
	}
	if err := fs.Sync(); err != nil {
		t.Fatalf("sync after recovery: %v", err)
	}
}

func TestUnmountedOperationsFail(t *testing.T) {
	fs, _, _ := newFS(t)
	f, _ := fs.Create("x")
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("y"); !errors.Is(err, ErrNotMounted) {
		t.Fatalf("create: %v", err)
	}
	if _, err := f.WriteAt([]byte("z"), 0); !errors.Is(err, ErrNotMounted) {
		t.Fatalf("write: %v", err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrNotMounted) {
		t.Fatalf("read: %v", err)
	}
	if err := fs.Unmount(); !errors.Is(err, ErrNotMounted) {
		t.Fatalf("double unmount: %v", err)
	}
}

func TestWriteReadPropertyRandomOffsets(t *testing.T) {
	fs, _, _ := newFS(t)
	f, _ := fs.Create("prop")
	prop := func(data []byte, offRaw uint16) bool {
		if len(data) == 0 {
			return true
		}
		off := int64(offRaw) // keeps the file within direct+indirect reach
		if _, err := f.WriteAt(data, off); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if _, err := f.ReadAt(got, off); err != nil && err != io.EOF {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSuperblockRoundTrip(t *testing.T) {
	sb := Superblock{
		Magic: Magic, TotalBlocks: 1000, JournalStart: 1, JournalBlocks: 64,
		BitmapStart: 65, BitmapBlocks: 1, InodeStart: 66, InodeBlocks: 8,
		DataStart: 90, InodeCount: 256, State: StateDirty, MountCount: 3,
	}
	got, err := decodeSuperblock(sb.encode())
	if err != nil {
		t.Fatal(err)
	}
	if *got != sb {
		t.Fatalf("round trip: %+v != %+v", *got, sb)
	}
	if _, err := decodeSuperblock(make([]byte, BlockSize)); err == nil {
		t.Fatal("zero block accepted as superblock")
	}
}

func TestInodeRoundTrip(t *testing.T) {
	in := Inode{Used: true, Size: 123456, Indirect: 999}
	for i := range in.Direct {
		in.Direct[i] = uint64(i * 7)
	}
	buf := make([]byte, InodeSize)
	in.encode(buf)
	if got := decodeInode(buf); got != in {
		t.Fatalf("round trip: %+v != %+v", got, in)
	}
}

func TestDirentRoundTrip(t *testing.T) {
	d := Dirent{Used: true, Ino: 42, Name: "rocksdb.wal"}
	buf := make([]byte, DirentSize)
	d.encode(buf)
	if got := decodeDirent(buf); got != d {
		t.Fatalf("round trip: %+v != %+v", got, d)
	}
}

func TestDirentNameTruncatedAtLimit(t *testing.T) {
	d := Dirent{Used: true, Ino: 1, Name: "0123456789012345678901234567"} // 28 > 24
	buf := make([]byte, DirentSize)
	d.encode(buf)
	got := decodeDirent(buf)
	if len(got.Name) != MaxNameLen {
		t.Fatalf("name length = %d, want %d", len(got.Name), MaxNameLen)
	}
}

func TestJournalRecordRoundTrips(t *testing.T) {
	blocks := []uint64{10, 20, 30}
	desc := encodeDescriptor(7, blocks)
	seq, got, ok := decodeDescriptor(desc)
	if !ok || seq != 7 || len(got) != 3 || got[2] != 30 {
		t.Fatalf("descriptor round trip: %v %v %v", seq, got, ok)
	}
	if _, _, ok := decodeDescriptor(make([]byte, BlockSize)); ok {
		t.Fatal("zero block accepted as descriptor")
	}
	images := [][]byte{make([]byte, BlockSize), make([]byte, BlockSize), make([]byte, BlockSize)}
	sum := txChecksum(blocks, images)
	cseq, csum, ok := decodeCommit(encodeCommit(7, sum))
	if !ok || cseq != 7 || csum != sum {
		t.Fatal("commit round trip failed")
	}
	images[1][5] = 0xFF
	if txChecksum(blocks, images) == sum {
		t.Fatal("checksum ignores image content")
	}
}

func TestListSorted(t *testing.T) {
	fs, _, _ := newFS(t)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := fs.Create(n); err != nil {
			t.Fatal(err)
		}
	}
	got := fs.List()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v, want %v", got, want)
		}
	}
}

func TestManyFilesAndCommits(t *testing.T) {
	fs, _, clock := newFS(t)
	for i := 0; i < 50; i++ {
		name := string(rune('a'+i%26)) + string(rune('0'+i/26))
		f, err := fs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(bytes.Repeat([]byte{byte(i)}, 2*BlockSize), 0); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Second)
		fs.Tick()
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := len(fs.List()); got != 50 {
		t.Fatalf("files = %d, want 50", got)
	}
	if fs.CommitAttempts == 0 {
		t.Fatal("expected background commits")
	}
}
