package jfs

import (
	"encoding/binary"
	"fmt"
)

// Journal block magics.
const (
	jMagicSuper      = 0x4A4E4C5F53555052 // journal superblock
	jMagicDescriptor = 0x4A4E4C5F44455343 // transaction descriptor
	jMagicCommit     = 0x4A4E4C5F434F4D54 // commit record
)

// journalSuper is the journal's own superblock, stored in the first block
// of the journal region.
type journalSuper struct {
	// Start is the region-relative offset of the first live transaction
	// (== Head when the journal is empty).
	Start uint64
	// Head is the region-relative offset where the next transaction
	// will be written.
	Head uint64
	// Sequence is the sequence number the next transaction will carry.
	Sequence uint64
}

func (js *journalSuper) encode() []byte {
	buf := make([]byte, BlockSize)
	le := binary.LittleEndian
	le.PutUint64(buf[0:], jMagicSuper)
	le.PutUint64(buf[8:], js.Start)
	le.PutUint64(buf[16:], js.Head)
	le.PutUint64(buf[24:], js.Sequence)
	return buf
}

func decodeJournalSuper(buf []byte) (journalSuper, error) {
	le := binary.LittleEndian
	if le.Uint64(buf[0:]) != jMagicSuper {
		return journalSuper{}, fmt.Errorf("jfs: bad journal superblock magic")
	}
	return journalSuper{
		Start:    le.Uint64(buf[8:]),
		Head:     le.Uint64(buf[16:]),
		Sequence: le.Uint64(buf[24:]),
	}, nil
}

// txRecord is one journaled metadata transaction in memory.
type txRecord struct {
	seq    uint64
	blocks []uint64 // absolute block numbers
	images [][]byte // BlockSize images, parallel to blocks
}

// maxBlocksPerDescriptor bounds a transaction to what one descriptor block
// can index.
const maxBlocksPerDescriptor = (BlockSize - 24) / 8

func encodeDescriptor(seq uint64, blocks []uint64) []byte {
	buf := make([]byte, BlockSize)
	le := binary.LittleEndian
	le.PutUint64(buf[0:], jMagicDescriptor)
	le.PutUint64(buf[8:], seq)
	le.PutUint64(buf[16:], uint64(len(blocks)))
	for i, b := range blocks {
		le.PutUint64(buf[24+8*i:], b)
	}
	return buf
}

func decodeDescriptor(buf []byte) (seq uint64, blocks []uint64, ok bool) {
	le := binary.LittleEndian
	if le.Uint64(buf[0:]) != jMagicDescriptor {
		return 0, nil, false
	}
	seq = le.Uint64(buf[8:])
	n := le.Uint64(buf[16:])
	if n == 0 || n > maxBlocksPerDescriptor {
		return 0, nil, false
	}
	blocks = make([]uint64, n)
	for i := range blocks {
		blocks[i] = le.Uint64(buf[24+8*i:])
	}
	return seq, blocks, true
}

func encodeCommit(seq uint64, checksum uint64) []byte {
	buf := make([]byte, BlockSize)
	le := binary.LittleEndian
	le.PutUint64(buf[0:], jMagicCommit)
	le.PutUint64(buf[8:], seq)
	le.PutUint64(buf[16:], checksum)
	return buf
}

func decodeCommit(buf []byte) (seq, checksum uint64, ok bool) {
	le := binary.LittleEndian
	if le.Uint64(buf[0:]) != jMagicCommit {
		return 0, 0, false
	}
	return le.Uint64(buf[8:]), le.Uint64(buf[16:]), true
}

// txChecksum is a simple FNV-1a over the transaction's block numbers and
// images; enough to reject torn commits in replay.
func txChecksum(blocks []uint64, images [][]byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	var tmp [8]byte
	for i, bn := range blocks {
		binary.LittleEndian.PutUint64(tmp[:], bn)
		for _, b := range tmp {
			mix(b)
		}
		for _, b := range images[i] {
			mix(b)
		}
	}
	return h
}
