// Package jfs is a journaling filesystem in the spirit of Ext4's
// metadata-journaling (JBD) design, built to run on the simulated block
// device. It exists so the paper's Table 3 experiment — a filesystem
// crashing with a JBD error code −5 when an acoustic attack blocks the
// journal's I/O — can be reproduced end to end against a real
// implementation rather than a stub.
//
// The design is deliberately classical: a superblock, a block-allocation
// bitmap, a fixed inode table with direct and single-indirect block
// pointers, a single root directory, and a circular journal that records
// metadata transactions (ordered mode: file data is written in place before
// the transaction that references it commits). A background commit runs on
// the virtual clock; when the device refuses journal writes for longer than
// the stall limit, the journal aborts exactly like JBD does, the filesystem
// goes read-only, and the error carries errno −5.
package jfs

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// BlockSize is the filesystem block size in bytes.
const BlockSize = 4096

// Magic identifies a jfs superblock.
const Magic = 0x4A46535F4E4F5445 // "JFS_NOTE"

// Layout constants.
const (
	// MaxNameLen bounds directory entry names.
	MaxNameLen = 24
	// DirentSize is the on-disk directory entry size.
	DirentSize = 32
	// InodeSize is the on-disk inode size.
	InodeSize = 128
	// InodesPerBlock is derived.
	InodesPerBlock = BlockSize / InodeSize
	// NDirect is the number of direct block pointers per inode.
	NDirect = 12
	// PointersPerBlock is the fan-out of the single indirect block.
	PointersPerBlock = BlockSize / 8
)

// Filesystem states recorded in the superblock.
const (
	// StateClean means the filesystem was unmounted cleanly.
	StateClean uint32 = 1
	// StateDirty means the filesystem is mounted (or crashed while
	// mounted) and the journal may hold committed transactions.
	StateDirty uint32 = 2
	// StateAborted means the journal aborted; the filesystem needs
	// recovery before it can be written again.
	StateAborted uint32 = 3
)

// Superblock is block 0 of the device.
type Superblock struct {
	Magic         uint64
	TotalBlocks   uint64
	JournalStart  uint64
	JournalBlocks uint64
	BitmapStart   uint64
	BitmapBlocks  uint64
	InodeStart    uint64
	InodeBlocks   uint64
	DataStart     uint64
	InodeCount    uint32
	State         uint32
	MountCount    uint32
}

const superblockWireSize = 8*9 + 4*3

func (sb *Superblock) encode() []byte {
	buf := make([]byte, BlockSize)
	le := binary.LittleEndian
	le.PutUint64(buf[0:], sb.Magic)
	le.PutUint64(buf[8:], sb.TotalBlocks)
	le.PutUint64(buf[16:], sb.JournalStart)
	le.PutUint64(buf[24:], sb.JournalBlocks)
	le.PutUint64(buf[32:], sb.BitmapStart)
	le.PutUint64(buf[40:], sb.BitmapBlocks)
	le.PutUint64(buf[48:], sb.InodeStart)
	le.PutUint64(buf[56:], sb.InodeBlocks)
	le.PutUint64(buf[64:], sb.DataStart)
	le.PutUint32(buf[72:], sb.InodeCount)
	le.PutUint32(buf[76:], sb.State)
	le.PutUint32(buf[80:], sb.MountCount)
	return buf
}

func decodeSuperblock(buf []byte) (*Superblock, error) {
	if len(buf) < superblockWireSize {
		return nil, errors.New("jfs: short superblock")
	}
	le := binary.LittleEndian
	sb := &Superblock{
		Magic:         le.Uint64(buf[0:]),
		TotalBlocks:   le.Uint64(buf[8:]),
		JournalStart:  le.Uint64(buf[16:]),
		JournalBlocks: le.Uint64(buf[24:]),
		BitmapStart:   le.Uint64(buf[32:]),
		BitmapBlocks:  le.Uint64(buf[40:]),
		InodeStart:    le.Uint64(buf[48:]),
		InodeBlocks:   le.Uint64(buf[56:]),
		DataStart:     le.Uint64(buf[64:]),
		InodeCount:    le.Uint32(buf[72:]),
		State:         le.Uint32(buf[76:]),
		MountCount:    le.Uint32(buf[80:]),
	}
	if sb.Magic != Magic {
		return nil, fmt.Errorf("jfs: bad magic %#x", sb.Magic)
	}
	return sb, nil
}

// Inode is the on-disk file metadata.
type Inode struct {
	// Used marks the inode allocated.
	Used bool
	// Size is the file size in bytes.
	Size uint64
	// Direct are the first NDirect data block numbers (0 = hole).
	Direct [NDirect]uint64
	// Indirect is the block number of the single-indirect pointer
	// block (0 = none).
	Indirect uint64
}

func (in *Inode) encode(buf []byte) {
	le := binary.LittleEndian
	var used uint32
	if in.Used {
		used = 1
	}
	le.PutUint32(buf[0:], used)
	le.PutUint64(buf[8:], in.Size)
	for i, d := range in.Direct {
		le.PutUint64(buf[16+8*i:], d)
	}
	le.PutUint64(buf[16+8*NDirect:], in.Indirect)
}

func decodeInode(buf []byte) Inode {
	le := binary.LittleEndian
	in := Inode{
		Used: le.Uint32(buf[0:]) == 1,
		Size: le.Uint64(buf[8:]),
	}
	for i := range in.Direct {
		in.Direct[i] = le.Uint64(buf[16+8*i:])
	}
	in.Indirect = le.Uint64(buf[16+8*NDirect:])
	return in
}

// Dirent is a root-directory entry.
type Dirent struct {
	// Used marks the slot occupied.
	Used bool
	// Ino is the inode number.
	Ino uint32
	// Name is the file name (≤ MaxNameLen bytes).
	Name string
}

func (d *Dirent) encode(buf []byte) {
	le := binary.LittleEndian
	var used uint16
	if d.Used {
		used = 1
	}
	le.PutUint16(buf[0:], used)
	le.PutUint32(buf[2:], d.Ino)
	name := []byte(d.Name)
	if len(name) > MaxNameLen {
		name = name[:MaxNameLen]
	}
	for i := 0; i < MaxNameLen; i++ {
		if i < len(name) {
			buf[6+i] = name[i]
		} else {
			buf[6+i] = 0
		}
	}
}

func decodeDirent(buf []byte) Dirent {
	le := binary.LittleEndian
	d := Dirent{
		Used: le.Uint16(buf[0:]) == 1,
		Ino:  le.Uint32(buf[2:]),
	}
	name := buf[6 : 6+MaxNameLen]
	end := 0
	for end < len(name) && name[end] != 0 {
		end++
	}
	d.Name = string(name[:end])
	return d
}

// MkfsOptions configures filesystem creation.
type MkfsOptions struct {
	// Blocks is the filesystem size in blocks; 0 sizes it to the device.
	Blocks uint64
	// JournalBlocks sets the journal region size (default 1024 blocks).
	JournalBlocks uint64
	// Inodes sets the inode count (default 4096).
	Inodes uint32
}

func (o MkfsOptions) withDefaults(devBlocks uint64) (MkfsOptions, error) {
	if o.Blocks == 0 || o.Blocks > devBlocks {
		o.Blocks = devBlocks
	}
	if o.JournalBlocks == 0 {
		o.JournalBlocks = 1024
	}
	if o.Inodes == 0 {
		o.Inodes = 4096
	}
	if o.Blocks < o.JournalBlocks+64 {
		return o, fmt.Errorf("jfs: %d blocks too small for a %d-block journal", o.Blocks, o.JournalBlocks)
	}
	return o, nil
}
