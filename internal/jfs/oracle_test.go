package jfs

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/hdd"
	"deepnote/internal/simclock"
)

// TestOracleRandomOperations drives the filesystem with a long random
// operation sequence mirrored against an in-memory model, verifying
// content equivalence throughout and across a crash-recovery remount.
func TestOracleRandomOperations(t *testing.T) {
	clock := simclock.NewVirtual()
	drive, err := hdd.NewDrive(hdd.Barracuda500(), clock, 77)
	if err != nil {
		t.Fatal(err)
	}
	disk := blockdev.NewDisk(drive)
	if err := Mkfs(disk, MkfsOptions{Blocks: 1 << 16}); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(disk, clock, Config{})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	model := make(map[string][]byte) // name -> contents
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}

	verify := func(fsys *FS, step int) {
		t.Helper()
		live := fsys.List()
		if len(live) != len(model) {
			t.Fatalf("step %d: fs has %d files, model %d (%v)", step, len(live), len(model), live)
		}
		for name, want := range model {
			f, err := fsys.Open(name)
			if err != nil {
				t.Fatalf("step %d: open %q: %v", step, name, err)
			}
			if f.Size() != int64(len(want)) {
				t.Fatalf("step %d: %q size %d, model %d", step, name, f.Size(), len(want))
			}
			got := make([]byte, len(want))
			if len(want) > 0 {
				if _, err := f.ReadAt(got, 0); err != nil && err != io.EOF {
					t.Fatalf("step %d: read %q: %v", step, name, err)
				}
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d: %q content mismatch", step, name)
			}
		}
	}

	const steps = 400
	for i := 0; i < steps; i++ {
		name := names[rng.Intn(len(names))]
		switch op := rng.Intn(10); {
		case op < 4: // write at random offset
			if _, ok := model[name]; !ok {
				if _, err := fs.Create(name); err != nil {
					t.Fatalf("step %d: create: %v", i, err)
				}
				model[name] = nil
			}
			f, err := fs.Open(name)
			if err != nil {
				t.Fatalf("step %d: open: %v", i, err)
			}
			off := int64(rng.Intn(3 * BlockSize))
			data := make([]byte, 1+rng.Intn(2*BlockSize))
			for j := range data {
				data[j] = byte(rng.Intn(256))
			}
			if _, err := f.WriteAt(data, off); err != nil {
				t.Fatalf("step %d: write: %v", i, err)
			}
			cur := model[name]
			if need := off + int64(len(data)); int64(len(cur)) < need {
				grown := make([]byte, need)
				copy(grown, cur)
				cur = grown
			}
			copy(cur[off:], data)
			model[name] = cur
		case op < 6: // remove
			if _, ok := model[name]; ok {
				if err := fs.Remove(name); err != nil {
					t.Fatalf("step %d: remove: %v", i, err)
				}
				delete(model, name)
			}
		case op < 7: // truncate
			if cur, ok := model[name]; ok {
				newSize := int64(0)
				if len(cur) > 0 {
					newSize = int64(rng.Intn(len(cur) + 1))
				}
				f, _ := fs.Open(name)
				if err := f.Truncate(newSize); err != nil {
					t.Fatalf("step %d: truncate: %v", i, err)
				}
				model[name] = append([]byte(nil), cur[:newSize]...)
			}
		case op < 8: // sync
			if err := fs.Sync(); err != nil {
				t.Fatalf("step %d: sync: %v", i, err)
			}
		default: // time passes, background commit
			clock.Advance(time.Duration(rng.Intn(6)) * time.Second)
			fs.Tick()
		}
		if i%50 == 0 {
			verify(fs, i)
		}
	}
	verify(fs, steps)

	// fsck must agree the filesystem is consistent.
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	rep := fs.Fsck()
	if !rep.Clean {
		t.Fatalf("oracle workload left dirty fs: %v", rep.Problems)
	}

	// Crash recovery: everything synced must survive a remount.
	fs2, err := Mount(disk, clock, Config{})
	if err != nil {
		t.Fatal(err)
	}
	verify(fs2, steps+1)
	rep2 := fs2.Fsck()
	if !rep2.Clean {
		t.Fatalf("recovered fs dirty: %v", rep2.Problems)
	}
}

// TestOracleSurvivesMidRunAttacks repeats a shorter oracle run with attack
// bursts injected; every operation that *succeeded* must be reflected
// exactly, and the filesystem must stay consistent as long as the journal
// never aborts.
func TestOracleSurvivesMidRunAttacks(t *testing.T) {
	clock := simclock.NewVirtual()
	drive, err := hdd.NewDrive(hdd.Barracuda500(), clock, 123)
	if err != nil {
		t.Fatal(err)
	}
	disk := blockdev.NewDisk(drive)
	if err := Mkfs(disk, MkfsOptions{Blocks: 1 << 16}); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(disk, clock, Config{StallLimit: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	model := make(map[string][]byte)
	for i := 0; i < 150; i++ {
		// Toggle short attack bursts.
		if i%30 == 10 {
			disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 0.2})
		}
		if i%30 == 15 {
			disk.Drive().SetVibration(hdd.Quiet())
		}
		name := fmt.Sprintf("f%d", rng.Intn(5))
		if _, ok := model[name]; !ok {
			if _, err := fs.Create(name); err != nil {
				continue // attack may block metadata-less path; skip
			}
			model[name] = nil
		}
		f, err := fs.Open(name)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		data := []byte(fmt.Sprintf("payload-%d", i))
		off := int64(rng.Intn(BlockSize))
		if _, err := f.WriteAt(data, off); err != nil {
			continue // failed write: model unchanged for the failed tail
		}
		cur := model[name]
		if need := off + int64(len(data)); int64(len(cur)) < need {
			grown := make([]byte, need)
			copy(grown, cur)
			cur = grown
		}
		copy(cur[off:], data)
		model[name] = cur
	}
	disk.Drive().SetVibration(hdd.Quiet())
	if aborted, _ := fs.Aborted(); aborted {
		t.Fatal("journal aborted despite generous stall limit")
	}
	for name, want := range model {
		f, err := fs.Open(name)
		if err != nil {
			t.Fatalf("open %q: %v", name, err)
		}
		got := make([]byte, len(want))
		if len(want) > 0 {
			if _, err := f.ReadAt(got, 0); err != nil && err != io.EOF {
				t.Fatalf("read %q: %v", name, err)
			}
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%q diverged from model", name)
		}
	}
	if rep := fs.Fsck(); !rep.Clean {
		t.Fatalf("fs dirty after attack bursts: %v", rep.Problems)
	}
}
