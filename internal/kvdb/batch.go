package kvdb

// Batch collects writes to apply atomically-in-order with one WAL
// persistence decision — RocksDB's WriteBatch. All records share the
// batch's commit path: either the batch is fully buffered into WAL and
// memtable, or (on a crash mid-apply) the WAL's record ordering preserves
// a prefix.
type Batch struct {
	recs []walRecord
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Put queues a key/value write.
func (b *Batch) Put(key, value []byte) {
	b.recs = append(b.recs, walRecord{
		op:    walOpPut,
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
}

// Delete queues a tombstone.
func (b *Batch) Delete(key []byte) {
	b.recs = append(b.recs, walRecord{op: walOpDelete, key: append([]byte(nil), key...)})
}

// Len returns the queued record count.
func (b *Batch) Len() int { return len(b.recs) }

// Reset clears the batch for reuse.
func (b *Batch) Reset() { b.recs = b.recs[:0] }

// Apply writes the batch through the normal write path. CPU cost is
// charged once for the batch plus once per record, modeling the group
// commit advantage batches buy.
func (db *DB) Apply(b *Batch) error {
	if err := db.guard(); err != nil {
		return err
	}
	if b == nil || len(b.recs) == 0 {
		return nil
	}
	db.chargeCPU()
	for _, rec := range b.recs {
		db.seq++
		rec.seq = db.seq
		needFlush := db.wal.append(rec)
		switch rec.op {
		case walOpPut:
			db.mem.Put(rec.key, rec.value, rec.seq)
			db.stats.Puts++
			db.stats.BytesWritten += int64(len(rec.key) + len(rec.value))
		case walOpDelete:
			db.mem.Delete(rec.key, rec.seq)
			db.stats.Deletes++
		}
		if needFlush {
			if err := db.persistWAL(); err != nil {
				return err
			}
		}
	}
	if db.mem.ApproximateBytes() >= db.opts.MemtableBytes {
		if err := db.flushMemtable(); err != nil {
			return err
		}
	}
	db.fs.Tick()
	return nil
}
