package kvdb

import (
	"errors"
	"fmt"
	"testing"

	"deepnote/internal/jfs"
)

// remount reopens the filesystem without an unmount, simulating a crash.
func remount(r *rig) (*jfs.FS, error) {
	return jfs.Mount(r.disk, r.clock, jfs.Config{})
}

func TestBatchApply(t *testing.T) {
	r := newRig(t, Options{})
	b := NewBatch()
	for i := 0; i < 100; i++ {
		b.Put([]byte(fmt.Sprintf("b%03d", i)), []byte("v"))
	}
	b.Delete([]byte("b000"))
	if b.Len() != 101 {
		t.Fatalf("len = %d", b.Len())
	}
	if err := r.db.Apply(b); err != nil {
		t.Fatal(err)
	}
	if _, err := r.db.Get([]byte("b000")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete in batch lost: %v", err)
	}
	if v, err := r.db.Get([]byte("b001")); err != nil || string(v) != "v" {
		t.Fatalf("batch put lost: %q %v", v, err)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("reset")
	}
	if err := r.db.Apply(b); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := r.db.Apply(nil); err != nil {
		t.Fatalf("nil batch: %v", err)
	}
}

func TestBatchOrderingWithinBatch(t *testing.T) {
	r := newRig(t, Options{})
	b := NewBatch()
	b.Put([]byte("k"), []byte("first"))
	b.Put([]byte("k"), []byte("second"))
	b.Delete([]byte("k"))
	b.Put([]byte("k"), []byte("final"))
	if err := r.db.Apply(b); err != nil {
		t.Fatal(err)
	}
	v, err := r.db.Get([]byte("k"))
	if err != nil || string(v) != "final" {
		t.Fatalf("batch ordering: %q %v", v, err)
	}
}

func TestBatchCheaperThanIndividualPuts(t *testing.T) {
	// Group commit: the batch charges one op's CPU plus the records, so
	// it should consume no more virtual time than individual puts.
	rigA := newRig(t, Options{})
	startA := rigA.clock.Now()
	for i := 0; i < 500; i++ {
		rigA.db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	individual := rigA.clock.Now().Sub(startA)

	rigB := newRig(t, Options{})
	b := NewBatch()
	for i := 0; i < 500; i++ {
		b.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	startB := rigB.clock.Now()
	if err := rigB.db.Apply(b); err != nil {
		t.Fatal(err)
	}
	batched := rigB.clock.Now().Sub(startB)
	if batched > individual {
		t.Fatalf("batch (%v) slower than individual puts (%v)", batched, individual)
	}
}

func TestBatchSurvivesRecovery(t *testing.T) {
	r := newRig(t, Options{})
	b := NewBatch()
	b.Put([]byte("durable-batch"), []byte("yes"))
	if err := r.db.Apply(b); err != nil {
		t.Fatal(err)
	}
	if err := r.db.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	fs2, err := remount(r)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(fs2, r.clock, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := db2.Get([]byte("durable-batch")); err != nil || string(v) != "yes" {
		t.Fatalf("batch lost across recovery: %q %v", v, err)
	}
}
