package kvdb

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"deepnote/internal/simclock"
)

// Workload names, matching db_bench's vocabulary.
const (
	WorkloadFillSeq          = "fillseq"
	WorkloadFillRandom       = "fillrandom"
	WorkloadReadRandom       = "readrandom"
	WorkloadReadWhileWriting = "readwhilewriting"
)

// BenchSpec describes a db_bench-style run.
type BenchSpec struct {
	// Workload is one of the Workload* names.
	Workload string
	// Num is the operation count for fill/read workloads.
	Num int
	// Runtime bounds time-bounded workloads (readwhilewriting).
	Runtime time.Duration
	// KeySize and ValueSize are payload sizes (db_bench defaults are 16
	// and 100 bytes).
	KeySize, ValueSize int
	// ReadsPerWrite is the read:write mix of readwhilewriting (the
	// benchmark models db_bench's reader threads against one writer as
	// a closed loop; default 10).
	ReadsPerWrite int
	// Seed drives key selection.
	Seed int64
}

func (s BenchSpec) withDefaults() BenchSpec {
	if s.KeySize <= 0 {
		s.KeySize = 16
	}
	if s.ValueSize <= 0 {
		s.ValueSize = 100
	}
	if s.ReadsPerWrite <= 0 {
		s.ReadsPerWrite = 10
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// BenchResult reports a run the way the paper's Table 2 does: payload
// throughput in MB/s and operation rate in ops/s.
type BenchResult struct {
	Spec    BenchSpec
	Ops     int
	Errors  int
	Bytes   int64
	Elapsed time.Duration
	// Crashed is set when the run ended in a database crash.
	Crashed bool
	// CrashErr holds the crash error when Crashed.
	CrashErr error
}

// ThroughputMBps returns payload MB/s (decimal).
func (r BenchResult) ThroughputMBps() float64 {
	s := r.Elapsed.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / s
}

// OpsPerSec returns completed operations per second.
func (r BenchResult) OpsPerSec() float64 {
	s := r.Elapsed.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Ops) / s
}

// Bench runs a workload against the database on its virtual clock.
type Bench struct {
	db    *DB
	clock simclock.Clock
}

// NewBench binds a benchmark to a database.
func NewBench(db *DB, clock simclock.Clock) *Bench {
	return &Bench{db: db, clock: clock}
}

func benchKey(i int, size int) []byte {
	k := fmt.Sprintf("%016d", i)
	for len(k) < size {
		k += "x"
	}
	return []byte(k[:size])
}

func benchValue(rng *rand.Rand, size int) []byte {
	v := make([]byte, size)
	for i := range v {
		v[i] = byte('a' + rng.Intn(26))
	}
	return v
}

// Run executes the spec.
func (b *Bench) Run(spec BenchSpec) (BenchResult, error) {
	spec = spec.withDefaults()
	switch spec.Workload {
	case WorkloadFillSeq, WorkloadFillRandom:
		return b.fill(spec)
	case WorkloadReadRandom:
		return b.readRandom(spec)
	case WorkloadReadWhileWriting:
		return b.readWhileWriting(spec)
	default:
		return BenchResult{}, fmt.Errorf("kvdb: unknown workload %q", spec.Workload)
	}
}

func (b *Bench) fill(spec BenchSpec) (BenchResult, error) {
	if spec.Num <= 0 {
		return BenchResult{}, errors.New("kvdb: fill workloads need Num")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	res := BenchResult{Spec: spec}
	start := b.clock.Now()
	for i := 0; i < spec.Num; i++ {
		idx := i
		if spec.Workload == WorkloadFillRandom {
			idx = rng.Intn(spec.Num)
		}
		err := b.db.Put(benchKey(idx, spec.KeySize), benchValue(rng, spec.ValueSize))
		if err != nil {
			res.Errors++
			if crashed, cerr := b.db.Crashed(); crashed {
				res.Crashed, res.CrashErr = true, cerr
				break
			}
			continue
		}
		res.Ops++
		res.Bytes += int64(spec.KeySize + spec.ValueSize)
	}
	res.Elapsed = b.clock.Now().Sub(start)
	return res, nil
}

func (b *Bench) readRandom(spec BenchSpec) (BenchResult, error) {
	if spec.Num <= 0 {
		return BenchResult{}, errors.New("kvdb: readrandom needs Num")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	res := BenchResult{Spec: spec}
	start := b.clock.Now()
	for i := 0; i < spec.Num; i++ {
		v, err := b.db.Get(benchKey(rng.Intn(spec.Num), spec.KeySize))
		if err != nil && !errors.Is(err, ErrNotFound) {
			res.Errors++
			if crashed, cerr := b.db.Crashed(); crashed {
				res.Crashed, res.CrashErr = true, cerr
				break
			}
			continue
		}
		res.Ops++
		res.Bytes += int64(len(v))
	}
	res.Elapsed = b.clock.Now().Sub(start)
	return res, nil
}

// readWhileWriting models db_bench's readwhilewriting: one writer plus
// reader threads, reported as aggregate throughput. The loop is closed —
// when the write path stalls (WAL retries, L0 stop, crash), the whole
// benchmark's measured rate collapses, which is exactly the behaviour the
// paper's Table 2 observes on the physical testbed.
func (b *Bench) readWhileWriting(spec BenchSpec) (BenchResult, error) {
	if spec.Runtime <= 0 {
		return BenchResult{}, errors.New("kvdb: readwhilewriting needs Runtime")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	res := BenchResult{Spec: spec}
	written := int(b.db.Seq()) // keys already present from a fill phase
	if written == 0 {
		written = 1
	}
	start := b.clock.Now()
	// Bound blocked writes to the measurement window: a real benchmark
	// ends on wall-clock time even when the store is hung, but the
	// store's own crash clock keeps running across iterations.
	deadline := start.Add(spec.Runtime)
	prevHook := b.db.opts.RetryHook
	b.db.SetRetryHook(func(stalled time.Duration) bool {
		if prevHook != nil && !prevHook(stalled) {
			return false
		}
		return b.clock.Now().Before(deadline)
	})
	defer b.db.SetRetryHook(prevHook)
	for b.clock.Now().Sub(start) < spec.Runtime {
		err := b.db.Put(benchKey(written, spec.KeySize), benchValue(rng, spec.ValueSize))
		if err != nil {
			res.Errors++
			if crashed, cerr := b.db.Crashed(); crashed {
				res.Crashed, res.CrashErr = true, cerr
				break
			}
		} else {
			written++
			res.Ops++
			res.Bytes += int64(spec.KeySize + spec.ValueSize)
		}
		for r := 0; r < spec.ReadsPerWrite; r++ {
			v, err := b.db.Get(benchKey(rng.Intn(written), spec.KeySize))
			if err != nil && !errors.Is(err, ErrNotFound) {
				res.Errors++
				if crashed, cerr := b.db.Crashed(); crashed {
					res.Crashed, res.CrashErr = true, cerr
					break
				}
				continue
			}
			res.Ops++
			res.Bytes += int64(len(v))
		}
		if res.Crashed {
			break
		}
	}
	elapsed := b.clock.Now().Sub(start)
	if elapsed < spec.Runtime {
		// A crashed run is reported against the intended window, like a
		// wall-clock benchmark that stopped producing output.
		elapsed = spec.Runtime
	}
	res.Elapsed = elapsed
	return res, nil
}
